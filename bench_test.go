// Benchmarks regenerating the SgxElide paper's evaluation (one benchmark
// family per table and figure), plus ablations for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The paper-style summary tables are printed by cmd/elide-bench.
package sgxelide_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sgxelide/internal/bench"
	"sgxelide/internal/elide"
	"sgxelide/internal/sdk"
)

var (
	envOnce sync.Once
	envVal  *bench.Env
	envErr  error
)

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	envOnce.Do(func() { envVal, envErr = bench.NewEnv() })
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

// buildUnsanitized builds a benchmark enclave with the elide runtime linked
// but not yet sanitized (the sanitizer's input).
func buildUnsanitized(b *testing.B, p *bench.Program) ([]byte, elide.Whitelist) {
	b.Helper()
	_, wl, err := bench.Fixtures()
	if err != nil {
		b.Fatal(err)
	}
	iface, err := elide.MergeEDL(p.EDL)
	if err != nil {
		b.Fatal(err)
	}
	sources := append(elide.TrustedSources(), sdk.C(p.Name+".c", p.TrustedC))
	res, err := sdk.BuildEnclave(sdk.BuildConfig{}, iface, sources...)
	if err != nil {
		b.Fatal(err)
	}
	return res.ELF, wl
}

// BenchmarkTable2_Sanitize times the sanitizer per benchmark — the
// "Sanitize Time" columns of Table 2 (remote data skips the encryption the
// local mode pays for, so it is faster, matching the paper).
func BenchmarkTable2_Sanitize(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts elide.SanitizeOptions
	}{
		{"RemoteData", elide.SanitizeOptions{}},
		{"LocalData", elide.SanitizeOptions{EncryptLocal: true}},
	} {
		for _, p := range bench.All() {
			b.Run(fmt.Sprintf("%s/%s", mode.name, p.Name), func(b *testing.B) {
				elfBytes, wl := buildUnsanitized(b, p)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := elide.Sanitize(elfBytes, wl, mode.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable2_Restore times the full runtime restoration (attestation,
// channel setup, meta/data retrieval, decryption, and the self-modifying
// copy) — the "Restore Time" columns of Table 2.
func BenchmarkTable2_Restore(b *testing.B) {
	env := benchEnv(b)
	for _, mode := range []struct {
		name string
		opts elide.SanitizeOptions
	}{
		{"RemoteData", elide.SanitizeOptions{}},
		{"LocalData", elide.SanitizeOptions{EncryptLocal: true}},
	} {
		for _, p := range bench.All() {
			b.Run(fmt.Sprintf("%s/%s", mode.name, p.Name), func(b *testing.B) {
				prot, err := bench.BuildProtected(env, p, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				srv, err := prot.NewServerFor(env.CA)
				if err != nil {
					b.Fatal(err)
				}
				// The enclave launch dominates each iteration but is not the
				// quantity of interest, so the restore is accumulated
				// separately and reported as a metric (StopTimer would make
				// the harness run hundreds of expensive launches).
				var restoreNs int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					encl, rt, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
					if err != nil {
						b.Fatal(err)
					}
					t0 := time.Now()
					code, err := encl.ECall("elide_restore", 0)
					restoreNs += time.Since(t0).Nanoseconds()
					if err != nil || code != elide.RestoreOKServer {
						b.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
					}
					encl.Destroy()
				}
				b.ReportMetric(float64(restoreNs)/float64(b.N)/1e6, "restore-ms/op")
			})
		}
	}
}

// figureBenchmark times whole application runs (enclave load + restore +
// built-in test suite) for the baseline and protected variants.
func figureBenchmark(b *testing.B, local bool) {
	env := benchEnv(b)
	for _, p := range bench.All() {
		if p.IsGame {
			continue // the paper excludes the games from Figures 3 and 4
		}
		b.Run(p.Name+"/wSGX", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				encl, err := bench.BuildBaselineLoadOnly(env, p)
				if err != nil {
					b.Fatal(err)
				}
				if err := p.Workload(env.Host, encl); err != nil {
					b.Fatal(err)
				}
				encl.Destroy()
			}
		})
		b.Run(p.Name+"/wSgxElide", func(b *testing.B) {
			prot, err := bench.BuildProtected(env, p, elide.SanitizeOptions{EncryptLocal: local})
			if err != nil {
				b.Fatal(err)
			}
			srv, err := prot.NewServerFor(env.CA)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				encl, rt, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
				if err != nil {
					b.Fatal(err)
				}
				code, err := encl.ECall("elide_restore", 0)
				if err != nil || code != elide.RestoreOKServer {
					b.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
				}
				if err := p.Workload(env.Host, encl); err != nil {
					b.Fatal(err)
				}
				encl.Destroy()
			}
		})
	}
}

// BenchmarkFigure3 is the remote-data overhead comparison of Figure 3.
func BenchmarkFigure3_RemoteData(b *testing.B) { figureBenchmark(b, false) }

// BenchmarkFigure4 is the local-data overhead comparison of Figure 4.
func BenchmarkFigure4_LocalData(b *testing.B) { figureBenchmark(b, true) }

// BenchmarkAblation_WholeTextVsRanges compares the paper's simple
// whole-text-section secret (§5) against the per-function ranges
// optimization it describes but does not implement: ranges shrink the
// secret data and the restore copy.
func BenchmarkAblation_WholeTextVsRanges(b *testing.B) {
	env := benchEnv(b)
	p := bench.Shas // the largest trusted component
	for _, mode := range []struct {
		name string
		opts elide.SanitizeOptions
	}{
		{"WholeText", elide.SanitizeOptions{}},
		{"Ranges", elide.SanitizeOptions{Ranges: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			prot, err := bench.BuildProtected(env, p, mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := prot.NewServerFor(env.CA)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(prot.SecretData)), "secret-bytes")
			var restoreNs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				encl, rt, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
				if err != nil {
					b.Fatal(err)
				}
				t0 := time.Now()
				code, err := encl.ECall("elide_restore", 0)
				restoreNs += time.Since(t0).Nanoseconds()
				if err != nil || code != elide.RestoreOKServer {
					b.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
				}
				encl.Destroy()
			}
			b.ReportMetric(float64(restoreNs)/float64(b.N)/1e6, "restore-ms/op")
		})
	}
}

// BenchmarkAblation_BlacklistVsWhitelist compares the paper's rejected
// blacklist design (§3.2 — only annotated functions sanitized) against the
// whitelist: the blacklist redacts less and restores faster but puts the
// secrecy burden on the developer.
func BenchmarkAblation_BlacklistVsWhitelist(b *testing.B) {
	env := benchEnv(b)
	p := bench.AES
	for _, mode := range []struct {
		name string
		opts elide.SanitizeOptions
	}{
		{"Whitelist", elide.SanitizeOptions{Ranges: true}},
		{"Blacklist", elide.SanitizeOptions{Ranges: true, Blacklist: []string{
			"aes_cipher", "aes_inv_cipher", "aes_key_expansion", "ecall_aes_set_key",
		}}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			prot, err := bench.BuildProtected(env, p, mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := prot.NewServerFor(env.CA)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(prot.Stats.SanitizedFunctions), "sanitized-fns")
			b.ReportMetric(float64(len(prot.SecretData)), "secret-bytes")
			var restoreNs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				encl, rt, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
				if err != nil {
					b.Fatal(err)
				}
				t0 := time.Now()
				code, err := encl.ECall("elide_restore", 0)
				restoreNs += time.Since(t0).Nanoseconds()
				if err != nil || code != elide.RestoreOKServer {
					b.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
				}
				encl.Destroy()
			}
			b.ReportMetric(float64(restoreNs)/float64(b.N)/1e6, "restore-ms/op")
		})
	}
}

// BenchmarkAblation_SealedRestore measures the sealing extension (§7,
// future work in the paper): after the first launch the secret restores
// from the sealed file with zero server traffic.
func BenchmarkAblation_SealedRestore(b *testing.B) {
	env := benchEnv(b)
	p := bench.Crackme
	prot, err := bench.BuildProtected(env, p, elide.SanitizeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := prot.NewServerFor(env.CA)
	if err != nil {
		b.Fatal(err)
	}
	// First launch seals.
	encl, rt, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
	if err != nil {
		b.Fatal(err)
	}
	if code, err := encl.ECall("elide_restore", elide.FlagSealAfter); err != nil || code != 0 {
		b.Fatalf("first restore: %d %v (%v)", code, err, rt.LastErr())
	}
	encl.Destroy()
	files := rt.Files

	b.Run("FromServer", func(b *testing.B) {
		var restoreNs int64
		for i := 0; i < b.N; i++ {
			e2, rt2, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
			if err != nil {
				b.Fatal(err)
			}
			t0 := time.Now()
			code, err := e2.ECall("elide_restore", 0)
			restoreNs += time.Since(t0).Nanoseconds()
			if err != nil || code != elide.RestoreOKServer {
				b.Fatalf("restore: %d %v (%v)", code, err, rt2.LastErr())
			}
			e2.Destroy()
		}
		b.ReportMetric(float64(restoreNs)/float64(b.N)/1e6, "restore-ms/op")
	})
	b.Run("FromSealedFile", func(b *testing.B) {
		var restoreNs int64
		for i := 0; i < b.N; i++ {
			e2, _, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, files)
			if err != nil {
				b.Fatal(err)
			}
			t0 := time.Now()
			code, err := e2.ECall("elide_restore", elide.FlagTrySealed)
			restoreNs += time.Since(t0).Nanoseconds()
			if err != nil || code != elide.RestoreOKSealed {
				b.Fatalf("sealed restore: %d %v", code, err)
			}
			e2.Destroy()
		}
		b.ReportMetric(float64(restoreNs)/float64(b.N)/1e6, "restore-ms/op")
	})
}

// BenchmarkTable1_SanitizerStats is not a timing benchmark: it regenerates
// Table 1's static statistics and reports them as metrics so the table can
// be rebuilt from benchmark output alone.
func BenchmarkTable1_SanitizerStats(b *testing.B) {
	env := benchEnv(b)
	for _, p := range bench.All() {
		b.Run(p.Name, func(b *testing.B) {
			var prot *elide.Protected
			var err error
			for i := 0; i < b.N; i++ {
				prot, err = bench.BuildProtected(env, p, elide.SanitizeOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(prot.Stats.TotalFunctions), "tc-fns")
			b.ReportMetric(float64(prot.Stats.TotalTextBytes), "tc-bytes")
			b.ReportMetric(float64(prot.Stats.SanitizedFunctions), "sanitized-fns")
			b.ReportMetric(float64(prot.Stats.SanitizedBytes), "sanitized-bytes")
		})
	}
}

// BenchmarkAblation_TransparentFirstCall quantifies why the paper made
// elide_restore explicit (§3.4): in transparent mode the first ecall
// absorbs the entire restoration, an unpredictable latency spike, while
// after an explicit restore the same ecall is microseconds.
func BenchmarkAblation_TransparentFirstCall(b *testing.B) {
	env := benchEnv(b)
	p := bench.Crackme

	b.Run("ExplicitRestoreThenCall", func(b *testing.B) {
		prot, err := bench.BuildProtected(env, p, elide.SanitizeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		srv, err := prot.NewServerFor(env.CA)
		if err != nil {
			b.Fatal(err)
		}
		buf := env.Host.AllocBytes([]byte("x\x00"))
		var callNs int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			encl, rt, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
			if err != nil {
				b.Fatal(err)
			}
			if code, err := encl.ECall("elide_restore", 0); err != nil || code != 0 {
				b.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
			}
			t0 := time.Now()
			if _, err := encl.ECall("ecall_crackme_check", buf); err != nil { // measured: post-restore first user ecall
				b.Fatal(err)
			}
			callNs += time.Since(t0).Nanoseconds()
			encl.Destroy()
		}
		b.ReportMetric(float64(callNs)/float64(b.N)/1e6, "first-call-ms/op")
	})
	b.Run("TransparentFirstCall", func(b *testing.B) {
		prot, err := bench.BuildProtected(env, p, elide.SanitizeOptions{AutoRestore: true})
		if err != nil {
			b.Fatal(err)
		}
		srv, err := prot.NewServerFor(env.CA)
		if err != nil {
			b.Fatal(err)
		}
		buf := env.Host.AllocBytes([]byte("x\x00"))
		var callNs int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			encl, rt, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
			if err != nil {
				b.Fatal(err)
			}
			t0 := time.Now()
			if _, err := encl.ECall("ecall_crackme_check", buf); err != nil { // measured: restore happens inside this call
				b.Fatalf("%v (%v)", err, rt.LastErr())
			}
			callNs += time.Since(t0).Nanoseconds()
			encl.Destroy()
		}
		b.ReportMetric(float64(callNs)/float64(b.N)/1e6, "first-call-ms/op")
	})
}
