// game2048: a protected game, the paper's motivating use case. The whole
// game logic and the asset decryptor live in the enclave; until the enclave
// attests and restores, the game cannot run and its assets stay opaque.
// After restoration it also seals the secret so the next launch needs no
// server at all.
//
//	go run ./examples/game2048
package main

import (
	"fmt"
	"log"
	"strings"

	"sgxelide/internal/bench"
	"sgxelide/internal/elide"
)

func main() {
	env, err := bench.NewEnv()
	check(err)
	p := bench.Game2048

	prot, err := bench.BuildProtected(env, p, elide.SanitizeOptions{})
	check(err)
	srv, err := prot.NewServerFor(env.CA)
	check(err)
	encl, rt, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
	check(err)

	// Without restoration the game is dead code.
	if _, err := encl.ECall("ecall_2048_init", 7); err != nil {
		fmt.Printf("starting the game before restore: %v\n\n", err)
	}

	code, err := encl.ECall("elide_restore", elide.FlagSealAfter)
	check(err)
	fmt.Printf("elide_restore -> %d; game code restored and sealed for next launch\n\n", code)

	_, err = encl.ECall("ecall_2048_init", 7)
	check(err)
	boardBuf := env.Host.Alloc(16)
	names := []string{"left", "right", "up", "down"}
	for i, dir := range []uint64{2, 0, 3, 1, 2, 0, 0, 3, 2, 1} {
		moved, err := encl.ECall("ecall_2048_move", dir)
		check(err)
		if i%5 == 4 || i == 0 {
			_, err = encl.ECall("ecall_2048_board", boardBuf)
			check(err)
			fmt.Printf("after move %d (%s, moved=%d):\n%s", i+1, names[dir], moved,
				renderBoard(env.Host.ReadBytes(boardBuf, 16)))
		}
	}
	score, err := encl.ECall("ecall_2048_score")
	check(err)
	fmt.Printf("score: %d\n\n", score)

	assetBuf := env.Host.Alloc(256)
	n, err := encl.ECall("ecall_2048_asset", assetBuf, 256)
	check(err)
	fmt.Printf("decrypted game asset:%s\n", env.Host.ReadBytes(assetBuf, int(n)))

	// Second launch: restore from the sealed file with no server.
	encl.Destroy()
	encl2, _, err := prot.Launch(env.Host, &elide.DirectClient{Session: srv.NewSession()}, rt.Files)
	check(err)
	code, err = encl2.ECall("elide_restore", elide.FlagTrySealed)
	check(err)
	fmt.Printf("second launch: elide_restore -> %d (restored from sealed file, zero network traffic)\n", code)
}

// renderBoard pretty-prints the 4x4 exponent board.
func renderBoard(cells []byte) string {
	var sb strings.Builder
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := 0
			if e := cells[r*4+c]; e != 0 {
				v = 1 << e
			}
			if v == 0 {
				sb.WriteString("    .")
			} else {
				fmt.Fprintf(&sb, "%5d", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
