// Quickstart: build a small enclave from mini-C, sign it, load it on the
// simulated SGX platform, and call into it — the plain SGX developer flow
// this repository provides as the substrate for SgxElide.
//
//	go run ./examples/quickstart
package main

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"log"

	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

const helloEDL = `
enclave {
    trusted {
        public uint64_t ecall_fib(uint64_t n);
        public uint64_t ecall_greet([out, size=cap] uint8_t* buf, uint64_t cap);
    };
    untrusted {
        void ocall_progress(uint64_t n);
    };
};
`

const helloC = `
void ocall_progress(uint64_t n);

uint64_t ecall_fib(uint64_t n) {
    uint64_t a = 0;
    uint64_t b = 1;
    for (uint64_t i = 0; i < n; i++) {
        uint64_t t = a + b;
        a = b;
        b = t;
        if (i % 10 == 0) ocall_progress(i);
    }
    return a;
}

char greeting[32] = "hello from inside the enclave";

uint64_t ecall_greet(uint8_t* buf, uint64_t cap) {
    uint64_t n = 0;
    while (greeting[n] && n < cap) {
        buf[n] = (uint8_t)greeting[n];
        n++;
    }
    return n;
}
`

func main() {
	// 1. A machine: the "Intel" root of trust and an SGX platform.
	ca, err := sgx.NewCA()
	check(err)
	platform, err := sgx.NewPlatform(sgx.Config{}, ca)
	check(err)
	host := sdk.NewHost(platform)

	// 2. Build the enclave: EDL bridges + mini-C, linked into an ELF .so.
	res, err := sdk.BuildEnclaveFromEDL(sdk.BuildConfig{}, helloEDL, sdk.C("hello.c", helloC))
	check(err)
	fmt.Printf("built enclave image: %d bytes\n", len(res.ELF))

	// 3. Sign it: measure, then produce the SIGSTRUCT.
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	check(err)
	mr, err := sdk.MeasureELF(host, res.ELF)
	check(err)
	ss, err := sgx.SignEnclave(key, mr, 1, 1)
	check(err)
	fmt.Printf("MRENCLAVE: %x...\n", mr[:8])

	// 4. Load: ECREATE + EADD + EEXTEND + EINIT.
	host.RegisterOcall("ocall_progress", func(c *sdk.OcallContext) (uint64, error) {
		fmt.Printf("  (enclave progress: iteration %d)\n", c.Arg(0))
		return 0, nil
	})
	encl, err := host.CreateEnclave(res.ELF, ss, res.EDL)
	check(err)

	// 5. Call in.
	fib, err := encl.ECall("ecall_fib", 30)
	check(err)
	fmt.Printf("ecall_fib(30) = %d\n", fib)

	buf := host.Alloc(64)
	n, err := encl.ECall("ecall_greet", buf, 64)
	check(err)
	fmt.Printf("ecall_greet -> %q\n", host.ReadBytes(buf, int(n)))

	// 6. And the point of it all: the host cannot read enclave memory.
	peek := platform.HostRead(encl.Encl, encl.Encl.Base, 16)
	fmt.Printf("host read of enclave memory: % x (abort-page semantics)\n", peek)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
