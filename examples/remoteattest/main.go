// remoteattest: the SgxElide remote-data deployment over a real TCP
// connection. The authentication server holds the secret code; it releases
// it only to an enclave whose quote (signed by the platform's CA-certified
// device key) carries the expected sanitized measurement. An attacker
// re-signing the unsanitized enclave is refused.
//
//	go run ./examples/remoteattest
package main

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"sgxelide/internal/elide"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

const appEDL = `
enclave {
    trusted {
        public uint64_t ecall_license_check(uint64_t machine_id);
    };
    untrusted {
    };
};
`

// The secret: the license-key derivation function (classic DRM).
const appC = `
uint64_t ecall_license_check(uint64_t machine_id) {
    uint64_t k = machine_id;
    for (int i = 0; i < 5; i++) {
        k = (k << 13) | (k >> 51);
        k *= 0x5DEECE66Du;
        k ^= 0x2545F4914F6CDD1Du;
    }
    return k;
}
`

func main() {
	ca, err := sgx.NewCA()
	check(err)
	platform, err := sgx.NewPlatform(sgx.Config{}, ca)
	check(err)
	host := sdk.NewHost(platform)

	fmt.Println("== developer: build, sanitize, sign, deploy secrets to the server ==")
	prot, err := elide.BuildProtected(host, elide.BuildProtectedOptions{
		AppEDL:  appEDL,
		Sources: []sdk.Source{sdk.C("license.c", appC)},
	})
	check(err)
	fmt.Printf("sanitized measurement: %x...\n", prot.Measurement[:8])

	// The authentication server, reachable only over TCP. It serves until
	// the context is cancelled, then drains in-flight sessions.
	srv, err := prot.NewServerFor(ca)
	check(err)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()
	fmt.Printf("authentication server listening on %s\n", l.Addr())

	fmt.Println("\n== honest user: restore over TCP ==")
	client := elide.NewTCPClient(l.Addr().String(),
		elide.WithDialTimeout(2*time.Second),
		elide.WithRequestTimeout(5*time.Second),
		elide.WithMaxRetries(2),
	)
	defer client.Close()
	encl, rt, err := prot.LaunchContext(ctx, host, client, prot.LocalFiles())
	check(err)
	code, err := encl.ECall("elide_restore", 0)
	check(err)
	fmt.Printf("elide_restore -> %d (quote verified, secret code streamed over AES-GCM)\n", code)
	lic, err := encl.ECall("ecall_license_check", 0xFEEDC0DE)
	check(err)
	fmt.Printf("license key for machine FEEDC0DE: %016x\n", lic)
	_ = rt

	fmt.Println("\n== attacker: re-sign the UNSANITIZED enclave and ask for the secrets ==")
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	check(err)
	mr, err := sdk.MeasureELF(host, prot.PlainELF)
	check(err)
	ss, err := sgx.SignEnclave(key, mr, 1, 1)
	check(err)
	// An attestation refusal is a typed error, not a dropped connection:
	// the client does not waste its retry budget on it.
	evilClient := elide.NewTCPClient(l.Addr().String())
	defer evilClient.Close()
	rt2 := &elide.Runtime{Client: evilClient, Files: &elide.FileStore{}}
	rt2.Install(host)
	evil, err := host.CreateEnclave(prot.PlainELF, ss, prot.EDL)
	check(err)
	code, err = evil.ECall("elide_restore", 0)
	check(err)
	fmt.Printf("attacker's elide_restore -> %d (refused)\n", code)
	fmt.Printf("server-side reason: %v (ErrRefused: %v)\n",
		rt2.LastErr(), errors.Is(rt2.LastErr(), elide.ErrRefused))

	fmt.Println("\n== graceful shutdown: drain and stop the server ==")
	cancel()
	fmt.Printf("server exited with: %v\n", <-served)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
