// secretcrypto: the full SgxElide flow in local-data mode, protecting a
// proprietary cipher. It shows the attack (disassembling the enclave), the
// defense (sanitization), the failure mode (calling secret code before
// restoration), and the restoration itself.
//
//	go run ./examples/secretcrypto
package main

import (
	"fmt"
	"log"
	"strings"

	"sgxelide/internal/elide"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

const appEDL = `
enclave {
    trusted {
        public void ecall_encrypt([in, out, size=len] uint8_t* buf, uint64_t len, uint64_t nonce);
    };
    untrusted {
    };
};
`

// The "trade secret": a proprietary stream cipher.
const appC = `
uint64_t secret_keystream(uint64_t nonce, uint64_t i) {
    uint64_t x = nonce ^ (i * 0x9E3779B97F4A7C15u);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9u;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBu;
    x ^= x >> 31;
    return x;
}

void ecall_encrypt(uint8_t* buf, uint64_t len, uint64_t nonce) {
    for (uint64_t i = 0; i < len; i++)
        buf[i] ^= (uint8_t)secret_keystream(nonce, i / 8) >> 0;
}
`

func main() {
	ca, err := sgx.NewCA()
	check(err)
	platform, err := sgx.NewPlatform(sgx.Config{}, ca)
	check(err)
	host := sdk.NewHost(platform)

	fmt.Println("== developer side ==")
	prot, err := elide.BuildProtected(host, elide.BuildProtectedOptions{
		Sanitize: elide.SanitizeOptions{EncryptLocal: true},
		AppEDL:   appEDL,
		Sources:  []sdk.Source{sdk.C("secretcipher.c", appC)},
	})
	check(err)

	// The attack the paper defends against: disassemble the enclave file.
	before, err := sdk.Disassemble(prot.PlainELF)
	check(err)
	after, err := sdk.Disassemble(prot.SanitizedELF)
	check(err)
	fmt.Println("\nunprotected enclave, secret_keystream body (attacker's view):")
	fmt.Println(indent(funcBody(before, "secret_keystream"), 7))
	fmt.Println("sanitized enclave, same region:")
	fmt.Println(indent(funcBody(after, "secret_keystream"), 7))
	fmt.Printf("sanitizer: redacted %d functions, %d bytes; secret data file: %d bytes (AES-GCM)\n",
		prot.Stats.SanitizedFunctions, prot.Stats.SanitizedBytes, len(prot.SecretData))

	fmt.Println("\n== user machine ==")
	srv, err := prot.NewServerFor(ca)
	check(err)
	encl, rt, err := prot.Launch(host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
	check(err)

	// Calling the secret code before restoration faults.
	data := []byte("extremely valuable plaintext")
	buf := host.AllocBytes(data)
	if _, err := encl.ECall("ecall_encrypt", buf, uint64(len(data)), 42); err != nil {
		fmt.Printf("ecall before restore: %v\n", err)
	}

	// The one line SgxElide requires (paper §3.4).
	code, err := encl.ECall("elide_restore", 0)
	check(err)
	fmt.Printf("elide_restore -> %d (attested; key released over the channel; code restored) [runtime err: %v]\n",
		code, rt.LastErr())

	_, err = encl.ECall("ecall_encrypt", buf, uint64(len(data)), 42)
	check(err)
	ct := host.ReadBytes(buf, len(data))
	fmt.Printf("ciphertext: %x\n", ct)
	_, err = encl.ECall("ecall_encrypt", buf, uint64(len(data)), 42)
	check(err)
	fmt.Printf("decrypted:  %q\n", host.ReadBytes(buf, len(data)))
}

// funcBody extracts one function's disassembly (first 4 lines).
func funcBody(dis, name string) string {
	lines := strings.Split(dis, "\n")
	var out []string
	in := false
	for _, l := range lines {
		if strings.Contains(l, "<"+name+">:") {
			in = true
			continue
		}
		if in {
			if strings.Contains(l, ">:") || len(out) >= 4 {
				break
			}
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func indent(s string, n int) string {
	pad := strings.Repeat(" ", n)
	return pad + strings.ReplaceAll(s, "\n", "\n"+pad)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
