// Package sgxelide is a from-scratch Go reproduction of "SgxElide: Enabling
// Enclave Code Secrecy via Self-Modification" (Bauman, Wang, Zhang, Lin —
// CGO 2018), including the complete substrate the paper runs on: a software
// SGX platform, an enclave bytecode machine, a mini-C compiler toolchain,
// the SGX-SDK-style runtimes, and the seven evaluation benchmarks.
//
// See README.md for the tour, DESIGN.md for the architecture, and
// EXPERIMENTS.md for the paper-vs-measured results. The implementation
// lives under internal/; the runnable entry points are the cmd/ tools and
// the examples/ programs, and bench_test.go regenerates every table and
// figure of the paper's evaluation.
package sgxelide
