// End-to-end test of the command-line pipeline: it builds the cmd/ binaries
// and walks the full artifact workflow — compile, whitelist, sanitize, sign,
// emit server files, serve over TCP, restore, and invoke an ecall — in two
// separate processes, exactly as README.md documents.
package sgxelide_test

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const cliAppEDL = `
enclave {
    trusted {
        public uint64_t ecall_compute(uint64_t x);
    };
    untrusted {
    };
};
`

const cliAppC = `
uint64_t secret_sauce(uint64_t x) { return x * 1337 + 99; }
uint64_t ecall_compute(uint64_t x) { return secret_sauce(x); }
`

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bin")

	runIn := func(workDir, name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(name, args...)
		cmd.Dir = workDir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}
	runCmd := func(name string, args ...string) string {
		t.Helper()
		return runIn(dir, name, args...)
	}

	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	runIn(repoRoot, "go", "build", "-o", bin+string(os.PathSeparator), "sgxelide/cmd/...")
	tool := func(n string) string { return filepath.Join(bin, n) }

	if err := os.WriteFile(filepath.Join(dir, "app.edl"), []byte(cliAppEDL), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "app.c"), []byte(cliAppC), 0o644); err != nil {
		t.Fatal(err)
	}

	// Developer side.
	runCmd(tool("evmcc"), "-enclave", "-elide", "-edl", "app.edl", "-o", "enclave.so", "app.c")
	runCmd(tool("elide-whitelist"), "-o", "whitelist.json")
	sanOut := runCmd(tool("elide-sanitize"), "-whitelist", "whitelist.json", "-o", "build", "enclave.so")
	if !strings.Contains(sanOut, "functions sanitized") {
		t.Fatalf("sanitize output: %s", sanOut)
	}
	runCmd(tool("elide-sign"), "-key", "dev.pem", "-bits", "2048", "-o", "build/enclave.sigstruct", "build/sanitized.so")

	// The attack view: the secret function is gone from the sanitized image.
	plainDis := runCmd(tool("evm-objdump"), "enclave.so")
	sanDis := runCmd(tool("evm-objdump"), "build/sanitized.so")
	if !strings.Contains(plainDis, "<secret_sauce>") || !strings.Contains(sanDis, "<secret_sauce>") {
		t.Fatal("objdump lost symbols")
	}
	if !strings.Contains(sanDis, ".byte 0x00") {
		t.Fatal("sanitized image not zeroed in objdump view")
	}
	headers := runCmd(tool("evm-objdump"), "-headers", "build/sanitized.so")
	if !strings.Contains(headers, "RWE") {
		t.Fatalf("sanitized text segment not RWE:\n%s", headers)
	}

	// Deployment: emit server files, start the server.
	runCmd(tool("elide-run"), "-dir", "build", "-edl", "app.edl", "-ca", "ca.pem", "-emit-server", "serverfiles")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	srv := exec.Command(tool("elide-server"), "-dir", "serverfiles", "-listen", addr)
	srv.Dir = dir
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()
	// Wait for it to listen.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not start")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// User machine: restore over TCP, then call the restored secret.
	out := runCmd(tool("elide-run"), "-dir", "build", "-edl", "app.edl", "-ca", "ca.pem",
		"-connect", addr, "-ecall", "ecall_compute", "-arg", "42")
	if !strings.Contains(out, "restored via the authentication server") {
		t.Fatalf("restore missing:\n%s", out)
	}
	if !strings.Contains(out, "= 56253") { // 42*1337+99
		t.Fatalf("wrong ecall result:\n%s", out)
	}

	// A bare program through evmcc + evm-run for good measure.
	hello := "int putchar(int c);\nint main(void) { putchar('o'); putchar('k'); return 0; }\n"
	if err := os.WriteFile(filepath.Join(dir, "hello.c"), []byte(hello), 0o644); err != nil {
		t.Fatal(err)
	}
	runCmd(tool("evmcc"), "-o", "hello.elf", "hello.c")
	if got := runCmd(tool("evm-run"), "hello.elf"); got != "ok" {
		t.Fatalf("evm-run output %q", got)
	}
}
