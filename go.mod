module sgxelide

go 1.24
