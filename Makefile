GO ?= go

.PHONY: build verify test race bench-server bench-multi bench-phases trace-demo clean

build:
	$(GO) build ./...

# Tier-1 verification (see ROADMAP.md): build, vet, full tests, and the
# race detector over the transport-heavy packages and the tracer.
verify: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/elide/... ./internal/sdk/...
	$(GO) test -race ./internal/obs/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/elide/... ./internal/sdk/... ./internal/obs/...

# Concurrent-restore transport benchmark; writes BENCH_server.json.
bench-server:
	$(GO) run ./cmd/elide-bench -server

# Multi-enclave serving benchmark: N distinct sanitized enclaves restored
# concurrently against one server; writes BENCH_multi.json.
bench-multi:
	$(GO) run ./cmd/elide-bench -multi

# Per-phase restore latency breakdown; writes BENCH_restore_phases.json.
bench-phases:
	$(GO) run ./cmd/elide-bench -phases

# One traced local-data restore, span tree pretty-printed to stdout.
trace-demo:
	$(GO) run ./cmd/elide-bench -trace-demo

clean:
	rm -rf bin BENCH_server.json BENCH_multi.json BENCH_restore_phases.json
