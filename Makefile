GO ?= go

.PHONY: build build-vet verify vet-security fmt-check test race chaos load-smoke resume-smoke churn-smoke bench-server bench-multi bench-phases bench-chaos bench-churn bench-load bench-resume bench-frames bench-obs obs-demo trace-demo clean

build:
	$(GO) build ./...

# Tier-1 verification (see ROADMAP.md): formatting, build, vet (stdlib
# analyzers plus the elide-vet secrecy suite), full tests, the race
# detector over the transport-heavy packages and the tracer, and
# short-mode chaos and load smoke runs.
verify: fmt-check build
	$(GO) vet ./...
	$(MAKE) vet-security
	$(GO) test ./...
	$(GO) test -race ./internal/elide/... ./internal/sdk/...
	$(GO) test -race ./internal/obs/...
	$(MAKE) bench-obs
	$(MAKE) chaos
	$(MAKE) load-smoke
	$(MAKE) resume-smoke
	$(MAKE) churn-smoke

# The elide-vet vettool: four analyzers (constanttime, secretflow,
# padleak, wipe) that mechanically enforce the enclave secrecy
# invariants. See DESIGN.md §12.
build-vet:
	$(GO) build -o bin/elide-vet ./cmd/elide-vet

# Run the secrecy-lint suite over the whole repo. Fails (exit 2) on any
# unsuppressed finding; audited false positives carry an
# //elide:vet-ignore <analyzer> <reason> directive at the finding site.
vet-security: build-vet
	$(GO) vet -vettool=bin/elide-vet ./...
	@echo "vet-security: constanttime secretflow padleak wipe — no unsuppressed findings"

# gofmt cleanliness: fails listing the offending files, fixes nothing.
fmt-check:
	@out="$$(gofmt -l cmd internal examples)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/elide/... ./internal/sdk/... ./internal/obs/...

# Scaled-down chaos smoke: replicated servers, a mid-run kill + restart,
# scripted connection faults; every restore must succeed or fail typed.
chaos:
	$(GO) test -short -run TestChaosBenchSmoke -v ./internal/bench/

# Scaled-down open-loop load smoke: a few dozen protocol-level restores,
# pipelined and legacy, asserting 1 vs 3 wire flights per restore.
load-smoke:
	$(GO) test -short -run TestLoadBenchSmoke -v ./internal/bench/

# Scaled-down failover-resume smoke: kill the attested replica, resume
# every session on its peer; replicated resumes must cost zero extra
# attestation flights, the unreplicated baseline exactly one each.
resume-smoke:
	$(GO) test -short -run TestResumeBenchSmoke -v ./internal/bench/

# Scaled-down gossip-fleet churn smoke (race detector on, per the fleet
# membership acceptance bar): kill, cold-add and restart members under
# restore load; the cold member must converge via anti-entropy and
# resume every session with zero attestation flights.
churn-smoke:
	$(GO) test -race -short -run TestChurnBenchSmoke -v ./internal/bench/

# Concurrent-restore transport benchmark; writes BENCH_server.json.
bench-server:
	$(GO) run ./cmd/elide-bench -server

# Multi-enclave serving benchmark: N distinct sanitized enclaves restored
# concurrently against one server; writes BENCH_multi.json.
bench-multi:
	$(GO) run ./cmd/elide-bench -multi

# Per-phase restore latency breakdown; writes BENCH_restore_phases.json.
bench-phases:
	$(GO) run ./cmd/elide-bench -phases

# Full chaos run: concurrent restores against server replicas while the
# controller kills/restarts them and injects scripted connection faults;
# writes BENCH_chaos.json.
bench-chaos:
	$(GO) run ./cmd/elide-bench -chaos

# Full gossip-fleet churn run: restores against a gossip mesh while the
# controller kills, cold-adds and restarts members; writes
# BENCH_churn.json.
bench-churn:
	$(GO) run ./cmd/elide-bench -churn

# Open-loop load test: 10k restores offered at a fixed arrival rate,
# pipelined vs legacy protocol; writes BENCH_load.json.
bench-load:
	$(GO) run ./cmd/elide-bench -load

# Failover-resume benchmark: sessions established on one replica, the
# replica killed, every session resumed against its peer — replicated
# (zero extra attestation flights) vs unreplicated baseline (one full
# re-attest per session); writes BENCH_resume.json.
bench-resume:
	$(GO) run ./cmd/elide-bench -resume

# Frame read/write allocation microbenchmarks (the -benchmem numbers
# EXPERIMENTS.md quotes).
bench-frames:
	$(GO) test -run '^$$' -bench 'Frame|WriteResponse|WriteErrorFrame' -benchmem ./internal/elide/

# Observability hot-path budget gate: span start/finish and audit emit
# must stay within 1 alloc/op at ring steady state (the AllocsPerRun
# tests fail otherwise), with -benchmem numbers alongside for the
# EXPERIMENTS.md table. Part of verify.
bench-obs:
	$(GO) test -run 'Allocs' -bench 'BenchmarkSpan|BenchmarkAudit' -benchtime=1000x -benchmem ./internal/obs/

# One traced local-data restore, span tree pretty-printed to stdout.
trace-demo:
	$(GO) run ./cmd/elide-bench -trace-demo

# Cross-process tracing + audit demo: runs a traced, audited restore,
# prints the merged client+server span tree, and writes
# BENCH_trace.jsonl / BENCH_audit.jsonl (schema-validated on the way
# out). CI uploads both as artifacts.
obs-demo:
	$(GO) run ./cmd/elide-bench -obs-demo

clean:
	rm -rf bin BENCH_server.json BENCH_multi.json BENCH_restore_phases.json BENCH_chaos.json BENCH_churn.json BENCH_load.json BENCH_resume.json BENCH_trace.jsonl BENCH_audit.jsonl
