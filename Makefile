GO ?= go

.PHONY: build verify test race chaos bench-server bench-multi bench-phases bench-chaos trace-demo clean

build:
	$(GO) build ./...

# Tier-1 verification (see ROADMAP.md): build, vet, full tests, the race
# detector over the transport-heavy packages and the tracer, and a
# short-mode chaos smoke run against replicated servers.
verify: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/elide/... ./internal/sdk/...
	$(GO) test -race ./internal/obs/...
	$(MAKE) chaos

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/elide/... ./internal/sdk/... ./internal/obs/...

# Scaled-down chaos smoke: replicated servers, a mid-run kill + restart,
# scripted connection faults; every restore must succeed or fail typed.
chaos:
	$(GO) test -short -run TestChaosBenchSmoke -v ./internal/bench/

# Concurrent-restore transport benchmark; writes BENCH_server.json.
bench-server:
	$(GO) run ./cmd/elide-bench -server

# Multi-enclave serving benchmark: N distinct sanitized enclaves restored
# concurrently against one server; writes BENCH_multi.json.
bench-multi:
	$(GO) run ./cmd/elide-bench -multi

# Per-phase restore latency breakdown; writes BENCH_restore_phases.json.
bench-phases:
	$(GO) run ./cmd/elide-bench -phases

# Full chaos run: concurrent restores against server replicas while the
# controller kills/restarts them and injects scripted connection faults;
# writes BENCH_chaos.json.
bench-chaos:
	$(GO) run ./cmd/elide-bench -chaos

# One traced local-data restore, span tree pretty-printed to stdout.
trace-demo:
	$(GO) run ./cmd/elide-bench -trace-demo

clean:
	rm -rf bin BENCH_server.json BENCH_multi.json BENCH_restore_phases.json BENCH_chaos.json
