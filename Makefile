GO ?= go

.PHONY: build verify test race bench-server clean

build:
	$(GO) build ./...

# Tier-1 verification (see ROADMAP.md): build, vet, full tests, and the
# race detector over the transport-heavy packages.
verify: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/elide/... ./internal/sdk/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/elide/... ./internal/sdk/...

# Concurrent-restore transport benchmark; writes BENCH_server.json.
bench-server:
	$(GO) run ./cmd/elide-bench -server

clean:
	rm -rf bin BENCH_server.json
