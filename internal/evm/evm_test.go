package evm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// asmProg encodes a sequence of instructions into a byte slice.
func asmProg(insts ...Inst) []byte {
	var buf []byte
	for _, in := range insts {
		buf = in.Encode(buf)
	}
	return buf
}

// runProg loads prog at base 0x1000 in a 64 KiB flat memory, points SP at the
// top, runs to completion, and returns the VM and stop condition.
func runProg(t *testing.T, prog []byte) (*VM, Stop) {
	t.Helper()
	mem := NewFlatMem(0x1000, 64<<10)
	if !mem.WriteBytes(0x1000, prog) {
		t.Fatal("program too large")
	}
	m := New(mem)
	m.PC = 0x1000
	m.SetSP(0x1000 + 64<<10)
	m.MaxSteps = 1 << 20
	return m, m.Run()
}

func wantHalt(t *testing.T, stop Stop) {
	t.Helper()
	if stop.Reason != StopHalt {
		t.Fatalf("stop = %v, want halt", stop)
	}
}

func TestMoviHalt(t *testing.T) {
	m, stop := runProg(t, asmProg(
		Inst{Op: MOVI, Rd: 3, U64: 0xdeadbeefcafef00d},
		Inst{Op: HALT},
	))
	wantHalt(t, stop)
	if m.Reg[3] != 0xdeadbeefcafef00d {
		t.Errorf("r3 = %#x", m.Reg[3])
	}
}

func TestALUOps(t *testing.T) {
	tests := []struct {
		name string
		op   Opcode
		a, b uint64
		want uint64
	}{
		{"add", ADD, 7, 9, 16},
		{"add-wrap", ADD, ^uint64(0), 1, 0},
		{"sub", SUB, 5, 9, ^uint64(3)},
		{"mul", MUL, 1000003, 999999937, 1000003 * 999999937},
		{"mul-wrap", MUL, 1 << 40, 1 << 30, 0}, // 2^70 mod 2^64 = 0
		{"divu", DIVU, 100, 7, 14},
		{"divs", DIVS, negU(100), 7, negU(14)}, // -100/7 = -14 trunc
		{"divs-minint", DIVS, 1 << 63, ^uint64(0), 1 << 63},
		{"remu", REMU, 100, 7, 2},
		{"rems", REMS, negU(100), 7, negU(2)},
		{"rems-minint", REMS, 1 << 63, ^uint64(0), 0},
		{"and", AND, 0xf0f0, 0xff00, 0xf000},
		{"or", OR, 0xf0f0, 0x0f00, 0xfff0},
		{"xor", XOR, 0xf0f0, 0xffff, 0x0f0f},
		{"shl", SHL, 1, 63, 1 << 63},
		{"shl-mod64", SHL, 1, 64, 1}, // count mod 64
		{"shru", SHRU, 1 << 63, 63, 1},
		{"shrs", SHRS, 1 << 63, 63, ^uint64(0)},
		{"slt-true", SLT, ^uint64(0), 0, 1},  // -1 < 0
		{"slt-false", SLT, 0, ^uint64(0), 0}, // !(0 < -1)
		{"sltu-true", SLTU, 0, ^uint64(0), 1},
		{"sltu-false", SLTU, ^uint64(0), 0, 0},
		{"seq-eq", SEQ, 42, 42, 1},
		{"seq-ne", SEQ, 42, 43, 0},
		{"sne-ne", SNE, 42, 43, 1},
		{"sne-eq", SNE, 42, 42, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, stop := runProg(t, asmProg(
				Inst{Op: MOVI, Rd: 1, U64: tt.a},
				Inst{Op: MOVI, Rd: 2, U64: tt.b},
				Inst{Op: tt.op, Rd: 0, Ra: 1, Rb: 2},
				Inst{Op: HALT},
			))
			wantHalt(t, stop)
			if m.Reg[0] != tt.want {
				t.Errorf("%s(%#x, %#x) = %#x, want %#x", tt.op, tt.a, tt.b, m.Reg[0], tt.want)
			}
		})
	}
}

func TestALUImmediates(t *testing.T) {
	tests := []struct {
		op   Opcode
		a    uint64
		imm  int64
		want uint64
	}{
		{ADDI, 10, -3, 7},
		{ADDI, 10, 3, 13},
		{MULI, 10, -2, negU(20)},
		{ANDI, 0xffff, 0xff, 0xff},
		{ANDI, 0xffffffffffffffff, -1, 0xffffffffffffffff}, // imm sign-extends
		{ORI, 0xf0, 0x0f, 0xff},
		{XORI, 0xff, 0x0f, 0xf0},
		{SHLI, 3, 4, 48},
		{SHRUI, 1 << 40, 40, 1},
		{SHRSI, 1 << 63, 60, 0xfffffffffffffff8},
		{SLTI, 5, 6, 1},
		{SLTUI, 5, 4, 0},
	}
	for _, tt := range tests {
		m, stop := runProg(t, asmProg(
			Inst{Op: MOVI, Rd: 1, U64: tt.a},
			Inst{Op: tt.op, Rd: 0, Ra: 1, Imm: tt.imm},
			Inst{Op: HALT},
		))
		wantHalt(t, stop)
		if m.Reg[0] != tt.want {
			t.Errorf("%s(%#x, %d) = %#x, want %#x", tt.op, tt.a, tt.imm, m.Reg[0], tt.want)
		}
	}
}

func TestExtendOps(t *testing.T) {
	tests := []struct {
		op   Opcode
		w    byte
		v    uint64
		want uint64
	}{
		{SEXT, 1, 0x80, 0xffffffffffffff80},
		{SEXT, 1, 0x7f, 0x7f},
		{SEXT, 2, 0x8000, 0xffffffffffff8000},
		{SEXT, 4, 0x80000000, 0xffffffff80000000},
		{ZEXT, 1, 0xfff, 0xff},
		{ZEXT, 2, 0xfffff, 0xffff},
		{ZEXT, 4, 0xffffffffff, 0xffffffff},
	}
	for _, tt := range tests {
		m, stop := runProg(t, asmProg(
			Inst{Op: MOVI, Rd: 1, U64: tt.v},
			Inst{Op: tt.op, Rd: 0, Ra: 1, W: tt.w},
			Inst{Op: HALT},
		))
		wantHalt(t, stop)
		if m.Reg[0] != tt.want {
			t.Errorf("%s w=%d (%#x) = %#x, want %#x", tt.op, tt.w, tt.v, m.Reg[0], tt.want)
		}
	}
}

func TestNotNeg(t *testing.T) {
	m, stop := runProg(t, asmProg(
		Inst{Op: MOVI, Rd: 1, U64: 5},
		Inst{Op: NOT, Rd: 2, Ra: 1},
		Inst{Op: NEG, Rd: 3, Ra: 1},
		Inst{Op: HALT},
	))
	wantHalt(t, stop)
	if m.Reg[2] != ^uint64(5) || m.Reg[3] != negU(5) {
		t.Errorf("not=%#x neg=%#x", m.Reg[2], m.Reg[3])
	}
}

func TestBranchTakenAndNot(t *testing.T) {
	// r0 = 1 if branch taken path works, skipping the r0=99 assignment.
	haltAt := Inst{Op: HALT}
	skip := Inst{Op: MOVI, Rd: 0, U64: 99} // 10 bytes
	prog := asmProg(
		Inst{Op: MOVI, Rd: 1, U64: 4},
		Inst{Op: MOVI, Rd: 2, U64: 4},
		Inst{Op: BEQ, Rd: 1, Ra: 2, Imm: int64(skip.Len())}, // skip next
		skip,
		Inst{Op: MOVI, Rd: 3, U64: 1},
		haltAt,
	)
	m, stop := runProg(t, prog)
	wantHalt(t, stop)
	if m.Reg[0] == 99 || m.Reg[3] != 1 {
		t.Errorf("branch not taken correctly: r0=%d r3=%d", m.Reg[0], m.Reg[3])
	}
}

func TestBranchConditions(t *testing.T) {
	tests := []struct {
		op    Opcode
		a, b  uint64
		taken bool
	}{
		{BEQ, 1, 1, true},
		{BEQ, 1, 2, false},
		{BNE, 1, 2, true},
		{BNE, 2, 2, false},
		{BLT, ^uint64(0), 0, true}, // -1 < 0 signed
		{BLT, 0, ^uint64(0), false},
		{BLTU, 0, ^uint64(0), true},
		{BLTU, ^uint64(0), 0, false},
		{BGE, 0, ^uint64(0), true},
		{BGE, ^uint64(0), 0, false},
		{BGEU, ^uint64(0), 0, true},
		{BGEU, 0, ^uint64(0), false},
	}
	for _, tt := range tests {
		skip := Inst{Op: MOVI, Rd: 0, U64: 1}
		prog := asmProg(
			Inst{Op: MOVI, Rd: 1, U64: tt.a},
			Inst{Op: MOVI, Rd: 2, U64: tt.b},
			Inst{Op: tt.op, Rd: 1, Ra: 2, Imm: int64(skip.Len())},
			skip, // executed only if NOT taken
			Inst{Op: HALT},
		)
		m, stop := runProg(t, prog)
		wantHalt(t, stop)
		got := m.Reg[0] == 0
		if got != tt.taken {
			t.Errorf("%s(%#x,%#x) taken=%v want %v", tt.op, tt.a, tt.b, got, tt.taken)
		}
	}
}

func TestCallRet(t *testing.T) {
	// main: call f; halt.   f: r0 = 7; ret.
	// Layout: [call][halt][f...]
	call := Inst{Op: CALL, Imm: 1} // skip the 1-byte HALT
	prog := asmProg(
		call,
		Inst{Op: HALT},
		Inst{Op: MOVI, Rd: 0, U64: 7},
		Inst{Op: RET},
	)
	m, stop := runProg(t, prog)
	wantHalt(t, stop)
	if m.Reg[0] != 7 {
		t.Errorf("r0 = %d, want 7", m.Reg[0])
	}
	if m.SP() != 0x1000+64<<10 {
		t.Errorf("stack not balanced: sp=%#x", m.SP())
	}
}

func TestCallRIndirect(t *testing.T) {
	// lea r1, f; callr r1; halt; f: movi r0, 9; ret
	callr := Inst{Op: CALLR, Rd: 1}
	halt := Inst{Op: HALT}
	lea := Inst{Op: LEA, Rd: 1, Imm: int64(callr.Len() + halt.Len())}
	prog := asmProg(
		lea,
		callr,
		halt,
		Inst{Op: MOVI, Rd: 0, U64: 9},
		Inst{Op: RET},
	)
	m, stop := runProg(t, prog)
	wantHalt(t, stop)
	if m.Reg[0] != 9 {
		t.Errorf("r0 = %d, want 9", m.Reg[0])
	}
}

func TestLoadStoreWidths(t *testing.T) {
	base := uint64(0x2000)
	prog := asmProg(
		Inst{Op: MOVI, Rd: 1, U64: base},
		Inst{Op: MOVI, Rd: 2, U64: 0x1122334455667788},
		Inst{Op: ST64, Rd: 2, Ra: 1, Imm: 0},
		Inst{Op: ST8, Rd: 2, Ra: 1, Imm: 16},
		Inst{Op: ST16, Rd: 2, Ra: 1, Imm: 24},
		Inst{Op: ST32, Rd: 2, Ra: 1, Imm: 32},
		Inst{Op: LD64, Rd: 3, Ra: 1, Imm: 0},
		Inst{Op: LD8U, Rd: 4, Ra: 1, Imm: 16},
		Inst{Op: LD8S, Rd: 5, Ra: 1, Imm: 16},
		Inst{Op: LD16U, Rd: 6, Ra: 1, Imm: 24},
		Inst{Op: LD32U, Rd: 7, Ra: 1, Imm: 32},
		Inst{Op: LD32S, Rd: 8, Ra: 1, Imm: 0}, // low 4 bytes 0x55667788 -> positive
		Inst{Op: HALT},
	)
	m, stop := runProg(t, prog)
	wantHalt(t, stop)
	checks := []struct {
		reg  int
		want uint64
	}{
		{3, 0x1122334455667788},
		{4, 0x88},
		{5, 0xffffffffffffff88},
		{6, 0x7788},
		{7, 0x55667788},
		{8, 0x55667788},
	}
	for _, c := range checks {
		if m.Reg[c.reg] != c.want {
			t.Errorf("r%d = %#x, want %#x", c.reg, m.Reg[c.reg], c.want)
		}
	}
}

func TestPushPop(t *testing.T) {
	m, stop := runProg(t, asmProg(
		Inst{Op: MOVI, Rd: 1, U64: 111},
		Inst{Op: MOVI, Rd: 2, U64: 222},
		Inst{Op: PUSH, Rd: 1},
		Inst{Op: PUSH, Rd: 2},
		Inst{Op: POP, Rd: 3},
		Inst{Op: POP, Rd: 4},
		Inst{Op: HALT},
	))
	wantHalt(t, stop)
	if m.Reg[3] != 222 || m.Reg[4] != 111 {
		t.Errorf("pop order wrong: r3=%d r4=%d", m.Reg[3], m.Reg[4])
	}
}

func TestZeroedCodeFaultsIllegal(t *testing.T) {
	// Executing zero bytes (sanitized code) must fault with IllegalInst.
	_, stop := runProg(t, []byte{0, 0, 0, 0})
	if stop.Reason != StopFault || stop.Fault.Kind != FaultIllegalInst {
		t.Fatalf("stop = %v, want illegal instruction fault", stop)
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	for _, op := range []Opcode{DIVU, DIVS, REMU, REMS} {
		_, stop := runProg(t, asmProg(
			Inst{Op: MOVI, Rd: 1, U64: 5},
			Inst{Op: op, Rd: 0, Ra: 1, Rb: 2},
			Inst{Op: HALT},
		))
		if stop.Reason != StopFault || stop.Fault.Kind != FaultDivideByZero {
			t.Errorf("%s: stop = %v, want divide-by-zero fault", op, stop)
		}
	}
}

func TestStepBudget(t *testing.T) {
	// Infinite loop: jmp -5 (back to itself).
	mem := NewFlatMem(0x1000, 4096)
	mem.WriteBytes(0x1000, asmProg(Inst{Op: JMP, Imm: -5}))
	m := New(mem)
	m.PC = 0x1000
	m.MaxSteps = 1000
	stop := m.Run()
	if stop.Reason != StopFault || stop.Fault.Kind != FaultStep {
		t.Fatalf("stop = %v, want step fault", stop)
	}
	if m.Steps != 1000 {
		t.Errorf("steps = %d, want 1000", m.Steps)
	}
}

func TestBadAddressFaults(t *testing.T) {
	_, stop := runProg(t, asmProg(
		Inst{Op: MOVI, Rd: 1, U64: 0xdead0000},
		Inst{Op: LD64, Rd: 0, Ra: 1, Imm: 0},
		Inst{Op: HALT},
	))
	if stop.Reason != StopFault || stop.Fault.Kind != FaultBadAddress {
		t.Fatalf("stop = %v, want bad address fault", stop)
	}
	if stop.Fault.Addr != 0xdead0000 {
		t.Errorf("fault addr = %#x", stop.Fault.Addr)
	}
}

func TestEExitResume(t *testing.T) {
	// eexit 5; movi r0, 1; halt — after resume, execution continues.
	mem := NewFlatMem(0x1000, 4096)
	mem.WriteBytes(0x1000, asmProg(
		Inst{Op: EEXIT, Imm: 5},
		Inst{Op: MOVI, Rd: 0, U64: 1},
		Inst{Op: HALT},
	))
	m := New(mem)
	m.PC = 0x1000
	m.SetSP(0x1000 + 4096)
	stop := m.Run()
	if stop.Reason != StopExit || stop.Code != 5 {
		t.Fatalf("stop = %v, want eexit(5)", stop)
	}
	stop = m.Run() // resume
	wantHalt(t, stop)
	if m.Reg[0] != 1 {
		t.Errorf("r0 = %d after resume", m.Reg[0])
	}
}

func TestIntrinsicDispatch(t *testing.T) {
	var out bytes.Buffer
	mem := NewFlatMem(0x1000, 4096)
	mem.WriteBytes(0x1000, asmProg(
		Inst{Op: MOVI, Rd: 1, U64: 'A'},
		Inst{Op: INTRIN, Imm: 7},
		Inst{Op: HALT},
	))
	m := New(mem)
	m.PC = 0x1000
	m.SetSP(0x1000 + 4096)
	m.Intrinsics = map[uint16]Intrinsic{
		7: func(m *VM) *Fault {
			out.WriteByte(byte(m.Reg[1]))
			return nil
		},
	}
	stop := m.Run()
	wantHalt(t, stop)
	if out.String() != "A" {
		t.Errorf("intrinsic output = %q", out.String())
	}
}

func TestUnknownIntrinsicFaults(t *testing.T) {
	_, stop := runProg(t, asmProg(Inst{Op: INTRIN, Imm: 999}, Inst{Op: HALT}))
	if stop.Reason != StopFault || stop.Fault.Kind != FaultIntrinsic {
		t.Fatalf("stop = %v, want intrinsic fault", stop)
	}
}

func TestBrkFaults(t *testing.T) {
	_, stop := runProg(t, asmProg(Inst{Op: BRK}))
	if stop.Reason != StopFault || stop.Fault.Kind != FaultBreak {
		t.Fatalf("stop = %v, want break fault", stop)
	}
}

func TestSelfModifyingCode(t *testing.T) {
	// The core SgxElide primitive: a program that patches an instruction in
	// its own text, then executes the patched version.
	// Layout: [patch stores][target: movi r0, 0][halt]
	target := Inst{Op: MOVI, Rd: 0, U64: 0} // will be patched to U64: 42
	patched := Inst{Op: MOVI, Rd: 0, U64: 42}
	pbytes := patched.Encode(nil)

	prog := asmProg(
		Inst{Op: LEA, Rd: 1, Imm: 7 + 7 + 7}, // address of target = after 3 stores (each ST 7 bytes)... computed below
	)
	// Rebuild properly: we need LEA's imm to reach target over the stores.
	// store sequence: st64 low 8 bytes of patched inst, st16 remaining 2.
	_ = prog
	insts := []Inst{
		{Op: LEA, Rd: 1, Imm: 0}, // placeholder; fixed after layout known
		{Op: MOVI, Rd: 2, U64: le64(pbytes[0:8])},
		{Op: ST64, Rd: 2, Ra: 1, Imm: 0},
		{Op: MOVI, Rd: 3, U64: uint64(pbytes[8]) | uint64(pbytes[9])<<8},
		{Op: ST16, Rd: 3, Ra: 1, Imm: 8},
		target,
		{Op: HALT},
	}
	// Compute offset from end of LEA to target (index 5).
	off := 0
	for _, in := range insts[1:5] {
		off += in.Len()
	}
	insts[0].Imm = int64(off)
	m, stop := runProg(t, asmProg(insts...))
	wantHalt(t, stop)
	if m.Reg[0] != 42 {
		t.Errorf("self-modified code: r0 = %d, want 42", m.Reg[0])
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// --- encode/decode properties ---

// randInst generates a random valid instruction.
func randInst(r *rand.Rand) Inst {
	ops := make([]Opcode, 0, 80)
	for op := 1; op < 256; op++ {
		if Opcode(op).Valid() {
			ops = append(ops, Opcode(op))
		}
	}
	op := ops[r.Intn(len(ops))]
	in := Inst{Op: op}
	reg := func() byte { return byte(r.Intn(NumRegs)) }
	switch op.OpForm() {
	case FormRR:
		in.Rd, in.Ra = reg(), reg()
	case FormRI64:
		in.Rd, in.U64 = reg(), r.Uint64()
	case FormRI32:
		in.Rd, in.Imm = reg(), int64(int32(r.Uint32()))
	case FormRRR:
		in.Rd, in.Ra, in.Rb = reg(), reg(), reg()
	case FormRRI32, FormRRB32:
		in.Rd, in.Ra, in.Imm = reg(), reg(), int64(int32(r.Uint32()))
	case FormRRW:
		in.Rd, in.Ra, in.W = reg(), reg(), []byte{1, 2, 4}[r.Intn(3)]
	case FormI32:
		in.Imm = int64(int32(r.Uint32()))
	case FormR:
		in.Rd = reg()
	case FormMem:
		in.Rd, in.Ra, in.Imm = reg(), reg(), int64(int32(r.Uint32()))
	case FormI16:
		in.Imm = int64(r.Intn(1 << 16))
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		in := randInst(r)
		enc := in.Encode(nil)
		if len(enc) != in.Len() {
			t.Fatalf("%v: encoded length %d != Len %d", in, len(enc), in.Len())
		}
		dec, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: decode error: %v", in, err)
		}
		if n != len(enc) {
			t.Fatalf("%v: decode consumed %d of %d", in, n, len(enc))
		}
		if dec != in {
			t.Fatalf("round trip: got %+v, want %+v", dec, in)
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	// Property: Decode on arbitrary bytes returns without panicking and
	// always consumes at least 1 byte when input is non-empty.
	f := func(b []byte) bool {
		if len(b) == 0 {
			_, n, err := Decode(b)
			return n == 0 && err != nil
		}
		_, n, _ := Decode(b)
		return n >= 1 && n <= len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadRegisters(t *testing.T) {
	// mov r200, r1 must be rejected.
	b := []byte{byte(MOV), 200, 1}
	if _, _, err := Decode(b); err == nil {
		t.Fatal("decode accepted bad register")
	}
	// sext with bad width
	b = []byte{byte(SEXT), 0, 1, 3}
	if _, _, err := Decode(b); err == nil {
		t.Fatal("decode accepted bad width")
	}
}

func TestDisassemblerFormat(t *testing.T) {
	prog := asmProg(
		Inst{Op: MOVI, Rd: 1, U64: 10},
		Inst{Op: CALL, Imm: 1},
		Inst{Op: HALT},
		Inst{Op: RET},
	)
	d := &Disassembler{Symbols: map[uint64]string{
		0x1000: "main",
		0x1010: "f", // 10 + 5 + 1 = 0x10 past base
	}}
	out := d.Format(0x1000, prog)
	for _, want := range []string{"<main>", "<f>", "movi r1", "call 0x1010 <f>", "ret"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestDisassemblerMarksZeroBytesBad(t *testing.T) {
	d := &Disassembler{}
	lines := d.Disasm(0, []byte{0, 0, byte(HALT)})
	if len(lines) != 3 || !lines[0].Bad || !lines[1].Bad || lines[2].Bad {
		t.Fatalf("unexpected disasm of sanitized bytes: %+v", lines)
	}
}

func TestVMReadWriteBytes(t *testing.T) {
	mem := NewFlatMem(0, 4096)
	m := New(mem)
	data := []byte("hello, enclave world! 0123456789")
	if f := m.WriteBytes(100, data); f != nil {
		t.Fatal(f)
	}
	got, f := m.ReadBytes(100, len(data))
	if f != nil {
		t.Fatal(f)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %q", got)
	}
}

// negU returns the two's-complement negation of x at runtime (avoids
// constant-overflow errors in table literals).
func negU(x uint64) uint64 { return -x }
