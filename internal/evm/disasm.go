package evm

import (
	"fmt"
	"sort"
	"strings"
)

// DisasmLine is one line of disassembly.
type DisasmLine struct {
	Addr  uint64
	Bytes []byte
	Inst  Inst
	Bad   bool   // bytes did not decode (illegal/truncated)
	Text  string // rendered assembly text
}

// Disassembler renders EVM code with optional symbolization. It is the tool
// an attacker (or cmd/evm-objdump) uses to inspect an enclave image before
// it is initialized — the capability SgxElide exists to defeat.
type Disassembler struct {
	// Symbols maps addresses to names for labeling and for resolving
	// call/branch targets.
	Symbols map[uint64]string
}

// Disasm decodes code residing at base, producing one line per instruction.
// Undecodable bytes are consumed one byte at a time and marked Bad.
func (d *Disassembler) Disasm(base uint64, code []byte) []DisasmLine {
	var lines []DisasmLine
	for off := 0; off < len(code); {
		addr := base + uint64(off)
		in, n, err := Decode(code[off:])
		line := DisasmLine{Addr: addr, Bytes: append([]byte(nil), code[off:off+n]...), Inst: in}
		if err != nil {
			line.Bad = true
			line.Text = fmt.Sprintf(".byte %#02x", code[off])
			n = 1
		} else {
			line.Text = d.render(addr, in)
		}
		lines = append(lines, line)
		off += n
	}
	return lines
}

// render pretty-prints in, resolving pc-relative targets through Symbols.
func (d *Disassembler) render(addr uint64, in Inst) string {
	next := addr + uint64(in.Len())
	target := func(imm int64) string {
		t := next + uint64(imm)
		if name, ok := d.Symbols[t]; ok {
			return fmt.Sprintf("%#x <%s>", t, name)
		}
		return fmt.Sprintf("%#x", t)
	}
	switch in.Op {
	case JMP, CALL:
		return fmt.Sprintf("%s %s", in.Op, target(in.Imm))
	case BEQ, BNE, BLT, BLTU, BGE, BGEU:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, RegName(in.Rd), RegName(in.Ra), target(in.Imm))
	case LEA:
		return fmt.Sprintf("%s %s, %s", in.Op, RegName(in.Rd), target(in.Imm))
	case MOVI:
		if name, ok := d.Symbols[in.U64]; ok {
			return fmt.Sprintf("%s %s, %#x <%s>", in.Op, RegName(in.Rd), in.U64, name)
		}
		return in.String()
	default:
		return in.String()
	}
}

// Format renders the disassembly as objdump-style text, inserting symbol
// labels at their addresses.
func (d *Disassembler) Format(base uint64, code []byte) string {
	lines := d.Disasm(base, code)
	var sb strings.Builder

	// Sort label addresses for stable interleaving.
	var labelAddrs []uint64
	for a := range d.Symbols {
		labelAddrs = append(labelAddrs, a)
	}
	sort.Slice(labelAddrs, func(i, j int) bool { return labelAddrs[i] < labelAddrs[j] })
	li := 0

	for _, ln := range lines {
		for li < len(labelAddrs) && labelAddrs[li] <= ln.Addr {
			if labelAddrs[li] == ln.Addr {
				fmt.Fprintf(&sb, "\n%016x <%s>:\n", ln.Addr, d.Symbols[labelAddrs[li]])
			}
			li++
		}
		fmt.Fprintf(&sb, "%8x:\t% -24x\t%s\n", ln.Addr, ln.Bytes, ln.Text)
	}
	return sb.String()
}
