package evm

import "fmt"

// StopReason says why VM.Run returned.
type StopReason int

const (
	StopHalt  StopReason = iota // HALT executed
	StopExit                    // EEXIT executed (enclave exit / ocall)
	StopFault                   // machine fault
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopExit:
		return "eexit"
	case StopFault:
		return "fault"
	}
	return "stop?"
}

// Stop describes how execution stopped.
type Stop struct {
	Reason StopReason
	Code   uint16 // EEXIT immediate, when Reason == StopExit
	Fault  *Fault // non-nil when Reason == StopFault
}

func (s Stop) String() string {
	switch s.Reason {
	case StopExit:
		return fmt.Sprintf("eexit(%d)", s.Code)
	case StopFault:
		return s.Fault.Error()
	default:
		return s.Reason.String()
	}
}

// Intrinsic is a host-implemented routine invoked by the INTRIN instruction.
// Intrinsics model statically linked platform library code (e.g. the SGX SDK
// crypto functions): they execute with the privileges of the running code and
// access memory through the VM. An intrinsic returning a non-nil fault stops
// the machine.
type Intrinsic func(m *VM) *Fault

// VM is one EVM hardware thread.
type VM struct {
	Mem   Bus
	Reg   [NumRegs]uint64
	PC    uint64
	Steps uint64 // instructions executed so far (cumulative)

	// MaxSteps, if non-zero, bounds the number of instructions a single Run
	// call may execute before faulting with FaultStep. It guards tests and
	// hostile enclaves against infinite loops.
	MaxSteps uint64

	// Intrinsics dispatches INTRIN instructions by immediate number.
	Intrinsics map[uint16]Intrinsic

	fetchBuf  [16]byte
	versioner CodeVersioner // non-nil when Mem supports icache invalidation
	cache     icache
}

// New returns a VM executing against mem. When mem implements CodeVersioner
// the VM caches decoded instructions, invalidating on code writes.
func New(mem Bus) *VM {
	m := &VM{Mem: mem}
	if cv, ok := mem.(CodeVersioner); ok {
		m.versioner = cv
	}
	return m
}

// SP returns the stack pointer.
func (m *VM) SP() uint64 { return m.Reg[RegSP] }

// SetSP sets the stack pointer.
func (m *VM) SetSP(v uint64) { m.Reg[RegSP] = v }

// push pushes v on the stack.
func (m *VM) push(v uint64) *Fault {
	m.Reg[RegSP] -= 8
	return m.Mem.Store(m.Reg[RegSP], 8, v)
}

// pop pops the top of stack.
func (m *VM) pop() (uint64, *Fault) {
	v, f := m.Mem.Load(m.Reg[RegSP], 8)
	if f == nil {
		m.Reg[RegSP] += 8
	}
	return v, f
}

// ReadBytes reads n bytes of memory at addr with read access, for use by
// intrinsics and host runtimes acting on behalf of executing code.
func (m *VM) ReadBytes(addr uint64, n int) ([]byte, *Fault) {
	out := make([]byte, n)
	for i := 0; i < n; {
		chunk := 8
		if n-i < 8 {
			chunk = 1
		}
		v, f := m.Mem.Load(addr+uint64(i), chunk)
		if f != nil {
			return nil, f
		}
		storeLE(out[i:i+chunk], chunk, v)
		i += chunk
	}
	return out, nil
}

// WriteBytes writes b to memory at addr with write access.
func (m *VM) WriteBytes(addr uint64, b []byte) *Fault {
	for i := 0; i < len(b); {
		chunk := 8
		if len(b)-i < 8 {
			chunk = 1
		}
		v := loadLE(b[i:i+chunk], chunk)
		if f := m.Mem.Store(addr+uint64(i), chunk, v); f != nil {
			return f
		}
		i += chunk
	}
	return nil
}

// Run executes instructions until the machine halts, exits, or faults.
func (m *VM) Run() Stop {
	start := m.Steps
	for {
		if m.MaxSteps != 0 && m.Steps-start >= m.MaxSteps {
			return Stop{Reason: StopFault, Fault: &Fault{Kind: FaultStep, PC: m.PC}}
		}
		stop, done := m.Step()
		if done {
			return stop
		}
	}
}

// Step executes a single instruction. It returns done=true when the machine
// stopped (halt, exit, or fault); otherwise execution may continue.
func (m *VM) Step() (Stop, bool) {
	pc := m.PC
	var in Inst
	var n int
	var version uint64
	cached := false
	if m.versioner != nil {
		version = m.versioner.CodeVersion(pc)
		in, n, cached = m.cache.lookup(pc, version)
	}
	if !cached {
		// Fetch the opcode byte, then the operand bytes.
		if f := m.Mem.Fetch(pc, m.fetchBuf[:1]); f != nil {
			return m.fault(f, pc)
		}
		op := Opcode(m.fetchBuf[0])
		if !op.Valid() {
			return m.fault(&Fault{Kind: FaultIllegalInst, Msg: fmt.Sprintf("opcode %#02x", byte(op))}, pc)
		}
		n = op.Length()
		if n > 1 {
			if f := m.Mem.Fetch(pc+1, m.fetchBuf[1:n]); f != nil {
				return m.fault(f, pc)
			}
		}
		var err error
		in, _, err = Decode(m.fetchBuf[:n])
		if err != nil {
			return m.fault(&Fault{Kind: FaultIllegalInst, Msg: err.Error()}, pc)
		}
		if m.versioner != nil {
			m.cache.store(pc, version, in, n)
		}
	}
	m.Steps++
	next := pc + uint64(n)

	switch in.Op {
	case NOP:
	case HALT:
		m.PC = next
		return Stop{Reason: StopHalt}, true
	case MOV:
		m.Reg[in.Rd] = m.Reg[in.Ra]
	case MOVI:
		m.Reg[in.Rd] = in.U64
	case LEA:
		m.Reg[in.Rd] = next + uint64(in.Imm)

	case ADD:
		m.Reg[in.Rd] = m.Reg[in.Ra] + m.Reg[in.Rb]
	case SUB:
		m.Reg[in.Rd] = m.Reg[in.Ra] - m.Reg[in.Rb]
	case MUL:
		m.Reg[in.Rd] = m.Reg[in.Ra] * m.Reg[in.Rb]
	case DIVU, DIVS, REMU, REMS:
		b := m.Reg[in.Rb]
		if b == 0 {
			return m.fault(&Fault{Kind: FaultDivideByZero}, pc)
		}
		a := m.Reg[in.Ra]
		switch in.Op {
		case DIVU:
			m.Reg[in.Rd] = a / b
		case REMU:
			m.Reg[in.Rd] = a % b
		case DIVS:
			if int64(a) == -1<<63 && int64(b) == -1 {
				m.Reg[in.Rd] = a // wrap like x86/RISC-V would overflow-wrap
			} else {
				m.Reg[in.Rd] = uint64(int64(a) / int64(b))
			}
		case REMS:
			if int64(a) == -1<<63 && int64(b) == -1 {
				m.Reg[in.Rd] = 0
			} else {
				m.Reg[in.Rd] = uint64(int64(a) % int64(b))
			}
		}
	case AND:
		m.Reg[in.Rd] = m.Reg[in.Ra] & m.Reg[in.Rb]
	case OR:
		m.Reg[in.Rd] = m.Reg[in.Ra] | m.Reg[in.Rb]
	case XOR:
		m.Reg[in.Rd] = m.Reg[in.Ra] ^ m.Reg[in.Rb]
	case SHL:
		m.Reg[in.Rd] = m.Reg[in.Ra] << (m.Reg[in.Rb] & 63)
	case SHRU:
		m.Reg[in.Rd] = m.Reg[in.Ra] >> (m.Reg[in.Rb] & 63)
	case SHRS:
		m.Reg[in.Rd] = uint64(int64(m.Reg[in.Ra]) >> (m.Reg[in.Rb] & 63))
	case SLT:
		m.Reg[in.Rd] = b2u(int64(m.Reg[in.Ra]) < int64(m.Reg[in.Rb]))
	case SLTU:
		m.Reg[in.Rd] = b2u(m.Reg[in.Ra] < m.Reg[in.Rb])
	case SEQ:
		m.Reg[in.Rd] = b2u(m.Reg[in.Ra] == m.Reg[in.Rb])
	case SNE:
		m.Reg[in.Rd] = b2u(m.Reg[in.Ra] != m.Reg[in.Rb])

	case ADDI:
		m.Reg[in.Rd] = m.Reg[in.Ra] + uint64(in.Imm)
	case MULI:
		m.Reg[in.Rd] = m.Reg[in.Ra] * uint64(in.Imm)
	case ANDI:
		m.Reg[in.Rd] = m.Reg[in.Ra] & uint64(in.Imm)
	case ORI:
		m.Reg[in.Rd] = m.Reg[in.Ra] | uint64(in.Imm)
	case XORI:
		m.Reg[in.Rd] = m.Reg[in.Ra] ^ uint64(in.Imm)
	case SHLI:
		m.Reg[in.Rd] = m.Reg[in.Ra] << (uint64(in.Imm) & 63)
	case SHRUI:
		m.Reg[in.Rd] = m.Reg[in.Ra] >> (uint64(in.Imm) & 63)
	case SHRSI:
		m.Reg[in.Rd] = uint64(int64(m.Reg[in.Ra]) >> (uint64(in.Imm) & 63))
	case SLTI:
		m.Reg[in.Rd] = b2u(int64(m.Reg[in.Ra]) < in.Imm)
	case SLTUI:
		m.Reg[in.Rd] = b2u(m.Reg[in.Ra] < uint64(in.Imm))

	case NOT:
		m.Reg[in.Rd] = ^m.Reg[in.Ra]
	case NEG:
		m.Reg[in.Rd] = -m.Reg[in.Ra]
	case SEXT:
		v := m.Reg[in.Ra]
		switch in.W {
		case 1:
			m.Reg[in.Rd] = uint64(int64(int8(v)))
		case 2:
			m.Reg[in.Rd] = uint64(int64(int16(v)))
		case 4:
			m.Reg[in.Rd] = uint64(int64(int32(v)))
		}
	case ZEXT:
		v := m.Reg[in.Ra]
		switch in.W {
		case 1:
			m.Reg[in.Rd] = v & 0xff
		case 2:
			m.Reg[in.Rd] = v & 0xffff
		case 4:
			m.Reg[in.Rd] = v & 0xffffffff
		}

	case BEQ:
		if m.Reg[in.Rd] == m.Reg[in.Ra] {
			next += uint64(in.Imm)
		}
	case BNE:
		if m.Reg[in.Rd] != m.Reg[in.Ra] {
			next += uint64(in.Imm)
		}
	case BLT:
		if int64(m.Reg[in.Rd]) < int64(m.Reg[in.Ra]) {
			next += uint64(in.Imm)
		}
	case BLTU:
		if m.Reg[in.Rd] < m.Reg[in.Ra] {
			next += uint64(in.Imm)
		}
	case BGE:
		if int64(m.Reg[in.Rd]) >= int64(m.Reg[in.Ra]) {
			next += uint64(in.Imm)
		}
	case BGEU:
		if m.Reg[in.Rd] >= m.Reg[in.Ra] {
			next += uint64(in.Imm)
		}

	case JMP:
		next += uint64(in.Imm)
	case JMPR:
		next = m.Reg[in.Rd]
	case CALL:
		if f := m.push(next); f != nil {
			return m.fault(f, pc)
		}
		next += uint64(in.Imm)
	case CALLR:
		target := m.Reg[in.Rd]
		if f := m.push(next); f != nil {
			return m.fault(f, pc)
		}
		next = target
	case RET:
		v, f := m.pop()
		if f != nil {
			return m.fault(f, pc)
		}
		next = v

	case LD8U, LD8S, LD16U, LD16S, LD32U, LD32S, LD64:
		addr := m.Reg[in.Ra] + uint64(in.Imm)
		var width int
		switch in.Op {
		case LD8U, LD8S:
			width = 1
		case LD16U, LD16S:
			width = 2
		case LD32U, LD32S:
			width = 4
		default:
			width = 8
		}
		v, f := m.Mem.Load(addr, width)
		if f != nil {
			return m.fault(f, pc)
		}
		switch in.Op {
		case LD8S:
			v = uint64(int64(int8(v)))
		case LD16S:
			v = uint64(int64(int16(v)))
		case LD32S:
			v = uint64(int64(int32(v)))
		}
		m.Reg[in.Rd] = v
	case ST8, ST16, ST32, ST64:
		addr := m.Reg[in.Ra] + uint64(in.Imm)
		var width int
		switch in.Op {
		case ST8:
			width = 1
		case ST16:
			width = 2
		case ST32:
			width = 4
		default:
			width = 8
		}
		if f := m.Mem.Store(addr, width, m.Reg[in.Rd]); f != nil {
			return m.fault(f, pc)
		}

	case PUSH:
		if f := m.push(m.Reg[in.Rd]); f != nil {
			return m.fault(f, pc)
		}
	case POP:
		v, f := m.pop()
		if f != nil {
			return m.fault(f, pc)
		}
		m.Reg[in.Rd] = v

	case EEXIT:
		m.PC = next
		return Stop{Reason: StopExit, Code: uint16(in.Imm)}, true
	case INTRIN:
		fn := m.Intrinsics[uint16(in.Imm)]
		if fn == nil {
			return m.fault(&Fault{Kind: FaultIntrinsic, Msg: fmt.Sprintf("unknown intrinsic %d", in.Imm)}, pc)
		}
		m.PC = next // intrinsics may inspect/modify PC (none do today)
		if f := fn(m); f != nil {
			return m.fault(f, pc)
		}
		return Stop{}, false
	case BRK:
		return m.fault(&Fault{Kind: FaultBreak}, pc)
	default:
		return m.fault(&Fault{Kind: FaultIllegalInst, Msg: in.Op.String()}, pc)
	}

	m.PC = next
	return Stop{}, false
}

// fault finalizes a fault at pc and stops the machine.
func (m *VM) fault(f *Fault, pc uint64) (Stop, bool) {
	f.PC = pc
	m.PC = pc
	return Stop{Reason: StopFault, Fault: f}, true
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
