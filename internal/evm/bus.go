package evm

import "encoding/binary"

// Bus is the memory system the VM executes against. Implementations enforce
// their own mapping and permission model; the SGX platform implements Bus
// with EPCM-checked enclave pages plus ordinary untrusted memory, while
// FlatMem provides a permissionless space for bare programs and tests.
//
// Fetch/Load/Store access n bytes (n in 1,2,4,8 for Load/Store; arbitrary
// for Fetch). A nil *Fault means success.
type Bus interface {
	// Fetch reads len(dst) instruction bytes at addr with execute access.
	Fetch(addr uint64, dst []byte) *Fault
	// Load reads n bytes at addr (little-endian) with read access.
	Load(addr uint64, n int) (uint64, *Fault)
	// Store writes the low n bytes of v at addr with write access.
	Store(addr uint64, n int, v uint64) *Fault
}

// FlatMem is a flat byte-addressed memory with uniform RWX permission,
// used for bare (non-enclave) programs: compiler tests, assembler tests,
// and the toolchain's program-under-test harness.
type FlatMem struct {
	Base uint64
	Data []byte
}

// NewFlatMem allocates size bytes of flat memory based at base.
func NewFlatMem(base uint64, size int) *FlatMem {
	return &FlatMem{Base: base, Data: make([]byte, size)}
}

func (m *FlatMem) in(addr uint64, n int) bool {
	return addr >= m.Base && addr-m.Base+uint64(n) <= uint64(len(m.Data))
}

// Fetch implements Bus.
func (m *FlatMem) Fetch(addr uint64, dst []byte) *Fault {
	if !m.in(addr, len(dst)) {
		return &Fault{Kind: FaultBadAddress, Addr: addr}
	}
	copy(dst, m.Data[addr-m.Base:])
	return nil
}

// Load implements Bus.
func (m *FlatMem) Load(addr uint64, n int) (uint64, *Fault) {
	if !m.in(addr, n) {
		return 0, &Fault{Kind: FaultBadAddress, Addr: addr}
	}
	return loadLE(m.Data[addr-m.Base:], n), nil
}

// Store implements Bus.
func (m *FlatMem) Store(addr uint64, n int, v uint64) *Fault {
	if !m.in(addr, n) {
		return &Fault{Kind: FaultBadAddress, Addr: addr}
	}
	storeLE(m.Data[addr-m.Base:], n, v)
	return nil
}

// WriteBytes copies b into memory at addr (no permission check; host-side
// setup helper).
func (m *FlatMem) WriteBytes(addr uint64, b []byte) bool {
	if !m.in(addr, len(b)) {
		return false
	}
	copy(m.Data[addr-m.Base:], b)
	return true
}

// ReadBytes copies n bytes at addr out of memory.
func (m *FlatMem) ReadBytes(addr uint64, n int) ([]byte, bool) {
	if !m.in(addr, n) {
		return nil, false
	}
	out := make([]byte, n)
	copy(out, m.Data[addr-m.Base:])
	return out, true
}

// loadLE reads an n-byte little-endian value from b.
func loadLE(b []byte, n int) uint64 {
	switch n {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

// storeLE writes the low n bytes of v to b little-endian.
func storeLE(b []byte, n int, v uint64) {
	switch n {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}
