package evm

// Decoded-instruction caching. Interpreting an instruction costs two bus
// fetches plus a decode; steady-state enclave code is static, so the VM
// caches decoded instructions. Self-modifying code — the entire point of
// SgxElide — is handled by an explicit invalidation protocol: a bus that
// can observe writes to executable memory implements CodeVersioner with a
// *per-page* write generation; every cached entry is tagged with the
// generation it was decoded under and is ignored once the page's
// generation moves on. A bus that cannot make that promise (e.g. the
// permissionless FlatMem) simply doesn't implement the interface and the
// VM interprets uncached — always correct, just slower.
//
// Per-page generations matter for the restore path: the restorer's memcpy
// overwrites the whole text section while executing from it. Only the page
// currently being rewritten has its entries invalidated; the page hosting
// the copy loop itself thrashes briefly while the loop copies over its own
// bytes and is stable otherwise.

// CodeVersioner is implemented by buses that can detect writes to
// executable memory at page granularity.
type CodeVersioner interface {
	// CodeVersion returns a counter for the page containing addr that
	// increases whenever that page's executable bytes may have changed.
	CodeVersion(addr uint64) uint64
}

const icachePageSize = 4096

// icacheEntry is one decoded instruction; size==0 means never filled.
// version tags the page generation the decode was made under.
type icacheEntry struct {
	in      Inst
	size    uint8
	version uint64
}

// icachePage caches the decodings of one page of code. Entries carry their
// own versions, so invalidation never requires clearing the array.
type icachePage struct {
	entries [icachePageSize]icacheEntry
}

// icache maps page base addresses to their decoded entries.
type icache struct {
	pages map[uint64]*icachePage
	// One-entry lookaside for the common case of consecutive instructions
	// on one page.
	lastBase uint64
	lastPage *icachePage
}

func (c *icache) page(base uint64) *icachePage {
	if c.lastPage != nil && c.lastBase == base {
		return c.lastPage
	}
	if c.pages == nil {
		c.pages = make(map[uint64]*icachePage)
	}
	pg := c.pages[base]
	if pg == nil {
		pg = &icachePage{}
		c.pages[base] = pg
	}
	c.lastBase, c.lastPage = base, pg
	return pg
}

// lookup returns the cached decode at addr, if current for version.
func (c *icache) lookup(addr, version uint64) (Inst, int, bool) {
	pg := c.page(addr &^ uint64(icachePageSize-1))
	e := &pg.entries[addr&(icachePageSize-1)]
	if e.size == 0 || e.version != version {
		return Inst{}, 0, false
	}
	return e.in, int(e.size), true
}

// store records a decode. Instructions that span a page boundary are not
// cached (their bytes live on two pages with independent generations).
func (c *icache) store(addr, version uint64, in Inst, size int) {
	if (addr+uint64(size)-1)&^uint64(icachePageSize-1) != addr&^uint64(icachePageSize-1) {
		return
	}
	pg := c.page(addr &^ uint64(icachePageSize-1))
	pg.entries[addr&(icachePageSize-1)] = icacheEntry{in: in, size: uint8(size), version: version}
}
