// Package evm implements the Enclave Virtual Machine: a small 64-bit
// register bytecode architecture that stands in for x86-64 in this
// reproduction of SgxElide (CGO 2018).
//
// The VM is deliberately faithful to the properties SgxElide depends on:
//
//   - Code and data live in one flat byte-addressed space, so program code
//     can be treated as data and overwritten at runtime (self-modification).
//   - Every instruction fetch, load, and store is checked against page
//     permissions supplied by the memory bus (the SGX EPCM in enclave mode),
//     so the paper's PF_W program-header trick is load-bearing here too.
//   - Opcode 0x00 is an illegal instruction. A sanitized (zeroed) function
//     faults immediately when called, exactly like redacted enclave code.
package evm

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// Register conventions used by the assembler, compiler, and runtimes.
// The hardware does not enforce them, except that CALL/RET/PUSH/POP use SP.
const (
	RegRet = 0 // r0: return value, caller-saved scratch
	RegA0  = 1 // r1-r6: arguments, caller-saved
	RegA1  = 2
	RegA2  = 3
	RegA3  = 4
	RegA4  = 5
	RegA5  = 6
	RegT0  = 7 // r7: caller-saved scratch
	RegS0  = 8 // r8-r13: callee-saved
	RegS1  = 9
	RegS2  = 10
	RegS3  = 11
	RegS4  = 12
	RegS5  = 13
	RegFP  = 14 // r14: frame pointer, callee-saved
	RegSP  = 15 // r15: stack pointer
)

// Opcode identifies an EVM instruction.
type Opcode byte

// Instruction opcodes. 0x00 is reserved as the illegal instruction so that
// zero-filled (sanitized) code faults deterministically.
const (
	ILLEGAL Opcode = 0x00
	NOP     Opcode = 0x01
	HALT    Opcode = 0x02 // stop the machine (bare programs only)
	MOV     Opcode = 0x03 // rd = rs
	MOVI    Opcode = 0x04 // rd = imm64
	LEA     Opcode = 0x05 // rd = pc_next + signext(imm32)

	// Three-register ALU: rd = ra OP rb.
	ADD  Opcode = 0x10
	SUB  Opcode = 0x11
	MUL  Opcode = 0x12
	DIVU Opcode = 0x13
	DIVS Opcode = 0x14
	REMU Opcode = 0x15
	REMS Opcode = 0x16
	AND  Opcode = 0x17
	OR   Opcode = 0x18
	XOR  Opcode = 0x19
	SHL  Opcode = 0x1A // shift count taken mod 64
	SHRU Opcode = 0x1B
	SHRS Opcode = 0x1C
	SLT  Opcode = 0x1D // rd = (ra < rb) signed ? 1 : 0
	SLTU Opcode = 0x1E
	SEQ  Opcode = 0x1F // rd = (ra == rb) ? 1 : 0
	SNE  Opcode = 0x20

	// Register-immediate ALU: rd = ra OP signext(imm32).
	ADDI  Opcode = 0x21
	MULI  Opcode = 0x22
	ANDI  Opcode = 0x23
	ORI   Opcode = 0x24
	XORI  Opcode = 0x25
	SHLI  Opcode = 0x26
	SHRUI Opcode = 0x27
	SHRSI Opcode = 0x28
	SLTI  Opcode = 0x29
	SLTUI Opcode = 0x2A

	NOT  Opcode = 0x2B // rd = ^rs
	NEG  Opcode = 0x2C // rd = -rs
	SEXT Opcode = 0x2D // rd = sign-extend low w bytes of rs (w in {1,2,4})
	ZEXT Opcode = 0x2E // rd = zero-extend low w bytes of rs

	// Branches: if cond(ra, rb) then pc = pc_next + signext(imm32).
	BEQ  Opcode = 0x30
	BNE  Opcode = 0x31
	BLT  Opcode = 0x32 // signed
	BLTU Opcode = 0x33
	BGE  Opcode = 0x34 // signed
	BGEU Opcode = 0x35

	JMP   Opcode = 0x36 // pc = pc_next + signext(imm32)
	JMPR  Opcode = 0x37 // pc = rs
	CALL  Opcode = 0x38 // push pc_next; pc = pc_next + signext(imm32)
	CALLR Opcode = 0x39 // push pc_next; pc = rs
	RET   Opcode = 0x3A // pop pc

	// Loads: rd = mem[rb + signext(imm32)], with width and extension.
	LD8U  Opcode = 0x40
	LD8S  Opcode = 0x41
	LD16U Opcode = 0x42
	LD16S Opcode = 0x43
	LD32U Opcode = 0x44
	LD32S Opcode = 0x45
	LD64  Opcode = 0x46

	// Stores: mem[rb + signext(imm32)] = low bytes of rs.
	ST8  Opcode = 0x47
	ST16 Opcode = 0x48
	ST32 Opcode = 0x49
	ST64 Opcode = 0x4A

	PUSH Opcode = 0x4B // sp -= 8; mem[sp] = rs
	POP  Opcode = 0x4C // rd = mem[sp]; sp += 8

	EEXIT  Opcode = 0x50 // leave the enclave (or halt a bare program) with imm16 code
	INTRIN Opcode = 0x51 // invoke host intrinsic imm16 (models statically linked platform library routines)
	BRK    Opcode = 0x52 // debug trap
)

// Form describes the operand encoding of an instruction.
type Form byte

const (
	FormNone  Form = iota // opcode only
	FormRR                // opcode rd rs
	FormRI64              // opcode rd imm64
	FormRI32              // opcode rd imm32 (pc-relative for LEA)
	FormRRR               // opcode rd ra rb
	FormRRI32             // opcode rd ra imm32
	FormRRW               // opcode rd rs w
	FormRRB32             // opcode ra rb imm32 (branches)
	FormI32               // opcode imm32
	FormR                 // opcode r
	FormMem               // opcode r rb imm32 (loads/stores)
	FormI16               // opcode imm16
)

// opInfo is the static description of one opcode.
type opInfo struct {
	Name string
	Form Form
}

var opTable = [256]opInfo{
	ILLEGAL: {"illegal", FormNone},
	NOP:     {"nop", FormNone},
	HALT:    {"halt", FormNone},
	MOV:     {"mov", FormRR},
	MOVI:    {"movi", FormRI64},
	LEA:     {"lea", FormRI32},

	ADD:  {"add", FormRRR},
	SUB:  {"sub", FormRRR},
	MUL:  {"mul", FormRRR},
	DIVU: {"divu", FormRRR},
	DIVS: {"divs", FormRRR},
	REMU: {"remu", FormRRR},
	REMS: {"rems", FormRRR},
	AND:  {"and", FormRRR},
	OR:   {"or", FormRRR},
	XOR:  {"xor", FormRRR},
	SHL:  {"shl", FormRRR},
	SHRU: {"shru", FormRRR},
	SHRS: {"shrs", FormRRR},
	SLT:  {"slt", FormRRR},
	SLTU: {"sltu", FormRRR},
	SEQ:  {"seq", FormRRR},
	SNE:  {"sne", FormRRR},

	ADDI:  {"addi", FormRRI32},
	MULI:  {"muli", FormRRI32},
	ANDI:  {"andi", FormRRI32},
	ORI:   {"ori", FormRRI32},
	XORI:  {"xori", FormRRI32},
	SHLI:  {"shli", FormRRI32},
	SHRUI: {"shrui", FormRRI32},
	SHRSI: {"shrsi", FormRRI32},
	SLTI:  {"slti", FormRRI32},
	SLTUI: {"sltui", FormRRI32},

	NOT:  {"not", FormRR},
	NEG:  {"neg", FormRR},
	SEXT: {"sext", FormRRW},
	ZEXT: {"zext", FormRRW},

	BEQ:  {"beq", FormRRB32},
	BNE:  {"bne", FormRRB32},
	BLT:  {"blt", FormRRB32},
	BLTU: {"bltu", FormRRB32},
	BGE:  {"bge", FormRRB32},
	BGEU: {"bgeu", FormRRB32},

	JMP:   {"jmp", FormI32},
	JMPR:  {"jmpr", FormR},
	CALL:  {"call", FormI32},
	CALLR: {"callr", FormR},
	RET:   {"ret", FormNone},

	LD8U:  {"ld8u", FormMem},
	LD8S:  {"ld8s", FormMem},
	LD16U: {"ld16u", FormMem},
	LD16S: {"ld16s", FormMem},
	LD32U: {"ld32u", FormMem},
	LD32S: {"ld32s", FormMem},
	LD64:  {"ld64", FormMem},
	ST8:   {"st8", FormMem},
	ST16:  {"st16", FormMem},
	ST32:  {"st32", FormMem},
	ST64:  {"st64", FormMem},

	PUSH: {"push", FormR},
	POP:  {"pop", FormR},

	EEXIT:  {"eexit", FormI16},
	INTRIN: {"intrin", FormI16},
	BRK:    {"brk", FormNone},
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool {
	return op != ILLEGAL && opTable[op].Name != ""
}

// String returns the assembler mnemonic for op.
func (op Opcode) String() string {
	if info := opTable[op]; info.Name != "" {
		return info.Name
	}
	return "op?"
}

// OpForm returns the operand form of op.
func (op Opcode) OpForm() Form {
	return opTable[op].Form
}

// Length returns the encoded length in bytes of an instruction with opcode op.
func (op Opcode) Length() int {
	switch opTable[op].Form {
	case FormNone:
		return 1
	case FormRR:
		return 3
	case FormRI64:
		return 10
	case FormRI32:
		return 6
	case FormRRR:
		return 4
	case FormRRI32:
		return 7
	case FormRRW:
		return 4
	case FormRRB32:
		return 7
	case FormI32:
		return 5
	case FormR:
		return 2
	case FormMem:
		return 7
	case FormI16:
		return 3
	default:
		return 1
	}
}

// OpcodeByName maps assembler mnemonics to opcodes.
var OpcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, 80)
	for op := 1; op < 256; op++ {
		if info := opTable[op]; info.Name != "" {
			m[info.Name] = Opcode(op)
		}
	}
	return m
}()

// RegNames returns the canonical assembler name of register r ("r0".."r15",
// with aliases resolved by the assembler, not here).
var regNames = [NumRegs]string{
	"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
	"r8", "r9", "r10", "r11", "r12", "r13", "fp", "sp",
}

// RegName returns the display name for register r.
func RegName(r byte) string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return "r?"
}
