package evm

import "fmt"

// FaultKind classifies machine faults.
type FaultKind int

const (
	FaultNone         FaultKind = iota
	FaultIllegalInst            // illegal or truncated instruction (e.g. sanitized code)
	FaultExecPerm               // fetch from a non-executable page
	FaultReadPerm               // load from a non-readable page
	FaultWritePerm              // store to a non-writable page
	FaultBadAddress             // access outside any mapped region
	FaultDivideByZero           //
	FaultStep                   // step budget exhausted
	FaultBreak                  // BRK executed
	FaultIntrinsic              // intrinsic handler reported an error
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultIllegalInst:
		return "illegal instruction"
	case FaultExecPerm:
		return "execute permission violation"
	case FaultReadPerm:
		return "read permission violation"
	case FaultWritePerm:
		return "write permission violation"
	case FaultBadAddress:
		return "bad address"
	case FaultDivideByZero:
		return "divide by zero"
	case FaultStep:
		return "step budget exhausted"
	case FaultBreak:
		return "breakpoint"
	case FaultIntrinsic:
		return "intrinsic error"
	default:
		return "unknown fault"
	}
}

// Fault is a machine fault. It satisfies error.
type Fault struct {
	Kind FaultKind
	PC   uint64 // address of the faulting instruction
	Addr uint64 // faulting data address, if applicable
	Msg  string // optional detail
}

func (f *Fault) Error() string {
	s := fmt.Sprintf("evm fault: %s at pc=%#x", f.Kind, f.PC)
	if f.Addr != 0 {
		s += fmt.Sprintf(" addr=%#x", f.Addr)
	}
	if f.Msg != "" {
		s += ": " + f.Msg
	}
	return s
}

// Access describes the kind of memory access being performed.
type Access int

const (
	Read Access = iota
	Write
	Exec
)

func (a Access) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Exec:
		return "exec"
	}
	return "access?"
}

// permFault maps an access kind to the corresponding fault kind.
func permFault(a Access) FaultKind {
	switch a {
	case Read:
		return FaultReadPerm
	case Write:
		return FaultWritePerm
	default:
		return FaultExecPerm
	}
}
