package evm

import "testing"

// BenchmarkInterpreterThroughput measures raw VM speed on a tight loop —
// the "CPU frequency" of the simulated platform, for putting the
// EXPERIMENTS.md absolute numbers in context.
func BenchmarkInterpreterThroughput(b *testing.B) {
	// loop: addi r1, r1, 1; bne r1, r2, loop; halt
	addi := Inst{Op: ADDI, Rd: 1, Ra: 1, Imm: 1}
	bne := Inst{Op: BNE, Rd: 1, Ra: 2, Imm: -int64(addi.Len() + 7)}
	prog := asmProg(addi, bne, Inst{Op: HALT})

	mem := NewFlatMem(0x1000, 4096)
	mem.WriteBytes(0x1000, prog)
	m := New(mem)
	const iters = 1_000_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PC = 0x1000
		m.Reg[1] = 0
		m.Reg[2] = iters
		m.SetSP(0x1000 + 4096)
		stop := m.Run()
		if stop.Reason != StopHalt {
			b.Fatal(stop)
		}
	}
	b.ReportMetric(float64(iters*2)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkMemoryOps measures load/store-heavy code (the restore memcpy's
// profile).
func BenchmarkMemoryOps(b *testing.B) {
	// copy loop: ld64 r3,[r1]; st64 [r2],r3; addi r1,8; addi r2,8; addi r4,-8; bne r4,r0,loop
	insts := []Inst{
		{Op: LD64, Rd: 3, Ra: 1, Imm: 0},
		{Op: ST64, Rd: 3, Ra: 2, Imm: 0},
		{Op: ADDI, Rd: 1, Ra: 1, Imm: 8},
		{Op: ADDI, Rd: 2, Ra: 2, Imm: 8},
		{Op: ADDI, Rd: 4, Ra: 4, Imm: -8},
	}
	total := 0
	for _, in := range insts {
		total += in.Len()
	}
	loop := append([]Inst{}, insts...)
	loop = append(loop, Inst{Op: BNE, Rd: 4, Ra: 0, Imm: -int64(total + 7)})
	loop = append(loop, Inst{Op: HALT})
	prog := asmProg(loop...)

	const n = 64 << 10
	mem := NewFlatMem(0x1000, 4096+2*n+4096)
	mem.WriteBytes(0x1000, prog)
	m := New(mem)
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PC = 0x1000
		m.Reg[1] = 0x2000
		m.Reg[2] = 0x2000 + n
		m.Reg[4] = n
		m.Reg[0] = 0
		stop := m.Run()
		if stop.Reason != StopHalt {
			b.Fatal(stop)
		}
	}
}
