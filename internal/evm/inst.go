package evm

import (
	"encoding/binary"
	"fmt"
)

// Inst is one decoded instruction.
type Inst struct {
	Op  Opcode
	Rd  byte   // destination (or source for stores/push, first reg for branches)
	Ra  byte   // first source / base register
	Rb  byte   // second source
	W   byte   // width operand for SEXT/ZEXT (1, 2, or 4)
	Imm int64  // signed immediate (branch/jump displacements, ALU, mem offsets)
	U64 uint64 // 64-bit immediate for MOVI
}

// Len returns the encoded length of the instruction in bytes.
func (in Inst) Len() int { return in.Op.Length() }

// Encode appends the encoding of in to buf and returns the extended slice.
func (in Inst) Encode(buf []byte) []byte {
	buf = append(buf, byte(in.Op))
	switch in.Op.OpForm() {
	case FormNone:
	case FormRR:
		buf = append(buf, in.Rd, in.Ra)
	case FormRI64:
		buf = append(buf, in.Rd)
		buf = binary.LittleEndian.AppendUint64(buf, in.U64)
	case FormRI32:
		buf = append(buf, in.Rd)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.Imm))
	case FormRRR:
		buf = append(buf, in.Rd, in.Ra, in.Rb)
	case FormRRI32:
		buf = append(buf, in.Rd, in.Ra)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.Imm))
	case FormRRW:
		buf = append(buf, in.Rd, in.Ra, in.W)
	case FormRRB32:
		buf = append(buf, in.Rd, in.Ra)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.Imm))
	case FormI32:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.Imm))
	case FormR:
		buf = append(buf, in.Rd)
	case FormMem:
		buf = append(buf, in.Rd, in.Ra)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.Imm))
	case FormI16:
		buf = binary.LittleEndian.AppendUint16(buf, uint16(in.Imm))
	}
	return buf
}

// Decode decodes the instruction starting at code[0]. It returns the
// instruction and its length, or an error if the bytes do not form a valid
// instruction (truncated or illegal opcode).
func Decode(code []byte) (Inst, int, error) {
	if len(code) == 0 {
		return Inst{}, 0, fmt.Errorf("evm: decode: empty code")
	}
	op := Opcode(code[0])
	if !op.Valid() {
		return Inst{Op: op}, 1, fmt.Errorf("evm: decode: illegal opcode %#02x", byte(op))
	}
	n := op.Length()
	if len(code) < n {
		return Inst{Op: op}, len(code), fmt.Errorf("evm: decode: truncated %s (need %d bytes, have %d)", op, n, len(code))
	}
	in := Inst{Op: op}
	switch op.OpForm() {
	case FormNone:
	case FormRR:
		in.Rd, in.Ra = code[1], code[2]
	case FormRI64:
		in.Rd = code[1]
		in.U64 = binary.LittleEndian.Uint64(code[2:])
	case FormRI32:
		in.Rd = code[1]
		in.Imm = int64(int32(binary.LittleEndian.Uint32(code[2:])))
	case FormRRR:
		in.Rd, in.Ra, in.Rb = code[1], code[2], code[3]
	case FormRRI32:
		in.Rd, in.Ra = code[1], code[2]
		in.Imm = int64(int32(binary.LittleEndian.Uint32(code[3:])))
	case FormRRW:
		in.Rd, in.Ra, in.W = code[1], code[2], code[3]
	case FormRRB32:
		in.Rd, in.Ra = code[1], code[2]
		in.Imm = int64(int32(binary.LittleEndian.Uint32(code[3:])))
	case FormI32:
		in.Imm = int64(int32(binary.LittleEndian.Uint32(code[1:])))
	case FormR:
		in.Rd = code[1]
	case FormMem:
		in.Rd, in.Ra = code[1], code[2]
		in.Imm = int64(int32(binary.LittleEndian.Uint32(code[3:])))
	case FormI16:
		in.Imm = int64(binary.LittleEndian.Uint16(code[1:]))
	}
	if err := in.check(); err != nil {
		return in, n, err
	}
	return in, n, nil
}

// check validates operand ranges that the encoding cannot express invalidly
// except via hand-crafted bytes (bad register numbers, bad widths).
func (in Inst) check() error {
	bad := func(r byte) bool { return r >= NumRegs }
	switch in.Op.OpForm() {
	case FormRR, FormRRW:
		if bad(in.Rd) || bad(in.Ra) {
			return fmt.Errorf("evm: %s: bad register", in.Op)
		}
		if in.Op.OpForm() == FormRRW && in.W != 1 && in.W != 2 && in.W != 4 {
			return fmt.Errorf("evm: %s: bad width %d", in.Op, in.W)
		}
	case FormRRR:
		if bad(in.Rd) || bad(in.Ra) || bad(in.Rb) {
			return fmt.Errorf("evm: %s: bad register", in.Op)
		}
	case FormRRI32, FormRRB32, FormMem:
		if bad(in.Rd) || bad(in.Ra) {
			return fmt.Errorf("evm: %s: bad register", in.Op)
		}
	case FormRI64, FormRI32, FormR:
		if bad(in.Rd) {
			return fmt.Errorf("evm: %s: bad register", in.Op)
		}
	}
	return nil
}

// String renders the instruction in assembler syntax (without resolving
// branch targets; see Disasm for address-aware output).
func (in Inst) String() string {
	r := RegName
	switch in.Op.OpForm() {
	case FormNone:
		return in.Op.String()
	case FormRR:
		return fmt.Sprintf("%s %s, %s", in.Op, r(in.Rd), r(in.Ra))
	case FormRI64:
		return fmt.Sprintf("%s %s, %#x", in.Op, r(in.Rd), in.U64)
	case FormRI32:
		return fmt.Sprintf("%s %s, %d", in.Op, r(in.Rd), in.Imm)
	case FormRRR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Ra), r(in.Rb))
	case FormRRI32:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Ra), in.Imm)
	case FormRRW:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Ra), in.W)
	case FormRRB32:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Ra), in.Imm)
	case FormI32:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case FormR:
		return fmt.Sprintf("%s %s", in.Op, r(in.Rd))
	case FormMem:
		switch in.Op {
		case ST8, ST16, ST32, ST64:
			return fmt.Sprintf("%s [%s%+d], %s", in.Op, r(in.Ra), in.Imm, r(in.Rd))
		default:
			return fmt.Sprintf("%s %s, [%s%+d]", in.Op, r(in.Rd), r(in.Ra), in.Imm)
		}
	case FormI16:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	}
	return in.Op.String()
}
