package elide

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestFaultConnScriptOrder: scripted actions are consumed one per matching
// operation, in order, and operations beyond the script pass through.
func TestFaultConnScriptOrder(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	f := NewFaultConn(c1).WithScript(
		FaultAction{Op: OpWrite},             // pure probe: first write passes
		FaultAction{Op: OpWrite, Fail: true}, // second write dies
	)

	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 3)
		_, err := io.ReadFull(c2, buf)
		done <- err
	}()
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatalf("first write (no-op action): %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_, err := f.Write([]byte("def"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second write err = %v, want ErrInjected", err)
	}
	// The fault closed the underlying conn: the peer sees EOF.
	if _, err := c2.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer still readable after injected fault")
	}
}

// TestFaultConnScriptOpMatching: an OpRead action lets writes through
// untouched and fires on the first read.
func TestFaultConnScriptOpMatching(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	f := NewFaultConn(c1).WithScript(FaultAction{Op: OpRead, Fail: true})

	go io.ReadFull(c2, make([]byte, 2))
	if _, err := f.Write([]byte("hi")); err != nil {
		t.Fatalf("write consumed a read action: %v", err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
}

// TestFaultConnScriptSilentClose: a Close action kills the socket without
// reporting ErrInjected — the operation itself hits the dead conn, the way
// a peer dying between syscalls looks to real code.
func TestFaultConnScriptSilentClose(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	f := NewFaultConn(c1).WithScript(FaultAction{Op: OpWrite, Close: true})
	_, err := f.Write([]byte("x"))
	if err == nil {
		t.Fatal("write succeeded on a silently closed conn")
	}
	if errors.Is(err, ErrInjected) {
		t.Fatalf("silent close leaked ErrInjected: %v", err)
	}
}

// TestFaultConnScriptDelayThenBudget: a delay-only action holds the
// operation without consuming it, and an exhausted script falls through to
// the byte-budget faults.
func TestFaultConnScriptDelayThenBudget(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	f := NewFaultConn(c1).
		WithScript(FaultAction{Op: OpWrite, Delay: 10 * time.Millisecond}).
		FailWritesAfter(2)

	go io.ReadFull(c2, make([]byte, 2))
	start := time.Now()
	if _, err := f.Write([]byte("ab")); err != nil {
		t.Fatalf("delayed write: %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("delay action did not delay")
	}
	// Script exhausted; the 2-byte write budget is spent too.
	if _, err := f.Write([]byte("c")); !errors.Is(err, ErrInjected) {
		t.Fatalf("budget fault after script = %v, want ErrInjected", err)
	}
}
