package elide

import (
	"encoding/json"
	"fmt"
	"sort"

	"sgxelide/internal/elf"
	"sgxelide/internal/sdk"
)

// Whitelist is the set of function names that must not be sanitized: the
// functions of the dummy enclave (SgxElide runtime + SDK libraries). It is
// identical for every protected application, so it is generated once and
// reused (paper §4.1).
type Whitelist map[string]bool

// Contains reports whether name is whitelisted.
func (w Whitelist) Contains(name string) bool { return w[name] }

// Names returns the whitelist sorted.
func (w Whitelist) Names() []string {
	out := make([]string, 0, len(w))
	for n := range w {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MarshalJSON serializes the whitelist as a sorted name array
// (whitelist.json, as in the artifact).
func (w Whitelist) MarshalJSON() ([]byte, error) {
	return json.Marshal(w.Names())
}

// UnmarshalJSON parses the name-array form.
func (w *Whitelist) UnmarshalJSON(b []byte) error {
	var names []string
	if err := json.Unmarshal(b, &names); err != nil {
		return err
	}
	*w = make(Whitelist, len(names))
	for _, n := range names {
		(*w)[n] = true
	}
	return nil
}

// BuildDummyEnclave builds the dummy enclave: only the SgxElide runtime and
// the SDK libraries it requires, with no user code. Normal users never
// touch it — it exists to define the whitelist.
func BuildDummyEnclave(cfg sdk.BuildConfig) (*sdk.BuildResult, error) {
	iface, err := ParseEDL()
	if err != nil {
		return nil, err
	}
	return sdk.BuildEnclave(cfg, iface, TrustedSources()...)
}

// GenerateWhitelist builds the dummy enclave and extracts its function
// symbols.
func GenerateWhitelist() (Whitelist, error) {
	res, err := BuildDummyEnclave(sdk.BuildConfig{})
	if err != nil {
		return nil, fmt.Errorf("elide: building dummy enclave: %w", err)
	}
	return WhitelistFromELF(res.ELF)
}

// WhitelistFromELF extracts the function-symbol whitelist from an enclave
// image (normally dummy.so).
func WhitelistFromELF(elfBytes []byte) (Whitelist, error) {
	f, err := elf.Read(elfBytes)
	if err != nil {
		return nil, err
	}
	w := make(Whitelist)
	for _, s := range f.FuncSymbols() {
		w[s.Name] = true
	}
	if len(w) == 0 {
		return nil, fmt.Errorf("elide: no function symbols in dummy enclave")
	}
	return w, nil
}
