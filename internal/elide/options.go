package elide

import (
	"context"
	"net"
	"time"

	"sgxelide/internal/obs"
)

// This file is the single home of the package's functional options: the
// three families (ClientOption, ServerOption, FailoverOption) share their
// defaults and naming conventions here instead of drifting apart in three
// files. Conventions: With*Timeout for deadlines, WithRetry* for retry
// policy, With*Metrics / With*Tracer for observability wiring. Renamed
// options keep thin deprecated aliases so existing callers compile.

// Shared defaults of the transport and server policies. Exported so
// operators tuning one knob can express the others relative to the
// defaults instead of restating magic numbers.
const (
	// DefaultDialTimeout bounds one TCP connection attempt.
	DefaultDialTimeout = 5 * time.Second
	// DefaultRequestTimeout bounds one attest/request round trip.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultRetryBudget is how many times a transient failure is retried
	// after the first attempt.
	DefaultRetryBudget = 3
	// DefaultBackoffBase is the base of the jittered exponential backoff
	// between retries.
	DefaultBackoffBase = 50 * time.Millisecond
	// DefaultBackoffCap clamps the exponential backoff.
	DefaultBackoffCap = 2 * time.Second
	// DefaultMaxSessions caps concurrent TCP sessions on the server.
	DefaultMaxSessions = 256
	// DefaultIOTimeout is the server's per-connection read/write deadline.
	DefaultIOTimeout = 30 * time.Second
	// DefaultDrainTimeout bounds the server's graceful-shutdown drain.
	DefaultDrainTimeout = 10 * time.Second
	// DefaultResumeCacheSize caps the server's session-resumption cache.
	DefaultResumeCacheSize = 1024
	// DefaultResumeTTL bounds how long a cached channel may be resumed;
	// past it a reconnecting client pays the full handshake again.
	DefaultResumeTTL = 15 * time.Minute
	// DefaultPeerOpTimeout bounds one replication-link operation (dial
	// excluded, see DefaultDialTimeout).
	DefaultPeerOpTimeout = 2 * time.Second
	// DefaultBreakerThreshold is how many consecutive failures trip an
	// endpoint's circuit breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is the open → half-open delay.
	DefaultBreakerCooldown = 5 * time.Second
	// DefaultHealthAlpha is the endpoint health EWMA smoothing factor.
	DefaultHealthAlpha = 0.3
	// DefaultPeerCooldown is how long a peer that refused the replication
	// handshake (a legacy server, or one without a fleet key) is left
	// alone before the next attempt.
	DefaultPeerCooldown = 5 * time.Minute
	// DefaultGossipInterval is the membership probe/gossip round cadence.
	DefaultGossipInterval = time.Second
	// DefaultSuspectTimeout is how long a suspected member has to refute
	// the suspicion (directly or via gossip) before it is declared dead.
	DefaultSuspectTimeout = 5 * time.Second
	// DefaultMembershipInterval is the cadence at which a watching
	// EndpointPool re-queries the fleet for its current member set.
	DefaultMembershipInterval = 15 * time.Second
)

// --- ClientOption (TCPClient) ---

// ClientOption configures a TCPClient.
type ClientOption func(*clientOptions)

// WithDialTimeout bounds each connection attempt (default
// DefaultDialTimeout).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(o *clientOptions) { o.dialTimeout = d }
}

// WithRequestTimeout bounds each attest/request round trip, including the
// reads and writes on the wire (default DefaultRequestTimeout).
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(o *clientOptions) { o.requestTimeout = d }
}

// WithRetryBudget sets how many times a transient failure is retried after
// the first attempt (default DefaultRetryBudget; 0 disables retries).
func WithRetryBudget(n int) ClientOption {
	return func(o *clientOptions) { o.maxRetries = n }
}

// WithMaxRetries sets the retry budget.
//
// Deprecated: use WithRetryBudget.
func WithMaxRetries(n int) ClientOption { return WithRetryBudget(n) }

// WithRetryBackoff sets the exponential backoff base and cap between
// retries (default DefaultBackoffBase, DefaultBackoffCap). Each retry
// sleeps a uniformly jittered duration in [base/2, base) * 2^attempt,
// clamped to cap.
func WithRetryBackoff(base, cap time.Duration) ClientOption {
	return func(o *clientOptions) { o.backoffBase, o.backoffCap = base, cap }
}

// WithBackoff sets the retry backoff.
//
// Deprecated: use WithRetryBackoff.
func WithBackoff(base, cap time.Duration) ClientOption { return WithRetryBackoff(base, cap) }

// WithProtocolVersion sets the highest wire protocol version the client
// offers in its attestation handshake (default ProtoLegacy).
//
// At ProtoV1 the client asks the server to bundle the encrypted meta and
// data responses into the attestation reply, collapsing the restore's
// three round trips into one flight, and pipelines the handshake replay
// with the pending request on reconnects. Version negotiation is
// backward compatible both ways: a legacy server ignores the offer and
// the client falls back to per-request round trips; a legacy client
// never offers, so a new server answers it exactly as before.
func WithProtocolVersion(v uint8) ClientOption {
	return func(o *clientOptions) { o.proto = v }
}

// WithClientMetrics wires the client into an obs registry.
func WithClientMetrics(r *obs.Registry) ClientOption {
	return func(o *clientOptions) { o.metrics = r }
}

// WithClientTracer wires the client into an obs tracer: each Attest or
// Request becomes a span (with per-attempt children showing the retry
// history). When the caller's context already carries a span — the
// restore runtime passes its phase span down — the client parents to it
// and the tracer option is unnecessary.
func WithClientTracer(t *obs.Tracer) ClientOption {
	return func(o *clientOptions) { o.tracer = t }
}

// WithDialer replaces the TCP dialer — tests use this to inject faulty
// connections or in-memory pipes.
func WithDialer(dial func(ctx context.Context, addr string) (net.Conn, error)) ClientOption {
	return func(o *clientOptions) { o.dial = dial }
}

// --- ServerOption (Server) ---

// ServerOption configures a Server beyond its ServerConfig.
type ServerOption func(*serverOptions)

// WithMaxSessions caps concurrent TCP sessions; further accepts block until
// a slot frees (default DefaultMaxSessions).
func WithMaxSessions(n int) ServerOption {
	return func(o *serverOptions) { o.maxSessions = n }
}

// WithIOTimeout sets the per-connection read/write deadline armed before
// every wire interaction (default DefaultIOTimeout). A session idle longer
// than this is dropped.
func WithIOTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.ioTimeout = d }
}

// WithDrainTimeout bounds how long Serve waits for in-flight sessions
// after its context is cancelled before force-closing their connections
// (default DefaultDrainTimeout).
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.drain = d }
}

// WithResumeCacheSize caps the session-resumption cache (default
// DefaultResumeCacheSize entries; 0 disables resumption).
func WithResumeCacheSize(n int) ServerOption {
	return func(o *serverOptions) { o.resumeCap = n }
}

// WithResumeTTL bounds how long a cached channel may be resumed (default
// DefaultResumeTTL; d <= 0 disables expiry). Expiry is lazy: an entry
// past its TTL is dropped on lookup, audited as AuditResumeExpired, and
// the client re-attests in full — the revocation backstop for a
// compromised-then-revoked client that would otherwise stay hot in the
// LRU forever.
func WithResumeTTL(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.resumeTTL = d }
}

// WithResumeStore replaces the session-resumption cache with an external
// ResumeStore implementation (default: the in-process LRU sized by
// WithResumeCacheSize). The store must be safe for concurrent use.
func WithResumeStore(rs ResumeStore) ServerOption {
	return func(o *serverOptions) { o.resumeStore = rs }
}

// WithResumeReplication joins this server to a resume-replication fleet
// (DESIGN §14): fleetKey is the shared AES sealing key (16/24/32 bytes)
// under which records cross the wire, peers are the replica addresses to
// push fresh channels to and fetch from on a replayed-handshake miss.
// With a fleetKey but no peers the server only *accepts* replication
// links (a valid asymmetric deployment); peers without a valid fleetKey
// is a construction error — channel keys never travel unwrapped.
func WithResumeReplication(fleetKey []byte, peers ...string) ServerOption {
	return func(o *serverOptions) {
		o.fleetKey = append([]byte(nil), fleetKey...)
		o.peers = append([]string(nil), peers...)
	}
}

// WithPeerCooldown sets how long a peer that refused the replication
// handshake (a legacy binary, or one running without a fleet key) is left
// alone before the next dial attempt (default DefaultPeerCooldown).
// Refutation is automatic: once the cooldown lapses, the next push or
// fetch redials, and an upgraded peer sheds the legacy mark on the first
// successful handshake.
func WithPeerCooldown(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.peerCooldown = d }
}

// WithGossip enables SWIM-style fleet membership (DESIGN §15). self is the
// address this server advertises to the mesh — it must be the address
// peers can dial back, not the listen wildcard. Requires the fleet key
// from WithResumeReplication: membership deltas cross the wire sealed
// under it, so a node outside the fleet can neither forge a death
// certificate nor enumerate the mesh. The static peers given to
// WithResumeReplication double as gossip seeds; one live seed is enough
// to bootstrap the full member set.
func WithGossip(self string) ServerOption {
	return func(o *serverOptions) { o.gossipSelf = self }
}

// WithGossipInterval sets the membership probe/gossip round cadence
// (default DefaultGossipInterval).
func WithGossipInterval(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.gossipInterval = d }
}

// WithSuspectTimeout sets how long a suspected member has to refute the
// suspicion before it is declared dead (default DefaultSuspectTimeout).
// Shorter detects failures faster but false-positives under load; the
// SWIM incarnation machinery makes a false positive self-healing, not
// fatal — the suspect refutes with a bumped incarnation on the next
// round.
func WithSuspectTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.suspectTimeout = d }
}

// withPeerDialer replaces the replication/gossip peer dialer — an
// in-package test seam for partition tests that gate which peers can
// reach which.
func withPeerDialer(dial func(addr string, timeout time.Duration) (net.Conn, error)) ServerOption {
	return func(o *serverOptions) { o.peerDial = dial }
}

// WithEnclaveRateLimit bounds fresh attestations per registered enclave
// with a token bucket: rps tokens per second, holding at most burst
// (default off; burst <= 0 defaults to one second's worth of rate). A client attesting past the bucket receives a typed
// overload answer (ErrOverloaded) carrying a retry-after hint instead of
// a refusal, so one noisy deployment's restore storm cannot starve the
// other enclaves the store serves. Session resumptions are not charged —
// a reconnecting client mid-protocol must not be pushed into a retry
// loop by its own enclave's quota.
func WithEnclaveRateLimit(rps float64, burst int) ServerOption {
	return func(o *serverOptions) { o.attestRate, o.attestBurst = rps, burst }
}

// WithEnclaveInflightLimit caps concurrently served channel requests per
// registered enclave (default off). Requests past the cap receive a typed
// overload answer (ErrOverloaded); other enclaves' sessions are
// unaffected. This bounds the serving work one enclave's fleet can pin,
// not its connection count — WithMaxSessions bounds that globally.
func WithEnclaveInflightLimit(n int) ServerOption {
	return func(o *serverOptions) { o.maxInflight = n }
}

// WithServerMetrics wires the server into an obs registry.
func WithServerMetrics(r *obs.Registry) ServerOption {
	return func(o *serverOptions) { o.metrics = r }
}

// WithServerTracer wires the server into an obs tracer: each TCP session
// becomes a span tree with a child per protocol phase — the server-side
// mirror of the client's restore pipeline. When the client's v1 handshake
// carries trace context, the session span joins the client's restore
// trace instead of rooting its own, so merged exports render one
// cross-process tree.
func WithServerTracer(t *obs.Tracer) ServerOption {
	return func(o *serverOptions) { o.tracer = t }
}

// WithServerAudit wires the server into an audit log: every attestation
// verdict, resume-cache outcome, and QoS shed becomes a schema-versioned
// wide event carrying the session's trace ID.
func WithServerAudit(a *obs.AuditLog) ServerOption {
	return func(o *serverOptions) { o.audit = a }
}

// --- FailoverOption (FailoverClient / EndpointPool) ---

// FailoverOption configures a FailoverClient and its endpoint pool.
type FailoverOption func(*poolOptions)

// WithBreakerThreshold sets how many consecutive failures trip an
// endpoint's breaker open (default DefaultBreakerThreshold).
func WithBreakerThreshold(n int) FailoverOption {
	return func(o *poolOptions) { o.failThreshold = n }
}

// WithBreakerCooldown sets how long a tripped breaker stays open before a
// half-open probe is allowed (default DefaultBreakerCooldown).
func WithBreakerCooldown(d time.Duration) FailoverOption {
	return func(o *poolOptions) { o.cooldown = d }
}

// WithHealthAlpha sets the EWMA smoothing factor in (0, 1] (default
// DefaultHealthAlpha; larger = faster reaction to recent outcomes).
func WithHealthAlpha(a float64) FailoverOption {
	return func(o *poolOptions) { o.alpha = a }
}

// WithFailoverMetrics wires the pool into an obs registry: per-endpoint
// outcome counters plus pool-level failover/breaker counters.
func WithFailoverMetrics(r *obs.Registry) FailoverOption {
	return func(o *poolOptions) { o.metrics = r }
}

// WithFailoverAudit wires the pool into an audit log: breaker transitions,
// endpoint switches, and lost sessions become wide events (switches and
// losses carry the trace of the restore that hit them).
func WithFailoverAudit(a *obs.AuditLog) FailoverOption {
	return func(o *poolOptions) { o.audit = a }
}

// WithEndpointClientOptions passes options to every per-endpoint
// TCPClient the pool builds (timeouts, retry budget, protocol version,
// dialer, ...).
func WithEndpointClientOptions(opts ...ClientOption) FailoverOption {
	return func(o *poolOptions) { o.clientOpts = opts }
}

// WithClientFactory replaces the per-endpoint channel constructor (tests
// use this to wire in-process or fault-injecting clients).
func WithClientFactory(f func(addr string) SecretChannel) FailoverOption {
	return func(o *poolOptions) { o.newClient = f }
}
