package elide

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjected is the error a FaultConn reports when a scripted fault
// fires. It is connection-shaped on purpose: the transport treats it as
// transient, exactly like a real mid-stream reset.
var ErrInjected = errors.New("elide: injected connection fault")

// Fault operations a scripted FaultAction can match.
const (
	OpAny   = 0 // matches the next operation of either kind
	OpRead  = 1
	OpWrite = 2
)

// FaultAction is one step of a scripted fault schedule: when an I/O
// operation matching Op arrives, sleep Delay, then optionally kill the
// connection — Fail reports ErrInjected (a visible reset), Close shuts the
// underlying conn silently so the *operation itself* sees the OS error, the
// way a peer death between syscalls does. An action with neither set is a
// pure delay probe.
type FaultAction struct {
	Op    int // OpAny, OpRead, or OpWrite
	Delay time.Duration
	Fail  bool
	Close bool
}

// FaultConn wraps a net.Conn and injects faults — added latency, mid-stream
// connection drops, short (truncated) I/O, and ordered per-operation
// scripts — so the robustness tests can prove the transport's retry and
// reconnect behaviour against deterministic failures instead of flaky
// sleeps. The zero configuration injects nothing; arm faults with the
// With* methods before handing the conn out.
//
// A FaultConn is safe for concurrent use.
type FaultConn struct {
	net.Conn

	mu          sync.Mutex
	readDelay   time.Duration
	writeDelay  time.Duration
	readBudget  int64 // bytes until reads fail; -1 = unlimited
	writeBudget int64 // bytes until writes fail; -1 = unlimited
	truncate    bool  // deliver the partial data before failing
	script      []FaultAction
}

// NewFaultConn wraps conn with no faults armed.
func NewFaultConn(conn net.Conn) *FaultConn {
	return &FaultConn{Conn: conn, readBudget: -1, writeBudget: -1}
}

// WithReadDelay sleeps d before every read.
func (f *FaultConn) WithReadDelay(d time.Duration) *FaultConn {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readDelay = d
	return f
}

// WithWriteDelay sleeps d before every write.
func (f *FaultConn) WithWriteDelay(d time.Duration) *FaultConn {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeDelay = d
	return f
}

// FailReadsAfter drops the connection once n more bytes have been read.
func (f *FaultConn) FailReadsAfter(n int64) *FaultConn {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readBudget = n
	return f
}

// FailWritesAfter drops the connection once n more bytes have been
// written.
func (f *FaultConn) FailWritesAfter(n int64) *FaultConn {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
	return f
}

// Truncating makes the budget faults deliver the partial data first (a
// short read/write followed by the drop), modelling a torn frame rather
// than a clean failure.
func (f *FaultConn) Truncating() *FaultConn {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.truncate = true
	return f
}

// WithScript arms an ordered fault schedule: each Read/Write consumes the
// first pending action whose Op matches it (OpAny matches both) and acts
// it out. Operations beyond the script fall through to the budget faults.
// Scripts express "the third write dies" directly, where budgets would
// need byte counting that breaks whenever a frame size changes.
func (f *FaultConn) WithScript(actions ...FaultAction) *FaultConn {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.script = append(f.script, actions...)
	return f
}

// nextAction consumes the first pending script action matching op.
func (f *FaultConn) nextAction(op int) (FaultAction, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, a := range f.script {
		if a.Op == OpAny || a.Op == op {
			f.script = append(f.script[:i:i], f.script[i+1:]...)
			return a, true
		}
	}
	return FaultAction{}, false
}

// runAction acts out one script step; done means the operation must not
// proceed (the action consumed it).
func (f *FaultConn) runAction(a FaultAction) (int, error, bool) {
	if a.Delay > 0 {
		time.Sleep(a.Delay)
	}
	if a.Fail {
		f.Conn.Close()
		return 0, ErrInjected, true
	}
	if a.Close {
		// Silent close: let the operation itself hit the dead socket.
		f.Conn.Close()
	}
	return 0, nil, false
}

// Read implements net.Conn with the armed read faults.
func (f *FaultConn) Read(b []byte) (int, error) {
	if a, ok := f.nextAction(OpRead); ok {
		if n, err, done := f.runAction(a); done {
			return n, err
		}
	}
	f.mu.Lock()
	delay := f.readDelay
	budget := f.readBudget
	truncate := f.truncate
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if budget < 0 {
		return f.Conn.Read(b)
	}
	if budget == 0 {
		f.Conn.Close()
		return 0, ErrInjected
	}
	limit := b
	if int64(len(limit)) > budget {
		limit = limit[:budget]
	}
	n, err := f.Conn.Read(limit)
	f.mu.Lock()
	f.readBudget -= int64(n)
	exhausted := f.readBudget == 0
	f.mu.Unlock()
	if err == nil && exhausted && !truncate {
		// Clean-failure mode kills the conn at the boundary immediately;
		// truncating mode lets this short read through and fails the next.
		f.Conn.Close()
		return n, ErrInjected
	}
	return n, err
}

// Write implements net.Conn with the armed write faults.
func (f *FaultConn) Write(b []byte) (int, error) {
	if a, ok := f.nextAction(OpWrite); ok {
		if n, err, done := f.runAction(a); done {
			return n, err
		}
	}
	f.mu.Lock()
	delay := f.writeDelay
	budget := f.writeBudget
	truncate := f.truncate
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if budget < 0 {
		return f.Conn.Write(b)
	}
	if budget == 0 {
		f.Conn.Close()
		return 0, ErrInjected
	}
	limit := b
	if int64(len(limit)) > budget {
		limit = limit[:budget]
	}
	n, err := f.Conn.Write(limit)
	f.mu.Lock()
	f.writeBudget -= int64(n)
	f.mu.Unlock()
	if err != nil {
		return n, err
	}
	if n < len(b) {
		f.Conn.Close()
		if truncate {
			return n, ErrInjected
		}
		return 0, ErrInjected
	}
	return n, nil
}
