package elide

import (
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sgx"
)

// MaxFrame bounds a single frame's payload, enforced on both the read and
// the write side so a corrupted length header cannot make either end
// allocate unboundedly or stream garbage.
const MaxFrame = 64 << 20

// Wire protocol versions, offered by the client in its attestation
// handshake (attestMsg.Proto) and confirmed by the shape of the server's
// reply. Negotiation degrades to ProtoLegacy in both directions: a legacy
// server ignores the unknown handshake fields and answers with a bare
// 32-byte key, and a legacy client never offers, so a new server answers
// it exactly as before.
const (
	// ProtoLegacy: one flight per protocol step (attest, then each
	// channel request) — the wire behavior of every release so far.
	ProtoLegacy uint8 = 0
	// ProtoV1: the attest reply bundles the encrypted channel responses
	// the client asked for (attestMsg.Bundle), collapsing a restore into
	// one network flight; reconnects pipeline the handshake replay with
	// the pending request into one flight.
	ProtoV1 uint8 = 1
)

// Bundle request bits (attestMsg.Bundle): which encrypted channel
// responses a ProtoV1 client wants pipelined into the attest reply, in
// protocol order.
const (
	bundleMeta byte = 1 << 0 // REQUEST_META reply
	bundleData byte = 1 << 1 // REQUEST_DATA reply
)

// Response frames carry a one-byte status prefix so a refusal is a
// first-class protocol event, distinct from any payload (including a
// legitimate zero-length response).
const (
	statusOK         = 0 // rest of the frame is the response payload
	statusErr        = 1 // rest of the frame is a UTF-8 error message
	statusOverloaded = 2 // u32 retry-after millis + UTF-8 reason (backpressure)
)

// framePool recycles the scratch buffers the frame writers assemble small
// frames in. Capacity is capped at pooledFrame so a one-off huge frame
// does not pin megabytes in the pool; typical protocol frames (handshake
// replies, channel requests, meta) are well under it.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// pooledFrame is the largest total frame (header included) assembled in a
// pooled buffer and written in one syscall; larger payloads are written
// directly after a pooled header so the pool never holds huge buffers.
const pooledFrame = 64 << 10

// writeWireFrame writes one length-prefixed frame: an optional status
// byte (status < 0 omits it) followed by body. Small frames are assembled
// in a pooled buffer and hit the socket in a single write with zero
// allocations; large bodies get a pooled header write followed by the
// body itself, so the secret payload is never copied.
func writeWireFrame(w io.Writer, status int, body []byte) error {
	plen := len(body)
	if status >= 0 {
		plen++
	}
	if plen > MaxFrame {
		return fmt.Errorf("%w (%d bytes on write)", ErrFrameTooLarge, plen)
	}
	bp := framePool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(plen))
	if status >= 0 {
		buf = append(buf, byte(status))
	}
	var err error
	if 4+plen <= pooledFrame {
		buf = append(buf, body...)
		_, err = w.Write(buf)
	} else {
		if _, err = w.Write(buf); err == nil {
			_, err = w.Write(body)
		}
	}
	if cap(buf) <= pooledFrame {
		*bp = buf[:0]
		framePool.Put(bp)
	}
	return err
}

// writeFrame writes one length-prefixed frame (no status byte — the
// request direction).
func writeFrame(w io.Writer, b []byte) error {
	return writeWireFrame(w, -1, b)
}

// readFrameInto reads one length-prefixed frame into buf (grown as
// needed), returning the payload slice aliasing buf. Feeding each call's
// return value back in amortizes the allocation to zero across a
// session's request loop; pass nil when the payload must be retained
// beyond the next read.
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) < 4 {
		buf = make([]byte, 256)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, fmt.Errorf("%w (%d bytes on read)", ErrFrameTooLarge, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// readFrame reads one length-prefixed frame into fresh memory.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w (%d bytes on read)", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeResponse writes an OK response frame (status prefix + payload).
func writeResponse(w io.Writer, b []byte) error {
	return writeWireFrame(w, statusOK, b)
}

// writeErrorFrame writes a refusal frame carrying the reason.
func writeErrorFrame(w io.Writer, msg string) error {
	const maxMsg = 1024 // cap the reason so errors can't balloon frames
	if len(msg) > maxMsg {
		msg = msg[:maxMsg]
	}
	return writeStringFrame(w, statusErr, nil, msg)
}

// writeOverloadFrame writes a backpressure frame: the retry-after hint in
// millis followed by the reason. The client surfaces it as an
// *OverloadedError. A positive sub-millisecond hint is clamped UP to 1ms,
// not truncated to 0: a zero hint tells the client "retry immediately",
// which in a hot loop defeats the backpressure the frame exists to apply.
func writeOverloadFrame(w io.Writer, retryAfter time.Duration, msg string) error {
	const maxMsg = 1024
	if len(msg) > maxMsg {
		msg = msg[:maxMsg]
	}
	ms := retryAfter.Milliseconds()
	if ms <= 0 {
		ms = 0
		if retryAfter > 0 {
			ms = 1
		}
	}
	var hint [4]byte
	binary.LittleEndian.PutUint32(hint[:], uint32(min64(ms, int64(^uint32(0)))))
	return writeStringFrame(w, statusOverloaded, hint[:], msg)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// writeStringFrame assembles status || extra || msg in a pooled buffer —
// the error-direction twin of writeWireFrame that avoids a []byte(msg)
// conversion allocation.
func writeStringFrame(w io.Writer, status byte, extra []byte, msg string) error {
	bp := framePool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(1+len(extra)+len(msg)))
	buf = append(buf, status)
	buf = append(buf, extra...)
	buf = append(buf, msg...)
	_, err := w.Write(buf)
	if cap(buf) <= pooledFrame {
		*bp = buf[:0]
		framePool.Put(bp)
	}
	return err
}

// readResponse reads a status-prefixed response frame. A statusErr frame
// becomes a *RefusedError (matching ErrRefused); a statusOverloaded frame
// becomes an *OverloadedError (matching ErrOverloaded) carrying the
// server's retry-after hint. The returned payload is freshly allocated —
// ownership transfers to the caller.
func readResponse(r io.Reader) ([]byte, error) {
	frame, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if len(frame) == 0 {
		return nil, fmt.Errorf("elide: malformed response frame (no status byte)")
	}
	switch frame[0] {
	case statusOK:
		return frame[1:], nil
	case statusErr:
		return nil, &RefusedError{Msg: string(frame[1:])}
	case statusOverloaded:
		if len(frame) < 5 {
			return nil, fmt.Errorf("elide: malformed overload frame (%d bytes)", len(frame))
		}
		ms := binary.LittleEndian.Uint32(frame[1:5])
		return nil, &OverloadedError{
			RetryAfter: time.Duration(ms) * time.Millisecond,
			Msg:        string(frame[5:]),
		}
	default:
		return nil, fmt.Errorf("elide: unknown response status %d", frame[0])
	}
}

// --- TCPClient ---

// clientOptions collects the functional options of NewTCPClient. The
// With* constructors live in options.go alongside the other families.
type clientOptions struct {
	dialTimeout    time.Duration
	requestTimeout time.Duration
	maxRetries     int
	backoffBase    time.Duration
	backoffCap     time.Duration
	proto          uint8
	metrics        *obs.Registry
	tracer         *obs.Tracer
	dial           func(ctx context.Context, addr string) (net.Conn, error)
}

// TCPClient reaches the authentication server over TCP. It dials lazily,
// applies per-operation deadlines, and retries transient connection
// failures with exponential backoff and jitter, transparently replaying
// the attestation handshake on a fresh connection (the server resumes the
// session keyed by the client's quote-bound ephemeral key, so the channel
// key survives a reconnect).
//
// With WithProtocolVersion(ProtoV1) the client offers the pipelined
// protocol: Attest asks the server to bundle the encrypted meta and data
// responses into its reply, and Request serves them from the local cache
// in protocol order without touching the wire — a whole restore in one
// network flight. The protocol's strict ordering makes the positional
// cache sound: the first channel request after an attest is always
// REQUEST_META, the second REQUEST_DATA (the same invariant the runtime's
// phase naming relies on).
//
// Build it with NewTCPClient; the zero value is not usable. A TCPClient is
// safe for concurrent use, though the restore protocol is sequential.
type TCPClient struct {
	addr string
	opt  clientOptions

	mu       sync.Mutex
	conn     net.Conn
	attested bool
	// handshake replay state: the exact attestMsg that last attested
	// successfully, resent on a fresh connection before retrying a
	// request.
	handshake *attestMsg
	// serverProto is the wire version the server's attest reply confirmed;
	// it gates the pipelined reconnect replay (a legacy server decodes the
	// handshake straight off the socket and must see nothing behind it).
	serverProto uint8
	// pending holds the encrypted channel responses a ProtoV1 attest
	// pre-fetched, served FIFO by Request. Cleared on every (re)attest.
	pending [][]byte
}

// NewTCPClient builds a client for the server at addr. No connection is
// made until the first Attest.
func NewTCPClient(addr string, opts ...ClientOption) *TCPClient {
	o := clientOptions{
		dialTimeout:    DefaultDialTimeout,
		requestTimeout: DefaultRequestTimeout,
		maxRetries:     DefaultRetryBudget,
		backoffBase:    DefaultBackoffBase,
		backoffCap:     DefaultBackoffCap,
		proto:          ProtoLegacy,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if o.dial == nil {
		o.dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return &TCPClient{addr: addr, opt: o}
}

// Close tears down the current connection, if any.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closeConnLocked()
}

func (c *TCPClient) closeConnLocked() error {
	var err error
	if c.conn != nil {
		err = c.conn.Close()
		c.conn = nil
	}
	return err
}

// ensureConnLocked dials if there is no live connection.
func (c *TCPClient) ensureConnLocked(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	dctx, cancel := context.WithTimeout(ctx, c.opt.dialTimeout)
	defer cancel()
	conn, err := c.opt.dial(dctx, c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.opt.metrics.Counter("client.dials").Inc()
	return nil
}

// sendHandshakeLocked sends msg and reads the server's attestation reply.
func (c *TCPClient) sendHandshakeLocked(msg *attestMsg) ([]byte, error) {
	if err := gob.NewEncoder(c.conn).Encode(msg); err != nil {
		return nil, err
	}
	c.opt.metrics.Counter("client.flights").Inc()
	return readResponse(c.conn)
}

// parseAttestReply splits the server's attestation reply into the channel
// public key and any bundled channel responses. A legacy reply is the bare
// 32-byte key; a ProtoV1 reply is
//
//	version(1) || pub(32) || u32 metaLen || encMeta || u32 dataLen || encData
//
// where a zero length means that part was not bundled. The shapes cannot
// collide: a v1 reply is at least 41 bytes and never exactly 32.
func parseAttestReply(payload []byte) (pub []byte, bundled [][]byte, proto uint8, err error) {
	if len(payload) == 32 {
		return payload, nil, ProtoLegacy, nil
	}
	if len(payload) < 1+32+8 || payload[0] != ProtoV1 {
		return nil, nil, 0, fmt.Errorf("elide: malformed attest reply (%d bytes)", len(payload))
	}
	pub = payload[1:33]
	rest := payload[33:]
	for part := 0; part < 2; part++ {
		if len(rest) < 4 {
			return nil, nil, 0, fmt.Errorf("elide: truncated attest bundle")
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return nil, nil, 0, fmt.Errorf("elide: truncated attest bundle part (%d of %d bytes)", len(rest), n)
		}
		if n > 0 {
			bundled = append(bundled, rest[:n])
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, nil, 0, fmt.Errorf("elide: %d trailing bytes after attest bundle", len(rest))
	}
	return pub, bundled, ProtoV1, nil
}

// Attest implements SecretChannel: it performs the attestation handshake,
// retrying transient failures on fresh connections. At ProtoV1 the
// handshake asks the server to bundle the meta and data responses into
// its reply, pre-filling the cache later Requests drain.
func (c *TCPClient) Attest(ctx context.Context, q *sgx.Quote, clientPub []byte) ([]byte, error) {
	var bundle byte
	if c.opt.proto >= ProtoV1 {
		bundle = bundleMeta | bundleData
	}
	return c.attest(ctx, q, clientPub, bundle)
}

// ResumeAttest runs the attestation handshake as a session *replay*: same
// wire exchange as Attest, but the v1 offer carries an empty bundle
// request, which the server reads as "this client is mid-protocol —
// resume, don't restart". Two things follow: a resume-replicating server
// answers with the session's original channel key (locally cached or
// fetched from a fleet peer) rather than a fresh one, and no pre-fetched
// responses are bundled, so nothing can land at the wrong position in the
// already-running protocol. The failover layer uses this when it
// re-attests an established session on a new replica; a fresh restore
// wants Attest.
func (c *TCPClient) ResumeAttest(ctx context.Context, q *sgx.Quote, clientPub []byte) ([]byte, error) {
	c.opt.metrics.Counter("client.resume_attests").Inc()
	return c.attest(ctx, q, clientPub, 0)
}

// attest is the shared handshake engine behind Attest and ResumeAttest.
func (c *TCPClient) attest(ctx context.Context, q *sgx.Quote, clientPub []byte, bundle byte) ([]byte, error) {
	msg := &attestMsg{Quote: q, ClientPub: append([]byte(nil), clientPub...), Proto: c.opt.proto}
	if c.opt.proto >= ProtoV1 {
		msg.Bundle = bundle
		// Trace-context capability: stamp the restore trace so the server's
		// session spans join it. The handshake replay on reconnects reuses
		// this msg, keeping the resumed session in the same trace. A legacy
		// server's gob decoder drops the fields unseen.
		if sp := obs.SpanFromContext(ctx); sp != nil {
			msg.TraceID, msg.SpanID = sp.TraceID(), sp.ID()
		}
	}
	defer c.opt.metrics.Observe("client.attest_ns", time.Now())
	pub, err := c.withRetry(ctx, "client.attest", func() ([]byte, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.pending = nil // a (re)attestation restarts the protocol sequence
		if err := c.ensureConnLocked(ctx); err != nil {
			return nil, err
		}
		c.setDeadlineLocked()
		payload, err := c.sendHandshakeLocked(msg)
		if err != nil {
			return nil, err
		}
		pub, bundled, proto, err := parseAttestReply(payload)
		if err != nil {
			return nil, err
		}
		c.attested = true
		c.handshake = msg
		c.serverProto = proto
		c.pending = bundled
		if len(bundled) > 0 {
			c.opt.metrics.Counter("client.bundled_attests").Inc()
		}
		return pub, nil
	})
	if err != nil {
		return nil, err
	}
	return pub, nil
}

// Request implements SecretChannel: one encrypted exchange on the
// attested channel. When a ProtoV1 attest pre-fetched the response it is
// served from the cache without touching the wire; otherwise it is one
// round trip. On a transient failure it reconnects, replays the
// attestation handshake (resuming the server-side session and channel
// key), and resends the request — against a ProtoV1 server the replay and
// the request are pipelined into a single flight.
func (c *TCPClient) Request(ctx context.Context, enc []byte) ([]byte, error) {
	c.mu.Lock()
	if !c.attested {
		c.mu.Unlock()
		return nil, ErrNotAttested
	}
	if len(c.pending) > 0 {
		resp := c.pending[0]
		c.pending = c.pending[1:]
		c.mu.Unlock()
		c.opt.metrics.Counter("client.bundle_hits").Inc()
		obs.SpanFromContext(ctx).SetStr("transport", "bundled")
		return resp, nil
	}
	c.mu.Unlock()
	defer c.opt.metrics.Observe("client.request_ns", time.Now())
	return c.withRetry(ctx, "client.request", func() ([]byte, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		fresh := c.conn == nil
		if err := c.ensureConnLocked(ctx); err != nil {
			return nil, err
		}
		c.setDeadlineLocked()
		switch {
		case fresh && c.serverProto >= ProtoV1:
			// Pipelined resume: the handshake replay and the pending request
			// go out back to back, then both replies are read — one flight
			// instead of two. The replay must not re-request a bundle: the
			// enclave is mid-protocol, and pre-fetched responses would land
			// at the wrong positions.
			replay := *c.handshake
			replay.Bundle = 0
			if err := gob.NewEncoder(c.conn).Encode(&replay); err != nil {
				return nil, err
			}
			if err := writeFrame(c.conn, enc); err != nil {
				return nil, err
			}
			c.opt.metrics.Counter("client.flights").Inc()
			c.opt.metrics.Counter("client.pipelined_resumes").Inc()
			if _, err := readResponse(c.conn); err != nil {
				return nil, err
			}
			return readResponse(c.conn)
		case fresh:
			// Legacy server: resume the session before the request. The
			// sequential order matters — a legacy server decodes the
			// handshake straight off the socket and may buffer past it.
			replay := *c.handshake
			replay.Bundle = 0
			if _, err := c.sendHandshakeLocked(&replay); err != nil {
				return nil, err
			}
		}
		if err := writeFrame(c.conn, enc); err != nil {
			return nil, err
		}
		c.opt.metrics.Counter("client.flights").Inc()
		return readResponse(c.conn)
	})
}

// setDeadlineLocked arms the per-operation I/O deadline. A SetDeadline
// failure means the connection is already dead; the next read or write
// reports that with a more useful error than the deadline call would.
func (c *TCPClient) setDeadlineLocked() {
	if c.opt.requestTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.opt.requestTimeout))
	}
}

// withRetry runs op, retrying transient failures with exponential backoff
// and jitter until the budget is spent, then reports ErrServerUnavailable.
// A server overload answer is also retried — honoring the server's
// retry-after hint when it exceeds the backoff — but when the budget runs
// out it surfaces as the typed *OverloadedError, not as unavailability:
// the server is alive, it just said "not now". The whole operation is one
// span (parented to the context's span when present), with an "attempt"
// child per try so a trace shows the retry history, not just the final
// outcome.
func (c *TCPClient) withRetry(ctx context.Context, metric string, op func() ([]byte, error)) (out []byte, err error) {
	span := obs.SpanFromContext(ctx).Child(metric)
	if span == nil {
		span = c.opt.tracer.Start(metric)
	}
	tried := 0
	defer func() {
		span.SetInt("attempts", int64(tried))
		span.SetError(err)
		span.End()
	}()
	var last error
	var overloadDelay time.Duration
	attempts := c.opt.maxRetries + 1
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.opt.metrics.Counter(metric + "_retries").Inc()
			delay := c.backoff(attempt - 1)
			if overloadDelay > delay {
				delay = overloadDelay
			}
			overloadDelay = 0
			if err := sleepCtx(ctx, delay); err != nil {
				return nil, err
			}
		}
		tried++
		asp := span.Child("attempt")
		out, err := op()
		if err == nil {
			asp.End()
			return out, nil
		}
		asp.SetError(err)
		asp.End()
		// A dead connection must not be reused by the next attempt (or a
		// later Request); drop it before classifying the error. The close
		// error is irrelevant next to the op error being handled.
		c.mu.Lock()
		_ = c.closeConnLocked()
		c.mu.Unlock()
		var oe *OverloadedError
		if errors.As(err, &oe) {
			c.opt.metrics.Counter(metric + "_overloaded").Inc()
			overloadDelay = oe.RetryAfter
			if overloadDelay > c.opt.backoffCap {
				overloadDelay = c.opt.backoffCap
			}
			last = err
			continue
		}
		if !isTransient(err) {
			return nil, err
		}
		last = err
	}
	var oe *OverloadedError
	if errors.As(last, &oe) {
		return nil, last
	}
	c.opt.metrics.Counter(metric + "_unavailable").Inc()
	return nil, &unavailableError{attempts: attempts, last: last}
}

// backoff computes the jittered exponential delay for the given retry
// index: uniform in [base/2, base) * 2^i, clamped to the cap. The jitter
// comes from math/rand/v2's process-wide generator, which is safe for
// concurrent use without a lock — backoffs from parallel requests on one
// client must neither race on a shared rand.Rand nor contend on the
// client mutex that the in-flight operation holds.
func (c *TCPClient) backoff(i int) time.Duration {
	d := c.opt.backoffBase << uint(i)
	if d > c.opt.backoffCap || d <= 0 {
		d = c.opt.backoffCap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + rand.N(half)
}

// sleepCtx sleeps d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
