package elide

import (
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sgx"
)

// MaxFrame bounds a single frame's payload, enforced on both the read and
// the write side so a corrupted length header cannot make either end
// allocate unboundedly or stream garbage.
const MaxFrame = 64 << 20

// Response frames carry a one-byte status prefix so a refusal is a
// first-class protocol event, distinct from any payload (including a
// legitimate zero-length response).
const (
	statusOK  = 0 // rest of the frame is the response payload
	statusErr = 1 // rest of the frame is a UTF-8 error message
)

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, b []byte) error {
	if len(b) > MaxFrame {
		return fmt.Errorf("%w (%d bytes on write)", ErrFrameTooLarge, len(b))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w (%d bytes on read)", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// writeResponse writes an OK response frame (status prefix + payload).
func writeResponse(w io.Writer, b []byte) error {
	out := make([]byte, 1+len(b))
	out[0] = statusOK
	copy(out[1:], b)
	return writeFrame(w, out)
}

// writeErrorFrame writes a refusal frame carrying the reason.
func writeErrorFrame(w io.Writer, msg string) error {
	const maxMsg = 1024 // cap the reason so errors can't balloon frames
	if len(msg) > maxMsg {
		msg = msg[:maxMsg]
	}
	out := make([]byte, 1+len(msg))
	out[0] = statusErr
	copy(out[1:], msg)
	return writeFrame(w, out)
}

// readResponse reads a status-prefixed response frame. A statusErr frame
// becomes a *RefusedError (matching ErrRefused).
func readResponse(r io.Reader) ([]byte, error) {
	frame, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if len(frame) == 0 {
		return nil, fmt.Errorf("elide: malformed response frame (no status byte)")
	}
	switch frame[0] {
	case statusOK:
		return frame[1:], nil
	case statusErr:
		return nil, &RefusedError{Msg: string(frame[1:])}
	default:
		return nil, fmt.Errorf("elide: unknown response status %d", frame[0])
	}
}

// --- client options ---

// clientOptions collects the functional options of NewTCPClient.
type clientOptions struct {
	dialTimeout    time.Duration
	requestTimeout time.Duration
	maxRetries     int
	backoffBase    time.Duration
	backoffCap     time.Duration
	metrics        *obs.Registry
	tracer         *obs.Tracer
	dial           func(ctx context.Context, addr string) (net.Conn, error)
}

// ClientOption configures a TCPClient.
type ClientOption func(*clientOptions)

// WithDialTimeout bounds each connection attempt (default 5s).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(o *clientOptions) { o.dialTimeout = d }
}

// WithRequestTimeout bounds each attest/request round trip, including the
// reads and writes on the wire (default 30s).
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(o *clientOptions) { o.requestTimeout = d }
}

// WithMaxRetries sets how many times a transient failure is retried after
// the first attempt (default 3; 0 disables retries).
func WithMaxRetries(n int) ClientOption {
	return func(o *clientOptions) { o.maxRetries = n }
}

// WithBackoff sets the exponential backoff base and cap between retries
// (default 50ms base, 2s cap). Each retry sleeps a uniformly jittered
// duration in [base/2, base) * 2^attempt, clamped to cap.
func WithBackoff(base, cap time.Duration) ClientOption {
	return func(o *clientOptions) { o.backoffBase, o.backoffCap = base, cap }
}

// WithClientMetrics wires the client into an obs registry.
func WithClientMetrics(r *obs.Registry) ClientOption {
	return func(o *clientOptions) { o.metrics = r }
}

// WithClientTracer wires the client into an obs tracer: each Attest or
// Request becomes a span (with per-attempt children showing the retry
// history). When the caller's context already carries a span — the
// restore runtime passes its phase span down — the client parents to it
// and the tracer option is unnecessary.
func WithClientTracer(t *obs.Tracer) ClientOption {
	return func(o *clientOptions) { o.tracer = t }
}

// WithDialer replaces the TCP dialer — tests use this to inject faulty
// connections or in-memory pipes.
func WithDialer(dial func(ctx context.Context, addr string) (net.Conn, error)) ClientOption {
	return func(o *clientOptions) { o.dial = dial }
}

// --- TCPClient ---

// TCPClient reaches the authentication server over TCP. It dials lazily,
// applies per-operation deadlines, and retries transient connection
// failures with exponential backoff and jitter, transparently replaying
// the attestation handshake on a fresh connection (the server resumes the
// session keyed by the client's quote-bound ephemeral key, so the channel
// key survives a reconnect).
//
// Build it with NewTCPClient; the zero value is not usable. A TCPClient is
// safe for concurrent use, though the restore protocol is sequential.
type TCPClient struct {
	addr string
	opt  clientOptions

	mu       sync.Mutex
	conn     net.Conn
	attested bool
	// handshake replay state: the exact attestMsg that last attested
	// successfully, resent on a fresh connection before retrying a
	// request.
	handshake *attestMsg
}

// NewTCPClient builds a client for the server at addr. No connection is
// made until the first Attest.
func NewTCPClient(addr string, opts ...ClientOption) *TCPClient {
	o := clientOptions{
		dialTimeout:    5 * time.Second,
		requestTimeout: 30 * time.Second,
		maxRetries:     3,
		backoffBase:    50 * time.Millisecond,
		backoffCap:     2 * time.Second,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if o.dial == nil {
		o.dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return &TCPClient{addr: addr, opt: o}
}

// Close tears down the current connection, if any.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closeConnLocked()
}

func (c *TCPClient) closeConnLocked() error {
	var err error
	if c.conn != nil {
		err = c.conn.Close()
		c.conn = nil
	}
	return err
}

// ensureConnLocked dials if there is no live connection.
func (c *TCPClient) ensureConnLocked(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	dctx, cancel := context.WithTimeout(ctx, c.opt.dialTimeout)
	defer cancel()
	conn, err := c.opt.dial(dctx, c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.opt.metrics.Counter("client.dials").Inc()
	return nil
}

// sendHandshakeLocked sends msg and reads the server's attestation reply.
func (c *TCPClient) sendHandshakeLocked(msg *attestMsg) ([]byte, error) {
	if err := gob.NewEncoder(c.conn).Encode(msg); err != nil {
		return nil, err
	}
	return readResponse(c.conn)
}

// Attest implements Client: it performs the attestation handshake,
// retrying transient failures on fresh connections.
func (c *TCPClient) Attest(ctx context.Context, q *sgx.Quote, clientPub []byte) ([]byte, error) {
	msg := &attestMsg{Quote: q, ClientPub: append([]byte(nil), clientPub...)}
	defer c.opt.metrics.Observe("client.attest_ns", time.Now())
	pub, err := c.withRetry(ctx, "client.attest", func() ([]byte, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if err := c.ensureConnLocked(ctx); err != nil {
			return nil, err
		}
		c.setDeadlineLocked()
		pub, err := c.sendHandshakeLocked(msg)
		if err != nil {
			return nil, err
		}
		c.attested = true
		c.handshake = msg
		return pub, nil
	})
	if err != nil {
		return nil, err
	}
	return pub, nil
}

// Request implements Client: one encrypted round trip on the attested
// channel. On a transient failure it reconnects, replays the attestation
// handshake (resuming the server-side session and channel key), and
// resends the request.
func (c *TCPClient) Request(ctx context.Context, enc []byte) ([]byte, error) {
	c.mu.Lock()
	attested := c.attested
	c.mu.Unlock()
	if !attested {
		return nil, ErrNotAttested
	}
	defer c.opt.metrics.Observe("client.request_ns", time.Now())
	return c.withRetry(ctx, "client.request", func() ([]byte, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		fresh := c.conn == nil
		if err := c.ensureConnLocked(ctx); err != nil {
			return nil, err
		}
		c.setDeadlineLocked()
		if fresh {
			// New connection: resume the session before the request.
			if _, err := c.sendHandshakeLocked(c.handshake); err != nil {
				return nil, err
			}
		}
		if err := writeFrame(c.conn, enc); err != nil {
			return nil, err
		}
		return readResponse(c.conn)
	})
}

// setDeadlineLocked arms the per-operation I/O deadline.
func (c *TCPClient) setDeadlineLocked() {
	if c.opt.requestTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opt.requestTimeout))
	}
}

// withRetry runs op, retrying transient failures with exponential backoff
// and jitter until the budget is spent, then reports ErrServerUnavailable.
// The whole operation is one span (parented to the context's span when
// present), with an "attempt" child per try so a trace shows the retry
// history, not just the final outcome.
func (c *TCPClient) withRetry(ctx context.Context, metric string, op func() ([]byte, error)) (out []byte, err error) {
	span := obs.SpanFromContext(ctx).Child(metric)
	if span == nil {
		span = c.opt.tracer.Start(metric)
	}
	tried := 0
	defer func() {
		span.SetInt("attempts", int64(tried))
		span.SetError(err)
		span.End()
	}()
	var last error
	attempts := c.opt.maxRetries + 1
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.opt.metrics.Counter(metric + "_retries").Inc()
			if err := sleepCtx(ctx, c.backoff(attempt-1)); err != nil {
				return nil, err
			}
		}
		tried++
		asp := span.Child("attempt")
		out, err := op()
		if err == nil {
			asp.End()
			return out, nil
		}
		asp.SetError(err)
		asp.End()
		// A dead connection must not be reused by the next attempt (or a
		// later Request); drop it before classifying the error.
		c.mu.Lock()
		c.closeConnLocked()
		c.mu.Unlock()
		if !isTransient(err) {
			return nil, err
		}
		last = err
	}
	c.opt.metrics.Counter(metric + "_unavailable").Inc()
	return nil, &unavailableError{attempts: attempts, last: last}
}

// backoff computes the jittered exponential delay for the given retry
// index: uniform in [base/2, base) * 2^i, clamped to the cap. The jitter
// comes from math/rand/v2's process-wide generator, which is safe for
// concurrent use without a lock — backoffs from parallel requests on one
// client must neither race on a shared rand.Rand nor contend on the
// client mutex that the in-flight operation holds.
func (c *TCPClient) backoff(i int) time.Duration {
	d := c.opt.backoffBase << uint(i)
	if d > c.opt.backoffCap || d <= 0 {
		d = c.opt.backoffCap
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + rand.N(half)
}

// sleepCtx sleeps d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
