package elide

import (
	"context"
	"errors"
	"testing"

	"sgxelide/internal/obs"
	"sgxelide/internal/sgx"
)

// tracedRestore launches app p on a fresh traced host and runs a full
// restore, returning the completed span records.
func tracedRestore(t *testing.T, san SanitizeOptions, flags uint64) []obs.SpanRecord {
	t.Helper()
	ca, h := env(t)
	p := buildApp(t, h, san)
	tracer := obs.NewTracer(0)
	h.Tracer = tracer
	h.Metrics = obs.NewRegistry()
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	code, err := Restore(encl, flags)
	if err != nil || code != RestoreOKServer {
		t.Fatalf("restore = %d, %v (runtime: %v)", code, err, rt.Errs())
	}
	if got := h.Metrics.Counter("sdk.ecalls").Load(); got < 1 {
		t.Fatalf("sdk.ecalls = %d, want >= 1", got)
	}
	if got := h.Metrics.Counter("sdk.ocalls").Load(); got < 3 {
		t.Fatalf("sdk.ocalls = %d, want >= 3", got)
	}
	return tracer.Completed()
}

// phaseRecord returns the first record with the given name and whether one
// exists.
func phaseRecord(recs []obs.SpanRecord, name string) (obs.SpanRecord, bool) {
	for _, r := range recs {
		if r.Name == name {
			return r, true
		}
	}
	return obs.SpanRecord{}, false
}

// assertSpanTree checks the invariants every trace must satisfy: spans end
// after they start, and every child lies within its parent's bounds.
func assertSpanTree(t *testing.T, recs []obs.SpanRecord) {
	t.Helper()
	byID := make(map[uint64]obs.SpanRecord, len(recs))
	for _, r := range recs {
		byID[r.SpanID] = r
	}
	for _, r := range recs {
		if r.EndNS < r.StartNS {
			t.Errorf("span %q ends before it starts (%d < %d)", r.Name, r.EndNS, r.StartNS)
		}
		p, ok := byID[r.ParentID]
		if !ok {
			continue
		}
		if r.StartNS < p.StartNS || r.EndNS > p.EndNS {
			t.Errorf("span %q [%d,%d] outside parent %q [%d,%d]",
				r.Name, r.StartNS, r.EndNS, p.Name, p.StartNS, p.EndNS)
		}
	}
}

// TestRestoreTracePhases: a single traced launch yields a span tree with
// all six pipeline phases in the paper's protocol order — attest strictly
// before request_meta before request_data, the synthesized restore after
// the data arrives, and seal last.
func TestRestoreTracePhases(t *testing.T) {
	for _, tc := range []struct {
		name   string
		san    SanitizeOptions
		source string // expected request_data attribute
	}{
		{"remote-data", SanitizeOptions{}, "server"},
		{"local-data", SanitizeOptions{EncryptLocal: true}, "local"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recs := tracedRestore(t, tc.san, FlagSealAfter)
			assertSpanTree(t, recs)

			phases := make(map[string]obs.SpanRecord, len(RestorePhases))
			for _, name := range RestorePhases {
				r, ok := phaseRecord(recs, name)
				if !ok {
					t.Fatalf("phase %q missing from trace:\n%s", name, obs.RenderTree(recs))
				}
				phases[name] = r
			}
			if got := phases["request_data"].Attrs["source"]; got != tc.source {
				t.Errorf("request_data source = %v, want %v", got, tc.source)
			}

			// Protocol ordering (paper Figure 2): each phase strictly after
			// the previous one; seal after everything else.
			order := []string{"attest", "request_meta", "request_data", "restore", "seal"}
			for i := 1; i < len(order); i++ {
				prev, cur := phases[order[i-1]], phases[order[i]]
				if cur.StartNS < prev.EndNS {
					t.Errorf("phase %q starts (%d) before %q ends (%d)",
						cur.Name, cur.StartNS, prev.Name, prev.EndNS)
				}
			}
			// The payload decrypt+MAC-verify precedes the restore memcpy.
			if d := phases["decrypt"]; d.EndNS > phases["restore"].StartNS &&
				d.StartNS > phases["restore"].StartNS {
				t.Errorf("decrypt [%d,%d] after restore start %d",
					d.StartNS, d.EndNS, phases["restore"].StartNS)
			}
			for _, r := range recs {
				if r.Name != "seal" && r.Name != "ecall:elide_restore" && r.Name != "elide_restore" &&
					r.StartNS > phases["seal"].EndNS {
					t.Errorf("span %q starts after the seal phase", r.Name)
				}
			}

			// The per-phase accounting the CLI prints must see every phase.
			durs := obs.DurationsByName(recs)
			for _, name := range RestorePhases {
				if durs[name] < 0 {
					t.Errorf("negative accumulated duration for %q", name)
				}
			}
		})
	}
}

// downClient fails every server call — the shape of an unreachable
// authentication server.
type downClient struct{}

func (downClient) Attest(context.Context, *sgx.Quote, []byte) ([]byte, error) {
	return nil, errors.New("server unreachable")
}
func (downClient) Request(context.Context, []byte) ([]byte, error) {
	return nil, errors.New("server unreachable")
}

func (downClient) Close() error { return nil }

// TestRestoreTraceFailureNoRestoreSpan: a failed restore must not
// synthesize a phantom "restore" phase — the memcpy never ran.
func TestRestoreTraceFailureNoRestoreSpan(t *testing.T) {
	_, h := env(t)
	p := buildApp(t, h, SanitizeOptions{EncryptLocal: true})
	tracer := obs.NewTracer(0)
	h.Tracer = tracer
	encl, _, err := p.Launch(h, downClient{}, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	code, err := Restore(encl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if code < RestoreErrBase {
		t.Fatalf("restore unexpectedly succeeded with code %d", code)
	}
	recs := tracer.Completed()
	if _, ok := phaseRecord(recs, "restore"); ok {
		t.Fatalf("failed restore synthesized a restore span:\n%s", obs.RenderTree(recs))
	}
	att, ok := phaseRecord(recs, "attest")
	if !ok || att.Error == "" {
		t.Fatalf("attest span missing or not marked failed: %+v", att)
	}
}

// TestRestoreTraceSealedLaunch: a second launch restoring from the sealed
// file needs no server — the trace must show read_sealed + decrypt +
// restore and no attestation or channel phases.
func TestRestoreTraceSealedLaunch(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{EncryptLocal: true})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	// First launch seals; the file store carries over to the second.
	files := p.LocalFiles()
	encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, files)
	if err != nil {
		t.Fatal(err)
	}
	if code, err := Restore(encl, FlagSealAfter); err != nil || code != RestoreOKServer {
		t.Fatalf("first restore = %d, %v (runtime: %v)", code, err, rt.Errs())
	}
	encl.Destroy()

	// Second launch on the same host (the seal key is platform-bound),
	// this time traced: the first restore above ran with a nil tracer.
	tracer := obs.NewTracer(0)
	h.Tracer = tracer
	encl2, rt2, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, files)
	if err != nil {
		t.Fatal(err)
	}
	defer encl2.Destroy()
	if code, err := Restore(encl2, FlagTrySealed); err != nil || code != RestoreOKSealed {
		t.Fatalf("sealed restore = %d, %v (runtime: %v)", code, err, rt2.Errs())
	}
	recs := tracer.Completed()
	assertSpanTree(t, recs)
	for _, want := range []string{"read_sealed", "decrypt", "restore"} {
		if _, ok := phaseRecord(recs, want); !ok {
			t.Fatalf("sealed-launch trace missing %q:\n%s", want, obs.RenderTree(recs))
		}
	}
	for _, absent := range []string{"attest", "request_meta", "request_data"} {
		if _, ok := phaseRecord(recs, absent); ok {
			t.Fatalf("sealed-launch trace unexpectedly contains %q", absent)
		}
	}
}
