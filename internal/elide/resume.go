package elide

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"sgxelide/internal/sdk"
)

// Session resumption as a fleet-level resource. The server keys every
// established channel by the quote-bound client ephemeral key hash; a
// reconnecting client replays its handshake and gets the same channel key
// back, so the enclave's derived key stays valid across the reconnect.
// This file extracts that cache behind the ResumeStore interface — the
// in-process LRU stays the default — and defines the replicated record
// format: what one server may hand another so *any* replica can resume
// *any* client (see replication.go for the wire plumbing and DESIGN §14
// for the threat model).

// ResumeRecord is one cached attested channel, the unit both the local
// store and the replication link deal in.
//
// SECURITY: ChannelKey is live AES channel key material. Inside a process
// it lives only in the store; on the inter-server link the whole record
// travels exclusively as a wrapResumeRecord blob — AES-GCM under the
// fleet sealing key — never as cleartext fields (elide-vet's secretflow
// model enforces this: writePeerFrame is a wire sink).
type ResumeRecord struct {
	Binding    [32]byte  // sha256 of the quote-bound client ephemeral pub
	ServerPub  []byte    // the server key the enclave's channel key is bound to
	ChannelKey []byte    // established AES channel key (secret)
	MrEnclave  [32]byte  // measurement the session attested as
	ExpiresAt  time.Time // zero = no expiry
}

// expired reports whether the record is past its TTL at now.
func (r ResumeRecord) expired(now time.Time) bool {
	return !r.ExpiresAt.IsZero() && now.After(r.ExpiresAt)
}

// ResumeStore is the session-resumption cache behind the server. Put
// caches (or refreshes) one established channel; Get resolves a client
// binding, reporting expired=true when the only entry found was past its
// TTL (the caller audits that distinctly from a plain miss); Len reports
// the live entry count. Implementations must be safe for concurrent use.
//
// The default is the in-process LRU (WithResumeCacheSize); replicated
// deployments keep that default and layer WithResumeReplication on top,
// but WithResumeStore accepts any external implementation.
type ResumeStore interface {
	Put(rec ResumeRecord)
	Get(binding [32]byte) (rec ResumeRecord, ok bool, expired bool)
	Len() int
}

// lruResumeStore is the default ResumeStore: a true LRU (both a hit and a
// re-store refresh recency, so a hot resumed session cannot be evicted
// before cold ones) with lazy per-entry expiry.
type lruResumeStore struct {
	mu      sync.Mutex
	cap     int
	entries map[[32]byte]*list.Element // value: *ResumeRecord
	order   *list.List                 // front = least recently used
	now     func() time.Time           // test seam
}

// newLRUResumeStore builds the default store; cap <= 0 disables caching
// (Put is a no-op, Get always misses).
func newLRUResumeStore(cap int) *lruResumeStore {
	return &lruResumeStore{
		cap:     cap,
		entries: make(map[[32]byte]*list.Element),
		order:   list.New(),
		now:     time.Now,
	}
}

// Put implements ResumeStore. The record's slices are copied: callers
// (and the wire unmarshaler) reuse their buffers.
func (s *lruResumeStore) Put(rec ResumeRecord) {
	if s.cap <= 0 {
		return
	}
	rec.ServerPub = append([]byte(nil), rec.ServerPub...)
	rec.ChannelKey = append([]byte(nil), rec.ChannelKey...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[rec.Binding]; ok {
		// No wipe on refresh or eviction: Get hands out the stored slices,
		// and a live session may still be using the old key.
		*el.Value.(*ResumeRecord) = rec
		s.order.MoveToBack(el)
		return
	}
	for s.order.Len() >= s.cap {
		oldest := s.order.Front()
		delete(s.entries, oldest.Value.(*ResumeRecord).Binding)
		s.order.Remove(oldest)
	}
	s.entries[rec.Binding] = s.order.PushBack(&rec)
}

// Get implements ResumeStore: a hit refreshes recency; an entry past its
// TTL is removed and reported as expired, not as a hit.
func (s *lruResumeStore) Get(binding [32]byte) (ResumeRecord, bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[binding]
	if !ok {
		return ResumeRecord{}, false, false
	}
	rec := el.Value.(*ResumeRecord)
	if rec.expired(s.now()) {
		delete(s.entries, binding)
		s.order.Remove(el)
		return ResumeRecord{}, false, true
	}
	s.order.MoveToBack(el)
	return *rec, true, false
}

// Len implements ResumeStore.
func (s *lruResumeStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bindings implements the resumeBindingLister capability anti-entropy
// (membership.go) keys on: a snapshot of the non-expired bindings held.
// Bindings are SHA-256 values, safe to compare against a peer's digest.
func (s *lruResumeStore) Bindings() [][32]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	out := make([][32]byte, 0, len(s.entries))
	for binding, el := range s.entries {
		if el.Value.(*ResumeRecord).expired(now) {
			continue
		}
		out = append(out, binding)
	}
	return out
}

// --- replicated record wire format ---

// resumeRecordVersion versions the marshaled record layout inside the
// fleet-key wrapping; unknown versions are rejected on open.
const resumeRecordVersion = 1

// resumeRecordMax bounds an unwrapped record so a hostile peer frame
// cannot claim absurd lengths (pub and key are length-prefixed u8s, so
// the real bound is small; this is belt and braces on the outer blob).
const resumeRecordMax = 1 + 32 + 32 + 8 + 1 + 255 + 1 + 255

// marshalResumeRecord lays the record out as
//
//	version(1) || binding(32) || mrenclave(32) || expires-unixnano(8 LE)
//	|| u8 pubLen || pub || u8 keyLen || key
//
// The returned buffer contains live channel-key bytes: callers own it and
// must wipe it (wrapResumeRecord does) — it exists only as the plaintext
// input to the fleet-key wrapping and must never be written anywhere.
func marshalResumeRecord(rec ResumeRecord) ([]byte, error) {
	if len(rec.ServerPub) > 255 || len(rec.ChannelKey) > 255 {
		return nil, fmt.Errorf("elide: resume record field too large")
	}
	var exp int64
	if !rec.ExpiresAt.IsZero() {
		exp = rec.ExpiresAt.UnixNano()
	}
	out := make([]byte, 0, 1+32+32+8+1+len(rec.ServerPub)+1+len(rec.ChannelKey))
	out = append(out, resumeRecordVersion)
	out = append(out, rec.Binding[:]...)
	out = append(out, rec.MrEnclave[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(exp))
	out = append(out, byte(len(rec.ServerPub)))
	out = append(out, rec.ServerPub...)
	out = append(out, byte(len(rec.ChannelKey)))
	out = append(out, rec.ChannelKey...)
	return out, nil
}

// unmarshalResumeRecord reverses marshalResumeRecord, copying the
// variable-length fields out of b (the caller wipes b).
func unmarshalResumeRecord(b []byte) (ResumeRecord, error) {
	var rec ResumeRecord
	if len(b) < 1+32+32+8+2 {
		return rec, fmt.Errorf("elide: resume record too short (%d bytes)", len(b))
	}
	if b[0] != resumeRecordVersion {
		return rec, fmt.Errorf("elide: unknown resume record version %d", b[0])
	}
	b = b[1:]
	copy(rec.Binding[:], b[:32])
	copy(rec.MrEnclave[:], b[32:64])
	exp := int64(binary.LittleEndian.Uint64(b[64:72]))
	if exp != 0 {
		rec.ExpiresAt = time.Unix(0, exp)
	}
	b = b[72:]
	pubLen := int(b[0])
	if len(b) < 1+pubLen+1 {
		return ResumeRecord{}, fmt.Errorf("elide: truncated resume record pub")
	}
	rec.ServerPub = append([]byte(nil), b[1:1+pubLen]...)
	b = b[1+pubLen:]
	keyLen := int(b[0])
	if len(b) != 1+keyLen {
		return ResumeRecord{}, fmt.Errorf("elide: truncated resume record key")
	}
	rec.ChannelKey = append([]byte(nil), b[1:1+keyLen]...)
	return rec, nil
}

// wrapResumeRecord seals a record for the inter-server link: AES-GCM
// under the fleet sealing key, iv || mac || ct. The GCM MAC authenticates
// the whole record, so a peer frame forged or bit-flipped in transit
// fails to open; freshness is bounded by the in-record expiry, which is
// inside the sealed payload and cannot be extended by a replaying
// network. This is the ONLY form in which a channel key may cross the
// wire.
func wrapResumeRecord(fleetKey []byte, rec ResumeRecord) ([]byte, error) {
	plain, err := marshalResumeRecord(rec)
	if err != nil {
		return nil, err
	}
	blob, err := sealEncrypt(fleetKey, plain)
	sdk.Wipe(plain)
	return blob, err
}

// openResumeRecord reverses wrapResumeRecord, rejecting blobs that fail
// authentication, parse, or exceed the record size bound.
func openResumeRecord(fleetKey, blob []byte) (ResumeRecord, error) {
	if len(blob) > resumeRecordMax+sdk.GCMIVSize+sdk.GCMMACSize {
		return ResumeRecord{}, fmt.Errorf("elide: wrapped resume record too large (%d bytes)", len(blob))
	}
	plain, err := sealDecrypt(fleetKey, blob)
	if err != nil {
		return ResumeRecord{}, fmt.Errorf("elide: resume record failed authentication: %w", err)
	}
	rec, err := unmarshalResumeRecord(plain)
	sdk.Wipe(plain)
	return rec, err
}

// validFleetKey checks a fleet sealing key is a usable AES key size.
func validFleetKey(key []byte) error {
	switch len(key) {
	case 16, 24, 32:
		return nil
	}
	return fmt.Errorf("elide: fleet sealing key must be 16, 24, or 32 bytes (got %d)", len(key))
}
