package elide

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sgx"
)

// The membership tests never attest — gossip, anti-entropy, and the
// client query all work against a server with an empty secret store, so
// everything here runs in -short too.

// plainServer builds a quote-free server (empty store) with the given
// options.
func plainServer(t *testing.T, ca *sgx.CA, opts ...ServerOption) *Server {
	t.Helper()
	srv, err := NewMultiServer(ca.PublicKey(), NewSecretStore(),
		append([]ServerOption{WithDrainTimeout(50 * time.Millisecond)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// gossipOpts is the common fast-gossip option set for a fleet member.
func gossipOpts(key []byte, self string, m *obs.Registry, a *obs.AuditLog, seeds ...string) []ServerOption {
	return []ServerOption{
		WithServerMetrics(m),
		WithServerAudit(a),
		WithResumeReplication(key, seeds...),
		WithGossip(self),
		WithGossipInterval(10 * time.Millisecond),
		WithSuspectTimeout(60 * time.Millisecond),
	}
}

// serveKill serves srv on l and returns an idempotent kill func (also
// registered as cleanup).
func serveKill(t *testing.T, srv *Server, l net.Listener) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()
	var once sync.Once
	kill := func() {
		once.Do(func() {
			cancel()
			<-served
		})
	}
	t.Cleanup(kill)
	return kill
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// memberStatus scans a member list for addr.
func memberStatus(ms []Member, addr string) (MemberStatus, bool) {
	for _, m := range ms {
		if m.Addr == addr {
			return m.Status, true
		}
	}
	return 0, false
}

func freshRecord(ttl time.Duration) ResumeRecord {
	var rec ResumeRecord
	if _, err := rand.Read(rec.Binding[:]); err != nil {
		panic(err)
	}
	rec.ServerPub = bytes.Repeat([]byte{0x11}, 32)
	rec.ChannelKey = bytes.Repeat([]byte{0x22}, 16)
	rec.ExpiresAt = time.Now().Add(ttl)
	return rec
}

func TestMemberWireRoundTrip(t *testing.T) {
	in := []Member{
		{Addr: "10.0.0.1:7001", Incarnation: 42, Status: MemberAlive},
		{Addr: "10.0.0.2:7001", Incarnation: 7, Status: MemberSuspect},
		{Addr: "10.0.0.3:7001", Incarnation: 0, Status: MemberDead},
	}
	out, err := parseMembers(marshalMembers(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost members: %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("member %d: %+v != %+v", i, out[i], in[i])
		}
	}
	for _, bad := range [][]byte{nil, {}, {2, 0, 0}, {1, 1, 0, 9}, marshalMembers(in)[:10]} {
		if _, err := parseMembers(bad); err == nil {
			t.Fatalf("parseMembers accepted malformed input %v", bad)
		}
	}

	var b1, b2 [32]byte
	b1[0], b2[0] = 1, 2
	set, err := parseDigest(marshalDigest([][32]byte{b1, b2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set[b1]; !ok || len(set) != 2 {
		t.Fatalf("digest round trip lost bindings: %v", set)
	}
	if _, err := parseDigest([]byte{9, 0, 0, 0, 1}); err == nil {
		t.Fatal("parseDigest accepted a length mismatch")
	}
}

// TestMembershipMergePrecedence pins the SWIM precedence rules: the
// incarnation arithmetic that makes false suspicion self-healing and a
// restart able to out-bid its previous life.
func TestMembershipMergePrecedence(t *testing.T) {
	var alive, dead []string
	m := newMembership("self:1", []string{"a:1"}, nil, nil)
	m.onAlive = func(addr string) { alive = append(alive, addr) }
	m.onDead = func(addr string) { dead = append(dead, addr) }

	statusOf := func(addr string) (MemberStatus, uint64) {
		for _, e := range m.snapshot() {
			if e.Addr == addr {
				return e.Status, e.Incarnation
			}
		}
		t.Fatalf("member %s missing from snapshot", addr)
		return 0, 0
	}

	m.merge([]Member{{Addr: "a:1", Incarnation: 5, Status: MemberAlive}})
	if st, inc := statusOf("a:1"); st != MemberAlive || inc != 5 {
		t.Fatalf("alive{5} not applied: %v/%d", st, inc)
	}
	// A stale suspicion loses; an equal-incarnation one wins over alive.
	m.merge([]Member{{Addr: "a:1", Incarnation: 4, Status: MemberSuspect}})
	if st, _ := statusOf("a:1"); st != MemberAlive {
		t.Fatal("stale suspect{4} overrode alive{5}")
	}
	m.merge([]Member{{Addr: "a:1", Incarnation: 5, Status: MemberSuspect}})
	if st, _ := statusOf("a:1"); st != MemberSuspect {
		t.Fatal("suspect{5} did not override alive{5}")
	}
	// Refutation needs a strictly higher incarnation.
	m.merge([]Member{{Addr: "a:1", Incarnation: 5, Status: MemberAlive}})
	if st, _ := statusOf("a:1"); st != MemberSuspect {
		t.Fatal("alive{5} overrode suspect{5}")
	}
	m.merge([]Member{{Addr: "a:1", Incarnation: 6, Status: MemberAlive}})
	if st, _ := statusOf("a:1"); st != MemberAlive {
		t.Fatal("alive{6} did not refute suspect{5}")
	}
	// Death at the same incarnation sticks; suspicion cannot revive it;
	// a strictly higher alive (a restart) can.
	m.merge([]Member{{Addr: "a:1", Incarnation: 6, Status: MemberDead}})
	if st, _ := statusOf("a:1"); st != MemberDead {
		t.Fatal("dead{6} did not override alive{6}")
	}
	m.merge([]Member{{Addr: "a:1", Incarnation: 9, Status: MemberSuspect}})
	if st, _ := statusOf("a:1"); st != MemberDead {
		t.Fatal("suspect{9} revived a dead member")
	}
	m.merge([]Member{{Addr: "a:1", Incarnation: 7, Status: MemberAlive}})
	if st, _ := statusOf("a:1"); st != MemberAlive {
		t.Fatal("alive{7} (a restart) did not revive dead{6}")
	}

	// A new member joins through gossip; a dead stranger is recorded but
	// never admitted to the push set.
	m.merge([]Member{
		{Addr: "b:1", Incarnation: 3, Status: MemberAlive},
		{Addr: "c:1", Incarnation: 1, Status: MemberDead},
	})
	if st, _ := statusOf("b:1"); st != MemberAlive {
		t.Fatal("b:1 did not join")
	}
	if st, _ := statusOf("c:1"); st != MemberDead {
		t.Fatal("dead stranger c:1 not recorded")
	}
	joined := false
	for _, a := range alive {
		if a == "b:1" {
			joined = true
		}
		if a == "c:1" {
			t.Fatal("dead stranger admitted to the alive hook")
		}
	}
	if !joined {
		t.Fatalf("join hook never fired for b:1 (alive hooks: %v)", alive)
	}
	if len(dead) != 1 || dead[0] != "a:1" {
		t.Fatalf("dead hooks = %v, want [a:1]", dead)
	}

	// Hearing yourself suspected is a call to refute: self incarnation
	// must jump above the accusation.
	selfInc := m.snapshot()[0].Incarnation
	m.merge([]Member{{Addr: "self:1", Incarnation: selfInc + 10, Status: MemberSuspect}})
	if got := m.snapshot()[0].Incarnation; got != selfInc+11 {
		t.Fatalf("self incarnation = %d after accusation at %d, want %d", got, selfInc+10, selfInc+11)
	}
}

// TestGossipMeshBootstrap: three servers where only the seeds point at
// replica 0 still converge on the full member set, and a killed member
// is suspected, then declared dead, with audit events at each step.
func TestGossipMeshBootstrap(t *testing.T) {
	ca, _ := env(t)
	key := bytes.Repeat([]byte{0x21}, 32)
	lA, lB, lC := listen(t), listen(t), listen(t)
	aA, aB, aC := obs.NewAuditLog(0), obs.NewAuditLog(0), obs.NewAuditLog(0)
	mA, mB, mC := obs.NewRegistry(), obs.NewRegistry(), obs.NewRegistry()
	addrA, addrB, addrC := lA.Addr().String(), lB.Addr().String(), lC.Addr().String()

	srvA := plainServer(t, ca, gossipOpts(key, addrA, mA, aA)...)
	srvB := plainServer(t, ca, gossipOpts(key, addrB, mB, aB, addrA)...)
	srvC := plainServer(t, ca, gossipOpts(key, addrC, mC, aC, addrA)...)
	serveKill(t, srvA, lA)
	serveKill(t, srvB, lB)
	killC := serveKill(t, srvC, lC)

	// B and C only know A, yet every server must learn all three.
	full := func(srv *Server, others ...string) bool {
		ms := srv.Members()
		for _, o := range others {
			if st, ok := memberStatus(ms, o); !ok || st != MemberAlive {
				return false
			}
		}
		return true
	}
	waitFor(t, "mesh bootstrap from one seed", func() bool {
		return full(srvA, addrB, addrC) && full(srvB, addrA, addrC) && full(srvC, addrA, addrB)
	})

	killC()
	waitFor(t, "killed member declared dead", func() bool {
		stA, _ := memberStatus(srvA.Members(), addrC)
		stB, _ := memberStatus(srvB.Members(), addrC)
		return stA == MemberDead && stB == MemberDead
	})
	counts := aA.Counts()
	for k, v := range aB.Counts() {
		counts[k] += v
	}
	if counts[obs.AuditMemberSuspect] == 0 {
		t.Error("no member_suspect audit event for the killed replica")
	}
	if counts[obs.AuditMemberDead] == 0 {
		t.Error("no member_dead audit event for the killed replica")
	}
	if counts[obs.AuditMemberJoin] == 0 {
		t.Error("no member_join audit events during bootstrap")
	}
}

// TestMembersQueryAndPoolSync: a client learns the fleet from any one
// server and the endpoint pool grows/shrinks to match — keeping static
// endpoints the mesh does not know about (the legacy-server escape
// hatch).
func TestMembersQueryAndPoolSync(t *testing.T) {
	ca, _ := env(t)
	key := bytes.Repeat([]byte{0x33}, 16)
	lA, lB := listen(t), listen(t)
	addrA, addrB := lA.Addr().String(), lB.Addr().String()
	mA, mB := obs.NewRegistry(), obs.NewRegistry()

	srvA := plainServer(t, ca, gossipOpts(key, addrA, mA, nil)...)
	srvB := plainServer(t, ca, gossipOpts(key, addrB, mB, nil, addrA)...)
	serveKill(t, srvA, lA)
	killB := serveKill(t, srvB, lB)
	waitFor(t, "A learns B", func() bool {
		st, ok := memberStatus(srvA.Members(), addrB)
		return ok && st == MemberAlive
	})

	ctx := context.Background()
	ms, err := NewTCPClient(addrA, fastRetry(1)...).Members(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := memberStatus(ms, addrB); !ok || st != MemberAlive {
		t.Fatalf("client member list missing alive B: %+v", ms)
	}
	if ms[0].Addr != addrA {
		t.Fatalf("member list does not lead with the answering server: %+v", ms)
	}

	// A server without gossip refuses the query — the static-pool signal.
	lP := listen(t)
	serveKill(t, plainServer(t, ca, WithResumeReplication(key)), lP)
	if _, err := NewTCPClient(lP.Addr().String(), fastRetry(1)...).Members(ctx); !errors.Is(err, ErrRefused) {
		t.Fatalf("gossip-off server answered the membership query: %v", err)
	}

	// Pool: static [A, legacy]; sync adds B, keeps the legacy unknown.
	legacyAddr := lP.Addr().String()
	pool := NewEndpointPool([]string{addrA, legacyAddr},
		WithEndpointClientOptions(fastRetry(1)...))
	if err := pool.SyncMembership(ctx); err != nil {
		t.Fatal(err)
	}
	addrs := func() map[string]bool {
		out := map[string]bool{}
		for _, e := range pool.Endpoints() {
			out[e.Addr] = true
		}
		return out
	}
	if got := addrs(); !got[addrB] || !got[legacyAddr] || !got[addrA] {
		t.Fatalf("pool after sync = %v, want A+B+legacy", got)
	}

	// Kill B; once the mesh declares it dead the sync drops it — but
	// never the static legacy endpoint.
	killB()
	waitFor(t, "B declared dead", func() bool {
		st, _ := memberStatus(srvA.Members(), addrB)
		return st == MemberDead
	})
	if err := pool.SyncMembership(ctx); err != nil {
		t.Fatal(err)
	}
	if got := addrs(); got[addrB] || !got[legacyAddr] || !got[addrA] {
		t.Fatalf("pool after death sync = %v, want A+legacy only", got)
	}
}

// TestPoolApplyMembersRules pins the pool resize rules in isolation.
func TestPoolApplyMembersRules(t *testing.T) {
	pool := NewEndpointPool([]string{"a:1", "legacy:1"})
	added, removed := pool.applyMembers([]Member{
		{Addr: "a:1", Status: MemberAlive},
		{Addr: "b:1", Status: MemberAlive},
		{Addr: "c:1", Status: MemberSuspect}, // suspect is still serving
	})
	if len(added) != 2 || len(removed) != 0 {
		t.Fatalf("first sync: added %v removed %v, want 2 added 0 removed", added, removed)
	}
	// b dies, c vanishes from the view (learned → dropped), legacy is
	// absent from every view (static → kept).
	_, removed = pool.applyMembers([]Member{
		{Addr: "a:1", Status: MemberAlive},
		{Addr: "b:1", Status: MemberDead},
	})
	if len(removed) != 2 {
		t.Fatalf("second sync removed %v, want [b:1 c:1]", removed)
	}
	got := map[string]bool{}
	for _, e := range pool.Endpoints() {
		got[e.Addr] = true
	}
	if !got["a:1"] || !got["legacy:1"] || got["b:1"] || got["c:1"] {
		t.Fatalf("pool = %v, want a+legacy", got)
	}
	// Even a static endpoint is dropped while the fleet says dead — and
	// re-admitted when it rejoins.
	pool.applyMembers([]Member{{Addr: "a:1", Status: MemberDead}})
	if pool.has("a:1") {
		t.Fatal("dead static endpoint kept")
	}
	pool.applyMembers([]Member{{Addr: "a:1", Status: MemberAlive}})
	if !pool.has("a:1") {
		t.Fatal("rejoined static endpoint not re-admitted")
	}
}

// TestAntiEntropyConvergence: a cold replica pulls the fleet's resume
// records via digest exchange — no client traffic, no fetch path.
func TestAntiEntropyConvergence(t *testing.T) {
	ca, _ := env(t)
	key := bytes.Repeat([]byte{0x44}, 32)
	lA, lB := listen(t), listen(t)
	addrA, addrB := lA.Addr().String(), lB.Addr().String()
	aB := obs.NewAuditLog(0)
	mA, mB := obs.NewRegistry(), obs.NewRegistry()

	srvA := plainServer(t, ca, gossipOpts(key, addrA, mA, nil)...)
	const records = 20
	for i := 0; i < records; i++ {
		srvA.resume.Put(freshRecord(time.Minute))
	}
	// One record already expired: it must not cross.
	srvA.resume.Put(freshRecord(-time.Minute))

	serveKill(t, srvA, lA)
	srvB := plainServer(t, ca, gossipOpts(key, addrB, mB, aB, addrA)...)
	serveKill(t, srvB, lB)

	waitFor(t, "anti-entropy convergence", func() bool {
		return srvB.ResumeLen() >= records
	})
	if got := srvB.ResumeLen(); got != records {
		t.Fatalf("cold replica holds %d records, want exactly %d (expired must not cross)", got, records)
	}
	if aB.Counts()[obs.AuditAntiEntropy] == 0 {
		t.Error("no anti_entropy_sync audit event on the cold replica")
	}
	if mB.Counter("server.anti_entropy_adopted").Load() != records {
		t.Errorf("anti_entropy_adopted = %d, want %d",
			mB.Counter("server.anti_entropy_adopted").Load(), records)
	}
}

// TestPeerCooldownExpiryAndRefutation (satellite): a peer that refused
// the replication handshake is left alone for exactly the configured
// cooldown — no redials — and once the cooldown lapses an upgraded peer
// sheds the legacy mark on the first successful push.
func TestPeerCooldownExpiryAndRefutation(t *testing.T) {
	ca, _ := env(t)
	key := bytes.Repeat([]byte{0x55}, 32)
	l := listen(t)
	addr := l.Addr().String()

	// Phase 1: a keyless server — the refusal shape a legacy binary makes.
	killLegacy := serveKill(t, plainServer(t, ca), l)

	var dials atomic.Int32
	o := serverOptions{
		fleetKey:     key,
		peers:        []string{addr},
		metrics:      obs.NewRegistry(),
		peerCooldown: 150 * time.Millisecond,
		peerDial: func(a string, to time.Duration) (net.Conn, error) {
			dials.Add(1)
			return defaultPeerDial(a, to)
		},
	}
	rep := newResumeReplicator(&o)
	wrapped, err := wrapResumeRecord(key, freshRecord(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	p := rep.peerFor(addr)
	if _, err := p.roundTrip(peerOpPush, wrapped, false, time.Second, time.Second); !errors.Is(err, errPeerLegacy) {
		t.Fatalf("push to a keyless server = %v, want errPeerLegacy", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dials = %d, want 1", got)
	}
	// Inside the cooldown every attempt short-circuits without dialing.
	if _, err := p.roundTrip(peerOpPush, wrapped, false, time.Second, time.Second); !errors.Is(err, errPeerLegacy) {
		t.Fatalf("second push = %v, want errPeerLegacy", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("cooldown did not suppress the redial (dials = %d)", got)
	}

	// Phase 2: the peer upgrades — same address, now with the fleet key.
	killLegacy()
	var l2 net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		if l2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Cleanup(func() { l2.Close() })
	m2 := obs.NewRegistry()
	serveKill(t, plainServer(t, ca, WithServerMetrics(m2), WithResumeReplication(key)), l2)

	// Once the cooldown lapses the next push redials, the handshake
	// succeeds, and the record lands.
	waitFor(t, "cooldown expiry and refutation", func() bool {
		_, err := p.roundTrip(peerOpPush, wrapped, false, time.Second, time.Second)
		return err == nil
	})
	waitCounter(t, m2, "server.resume_replicated", 1)
	// The legacy mark is gone: the very next push goes straight through.
	if _, err := p.roundTrip(peerOpPush, wrapped, false, time.Second, time.Second); err != nil {
		t.Fatalf("push after refutation = %v, want success", err)
	}
}

// TestReplicationDropAuditAndHealth (satellite): push-queue overflow
// emits one rate-limited audit event and degrades ReplicationHealth for
// the drop window.
func TestReplicationDropAuditAndHealth(t *testing.T) {
	key := bytes.Repeat([]byte{0x66}, 16)
	audit := obs.NewAuditLog(0)
	unblock := make(chan struct{})
	var unblockOnce sync.Once
	t.Cleanup(func() { unblockOnce.Do(func() { close(unblock) }) })
	o := serverOptions{
		fleetKey: key,
		peers:    []string{"127.0.0.1:1"},
		metrics:  obs.NewRegistry(),
		audit:    audit,
		peerDial: func(a string, to time.Duration) (net.Conn, error) {
			<-unblock // pin the pump so the queue backs up deterministically
			return nil, errors.New("peer gone")
		},
	}
	rep := newResumeReplicator(&o)
	rep.dropMu.Lock()
	rep.dropInterval = time.Hour
	rep.dropWindow = 250 * time.Millisecond
	rep.dropMu.Unlock()

	rec := freshRecord(time.Minute)
	// Queue capacity + pump in-flight + slack: guarantees drops.
	for i := 0; i < peerPushQueue+50; i++ {
		rep.broadcast(rec)
	}
	if got := o.metrics.Counter("server.resume_replicate_dropped").Load(); got == 0 {
		t.Fatal("no drops counted with a pinned pump and a full queue")
	}
	if got := audit.Counts()[obs.AuditResumeReplicationDropped]; got != 1 {
		t.Fatalf("drop audit events = %d, want exactly 1 (rate-limited)", got)
	}
	if err := rep.healthCheck(); err == nil {
		t.Fatal("healthCheck nil right after drops, want degraded")
	}

	// The next interval's first drop emits again.
	rep.dropMu.Lock()
	rep.lastDropAudit = time.Now().Add(-2 * time.Hour)
	rep.dropMu.Unlock()
	rep.broadcast(rec)
	if got := audit.Counts()[obs.AuditResumeReplicationDropped]; got != 2 {
		t.Fatalf("drop audit events = %d after a new interval, want 2", got)
	}

	// Health recovers once the window passes without further drops.
	waitFor(t, "replication health recovery", func() bool {
		return rep.healthCheck() == nil
	})
	unblockOnce.Do(func() { close(unblock) })
}
