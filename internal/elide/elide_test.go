package elide

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/rsa"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"sgxelide/internal/elf"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// The test application: a secret algorithm behind one ecall.
const appEDL = `
enclave {
    trusted {
        public uint64_t ecall_compute(uint64_t x);
        public uint64_t ecall_double_secret(uint64_t x);
    };
    untrusted {
    };
};
`

const appC = `
/* The "secret algorithm" the developer wants to keep confidential. */
uint64_t secret_transform(uint64_t x) {
    uint64_t acc = 7;
    for (int i = 0; i < 8; i++) {
        acc = acc * 31337 + ((x >> (i * 8)) & 255);
    }
    return acc;
}

uint64_t secret_helper(uint64_t x) { return x ^ 0xABCDEF; }

uint64_t ecall_compute(uint64_t x) { return secret_transform(x); }
uint64_t ecall_double_secret(uint64_t x) { return secret_helper(secret_transform(x)); }
`

// secretTransformGo is the Go reference for the secret algorithm.
func secretTransformGo(x uint64) uint64 {
	acc := uint64(7)
	for i := 0; i < 8; i++ {
		acc = acc*31337 + ((x >> (i * 8)) & 255)
	}
	return acc
}

// Shared fixtures (whitelist generation and RSA keygen are the slow parts).
var (
	fixOnce sync.Once
	fixWL   Whitelist
	fixKey  *rsa.PrivateKey
	fixErr  error
)

func fixtures(t *testing.T) (Whitelist, *rsa.PrivateKey) {
	t.Helper()
	fixOnce.Do(func() {
		fixWL, fixErr = GenerateWhitelist()
		if fixErr != nil {
			return
		}
		fixKey, fixErr = rsa.GenerateKey(rand.Reader, 1024)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixWL, fixKey
}

// env creates a CA, platform, and host.
func env(t *testing.T) (*sgx.CA, *sdk.Host) {
	t.Helper()
	ca, err := sgx.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	p, err := sgx.NewPlatform(sgx.Config{}, ca)
	if err != nil {
		t.Fatal(err)
	}
	return ca, sdk.NewHost(p)
}

// buildApp builds the protected test app.
func buildApp(t *testing.T, h *sdk.Host, san SanitizeOptions) *Protected {
	t.Helper()
	wl, key := fixtures(t)
	p, err := BuildProtected(h, BuildProtectedOptions{
		Sanitize:  san,
		AppEDL:    appEDL,
		Sources:   []sdk.Source{sdk.C("app.c", appC)},
		SignKey:   key,
		Whitelist: wl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWhitelistContents(t *testing.T) {
	wl, _ := fixtures(t)
	for _, name := range []string{
		"elide_restore", "elide_channel_setup", "elide_apply", "elide_self_addr",
		"enclave_entry", "memcpy", "malloc", "strlen",
		"sgx_rijndael128GCM_decrypt", "sgx_create_report", "sgx_ecdh_keypair",
		"sgx_elide_restore",                       // the elide ecall's own bridge
		"elide_server_request", "elide_read_file", // ocall stubs
	} {
		if !wl.Contains(name) {
			t.Errorf("whitelist missing %q", name)
		}
	}
	if wl.Contains("secret_transform") || wl.Contains("ecall_compute") {
		t.Error("whitelist contains user functions")
	}
	// Deterministic.
	wl2, err := GenerateWhitelist()
	if err != nil {
		t.Fatal(err)
	}
	if len(wl2) != len(wl) {
		t.Errorf("whitelist not deterministic: %d vs %d", len(wl2), len(wl))
	}
	t.Logf("whitelist has %d functions", len(wl))
}

func TestWhitelistJSONRoundTrip(t *testing.T) {
	wl, _ := fixtures(t)
	blob, err := json.Marshal(wl)
	if err != nil {
		t.Fatal(err)
	}
	var back Whitelist
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(wl) {
		t.Fatalf("round trip lost entries: %d vs %d", len(back), len(wl))
	}
	for n := range wl {
		if !back.Contains(n) {
			t.Errorf("lost %q", n)
		}
	}
}

func TestSanitizeStatsAndPatching(t *testing.T) {
	_, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})

	st := p.Stats
	if st.SanitizedFunctions == 0 || st.SanitizedBytes == 0 {
		t.Fatalf("nothing sanitized: %+v", st)
	}
	if st.WhitelistedKept == 0 || st.TotalFunctions <= st.SanitizedFunctions {
		t.Fatalf("implausible stats: %+v", st)
	}

	// The user function bodies are zeroed in the sanitized image.
	f, err := elf.Read(p.SanitizedELF)
	if err != nil {
		t.Fatal(err)
	}
	sym, ok := f.FindSymbol("secret_transform")
	if !ok {
		t.Fatal("symbol table lost")
	}
	off, err := f.VaddrToFileOff(sym.Value, sym.Size)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < sym.Size; i++ {
		if f.Raw[off+i] != 0 {
			t.Fatal("secret_transform not zeroed")
		}
	}

	// The plain image contains the secret code bytes; the sanitized one
	// must not.
	pf, _ := elf.Read(p.PlainELF)
	pOff, _ := pf.VaddrToFileOff(sym.Value, sym.Size)
	secretBytes := pf.Raw[pOff : pOff+sym.Size]
	if bytes.Contains(p.SanitizedELF, secretBytes) {
		t.Error("sanitized image still contains the secret function bytes")
	}
	// The secret data blob (remote mode = plaintext whole text) has them.
	if !bytes.Contains(p.SecretData, secretBytes) {
		t.Error("secret data does not contain the original bytes")
	}

	// PF_W was set on the text segment.
	ti, err := f.TextPhdrIndex()
	if err != nil {
		t.Fatal(err)
	}
	if f.Phdrs[ti].Flags&elf.PFW == 0 {
		t.Error("text segment not writable after sanitization")
	}
	// Meta points at elide_restore's offset.
	rs, _ := f.FindSymbol("elide_restore")
	text := f.Section(".text")
	if p.Meta.RestoreOffset != rs.Value-text.Addr {
		t.Errorf("restore offset %d, want %d", p.Meta.RestoreOffset, rs.Value-text.Addr)
	}
	if p.Meta.DataLen != text.Size {
		t.Errorf("data len %d, want text size %d", p.Meta.DataLen, text.Size)
	}
}

func TestSanitizeRequiresElideRuntime(t *testing.T) {
	wl, _ := fixtures(t)
	// An enclave built without the elide sources cannot be sanitized.
	res, err := sdk.BuildEnclaveFromEDL(sdk.BuildConfig{}, appEDL, sdk.C("app.c", appC))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sanitize(res.ELF, wl, SanitizeOptions{}); err == nil || !strings.Contains(err.Error(), "elide_restore") {
		t.Errorf("err = %v", err)
	}
}

// launchWithServer builds the full deployment and returns a launched
// enclave whose runtime talks to an in-process server session.
func launchWithServer(t *testing.T, san SanitizeOptions) (*sdk.Enclave, *Runtime, *Protected) {
	t.Helper()
	ca, h := env(t)
	p := buildApp(t, h, san)
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	return encl, rt, p
}

func TestSecretEcallFaultsBeforeRestore(t *testing.T) {
	encl, _, _ := launchWithServer(t, SanitizeOptions{})
	_, err := encl.ECall("ecall_compute", 5)
	if err == nil {
		t.Fatal("sanitized ecall executed without restore")
	}
	if !strings.Contains(err.Error(), "illegal instruction") {
		t.Errorf("unexpected fault: %v", err)
	}
}

func TestRestoreRemoteData(t *testing.T) {
	encl, rt, _ := launchWithServer(t, SanitizeOptions{})
	code, err := encl.ECall("elide_restore", 0)
	if err != nil {
		t.Fatalf("elide_restore: %v (last: %v)", err, rt.LastErr())
	}
	if code != RestoreOKServer {
		t.Fatalf("elide_restore = %d", code)
	}
	for _, x := range []uint64{0, 5, 0xDEADBEEF, ^uint64(0)} {
		got, err := encl.ECall("ecall_compute", x)
		if err != nil {
			t.Fatal(err)
		}
		if got != secretTransformGo(x) {
			t.Errorf("compute(%#x) = %#x, want %#x", x, got, secretTransformGo(x))
		}
	}
	// Second restore is a no-op success.
	code, err = encl.ECall("elide_restore", 0)
	if err != nil || code != 0 {
		t.Errorf("second restore: %d, %v", code, err)
	}
}

func TestRestoreLocalData(t *testing.T) {
	encl, rt, p := launchWithServer(t, SanitizeOptions{EncryptLocal: true})
	if !p.Meta.Encrypted {
		t.Fatal("meta not marked encrypted")
	}
	// In local mode the ciphertext ships with the app...
	if len(p.LocalFiles().SecretData) == 0 {
		t.Fatal("no local secret data file")
	}
	// ...and it is ciphertext, not code.
	pf, _ := elf.Read(p.PlainELF)
	sym, _ := pf.FindSymbol("secret_transform")
	off, _ := pf.VaddrToFileOff(sym.Value, sym.Size)
	if bytes.Contains(p.SecretData, pf.Raw[off:off+sym.Size]) {
		t.Error("local secret data file contains plaintext code")
	}

	code, err := encl.ECall("elide_restore", 0)
	if err != nil {
		t.Fatalf("elide_restore: %v (last: %v)", err, rt.LastErr())
	}
	if code != RestoreOKServer {
		t.Fatalf("elide_restore = %d", code)
	}
	got, err := encl.ECall("ecall_double_secret", 42)
	if err != nil {
		t.Fatal(err)
	}
	if want := secretTransformGo(42) ^ 0xABCDEF; got != want {
		t.Errorf("double_secret = %#x, want %#x", got, want)
	}
}

func TestRestoreLocalDataTamperDetected(t *testing.T) {
	encl, rt, _ := func() (*sdk.Enclave, *Runtime, *Protected) {
		t.Helper()
		ca, h := env(t)
		p := buildApp(t, h, SanitizeOptions{EncryptLocal: true})
		srv, err := p.NewServerFor(ca)
		if err != nil {
			t.Fatal(err)
		}
		files := p.LocalFiles()
		files.SecretData[0] ^= 1 // tamper with the on-disk ciphertext
		encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, files)
		if err != nil {
			t.Fatal(err)
		}
		return encl, rt, p
	}()
	code, err := encl.ECall("elide_restore", 0)
	if err != nil {
		t.Fatalf("restore errored at the wrong layer: %v (%v)", err, rt.LastErr())
	}
	if code != 107 {
		t.Fatalf("restore = %d, want MAC failure 107", code)
	}
}

func TestServerRefusesWrongEnclave(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	// An attacker signs the UNSANITIZED enclave themselves and asks the
	// server for the secrets: the measurement will not match.
	_, key := fixtures(t)
	mr, err := sdk.MeasureELF(h, p.PlainELF)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sgx.SignEnclave(key, mr, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{Client: &DirectClient{Session: srv.NewSession()}, Files: &FileStore{}}
	rt.Install(h)
	encl, err := h.CreateEnclave(p.PlainELF, ss, p.EDL)
	if err != nil {
		t.Fatal(err)
	}
	code, err := encl.ECall("elide_restore", 0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 103 {
		t.Fatalf("restore = %d, want attestation refusal 103", code)
	}
	if rt.LastErr() == nil || !strings.Contains(rt.LastErr().Error(), "measurement") {
		t.Errorf("server error = %v", rt.LastErr())
	}
}

func TestSealingAndSealedRestore(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	files := p.LocalFiles()
	encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, files)
	if err != nil {
		t.Fatal(err)
	}
	code, err := encl.ECall("elide_restore", FlagSealAfter)
	if err != nil || code != RestoreOKServer {
		t.Fatalf("restore: %d, %v (%v)", code, err, rt.LastErr())
	}
	if len(rt.Files.Sealed) == 0 {
		t.Fatal("nothing sealed")
	}
	// The sealed blob must not contain plaintext code.
	pf, _ := elf.Read(p.PlainELF)
	sym, _ := pf.FindSymbol("secret_transform")
	off, _ := pf.VaddrToFileOff(sym.Value, sym.Size)
	if bytes.Contains(rt.Files.Sealed, pf.Raw[off:off+sym.Size]) {
		t.Error("sealed file contains plaintext code")
	}

	// Second launch on the SAME platform: restore from the sealed file,
	// with a dead client (no server contact allowed).
	encl2, _, err := p.Launch(h, deadClient{}, rt.Files)
	if err != nil {
		t.Fatal(err)
	}
	code, err = encl2.ECall("elide_restore", FlagTrySealed)
	if err != nil {
		t.Fatal(err)
	}
	if code != RestoreOKSealed {
		t.Fatalf("sealed restore = %d, want %d", code, RestoreOKSealed)
	}
	got, err := encl2.ECall("ecall_compute", 99)
	if err != nil || got != secretTransformGo(99) {
		t.Fatalf("compute after sealed restore: %v %v", got, err)
	}

	// A different platform cannot unseal (different hardware key): restore
	// falls back to the server, which here is dead, so it fails cleanly.
	ca2, _ := sgx.NewCA()
	platform2, _ := sgx.NewPlatform(sgx.Config{}, ca2)
	h2 := sdk.NewHost(platform2)
	encl3, _, err := p.Launch(h2, deadClient{}, rt.Files)
	if err != nil {
		t.Fatal(err)
	}
	code, err = encl3.ECall("elide_restore", FlagTrySealed)
	if err != nil {
		t.Fatal(err)
	}
	if code != 103 { // sealed unseal failed -> server path -> dead client
		t.Fatalf("cross-platform sealed restore = %d, want fallback failure 103", code)
	}
}

// deadClient refuses everything, proving no server traffic happened.
type deadClient struct{}

func (deadClient) Attest(context.Context, *sgx.Quote, []byte) ([]byte, error) {
	return nil, errDead
}
func (deadClient) Request(context.Context, []byte) ([]byte, error) { return nil, errDead }

func (deadClient) Close() error { return nil }

var errDead = &net.OpError{Op: "dial", Err: &net.AddrError{Err: "server unreachable"}}

func TestRangesFormat(t *testing.T) {
	encl, rt, p := launchWithServer(t, SanitizeOptions{Ranges: true})
	if p.Meta.Format != FormatRanges {
		t.Fatal("meta not in ranges format")
	}
	// Ranges data should be smaller than the whole text section.
	if p.Meta.DataLen >= p.Stats.TotalTextBytes {
		t.Errorf("ranges blob (%d) not smaller than text (%d)", p.Meta.DataLen, p.Stats.TotalTextBytes)
	}
	code, err := encl.ECall("elide_restore", 0)
	if err != nil || code != RestoreOKServer {
		t.Fatalf("restore: %d, %v (%v)", code, err, rt.LastErr())
	}
	got, err := encl.ECall("ecall_compute", 7)
	if err != nil || got != secretTransformGo(7) {
		t.Fatalf("compute: %v, %v", got, err)
	}
}

func TestBlacklistMode(t *testing.T) {
	encl, rt, p := launchWithServer(t, SanitizeOptions{
		Ranges:    true,
		Blacklist: []string{"secret_transform"},
	})
	if p.Stats.SanitizedFunctions != 1 {
		t.Fatalf("sanitized %d functions, want 1", p.Stats.SanitizedFunctions)
	}
	// ecall_double_secret's bridge survives, but it reaches the redacted
	// secret_transform and faults.
	if _, err := encl.ECall("ecall_double_secret", 3); err == nil {
		t.Fatal("redacted function executed")
	}
	code, err := encl.ECall("elide_restore", 0)
	if err != nil || code != RestoreOKServer {
		t.Fatalf("restore: %d, %v (%v)", code, err, rt.LastErr())
	}
	got, err := encl.ECall("ecall_double_secret", 3)
	if err != nil || got != secretTransformGo(3)^0xABCDEF {
		t.Fatalf("after restore: %v, %v", got, err)
	}
}

func TestRestoreNeedsWritableText(t *testing.T) {
	// Undo the sanitizer's PF_W: the restore memcpy must then fault on the
	// EPCM write check — demonstrating why the p_flags patch is load-bearing.
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	f, err := elf.Read(append([]byte(nil), p.SanitizedELF...))
	if err != nil {
		t.Fatal(err)
	}
	ti, _ := f.TextPhdrIndex()
	// Clear PF_W by patching the raw field back to R+X.
	f.Phdrs[ti].Flags &^= elf.PFW
	f.OrPhdrFlags(ti, 0) // rewrite field
	_, key := fixtures(t)
	mr, err := sdk.MeasureELF(h, f.Raw)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sgx.SignEnclave(key, mr, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		CAPub:             ca.PublicKey(),
		ExpectedMrEnclave: mr,
		Meta:              p.Meta,
		SecretPlain:       p.SecretData,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{Client: &DirectClient{Session: srv.NewSession()}, Files: &FileStore{}}
	rt.Install(h)
	encl, err := h.CreateEnclave(f.Raw, ss, p.EDL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = encl.ECall("elide_restore", 0)
	if err == nil || !strings.Contains(err.Error(), "write permission") {
		t.Fatalf("err = %v, want write permission fault", err)
	}
}

func TestRestoreOverTCP(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(context.Background(), l)

	client := NewTCPClient(l.Addr().String())
	defer client.Close()
	encl, rt, err := p.Launch(h, client, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	code, err := encl.ECall("elide_restore", 0)
	if err != nil || code != RestoreOKServer {
		t.Fatalf("restore over TCP: %d, %v (%v)", code, err, rt.LastErr())
	}
	got, err := encl.ECall("ecall_compute", 123)
	if err != nil || got != secretTransformGo(123) {
		t.Fatalf("compute: %v, %v", got, err)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	f := func(dataLen, off uint64, enc, ranges bool, key [16]byte, iv [12]byte, mac [16]byte) bool {
		m := &SecretMeta{
			DataLen: dataLen, RestoreOffset: off, Encrypted: enc,
			Key: key, IV: iv, MAC: mac,
		}
		if ranges {
			m.Format = FormatRanges
		}
		back, err := UnmarshalMeta(m.Marshal())
		if err != nil {
			return false
		}
		return *back == *m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaRejectsBadSize(t *testing.T) {
	if _, err := UnmarshalMeta(make([]byte, 10)); err == nil {
		t.Error("short meta accepted")
	}
}

func TestSanitizedDisassemblyHidesSecrets(t *testing.T) {
	_, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	plainDis, err := sdk.Disassemble(p.PlainELF)
	if err != nil {
		t.Fatal(err)
	}
	sanDis, err := sdk.Disassemble(p.SanitizedELF)
	if err != nil {
		t.Fatal(err)
	}
	// Both list the symbol, but only the plain image shows instructions in
	// the secret function's body.
	pb := funcBody(plainDis, "secret_transform")
	sb := funcBody(sanDis, "secret_transform")
	if !strings.Contains(pb, "mul") && !strings.Contains(pb, "movi") {
		t.Errorf("plain disassembly has no code?\n%s", pb)
	}
	if !strings.Contains(sb, ".byte 0x00") {
		t.Errorf("sanitized body not zeroed:\n%s", sb)
	}
	if strings.Contains(sb, "mul") {
		t.Errorf("sanitized body leaks instructions:\n%s", sb)
	}
}

// funcBody extracts the disassembly lines of one function.
func funcBody(dis, name string) string {
	lines := strings.Split(dis, "\n")
	var out []string
	in := false
	for _, l := range lines {
		if strings.Contains(l, "<"+name+">:") {
			in = true
			continue
		}
		if in && strings.Contains(l, "<") && strings.Contains(l, ">:") {
			break
		}
		if in {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
