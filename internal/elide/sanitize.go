package elide

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"sgxelide/internal/elf"
	"sgxelide/internal/sdk"
)

// SanitizeOptions controls the sanitizer.
type SanitizeOptions struct {
	// EncryptLocal encrypts the secret data for local storage (the paper's
	// -c flag): the data file ships with the enclave and the key lives only
	// in the metadata on the server. When false, the data stays plaintext
	// and must be kept on the server (remote-data mode).
	EncryptLocal bool

	// Hybrid keeps the plaintext on the server *and* emits the encrypted
	// local file (implies EncryptLocal). The restorer prefers the remote
	// copy and degrades to the local file when the data fetch fails
	// mid-protocol — the last link of the sealed → remote → local chain.
	Hybrid bool

	// Ranges selects the per-function secret format (paper §5's space
	// optimization) instead of saving the whole text section.
	Ranges bool

	// Blacklist, when non-empty, sanitizes only the named functions (the
	// initial blacklist design of §3.2) instead of everything off the
	// whitelist. Used by the design-choice ablation.
	Blacklist []string

	// AutoRestore enables the paper's "totally transparent" future-work
	// mode (§7): the sanitizer patches the enclave's g_elide_auto flag so
	// the trusted runtime routes the first ecall through elide_restore
	// automatically, at the cost of unpredictable first-call latency.
	AutoRestore bool
	// AutoRestoreFlags are the elide_restore flags used by the automatic
	// call (e.g. FlagTrySealed | FlagSealAfter).
	AutoRestoreFlags uint64
}

// SanitizeStats summarizes what the sanitizer did (the per-benchmark
// numbers of Table 1).
type SanitizeStats struct {
	TotalFunctions     int    // function symbols in the enclave
	TotalTextBytes     uint64 // size of the text section
	SanitizedFunctions int
	SanitizedBytes     uint64
	WhitelistedKept    int
	SecretDataBytes    int // size of enclave.secret.data as produced
}

// SanitizeResult bundles the sanitizer outputs: the patched enclave image
// plus the two secret files of Figure 1.
type SanitizeResult struct {
	SanitizedELF []byte
	Meta         *SecretMeta // enclave.secret.meta — server only!
	SecretData   []byte      // enclave.secret.data — plaintext (remote) or ciphertext (local)
	SecretPlain  []byte      // hybrid mode only: the plaintext copy the server serves
	Stats        SanitizeStats
}

// Sanitize redacts every function not on the whitelist from the enclave
// image (paper §4.2): it parses the ELF, zeroes the bodies of non-whitelist
// functions in the file, ORs PF_W into the text segment's program header so
// the restorer can write code at runtime, and produces the metadata and
// secret-data blobs.
func Sanitize(elfBytes []byte, wl Whitelist, opts SanitizeOptions) (*SanitizeResult, error) {
	// Work on a copy; the input may be reused by the caller.
	raw := append([]byte(nil), elfBytes...)
	f, err := elf.Read(raw)
	if err != nil {
		return nil, err
	}
	text := f.Section(".text")
	if text == nil {
		return nil, fmt.Errorf("elide: enclave has no .text section")
	}
	restoreSym, ok := f.FindSymbol("elide_restore")
	if !ok {
		return nil, fmt.Errorf("elide: enclave was not built with the SgxElide runtime (no elide_restore)")
	}

	// Snapshot the original text section before zeroing anything.
	originalText := append([]byte(nil), f.SectionData(text)...)

	blacklist := make(map[string]bool, len(opts.Blacklist))
	for _, n := range opts.Blacklist {
		blacklist[n] = true
	}

	stats := SanitizeStats{TotalTextBytes: text.Size}
	type span struct{ off, size uint64 }
	var sanitized []span
	for _, sym := range f.FuncSymbols() {
		stats.TotalFunctions++
		redact := false
		if len(blacklist) > 0 {
			redact = blacklist[sym.Name]
		} else {
			redact = !wl.Contains(sym.Name)
		}
		if !redact {
			stats.WhitelistedKept++
			continue
		}
		if sym.Size == 0 {
			continue
		}
		if sym.Value < text.Addr || sym.Value+sym.Size > text.Addr+text.Size {
			return nil, fmt.Errorf("elide: function %q outside .text", sym.Name)
		}
		if err := f.ZeroVaddrRange(sym.Value, sym.Size); err != nil {
			return nil, fmt.Errorf("elide: sanitizing %q: %w", sym.Name, err)
		}
		stats.SanitizedFunctions++
		stats.SanitizedBytes += sym.Size
		sanitized = append(sanitized, span{sym.Value - text.Addr, sym.Size})
	}

	if opts.AutoRestore {
		autoSym, ok := f.FindSymbol("g_elide_auto")
		if !ok {
			return nil, fmt.Errorf("elide: enclave tRTS lacks g_elide_auto (rebuild with the current SDK)")
		}
		off, err := f.VaddrToFileOff(autoSym.Value, 8)
		if err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint64(f.Raw[off:], opts.AutoRestoreFlags+1)
	}

	// Make the text segment writable for the lifetime of the enclave —
	// SGXv1 page permissions are fixed at EADD, so this must happen before
	// signing (paper §5, "Enclave Self-Modification").
	ti, err := f.TextPhdrIndex()
	if err != nil {
		return nil, err
	}
	f.OrPhdrFlags(ti, elf.PFW)

	// Build the secret data blob.
	var plain []byte
	var format byte
	if opts.Ranges {
		format = FormatRanges
		plain = binary.LittleEndian.AppendUint64(plain, uint64(len(sanitized)))
		for _, s := range sanitized {
			plain = binary.LittleEndian.AppendUint64(plain, s.off)
			plain = binary.LittleEndian.AppendUint64(plain, s.size)
			plain = append(plain, originalText[s.off:s.off+s.size]...)
		}
	} else {
		format = FormatWholeText
		plain = originalText
	}

	meta := &SecretMeta{
		DataLen:       uint64(len(plain)),
		RestoreOffset: restoreSym.Value - text.Addr,
		Format:        format,
		// The restorer hashes the whole text section after the apply and
		// compares against this digest, so a torn or tampered restore can
		// never be reported as success.
		TextLen:    text.Size,
		TextDigest: sha256.Sum256(originalText),
	}
	secretData := plain
	var secretPlain []byte
	if opts.EncryptLocal || opts.Hybrid {
		meta.Encrypted = true
		var key [16]byte
		if _, err := rand.Read(key[:]); err != nil {
			return nil, err
		}
		var iv [12]byte
		if _, err := rand.Read(iv[:]); err != nil {
			return nil, err
		}
		ct, mac, err := sdk.AESGCMSeal(key[:], iv[:], plain)
		if err != nil {
			return nil, err
		}
		meta.Key = key
		meta.IV = iv
		copy(meta.MAC[:], mac)
		secretData = ct
		if opts.Hybrid {
			meta.Hybrid = true
			secretPlain = plain
		}
	}
	stats.SecretDataBytes = len(secretData)

	return &SanitizeResult{
		SanitizedELF: raw,
		Meta:         meta,
		SecretData:   secretData,
		SecretPlain:  secretPlain,
		Stats:        stats,
	}, nil
}
