package elide

import (
	"bytes"
	"testing"

	"sgxelide/internal/elf"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// TestSanitizeRestoreIdentity is the core invariant of the whole system:
// after elide_restore, the enclave's in-memory text section is byte-for-byte
// identical to the ORIGINAL (unsanitized) image's text — sanitize∘restore
// is the identity on code.
func TestSanitizeRestoreIdentity(t *testing.T) {
	for _, opts := range []SanitizeOptions{
		{},
		{EncryptLocal: true},
		{Ranges: true},
		{EncryptLocal: true, Ranges: true},
	} {
		opts := opts
		name := "whole"
		if opts.Ranges {
			name = "ranges"
		}
		if opts.EncryptLocal {
			name += "+local"
		}
		t.Run(name, func(t *testing.T) {
			ca, h := env(t)
			p := buildApp(t, h, opts)
			srv, err := p.NewServerFor(ca)
			if err != nil {
				t.Fatal(err)
			}
			encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, p.LocalFiles())
			if err != nil {
				t.Fatal(err)
			}

			pf, err := elf.Read(p.PlainELF)
			if err != nil {
				t.Fatal(err)
			}
			text := pf.Section(".text")
			original := pf.SectionData(text)

			// Before restore, enclave text differs from the original (the
			// sanitized functions are zero).
			pre := readEnclave(t, encl, text.Addr, len(original))
			if bytes.Equal(pre, original) {
				t.Fatal("sanitized enclave text equals original")
			}

			if code, err := encl.ECall("elide_restore", 0); err != nil || code != 0 {
				t.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
			}

			post := readEnclave(t, encl, text.Addr, len(original))
			if !bytes.Equal(post, original) {
				for i := range post {
					if post[i] != original[i] {
						t.Fatalf("restored text differs first at offset %#x: %#x != %#x",
							i, post[i], original[i])
					}
				}
			}
		})
	}
}

// readEnclave reads enclave memory as the enclave itself would (the test
// plays the role of trusted code; the host still cannot do this).
func readEnclave(t *testing.T, encl *sdk.Enclave, addr uint64, n int) []byte {
	t.Helper()
	out, f := encl.Space.EnclaveReadBytes(addr, n)
	if f != nil {
		t.Fatal(f)
	}
	return out
}

// TestServerFilesRoundTrip checks the CLI file formats: what
// WriteServerFiles emits, LoadServerConfig reproduces.
func TestServerFilesRoundTrip(t *testing.T) {
	ca, h := env(t)
	for _, local := range []bool{false, true} {
		p := buildApp(t, h, SanitizeOptions{EncryptLocal: local})
		dir := t.TempDir()
		if err := p.WriteServerFiles(dir, ca.PublicKey()); err != nil {
			t.Fatal(err)
		}
		cfg, err := LoadServerConfig(dir)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.ExpectedMrEnclave != p.Measurement {
			t.Error("measurement lost")
		}
		if *cfg.Meta != *p.Meta {
			t.Errorf("meta lost: %+v vs %+v", cfg.Meta, p.Meta)
		}
		if local {
			if cfg.SecretPlain != nil {
				t.Error("local mode should not load plaintext data")
			}
		} else if !bytes.Equal(cfg.SecretPlain, p.SecretData) {
			t.Error("secret data lost")
		}
		if !cfg.CAPub.Equal(ca.PublicKey()) {
			t.Error("CA key lost")
		}
		// The loaded config drives a working server.
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, p.LocalFiles())
		if err != nil {
			t.Fatal(err)
		}
		if code, err := encl.ECall("elide_restore", 0); err != nil || code != 0 {
			t.Fatalf("restore with loaded config: %d %v (%v)", code, err, rt.LastErr())
		}
	}
}

// TestCAPersistRoundTrip checks CA save/load (the -ca flag of elide-run).
func TestCAPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/ca.pem"
	ca1, err := sgx.LoadOrCreateCA(path)
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := sgx.LoadOrCreateCA(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ca1.PublicKey().Equal(ca2.PublicKey()) {
		t.Error("CA not stable across loads")
	}
	// A platform provisioned under the loaded CA produces quotes the
	// original CA's public key verifies.
	platform, err := sgx.NewPlatform(sgx.Config{EPCPages: 64}, ca2)
	if err != nil {
		t.Fatal(err)
	}
	_ = platform
}
