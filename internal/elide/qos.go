package elide

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// Per-enclave QoS: a token bucket over fresh attestations and a cap on
// concurrently served channel requests, both keyed by the enclave
// measurement. The point is isolation, not total throughput — one noisy
// deployment's restore storm must not starve the other enclaves the
// store serves. Shed work gets a typed overload answer (ErrOverloaded)
// with a retry-after hint instead of a refusal, so clients back off
// rather than give up.

// qosState is one enclave measurement's throttle state.
type qosState struct {
	mu       sync.Mutex
	tokens   float64
	last     time.Time
	inflight int
	// shedWaiters estimates how many shed clients are currently waiting to
	// retry (incremented on shed, decayed on release), so retry-after
	// hints spread a backlog out instead of stampeding it back at once.
	shedWaiters int
	// svcEWMANs tracks the smoothed service time of completed requests,
	// the basis for estimating when a slot will actually free up.
	svcEWMANs float64
}

// qosFor returns (lazily creating) the QoS state for a measurement.
func (s *Server) qosFor(mr [32]byte) *qosState {
	s.qosMu.Lock()
	defer s.qosMu.Unlock()
	q, ok := s.qos[mr]
	if !ok {
		q = &qosState{tokens: float64(s.opt.attestBurst), last: time.Now()}
		s.qos[mr] = q
	}
	return q
}

// admitAttest takes one token from the enclave's attest bucket, returning
// the overload answer (with the time until a token accrues) when the
// bucket is dry. Nil when rate limiting is off.
func (s *Server) admitAttest(e *SecretEntry) error {
	if s.opt.attestRate <= 0 {
		return nil
	}
	q := s.qosFor(e.MrEnclave)
	q.mu.Lock()
	now := time.Now()
	q.tokens += now.Sub(q.last).Seconds() * s.opt.attestRate
	q.last = now
	if burst := float64(s.opt.attestBurst); q.tokens > burst {
		q.tokens = burst
	}
	if q.tokens >= 1 {
		q.tokens--
		q.mu.Unlock()
		return nil
	}
	wait := time.Duration((1 - q.tokens) / s.opt.attestRate * float64(time.Second))
	q.mu.Unlock()
	s.opt.metrics.Counter("server.overload.rate_limited").Inc()
	s.opt.metrics.Counter("server.overload.rate_limited.mr_" + e.Label()).Inc()
	return &OverloadedError{
		RetryAfter: wait,
		Msg:        fmt.Sprintf("attest rate limit for enclave %s", e.Label()),
	}
}

// admitInflight reserves an in-flight serving slot for the enclave,
// returning a release func, or the overload answer when the enclave is at
// its cap. The release func is always safe to call (a no-op when limiting
// is off).
func (s *Server) admitInflight(e *SecretEntry) (func(), error) {
	if s.opt.maxInflight <= 0 {
		return func() {}, nil
	}
	q := s.qosFor(e.MrEnclave)
	q.mu.Lock()
	if q.inflight >= s.opt.maxInflight {
		// Queue position for the hint: everyone already shed and waiting is
		// ahead of this client. Capped so a pathological backlog cannot
		// push hints past the IO timeout anyway.
		if q.shedWaiters < 64 {
			q.shedWaiters++
		}
		pos := q.shedWaiters
		est := q.svcEWMANs
		q.mu.Unlock()
		s.opt.metrics.Counter("server.overload.inflight").Inc()
		s.opt.metrics.Counter("server.overload.inflight.mr_" + e.Label()).Inc()
		return nil, &OverloadedError{
			RetryAfter: s.inflightRetryAfter(est, pos),
			Msg:        fmt.Sprintf("in-flight limit for enclave %s", e.Label()),
		}
	}
	q.inflight++
	s.opt.metrics.Gauge("server.inflight.mr_" + e.Label()).Inc()
	q.mu.Unlock()
	start := time.Now()
	release := func() {
		took := float64(time.Since(start).Nanoseconds())
		q.mu.Lock()
		q.inflight--
		// EWMA of observed service time (alpha 0.2): each completion both
		// refines the wait estimate and retires one presumed waiter.
		if q.svcEWMANs == 0 {
			q.svcEWMANs = took
		} else {
			q.svcEWMANs += 0.2 * (took - q.svcEWMANs)
		}
		if q.shedWaiters > 0 {
			q.shedWaiters--
		}
		q.mu.Unlock()
		s.opt.metrics.Gauge("server.inflight.mr_" + e.Label()).Dec()
	}
	return release, nil
}

// inflightRetryAfter derives an overload retry-after hint from the actual
// state of the queue instead of a constant: with estNs the EWMA service
// time and pos this client's position among shed waiters, a slot is
// expected in roughly estNs/maxInflight * pos. Jitter (uniform in
// [base/2, 1.5*base)) desynchronizes clients shed in the same burst —
// identical hints would march the whole herd back in lockstep, which is
// the failure mode the hint exists to prevent. The result is clamped to
// [1ms, ioTimeout]: sub-millisecond hints truncate to "retry now" on the
// wire, and anything past the IO deadline is indistinguishable from a
// refusal.
func (s *Server) inflightRetryAfter(estNs float64, pos int) time.Duration {
	per := time.Duration(estNs / float64(s.opt.maxInflight))
	if per <= 0 {
		// No completions observed yet: fall back to a share of the IO
		// timeout as the only scale the server knows.
		per = s.opt.ioTimeout / 10
	}
	if pos < 1 {
		pos = 1
	}
	base := per * time.Duration(pos)
	if max := s.opt.ioTimeout; max > 0 && base > max {
		base = max
	}
	hint := base
	if half := base / 2; half > 0 {
		hint = half + rand.N(base)
	}
	if hint < time.Millisecond {
		hint = time.Millisecond
	}
	if max := s.opt.ioTimeout; max > 0 && hint > max {
		hint = max
	}
	return hint
}
