package elide

import (
	"fmt"
	"sync"
	"time"
)

// Per-enclave QoS: a token bucket over fresh attestations and a cap on
// concurrently served channel requests, both keyed by the enclave
// measurement. The point is isolation, not total throughput — one noisy
// deployment's restore storm must not starve the other enclaves the
// store serves. Shed work gets a typed overload answer (ErrOverloaded)
// with a retry-after hint instead of a refusal, so clients back off
// rather than give up.

// qosState is one enclave measurement's throttle state.
type qosState struct {
	mu       sync.Mutex
	tokens   float64
	last     time.Time
	inflight int
}

// qosFor returns (lazily creating) the QoS state for a measurement.
func (s *Server) qosFor(mr [32]byte) *qosState {
	s.qosMu.Lock()
	defer s.qosMu.Unlock()
	q, ok := s.qos[mr]
	if !ok {
		q = &qosState{tokens: float64(s.opt.attestBurst), last: time.Now()}
		s.qos[mr] = q
	}
	return q
}

// admitAttest takes one token from the enclave's attest bucket, returning
// the overload answer (with the time until a token accrues) when the
// bucket is dry. Nil when rate limiting is off.
func (s *Server) admitAttest(e *SecretEntry) error {
	if s.opt.attestRate <= 0 {
		return nil
	}
	q := s.qosFor(e.MrEnclave)
	q.mu.Lock()
	now := time.Now()
	q.tokens += now.Sub(q.last).Seconds() * s.opt.attestRate
	q.last = now
	if burst := float64(s.opt.attestBurst); q.tokens > burst {
		q.tokens = burst
	}
	if q.tokens >= 1 {
		q.tokens--
		q.mu.Unlock()
		return nil
	}
	wait := time.Duration((1 - q.tokens) / s.opt.attestRate * float64(time.Second))
	q.mu.Unlock()
	s.opt.metrics.Counter("server.overload.rate_limited").Inc()
	s.opt.metrics.Counter("server.overload.rate_limited.mr_" + e.Label()).Inc()
	return &OverloadedError{
		RetryAfter: wait,
		Msg:        fmt.Sprintf("attest rate limit for enclave %s", e.Label()),
	}
}

// admitInflight reserves an in-flight serving slot for the enclave,
// returning a release func, or the overload answer when the enclave is at
// its cap. The release func is always safe to call (a no-op when limiting
// is off).
func (s *Server) admitInflight(e *SecretEntry) (func(), error) {
	if s.opt.maxInflight <= 0 {
		return func() {}, nil
	}
	q := s.qosFor(e.MrEnclave)
	q.mu.Lock()
	if q.inflight >= s.opt.maxInflight {
		q.mu.Unlock()
		s.opt.metrics.Counter("server.overload.inflight").Inc()
		s.opt.metrics.Counter("server.overload.inflight.mr_" + e.Label()).Inc()
		return nil, &OverloadedError{
			// No principled wait estimate exists for a concurrency cap;
			// one IO timeout's worth of spread keeps retries from
			// synchronizing.
			RetryAfter: s.opt.ioTimeout / 10,
			Msg:        fmt.Sprintf("in-flight limit for enclave %s", e.Label()),
		}
	}
	q.inflight++
	s.opt.metrics.Gauge("server.inflight.mr_" + e.Label()).Inc()
	q.mu.Unlock()
	release := func() {
		q.mu.Lock()
		q.inflight--
		q.mu.Unlock()
		s.opt.metrics.Gauge("server.inflight.mr_" + e.Label()).Dec()
	}
	return release, nil
}
