package elide

import (
	"context"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// TestCorruptedSanitizedImageFailsEINIT: flipping any byte of the sanitized
// image's loadable content makes EINIT reject it (measurement mismatch) —
// the attested identity covers every loaded byte.
func TestCorruptedSanitizedImageFailsEINIT(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	flips := 0
	for flips < 8 {
		img := append([]byte(nil), p.SanitizedELF...)
		// Flip a byte inside the text segment's file content.
		off := int(uint(r.Intn(4000))) + 4096 // skip headers, land in .text
		if off >= len(img) {
			continue
		}
		img[off] ^= 0x41
		rt := &Runtime{Client: &DirectClient{Session: srv.NewSession()}, Files: &FileStore{}}
		rt.Install(h)
		_, err := h.CreateEnclave(img, p.SigStruct, p.EDL)
		if err == nil {
			t.Fatalf("corrupted image (byte %#x) initialized", off)
		}
		if !strings.Contains(err.Error(), "measurement") && !strings.Contains(err.Error(), "elf") {
			t.Fatalf("unexpected error: %v", err)
		}
		flips++
	}
}

// TestServerSendsGarbage: a malicious or broken server answering the
// channel requests with garbage must not crash the enclave — the restore
// fails with a clean error code.
func TestServerSendsGarbage(t *testing.T) {
	_, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	rt := &Runtime{Client: garbageClient{}, Files: &FileStore{}}
	rt.Install(h)
	encl, err := h.CreateEnclave(p.SanitizedELF, p.SigStruct, p.EDL)
	if err != nil {
		t.Fatal(err)
	}
	code, err := encl.ECall("elide_restore", 0)
	if err != nil {
		t.Fatalf("enclave crashed instead of failing cleanly: %v", err)
	}
	if code < 100 {
		t.Fatalf("restore succeeded against a garbage server: %d", code)
	}
}

// garbageClient "attests" fine but then responds with noise.
type garbageClient struct{}

func (garbageClient) Attest(_ context.Context, q *sgx.Quote, clientPub []byte) ([]byte, error) {
	return make([]byte, 32), nil // a zero public key: ECDH will produce junk
}

func (garbageClient) Request(_ context.Context, enc []byte) ([]byte, error) {
	return []byte("this is definitely not AES-GCM framed data"), nil
}

func (garbageClient) Close() error { return nil }

// TestSealedFileCorruptionFallsBack: a tampered sealed file must fail its
// MAC and fall back to the server path.
func TestSealedFileCorruption(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	if code, err := encl.ECall("elide_restore", FlagSealAfter); err != nil || code != 0 {
		t.Fatalf("restore: %d %v", code, err)
	}
	// Corrupt the sealed blob's ciphertext.
	rt.Files.Sealed[len(rt.Files.Sealed)-1] ^= 1
	encl2, _, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, rt.Files)
	if err != nil {
		t.Fatal(err)
	}
	code, err := encl2.ECall("elide_restore", FlagTrySealed)
	if err != nil {
		t.Fatal(err)
	}
	if code != RestoreOKServer {
		t.Fatalf("restore = %d, want server fallback (%d)", code, RestoreOKServer)
	}
}

// TestSanitizerRejectsGarbageInput: truncated or random inputs fail loudly.
func TestSanitizerRejectsGarbageInput(t *testing.T) {
	wl, _ := fixtures(t)
	for _, input := range [][]byte{nil, []byte("not elf"), make([]byte, 63)} {
		if _, err := Sanitize(input, wl, SanitizeOptions{}); err == nil {
			t.Errorf("sanitizer accepted %d bytes of garbage", len(input))
		}
	}
}

// TestConcurrentTCPSessions: the TCP server handles parallel clients, each
// restoring its own enclave on its own platform.
func TestConcurrentTCPSessions(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(context.Background(), l)

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each client is its own machine under the same CA.
			platform, err := sgx.NewPlatform(sgx.Config{}, ca)
			if err != nil {
				errs <- err
				return
			}
			host := sdk.NewHost(platform)
			client := NewTCPClient(l.Addr().String())
			defer client.Close()
			encl, rt, err := p.Launch(host, client, p.LocalFiles())
			if err != nil {
				errs <- err
				return
			}
			code, err := encl.ECall("elide_restore", 0)
			if err != nil || code != RestoreOKServer {
				errs <- err
				return
			}
			if got, err := encl.ECall("ecall_compute", 77); err != nil || got != secretTransformGo(77) {
				errs <- err
				return
			}
			_ = rt
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestHeapWatermarkReclaimsAcrossECalls: bridges release their heap arena
// on return, so repeated large-buffer ecalls never exhaust the trusted heap.
func TestHeapWatermarkReclaimsAcrossECalls(t *testing.T) {
	encl, rt, _ := launchWithServer(t, SanitizeOptions{})
	if code, err := encl.ECall("elide_restore", 0); err != nil || code != 0 {
		t.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
	}
	// ecall_compute is scalar; the restore itself mallocs ~the text size.
	// Run many restores-worth of heap pressure through repeated ecalls with
	// marshalled args via elide_restore no-ops plus compute calls.
	for i := 0; i < 200; i++ {
		if _, err := encl.ECall("ecall_compute", uint64(i)); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}
