package elide

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"

	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// ServerConfig configures the developer-controlled authentication server.
type ServerConfig struct {
	CAPub *ecdsa.PublicKey // pinned attestation root ("Intel")

	// ExpectedMrEnclave is the measurement of the *sanitized, signed*
	// enclave. Secrets are released only to an enclave that attests to
	// exactly this identity.
	ExpectedMrEnclave [32]byte

	// Meta is enclave.secret.meta (including the local-data decryption key
	// when the sanitizer encrypted the data).
	Meta *SecretMeta

	// SecretPlain is the plaintext secret data, served on REQUEST_DATA in
	// remote-data mode. May be nil in local-data mode.
	SecretPlain []byte
}

// Server is the SgxElide authentication server: it verifies a quote,
// establishes an AES-GCM channel, and answers the paper's one-byte
// REQUEST_META / REQUEST_DATA protocol.
type Server struct {
	cfg ServerConfig
}

// NewServer builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.CAPub == nil {
		return nil, fmt.Errorf("elide: server needs the attestation CA public key")
	}
	if cfg.Meta == nil {
		return nil, fmt.Errorf("elide: server needs the secret metadata")
	}
	if !cfg.Meta.Encrypted && cfg.SecretPlain == nil {
		return nil, fmt.Errorf("elide: remote-data mode needs the plaintext secret data")
	}
	return &Server{cfg: cfg}, nil
}

// Session is one client's attested channel with the server.
type Session struct {
	srv        *Server
	channelKey []byte
}

// NewSession starts an unattested session.
func (s *Server) NewSession() *Session { return &Session{srv: s} }

// Attest verifies the quote and the channel binding, then completes the
// ECDH exchange, returning the server's public key. Secrets become
// available to this session only after success.
func (ss *Session) Attest(q *sgx.Quote, clientPub []byte) ([]byte, error) {
	s := ss.srv
	if err := sgx.VerifyQuote(s.cfg.CAPub, q); err != nil {
		return nil, fmt.Errorf("elide server: %w", err)
	}
	if q.MrEnclave != s.cfg.ExpectedMrEnclave {
		return nil, fmt.Errorf("elide server: enclave measurement %x is not the expected sanitized enclave", q.MrEnclave[:8])
	}
	// The report data binds the client's ephemeral key to the quote,
	// preventing a man-in-the-middle from substituting its own key.
	binding := sha256.Sum256(clientPub)
	if string(q.Data[:32]) != string(binding[:]) {
		return nil, fmt.Errorf("elide server: channel key not bound to the quote")
	}
	priv, pub, err := sdk.GenerateECDHKeypair()
	if err != nil {
		return nil, err
	}
	key, err := sdk.DeriveChannelKey(priv, clientPub)
	if err != nil {
		return nil, err
	}
	ss.channelKey = key
	return pub, nil
}

// Request answers one encrypted request on the attested channel.
func (ss *Session) Request(enc []byte) ([]byte, error) {
	if ss.channelKey == nil {
		return nil, fmt.Errorf("elide server: request before attestation")
	}
	req, err := sealDecrypt(ss.channelKey, enc)
	if err != nil {
		return nil, fmt.Errorf("elide server: bad request: %w", err)
	}
	if len(req) != 1 {
		return nil, fmt.Errorf("elide server: request must be one byte")
	}
	var resp []byte
	switch req[0] {
	case RequestMeta:
		resp = ss.srv.cfg.Meta.Marshal()
	case RequestData:
		if ss.srv.cfg.SecretPlain == nil {
			return nil, fmt.Errorf("elide server: no remote data (local-data deployment)")
		}
		resp = ss.srv.cfg.SecretPlain
	default:
		return nil, fmt.Errorf("elide server: unknown request %d", req[0])
	}
	return sealEncrypt(ss.channelKey, resp)
}

// --- transport ---

// Client is how the untrusted runtime reaches the authentication server:
// either in-process (DirectClient) or over TCP (TCPClient / Serve).
type Client interface {
	Attest(q *sgx.Quote, clientPub []byte) ([]byte, error)
	Request(enc []byte) ([]byte, error)
}

// DirectClient runs the server in-process (and is also what the benchmarks
// use, mirroring the paper's same-machine socket setup with negligible
// network latency).
type DirectClient struct {
	Session *Session
}

// Attest implements Client.
func (c *DirectClient) Attest(q *sgx.Quote, clientPub []byte) ([]byte, error) {
	return c.Session.Attest(q, clientPub)
}

// Request implements Client.
func (c *DirectClient) Request(enc []byte) ([]byte, error) {
	return c.Session.Request(enc)
}

// attestMsg is the wire form of the attestation handshake.
type attestMsg struct {
	Quote     *sgx.Quote
	ClientPub []byte
}

// Serve accepts connections until the listener closes. Each connection is
// one session: an attestation handshake followed by framed encrypted
// requests.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.handleConn(conn)
		}()
	}
}

// handleConn speaks the TCP protocol for one session.
func (s *Server) handleConn(conn net.Conn) error {
	ss := s.NewSession()
	var msg attestMsg
	if err := gob.NewDecoder(conn).Decode(&msg); err != nil {
		return err
	}
	pub, err := ss.Attest(msg.Quote, msg.ClientPub)
	if err != nil {
		writeFrame(conn, nil) // empty frame = refused
		return err
	}
	if err := writeFrame(conn, pub); err != nil {
		return err
	}
	for {
		req, err := readFrame(conn)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		resp, err := ss.Request(req)
		if err != nil {
			writeFrame(conn, nil)
			return err
		}
		if err := writeFrame(conn, resp); err != nil {
			return err
		}
	}
}

// TCPClient speaks the same protocol from the client side.
type TCPClient struct {
	Conn     net.Conn
	attested bool
}

// Attest implements Client.
func (c *TCPClient) Attest(q *sgx.Quote, clientPub []byte) ([]byte, error) {
	if err := gob.NewEncoder(c.Conn).Encode(&attestMsg{Quote: q, ClientPub: clientPub}); err != nil {
		return nil, err
	}
	pub, err := readFrame(c.Conn)
	if err != nil {
		return nil, err
	}
	if len(pub) == 0 {
		return nil, fmt.Errorf("elide: server refused attestation")
	}
	c.attested = true
	return pub, nil
}

// Request implements Client.
func (c *TCPClient) Request(enc []byte) ([]byte, error) {
	if !c.attested {
		return nil, fmt.Errorf("elide: request before attestation")
	}
	if err := writeFrame(c.Conn, enc); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.Conn)
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, fmt.Errorf("elide: server refused request")
	}
	return resp, nil
}

const maxFrame = 64 << 20

func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("elide: oversized frame (%d bytes)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
