package elide

import (
	"container/list"
	"context"
	"crypto/ecdsa"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// ServerConfig configures a single-enclave authentication server (the
// paper's one-server-per-deployment shape). It is the compatibility layer
// over a one-entry SecretStore; multi-enclave deployments build the store
// directly and use NewMultiServer.
type ServerConfig struct {
	CAPub *ecdsa.PublicKey // pinned attestation root ("Intel")

	// ExpectedMrEnclave is the measurement of the *sanitized, signed*
	// enclave. Secrets are released only to an enclave that attests to
	// exactly this identity.
	ExpectedMrEnclave [32]byte

	// Meta is enclave.secret.meta (including the local-data decryption key
	// when the sanitizer encrypted the data).
	Meta *SecretMeta

	// SecretPlain is the plaintext secret data, served on REQUEST_DATA in
	// remote-data mode. May be nil in local-data mode.
	SecretPlain []byte
}

// serverOptions collects the functional options of NewServer.
type serverOptions struct {
	maxSessions int
	ioTimeout   time.Duration
	drain       time.Duration
	resumeCap   int
	metrics     *obs.Registry
	tracer      *obs.Tracer

	// onHandshake is a package-internal test seam, called with each
	// decoded handshake before attestation (robustness tests use it to
	// simulate a session that panics).
	onHandshake func(*attestMsg)
}

// ServerOption configures a Server beyond its ServerConfig.
type ServerOption func(*serverOptions)

// WithMaxSessions caps concurrent TCP sessions; further accepts block until
// a slot frees (default 256).
func WithMaxSessions(n int) ServerOption {
	return func(o *serverOptions) { o.maxSessions = n }
}

// WithIOTimeout sets the per-connection read/write deadline armed before
// every wire interaction (default 30s). A session idle longer than this is
// dropped.
func WithIOTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.ioTimeout = d }
}

// WithDrainTimeout bounds how long Serve waits for in-flight sessions
// after its context is cancelled before force-closing their connections
// (default 10s).
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.drain = d }
}

// WithResumeCacheSize caps the session-resumption cache (default 1024
// entries; 0 disables resumption).
func WithResumeCacheSize(n int) ServerOption {
	return func(o *serverOptions) { o.resumeCap = n }
}

// WithServerMetrics wires the server into an obs registry.
func WithServerMetrics(r *obs.Registry) ServerOption {
	return func(o *serverOptions) { o.metrics = r }
}

// WithServerTracer wires the server into an obs tracer: each TCP session
// becomes a trace (root span "session") with a child per protocol phase —
// the server-side mirror of the client's restore pipeline.
func WithServerTracer(t *obs.Tracer) ServerOption {
	return func(o *serverOptions) { o.tracer = t }
}

// Server is the SgxElide authentication server: it verifies a quote,
// resolves the attested measurement in its secret store, establishes an
// AES-GCM channel, and answers the paper's one-byte REQUEST_META /
// REQUEST_DATA protocol — for every sanitized enclave registered in the
// store, not just one.
type Server struct {
	caPub *ecdsa.PublicKey
	store *SecretStore
	opt   serverOptions

	// Session resumption: a client that reconnects mid-protocol replays
	// its attestation handshake; keying the established channel by the
	// quote-bound client ephemeral key lets the server hand back the same
	// channel key, so the enclave's derived key stays valid (the moral
	// equivalent of TLS session resumption). True LRU: both a cache hit
	// and a re-store refresh the entry's position, so a hot resumed
	// session cannot be evicted before cold ones.
	resumeMu   sync.Mutex
	resume     map[[32]byte]*list.Element // value: *resumeEntry
	resumeList *list.List                 // front = least recently used
}

// resumeEntry is one cached attested channel.
type resumeEntry struct {
	key        [32]byte // quote-bound client ephemeral key hash
	serverPub  []byte
	channelKey []byte
}

// NewServer builds a single-enclave server: a one-entry store under the
// hood, releasing secrets only to cfg.ExpectedMrEnclave.
func NewServer(cfg ServerConfig, opts ...ServerOption) (*Server, error) {
	st := NewSecretStore()
	if _, err := st.Register(cfg.ExpectedMrEnclave, cfg.Meta, cfg.SecretPlain, ""); err != nil {
		return nil, err
	}
	return NewMultiServer(cfg.CAPub, st, opts...)
}

// NewMultiServer builds a server over an externally managed secret store.
// The store may be mutated while serving (Register/Remove/LoadDir/Watch);
// each attestation resolves the measurement at handshake time.
func NewMultiServer(caPub *ecdsa.PublicKey, store *SecretStore, opts ...ServerOption) (*Server, error) {
	if caPub == nil {
		return nil, fmt.Errorf("elide: server needs the attestation CA public key")
	}
	if store == nil {
		return nil, fmt.Errorf("elide: server needs a secret store")
	}
	o := serverOptions{
		maxSessions: 256,
		ioTimeout:   30 * time.Second,
		drain:       10 * time.Second,
		resumeCap:   1024,
	}
	for _, fn := range opts {
		fn(&o)
	}
	return &Server{
		caPub:      caPub,
		store:      store,
		opt:        o,
		resume:     make(map[[32]byte]*list.Element),
		resumeList: list.New(),
	}, nil
}

// Store returns the server's secret store (never nil), for runtime
// registration and removal of enclave identities.
func (s *Server) Store() *SecretStore { return s.store }

// Metrics returns the server's registry (nil when not configured).
func (s *Server) Metrics() *obs.Registry { return s.opt.metrics }

// Tracer returns the server's tracer (nil when not configured).
func (s *Server) Tracer() *obs.Tracer { return s.opt.tracer }

// Session is one client's attested channel with the server. The secret
// entry it serves is resolved from the attested quote's measurement, so
// one server process concurrently holds sessions for many distinct
// sanitized enclaves without any cross-talk.
type Session struct {
	srv        *Server
	channelKey []byte
	entry      *SecretEntry // resolved by Attest; nil before attestation
	span       *obs.Span    // session root span; nil without a tracer
}

// NewSession starts an unattested session.
func (s *Server) NewSession() *Session { return &Session{srv: s} }

// Attest verifies the quote, resolves the attested measurement in the
// secret store, checks the channel binding, then completes the ECDH
// exchange, returning the server's public key. The resolved entry's
// secrets become available to this session only after success. A replayed
// handshake (same quote-bound client key) resumes the previously
// established channel rather than generating a fresh keypair, so
// reconnecting clients keep their channel key.
func (ss *Session) Attest(q *sgx.Quote, clientPub []byte) (pub []byte, err error) {
	s := ss.srv
	defer s.opt.metrics.Observe("server.attest_ns", time.Now())
	span := ss.span.Child("attest")
	defer func() {
		span.SetError(err)
		span.End()
	}()
	if err := sgx.VerifyQuote(s.caPub, q); err != nil {
		s.opt.metrics.Counter("server.attest_refused").Inc()
		return nil, fmt.Errorf("elide server: %w", err)
	}
	entry, ok := s.store.Lookup(q.MrEnclave)
	if !ok {
		s.opt.metrics.Counter("server.attest_refused").Inc()
		return nil, fmt.Errorf("elide server: enclave measurement %x is not the expected sanitized enclave", q.MrEnclave[:8])
	}
	// The report data binds the client's ephemeral key to the quote,
	// preventing a man-in-the-middle from substituting its own key. The
	// compare is constant-time: its outcome gates secret release, and a
	// byte-by-byte early exit would leak how much of a guessed binding
	// matched.
	binding := sha256.Sum256(clientPub)
	if subtle.ConstantTimeCompare(q.Data[:32], binding[:]) != 1 {
		s.opt.metrics.Counter("server.attest_refused").Inc()
		return nil, fmt.Errorf("elide server: channel key not bound to the quote")
	}
	ss.entry = entry
	span.SetStr("mrenclave", entry.Label())
	entry.attests.Add(1)
	if pub, key, ok := s.resumeLookup(binding); ok {
		ss.channelKey = key
		s.opt.metrics.Counter("server.attest_resumed").Inc()
		span.SetBool("resumed", true)
		return pub, nil
	}
	priv, pub, err := sdk.GenerateECDHKeypair()
	if err != nil {
		return nil, err
	}
	key, err := sdk.DeriveChannelKey(priv, clientPub)
	if err != nil {
		return nil, err
	}
	ss.channelKey = key
	s.resumeStore(binding, pub, key)
	s.opt.metrics.Counter("server.attest_ok").Inc()
	s.opt.metrics.Counter("server.attest_ok.mr_" + entry.Label()).Inc()
	return pub, nil
}

// resumeLookup finds a cached channel for this client ephemeral key and
// refreshes its recency (a hot session must outlive cold ones).
func (s *Server) resumeLookup(key [32]byte) (pub, channelKey []byte, ok bool) {
	s.resumeMu.Lock()
	defer s.resumeMu.Unlock()
	el, ok := s.resume[key]
	if !ok {
		return nil, nil, false
	}
	s.resumeList.MoveToBack(el)
	e := el.Value.(*resumeEntry)
	return e.serverPub, e.channelKey, true
}

// resumeStore caches an established channel, evicting the least recently
// used entry at capacity. Re-storing an existing key refreshes both its
// channel state and its recency.
func (s *Server) resumeStore(key [32]byte, pub, channelKey []byte) {
	if s.opt.resumeCap <= 0 {
		return
	}
	s.resumeMu.Lock()
	defer s.resumeMu.Unlock()
	if el, ok := s.resume[key]; ok {
		e := el.Value.(*resumeEntry)
		e.serverPub, e.channelKey = pub, channelKey
		s.resumeList.MoveToBack(el)
		return
	}
	for s.resumeList.Len() >= s.opt.resumeCap {
		oldest := s.resumeList.Front()
		delete(s.resume, oldest.Value.(*resumeEntry).key)
		s.resumeList.Remove(oldest)
	}
	s.resume[key] = s.resumeList.PushBack(&resumeEntry{
		key: key, serverPub: pub, channelKey: channelKey,
	})
}

// resumeLen reports the cache size (test seam).
func (s *Server) resumeLen() int {
	s.resumeMu.Lock()
	defer s.resumeMu.Unlock()
	return len(s.resume)
}

// Request answers one encrypted request on the attested channel, serving
// only the secret entry resolved by this session's attestation.
func (ss *Session) Request(enc []byte) (out []byte, err error) {
	s := ss.srv
	if ss.channelKey == nil {
		return nil, ErrNotAttested
	}
	defer s.opt.metrics.Observe("server.request_ns", time.Now())
	s.opt.metrics.Counter("server.requests").Inc()
	span := ss.span.Child("request")
	defer func() {
		span.SetError(err)
		span.End()
	}()
	span.SetStr("mrenclave", ss.entry.Label())
	req, err := sealDecrypt(ss.channelKey, enc)
	if err != nil {
		s.opt.metrics.Counter("server.request_errors").Inc()
		return nil, fmt.Errorf("elide server: bad request: %w", err)
	}
	if len(req) != 1 {
		s.opt.metrics.Counter("server.request_errors").Inc()
		return nil, fmt.Errorf("elide server: request must be one byte")
	}
	var resp []byte
	switch req[0] {
	case RequestMeta:
		span.SetStr("kind", "meta")
		resp = ss.entry.Meta.Marshal()
		ss.entry.metaServed.Add(1)
		s.opt.metrics.Counter("server.meta_served.mr_" + ss.entry.Label()).Inc()
	case RequestData:
		span.SetStr("kind", "data")
		if ss.entry.SecretPlain == nil {
			s.opt.metrics.Counter("server.request_errors").Inc()
			return nil, fmt.Errorf("elide server: no remote data (local-data deployment)")
		}
		resp = ss.entry.SecretPlain
		span.SetInt("bytes", int64(len(resp)))
		ss.entry.dataServed.Add(1)
		s.opt.metrics.Counter("server.data_served.mr_" + ss.entry.Label()).Inc()
	default:
		s.opt.metrics.Counter("server.request_errors").Inc()
		return nil, fmt.Errorf("elide server: unknown request %d", req[0])
	}
	return sealEncrypt(ss.channelKey, resp)
}

// --- transport ---

// Client is how the untrusted runtime reaches the authentication server:
// either in-process (DirectClient) or over TCP (TCPClient / Serve). Both
// calls respect context cancellation; the TCP implementation also applies
// its configured timeouts and retry policy.
type Client interface {
	Attest(ctx context.Context, q *sgx.Quote, clientPub []byte) ([]byte, error)
	Request(ctx context.Context, enc []byte) ([]byte, error)
}

// DirectClient runs the server in-process (and is also what the benchmarks
// use, mirroring the paper's same-machine socket setup with negligible
// network latency).
type DirectClient struct {
	Session *Session
}

// Attest implements Client.
func (c *DirectClient) Attest(ctx context.Context, q *sgx.Quote, clientPub []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Session.Attest(q, clientPub)
}

// Request implements Client.
func (c *DirectClient) Request(ctx context.Context, enc []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Session.Request(enc)
}

// attestMsg is the wire form of the attestation handshake.
type attestMsg struct {
	Quote     *sgx.Quote
	ClientPub []byte
}

// Serve accepts connections until ctx is cancelled or the listener fails.
// Each connection is one session: an attestation handshake followed by
// framed encrypted requests. Concurrency is bounded by WithMaxSessions;
// every read/write is bounded by WithIOTimeout; a panic in one session is
// contained to that connection.
//
// On cancellation Serve stops accepting, lets in-flight sessions finish
// their current exchange (up to WithDrainTimeout), then returns
// ErrServerClosed.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	// Unblock Accept when the context ends.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			l.Close()
		case <-stop:
		}
	}()

	sem := make(chan struct{}, s.opt.maxSessions)
	var wg sync.WaitGroup
	var connMu sync.Mutex
	active := make(map[net.Conn]struct{})

	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				// Graceful shutdown: drain in-flight sessions, then close
				// whatever is still running after the drain window.
				drained := make(chan struct{})
				go func() { wg.Wait(); close(drained) }()
				select {
				case <-drained:
				case <-time.After(s.opt.drain):
					connMu.Lock()
					for c := range active {
						c.Close()
					}
					connMu.Unlock()
					wg.Wait()
				}
				return ErrServerClosed
			}
			wg.Wait()
			return err
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			conn.Close()
			continue // next Accept fails; the shutdown path above runs
		}
		connMu.Lock()
		active[conn] = struct{}{}
		connMu.Unlock()
		wg.Add(1)
		s.opt.metrics.Counter("server.sessions").Inc()
		s.opt.metrics.Gauge("server.active_sessions").Inc()
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			defer s.opt.metrics.Gauge("server.active_sessions").Dec()
			defer func() {
				connMu.Lock()
				delete(active, conn)
				connMu.Unlock()
				conn.Close()
			}()
			defer func() {
				if r := recover(); r != nil {
					// One poisoned session must not take the server down.
					s.opt.metrics.Counter("server.panics").Inc()
					writeErrorFrame(conn, fmt.Sprintf("internal error: %v", r))
				}
			}()
			s.handleConn(ctx, conn)
		}()
	}
}

// handleConn speaks the TCP protocol for one session: handshake, then a
// request loop. Errors are reported to the peer as status frames; an
// attestation failure closes the session, a bad request does not.
func (s *Server) handleConn(ctx context.Context, conn net.Conn) (err error) {
	ss := s.NewSession()
	ss.span = s.opt.tracer.Start("session")
	ss.span.SetStr("peer", conn.RemoteAddr().String())
	defer func() {
		ss.span.SetError(err)
		ss.span.End()
	}()
	s.armDeadline(conn)
	var msg attestMsg
	if err := gob.NewDecoder(conn).Decode(&msg); err != nil {
		return err
	}
	if s.opt.onHandshake != nil {
		s.opt.onHandshake(&msg)
	}
	pub, err := ss.Attest(msg.Quote, msg.ClientPub)
	if err != nil {
		s.armDeadline(conn)
		writeErrorFrame(conn, err.Error())
		return err
	}
	s.armDeadline(conn)
	if err := writeResponse(conn, pub); err != nil {
		return err
	}
	for {
		s.armDeadline(conn)
		req, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		resp, err := ss.Request(req)
		s.armDeadline(conn)
		if err != nil {
			// A refusal is an answer, not a transport failure: report it
			// and keep the session open for further requests.
			if werr := writeErrorFrame(conn, err.Error()); werr != nil {
				return werr
			}
			continue
		}
		if err := writeResponse(conn, resp); err != nil {
			return err
		}
		// Drain semantics: a cancelled context does not cut the session
		// off here — a restore in flight may need further requests and the
		// closed listener means it could not reconnect. Stragglers are
		// bounded by Serve's drain window, which force-closes connections.
	}
}

// armDeadline (re)sets the per-connection I/O deadline.
func (s *Server) armDeadline(conn net.Conn) {
	if s.opt.ioTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.opt.ioTimeout))
	}
}
