package elide

import (
	"bufio"
	"context"
	"crypto/ecdsa"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// ServerConfig configures a single-enclave authentication server (the
// paper's one-server-per-deployment shape). It is the compatibility layer
// over a one-entry SecretStore; multi-enclave deployments build the store
// directly and use NewMultiServer.
type ServerConfig struct {
	CAPub *ecdsa.PublicKey // pinned attestation root ("Intel")

	// ExpectedMrEnclave is the measurement of the *sanitized, signed*
	// enclave. Secrets are released only to an enclave that attests to
	// exactly this identity.
	ExpectedMrEnclave [32]byte

	// Meta is enclave.secret.meta (including the local-data decryption key
	// when the sanitizer encrypted the data).
	Meta *SecretMeta

	// SecretPlain is the plaintext secret data, served on REQUEST_DATA in
	// remote-data mode. May be nil in local-data mode.
	SecretPlain []byte
}

// serverOptions collects the functional options of NewServer. The With*
// constructors live in options.go alongside the other families.
type serverOptions struct {
	maxSessions int
	ioTimeout   time.Duration
	drain       time.Duration
	resumeCap   int
	attestRate  float64 // per-enclave attest tokens per second (0 = off)
	attestBurst int
	maxInflight int // per-enclave concurrent channel requests (0 = off)
	resumeTTL   time.Duration
	resumeStore ResumeStore // nil = the default in-process LRU
	fleetKey    []byte      // shared fleet sealing key (enables replication)
	peers       []string    // replication peers / gossip seeds
	metrics     *obs.Registry
	tracer      *obs.Tracer
	audit       *obs.AuditLog

	// Fleet membership (DESIGN §15).
	gossipSelf     string        // advertised address; non-empty enables gossip
	gossipInterval time.Duration // probe/gossip round cadence
	suspectTimeout time.Duration // suspicion → dead deadline
	peerCooldown   time.Duration // legacy-peer redial back-off
	peerDial       peerDialFunc  // test seam; nil = net.DialTimeout

	// onHandshake is a package-internal test seam, called with each
	// decoded handshake before attestation (robustness tests use it to
	// simulate a session that panics).
	onHandshake func(*attestMsg)
}

// Server is the SgxElide authentication server: it verifies a quote,
// resolves the attested measurement in its secret store, establishes an
// AES-GCM channel, and answers the paper's one-byte REQUEST_META /
// REQUEST_DATA protocol — for every sanitized enclave registered in the
// store, not just one.
type Server struct {
	caPub *ecdsa.PublicKey
	store *SecretStore
	opt   serverOptions

	// Session resumption: a client that reconnects mid-protocol replays
	// its attestation handshake; keying the established channel by the
	// quote-bound client ephemeral key lets the server hand back the same
	// channel key, so the enclave's derived key stays valid (the moral
	// equivalent of TLS session resumption). The cache lives behind the
	// ResumeStore interface (resume.go); the default is the in-process
	// LRU with lazy TTL expiry. rep, when non-nil, replicates records to
	// fleet peers and fetches on resume misses (replication.go).
	resume ResumeStore
	rep    *resumeReplicator

	// gsp, when non-nil, is the SWIM membership layer (membership.go);
	// its probe loop starts with the first Serve and stops with that
	// Serve's context.
	gsp        *gossiper
	gossipOnce sync.Once

	// Per-enclave QoS state (token bucket + in-flight count), lazily
	// created per measurement when rate or in-flight limits are set.
	qosMu sync.Mutex
	qos   map[[32]byte]*qosState
}

// NewServer builds a single-enclave server: a one-entry store under the
// hood, releasing secrets only to cfg.ExpectedMrEnclave.
func NewServer(cfg ServerConfig, opts ...ServerOption) (*Server, error) {
	st := NewSecretStore()
	if _, err := st.Register(cfg.ExpectedMrEnclave, cfg.Meta, cfg.SecretPlain, ""); err != nil {
		return nil, err
	}
	return NewMultiServer(cfg.CAPub, st, opts...)
}

// NewMultiServer builds a server over an externally managed secret store.
// The store may be mutated while serving (Register/Remove/LoadDir/Watch);
// each attestation resolves the measurement at handshake time.
func NewMultiServer(caPub *ecdsa.PublicKey, store *SecretStore, opts ...ServerOption) (*Server, error) {
	if caPub == nil {
		return nil, fmt.Errorf("elide: server needs the attestation CA public key")
	}
	if store == nil {
		return nil, fmt.Errorf("elide: server needs a secret store")
	}
	o := serverOptions{
		maxSessions: DefaultMaxSessions,
		ioTimeout:   DefaultIOTimeout,
		drain:       DefaultDrainTimeout,
		resumeCap:   DefaultResumeCacheSize,
		resumeTTL:   DefaultResumeTTL,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if o.attestRate > 0 && o.attestBurst <= 0 {
		// A bucket that can never hold a whole token admits nothing; give
		// an unset burst one second's worth of rate (at least 1).
		o.attestBurst = int(o.attestRate + 1)
	}
	if len(o.fleetKey) > 0 || len(o.peers) > 0 || o.gossipSelf != "" {
		if err := validFleetKey(o.fleetKey); err != nil {
			if o.gossipSelf != "" && len(o.fleetKey) == 0 {
				return nil, fmt.Errorf("elide: WithGossip requires the fleet key from WithResumeReplication")
			}
			return nil, err
		}
	}
	resume := o.resumeStore
	if resume == nil {
		resume = newLRUResumeStore(o.resumeCap)
	}
	s := &Server{
		caPub:  caPub,
		store:  store,
		opt:    o,
		resume: resume,
		qos:    make(map[[32]byte]*qosState),
	}
	if len(o.peers) > 0 || o.gossipSelf != "" {
		s.rep = newResumeReplicator(&o)
	}
	if o.gossipSelf != "" {
		s.gsp = newGossiper(o.gossipSelf, o.peers, s.rep, s.resume,
			o.fleetKey, o.gossipInterval, o.suspectTimeout, o.metrics, o.audit)
	}
	return s, nil
}

// Store returns the server's secret store (never nil), for runtime
// registration and removal of enclave identities.
func (s *Server) Store() *SecretStore { return s.store }

// Metrics returns the server's registry (nil when not configured).
func (s *Server) Metrics() *obs.Registry { return s.opt.metrics }

// Tracer returns the server's tracer (nil when not configured).
func (s *Server) Tracer() *obs.Tracer { return s.opt.tracer }

// Audit returns the server's audit log (nil when not configured).
func (s *Server) Audit() *obs.AuditLog { return s.opt.audit }

// Session is one client's attested channel with the server. The secret
// entry it serves is resolved from the attested quote's measurement, so
// one server process concurrently holds sessions for many distinct
// sanitized enclaves without any cross-talk.
type Session struct {
	srv        *Server
	channelKey []byte
	entry      *SecretEntry // resolved by Attest; nil before attestation
	span       *obs.Span    // session root span; nil without a tracer
	replay     bool         // handshake is a v1 session replay (set by handleConn)
}

// audit emits one event stamped with this session's trace ID and (when
// resolved) enclave identity. Nil-audit safe.
func (ss *Session) audit(ev obs.AuditEvent) {
	if ss.srv.opt.audit == nil {
		return
	}
	ev.TraceID = ss.span.TraceID()
	if ev.Enclave == "" && ss.entry != nil {
		ev.Enclave = ss.entry.Label()
	}
	ss.srv.opt.audit.Emit(ev)
}

// quoteLabel is the short measurement label of a quote that may not
// resolve to any store entry (refused attests still get audited with the
// measurement that knocked).
func quoteLabel(q *sgx.Quote) string {
	if q == nil {
		return ""
	}
	return fmt.Sprintf("%x", q.MrEnclave[:4])
}

// NewSession starts an unattested session.
func (s *Server) NewSession() *Session { return &Session{srv: s} }

// Attest verifies the quote, resolves the attested measurement in the
// secret store, checks the channel binding, then completes the ECDH
// exchange, returning the server's public key. The resolved entry's
// secrets become available to this session only after success. A replayed
// handshake (same quote-bound client key) resumes the previously
// established channel rather than generating a fresh keypair, so
// reconnecting clients keep their channel key.
func (ss *Session) Attest(q *sgx.Quote, clientPub []byte) (pub []byte, err error) {
	s := ss.srv
	defer s.opt.metrics.Observe("server.attest_ns", time.Now())
	span := ss.span.Child("attest")
	defer func() {
		span.SetError(err)
		span.End()
	}()
	if err := sgx.VerifyQuote(s.caPub, q); err != nil {
		s.opt.metrics.Counter("server.attest_refused").Inc()
		ss.audit(obs.AuditEvent{Type: obs.AuditAttestRefused, Enclave: quoteLabel(q), Detail: "quote verification failed"})
		return nil, fmt.Errorf("elide server: %w", err)
	}
	entry, ok := s.store.Lookup(q.MrEnclave)
	if !ok {
		s.opt.metrics.Counter("server.attest_refused").Inc()
		ss.audit(obs.AuditEvent{Type: obs.AuditAttestRefused, Enclave: quoteLabel(q), Detail: "measurement not registered"})
		return nil, fmt.Errorf("elide server: enclave measurement %x is not the expected sanitized enclave", q.MrEnclave[:8])
	}
	// The report data binds the client's ephemeral key to the quote,
	// preventing a man-in-the-middle from substituting its own key. The
	// compare is constant-time: its outcome gates secret release, and a
	// byte-by-byte early exit would leak how much of a guessed binding
	// matched.
	binding := sha256.Sum256(clientPub)
	if subtle.ConstantTimeCompare(q.Data[:32], binding[:]) != 1 {
		s.opt.metrics.Counter("server.attest_refused").Inc()
		ss.audit(obs.AuditEvent{Type: obs.AuditAttestRefused, Enclave: entry.Label(), Detail: "channel key not bound to quote"})
		return nil, fmt.Errorf("elide server: channel key not bound to the quote")
	}
	ss.entry = entry
	span.SetStr("mrenclave", entry.Label())
	entry.attests.Add(1)
	if rec, ok, expired := s.resumeGet(binding); ok {
		ss.channelKey = rec.ChannelKey
		s.opt.metrics.Counter("server.attest_resumed").Inc()
		span.SetBool("resumed", true)
		ss.audit(obs.AuditEvent{Type: obs.AuditResumeHit})
		return rec.ServerPub, nil
	} else if expired {
		// The channel was cached but aged out: a revoked-then-reconnecting
		// client must pay the full handshake again. Security-relevant.
		s.opt.metrics.Counter("server.resume_expired").Inc()
		span.SetBool("resume_expired", true)
		ss.audit(obs.AuditEvent{Type: obs.AuditResumeExpired, Detail: "resume entry past its TTL"})
	}
	// A replayed handshake that misses locally is the one case where a
	// fresh key breaks a mid-protocol enclave — worth a synchronous peer
	// fetch. Like a local hit, a fetched resume stays exempt from the
	// attest rate limit (it happens before admitAttest).
	if ss.replay && s.rep != nil {
		if rec, ok := s.rep.fetch(binding); ok &&
			subtle.ConstantTimeCompare(rec.MrEnclave[:], q.MrEnclave[:]) == 1 {
			ss.channelKey = rec.ChannelKey
			s.resume.Put(rec) // adopt: later reconnects hit locally
			s.opt.metrics.Counter("server.attest_resumed").Inc()
			span.SetBool("resumed", true)
			span.SetBool("resume_fetched", true)
			ss.audit(obs.AuditEvent{Type: obs.AuditResumeHit, Detail: "fetched from fleet peer"})
			return rec.ServerPub, nil
		}
	}
	if ss.replay {
		// A replayed handshake that missed the cache (and the fleet) gets a
		// *fresh* channel key below; the client's enclave is mid-protocol on
		// the old key, so its run is about to break. Security-relevant.
		s.opt.metrics.Counter("server.resume_miss").Inc()
		span.SetBool("resume_miss", true)
		ss.audit(obs.AuditEvent{Type: obs.AuditResumeMiss, Detail: "session replay missed the resume cache"})
	}
	// Rate limiting charges only fresh attestations: a resumed handshake is
	// a reconnecting client mid-protocol, and throttling it would turn one
	// network blip into a retry storm.
	if oerr := s.admitAttest(entry); oerr != nil {
		span.SetBool("overloaded", true)
		ss.auditShed(oerr, "attest rate limit")
		return nil, oerr
	}
	priv, pub, err := sdk.GenerateECDHKeypair()
	if err != nil {
		return nil, err
	}
	key, err := sdk.DeriveChannelKey(priv, clientPub)
	if err != nil {
		return nil, err
	}
	ss.channelKey = key
	if rec, cached := s.resumePut(binding, pub, key, q.MrEnclave); cached && s.rep != nil {
		s.rep.broadcast(rec)
	}
	s.opt.metrics.Counter("server.attest_ok").Inc()
	s.opt.metrics.Counter("server.attest_ok.mr_" + entry.Label()).Inc()
	ss.audit(obs.AuditEvent{Type: obs.AuditAttestOK})
	return pub, nil
}

// auditShed records one QoS shed with its retry-after hint.
func (ss *Session) auditShed(err error, detail string) {
	var oe *OverloadedError
	ev := obs.AuditEvent{Type: obs.AuditQoSShed, Detail: detail}
	if errors.As(err, &oe) {
		ev.RetryAfterMS = oe.RetryAfter.Milliseconds()
	}
	ss.audit(ev)
}

// resumeGet resolves a cached channel for this client ephemeral key; a
// hit refreshes its recency in the default store (a hot session must
// outlive cold ones), and expired reports a TTL lapse distinctly from a
// plain miss so Attest can audit it.
func (s *Server) resumeGet(binding [32]byte) (rec ResumeRecord, ok, expired bool) {
	return s.resume.Get(binding)
}

// resumePut caches an established channel, stamping the configured TTL,
// and reports whether it was cached (false when resumption is disabled —
// nothing to replicate either).
func (s *Server) resumePut(binding [32]byte, pub, channelKey []byte, mr [32]byte) (ResumeRecord, bool) {
	if s.opt.resumeStore == nil && s.opt.resumeCap <= 0 {
		return ResumeRecord{}, false
	}
	rec := ResumeRecord{
		Binding:    binding,
		ServerPub:  pub,
		ChannelKey: channelKey,
		MrEnclave:  mr,
	}
	if s.opt.resumeTTL > 0 {
		rec.ExpiresAt = time.Now().Add(s.opt.resumeTTL)
	}
	s.resume.Put(rec)
	return rec, true
}

// resumeLen reports the cache size (test seam; ResumeLen is the
// exported form, in membership.go).
func (s *Server) resumeLen() int { return s.resume.Len() }

// ReplicationHealth reports degraded while resume-replication pushes are
// being dropped (nil when replication is off or healthy) — wire it into
// the admin handler as a /healthz check.
func (s *Server) ReplicationHealth() error {
	if s.rep == nil {
		return nil
	}
	return s.rep.healthCheck()
}

// Request answers one encrypted request on the attested channel, serving
// only the secret entry resolved by this session's attestation. Requests
// past the enclave's in-flight cap (WithEnclaveInflightLimit) are shed
// with a typed overload answer instead of being served.
func (ss *Session) Request(enc []byte) (out []byte, err error) {
	s := ss.srv
	if ss.channelKey == nil {
		return nil, ErrNotAttested
	}
	release, oerr := s.admitInflight(ss.entry)
	if oerr != nil {
		ss.auditShed(oerr, "in-flight limit")
		return nil, oerr
	}
	defer release()
	defer s.opt.metrics.Observe("server.request_ns", time.Now())
	s.opt.metrics.Counter("server.requests").Inc()
	span := ss.span.Child("request")
	defer func() {
		span.SetError(err)
		span.End()
	}()
	span.SetStr("mrenclave", ss.entry.Label())
	req, err := sealDecrypt(ss.channelKey, enc)
	if err != nil {
		s.opt.metrics.Counter("server.request_errors").Inc()
		return nil, fmt.Errorf("elide server: bad request: %w", err)
	}
	if len(req) != 1 {
		s.opt.metrics.Counter("server.request_errors").Inc()
		return nil, fmt.Errorf("elide server: request must be one byte")
	}
	var resp []byte
	switch req[0] {
	case RequestMeta:
		span.SetStr("kind", "meta")
		resp = ss.serveMeta()
	case RequestData:
		span.SetStr("kind", "data")
		resp, err = ss.serveData()
		if err != nil {
			s.opt.metrics.Counter("server.request_errors").Inc()
			return nil, err
		}
		span.SetInt("bytes", int64(len(resp)))
	default:
		s.opt.metrics.Counter("server.request_errors").Inc()
		//elide:vet-ignore secretflow req[0] is the request opcode, not secret payload; the taint is an artifact of req coming from sealDecrypt
		return nil, fmt.Errorf("elide server: unknown request %d", req[0])
	}
	return sealEncrypt(ss.channelKey, resp)
}

// serveMeta produces the REQUEST_META payload and accounts the release.
func (ss *Session) serveMeta() []byte {
	ss.entry.metaServed.Add(1)
	ss.srv.opt.metrics.Counter("server.meta_served.mr_" + ss.entry.Label()).Inc()
	return ss.entry.Meta.Marshal()
}

// serveData produces the REQUEST_DATA payload and accounts the release.
func (ss *Session) serveData() ([]byte, error) {
	if ss.entry.SecretPlain == nil {
		return nil, fmt.Errorf("elide server: no remote data (local-data deployment)")
	}
	ss.entry.dataServed.Add(1)
	ss.srv.opt.metrics.Counter("server.data_served.mr_" + ss.entry.Label()).Inc()
	return ss.entry.SecretPlain, nil
}

// bundleReply assembles a ProtoV1 attestation reply: the channel public
// key followed by the encrypted channel responses the client asked for
// (see parseAttestReply for the layout). The responses are the exact
// bytes a sequential REQUEST_META / REQUEST_DATA exchange would have
// produced — GCM framing on this channel does not depend on the request's
// IV, so precomputing them at attest time is sound, and the enclave
// cannot tell the difference. Serving work is charged against the
// enclave's in-flight cap like any channel request.
func (ss *Session) bundleReply(pub []byte, want byte) (out []byte, err error) {
	s := ss.srv
	release, oerr := s.admitInflight(ss.entry)
	if oerr != nil {
		ss.auditShed(oerr, "in-flight limit (bundle)")
		return nil, oerr
	}
	defer release()
	defer s.opt.metrics.Observe("server.bundle_ns", time.Now())
	span := ss.span.Child("bundle")
	defer func() {
		span.SetError(err)
		span.End()
	}()
	span.SetStr("mrenclave", ss.entry.Label())

	var encMeta, encData []byte
	if want&bundleMeta != 0 {
		msp := span.Child("request_meta")
		msp.SetStr("source", "bundle")
		encMeta, err = sealEncrypt(ss.channelKey, ss.serveMeta())
		msp.SetError(err)
		msp.End()
		if err != nil {
			return nil, err
		}
	}
	// Data is bundled only when this deployment serves remote data; a
	// local-data deployment's client falls back to its encrypted file, so
	// an empty slot is the correct answer, not an error.
	if want&bundleData != 0 && ss.entry.SecretPlain != nil {
		dsp := span.Child("request_data")
		dsp.SetStr("source", "bundle")
		var plain []byte
		plain, err = ss.serveData()
		if err == nil {
			dsp.SetInt("bytes", int64(len(plain)))
			encData, err = sealEncrypt(ss.channelKey, plain)
		}
		dsp.SetError(err)
		dsp.End()
		if err != nil {
			return nil, err
		}
	}
	ss.entry.bundles.Add(1)
	s.opt.metrics.Counter("server.bundles_served").Inc()
	s.opt.metrics.Counter("server.bundles_served.mr_" + ss.entry.Label()).Inc()

	out = make([]byte, 0, 1+32+8+len(encMeta)+len(encData))
	out = append(out, ProtoV1)
	out = append(out, pub...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(encMeta)))
	out = append(out, encMeta...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(encData)))
	out = append(out, encData...)
	return out, nil
}

// --- transport ---

// SecretChannel is how the untrusted runtime reaches the authentication
// server: either in-process (DirectClient) or over the wire (TCPClient,
// FailoverClient). It is the one interface the restore pipeline, the
// failover layer, and the bench harnesses program against, so pipelined
// (ProtoV1) and legacy clients are drop-in interchangeable.
//
// Attest runs the attestation handshake and returns the server's channel
// public key; Request performs one encrypted exchange on the attested
// channel; Close releases any transport resources (a no-op for
// in-process channels). Both calls respect context cancellation; wire
// implementations also apply their configured timeouts and retry policy.
type SecretChannel interface {
	Attest(ctx context.Context, q *sgx.Quote, clientPub []byte) ([]byte, error)
	Request(ctx context.Context, enc []byte) ([]byte, error)
	Close() error
}

// Client is the pre-SecretChannel client surface.
//
// Deprecated: use SecretChannel. Kept so older integrations that only
// implement Attest/Request still typecheck where a bare client is enough.
type Client interface {
	Attest(ctx context.Context, q *sgx.Quote, clientPub []byte) ([]byte, error)
	Request(ctx context.Context, enc []byte) ([]byte, error)
}

// DirectClient runs the server in-process (and is also what the benchmarks
// use, mirroring the paper's same-machine socket setup with negligible
// network latency).
type DirectClient struct {
	Session *Session
}

// Attest implements SecretChannel. When the server has a tracer, the
// first attest opens the session span — parented into the caller's trace
// when the context carries a span, mirroring what a wire handshake's
// TraceID/SpanID fields do for handleConn.
func (c *DirectClient) Attest(ctx context.Context, q *sgx.Quote, clientPub []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.Session.span == nil {
		caller := obs.SpanFromContext(ctx)
		c.Session.span = c.Session.srv.opt.tracer.StartRemote("session", caller.TraceID(), caller.ID())
		c.Session.span.SetStr("peer", "direct")
	}
	return c.Session.Attest(q, clientPub)
}

// Request implements SecretChannel.
func (c *DirectClient) Request(ctx context.Context, enc []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Session.Request(enc)
}

// Close implements SecretChannel; an in-process channel holds no
// transport state, but it does end the session span Attest opened.
func (c *DirectClient) Close() error {
	c.Session.span.End()
	return nil
}

// attestMsg is the wire form of the attestation handshake. Proto and
// Bundle are the ProtoV1 negotiation fields; gob drops fields the peer's
// struct lacks, so a legacy server simply never sees the offer and a
// legacy client's handshake decodes here with both zero. TraceID/SpanID
// are the trace-context capability: a tracing v1 client stamps its restore
// trace and current span so the server's session spans join the client's
// trace; both decode as zero from a legacy (or non-tracing) client, and a
// legacy server ignores them — tracing is then silently per-process, never
// an interop failure. The IDs are random tracer-local identifiers and
// carry no secret material across the boundary. Peer marks the handshake
// as a server-to-server replication link rather than a client session
// (peerLinkResume, see replication.go); like the other v1 fields it
// decodes as zero from legacy peers, and a legacy server that never sees
// it refuses the zero-value quote — exactly the back-off signal the
// dialer wants.
type attestMsg struct {
	Quote     *sgx.Quote
	ClientPub []byte
	TraceID   uint64  // caller's restore trace (0 = caller not tracing)
	SpanID    uint64  // caller's current span: parent for the server session span
	Proto     uint8   // highest wire version the client speaks (0 = legacy)
	Bundle    byte    // bundleMeta|bundleData: responses to pipeline into the reply
	Peer      uint8   // nonzero: replication-link handshake (peerLinkResume)
	_         [5]byte // explicit padding: boundary structs carry no implicit holes
}

// Serve accepts connections until ctx is cancelled or the listener fails.
// Each connection is one session: an attestation handshake followed by
// framed encrypted requests. Concurrency is bounded by WithMaxSessions;
// every read/write is bounded by WithIOTimeout; a panic in one session is
// contained to that connection.
//
// On cancellation Serve stops accepting, lets in-flight sessions finish
// their current exchange (up to WithDrainTimeout), then returns
// ErrServerClosed.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	// The gossip loop lives exactly as long as the first Serve: fleet
	// probing makes no sense before the server can answer probes back.
	if s.gsp != nil {
		s.gossipOnce.Do(func() { go s.gsp.run(ctx) })
	}
	// Unblock Accept when the context ends.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			_ = l.Close() // best effort: only purpose is unblocking Accept
		case <-stop:
		}
	}()

	sem := make(chan struct{}, s.opt.maxSessions)
	var wg sync.WaitGroup
	var connMu sync.Mutex
	active := make(map[net.Conn]struct{})

	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				// Graceful shutdown: drain in-flight sessions, then close
				// whatever is still running after the drain window.
				drained := make(chan struct{})
				go func() { wg.Wait(); close(drained) }()
				select {
				case <-drained:
				case <-time.After(s.opt.drain):
					connMu.Lock()
					for c := range active {
						_ = c.Close() // force-close past the drain deadline; conn state is moot
					}
					connMu.Unlock()
					wg.Wait()
				}
				return ErrServerClosed
			}
			wg.Wait()
			return err
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			_ = conn.Close() // shedding during shutdown; nothing to do on error
			continue         // next Accept fails; the shutdown path above runs
		}
		connMu.Lock()
		active[conn] = struct{}{}
		connMu.Unlock()
		wg.Add(1)
		s.opt.metrics.Counter("server.sessions").Inc()
		s.opt.metrics.Gauge("server.active_sessions").Inc()
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			defer s.opt.metrics.Gauge("server.active_sessions").Dec()
			defer func() {
				connMu.Lock()
				delete(active, conn)
				connMu.Unlock()
				_ = conn.Close() // session is over either way
			}()
			defer func() {
				if r := recover(); r != nil {
					// One poisoned session must not take the server down.
					s.opt.metrics.Counter("server.panics").Inc()
					writeErrorFrame(conn, fmt.Sprintf("internal error: %v", r))
				}
			}()
			s.handleConn(ctx, conn)
		}()
	}
}

// handleConn speaks the TCP protocol for one session: handshake (with a
// bundled reply when a ProtoV1 client asked for one), then a request
// loop. Errors are reported to the peer as status frames; an attestation
// failure closes the session, a bad request or an overload answer does
// not. All reads go through one buffered reader: a pipelined client may
// put its next frame on the wire behind the handshake, and the gob
// decoder's internal buffering must not swallow it.
func (s *Server) handleConn(ctx context.Context, conn net.Conn) (err error) {
	ss := s.NewSession()
	br := bufio.NewReader(conn)
	s.armDeadline(conn)
	var msg attestMsg
	if err := gob.NewDecoder(br).Decode(&msg); err != nil {
		return err
	}
	if msg.Peer != 0 {
		// Not a client session: a membership query is answered and done;
		// anything else is a fleet peer handed to the replication layer
		// before any session/trace machinery spins up.
		if msg.Peer == peerLinkMembers {
			return s.handleMembersQuery(conn)
		}
		return s.handlePeerConn(conn, br)
	}
	// The session span starts only after the handshake is decoded: a
	// tracing client's TraceID/SpanID parent it into the client's restore
	// trace, so the merged JSONL from both processes is one tree. A zero
	// TraceID (legacy or non-tracing peer) makes it a local root, exactly
	// the pre-trace-context behavior.
	ss.span = s.opt.tracer.StartRemote("session", msg.TraceID, msg.SpanID)
	ss.span.SetStr("peer", conn.RemoteAddr().String())
	defer func() {
		ss.span.SetError(err)
		ss.span.End()
	}()
	if s.opt.onHandshake != nil {
		s.opt.onHandshake(&msg)
	}
	// A v1 client zeroes Bundle only when replaying the handshake of an
	// established session on a fresh connection (fresh attests always ask
	// for the bundle), so this flags the resume-or-break case for auditing.
	ss.replay = msg.Proto >= ProtoV1 && msg.Bundle == 0
	pub, err := ss.Attest(msg.Quote, msg.ClientPub)
	if err != nil {
		s.armDeadline(conn)
		writeServerError(conn, err)
		return err
	}
	reply := pub
	if msg.Proto >= ProtoV1 && msg.Bundle != 0 {
		reply, err = ss.bundleReply(pub, msg.Bundle)
		if err != nil {
			s.armDeadline(conn)
			writeServerError(conn, err)
			return err
		}
	}
	s.armDeadline(conn)
	if err := writeResponse(conn, reply); err != nil {
		return err
	}
	var scratch []byte // request-frame buffer, reused across the loop
	for {
		s.armDeadline(conn)
		req, err := readFrameInto(br, scratch)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		scratch = req
		resp, err := ss.Request(req)
		s.armDeadline(conn)
		if err != nil {
			// A refusal (or overload answer) is an answer, not a transport
			// failure: report it and keep the session open.
			if werr := writeServerError(conn, err); werr != nil {
				return werr
			}
			continue
		}
		if err := writeResponse(conn, resp); err != nil {
			return err
		}
		// Drain semantics: a cancelled context does not cut the session
		// off here — a restore in flight may need further requests and the
		// closed listener means it could not reconnect. Stragglers are
		// bounded by Serve's drain window, which force-closes connections.
	}
}

// writeServerError reports err to the peer with the right frame type: an
// overload answer carries its retry-after hint, anything else is a plain
// refusal.
func writeServerError(w io.Writer, err error) error {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return writeOverloadFrame(w, oe.RetryAfter, oe.Msg)
	}
	return writeErrorFrame(w, err.Error())
}

// armDeadline (re)sets the per-connection I/O deadline. A SetDeadline
// failure means the connection is already dead; the very next read or
// write surfaces that as its own error, so there is nothing to add here.
func (s *Server) armDeadline(conn net.Conn) {
	if s.opt.ioTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(s.opt.ioTimeout))
	}
}
