package elide

import (
	"context"
	"crypto/sha256"
	"errors"
	"net"
	"testing"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// startTracedServer serves p's secrets over TCP with metrics and tracing
// and returns the address plus both registries.
func startTracedServer(t *testing.T, p *Protected, ca *sgx.CA) (string, *obs.Registry, *obs.Tracer) {
	t.Helper()
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	srv, err := p.NewServerFor(ca, WithServerMetrics(metrics), WithServerTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	l := listen(t)
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()
	t.Cleanup(func() {
		cancel()
		<-served
	})
	return l.Addr().String(), metrics, tracer
}

// TestPipelinedRestoreSingleFlight is the tentpole's end-to-end claim: a
// ProtoV1 client completes a full enclave restore in ONE network flight —
// the attest reply carries the encrypted metadata and data, and the two
// channel requests are served from the bundle without touching the wire.
// The span trees on both sides must still show the paper's protocol
// order: attest, then request_meta, then request_data.
func TestPipelinedRestoreSingleFlight(t *testing.T) {
	ca, h := env(t)
	tracer := obs.NewTracer(0)
	h.Tracer = tracer
	h.Metrics = obs.NewRegistry()
	p := buildApp(t, h, SanitizeOptions{})
	addr, serverMetrics, serverTracer := startTracedServer(t, p, ca)

	clientMetrics := obs.NewRegistry()
	opts := append(fastRetry(2),
		WithProtocolVersion(ProtoV1),
		WithClientMetrics(clientMetrics),
		WithClientTracer(tracer),
	)
	client := NewTCPClient(addr, opts...)
	defer client.Close()
	encl, rt, err := p.Launch(h, client, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	code, err := encl.ECall("elide_restore", 0)
	if err != nil || code != RestoreOKServer {
		t.Fatalf("restore = %d, %v (runtime: %v)", code, err, rt.Errs())
	}

	// One wire flight, both channel requests answered from the bundle.
	if got := clientMetrics.Counter("client.flights").Load(); got != 1 {
		t.Errorf("client.flights = %d, want 1", got)
	}
	if got := clientMetrics.Counter("client.bundle_hits").Load(); got != 2 {
		t.Errorf("client.bundle_hits = %d, want 2", got)
	}
	if got := clientMetrics.Counter("client.bundled_attests").Load(); got != 1 {
		t.Errorf("client.bundled_attests = %d, want 1", got)
	}
	if got := serverMetrics.Counter("server.bundles_served").Load(); got != 1 {
		t.Errorf("server.bundles_served = %d, want 1", got)
	}

	// Client-side protocol order is unchanged: attest strictly before
	// request_meta strictly before request_data, in one trace.
	recs := tracer.Completed()
	attest, ok1 := phaseRecord(recs, "attest")
	meta, ok2 := phaseRecord(recs, "request_meta")
	data, ok3 := phaseRecord(recs, "request_data")
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing protocol phase spans (attest=%v meta=%v data=%v)", ok1, ok2, ok3)
	}
	if attest.TraceID != meta.TraceID || meta.TraceID != data.TraceID {
		t.Error("protocol phases landed in different traces")
	}
	if !(attest.EndNS <= meta.StartNS && meta.EndNS <= data.StartNS) {
		t.Errorf("protocol phases out of order: attest[%d,%d] meta[%d,%d] data[%d,%d]",
			attest.StartNS, attest.EndNS, meta.StartNS, meta.EndNS, data.StartNS, data.EndNS)
	}

	// Server-side: the whole exchange is ONE session span whose children
	// are the attest and the bundle; the bundle nests request_meta and
	// request_data; no standalone per-request spans (nothing arrived on
	// the wire after the handshake). The session span ends when the
	// connection does, so close the client and wait for it to land.
	client.Close()
	var srecs []obs.SpanRecord
	var session obs.SpanRecord
	var ok bool
	deadline := time.Now().Add(5 * time.Second)
	for {
		srecs = serverTracer.Completed()
		if session, ok = phaseRecord(srecs, "session"); ok || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !ok {
		t.Fatal("no server session span")
	}
	children := map[string]obs.SpanRecord{}
	for _, r := range srecs {
		if r.TraceID == session.TraceID && r.Name != "session" {
			children[r.Name] = r
		}
	}
	bundle, ok := children["bundle"]
	if !ok {
		t.Fatal("no bundle span under the session")
	}
	for _, name := range []string{"request_meta", "request_data"} {
		r, ok := children[name]
		if !ok {
			t.Fatalf("no %s span under the session trace", name)
		}
		if r.ParentID != bundle.SpanID {
			t.Errorf("%s span parent is %d, want the bundle span %d", name, r.ParentID, bundle.SpanID)
		}
	}
	if _, ok := children["request"]; ok {
		t.Error("server recorded a wire request span; pipelined restore should not send any")
	}
}

// TestPipelineFallbackLegacyServer: a ProtoV1 client offers the bundle to
// a scripted server that answers with the legacy bare-pubkey reply. The
// client must fall back transparently — no bundle cache, sequential
// requests on the wire — and the restore-protocol requests still work.
func TestPipelineFallbackLegacyServer(t *testing.T) {
	l := listen(t)
	serveWire(t, l, func(i int, conn net.Conn) {
		msg, err := decodeHandshake(conn)
		if err != nil {
			return
		}
		// A v1 client must still OFFER the bundle (that is the
		// negotiation), even though this server ignores it.
		if msg.Proto < ProtoV1 || msg.Bundle == 0 {
			t.Errorf("client offered proto=%d bundle=%d, want v1 with bundle bits", msg.Proto, msg.Bundle)
		}
		priv, pub, err := sdk.GenerateECDHKeypair()
		if err != nil {
			t.Error(err)
			return
		}
		key, err := sdk.DeriveChannelKey(priv, msg.ClientPub)
		if err != nil {
			t.Error(err)
			return
		}
		if err := writeResponse(conn, pub); err != nil { // bare 32 bytes: legacy
			return
		}
		for {
			req, err := readFrame(conn)
			if err != nil {
				return
			}
			plain, err := sealDecrypt(key, req)
			if err != nil || len(plain) != 1 {
				t.Errorf("legacy server could not decrypt request: %v", err)
				return
			}
			resp, err := sealEncrypt(key, []byte{plain[0] + 100})
			if err != nil {
				t.Error(err)
				return
			}
			if err := writeResponse(conn, resp); err != nil {
				return
			}
		}
	})

	metrics := obs.NewRegistry()
	opts := append(fastRetry(2), WithProtocolVersion(ProtoV1), WithClientMetrics(metrics))
	client := NewTCPClient(l.Addr().String(), opts...)
	defer client.Close()

	priv, pub, err := sdk.GenerateECDHKeypair()
	if err != nil {
		t.Fatal(err)
	}
	spub, err := client.Attest(context.Background(), &sgx.Quote{}, pub)
	if err != nil {
		t.Fatalf("attest against legacy server: %v", err)
	}
	key, err := sdk.DeriveChannelKey(priv, spub)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range []byte{RequestMeta, RequestData} {
		enc, err := sealEncrypt(key, []byte{req})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Request(context.Background(), enc)
		if err != nil {
			t.Fatalf("request %d against legacy server: %v", req, err)
		}
		plain, err := sealDecrypt(key, resp)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != 1 || plain[0] != req+100 {
			t.Errorf("request %d: got %v, want [%d]", req, plain, req+100)
		}
	}
	if got := metrics.Counter("client.bundle_hits").Load(); got != 0 {
		t.Errorf("client.bundle_hits = %d against a legacy server, want 0", got)
	}
	if got := metrics.Counter("client.bundled_attests").Load(); got != 0 {
		t.Errorf("client.bundled_attests = %d against a legacy server, want 0", got)
	}
	// One flight for the attest, one per request: the sequential protocol.
	if got := metrics.Counter("client.flights").Load(); got != 3 {
		t.Errorf("client.flights = %d, want 3 (sequential fallback)", got)
	}
}

// TestLegacyClientAgainstV1Server: the other negotiation direction — a
// legacy client (no protocol option) against the current server performs
// the classic three-flight protocol and is never handed a bundle.
func TestLegacyClientAgainstV1Server(t *testing.T) {
	ca, h := env(t)
	h.Metrics = obs.NewRegistry()
	p := buildApp(t, h, SanitizeOptions{})
	addr, serverMetrics, _ := startTracedServer(t, p, ca)

	clientMetrics := obs.NewRegistry()
	client := NewTCPClient(addr, append(fastRetry(2), WithClientMetrics(clientMetrics))...)
	defer client.Close()
	encl, rt, err := p.Launch(h, client, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	code, err := encl.ECall("elide_restore", 0)
	if err != nil || code != RestoreOKServer {
		t.Fatalf("restore = %d, %v (runtime: %v)", code, err, rt.Errs())
	}
	if got := serverMetrics.Counter("server.bundles_served").Load(); got != 0 {
		t.Errorf("server.bundles_served = %d for a legacy client, want 0", got)
	}
	if got := clientMetrics.Counter("client.flights").Load(); got != 3 {
		t.Errorf("client.flights = %d, want 3", got)
	}
	if got := serverMetrics.Counter("server.requests").Load(); got < 2 {
		t.Errorf("server.requests = %d, want >= 2 (wire requests)", got)
	}
}

// loadQuoteOnly loads p's sanitized enclave just far enough to mint
// platform-signed quotes for its measurement.
func loadQuoteOnly(t *testing.T, h *sdk.Host, p *Protected) *sdk.Enclave {
	t.Helper()
	rt := &Runtime{Client: deadClient{}, Files: &FileStore{}}
	rt.Install(h)
	encl, err := h.CreateEnclave(p.SanitizedELF, p.SigStruct, p.EDL)
	if err != nil {
		t.Fatal(err)
	}
	return encl
}

// freshQuote mints a quote for encl binding a fresh ECDH keypair.
func freshQuote(t *testing.T, h *sdk.Host, encl *sdk.Enclave) (*sgx.Quote, []byte) {
	t.Helper()
	_, pub, err := sdk.GenerateECDHKeypair()
	if err != nil {
		t.Fatal(err)
	}
	var rdata [sgx.ReportDataSize]byte
	binding := sha256.Sum256(pub)
	copy(rdata[:], binding[:])
	report, err := h.Platform.EReport(encl.Encl, sgx.QETargetInfo(), rdata)
	if err != nil {
		t.Fatal(err)
	}
	quote, err := h.Platform.QuoteReport(report)
	if err != nil {
		t.Fatal(err)
	}
	return quote, pub
}

// TestOverloadIsolation: per-enclave QoS is PER ENCLAVE — hammering one
// enclave's attest rate limit sheds that enclave's clients with a typed
// ErrOverloaded (carrying a retry-after hint over the wire) while another
// enclave registered on the same server attests untouched.
func TestOverloadIsolation(t *testing.T) {
	ca, h := env(t)
	pA := buildApp(t, h, SanitizeOptions{})
	pB := buildApp2(t, h, SanitizeOptions{})
	enclA := loadQuoteOnly(t, h, pA)
	enclB := loadQuoteOnly(t, h, pB)

	store := NewSecretStore()
	registerProtected(t, store, pA, "app-a")
	registerProtected(t, store, pB, "app-b")
	metrics := obs.NewRegistry()
	srv, err := NewMultiServer(ca.PublicKey(), store,
		WithServerMetrics(metrics),
		WithEnclaveRateLimit(0.001, 2), // 2 attests of burst, then ~nothing
	)
	if err != nil {
		t.Fatal(err)
	}
	l := listen(t)
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()
	defer func() {
		cancel()
		<-served
	}()

	attest := func(encl *sdk.Enclave) error {
		quote, pub := freshQuote(t, h, encl)
		client := NewTCPClient(l.Addr().String(), fastRetry(1)...)
		defer client.Close()
		_, err := client.Attest(context.Background(), quote, pub)
		return err
	}

	// Burn enclave A's burst, then its next fresh attest must shed.
	var overloadErr error
	for i := 0; i < 4; i++ {
		if err := attest(enclA); err != nil {
			overloadErr = err
			break
		}
	}
	if overloadErr == nil {
		t.Fatal("enclave A was never rate limited")
	}
	if !errors.Is(overloadErr, ErrOverloaded) {
		t.Fatalf("rate-limited attest returned %v, want ErrOverloaded", overloadErr)
	}
	var oe *OverloadedError
	if !errors.As(overloadErr, &oe) {
		t.Fatalf("overload error lost its type over the wire: %v", overloadErr)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("overload retry-after hint = %v, want > 0", oe.RetryAfter)
	}

	// Enclave B shares the server but not the bucket.
	if err := attest(enclB); err != nil {
		t.Fatalf("enclave B was shed by enclave A's rate limit: %v", err)
	}
	if got := metrics.Counter("server.overload.rate_limited").Load(); got == 0 {
		t.Error("server.overload.rate_limited counter never moved")
	}
	if got := metrics.Counter("server.overload.rate_limited.mr_app-b").Load(); got != 0 {
		t.Errorf("enclave B recorded %d rate-limit sheds, want 0", got)
	}
}

// TestInflightLimitSheds drives the in-flight semaphore directly: with a
// cap of 1, a second concurrent channel request against the same enclave
// is shed with a typed overload, and the release function restores the
// slot.
func TestInflightLimitSheds(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	metrics := obs.NewRegistry()
	srv, err := p.NewServerFor(ca, WithServerMetrics(metrics), WithEnclaveInflightLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := srv.Store().Lookup(p.Measurement)
	if !ok {
		t.Fatal("deployment entry missing")
	}
	release1, err := srv.admitInflight(entry)
	if err != nil {
		t.Fatalf("first in-flight request shed: %v", err)
	}
	if _, err := srv.admitInflight(entry); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second concurrent request: got %v, want ErrOverloaded", err)
	}
	release1()
	release2, err := srv.admitInflight(entry)
	if err != nil {
		t.Fatalf("request after release shed: %v", err)
	}
	release2()
	if got := metrics.Counter("server.overload.inflight").Load(); got != 1 {
		t.Errorf("server.overload.inflight = %d, want 1", got)
	}
	if got := metrics.Gauge("server.inflight.mr_" + entry.Label()).Load(); got != 0 {
		t.Errorf("in-flight gauge = %d after releases, want 0", got)
	}
}

// TestFailoverSurfacesTypedOverload: when EVERY replica sheds, the
// failover pool must surface the typed overload (so RestoreResilient
// classifies the run retryable and backs off) rather than flattening it
// into a generic unavailable error — and the shedding endpoints must be
// counted, not circuit-broken, because an overloaded server is healthy.
func TestFailoverSurfacesTypedOverload(t *testing.T) {
	shedding := func() net.Listener {
		l := listen(t)
		serveWire(t, l, func(i int, conn net.Conn) {
			if _, err := decodeHandshake(conn); err != nil {
				return
			}
			writeOverloadFrame(conn, 2*time.Millisecond, "all replicas busy")
		})
		return l
	}
	l0, l1 := shedding(), shedding()
	metrics := obs.NewRegistry()
	fc, err := NewFailoverClient([]string{l0.Addr().String(), l1.Addr().String()},
		WithFailoverMetrics(metrics),
		WithEndpointClientOptions(fastRetry(1)...),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	_, pub, err := sdk.GenerateECDHKeypair()
	if err != nil {
		t.Fatal(err)
	}
	_, aerr := fc.Attest(context.Background(), &sgx.Quote{}, pub)
	if !errors.Is(aerr, ErrOverloaded) {
		t.Fatalf("pool-wide shed returned %v, want ErrOverloaded", aerr)
	}
	var oe *OverloadedError
	if !errors.As(aerr, &oe) {
		t.Fatalf("failover flattened the overload type: %v", aerr)
	}
	if got := metrics.Counter("failover.overloaded").Load(); got < 2 {
		t.Errorf("failover.overloaded = %d, want >= 2 (both replicas shed)", got)
	}
}

// TestOverloadDelaysRetry: the transport retry loop must treat an
// overload answer as "come back after the hint", not as a transient to
// hammer: with a budget of 2 and a shedding-then-healthy scripted server,
// the client succeeds on the second try and the overload is counted.
func TestOverloadDelaysRetry(t *testing.T) {
	l := listen(t)
	serveWire(t, l, func(i int, conn net.Conn) {
		if _, err := decodeHandshake(conn); err != nil {
			return
		}
		if i == 0 {
			writeOverloadFrame(conn, 5*time.Millisecond, "attest rate limit")
			return
		}
		_, pub, err := sdk.GenerateECDHKeypair()
		if err != nil {
			t.Error(err)
			return
		}
		writeResponse(conn, pub)
	})
	metrics := obs.NewRegistry()
	client := NewTCPClient(l.Addr().String(), append(fastRetry(2), WithClientMetrics(metrics))...)
	defer client.Close()
	_, pub, err := sdk.GenerateECDHKeypair()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := client.Attest(context.Background(), &sgx.Quote{}, pub); err != nil {
		t.Fatalf("attest after overload retry: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("retry after %v, want >= the server's 5ms retry-after hint", elapsed)
	}
	if got := metrics.Counter("client.attest_overloaded").Load(); got != 1 {
		t.Errorf("client.attest_overloaded = %d, want 1", got)
	}
}
