package elide

import (
	"context"
	"crypto/ecdsa"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sgxelide/internal/obs"
)

// SecretEntry is one registered sanitized-enclave identity and the secrets
// released to it: the metadata blob (with the local-data key when the
// sanitizer encrypted the data) and, in remote-data mode, the plaintext
// secret bytes. Entries are immutable once registered — a re-registration
// replaces the entry wholesale (carrying the counters over), so sessions
// holding a resolved entry keep a consistent snapshot.
type SecretEntry struct {
	MrEnclave   [32]byte
	Meta        *SecretMeta
	SecretPlain []byte // nil in local-data mode
	Name        string // deployment name (directory-loaded entries: the subdir)

	label string // short hex measurement prefix used in metric names and spans
	dir   string // source subdir name when loaded by LoadDir ("" = manual)

	// Per-enclave release counters, written by sessions on the hot path.
	attests    atomic.Uint64
	metaServed atomic.Uint64
	dataServed atomic.Uint64
	bundles    atomic.Uint64 // ProtoV1 bundled attest replies served
}

// Label returns the short hex measurement prefix identifying this entry in
// metric names and trace attributes.
func (e *SecretEntry) Label() string { return e.label }

// EntryStats is a point-in-time view of one entry's release counters.
type EntryStats struct {
	Attests    uint64 `json:"attests"`
	MetaServed uint64 `json:"meta_served"`
	DataServed uint64 `json:"data_served"`
	Bundles    uint64 `json:"bundles"` // pipelined (single-flight) restores served
}

// Stats snapshots the entry's counters.
func (e *SecretEntry) Stats() EntryStats {
	return EntryStats{
		Attests:    e.attests.Load(),
		MetaServed: e.metaServed.Load(),
		DataServed: e.dataServed.Load(),
		Bundles:    e.bundles.Load(),
	}
}

// storeShards is the shard count of a SecretStore (power of two). The
// measurement's first byte picks the shard; MRENCLAVE values are hash
// outputs, so the distribution is uniform.
const storeShards = 16

type storeShard struct {
	mu      sync.RWMutex
	entries map[[32]byte]*SecretEntry
}

// SecretStore is a concurrent, sharded map from enclave measurement to the
// secrets released to that identity. One store backs one authentication
// server, letting a single process serve any number of distinct sanitized
// enclave builds: Session.Attest resolves the entry from the attested
// quote's MRENCLAVE, and Session.Request serves only that entry.
//
// Entries can be registered and removed at runtime; LoadDir/Watch keep the
// store in sync with an on-disk directory of WriteServerFiles deployments
// without a server restart.
type SecretStore struct {
	shards [storeShards]storeShard

	// Directory-loading bookkeeping: the CA pinned by the first loaded
	// deployment (all deployments must agree) guards against accidentally
	// mixing attestation roots in one serving process.
	dirMu   sync.Mutex
	caPub   *ecdsa.PublicKey
	scanErr error         // outcome of the most recent LoadDir pass
	audit   *obs.AuditLog // optional: rescan failures become audit events
}

// NewSecretStore returns an empty store.
func NewSecretStore() *SecretStore {
	st := &SecretStore{}
	for i := range st.shards {
		st.shards[i].entries = make(map[[32]byte]*SecretEntry)
	}
	return st
}

func (st *SecretStore) shard(mr [32]byte) *storeShard {
	return &st.shards[mr[0]&(storeShards-1)]
}

// validateSecrets checks the (meta, plain) pair the same way NewServer
// always validated its ServerConfig.
func validateSecrets(meta *SecretMeta, plain []byte) error {
	if meta == nil {
		return fmt.Errorf("elide: server needs the secret metadata")
	}
	if !meta.Encrypted && plain == nil {
		return fmt.Errorf("elide: remote-data mode needs the plaintext secret data")
	}
	if meta.Hybrid && plain == nil {
		return fmt.Errorf("elide: hybrid mode needs the plaintext secret data on the server")
	}
	return nil
}

// Register adds (or replaces) the entry for mr. On replacement the release
// counters carry over; sessions that already resolved the old entry keep
// serving its snapshot until they end. Returns the registered entry.
func (st *SecretStore) Register(mr [32]byte, meta *SecretMeta, plain []byte, name string) (*SecretEntry, error) {
	return st.register(mr, meta, plain, name, "")
}

func (st *SecretStore) register(mr [32]byte, meta *SecretMeta, plain []byte, name, dir string) (*SecretEntry, error) {
	if err := validateSecrets(meta, plain); err != nil {
		return nil, err
	}
	e := &SecretEntry{
		MrEnclave:   mr,
		Meta:        meta,
		SecretPlain: plain,
		Name:        name,
		label:       hex.EncodeToString(mr[:4]),
		dir:         dir,
	}
	sh := st.shard(mr)
	sh.mu.Lock()
	if old, ok := sh.entries[mr]; ok {
		e.attests.Store(old.attests.Load())
		e.metaServed.Store(old.metaServed.Load())
		e.dataServed.Store(old.dataServed.Load())
		e.bundles.Store(old.bundles.Load())
	}
	sh.entries[mr] = e
	sh.mu.Unlock()
	return e, nil
}

// Remove deletes the entry for mr, reporting whether it existed. In-flight
// sessions that already resolved the entry finish with it; new attestations
// for mr are refused.
func (st *SecretStore) Remove(mr [32]byte) bool {
	sh := st.shard(mr)
	sh.mu.Lock()
	_, ok := sh.entries[mr]
	delete(sh.entries, mr)
	sh.mu.Unlock()
	return ok
}

// Lookup resolves the entry for an attested measurement.
func (st *SecretStore) Lookup(mr [32]byte) (*SecretEntry, bool) {
	sh := st.shard(mr)
	sh.mu.RLock()
	e, ok := sh.entries[mr]
	sh.mu.RUnlock()
	return e, ok
}

// Len counts registered entries.
func (st *SecretStore) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// Entries snapshots all registered entries, sorted by measurement for
// deterministic listings.
func (st *SecretStore) Entries() []*SecretEntry {
	var out []*SecretEntry
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			out = append(out, e)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i].MrEnclave[:]) < string(out[j].MrEnclave[:])
	})
	return out
}

// SetAuditLog wires rescan failures into an audit log: every deployment a
// LoadDir pass could not load (or a whole unreadable directory) becomes a
// store_rescan_failed event.
func (st *SecretStore) SetAuditLog(a *obs.AuditLog) {
	st.dirMu.Lock()
	st.audit = a
	st.dirMu.Unlock()
}

// HealthCheck reports the store degraded while its most recent directory
// scan failed (wholly or for individual deployments). A store that never
// dir-loads is always healthy.
func (st *SecretStore) HealthCheck() error {
	st.dirMu.Lock()
	defer st.dirMu.Unlock()
	return st.scanErr
}

// recordScan captures a pass's outcome for HealthCheck and the audit
// stream.
func (st *SecretStore) recordScan(rep DirReport, err error) {
	st.dirMu.Lock()
	audit := st.audit
	switch {
	case err != nil:
		st.scanErr = fmt.Errorf("secrets-dir scan failed: %w", err)
	case len(rep.Failed) > 0:
		names := make([]string, 0, len(rep.Failed))
		for n := range rep.Failed {
			names = append(names, n)
		}
		sort.Strings(names)
		st.scanErr = fmt.Errorf("secrets-dir deployments failed to load: %v", names)
	default:
		st.scanErr = nil
	}
	st.dirMu.Unlock()
	if audit == nil {
		return
	}
	if err != nil {
		audit.Emit(obs.AuditEvent{Type: obs.AuditStoreRescanFailed, Detail: err.Error()})
		return
	}
	for name, ferr := range rep.Failed {
		audit.Emit(obs.AuditEvent{Type: obs.AuditStoreRescanFailed, Detail: name + ": " + ferr.Error()})
	}
}

// CA returns the attestation CA pinned by directory loading (nil until the
// first successful LoadDir).
func (st *SecretStore) CA() *ecdsa.PublicKey {
	st.dirMu.Lock()
	defer st.dirMu.Unlock()
	return st.caPub
}

// DirReport summarizes one LoadDir pass over a deployments directory.
type DirReport struct {
	Added   int // deployments registered for the first time
	Updated int // deployments whose measurement or secrets changed
	Removed int // directory-loaded entries whose subdir disappeared
	Failed  map[string]error
}

// Changed reports whether the pass modified the store.
func (r DirReport) Changed() bool { return r.Added+r.Updated+r.Removed > 0 }

func (r DirReport) String() string {
	s := fmt.Sprintf("added %d, updated %d, removed %d", r.Added, r.Updated, r.Removed)
	if len(r.Failed) > 0 {
		names := make([]string, 0, len(r.Failed))
		for n := range r.Failed {
			names = append(names, n)
		}
		sort.Strings(names)
		s += fmt.Sprintf(", failed %v", names)
	}
	return s
}

// LoadDir synchronizes the store with a deployments directory: every
// immediate subdirectory holding an enclave.mrenclave file is one
// deployment in the WriteServerFiles layout. New deployments are
// registered, changed ones replaced, and directory-loaded entries whose
// subdir vanished are removed (manually Registered entries are never
// touched). All deployments must pin the same attestation CA; the first
// one loaded pins it for the store's lifetime, and a mismatching
// deployment is reported in Failed and skipped.
func (st *SecretStore) LoadDir(dir string) (DirReport, error) {
	rep := DirReport{Failed: map[string]error{}}
	des, err := os.ReadDir(dir)
	if err != nil {
		st.recordScan(rep, err)
		return rep, err
	}
	seen := map[string][32]byte{} // subdir name -> measurement this pass
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		name := de.Name()
		sub := filepath.Join(dir, name)
		if _, err := os.Stat(filepath.Join(sub, FileMeasurement)); err != nil {
			continue // not a deployment subdir
		}
		cfg, err := LoadServerConfig(sub)
		if err != nil {
			rep.Failed[name] = err
			continue
		}
		if err := st.pinCA(cfg.CAPub); err != nil {
			rep.Failed[name] = err
			continue
		}
		seen[name] = cfg.ExpectedMrEnclave
		old, existed := st.Lookup(cfg.ExpectedMrEnclave)
		if existed && old.dir == name && sameSecrets(old, cfg) {
			continue // unchanged
		}
		if _, err := st.register(cfg.ExpectedMrEnclave, cfg.Meta, cfg.SecretPlain, name, name); err != nil {
			rep.Failed[name] = err
			continue
		}
		if existed {
			rep.Updated++
		} else {
			rep.Added++
		}
	}
	// Drop directory-loaded entries whose subdir is gone or now carries a
	// different measurement (a redeploy under the same name).
	for _, e := range st.Entries() {
		if e.dir == "" {
			continue
		}
		//elide:vet-ignore constanttime rescan compares two store-owned public measurements, no attacker-supplied guess
		if mr, ok := seen[e.dir]; !ok || mr != e.MrEnclave {
			if st.Remove(e.MrEnclave) {
				rep.Removed++
			}
		}
	}
	st.recordScan(rep, nil)
	return rep, nil
}

// pinCA pins the first attestation CA seen and rejects later mismatches.
func (st *SecretStore) pinCA(pub *ecdsa.PublicKey) error {
	st.dirMu.Lock()
	defer st.dirMu.Unlock()
	if st.caPub == nil {
		st.caPub = pub
		return nil
	}
	if !st.caPub.Equal(pub) {
		return fmt.Errorf("elide: deployment pins a different attestation CA than the store")
	}
	return nil
}

// sameSecrets reports whether a loaded config matches the registered entry
// byte for byte (so an unchanged deployment is not churned on every scan).
// Both blobs carry key material, so the comparison is constant time.
func sameSecrets(e *SecretEntry, cfg ServerConfig) bool {
	return subtle.ConstantTimeCompare(e.Meta.Marshal(), cfg.Meta.Marshal()) == 1 &&
		subtle.ConstantTimeCompare(e.SecretPlain, cfg.SecretPlain) == 1
}

// Watch rescans dir every interval until ctx ends, so deployments added,
// changed, or removed on disk are picked up without a server restart.
// onChange, when non-nil, runs after every pass that modified the store;
// scan errors are reported through it as a report with Failed[dir] set.
func (st *SecretStore) Watch(ctx context.Context, dir string, interval time.Duration, onChange func(DirReport)) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rep, err := st.LoadDir(dir)
			if err != nil {
				if rep.Failed == nil {
					rep.Failed = map[string]error{}
				}
				rep.Failed[dir] = err
			}
			if onChange != nil && (rep.Changed() || len(rep.Failed) > 0) {
				onChange(rep)
			}
		}
	}
}
