package elide

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors of the authentication-server transport. All errors the
// transport returns match one of these with errors.Is, so callers can
// distinguish "the server said no" (give up) from "the server is
// unreachable" (maybe later) without string matching.
var (
	// ErrRefused: the server processed the message and refused it
	// (attestation failure, unknown request, ...). Never retried.
	ErrRefused = errors.New("elide: server refused")

	// ErrNotAttested: a Request was issued on a session whose attestation
	// has not succeeded.
	ErrNotAttested = errors.New("elide: request before attestation")

	// ErrFrameTooLarge: a frame exceeded MaxFrame on either side.
	ErrFrameTooLarge = errors.New("elide: frame exceeds maximum size")

	// ErrServerUnavailable: the client exhausted its retry budget on
	// transient (connection-level) failures.
	ErrServerUnavailable = errors.New("elide: authentication server unavailable")

	// ErrServerClosed: Serve returned because its context was cancelled;
	// in-flight sessions were drained first.
	ErrServerClosed = errors.New("elide: server closed")
)

// RefusedError carries the server's reason alongside the ErrRefused
// identity: errors.Is(err, ErrRefused) is true for every RefusedError.
type RefusedError struct {
	Msg string // the server's error frame message
}

func (e *RefusedError) Error() string {
	if e.Msg == "" {
		return ErrRefused.Error()
	}
	return "elide: server refused: " + e.Msg
}

// Is makes errors.Is(err, ErrRefused) match.
func (e *RefusedError) Is(target error) bool { return target == ErrRefused }

// unavailableError wraps the last transient failure once the retry budget
// is spent, matching ErrServerUnavailable.
type unavailableError struct {
	attempts int
	last     error
}

func (e *unavailableError) Error() string {
	return fmt.Sprintf("elide: authentication server unavailable after %d attempts: %v", e.attempts, e.last)
}

func (e *unavailableError) Is(target error) bool { return target == ErrServerUnavailable }

func (e *unavailableError) Unwrap() error { return e.last }

// isTransient reports whether an error is worth a reconnect-and-retry:
// connection-level failures, timeouts, and torn frames — but never a
// server refusal, a protocol-state error, or a cancelled context.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrRefused) || errors.Is(err, ErrNotAttested) || errors.Is(err, ErrFrameTooLarge) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Everything else on the TCP path — dial errors, resets, EOF from a
	// dropped connection, i/o timeouts, short frames, torn gob streams —
	// is transient: the handshake replay is idempotent (the server resumes
	// the session), so a reconnect can only help.
	return true
}
