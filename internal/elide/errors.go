package elide

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Sentinel errors of the authentication-server transport. All errors the
// transport returns match one of these with errors.Is, so callers can
// distinguish "the server said no" (give up) from "the server is
// unreachable" (maybe later) without string matching.
var (
	// ErrRefused: the server processed the message and refused it
	// (attestation failure, unknown request, ...). Never retried.
	ErrRefused = errors.New("elide: server refused")

	// ErrNotAttested: a Request was issued on a session whose attestation
	// has not succeeded.
	ErrNotAttested = errors.New("elide: request before attestation")

	// ErrFrameTooLarge: a frame exceeded MaxFrame on either side.
	ErrFrameTooLarge = errors.New("elide: frame exceeds maximum size")

	// ErrServerUnavailable: the client exhausted its retry budget on
	// transient (connection-level) failures.
	ErrServerUnavailable = errors.New("elide: authentication server unavailable")

	// ErrServerClosed: Serve returned because its context was cancelled;
	// in-flight sessions were drained first.
	ErrServerClosed = errors.New("elide: server closed")

	// ErrSealedCorrupt: the sealed blob exists but failed its GCM MAC (or
	// was truncated / produced a torn text). Reported by the trusted
	// restorer through the runtime's error ring; the restore falls back to
	// the network and re-seals a fresh blob.
	ErrSealedCorrupt = errors.New("elide: sealed secret blob is corrupt")

	// ErrTornRestore: the post-restore text digest did not match the
	// metadata's digest. The enclave returned RestoreErrTorn and did not
	// mark itself restored.
	ErrTornRestore = errors.New("elide: restored text failed digest verification")

	// ErrRemoteDataUnavailable: a hybrid deployment could not fetch the
	// secret data remotely and degraded to the encrypted local file.
	ErrRemoteDataUnavailable = errors.New("elide: remote data unavailable, degraded to local file")

	// ErrSessionLost: a failover switched endpoints mid-protocol and the
	// replacement server established a *different* channel key, so the
	// enclave's in-flight session cannot continue. Retryable at the
	// restore level (a fresh elide_restore re-attests from scratch), but
	// terminal for the current protocol run.
	ErrSessionLost = errors.New("elide: attested session lost on endpoint failover")

	// ErrRestoreFailed: a resilient restore exhausted its strategy chain.
	// Always carried by a *RestoreFailure with the enclave code and the
	// last transport error.
	ErrRestoreFailed = errors.New("elide: restore failed")

	// ErrOverloaded: the server shed the operation under per-enclave
	// backpressure (token-bucket rate limit or in-flight cap). Unlike
	// ErrRefused this is not a verdict on the request — the server is
	// healthy and the same request succeeds once pressure drops — and
	// unlike ErrServerUnavailable the server answered. Always carried by
	// an *OverloadedError with the server's retry-after hint.
	ErrOverloaded = errors.New("elide: server overloaded")
)

// RefusedError carries the server's reason alongside the ErrRefused
// identity: errors.Is(err, ErrRefused) is true for every RefusedError.
type RefusedError struct {
	Msg string // the server's error frame message
}

func (e *RefusedError) Error() string {
	if e.Msg == "" {
		return ErrRefused.Error()
	}
	return "elide: server refused: " + e.Msg
}

// Is makes errors.Is(err, ErrRefused) match.
func (e *RefusedError) Is(target error) bool { return target == ErrRefused }

// OverloadedError is the server's backpressure signal, carried in a
// statusOverloaded frame: the enclave it throttled and how long the
// client should wait before trying again. errors.Is(err, ErrOverloaded)
// is true for every OverloadedError, including after wrapping by the
// retry and failover layers.
type OverloadedError struct {
	RetryAfter time.Duration // server's hint; zero means "use your own backoff"
	Msg        string        // server's reason ("attest rate limit for enclave ...")
}

func (e *OverloadedError) Error() string {
	s := "elide: server overloaded"
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.RetryAfter > 0 {
		s += fmt.Sprintf(" (retry after %v)", e.RetryAfter)
	}
	return s
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// unavailableError wraps the last transient failure once the retry budget
// is spent, matching ErrServerUnavailable.
type unavailableError struct {
	attempts int
	last     error
}

func (e *unavailableError) Error() string {
	return fmt.Sprintf("elide: authentication server unavailable after %d attempts: %v", e.attempts, e.last)
}

func (e *unavailableError) Is(target error) bool { return target == ErrServerUnavailable }

func (e *unavailableError) Unwrap() error { return e.last }

// PhaseError tags an error recorded by the runtime with the protocol
// phase it occurred in ("attest", "request_meta", "request_data"), so the
// restore-level degradation chain can tell a terminal attest refusal
// (wrong identity — retrying cannot help) from a channel refusal (usually
// a stale session after a failover — a fresh protocol run can succeed).
type PhaseError struct {
	Phase string
	Err   error
}

func (e *PhaseError) Error() string { return "elide: " + e.Phase + ": " + e.Err.Error() }

func (e *PhaseError) Unwrap() error { return e.Err }

// isTransient reports whether an error is worth a reconnect-and-retry:
// connection-level failures, timeouts, and torn frames — but never a
// server refusal, a protocol-state error, or a cancelled context.
func isTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrRefused) || errors.Is(err, ErrNotAttested) || errors.Is(err, ErrFrameTooLarge) {
		return false
	}
	// Overload is not transient in the reconnect sense: the server answered,
	// and hammering it again immediately is exactly what it asked us not to
	// do. The retry and failover layers special-case it (honoring the
	// retry-after hint, trying another replica) before consulting this.
	if errors.Is(err, ErrOverloaded) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Everything else on the TCP path — dial errors, resets, EOF from a
	// dropped connection, i/o timeouts, short frames, torn gob streams —
	// is transient: the handshake replay is idempotent (the server resumes
	// the session), so a reconnect can only help.
	return true
}
