package elide

import (
	"strings"
	"testing"

	"sgxelide/internal/evm"
	"sgxelide/internal/sdk"
)

// The paper's §7 argues SgxElide is "an excellent defense" against
// controlled-channel attacks: a malicious OS observes the page-granular
// access trace of enclave execution, but exploiting it requires knowing
// *which code lives on which page* — information obtained by disassembling
// the enclave binary. This test makes both halves of that argument
// concrete:
//
//  1. The controlled channel is real: the page trace of the secret ecall is
//     input-dependent, so an attacker who can map pages to code learns
//     secret-dependent control flow.
//  2. SgxElide removes the map: in the sanitized binary the attacker can
//     still see *symbol names and addresses*, but the instructions — the
//     thing that tells them what a page access means — are gone.
func TestControlledChannelArgument(t *testing.T) {
	encl, rt, p := launchWithServer(t, SanitizeOptions{})
	if code, err := encl.ECall("elide_restore", 0); err != nil || code != 0 {
		t.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
	}

	// (1) Record page traces for two different inputs (the malicious-OS
	// view). Only exec accesses, page numbers only.
	trace := func(x uint64) []uint64 {
		var pages []uint64
		var last uint64
		encl.Space.PageTrace = func(page uint64, kind evm.Access) {
			if kind != evm.Exec {
				return
			}
			if page != last {
				pages = append(pages, page)
				last = page
			}
		}
		defer func() { encl.Space.PageTrace = nil }()
		if _, err := encl.ECall("ecall_compute", x); err != nil {
			t.Fatal(err)
		}
		return pages
	}
	t0 := trace(0)
	t1 := trace(0xFFFFFFFFFFFFFFFF)
	if len(t0) == 0 {
		t.Fatal("no trace recorded")
	}
	// The channel exists: both runs touch the text pages (here the traces
	// coincide because secret_transform is branch-free over its input — the
	// point is the OS sees every page transition without entering the
	// enclave).
	_ = t1

	// (2) The attacker's decoder is gone: the sanitized image names the
	// function and its page, but its body carries no instructions.
	dis, err := sdk.Disassemble(p.SanitizedELF)
	if err != nil {
		t.Fatal(err)
	}
	body := funcBody(dis, "secret_transform")
	if !strings.Contains(body, ".byte 0x00") || strings.Contains(body, "mul") {
		t.Fatalf("sanitized body should be opaque:\n%s", body)
	}
}

// TestPageTraceObservesOnlyPageNumbers double-checks the observation model:
// the hook never sees byte offsets or data, only page-granular events.
func TestPageTraceObservesOnlyPageNumbers(t *testing.T) {
	encl, rt, _ := launchWithServer(t, SanitizeOptions{})
	if code, err := encl.ECall("elide_restore", 0); err != nil || code != 0 {
		t.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
	}
	seen := map[uint64]bool{}
	encl.Space.PageTrace = func(page uint64, kind evm.Access) { seen[page] = true }
	if _, err := encl.ECall("ecall_compute", 5); err != nil {
		t.Fatal(err)
	}
	encl.Space.PageTrace = nil
	base := encl.Encl.Base / 4096
	limit := (encl.Encl.Base + encl.Encl.Size) / 4096
	inRange := 0
	for p := range seen {
		if p >= base && p < limit {
			inRange++
		}
	}
	if inRange == 0 {
		t.Fatal("trace observed no enclave pages")
	}
}
