package elide

import (
	"context"
	"errors"
	"testing"
	"time"

	"sgxelide/internal/obs"
)

// flakyDataClient wraps a Client and fails the Nth Request with a
// transient error (the protocol is strictly ordered, so request number
// names the phase: 1 = REQUEST_META, 2 = REQUEST_DATA).
type flakyDataClient struct {
	SecretChannel
	failNth  int
	requests int
}

func (f *flakyDataClient) Request(ctx context.Context, enc []byte) ([]byte, error) {
	f.requests++
	if f.requests == f.failNth {
		return nil, &unavailableError{attempts: 1, last: errors.New("connection reset")}
	}
	return f.SecretChannel.Request(ctx, enc)
}

// TestHybridDegradesToLocalFile: in a hybrid deployment, a failed
// REQUEST_DATA mid-protocol degrades to the encrypted local file — the
// restore still succeeds, reports its source as "local", and the typed
// ErrRemoteDataUnavailable lands in the error ring.
func TestHybridDegradesToLocalFile(t *testing.T) {
	ca, h := env(t)
	h.Metrics = obs.NewRegistry()
	p := buildApp(t, h, SanitizeOptions{Hybrid: true})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	client := &flakyDataClient{SecretChannel: &DirectClient{Session: srv.NewSession()}, failNth: 2}
	encl, rt, err := p.Launch(h, client, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	out, err := RestoreResilient(context.Background(), encl, rt, RestoreOptions{})
	if err != nil {
		t.Fatalf("restore failed instead of degrading: %v", err)
	}
	if out.Code != RestoreOKServer || out.Source != "local" {
		t.Fatalf("outcome = code %d source %q, want degraded local restore", out.Code, out.Source)
	}
	degraded := false
	for _, e := range out.Events {
		if errors.Is(e, ErrRemoteDataUnavailable) {
			degraded = true
		}
	}
	if !degraded {
		t.Fatalf("no ErrRemoteDataUnavailable among events %v", out.Events)
	}
	if h.Metrics.Snapshot().Counters["runtime.degraded_local"] != 1 {
		t.Fatal("degraded_local not counted")
	}
	if got, err := encl.ECall("ecall_compute", 12); err != nil || got != secretTransformGo(12) {
		t.Fatalf("degraded restore computes wrong: %d, %v", got, err)
	}
}

// TestHybridPrefersRemote: with a healthy server the hybrid restore takes
// the remote copy and never touches the local file path.
func TestHybridPrefersRemote(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{Hybrid: true})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	out, err := RestoreResilient(context.Background(), encl, rt, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != "server" || out.Attempts != 1 {
		t.Fatalf("outcome = source %q attempts %d, want clean server restore", out.Source, out.Attempts)
	}
}

// TestSealedCorruptTypedAndResealed is the sealed-blob survivability
// satellite: a flipped byte in Files.Sealed surfaces as ErrSealedCorrupt
// in the error ring, the restore falls back to the network, and a *fresh*
// sealed blob is written — proven by a third launch restoring sealed-only
// against a dead server.
func TestSealedCorruptTypedAndReseal(t *testing.T) {
	ca, h := env(t)
	h.Metrics = obs.NewRegistry()
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	if code, err := encl.ECall("elide_restore", FlagSealAfter); err != nil || code != RestoreOKServer {
		t.Fatalf("seeding restore: %d %v", code, err)
	}
	if len(rt.Files.Sealed) == 0 {
		t.Fatal("no sealed blob written")
	}

	// Flip a byte of the sealed digest (header offset 32..63): the GCM MAC
	// still passes, so this exercises the post-apply verification arm of
	// the corrupt classification, not just the MAC arm.
	corrupted := append([]byte(nil), rt.Files.Sealed...)
	corrupted[40] ^= 0xff
	files2 := &FileStore{Sealed: corrupted}
	encl2, rt2, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, files2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RestoreResilient(context.Background(), encl2, rt2, RestoreOptions{})
	if err != nil {
		t.Fatalf("corrupt sealed blob aborted the restore: %v", err)
	}
	if out.Code != RestoreOKServer || out.Source != "server" {
		t.Fatalf("outcome = code %d source %q, want network fallback", out.Code, out.Source)
	}
	sawCorrupt := false
	for _, e := range out.Events {
		if errors.Is(e, ErrSealedCorrupt) {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatalf("no ErrSealedCorrupt among events %v", out.Events)
	}
	if h.Metrics.Snapshot().Counters["runtime.sealed_corrupt"] == 0 {
		t.Fatal("sealed_corrupt not counted")
	}

	// The fallback re-sealed a fresh blob without being asked to
	// (no FlagSealAfter this run) — the corrupted one is useless.
	if len(rt2.Files.Sealed) == 0 || string(rt2.Files.Sealed) == string(corrupted) {
		t.Fatal("corrupt blob was not replaced by a fresh seal")
	}

	// The fresh blob restores with no server at all.
	dead := clientFunc{
		attest: func() ([]byte, error) {
			return nil, &unavailableError{attempts: 1, last: errors.New("down")}
		},
	}
	encl3, rt3, err := p.Launch(h, dead, rt2.Files)
	if err != nil {
		t.Fatal(err)
	}
	out3, err := RestoreResilient(context.Background(), encl3, rt3, RestoreOptions{})
	if err != nil {
		t.Fatalf("re-sealed blob did not restore offline: %v", err)
	}
	if out3.Code != RestoreOKSealed || out3.Source != "sealed" {
		t.Fatalf("outcome = code %d source %q, want sealed restore", out3.Code, out3.Source)
	}
	if got, err := encl3.ECall("ecall_compute", 5); err != nil || got != secretTransformGo(5) {
		t.Fatalf("sealed restore computes wrong: %d, %v", got, err)
	}
}

// TestTornRestoreDetected: a server releasing tampered secret data (one
// flipped byte inside a sanitized function) fails the post-apply digest
// check — elide_restore returns RestoreErrTorn, the enclave refuses to
// mark itself restored, and the resilient driver classifies the failure
// as retryable but ultimately surfaces ErrTornRestore.
func TestTornRestoreDetected(t *testing.T) {
	ca, h := env(t)
	h.Metrics = obs.NewRegistry()
	// Ranges mode: the data blob is count|{off,len,bytes}... — byte 24 is
	// the first content byte of the first sanitized range, so the flip
	// lands in a *sanitized* (never whitelisted, never running) function
	// and cannot crash the machinery driving the test.
	p := buildApp(t, h, SanitizeOptions{Ranges: true})
	tampered := *p
	tampered.SecretData = append([]byte(nil), p.SecretData...)
	tampered.SecretData[24] ^= 0xff
	srv, err := tampered.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	out, err := RestoreResilient(context.Background(), encl, rt, RestoreOptions{
		MaxAttempts: 2, Backoff: time.Millisecond,
	})
	if err == nil {
		t.Fatalf("tampered data restored successfully (outcome %+v)", out)
	}
	if !errors.Is(err, ErrRestoreFailed) {
		t.Fatalf("err = %v, want ErrRestoreFailed", err)
	}
	if !errors.Is(err, ErrTornRestore) {
		t.Fatalf("err = %v, does not unwrap to ErrTornRestore", err)
	}
	var rf *RestoreFailure
	if !errors.As(err, &rf) || rf.Code != RestoreErrTorn {
		t.Fatalf("failure code = %v, want %d", err, RestoreErrTorn)
	}
	if rf.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (torn is retryable)", rf.Attempts)
	}
	if h.Metrics.Snapshot().Counters["runtime.torn_restores"] == 0 {
		t.Fatal("torn_restores not counted")
	}
	// The enclave must not believe it is restored: the secret ecall still
	// faults rather than running half-tampered code.
	if _, err := encl.ECall("ecall_compute", 3); err == nil {
		t.Fatal("secret ecall ran after a torn restore")
	}
}

// TestRestoreResilientTerminalRefusal: an attest-phase refusal is
// terminal — one attempt, no shopping, ErrRefused preserved.
func TestRestoreResilientTerminalRefusal(t *testing.T) {
	_, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	refuser := clientFunc{
		attest: func() ([]byte, error) { return nil, &RefusedError{Msg: "unknown measurement"} },
	}
	encl, rt, err := p.Launch(h, refuser, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := RestoreResilient(context.Background(), encl, rt, RestoreOptions{MaxAttempts: 3})
	if !errors.Is(rerr, ErrRestoreFailed) {
		t.Fatalf("err = %v, want ErrRestoreFailed", rerr)
	}
	var rf *RestoreFailure
	if !errors.As(rerr, &rf) {
		t.Fatal(rerr)
	}
	if rf.Attempts != 1 {
		t.Fatalf("refusal retried %d times, want 1", rf.Attempts)
	}
	if !errors.Is(rerr, ErrRefused) {
		t.Fatalf("err = %v, does not unwrap to ErrRefused", rerr)
	}
}
