package elide

import (
	"bufio"
	"crypto/subtle"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sgx"
)

// Replicated session resumption (DESIGN §14): each server pushes its
// freshly established channels to its fleet peers, and on a resume miss
// for a *replayed* handshake it synchronously asks the peers, so a client
// failing over mid-protocol lands on a replica that already holds (or can
// fetch) its channel — zero extra attestation flights instead of a full
// re-attest.
//
// The peer link rides the existing framed transport: the dialing server
// sends a normal gob attestation handshake with the Peer field set (a
// v1-negotiated capability — a legacy server's gob decoder drops the
// unknown field, sees a zero-value quote, refuses the handshake, and the
// dialer marks the peer legacy and backs off; legacy peers are otherwise
// unaffected). An accepting server that has a fleet key acks with its
// protocol version and then serves replication frames:
//
//	push:  op(1)=peerOpPush  || wrapped record      (no reply)
//	fetch: op(1)=peerOpFetch || binding(32)         (reply: wrapped record, or a refusal on miss)
//
// plus the gossip/anti-entropy opcodes (peerOpPing, peerOpPingReq,
// peerOpDigest — see membership.go). A PR 9 binary answers those with
// its unknown-op refusal and the link survives, so mixed-version fleets
// degrade to static replication rather than breaking.
//
// Records cross the wire ONLY as wrapResumeRecord blobs — AES-GCM under
// the shared fleet sealing key — so the transport carries no cleartext
// channel keys, forged frames fail authentication, and replay is bounded
// by the in-record expiry.
//
// The peer set is no longer frozen at construction: the gossip layer
// (membership.go) adds members it discovers and retires members declared
// dead, so pushes track the live fleet. The statically configured peers
// remain as seeds either way.

// peerLinkResume marks an attestMsg as a replication-link handshake
// rather than a client session.
const peerLinkResume uint8 = 1

// Replication-link frame opcodes (3+ are in membership.go).
const (
	peerOpPush  byte = 1 // payload: wrapped record; no reply
	peerOpFetch byte = 2 // payload: 32-byte binding; reply: wrapped record or refusal
)

// peerPushQueue bounds the async push backlog; beyond it pushes are
// dropped (counted, audited, and surfaced by ReplicationHealth) rather
// than blocking the attest path.
const peerPushQueue = 256

// dropAuditInterval rate-limits AuditResumeReplicationDropped: the first
// drop of each interval emits, the rest only count.
const dropAuditInterval = time.Minute

// dropHealthWindow is how long after the last drop ReplicationHealth
// keeps reporting degraded.
const dropHealthWindow = time.Minute

// errPeerLegacy marks a peer that refused the replication handshake.
var errPeerLegacy = errors.New("elide: peer does not speak resume replication")

// peerDialFunc dials one fleet peer; the default is net.DialTimeout, and
// partition tests swap in a gate.
type peerDialFunc func(addr string, timeout time.Duration) (net.Conn, error)

func defaultPeerDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// writePeerFrame writes one replication-link frame: op || payload.
//
// SECURITY: this is the inter-server wire. elide-vet's secretflow model
// treats it as a sink — only fleet-key-wrapped blobs (wrapResumeRecord,
// sealed membership summaries/digests) and binding hashes may ever be
// passed here, never raw channel keys.
func writePeerFrame(w io.Writer, op byte, payload []byte) error {
	return writeWireFrame(w, int(op), payload)
}

// resumePeer is the dialer-side state of one replication link: a lazily
// dialed, persistently reused connection plus the legacy cooldown.
type resumePeer struct {
	addr     string
	dial     peerDialFunc
	cooldown time.Duration // legacy back-off (WithPeerCooldown)

	mu          sync.Mutex
	conn        net.Conn
	br          *bufio.Reader
	legacyUntil time.Time
}

func (p *resumePeer) closeLocked() {
	if p.conn != nil {
		_ = p.conn.Close() // link is being abandoned; the close error is moot
		p.conn, p.br = nil, nil
	}
}

func (p *resumePeer) close() {
	p.mu.Lock()
	p.closeLocked()
	p.mu.Unlock()
}

// ensureLocked dials the peer and runs the replication handshake.
func (p *resumePeer) ensureLocked(dialTimeout, opTimeout time.Duration) error {
	if p.conn != nil {
		return nil
	}
	conn, err := p.dial(p.addr, dialTimeout)
	if err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Now().Add(opTimeout))
	// The handshake is a normal attestMsg with Peer set. The quote must be
	// a non-nil zero value: gob refuses nil pointers, and a legacy server
	// (which never sees the Peer field) will verify-and-refuse it, which
	// is exactly the signal that the peer does not speak replication.
	msg := attestMsg{Quote: &sgx.Quote{}, Proto: ProtoV1, Peer: peerLinkResume}
	if err := gob.NewEncoder(conn).Encode(&msg); err != nil {
		_ = conn.Close()
		return err
	}
	br := bufio.NewReader(conn)
	ack, err := readResponse(br)
	if err != nil {
		_ = conn.Close()
		if errors.Is(err, ErrRefused) {
			p.legacyUntil = time.Now().Add(p.cooldown)
			return errPeerLegacy
		}
		return err
	}
	if len(ack) != 1 || ack[0] != ProtoV1 {
		_ = conn.Close()
		return fmt.Errorf("elide: unexpected replication ack from %s (%d bytes)", p.addr, len(ack))
	}
	// A successful handshake refutes any earlier legacy mark — the peer
	// was upgraded (or regained its fleet key) since the last refusal.
	p.legacyUntil = time.Time{}
	p.conn, p.br = conn, br
	return nil
}

// roundTrip sends one frame (reading the reply when want is set),
// redialing once on a stale connection. A refusal reply is an answer
// (fetch miss, unknown op on an old peer), not a link failure, and does
// not burn the connection.
func (p *resumePeer) roundTrip(op byte, payload []byte, want bool, dialTimeout, opTimeout time.Duration) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if time.Now().Before(p.legacyUntil) {
		return nil, errPeerLegacy
	}
	var last error
	for attempt := 0; attempt < 2; attempt++ {
		if err := p.ensureLocked(dialTimeout, opTimeout); err != nil {
			return nil, err
		}
		_ = p.conn.SetDeadline(time.Now().Add(opTimeout))
		err := writePeerFrame(p.conn, op, payload)
		if err == nil {
			if !want {
				return nil, nil
			}
			var resp []byte
			resp, err = readResponse(p.br)
			if err == nil {
				return resp, nil
			}
			if errors.Is(err, ErrRefused) {
				return nil, err
			}
		}
		p.closeLocked()
		last = err
	}
	return nil, last
}

// resumeReplicator is the dialer side of the replication layer: an async
// push pump broadcasting fresh channels to every live peer, and a
// synchronous peer fetch for resume misses. The peer set is dynamic —
// the gossip layer adds discovered members and retires dead ones; the
// statically configured addresses are the seeds.
type resumeReplicator struct {
	fleetKey    []byte
	metrics     *obs.Registry
	audit       *obs.AuditLog
	dialTimeout time.Duration
	opTimeout   time.Duration
	cooldown    time.Duration
	dial        peerDialFunc

	mu    sync.Mutex
	peers map[string]*resumePeer
	dead  map[string]bool

	queue chan ResumeRecord
	once  sync.Once

	// Push-drop bookkeeping: sustained drops mean fresh channels are not
	// reaching the fleet, so the first drop per interval is audited and
	// ReplicationHealth degrades for dropHealthWindow after the last one.
	dropMu        sync.Mutex
	drops         uint64
	lastDrop      time.Time
	lastDropAudit time.Time
	dropInterval  time.Duration // audit rate limit (test seam)
	dropWindow    time.Duration // health degradation window (test seam)
}

func newResumeReplicator(o *serverOptions) *resumeReplicator {
	r := &resumeReplicator{
		fleetKey:     o.fleetKey,
		metrics:      o.metrics,
		audit:        o.audit,
		dialTimeout:  DefaultDialTimeout,
		opTimeout:    DefaultPeerOpTimeout,
		cooldown:     o.peerCooldown,
		dial:         o.peerDial,
		peers:        make(map[string]*resumePeer),
		dead:         make(map[string]bool),
		queue:        make(chan ResumeRecord, peerPushQueue),
		dropInterval: dropAuditInterval,
		dropWindow:   dropHealthWindow,
	}
	if r.cooldown <= 0 {
		r.cooldown = DefaultPeerCooldown
	}
	if r.dial == nil {
		r.dial = defaultPeerDial
	}
	for _, a := range o.peers {
		if a != "" && a != o.gossipSelf {
			r.peerFor(a)
		}
	}
	return r
}

// peerFor returns the link for addr, creating it on first use (the
// gossip layer calls this for discovered members).
func (r *resumeReplicator) peerFor(addr string) *resumePeer {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[addr]
	if !ok {
		p = &resumePeer{addr: addr, dial: r.dial, cooldown: r.cooldown}
		r.peers[addr] = p
	}
	return p
}

// activePeers snapshots the links not currently declared dead.
func (r *resumeReplicator) activePeers() []*resumePeer {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*resumePeer, 0, len(r.peers))
	for addr, p := range r.peers {
		if !r.dead[addr] {
			out = append(out, p)
		}
	}
	return out
}

// markDead retires a peer the mesh declared dead: pushes and fetches
// skip it and its link is torn down. The entry itself stays — markAlive
// revives it when the member rejoins.
func (r *resumeReplicator) markDead(addr string) {
	r.mu.Lock()
	r.dead[addr] = true
	p := r.peers[addr]
	r.mu.Unlock()
	if p != nil {
		p.close()
	}
}

// markAlive (re)admits a peer: newly discovered members enter the push
// set here, and a dead member that refuted or rejoined comes back.
func (r *resumeReplicator) markAlive(addr string) {
	r.mu.Lock()
	delete(r.dead, addr)
	r.mu.Unlock()
	r.peerFor(addr)
}

// broadcast enqueues one record for async push to every peer. The attest
// path must never block on a slow peer, so a full queue drops (counted,
// audited at most once per interval, surfaced via ReplicationHealth).
func (r *resumeReplicator) broadcast(rec ResumeRecord) {
	r.once.Do(func() { go r.pump() })
	select {
	case r.queue <- rec:
	default:
		r.metrics.Counter("server.resume_replicate_dropped").Inc()
		r.noteDrop()
	}
}

// noteDrop records a push-queue overflow and emits the rate-limited
// audit event.
func (r *resumeReplicator) noteDrop() {
	now := time.Now()
	r.dropMu.Lock()
	r.drops++
	drops := r.drops
	r.lastDrop = now
	emit := now.Sub(r.lastDropAudit) >= r.dropInterval
	if emit {
		r.lastDropAudit = now
	}
	r.dropMu.Unlock()
	if emit {
		r.audit.Emit(obs.AuditEvent{
			Type:   obs.AuditResumeReplicationDropped,
			Detail: fmt.Sprintf("push queue full; %d records dropped since start", drops),
		})
	}
}

// healthCheck reports degraded while drops occurred within the health
// window — wired into /healthz as the "replication" check.
func (r *resumeReplicator) healthCheck() error {
	r.dropMu.Lock()
	defer r.dropMu.Unlock()
	if !r.lastDrop.IsZero() {
		if age := time.Since(r.lastDrop); age < r.dropWindow {
			return fmt.Errorf("resume replication dropped %d records (last %s ago)",
				r.drops, age.Round(time.Millisecond))
		}
	}
	return nil
}

// pump drains the push queue for the life of the process. The pump (not
// the attest path) pays for wrapping and for slow peers; link errors are
// counted and the record is simply not replicated — the client's
// fallback is the peer fetch, and behind that a full re-attest.
func (r *resumeReplicator) pump() {
	for rec := range r.queue {
		wrapped, err := wrapResumeRecord(r.fleetKey, rec)
		if err != nil {
			r.metrics.Counter("server.resume_replicate_errors").Inc()
			continue
		}
		for _, p := range r.activePeers() {
			if _, err := p.roundTrip(peerOpPush, wrapped, false, r.dialTimeout, r.opTimeout); err != nil {
				if errors.Is(err, errPeerLegacy) {
					r.metrics.Counter("server.resume_peer_legacy").Inc()
				} else {
					r.metrics.Counter("server.resume_replicate_errors").Inc()
				}
				continue
			}
			r.metrics.Counter("server.resume_replicate_sent").Inc()
		}
	}
}

// fetch synchronously asks the peers for a binding's record (first hit
// wins), used on a resume miss for a replayed handshake — the one case
// where a fresh key would break a mid-protocol enclave.
func (r *resumeReplicator) fetch(binding [32]byte) (ResumeRecord, bool) {
	r.metrics.Counter("server.resume_fetch").Inc()
	for _, p := range r.activePeers() {
		resp, err := p.roundTrip(peerOpFetch, binding[:], true, r.dialTimeout, r.opTimeout)
		if err != nil {
			continue
		}
		rec, err := openResumeRecord(r.fleetKey, resp)
		if err != nil || subtle.ConstantTimeCompare(rec.Binding[:], binding[:]) != 1 || rec.expired(time.Now()) {
			r.metrics.Counter("server.resume_fetch_bad").Inc()
			continue
		}
		r.metrics.Counter("server.resume_fetch_hit").Inc()
		return rec, true
	}
	r.metrics.Counter("server.resume_fetch_miss").Inc()
	return ResumeRecord{}, false
}

// --- accepting side ---

// handlePeerConn serves one replication link: ack the handshake, then a
// loop of push/fetch/gossip frames until the peer hangs up. Reached from
// handleConn when the decoded handshake carries the Peer marker; a server
// without a fleet key refuses (the same shape a legacy server produces,
// so dialers treat both identically).
func (s *Server) handlePeerConn(conn net.Conn, br *bufio.Reader) error {
	if len(s.opt.fleetKey) == 0 {
		s.armDeadline(conn)
		_ = writeErrorFrame(conn, "resume replication not enabled")
		return fmt.Errorf("elide server: replication link without a fleet key")
	}
	s.opt.metrics.Counter("server.peer_links").Inc()
	s.armPeerDeadline(conn)
	if err := writeResponse(conn, []byte{ProtoV1}); err != nil {
		return err
	}
	var scratch []byte
	for {
		s.armPeerDeadline(conn)
		frame, err := readFrameInto(br, scratch)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		scratch = frame
		if len(frame) == 0 {
			return fmt.Errorf("elide server: empty replication frame")
		}
		op, payload := frame[0], frame[1:]
		switch op {
		case peerOpPush:
			rec, err := openResumeRecord(s.opt.fleetKey, payload)
			if err != nil || rec.expired(time.Now()) {
				s.opt.metrics.Counter("server.resume_replicate_bad").Inc()
				continue
			}
			s.resume.Put(rec)
			s.opt.metrics.Counter("server.resume_replicated").Inc()
			s.opt.audit.Emit(obs.AuditEvent{
				Type:     obs.AuditResumeReplicated,
				Enclave:  fmt.Sprintf("%x", rec.MrEnclave[:4]),
				Endpoint: conn.RemoteAddr().String(),
			})
		case peerOpFetch:
			s.armPeerDeadline(conn)
			if len(payload) != 32 {
				if werr := writeErrorFrame(conn, "malformed fetch"); werr != nil {
					return werr
				}
				continue
			}
			var binding [32]byte
			copy(binding[:], payload)
			rec, ok, _ := s.resume.Get(binding)
			if !ok {
				if werr := writeErrorFrame(conn, "resume miss"); werr != nil {
					return werr
				}
				continue
			}
			wrapped, err := wrapResumeRecord(s.opt.fleetKey, rec)
			if err != nil {
				if werr := writeErrorFrame(conn, "wrap failed"); werr != nil {
					return werr
				}
				continue
			}
			s.opt.metrics.Counter("server.resume_fetch_served").Inc()
			if werr := writeResponse(conn, wrapped); werr != nil {
				return werr
			}
		case peerOpPing:
			if s.gsp == nil {
				if werr := writeErrorFrame(conn, "gossip not enabled"); werr != nil {
					return werr
				}
				continue
			}
			if err := s.gsp.mergeSealed(payload); err != nil {
				s.opt.metrics.Counter("server.gossip_bad_delta").Inc()
				if werr := writeErrorFrame(conn, "bad gossip delta"); werr != nil {
					return werr
				}
				continue
			}
			s.opt.metrics.Counter("server.gossip_pings").Inc()
			reply, err := s.gsp.sealedSummary()
			if err != nil {
				if werr := writeErrorFrame(conn, "seal failed"); werr != nil {
					return werr
				}
				continue
			}
			if werr := writeResponse(conn, reply); werr != nil {
				return werr
			}
		case peerOpPingReq:
			if s.gsp == nil {
				if werr := writeErrorFrame(conn, "gossip not enabled"); werr != nil {
					return werr
				}
				continue
			}
			// The indirect probe dials the target synchronously; the link's
			// deadline is re-armed after, so a slow target costs this one
			// frame, not the link.
			ok, err := s.gsp.servePingReq(payload)
			s.armPeerDeadline(conn)
			if err != nil {
				s.opt.metrics.Counter("server.gossip_bad_delta").Inc()
				if werr := writeErrorFrame(conn, "bad ping-req"); werr != nil {
					return werr
				}
				continue
			}
			if !ok {
				if werr := writeErrorFrame(conn, "target unreachable"); werr != nil {
					return werr
				}
				continue
			}
			if werr := writeResponse(conn, nil); werr != nil {
				return werr
			}
		case peerOpDigest:
			if s.gsp == nil {
				if werr := writeErrorFrame(conn, "gossip not enabled"); werr != nil {
					return werr
				}
				continue
			}
			reply, err := s.gsp.serveDigest(payload)
			if err != nil {
				s.opt.metrics.Counter("server.anti_entropy_bad").Inc()
				if werr := writeErrorFrame(conn, "bad digest"); werr != nil {
					return werr
				}
				continue
			}
			if werr := writeResponse(conn, reply); werr != nil {
				return werr
			}
		default:
			if werr := writeErrorFrame(conn, "unknown replication op"); werr != nil {
				return werr
			}
		}
	}
}

// armPeerDeadline sets the replication link's I/O deadline. Peer links
// are long-lived with sparse traffic, so they idle far longer than a
// client session; a dialer finding its link timed out simply redials.
func (s *Server) armPeerDeadline(conn net.Conn) {
	if s.opt.ioTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(4 * s.opt.ioTimeout))
	}
}
