package elide

import (
	"bufio"
	"crypto/subtle"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sgx"
)

// Replicated session resumption (DESIGN §14): each server pushes its
// freshly established channels to its fleet peers, and on a resume miss
// for a *replayed* handshake it synchronously asks the peers, so a client
// failing over mid-protocol lands on a replica that already holds (or can
// fetch) its channel — zero extra attestation flights instead of a full
// re-attest.
//
// The peer link rides the existing framed transport: the dialing server
// sends a normal gob attestation handshake with the Peer field set (a
// v1-negotiated capability — a legacy server's gob decoder drops the
// unknown field, sees a zero-value quote, refuses the handshake, and the
// dialer marks the peer legacy and backs off; legacy peers are otherwise
// unaffected). An accepting server that has a fleet key acks with its
// protocol version and then serves replication frames:
//
//	push:  op(1)=peerOpPush  || wrapped record      (no reply)
//	fetch: op(1)=peerOpFetch || binding(32)         (reply: wrapped record, or a refusal on miss)
//
// Records cross the wire ONLY as wrapResumeRecord blobs — AES-GCM under
// the shared fleet sealing key — so the transport carries no cleartext
// channel keys, forged frames fail authentication, and replay is bounded
// by the in-record expiry.

// peerLinkResume marks an attestMsg as a replication-link handshake
// rather than a client session.
const peerLinkResume uint8 = 1

// Replication-link frame opcodes.
const (
	peerOpPush  byte = 1 // payload: wrapped record; no reply
	peerOpFetch byte = 2 // payload: 32-byte binding; reply: wrapped record or refusal
)

// peerLegacyCooldown is how long a peer that refused the replication
// handshake (a legacy server, or one without a fleet key) is left alone
// before the next attempt.
const peerLegacyCooldown = 5 * time.Minute

// peerPushQueue bounds the async push backlog; beyond it pushes are
// dropped (and counted) rather than blocking the attest path.
const peerPushQueue = 256

// errPeerLegacy marks a peer that refused the replication handshake.
var errPeerLegacy = errors.New("elide: peer does not speak resume replication")

// writePeerFrame writes one replication-link frame: op || payload.
//
// SECURITY: this is the inter-server wire. elide-vet's secretflow model
// treats it as a sink — only fleet-key-wrapped blobs (wrapResumeRecord)
// and binding hashes may ever be passed here, never raw channel keys.
func writePeerFrame(w io.Writer, op byte, payload []byte) error {
	return writeWireFrame(w, int(op), payload)
}

// resumePeer is the dialer-side state of one replication link: a lazily
// dialed, persistently reused connection plus the legacy cooldown.
type resumePeer struct {
	addr string

	mu          sync.Mutex
	conn        net.Conn
	br          *bufio.Reader
	legacyUntil time.Time
}

func (p *resumePeer) closeLocked() {
	if p.conn != nil {
		_ = p.conn.Close() // link is being abandoned; the close error is moot
		p.conn, p.br = nil, nil
	}
}

// ensureLocked dials the peer and runs the replication handshake.
func (p *resumePeer) ensureLocked(dialTimeout, opTimeout time.Duration) error {
	if p.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", p.addr, dialTimeout)
	if err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Now().Add(opTimeout))
	// The handshake is a normal attestMsg with Peer set. The quote must be
	// a non-nil zero value: gob refuses nil pointers, and a legacy server
	// (which never sees the Peer field) will verify-and-refuse it, which
	// is exactly the signal that the peer does not speak replication.
	msg := attestMsg{Quote: &sgx.Quote{}, Proto: ProtoV1, Peer: peerLinkResume}
	if err := gob.NewEncoder(conn).Encode(&msg); err != nil {
		_ = conn.Close()
		return err
	}
	br := bufio.NewReader(conn)
	ack, err := readResponse(br)
	if err != nil {
		_ = conn.Close()
		if errors.Is(err, ErrRefused) {
			p.legacyUntil = time.Now().Add(peerLegacyCooldown)
			return errPeerLegacy
		}
		return err
	}
	if len(ack) != 1 || ack[0] != ProtoV1 {
		_ = conn.Close()
		return fmt.Errorf("elide: unexpected replication ack from %s (%d bytes)", p.addr, len(ack))
	}
	p.conn, p.br = conn, br
	return nil
}

// roundTrip sends one frame (reading the reply when want is set),
// redialing once on a stale connection. A refusal reply is an answer
// (fetch miss), not a link failure, and does not burn the connection.
func (p *resumePeer) roundTrip(op byte, payload []byte, want bool, dialTimeout, opTimeout time.Duration) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if time.Now().Before(p.legacyUntil) {
		return nil, errPeerLegacy
	}
	var last error
	for attempt := 0; attempt < 2; attempt++ {
		if err := p.ensureLocked(dialTimeout, opTimeout); err != nil {
			return nil, err
		}
		_ = p.conn.SetDeadline(time.Now().Add(opTimeout))
		err := writePeerFrame(p.conn, op, payload)
		if err == nil {
			if !want {
				return nil, nil
			}
			var resp []byte
			resp, err = readResponse(p.br)
			if err == nil {
				return resp, nil
			}
			if errors.Is(err, ErrRefused) {
				return nil, err
			}
		}
		p.closeLocked()
		last = err
	}
	return nil, last
}

// resumeReplicator is the dialer side of the replication layer: an async
// push pump broadcasting fresh channels to every peer, and a synchronous
// peer fetch for resume misses.
type resumeReplicator struct {
	fleetKey    []byte
	peers       []*resumePeer
	metrics     *obs.Registry
	dialTimeout time.Duration
	opTimeout   time.Duration

	queue chan ResumeRecord
	once  sync.Once
}

func newResumeReplicator(fleetKey []byte, peerAddrs []string, metrics *obs.Registry) *resumeReplicator {
	r := &resumeReplicator{
		fleetKey:    fleetKey,
		metrics:     metrics,
		dialTimeout: DefaultDialTimeout,
		opTimeout:   DefaultPeerOpTimeout,
		queue:       make(chan ResumeRecord, peerPushQueue),
	}
	for _, a := range peerAddrs {
		r.peers = append(r.peers, &resumePeer{addr: a})
	}
	return r
}

// broadcast enqueues one record for async push to every peer. The attest
// path must never block on a slow peer, so a full queue drops (counted).
func (r *resumeReplicator) broadcast(rec ResumeRecord) {
	r.once.Do(func() { go r.pump() })
	select {
	case r.queue <- rec:
	default:
		r.metrics.Counter("server.resume_replicate_dropped").Inc()
	}
}

// pump drains the push queue for the life of the process. The pump (not
// the attest path) pays for wrapping and for slow peers; link errors are
// counted and the record is simply not replicated — the client's
// fallback is the peer fetch, and behind that a full re-attest.
func (r *resumeReplicator) pump() {
	for rec := range r.queue {
		wrapped, err := wrapResumeRecord(r.fleetKey, rec)
		if err != nil {
			r.metrics.Counter("server.resume_replicate_errors").Inc()
			continue
		}
		for _, p := range r.peers {
			if _, err := p.roundTrip(peerOpPush, wrapped, false, r.dialTimeout, r.opTimeout); err != nil {
				if errors.Is(err, errPeerLegacy) {
					r.metrics.Counter("server.resume_peer_legacy").Inc()
				} else {
					r.metrics.Counter("server.resume_replicate_errors").Inc()
				}
				continue
			}
			r.metrics.Counter("server.resume_replicate_sent").Inc()
		}
	}
}

// fetch synchronously asks the peers for a binding's record (first hit
// wins), used on a resume miss for a replayed handshake — the one case
// where a fresh key would break a mid-protocol enclave.
func (r *resumeReplicator) fetch(binding [32]byte) (ResumeRecord, bool) {
	r.metrics.Counter("server.resume_fetch").Inc()
	for _, p := range r.peers {
		resp, err := p.roundTrip(peerOpFetch, binding[:], true, r.dialTimeout, r.opTimeout)
		if err != nil {
			continue
		}
		rec, err := openResumeRecord(r.fleetKey, resp)
		if err != nil || subtle.ConstantTimeCompare(rec.Binding[:], binding[:]) != 1 || rec.expired(time.Now()) {
			r.metrics.Counter("server.resume_fetch_bad").Inc()
			continue
		}
		r.metrics.Counter("server.resume_fetch_hit").Inc()
		return rec, true
	}
	r.metrics.Counter("server.resume_fetch_miss").Inc()
	return ResumeRecord{}, false
}

// --- accepting side ---

// handlePeerConn serves one replication link: ack the handshake, then a
// loop of push/fetch frames until the peer hangs up. Reached from
// handleConn when the decoded handshake carries the Peer marker; a server
// without a fleet key refuses (the same shape a legacy server produces,
// so dialers treat both identically).
func (s *Server) handlePeerConn(conn net.Conn, br *bufio.Reader) error {
	if len(s.opt.fleetKey) == 0 {
		s.armDeadline(conn)
		_ = writeErrorFrame(conn, "resume replication not enabled")
		return fmt.Errorf("elide server: replication link without a fleet key")
	}
	s.opt.metrics.Counter("server.peer_links").Inc()
	s.armPeerDeadline(conn)
	if err := writeResponse(conn, []byte{ProtoV1}); err != nil {
		return err
	}
	var scratch []byte
	for {
		s.armPeerDeadline(conn)
		frame, err := readFrameInto(br, scratch)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		scratch = frame
		if len(frame) == 0 {
			return fmt.Errorf("elide server: empty replication frame")
		}
		op, payload := frame[0], frame[1:]
		switch op {
		case peerOpPush:
			rec, err := openResumeRecord(s.opt.fleetKey, payload)
			if err != nil || rec.expired(time.Now()) {
				s.opt.metrics.Counter("server.resume_replicate_bad").Inc()
				continue
			}
			s.resume.Put(rec)
			s.opt.metrics.Counter("server.resume_replicated").Inc()
			s.opt.audit.Emit(obs.AuditEvent{
				Type:     obs.AuditResumeReplicated,
				Enclave:  fmt.Sprintf("%x", rec.MrEnclave[:4]),
				Endpoint: conn.RemoteAddr().String(),
			})
		case peerOpFetch:
			s.armPeerDeadline(conn)
			if len(payload) != 32 {
				if werr := writeErrorFrame(conn, "malformed fetch"); werr != nil {
					return werr
				}
				continue
			}
			var binding [32]byte
			copy(binding[:], payload)
			rec, ok, _ := s.resume.Get(binding)
			if !ok {
				if werr := writeErrorFrame(conn, "resume miss"); werr != nil {
					return werr
				}
				continue
			}
			wrapped, err := wrapResumeRecord(s.opt.fleetKey, rec)
			if err != nil {
				if werr := writeErrorFrame(conn, "wrap failed"); werr != nil {
					return werr
				}
				continue
			}
			s.opt.metrics.Counter("server.resume_fetch_served").Inc()
			if werr := writeResponse(conn, wrapped); werr != nil {
				return werr
			}
		default:
			if werr := writeErrorFrame(conn, "unknown replication op"); werr != nil {
				return werr
			}
		}
	}
}

// armPeerDeadline sets the replication link's I/O deadline. Peer links
// are long-lived with sparse traffic, so they idle far longer than a
// client session; a dialer finding its link timed out simply redials.
func (s *Server) armPeerDeadline(conn net.Conn) {
	if s.opt.ioTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(4 * s.opt.ioTimeout))
	}
}
