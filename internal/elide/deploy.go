package elide

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"fmt"

	"sgxelide/internal/edl"
	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// BuildProtectedOptions configures the developer-side pipeline: compile the
// enclave with the SgxElide library, sanitize it, and sign the *sanitized*
// image (Figure 1's "Sanitized Enclave Generation").
type BuildProtectedOptions struct {
	Build    sdk.BuildConfig
	Sanitize SanitizeOptions
	AppEDL   string       // the application's own EDL (merged after elide's)
	Sources  []sdk.Source // the application's trusted sources

	// SignKey is the developer's enclave-signing key; generated (2048-bit
	// RSA) when nil.
	SignKey *rsa.PrivateKey
	// Whitelist defaults to GenerateWhitelist() when nil.
	Whitelist Whitelist
	// ProdID/SVN go into the SIGSTRUCT.
	ProdID, SVN uint16
}

// Protected is a built, sanitized, signed enclave plus its secrets — the
// developer's distributables. SanitizedELF + SigStruct (+ SecretData in
// local mode) ship to users; Meta (+ SecretData in remote mode) goes to the
// authentication server.
type Protected struct {
	PlainELF     []byte // pre-sanitization image (never shipped; kept for tests)
	SanitizedELF []byte
	SigStruct    *sgx.SigStruct
	Measurement  [32]byte // of the sanitized enclave
	Meta         *SecretMeta
	SecretData   []byte
	SecretPlain  []byte // hybrid mode: the plaintext copy the server serves
	Stats        SanitizeStats
	EDL          *edl.Interface
}

// BuildProtected runs the whole developer-side pipeline. The host supplies
// the platform used to predict the measurement (any SGX machine can do
// this; measurement does not depend on platform secrets).
func BuildProtected(h *sdk.Host, opts BuildProtectedOptions) (*Protected, error) {
	iface, err := MergeEDL(opts.AppEDL)
	if err != nil {
		return nil, err
	}
	sources := append(TrustedSources(), opts.Sources...)
	res, err := sdk.BuildEnclave(opts.Build, iface, sources...)
	if err != nil {
		return nil, fmt.Errorf("elide: building enclave: %w", err)
	}

	wl := opts.Whitelist
	if wl == nil {
		wl, err = GenerateWhitelist()
		if err != nil {
			return nil, err
		}
	}
	san, err := Sanitize(res.ELF, wl, opts.Sanitize)
	if err != nil {
		return nil, err
	}

	key := opts.SignKey
	if key == nil {
		key, err = rsa.GenerateKey(rand.Reader, 2048)
		if err != nil {
			return nil, err
		}
	}
	mr, err := sdk.MeasureELF(h, san.SanitizedELF)
	if err != nil {
		return nil, fmt.Errorf("elide: measuring sanitized enclave: %w", err)
	}
	ss, err := sgx.SignEnclave(key, mr, opts.ProdID, opts.SVN)
	if err != nil {
		return nil, err
	}

	return &Protected{
		PlainELF:     res.ELF,
		SanitizedELF: san.SanitizedELF,
		SigStruct:    ss,
		Measurement:  mr,
		Meta:         san.Meta,
		SecretData:   san.SecretData,
		SecretPlain:  san.SecretPlain,
		Stats:        san.Stats,
		EDL:          iface,
	}, nil
}

// NewServerFor builds the authentication server for this deployment,
// pinning the given attestation CA. Options configure the serving policy
// (session cap, timeouts, metrics).
func (p *Protected) NewServerFor(ca *sgx.CA, opts ...ServerOption) (*Server, error) {
	cfg := ServerConfig{
		CAPub:             ca.PublicKey(),
		ExpectedMrEnclave: p.Measurement,
		Meta:              p.Meta,
	}
	if !p.Meta.Encrypted {
		cfg.SecretPlain = p.SecretData
	} else if p.Meta.Hybrid {
		cfg.SecretPlain = p.SecretPlain
	}
	return NewServer(cfg, opts...)
}

// LocalFiles returns the file store a user machine would hold: the
// encrypted secret data in local mode, nothing in remote mode.
func (p *Protected) LocalFiles() *FileStore {
	fs := &FileStore{}
	if p.Meta.Encrypted {
		fs.SecretData = append([]byte(nil), p.SecretData...)
	}
	return fs
}

// Launch loads the sanitized enclave on the user's machine and installs the
// SgxElide untrusted runtime. The caller then invokes the single required
// ecall: enclave.ECall("elide_restore", flags). It is the compatibility
// wrapper around LaunchContext with a background context.
func (p *Protected) Launch(h *sdk.Host, client SecretChannel, files *FileStore) (*sdk.Enclave, *Runtime, error) {
	return p.LaunchContext(context.Background(), h, client, files)
}

// LaunchContext is Launch with an explicit context: every server call the
// runtime makes on behalf of the enclave's ocalls (attestation, channel
// requests during elide_restore) is bounded by ctx.
func (p *Protected) LaunchContext(ctx context.Context, h *sdk.Host, client SecretChannel, files *FileStore) (*sdk.Enclave, *Runtime, error) {
	rt := &Runtime{Client: client, Files: files, Ctx: ctx, Metrics: h.Metrics}
	rt.Install(h)
	encl, err := h.CreateEnclave(p.SanitizedELF, p.SigStruct, p.EDL)
	if err != nil {
		return nil, nil, err
	}
	return encl, rt, nil
}

// Restore invokes the elide_restore ecall under a root trace span and
// completes the launch trace. The observable phases — attest,
// request_meta, request_data, decrypt, seal — are recorded live by the
// runtime's ocall handlers and the SDK's crypto intrinsics as the enclave
// drives the protocol; the self-modification itself (elide_apply's memcpy
// over the sanitized text) runs entirely inside the enclave between two
// observable events, so its "restore" span is synthesized afterwards from
// the surrounding boundaries. Tracing is wired through the Host; with no
// Host.Tracer this is exactly ECall("elide_restore", flags).
func Restore(encl *sdk.Enclave, flags uint64) (uint64, error) {
	code, _, err := restoreTraced(encl, flags)
	return code, err
}

// restoreTraced is Restore returning the trace ID of the run it recorded
// (zero without a tracer) — what the resilience driver and the flight
// recorder use to correlate one attempt with its spans and audit events.
func restoreTraced(encl *sdk.Enclave, flags uint64) (uint64, uint64, error) {
	root, endSpan := encl.Host.BeginSpan("elide_restore")
	root.SetInt("flags", int64(flags))
	code, err := encl.ECall("elide_restore", flags)
	root.SetInt("code", int64(code))
	root.SetError(err)
	endSpan()
	if err == nil && code < RestoreErrBase {
		// Only a successful restore actually ran the memcpy; a failure
		// (e.g. server unreachable) must not synthesize a phantom phase.
		synthesizeRestoreSpan(encl.Host.Tracer, root)
	}
	return code, root.TraceID(), err
}

// synthesizeRestoreSpan adds the enclave-internal "restore" phase to the
// trace rooted at root: it starts where the last data-producing event
// ended (the payload decrypt, or the data fetch) and ends where the seal
// sequence begins (its first encrypt) or where the restore ecall returned.
func synthesizeRestoreSpan(tr *obs.Tracer, root *obs.Span) {
	if tr == nil || root == nil {
		return
	}
	traceID := root.TraceID()
	var trace []obs.SpanRecord
	for _, r := range tr.Completed() {
		if r.TraceID == traceID {
			trace = append(trace, r)
		}
	}
	var start, end int64
	for _, r := range trace {
		switch r.Name {
		case "attest", "request_meta", "request_data", "read_sealed", "decrypt":
			if r.EndNS > start {
				start = r.EndNS
			}
		case "ecall:elide_restore":
			if r.EndNS > end {
				end = r.EndNS
			}
		}
	}
	if start == 0 || end <= start {
		return // nothing restored (failed early, or already restored)
	}
	for _, r := range trace {
		switch r.Name {
		case "seal", "encrypt":
			if r.StartNS >= start && r.StartNS < end {
				end = r.StartNS
			}
		}
	}
	tr.Add(obs.SpanRecord{
		TraceID:  traceID,
		ParentID: root.ID(),
		Name:     "restore",
		StartNS:  start,
		EndNS:    end,
	})
}
