package elide

import (
	"fmt"

	"sgxelide/internal/elf"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// RevokeTextWrite implements the mitigation the paper discusses in §7: the
// sanitizer must leave the text segment writable for the enclave's lifetime
// on SGXv1, which means a write-what-where bug could patch enclave code.
// On SGXv2 platforms, EMODPR can *restrict* page permissions after EINIT,
// so once elide_restore has run the text pages can go back to R+X.
//
// It walks the text segment of the sanitized image and EMODPRs every page
// to R|X. Returns an error on SGXv1 platforms (where no such mechanism
// exists — exactly the paper's situation).
func RevokeTextWrite(e *sdk.Enclave, sanitizedELF []byte) error {
	f, err := elf.Read(sanitizedELF)
	if err != nil {
		return err
	}
	ti, err := f.TextPhdrIndex()
	if err != nil {
		return err
	}
	ph := f.Phdrs[ti]
	platform := e.Host.Platform
	for va := ph.Vaddr; va < ph.Vaddr+ph.Memsz; va += sgx.PageSize {
		if err := platform.EModPR(e.Encl, va, sgx.PermR|sgx.PermX); err != nil {
			return fmt.Errorf("elide: revoking W on %#x: %w", va, err)
		}
	}
	return nil
}
