package elide

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestSentinelsSurviveWrapping is the regression net for the typed-error
// contract: every sentinel the restore stack matches with errors.Is must
// keep matching through each wrapping layer an error actually traverses —
// the transport's budget-exhaustion wrapper, the runtime's PhaseError,
// fmt.Errorf %w decoration, and the resilient driver's RestoreFailure.
// A layer that re-creates an error instead of wrapping it breaks the
// retry/failover classification silently; this test makes it loud.
func TestSentinelsSurviveWrapping(t *testing.T) {
	cases := []struct {
		name     string
		sentinel error
		carrier  error // the concrete error a layer actually produces
	}{
		{"refused", ErrRefused, &RefusedError{Msg: "measurement mismatch"}},
		{"session_lost", ErrSessionLost, ErrSessionLost},
		{"overloaded", ErrOverloaded, &OverloadedError{RetryAfter: 50 * time.Millisecond, Msg: "rate limit"}},
		{"unavailable", ErrServerUnavailable, &unavailableError{attempts: 3, last: errors.New("dial refused")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wrappings := []struct {
				layer string
				err   error
			}{
				{"bare", tc.carrier},
				{"phase", &PhaseError{Phase: "request_meta", Err: tc.carrier}},
				{"fmt", fmt.Errorf("request_meta: %w", tc.carrier)},
				{"phase+fmt", fmt.Errorf("attempt 2: %w", &PhaseError{Phase: "attest", Err: tc.carrier})},
				{"restore_failure", &RestoreFailure{Code: RestoreErrBase, Attempts: 2,
					Last: &PhaseError{Phase: "attest", Err: tc.carrier}}},
			}
			for _, w := range wrappings {
				if !errors.Is(w.err, tc.sentinel) {
					t.Errorf("%s: errors.Is lost the %s sentinel: %v", w.layer, tc.name, w.err)
				}
			}
		})
	}
}

// TestOverloadedErrorAsThroughLayers: the retry-after hint must remain
// reachable with errors.As wherever the overload surfaces, because the
// failover pool and the retry loop both read it to pace themselves.
func TestOverloadedErrorAsThroughLayers(t *testing.T) {
	carrier := &OverloadedError{RetryAfter: 125 * time.Millisecond, Msg: "inflight cap"}
	layers := []error{
		carrier,
		&PhaseError{Phase: "request_data", Err: carrier},
		fmt.Errorf("run 3: %w", &PhaseError{Phase: "request_data", Err: carrier}),
		&RestoreFailure{Code: RestoreErrBase, Attempts: 1, Last: carrier},
	}
	for i, err := range layers {
		var oe *OverloadedError
		if !errors.As(err, &oe) {
			t.Errorf("layer %d: errors.As lost *OverloadedError: %v", i, err)
			continue
		}
		if oe.RetryAfter != 125*time.Millisecond {
			t.Errorf("layer %d: retry-after hint = %v, want 125ms", i, oe.RetryAfter)
		}
	}
}

// TestTransientClassification pins the retry-layer contract for the new
// sentinel: an overload is NOT transient (blind immediate retry would
// worsen the overload) but IS retryable at the restore-run level, where
// backoff between attempts honors the server's pacing.
func TestTransientClassification(t *testing.T) {
	oe := &OverloadedError{RetryAfter: time.Millisecond}
	if isTransient(oe) {
		t.Error("overload classified transient; the transport would hot-retry a shedding server")
	}
	if !restoreRetryable(RestoreErrBase, []error{&PhaseError{Phase: "attest", Err: oe}}) {
		t.Error("overloaded protocol run classified non-retryable; RestoreResilient would give up")
	}
	// The pre-existing classifications must not have moved.
	if restoreRetryable(RestoreErrBase, []error{&PhaseError{Phase: "attest", Err: &RefusedError{Msg: "no"}}}) {
		t.Error("an attest refusal became retryable")
	}
	if !restoreRetryable(RestoreErrBase, []error{ErrSessionLost}) {
		t.Error("a lost session became non-retryable")
	}
}
