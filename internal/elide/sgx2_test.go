package elide

import (
	"strings"
	"testing"

	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// TestSGXv1TextStaysWritable demonstrates the security tradeoff the paper
// accepts on SGXv1: after restoration the text pages remain writable for
// the enclave's lifetime, so enclave code (e.g. via a write-what-where bug)
// could patch itself.
func TestSGXv1TextStaysWritable(t *testing.T) {
	encl, rt, _ := launchWithServer(t, SanitizeOptions{})
	if code, err := encl.ECall("elide_restore", 0); err != nil || code != 0 {
		t.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
	}
	textBase := encl.Encl.Base // text is the first segment
	perm, ok := encl.Encl.PagePerm(textBase)
	if !ok {
		t.Fatal("no text page")
	}
	if perm&sgx.PermW == 0 {
		t.Fatalf("text perm = %v, expected writable on SGXv1", perm)
	}
	// Revoking is not possible without a valid image (and, below in the
	// SGX2 test, not possible at all on SGXv1 hardware).
	if err := RevokeTextWrite(encl, nil); err == nil {
		t.Fatal("RevokeTextWrite(nil image) should fail")
	}
}

// TestSGX2RevokeTextWrite exercises the §7 mitigation end to end on an
// SGX2-capable platform: restore, revoke W, verify the enclave still runs
// and that writes to text now fault.
func TestSGX2RevokeTextWrite(t *testing.T) {
	ca, err := sgx.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.Config{SGX2: true}, ca)
	if err != nil {
		t.Fatal(err)
	}
	h := sdk.NewHost(platform)
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	encl, rt, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	if code, err := encl.ECall("elide_restore", 0); err != nil || code != 0 {
		t.Fatalf("restore: %d %v (%v)", code, err, rt.LastErr())
	}

	if err := RevokeTextWrite(encl, p.SanitizedELF); err != nil {
		t.Fatalf("revoke: %v", err)
	}
	perm, _ := encl.Encl.PagePerm(encl.Encl.Base)
	if perm != sgx.PermR|sgx.PermX {
		t.Fatalf("text perm after revoke = %v", perm)
	}

	// The restored code still runs (execution needs X, not W)...
	got, err := encl.ECall("ecall_compute", 11)
	if err != nil || got != secretTransformGo(11) {
		t.Fatalf("compute after revoke: %v %v", got, err)
	}
	// ...but writes to text now fault: a fresh enclave on the same
	// platform that revokes W *before* restoring cannot restore.
	encl2, _, err := p.Launch(h, &DirectClient{Session: srv.NewSession()}, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	if err := RevokeTextWrite(encl2, p.SanitizedELF); err != nil {
		t.Fatal(err)
	}
	_, err = encl2.ECall("elide_restore", 0)
	if err == nil || !strings.Contains(err.Error(), "write permission") {
		t.Fatalf("restore after early revoke: %v, want write fault", err)
	}
}

// TestTransparentAutoRestore exercises the paper's "totally transparent"
// future-work mode: no explicit elide_restore call anywhere — the first
// ecall triggers restoration inside the enclave entry path.
func TestTransparentAutoRestore(t *testing.T) {
	encl, rt, _ := launchWithServer(t, SanitizeOptions{AutoRestore: true})
	// Call the secret ecall directly: instead of faulting on zeroed code,
	// the entry hook restores first.
	got, err := encl.ECall("ecall_compute", 9)
	if err != nil {
		t.Fatalf("transparent first ecall: %v (runtime: %v)", err, rt.LastErr())
	}
	if got != secretTransformGo(9) {
		t.Fatalf("got %#x, want %#x", got, secretTransformGo(9))
	}
	// Subsequent calls skip the restore fast-path.
	if got, err := encl.ECall("ecall_double_secret", 3); err != nil || got != secretTransformGo(3)^0xABCDEF {
		t.Fatalf("second ecall: %v %v", got, err)
	}
}

// TestTransparentAutoRestoreServerDown: in transparent mode a dead server
// makes the first ecall fail with an enclave abort (the entry hook cannot
// restore) rather than executing zeroed code.
func TestTransparentAutoRestoreServerDown(t *testing.T) {
	_, h := env(t)
	p := buildApp(t, h, SanitizeOptions{AutoRestore: true})
	encl, _, err := p.Launch(h, deadClient{}, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	_, err = encl.ECall("ecall_compute", 1)
	if err == nil || !strings.Contains(err.Error(), "abort") {
		t.Fatalf("err = %v, want enclave abort", err)
	}
}
