package elide

import (
	"sgxelide/internal/edl"
	"sgxelide/internal/sdk"
)

// EDLSource declares the SgxElide runtime interface: one public ecall
// (elide_restore) and the untrusted helpers it needs — exactly the API
// surface the paper describes (§3.4), plus the QE target-info lookup that
// real SGX obtains from the untrusted sgx_init_quote.
const EDLSource = `
enclave {
    trusted {
        public uint64_t elide_restore(uint64_t flags);
    };
    untrusted {
        uint64_t elide_server_request(uint64_t req, [in, size=inlen] uint8_t* inbuf, uint64_t inlen, [out, size=cap] uint8_t* outbuf, uint64_t cap);
        uint64_t elide_read_file(uint64_t which, [out, size=cap] uint8_t* buf, uint64_t cap);
        uint64_t elide_write_file([in, size=len] uint8_t* buf, uint64_t len);
        void elide_qe_target([out, size=32] uint8_t* ti);
    };
};
`

// TrustedC is the SgxElide trusted library (libelide_t): the runtime
// restorer. It performs remote attestation with the developer's server,
// fetches the secret metadata and data over the AES-GCM channel (or reads
// and decrypts the local encrypted file), locates the text section
// position-independently from its own address, and copies the original
// bytes over the sanitized ones. It also implements the sealing extension
// (paper §7): after the first restore the secret can be sealed with the
// enclave's EGETKEY-derived key so later launches need no server at all.
const TrustedC = `
/* SgxElide trusted runtime (libelide_t) */

int sgx_read_rand(uint8_t* buf, uint64_t len);
int sgx_sha256_msg(uint8_t* src, uint64_t len, uint8_t* hash);
int sgx_create_report(uint8_t* target, uint8_t* data, uint8_t* report);
int sgx_get_seal_key(uint64_t policy, uint8_t* key);
int sgx_ecdh_keypair(uint8_t* priv, uint8_t* pub);
int sgx_ecdh_shared(uint8_t* priv, uint8_t* peer, uint8_t* key);
int sgx_rijndael128GCM_encrypt(uint8_t* key, uint8_t* src, uint64_t len, uint8_t* dst, uint8_t* iv, uint8_t* mac);
int sgx_rijndael128GCM_decrypt(uint8_t* key, uint8_t* src, uint64_t len, uint8_t* dst, uint8_t* iv, uint8_t* mac);
void* memcpy(void* d, void* s, uint64_t n);
void* malloc(uint64_t n);

uint64_t elide_server_request(uint64_t req, uint8_t* inbuf, uint64_t inlen, uint8_t* outbuf, uint64_t cap);
uint64_t elide_read_file(uint64_t which, uint8_t* buf, uint64_t cap);
uint64_t elide_write_file(uint8_t* buf, uint64_t len);
void elide_qe_target(uint8_t* ti);
uint64_t elide_self_addr(void);

uint8_t elide_channel_key[16];
uint64_t elide_restored;

/* elide_channel_setup attests to the server and derives the channel key:
 * a fresh ECDH keypair is bound into the report data (sha256 of the public
 * key), the report is quoted by the QE (via the untrusted runtime), and the
 * server replies with its own public key only if the quote checks out. */
uint64_t elide_channel_setup(void) {
    uint8_t priv[32];
    uint8_t pub[32];
    uint8_t ti[32];
    uint8_t rdata[64];
    uint8_t msg[232];
    uint8_t spub[32];
    uint64_t n;
    if (sgx_ecdh_keypair(priv, pub)) return 101;
    elide_qe_target(ti);
    for (int i = 0; i < 64; i++) rdata[i] = 0;
    sgx_sha256_msg(pub, 32, rdata);
    if (sgx_create_report(ti, rdata, msg)) return 102;
    memcpy(msg + 200, pub, 32);
    n = elide_server_request(0, msg, 232, spub, 32);
    if (n != 32) return 103;
    if (sgx_ecdh_shared(priv, spub, elide_channel_key)) return 104;
    return 0;
}

/* elide_channel_request sends one encrypted request byte (REQUEST_META or
 * REQUEST_DATA) and decrypts the reply into out, returning the plaintext
 * length (0 on failure). Wire framing: iv(12) || mac(16) || ciphertext. */
uint64_t elide_channel_request(uint64_t req, uint8_t* out, uint64_t cap) {
    uint8_t msg[32];
    uint8_t pt[1];
    uint64_t n;
    pt[0] = (uint8_t)req;
    sgx_read_rand(msg, 12);
    if (sgx_rijndael128GCM_encrypt(elide_channel_key, pt, 1, msg + 28, msg, msg + 12)) return 0;
    n = elide_server_request(1, msg, 29, out, cap);
    if (n <= 28) return 0;
    if (n > cap) return 0;
    if (sgx_rijndael128GCM_decrypt(elide_channel_key, out + 28, n - 28, out, out, out + 12)) return 0;
    return n - 28;
}

/* elide_apply writes the original bytes over the sanitized text. The text
 * base is computed position-independently: the metadata carries the offset
 * of elide_restore from the text start, and elide_self_addr() returns its
 * runtime address. */
void elide_apply(uint8_t* data, uint64_t dlen, uint64_t off, uint64_t format) {
    uint64_t text = elide_self_addr() - off;
    if (format == 0) {
        memcpy((uint8_t*)text, data, dlen);
        return;
    }
    uint64_t count;
    uint8_t* p = data + 8;
    memcpy(&count, data, 8);
    for (uint64_t i = 0; i < count; i++) {
        uint64_t roff;
        uint64_t rlen;
        memcpy(&roff, p, 8);
        memcpy(&rlen, p + 8, 8);
        memcpy((uint8_t*)(text + roff), p + 16, rlen);
        p = p + 16 + rlen;
    }
}

/* Sealed blob layout: dlen u64 | off u64 | format u64 | iv12 | mac16 | ct. */

uint64_t elide_try_sealed(void) {
    uint8_t hdr[24];
    uint8_t key[16];
    uint64_t n;
    uint64_t dlen;
    uint64_t off;
    uint64_t format;
    n = elide_read_file(1, hdr, 24);
    if (n < 24) return 1;
    memcpy(&dlen, hdr, 8);
    memcpy(&off, hdr + 8, 8);
    memcpy(&format, hdr + 16, 8);
    uint64_t total = 24 + 28 + dlen;
    uint8_t* blob = malloc(total);
    n = elide_read_file(1, blob, total);
    if (n != total) return 1;
    if (sgx_get_seal_key(0, key)) return 1;
    uint8_t* plain = malloc(dlen);
    if (sgx_rijndael128GCM_decrypt(key, blob + 52, dlen, plain, blob + 24, blob + 36)) return 1;
    elide_apply(plain, dlen, off, format);
    return 0;
}

void elide_seal(uint8_t* data, uint64_t dlen, uint64_t off, uint64_t format) {
    uint8_t key[16];
    uint64_t total = 24 + 28 + dlen;
    uint8_t* blob = malloc(total);
    memcpy(blob, &dlen, 8);
    memcpy(blob + 8, &off, 8);
    memcpy(blob + 16, &format, 8);
    if (sgx_get_seal_key(0, key)) return;
    sgx_read_rand(blob + 24, 12);
    if (sgx_rijndael128GCM_encrypt(key, data, dlen, blob + 52, blob + 24, blob + 36)) return;
    elide_write_file(blob, total);
}

/* elide_restore is the single ecall a developer adds (paper §3.4).
 * Returns 0 (restored via server), 1 (restored from sealed file), or an
 * error code >= 100. */
uint64_t elide_restore(uint64_t flags) {
    uint8_t mbuf[96];
    uint64_t n;
    uint64_t dlen;
    uint64_t off;
    uint64_t format;
    uint8_t* data;
    uint64_t r;
    if (elide_restored) return 0;
    if (flags & 1) {
        if (elide_try_sealed() == 0) {
            elide_restored = 1;
            return 1;
        }
    }
    r = elide_channel_setup();
    if (r) return r;
    n = elide_channel_request(1, mbuf, 96);
    if (n != 61) return 105;
    memcpy(&dlen, mbuf, 8);
    memcpy(&off, mbuf + 8, 8);
    format = (mbuf[16] >> 1) & 1;
    data = malloc(dlen);
    if (mbuf[16] & 1) {
        /* Local data: read the encrypted file, decrypt with the key the
         * server released over the attested channel. */
        n = elide_read_file(0, data, dlen);
        if (n != dlen) return 106;
        if (sgx_rijndael128GCM_decrypt(mbuf + 17, data, dlen, data, mbuf + 33, mbuf + 45)) return 107;
    } else {
        /* Remote data: fetch the secret bytes over the channel. */
        uint8_t* edata = malloc(dlen + 28);
        n = elide_channel_request(2, edata, dlen + 28);
        if (n != dlen) return 108;
        memcpy(data, edata, dlen);
    }
    elide_apply(data, dlen, off, format);
    elide_restored = 1;
    if (flags & 2) elide_seal(data, dlen, off, format);
    return 0;
}
`

// TrustedAsm holds the hand-written helper: the position-independent
// address of elide_restore (C has no function pointers in our subset, and
// this mirrors the paper's PIC trick of subtracting the metadata offset
// from elide_restore's runtime address).
const TrustedAsm = `
.text
.global elide_self_addr
.func elide_self_addr
	la rv, elide_restore
	ret
.endfunc
`

// TrustedSources returns the SgxElide trusted-side sources to link into an
// enclave build.
func TrustedSources() []sdk.Source {
	return []sdk.Source{
		sdk.C("elide_trusted.c", TrustedC),
		sdk.Asm("elide_helpers.s", TrustedAsm),
	}
}

// ParseEDL returns the parsed SgxElide interface.
func ParseEDL() (*edl.Interface, error) {
	return edl.Parse(EDLSource)
}

// MergeEDL combines the SgxElide interface with an application's own EDL
// source; the elide ecall keeps index 0.
func MergeEDL(appEDL string) (*edl.Interface, error) {
	base, err := ParseEDL()
	if err != nil {
		return nil, err
	}
	if appEDL == "" {
		return base, nil
	}
	app, err := edl.Parse(appEDL)
	if err != nil {
		return nil, err
	}
	return base.Merge(app)
}
