package elide

import (
	"sgxelide/internal/edl"
	"sgxelide/internal/sdk"
)

// EDLSource declares the SgxElide runtime interface: one public ecall
// (elide_restore) and the untrusted helpers it needs — exactly the API
// surface the paper describes (§3.4), plus the QE target-info lookup that
// real SGX obtains from the untrusted sgx_init_quote.
const EDLSource = `
enclave {
    trusted {
        public uint64_t elide_restore(uint64_t flags);
    };
    untrusted {
        uint64_t elide_server_request(uint64_t req, [in, size=inlen] uint8_t* inbuf, uint64_t inlen, [out, size=cap] uint8_t* outbuf, uint64_t cap);
        uint64_t elide_read_file(uint64_t which, [out, size=cap] uint8_t* buf, uint64_t cap);
        uint64_t elide_write_file([in, size=len] uint8_t* buf, uint64_t len);
        void elide_qe_target([out, size=32] uint8_t* ti);
        void elide_report(uint64_t code);
    };
};
`

// TrustedC is the SgxElide trusted library (libelide_t): the runtime
// restorer. It performs remote attestation with the developer's server,
// fetches the secret metadata and data over the AES-GCM channel (or reads
// and decrypts the local encrypted file), locates the text section
// position-independently from its own address, and copies the original
// bytes over the sanitized ones. It also implements the sealing extension
// (paper §7): after the first restore the secret can be sealed with the
// enclave's EGETKEY-derived key so later launches need no server at all.
const TrustedC = `
/* SgxElide trusted runtime (libelide_t) */

int sgx_read_rand(uint8_t* buf, uint64_t len);
int sgx_sha256_msg(uint8_t* src, uint64_t len, uint8_t* hash);
int sgx_create_report(uint8_t* target, uint8_t* data, uint8_t* report);
int sgx_get_seal_key(uint64_t policy, uint8_t* key);
int sgx_ecdh_keypair(uint8_t* priv, uint8_t* pub);
int sgx_ecdh_shared(uint8_t* priv, uint8_t* peer, uint8_t* key);
int sgx_rijndael128GCM_encrypt(uint8_t* key, uint8_t* src, uint64_t len, uint8_t* dst, uint8_t* iv, uint8_t* mac);
int sgx_rijndael128GCM_decrypt(uint8_t* key, uint8_t* src, uint64_t len, uint8_t* dst, uint8_t* iv, uint8_t* mac);
void* memcpy(void* d, void* s, uint64_t n);
void* malloc(uint64_t n);

uint64_t elide_server_request(uint64_t req, uint8_t* inbuf, uint64_t inlen, uint8_t* outbuf, uint64_t cap);
uint64_t elide_read_file(uint64_t which, uint8_t* buf, uint64_t cap);
uint64_t elide_write_file(uint8_t* buf, uint64_t len);
void elide_qe_target(uint8_t* ti);
void elide_report(uint64_t code);
uint64_t elide_self_addr(void);

uint8_t elide_channel_key[16];
uint64_t elide_restored;
uint64_t elide_sealed_corrupt;

/* elide_wipe zeroizes secret-bearing memory before it is released or a
 * function returns: decrypted plaintext, seal/channel keys, and the ECDH
 * private key must not outlive their use inside the enclave heap/stack
 * (a later memory-disclosure bug or a dump would recover them). */
void elide_wipe(uint8_t* p, uint64_t n) {
    for (uint64_t i = 0; i < n; i++) p[i] = 0;
}

/* elide_channel_setup attests to the server and derives the channel key:
 * a fresh ECDH keypair is bound into the report data (sha256 of the public
 * key), the report is quoted by the QE (via the untrusted runtime), and the
 * server replies with its own public key only if the quote checks out.
 * Single exit after key generation so the private key is wiped on every
 * path, including the error returns. */
uint64_t elide_channel_setup(void) {
    uint8_t priv[32];
    uint8_t pub[32];
    uint8_t ti[32];
    uint8_t rdata[64];
    uint8_t msg[232];
    uint8_t spub[32];
    uint64_t n;
    uint64_t rc;
    if (sgx_ecdh_keypair(priv, pub)) return 101;
    rc = 0;
    elide_qe_target(ti);
    for (int i = 0; i < 64; i++) rdata[i] = 0;
    sgx_sha256_msg(pub, 32, rdata);
    if (sgx_create_report(ti, rdata, msg)) rc = 102;
    if (rc == 0) {
        memcpy(msg + 200, pub, 32);
        n = elide_server_request(0, msg, 232, spub, 32);
        if (n != 32) rc = 103;
    }
    if (rc == 0) {
        if (sgx_ecdh_shared(priv, spub, elide_channel_key)) rc = 104;
    }
    elide_wipe(priv, 32);
    return rc;
}

/* elide_channel_request sends one encrypted request byte (REQUEST_META or
 * REQUEST_DATA) and decrypts the reply into out, returning the plaintext
 * length (0 on failure). Wire framing: iv(12) || mac(16) || ciphertext. */
uint64_t elide_channel_request(uint64_t req, uint8_t* out, uint64_t cap) {
    uint8_t msg[32];
    uint8_t pt[1];
    uint64_t n;
    pt[0] = (uint8_t)req;
    sgx_read_rand(msg, 12);
    if (sgx_rijndael128GCM_encrypt(elide_channel_key, pt, 1, msg + 28, msg, msg + 12)) return 0;
    n = elide_server_request(1, msg, 29, out, cap);
    if (n <= 28) return 0;
    if (n > cap) return 0;
    if (sgx_rijndael128GCM_decrypt(elide_channel_key, out + 28, n - 28, out, out, out + 12)) return 0;
    return n - 28;
}

/* elide_apply writes the original bytes over the sanitized text. The text
 * base is computed position-independently: the metadata carries the offset
 * of elide_restore from the text start, and elide_self_addr() returns its
 * runtime address. */
void elide_apply(uint8_t* data, uint64_t dlen, uint64_t off, uint64_t format) {
    uint64_t text = elide_self_addr() - off;
    if (format == 0) {
        memcpy((uint8_t*)text, data, dlen);
        return;
    }
    uint64_t count;
    uint8_t* p = data + 8;
    memcpy(&count, data, 8);
    for (uint64_t i = 0; i < count; i++) {
        uint64_t roff;
        uint64_t rlen;
        memcpy(&roff, p, 8);
        memcpy(&rlen, p + 8, 8);
        memcpy((uint8_t*)(text + roff), p + 16, rlen);
        p = p + 16 + rlen;
    }
}

/* elide_verify_text hashes the whole text section after an apply and
 * compares it (branch-free accumulate) against the expected digest the
 * metadata carries. A mismatch means the restore tore: the memcpy did not
 * reproduce the original bytes, and success must not be reported. */
uint64_t elide_verify_text(uint64_t off, uint64_t textlen, uint8_t* digest) {
    uint8_t h[32];
    uint64_t text = elide_self_addr() - off;
    uint64_t diff = 0;
    if (textlen == 0) return 0;
    if (sgx_sha256_msg((uint8_t*)text, textlen, h)) return 1;
    for (int i = 0; i < 32; i++) diff = diff | (h[i] ^ digest[i]);
    if (diff) return 1;
    return 0;
}

/* Sealed blob layout:
 * dlen u64 | off u64 | format u64 | textlen u64 | digest32 | iv12 | mac16 | ct.
 * Header is 64 bytes; iv at 64, mac at 76, ciphertext at 92. */

/* elide_try_sealed returns 0 on a verified sealed restore, 1 when there is
 * no usable sealed file (missing), and 2 when the blob exists but is
 * corrupt — truncated, failed its MAC, or produced a torn text. Corrupt
 * blobs are reported so the runtime can surface a typed error, and the
 * caller falls back to the network and re-seals a fresh blob. */
uint64_t elide_try_sealed(void) {
    uint8_t hdr[64];
    uint8_t key[16];
    uint64_t n;
    uint64_t dlen;
    uint64_t off;
    uint64_t format;
    uint64_t textlen;
    n = elide_read_file(1, hdr, 64);
    if (n == 0) return 1;
    if (n < 64) return 2;
    memcpy(&dlen, hdr, 8);
    memcpy(&off, hdr + 8, 8);
    memcpy(&format, hdr + 16, 8);
    memcpy(&textlen, hdr + 24, 8);
    uint64_t total = 64 + 28 + dlen;
    uint8_t* blob = malloc(total);
    n = elide_read_file(1, blob, total);
    if (n != total) return 2;
    if (sgx_get_seal_key(0, key)) return 2;
    uint8_t* plain = malloc(dlen);
    uint64_t rc = 0;
    if (sgx_rijndael128GCM_decrypt(key, blob + 92, dlen, plain, blob + 64, blob + 76)) rc = 2;
    if (rc == 0) {
        elide_apply(plain, dlen, off, format);
        if (elide_verify_text(off, textlen, blob + 32)) rc = 2;
    }
    /* The seal key and the decrypted text must not linger on the stack or
     * heap once the apply has consumed them (or failed). */
    elide_wipe(key, 16);
    elide_wipe(plain, dlen);
    return rc;
}

void elide_seal(uint8_t* data, uint64_t dlen, uint64_t off, uint64_t format, uint64_t textlen, uint8_t* digest) {
    uint8_t key[16];
    uint64_t total = 64 + 28 + dlen;
    uint8_t* blob = malloc(total);
    memcpy(blob, &dlen, 8);
    memcpy(blob + 8, &off, 8);
    memcpy(blob + 16, &format, 8);
    memcpy(blob + 24, &textlen, 8);
    memcpy(blob + 32, digest, 32);
    if (sgx_get_seal_key(0, key)) return;
    sgx_read_rand(blob + 64, 12);
    uint64_t ok = 1;
    if (sgx_rijndael128GCM_encrypt(key, data, dlen, blob + 92, blob + 64, blob + 76)) ok = 0;
    elide_wipe(key, 16);
    if (ok) elide_write_file(blob, total);
}

/* elide_restore is the single ecall a developer adds (paper §3.4).
 * Returns 0 (restored via server), 1 (restored from sealed file), or an
 * error code >= 100. The acquisition strategies run in degradation order:
 * sealed file first (no network), then the authentication server, and in
 * hybrid deployments the encrypted local file when the remote data fetch
 * fails mid-protocol. */
uint64_t elide_restore(uint64_t flags) {
    uint8_t mbuf[160];
    uint64_t n;
    uint64_t dlen;
    uint64_t off;
    uint64_t format;
    uint64_t textlen;
    uint64_t got;
    uint8_t* data;
    uint64_t r;
    if (elide_restored) return 0;
    if (flags & 1) {
        r = elide_try_sealed();
        if (r == 0) {
            elide_restored = 1;
            return 1;
        }
        if (r == 2) {
            /* Corrupt sealed blob: tell the runtime (typed error), fall
             * back to the network, and remember to re-seal a fresh blob. */
            elide_report(1);
            elide_sealed_corrupt = 1;
        }
    }
    r = elide_channel_setup();
    if (r) return r;
    n = elide_channel_request(1, mbuf, 160);
    if (n != 101) {
        elide_wipe(mbuf, 160);
        elide_wipe(elide_channel_key, 16);
        return 105;
    }
    memcpy(&dlen, mbuf, 8);
    memcpy(&off, mbuf + 8, 8);
    memcpy(&textlen, mbuf + 61, 8);
    format = (mbuf[16] >> 1) & 1;
    data = malloc(dlen);
    got = 0;
    r = 0;
    if (mbuf[16] & 4) {
        /* Hybrid: the data lives both on the server and in the encrypted
         * local file. Prefer the fresh remote copy; degrade to the local
         * file when the pool cannot move the payload. */
        uint8_t* hdata = malloc(dlen + 28);
        n = elide_channel_request(2, hdata, dlen + 28);
        if (n == dlen) {
            memcpy(data, hdata, dlen);
            got = 1;
        }
        elide_wipe(hdata, dlen + 28);
        if (got == 0) elide_report(3);
    }
    if (got == 0) {
        if (mbuf[16] & 1) {
            /* Local data: read the encrypted file, decrypt with the key the
             * server released over the attested channel (key at mbuf+17). */
            n = elide_read_file(0, data, dlen);
            if (n != dlen) r = 106;
            if (r == 0) {
                if (sgx_rijndael128GCM_decrypt(mbuf + 17, data, dlen, data, mbuf + 33, mbuf + 45)) r = 107;
            }
        } else {
            /* Remote data: fetch the secret bytes over the channel. */
            uint8_t* edata = malloc(dlen + 28);
            n = elide_channel_request(2, edata, dlen + 28);
            if (n != dlen) r = 108;
            if (r == 0) memcpy(data, edata, dlen);
            elide_wipe(edata, dlen + 28);
        }
    }
    if (r == 0) {
        elide_apply(data, dlen, off, format);
        if (elide_verify_text(off, textlen, mbuf + 69)) {
            /* Torn restore: never report success over a text that does not
             * hash to the original. elide_restored stays clear so a retry
             * re-runs the whole protocol. */
            elide_report(2);
            r = 110;
        }
    }
    if (r == 0) {
        elide_restored = 1;
        if ((flags & 2) | elide_sealed_corrupt) {
            elide_seal(data, dlen, off, format, textlen, mbuf + 69);
            elide_sealed_corrupt = 0;
        }
    }
    /* Single cleanup for every outcome: the restored text now lives only
     * in the text section, so the staging copy, the metadata blob (which
     * carries the local-data key/IV/MAC), and the channel key are wiped. */
    elide_wipe(data, dlen);
    elide_wipe(mbuf, 160);
    elide_wipe(elide_channel_key, 16);
    return r;
}
`

// TrustedAsm holds the hand-written helper: the position-independent
// address of elide_restore (C has no function pointers in our subset, and
// this mirrors the paper's PIC trick of subtracting the metadata offset
// from elide_restore's runtime address).
const TrustedAsm = `
.text
.global elide_self_addr
.func elide_self_addr
	la rv, elide_restore
	ret
.endfunc
`

// TrustedSources returns the SgxElide trusted-side sources to link into an
// enclave build.
func TrustedSources() []sdk.Source {
	return []sdk.Source{
		sdk.C("elide_trusted.c", TrustedC),
		sdk.Asm("elide_helpers.s", TrustedAsm),
	}
}

// ParseEDL returns the parsed SgxElide interface.
func ParseEDL() (*edl.Interface, error) {
	return edl.Parse(EDLSource)
}

// MergeEDL combines the SgxElide interface with an application's own EDL
// source; the elide ecall keeps index 0.
func MergeEDL(appEDL string) (*edl.Interface, error) {
	base, err := ParseEDL()
	if err != nil {
		return nil, err
	}
	if appEDL == "" {
		return base, nil
	}
	app, err := edl.Parse(appEDL)
	if err != nil {
		return nil, err
	}
	return base.Merge(app)
}
