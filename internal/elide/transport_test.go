package elide

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// --- frame protocol ---

// TestStatusFrameZeroLengthResponse: a legitimate empty response is
// distinguishable from a refusal — the regression the status prefix fixes.
func TestStatusFrameZeroLengthResponse(t *testing.T) {
	var buf bytes.Buffer
	if err := writeResponse(&buf, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := readResponse(&buf)
	if err != nil {
		t.Fatalf("zero-length response read as error: %v", err)
	}
	if len(resp) != 0 {
		t.Fatalf("resp = %x, want empty", resp)
	}
}

func TestStatusFrameError(t *testing.T) {
	var buf bytes.Buffer
	if err := writeErrorFrame(&buf, "measurement mismatch"); err != nil {
		t.Fatal(err)
	}
	_, err := readResponse(&buf)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
	if !strings.Contains(err.Error(), "measurement mismatch") {
		t.Fatalf("refusal lost the server's reason: %v", err)
	}
}

func TestFrameTooLargeOnWrite(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, make([]byte, MaxFrame+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized frame partially written (%d bytes)", buf.Len())
	}
}

func TestFrameTooLargeOnRead(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB length header
	_, err := readFrame(&buf)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestMalformedResponseFrames(t *testing.T) {
	// A frame with no status byte and a frame with an unknown status are
	// both protocol errors, not payloads.
	for _, frame := range [][]byte{{}, {42, 1, 2}} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, frame); err != nil {
			t.Fatal(err)
		}
		if _, err := readResponse(&buf); err == nil {
			t.Fatalf("frame %x accepted", frame)
		}
	}
}

// --- wire-level client behaviour (scripted server, no enclave) ---

// serveWire runs a scripted protocol server on l; handle is invoked per
// connection with its 0-based index.
func serveWire(t *testing.T, l net.Listener, handle func(i int, conn net.Conn)) {
	t.Helper()
	go func() {
		for i := 0; ; i++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(i int, conn net.Conn) {
				defer conn.Close()
				handle(i, conn)
			}(i, conn)
		}
	}()
}

// decodeHandshake reads the client's attestMsg.
func decodeHandshake(conn net.Conn) (*attestMsg, error) {
	var msg attestMsg
	if err := gob.NewDecoder(conn).Decode(&msg); err != nil {
		return nil, err
	}
	return &msg, nil
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// fastRetry keeps test backoffs tiny.
func fastRetry(n int) []ClientOption {
	return []ClientOption{
		WithMaxRetries(n),
		WithBackoff(time.Millisecond, 8*time.Millisecond),
		WithDialTimeout(time.Second),
		WithRequestTimeout(2 * time.Second),
	}
}

// TestClientRetriesDialFailures: the first dials fail outright; the client
// backs off and eventually reaches the server.
func TestClientRetriesDialFailures(t *testing.T) {
	l := listen(t)
	serveWire(t, l, func(i int, conn net.Conn) {
		if _, err := decodeHandshake(conn); err != nil {
			return
		}
		writeResponse(conn, make([]byte, 32))
	})
	var dials atomic.Int32
	metrics := obs.NewRegistry()
	opts := append(fastRetry(4),
		WithClientMetrics(metrics),
		WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
			if dials.Add(1) <= 2 {
				return nil, fmt.Errorf("connect: connection refused")
			}
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}))
	c := NewTCPClient(l.Addr().String(), opts...)
	defer c.Close()
	pub, err := c.Attest(context.Background(), &sgx.Quote{}, make([]byte, 32))
	if err != nil {
		t.Fatalf("attest did not recover: %v", err)
	}
	if len(pub) != 32 {
		t.Fatalf("pub = %d bytes", len(pub))
	}
	if got := dials.Load(); got != 3 {
		t.Fatalf("dials = %d, want 3", got)
	}
	if got := metrics.Counter("client.attest_retries").Load(); got != 2 {
		t.Fatalf("retry counter = %d, want 2", got)
	}
}

// TestClientExhaustsRetryBudget: with the server down the client gives up
// after its budget with ErrServerUnavailable.
func TestClientExhaustsRetryBudget(t *testing.T) {
	var dials atomic.Int32
	opts := append(fastRetry(3), WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
		dials.Add(1)
		return nil, fmt.Errorf("connect: connection refused")
	}))
	c := NewTCPClient("127.0.0.1:1", opts...)
	defer c.Close()
	start := time.Now()
	_, err := c.Attest(context.Background(), &sgx.Quote{}, make([]byte, 32))
	if !errors.Is(err, ErrServerUnavailable) {
		t.Fatalf("err = %v, want ErrServerUnavailable", err)
	}
	if got := dials.Load(); got != 4 { // initial + 3 retries
		t.Fatalf("dials = %d, want 4", got)
	}
	// Backoff actually waited between attempts (3 sleeps of >= base/2).
	if elapsed := time.Since(start); elapsed < 1500*time.Microsecond {
		t.Fatalf("retries did not back off (%v elapsed)", elapsed)
	}
}

// TestClientDoesNotRetryRefusal: a server refusal is final — no retry
// budget is spent on it and the reason survives.
func TestClientDoesNotRetryRefusal(t *testing.T) {
	l := listen(t)
	serveWire(t, l, func(i int, conn net.Conn) {
		if _, err := decodeHandshake(conn); err != nil {
			return
		}
		writeErrorFrame(conn, "enclave measurement dead0000 is not the expected sanitized enclave")
	})
	var dials atomic.Int32
	opts := append(fastRetry(5), WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
		dials.Add(1)
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}))
	c := NewTCPClient(l.Addr().String(), opts...)
	defer c.Close()
	_, err := c.Attest(context.Background(), &sgx.Quote{}, make([]byte, 32))
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
	if errors.Is(err, ErrServerUnavailable) {
		t.Fatal("refusal misclassified as unavailability")
	}
	if !strings.Contains(err.Error(), "measurement") {
		t.Fatalf("reason lost: %v", err)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("dials = %d, want 1 (refusals must not be retried)", got)
	}
}

// TestRequestBeforeAttest: the typed protocol-state error.
func TestRequestBeforeAttest(t *testing.T) {
	c := NewTCPClient("127.0.0.1:1")
	defer c.Close()
	_, err := c.Request(context.Background(), []byte("x"))
	if !errors.Is(err, ErrNotAttested) {
		t.Fatalf("err = %v, want ErrNotAttested", err)
	}
}

// TestClientReconnectReplaysHandshake: the server drops the connection
// after attestation; the client's request transparently redials, replays
// the handshake (session resumption), and succeeds.
func TestClientReconnectReplaysHandshake(t *testing.T) {
	l := listen(t)
	var handshakes atomic.Int32
	serveWire(t, l, func(i int, conn net.Conn) {
		if _, err := decodeHandshake(conn); err != nil {
			return
		}
		handshakes.Add(1)
		writeResponse(conn, make([]byte, 32))
		if i == 0 {
			return // drop before answering any request
		}
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		writeResponse(conn, append([]byte("echo:"), req...))
	})
	c := NewTCPClient(l.Addr().String(), fastRetry(3)...)
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Attest(ctx, &sgx.Quote{}, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Request(ctx, []byte("payload"))
	if err != nil {
		t.Fatalf("request did not recover from the dropped connection: %v", err)
	}
	if string(resp) != "echo:payload" {
		t.Fatalf("resp = %q", resp)
	}
	if got := handshakes.Load(); got != 2 {
		t.Fatalf("handshakes = %d, want 2 (replay on reconnect)", got)
	}
}

// TestClientRecoversFromTruncatedResponse: a response torn mid-frame by a
// FaultConn is retried on a fresh connection.
func TestClientRecoversFromTruncatedResponse(t *testing.T) {
	l := listen(t)
	serveWire(t, l, func(i int, conn net.Conn) {
		if _, err := decodeHandshake(conn); err != nil {
			return
		}
		writeResponse(conn, make([]byte, 32))
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		writeResponse(conn, append([]byte("ok:"), req...))
	})
	var dials atomic.Int32
	opts := append(fastRetry(3), WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 1 {
			// First connection: tear the stream after the attest reply
			// (37 = frame header + status + 32-byte pub), mid-request.
			return NewFaultConn(conn).FailReadsAfter(37 + 5).Truncating(), nil
		}
		return conn, nil
	}))
	c := NewTCPClient(l.Addr().String(), opts...)
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Attest(ctx, &sgx.Quote{}, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Request(ctx, []byte("req"))
	if err != nil {
		t.Fatalf("request did not recover from truncation: %v", err)
	}
	if string(resp) != "ok:req" {
		t.Fatalf("resp = %q", resp)
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("dials = %d, want 2", got)
	}
}

// TestClientContextCancellation: a cancelled context stops the retry loop
// immediately with the context's error, not ErrServerUnavailable.
func TestClientContextCancellation(t *testing.T) {
	opts := []ClientOption{
		WithMaxRetries(1000),
		WithBackoff(50*time.Millisecond, time.Second),
		WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
			return nil, fmt.Errorf("connect: connection refused")
		}),
	}
	c := NewTCPClient("127.0.0.1:1", opts...)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Attest(ctx, &sgx.Quote{}, make([]byte, 32))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

// --- server robustness (real enclave restores) ---

// TestRestoreRecoversFromInjectedFaults is the end-to-end fault drill: the
// first two connections the runtime makes die mid-stream (one torn write
// during the handshake, one torn read during the channel), and the full
// enclave restore still completes through retry + session resumption.
func TestRestoreRecoversFromInjectedFaults(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca)
	if err != nil {
		t.Fatal(err)
	}
	l := listen(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx, l)

	var dials atomic.Int32
	opts := append(fastRetry(5), WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		switch dials.Add(1) {
		case 1:
			// Dies on its first handshake write.
			return NewFaultConn(conn).WithScript(FaultAction{Op: OpWrite, Fail: true}), nil
		case 2:
			// Handshake goes out, then the reply read dies.
			return NewFaultConn(conn).WithScript(FaultAction{Op: OpRead, Fail: true}), nil
		default:
			return conn, nil
		}
	}))
	client := NewTCPClient(l.Addr().String(), opts...)
	defer client.Close()
	encl, rt, err := p.Launch(h, client, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	code, err := encl.ECall("elide_restore", 0)
	if err != nil || code != RestoreOKServer {
		t.Fatalf("restore under fault injection: %d %v (runtime errs: %v)", code, err, rt.Errs())
	}
	if got, err := encl.ECall("ecall_compute", 9); err != nil || got != secretTransformGo(9) {
		t.Fatalf("compute after faulty restore: %v %v", got, err)
	}
	if got := dials.Load(); got < 3 {
		t.Fatalf("dials = %d, want >= 3 (two injected failures)", got)
	}
}

// TestRestoreGivesUpWhenServerGone: no listener at all — the restore fails
// with a clean enclave error code and the runtime ring holds
// ErrServerUnavailable.
func TestRestoreGivesUpWhenServerGone(t *testing.T) {
	_, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	client := NewTCPClient("127.0.0.1:1", fastRetry(2)...)
	defer client.Close()
	encl, rt, err := p.Launch(h, client, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	code, err := encl.ECall("elide_restore", 0)
	if err != nil {
		t.Fatalf("enclave crashed instead of failing cleanly: %v", err)
	}
	if code < 100 {
		t.Fatalf("restore claims success with no server: %d", code)
	}
	if !errors.Is(rt.LastErr(), ErrServerUnavailable) {
		t.Fatalf("LastErr = %v, want ErrServerUnavailable", rt.LastErr())
	}
}

// gateClient wraps a Client and pauses the first Request until released,
// so tests can hold a real attested session in flight deterministically.
type gateClient struct {
	inner   SecretChannel
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateClient(inner SecretChannel) *gateClient {
	return &gateClient{inner: inner, entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateClient) Attest(ctx context.Context, q *sgx.Quote, pub []byte) ([]byte, error) {
	return g.inner.Attest(ctx, q, pub)
}

func (g *gateClient) Request(ctx context.Context, enc []byte) ([]byte, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.inner.Request(ctx, enc)
}

func (g *gateClient) Close() error { return g.inner.Close() }

// TestGracefulShutdownDrainsInFlight: cancelling Serve's context while a
// restore is mid-protocol lets that session finish; only then does Serve
// return ErrServerClosed. New connections are refused immediately.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca, WithIOTimeout(10*time.Second), WithDrainTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	l := listen(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()

	tcp := NewTCPClient(l.Addr().String(), fastRetry(2)...)
	defer tcp.Close()
	gate := newGateClient(tcp)
	encl, rt, err := p.Launch(h, gate, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	restored := make(chan error, 1)
	go func() {
		code, err := encl.ECall("elide_restore", 0)
		if err == nil && code != RestoreOKServer {
			err = fmt.Errorf("restore code %d (runtime: %v)", code, rt.Errs())
		}
		restored <- err
	}()

	<-gate.entered // session attested, first channel request pending
	cancel()       // begin graceful shutdown with the session in flight

	select {
	case err := <-served:
		t.Fatalf("Serve returned %v with a session still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(gate.release) // let the restore finish against the draining server
	if err := <-restored; err != nil {
		t.Fatalf("in-flight restore failed during graceful shutdown: %v", err)
	}

	// New connections must be refused now.
	if conn, err := net.DialTimeout("tcp", l.Addr().String(), time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after shutdown began")
	}

	tcp.Close() // session ends; the server can finish draining
	select {
	case err := <-served:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the drained session closed")
	}
}

// TestShutdownForceClosesStragglers: a client that never finishes cannot
// hold shutdown beyond the drain window.
func TestShutdownForceClosesStragglers(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca, WithDrainTimeout(100*time.Millisecond), WithIOTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	l := listen(t)
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()

	// A connection that sends nothing, forever.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(50 * time.Millisecond) // let the server accept it
	cancel()
	select {
	case err := <-served:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain window did not force-close the straggler")
	}
}

// TestServerPanicContained: a panic while serving one session is recovered,
// reported to that client as an error frame, and the server keeps serving.
func TestServerPanicContained(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	metrics := obs.NewRegistry()
	srv, err := p.NewServerFor(ca, WithServerMetrics(metrics))
	if err != nil {
		t.Fatal(err)
	}
	var first atomic.Bool
	first.Store(true)
	srv.opt.onHandshake = func(*attestMsg) {
		if first.CompareAndSwap(true, false) {
			panic("poisoned session")
		}
	}
	l := listen(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx, l)

	// First session: panics server-side; the client sees a refusal-shaped
	// error, not a hang.
	c1 := NewTCPClient(l.Addr().String(), fastRetry(0)...)
	defer c1.Close()
	if _, err := c1.Attest(context.Background(), &sgx.Quote{}, make([]byte, 32)); err == nil {
		t.Fatal("attest succeeded against a panicking session")
	}

	// The server survived: a real restore on a fresh session succeeds.
	client := NewTCPClient(l.Addr().String(), fastRetry(2)...)
	defer client.Close()
	encl, rt, err := p.Launch(h, client, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	code, err := encl.ECall("elide_restore", 0)
	if err != nil || code != RestoreOKServer {
		t.Fatalf("restore after panic: %d %v (%v)", code, err, rt.Errs())
	}
	if got := metrics.Counter("server.panics").Load(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
}

// TestStress64ConcurrentRestores: 64 simultaneous attest+restore sessions
// against one server, squeezed through a 16-session semaphore. All client
// hosts share one tracer (as all sessions share the server's), so this
// also stresses concurrent span creation and restore-span synthesis. Run
// with -race in tier-1 verification.
func TestStress64ConcurrentRestores(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	srvTracer := obs.NewTracer(0)
	srv, err := p.NewServerFor(ca,
		WithMaxSessions(16), // < clients: accepts must queue on the semaphore
		WithServerMetrics(metrics),
		WithServerTracer(srvTracer),
	)
	if err != nil {
		t.Fatal(err)
	}
	l := listen(t)
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()

	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each client is its own machine under the same CA.
			platform, err := sgx.NewPlatform(sgx.Config{}, ca)
			if err != nil {
				errs <- err
				return
			}
			host := sdk.NewHost(platform)
			host.Tracer = tracer // deliberately shared across all 64 clients
			// Generous timeouts: with 64 CPU-heavy restores sharing few
			// cores, tight deadlines measure scheduler starvation, not
			// transport correctness.
			client := NewTCPClient(l.Addr().String(),
				WithMaxRetries(5),
				WithDialTimeout(30*time.Second),
				WithRequestTimeout(time.Minute),
				WithClientTracer(tracer),
			)
			defer client.Close()
			encl, rt, err := p.Launch(host, client, p.LocalFiles())
			if err != nil {
				errs <- err
				return
			}
			code, err := Restore(encl, 0)
			if err != nil || code != RestoreOKServer {
				errs <- fmt.Errorf("client %d: restore %d %v (%v)", i, code, err, rt.Errs())
				return
			}
			x := uint64(i) * 0x9E3779B9
			if got, err := encl.ECall("ecall_compute", x); err != nil || got != secretTransformGo(x) {
				errs <- fmt.Errorf("client %d: compute %v %v", i, got, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := metrics.Counter("server.sessions").Load(); got < clients {
		t.Fatalf("server saw %d sessions, want >= %d", got, clients)
	}
	if got := metrics.Counter("server.attest_ok").Load(); got < clients {
		t.Fatalf("attest_ok = %d, want >= %d", got, clients)
	}
	snap := metrics.Snapshot()
	if snap.Histograms["server.request_ns"].Count == 0 {
		t.Fatal("request latency histogram empty")
	}
	// Each client's trace must have synthesized its own restore span — the
	// synthesis filters the shared ring by trace ID, so a miscount here
	// means cross-client attribution under concurrency.
	restores := 0
	for _, r := range tracer.Completed() {
		if r.Name == "restore" {
			restores++
		}
	}
	if restores != clients {
		t.Fatalf("synthesized %d restore spans, want %d", restores, clients)
	}
	if got := len(srvTracer.Completed()); got < clients {
		t.Fatalf("server tracer recorded %d spans, want >= %d", got, clients)
	}
	cancel()
	select {
	case err := <-served:
		if !errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve = %v, want ErrServerClosed", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down after the stress run")
	}
}

// TestRuntimeErrRing: concurrent writers and readers on the runtime's
// error ring, and the ring's size bound.
func TestRuntimeErrRing(t *testing.T) {
	rt := &Runtime{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rt.recordErr(fmt.Errorf("worker %d error %d", i, j))
				rt.LastErr()
				rt.Errs()
			}
		}(i)
	}
	wg.Wait()
	errs := rt.Errs()
	if len(errs) != errRingCap {
		t.Fatalf("ring holds %d, want %d", len(errs), errRingCap)
	}
	if rt.LastErr() == nil {
		t.Fatal("LastErr lost the final error")
	}
	if rt.LastErr().Error() != errs[len(errs)-1].Error() {
		t.Fatal("LastErr is not the newest ring entry")
	}
}

// TestNewServerForOptions: the deployment helper forwards server options.
func TestNewServerForOptions(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	srv, err := p.NewServerFor(ca, WithMaxSessions(3))
	if err != nil {
		t.Fatal(err)
	}
	if srv.opt.maxSessions != 3 {
		t.Fatalf("maxSessions = %d", srv.opt.maxSessions)
	}
}
