package elide

import (
	"bytes"
	"context"
	"encoding/gob"
	"strings"
	"sync"
	"testing"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// killBeforeAttest kills a server the moment the client first tries to
// attest to it — the pool must walk to a replica inside the live restore
// run, so the failover switch happens mid-protocol, under one trace.
type killBeforeAttest struct {
	SecretChannel
	kill func()
	once sync.Once
}

func (k *killBeforeAttest) Attest(ctx context.Context, q *sgx.Quote, pub []byte) ([]byte, error) {
	k.once.Do(k.kill)
	return k.SecretChannel.Attest(ctx, q, pub)
}

// TestCrossProcessTraceFailoverE2E is the tentpole's acceptance scenario:
// a resilient restore against real TCP replicas, with the first replica
// dying mid-protocol, must yield ONE connected trace — the client's
// restore spans, the failover walk, and the surviving server's session
// spans all under the same trace ID — and a schema-valid audit stream
// whose security decisions carry that trace ID.
func TestCrossProcessTraceFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("enclave protocol run in -short")
	}
	ca, h := env(t)
	clientTracer := obs.NewTracer(0)
	clientTracer.SetService("client")
	h.Tracer = clientTracer
	h.Metrics = obs.NewRegistry()
	p := buildApp(t, h, SanitizeOptions{})

	audit := obs.NewAuditLog(0)
	srvTracer0 := obs.NewTracer(0)
	srvTracer0.SetService("server")
	srvTracer1 := obs.NewTracer(0)
	srvTracer1.SetService("server")
	srv0 := startKillable(t, p, ca, WithServerTracer(srvTracer0), WithServerAudit(audit))
	srv1 := startKillable(t, p, ca, WithServerTracer(srvTracer1), WithServerAudit(audit))

	fc, err := NewFailoverClient([]string{srv0.addr, srv1.addr},
		WithFailoverAudit(audit),
		WithBreakerCooldown(50*time.Millisecond),
		WithClientFactory(func(addr string) SecretChannel {
			c := NewTCPClient(addr, append(fastRetry(1), WithProtocolVersion(ProtoV1))...)
			if addr == srv0.addr {
				return &killBeforeAttest{SecretChannel: c, kill: srv0.kill}
			}
			return c
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	encl, rt, err := p.Launch(h, fc, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	rt.Audit = audit
	out, err := RestoreResilient(context.Background(), encl, rt, RestoreOptions{
		MaxAttempts: 3, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("resilient restore failed: %v (events %v)", err, out.Events)
	}
	if out.Code != RestoreOKServer {
		t.Fatalf("restore code = %d, want server restore", out.Code)
	}
	trace := out.LastTraceID()
	if trace == 0 {
		t.Fatal("restore produced no trace ID")
	}

	// Close the pool so the surviving server's session span completes, then
	// merge both hops' rings and cut out the final restore's trace.
	fc.Close()
	deadline := time.Now().Add(5 * time.Second)
	var merged []obs.SpanRecord
	for {
		merged = append(clientTracer.Completed(), srvTracer1.Completed()...)
		merged = append(merged, srvTracer0.Completed()...)
		if hasServerSession(merged, trace) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	spans := obs.FilterTrace(merged, trace)
	if !hasServerSession(spans, trace) {
		t.Fatalf("no server session span joined trace %d:\n%s", trace, obs.RenderTree(merged))
	}

	// Connectivity: every span in the trace must reach the elide_restore
	// root through parents that are themselves in the trace — one tree, no
	// orphans, across both processes.
	byID := make(map[uint64]obs.SpanRecord, len(spans))
	var root obs.SpanRecord
	for _, r := range spans {
		byID[r.SpanID] = r
		if r.ParentID == 0 {
			if root.SpanID != 0 {
				t.Fatalf("two roots in trace %d: %s and %s", trace, root.Name, r.Name)
			}
			root = r
		}
	}
	if root.Name != "elide_restore" {
		t.Fatalf("trace root = %q, want elide_restore", root.Name)
	}
	for _, r := range spans {
		seen := 0
		for cur := r; cur.ParentID != 0; {
			parent, ok := byID[cur.ParentID]
			if !ok {
				t.Fatalf("span %q (id %d) orphaned: parent %d not in trace\n%s",
					r.Name, r.SpanID, cur.ParentID, obs.RenderTree(spans))
			}
			cur = parent
			if seen++; seen > len(spans) {
				t.Fatal("parent cycle in trace")
			}
		}
	}

	// Both hops contributed to the one trace.
	svcs := map[string]bool{}
	for _, r := range spans {
		svcs[r.Svc] = true
	}
	if !svcs["client"] || !svcs["server"] {
		t.Fatalf("trace spans cover hops %v, want client and server", svcs)
	}

	// The rendered merged tree shows the cross-process nesting.
	tree := obs.RenderTree(spans)
	if !strings.Contains(tree, "[server]") || !strings.Contains(tree, "session") {
		t.Errorf("rendered tree lacks the server hop:\n%s", tree)
	}

	// Audit stream: schema-valid, and the security decisions of this
	// restore carry its trace ID.
	var buf bytes.Buffer
	if err := audit.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateAuditJSONL(bytes.NewReader(buf.Bytes())); err != nil || n == 0 {
		t.Fatalf("audit stream invalid: n=%d err=%v", n, err)
	}
	wantTraced := map[string]bool{
		obs.AuditAttestOK:       false, // the surviving replica's verdict
		obs.AuditFailoverSwitch: false, // the mid-protocol walk off srv0
		obs.AuditRestoreOK:      false, // the driver's terminal verdict
	}
	for _, ev := range audit.Recent(0) {
		if _, ok := wantTraced[ev.Type]; ok && ev.TraceID == trace {
			wantTraced[ev.Type] = true
		}
	}
	for typ, got := range wantTraced {
		if !got {
			t.Errorf("no %s audit event carries trace %d (events: %v)", typ, trace, audit.Counts())
		}
	}
}

// hasServerSession reports whether a server-hop session span for trace is
// present in recs.
func hasServerSession(recs []obs.SpanRecord, trace uint64) bool {
	for _, r := range recs {
		if r.TraceID == trace && r.Svc == "server" && r.Name == "session" {
			return true
		}
	}
	return false
}

// TestLegacyClientTracingSilentlyDisabled: a legacy client never offers
// trace context, so a tracing v1 server must self-root its session spans —
// interop works, the merged export just shows two unlinked trees.
func TestLegacyClientTracingSilentlyDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("enclave protocol run in -short")
	}
	ca, h := env(t)
	clientTracer := obs.NewTracer(0)
	clientTracer.SetService("client")
	h.Tracer = clientTracer
	h.Metrics = obs.NewRegistry()
	p := buildApp(t, h, SanitizeOptions{})
	addr, _, serverTracer := startTracedServer(t, p, ca)

	client := NewTCPClient(addr, fastRetry(2)...) // ProtoLegacy: no trace fields on the wire
	encl, rt, err := p.Launch(h, client, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	defer encl.Destroy()
	code, traceID, err := restoreTraced(encl, 0)
	if err != nil || code != RestoreOKServer {
		t.Fatalf("restore = %d, %v (runtime: %v)", code, err, rt.Errs())
	}
	if traceID == 0 {
		t.Fatal("client restore untraced")
	}
	client.Close()

	var session obs.SpanRecord
	var ok bool
	deadline := time.Now().Add(5 * time.Second)
	for {
		if session, ok = phaseRecord(serverTracer.Completed(), "session"); ok || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !ok {
		t.Fatal("no server session span")
	}
	if session.ParentID != 0 {
		t.Errorf("legacy client's session span has parent %d, want a self-rooted trace", session.ParentID)
	}
	if session.TraceID == traceID {
		t.Error("legacy handshake leaked the client's trace ID to the server")
	}
}

// legacyAttestMsg is the wire handshake as a pre-tracing server knew it:
// no TraceID/SpanID. Gob matches fields by name, so the compatibility
// contract — v1 clients interoperate with old servers and vice versa — is
// testable without an old binary.
type legacyAttestMsg struct {
	Quote     *sgx.Quote
	ClientPub []byte
	Proto     uint8
	Bundle    byte
	_         [6]byte
}

// TestHandshakeTraceFieldsGobCompat pins the negotiation mechanism both
// ways: a tracing client's handshake decodes cleanly on a legacy server
// (the trace fields are silently dropped), and a legacy handshake decodes
// on the current server with zero trace context (= "not tracing").
func TestHandshakeTraceFieldsGobCompat(t *testing.T) {
	quote := &sgx.Quote{}
	pub := make([]byte, 32)

	// New client -> old server: unknown fields dropped, payload intact.
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&attestMsg{
		Quote: quote, ClientPub: pub,
		TraceID: 0xabc, SpanID: 0xdef,
		Proto: ProtoV1, Bundle: bundleMeta | bundleData,
	})
	if err != nil {
		t.Fatal(err)
	}
	var old legacyAttestMsg
	if err := gob.NewDecoder(&buf).Decode(&old); err != nil {
		t.Fatalf("legacy server cannot decode a tracing handshake: %v", err)
	}
	if old.Proto != ProtoV1 || old.Bundle != bundleMeta|bundleData || len(old.ClientPub) != 32 {
		t.Errorf("legacy decode mangled the payload: %+v", old)
	}

	// Old client -> new server: absent fields decode as zero, which the
	// session-span logic reads as "peer not tracing".
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&legacyAttestMsg{Quote: quote, ClientPub: pub}); err != nil {
		t.Fatal(err)
	}
	var cur attestMsg
	if err := gob.NewDecoder(&buf).Decode(&cur); err != nil {
		t.Fatalf("current server cannot decode a legacy handshake: %v", err)
	}
	if cur.TraceID != 0 || cur.SpanID != 0 {
		t.Errorf("legacy handshake decoded with trace context %d/%d, want zero", cur.TraceID, cur.SpanID)
	}
	if len(cur.ClientPub) != 32 {
		t.Errorf("legacy decode lost the client key")
	}
}

// TestRuntimeHealthCheck covers the runtime side of the degraded /healthz
// satellite: a nonempty error ring flips the check, ClearErrs restores it.
func TestRuntimeHealthCheck(t *testing.T) {
	rt := &Runtime{}
	if err := rt.HealthCheck(); err != nil {
		t.Fatalf("fresh runtime unhealthy: %v", err)
	}
	rt.recordErr(ErrSealedCorrupt)
	if err := rt.HealthCheck(); err == nil {
		t.Fatal("runtime with ring errors reports healthy")
	}
	rt.ClearErrs()
	if err := rt.HealthCheck(); err != nil {
		t.Fatalf("cleared runtime still unhealthy: %v", err)
	}
}

// Quiet unused-import guard for sdk (used indirectly by helpers in other
// files of this package's tests).
var _ = sdk.GenerateECDHKeypair
