package elide

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sgx"
)

// fakeEndpoint is a scriptable per-endpoint Client for pool tests.
type fakeEndpoint struct {
	mu       sync.Mutex
	pub      []byte // returned by Attest when up
	down     bool
	attests  int
	requests int
	onReq    func(n int) error // overrides the request outcome for call n (1-based)
}

func (f *fakeEndpoint) Attest(_ context.Context, _ *sgx.Quote, _ []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attests++
	if f.down {
		return nil, &unavailableError{attempts: 1, last: errors.New("dial refused")}
	}
	return append([]byte(nil), f.pub...), nil
}

func (f *fakeEndpoint) Request(_ context.Context, _ []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.requests++
	if f.onReq != nil {
		if err := f.onReq(f.requests); err != nil {
			return nil, err
		}
	} else if f.down {
		return nil, &unavailableError{attempts: 1, last: errors.New("dial refused")}
	}
	return []byte("ok"), nil
}

func (f *fakeEndpoint) Close() error { return nil }

func (f *fakeEndpoint) setDown(d bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down = d
}

// newFakePool wires a FailoverClient over fake endpoints keyed "ep0",
// "ep1", ... with a tight breaker for tests.
func newFakePool(t *testing.T, eps []*fakeEndpoint, extra ...FailoverOption) (*FailoverClient, *obs.Registry) {
	t.Helper()
	metrics := obs.NewRegistry()
	addrs := make([]string, len(eps))
	byAddr := map[string]*fakeEndpoint{}
	for i, e := range eps {
		addrs[i] = "ep" + string(rune('0'+i))
		byAddr[addrs[i]] = e
	}
	opts := append([]FailoverOption{
		WithFailoverMetrics(metrics),
		WithBreakerThreshold(2),
		WithBreakerCooldown(20 * time.Millisecond),
		WithClientFactory(func(addr string) SecretChannel { return byAddr[addr] }),
	}, extra...)
	fc, err := NewFailoverClient(addrs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return fc, metrics
}

// TestBreakerStateMachine walks one endpoint through closed → open →
// half-open → closed and the failed-probe edge.
func TestBreakerStateMachine(t *testing.T) {
	pool := NewEndpointPool([]string{"a"},
		WithBreakerThreshold(2), WithBreakerCooldown(15*time.Millisecond))
	ep := pool.endpoints[0]

	if got := pool.pick(nil); got != ep {
		t.Fatal("closed endpoint not picked")
	}
	pool.record(ep, false, time.Millisecond)
	if ep.State() != BreakerClosed {
		t.Fatal("one failure tripped a threshold-2 breaker")
	}
	pool.record(ep, false, time.Millisecond)
	if ep.State() != BreakerOpen {
		t.Fatal("threshold failures did not trip the breaker")
	}
	if got := pool.pick(nil); got != nil {
		t.Fatal("open endpoint picked before cooldown")
	}

	time.Sleep(20 * time.Millisecond)
	probe := pool.pick(nil)
	if probe != ep || ep.State() != BreakerHalfOpen {
		t.Fatalf("cooldown expired but no half-open probe (state %d)", ep.State())
	}
	// Only one probe at a time.
	if got := pool.pick(nil); got != nil {
		t.Fatal("second probe admitted while one is in flight")
	}
	// Failed probe: straight back to open.
	pool.record(ep, false, time.Millisecond)
	if ep.State() != BreakerOpen {
		t.Fatal("failed probe did not reopen the breaker")
	}

	time.Sleep(20 * time.Millisecond)
	if got := pool.pick(nil); got != ep {
		t.Fatal("no second probe after the fresh cooldown")
	}
	pool.record(ep, true, time.Millisecond)
	if ep.State() != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if h := ep.Health(); h <= 0 || h > 1 {
		t.Fatalf("health EWMA out of range: %v", h)
	}
}

// TestPoolPickPrefersHealth: the pool ranks closed endpoints by success
// EWMA, so a flaky endpoint loses the election to a clean one.
func TestPoolPickPrefersHealth(t *testing.T) {
	pool := NewEndpointPool([]string{"a", "b"}, WithBreakerThreshold(10))
	a, b := pool.endpoints[0], pool.endpoints[1]
	pool.record(a, false, time.Millisecond) // a: health 0.7
	pool.record(b, true, time.Millisecond)  // b: health 1.0
	if got := pool.pick(nil); got != b {
		t.Fatalf("picked %q, want the healthier %q", got.Addr, b.Addr)
	}
	if got := pool.pick(map[*Endpoint]bool{b: true}); got != a {
		t.Fatal("exclusion not honoured")
	}
}

// TestFailoverAttest: the first endpoint is down; Attest lands on the
// replica and later Requests run there.
func TestFailoverAttest(t *testing.T) {
	ep0 := &fakeEndpoint{pub: []byte("pub0"), down: true}
	ep1 := &fakeEndpoint{pub: []byte("pub1")}
	fc, _ := newFakePool(t, []*fakeEndpoint{ep0, ep1})

	pub, err := fc.Attest(context.Background(), &sgx.Quote{}, []byte("cpub"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pub) != "pub1" {
		t.Fatalf("attested to %q, want pub1", pub)
	}
	if _, err := fc.Request(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if ep1.requests != 1 || ep0.requests != 0 {
		t.Fatalf("request routed wrong: ep0=%d ep1=%d", ep0.requests, ep1.requests)
	}
}

// TestFailoverAttestRefusalTerminal: a refusal is the server's answer, not
// an outage — no replica shopping.
func TestFailoverAttestRefusalTerminal(t *testing.T) {
	refused := false
	refuser := clientFunc{
		attest: func() ([]byte, error) { refused = true; return nil, &RefusedError{Msg: "bad quote"} },
	}
	replica := &fakeEndpoint{pub: []byte("pub1")}
	fc, err := NewFailoverClient([]string{"r", "ok"},
		WithClientFactory(func(addr string) SecretChannel {
			if addr == "r" {
				return refuser
			}
			return replica
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fc.Attest(context.Background(), &sgx.Quote{}, []byte("cpub"))
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
	if !refused {
		t.Fatal("refusing endpoint never consulted")
	}
	if replica.attests != 0 {
		t.Fatal("failover shopped a refusal to the replica")
	}
}

// clientFunc adapts closures to the Client interface.
type clientFunc struct {
	attest  func() ([]byte, error)
	request func() ([]byte, error)
}

func (c clientFunc) Close() error { return nil }

func (c clientFunc) Attest(context.Context, *sgx.Quote, []byte) ([]byte, error) {
	return c.attest()
}

func (c clientFunc) Request(context.Context, []byte) ([]byte, error) {
	if c.request == nil {
		return nil, ErrNotAttested
	}
	return c.request()
}

// TestFailoverSessionLost: the attested endpoint dies mid-protocol; the
// replica re-attests with a *different* server key, so the in-flight
// session is unrecoverable and Request reports ErrSessionLost.
func TestFailoverSessionLost(t *testing.T) {
	ep0 := &fakeEndpoint{pub: []byte("pub0")}
	ep1 := &fakeEndpoint{pub: []byte("pub1")} // different key: fresh session
	fc, metrics := newFakePool(t, []*fakeEndpoint{ep0, ep1})

	if _, err := fc.Attest(context.Background(), &sgx.Quote{}, []byte("cpub")); err != nil {
		t.Fatal(err)
	}
	ep0.setDown(true)
	_, err := fc.Request(context.Background(), []byte("x"))
	if !errors.Is(err, ErrSessionLost) {
		t.Fatalf("err = %v, want ErrSessionLost", err)
	}
	if ep1.attests != 1 {
		t.Fatalf("replica re-attested %d times, want 1", ep1.attests)
	}
	snap := metrics.Snapshot()
	if snap.Counters["failover.session_lost"] != 1 {
		t.Fatalf("session_lost counter = %d, want 1", snap.Counters["failover.session_lost"])
	}
	if snap.Counters["failover.switches"] == 0 {
		t.Fatal("no failover switch counted")
	}
}

// TestFailoverSessionResumed: when the replica returns the *same* server
// key (shared resume cache), the channel survives and the request is
// retried there transparently.
func TestFailoverSessionResumed(t *testing.T) {
	shared := []byte("shared-pub")
	ep0 := &fakeEndpoint{pub: shared}
	ep1 := &fakeEndpoint{pub: shared}
	fc, _ := newFakePool(t, []*fakeEndpoint{ep0, ep1})

	if _, err := fc.Attest(context.Background(), &sgx.Quote{}, []byte("cpub")); err != nil {
		t.Fatal(err)
	}
	ep0.setDown(true)
	out, err := fc.Request(context.Background(), []byte("x"))
	if err != nil {
		t.Fatalf("resumed request failed: %v", err)
	}
	if string(out) != "ok" {
		t.Fatalf("resumed request returned %q", out)
	}
	if ep1.requests != 1 {
		t.Fatalf("replica served %d requests, want 1", ep1.requests)
	}
}

// TestFailoverAllEndpointsDown: exhausting the pool yields
// ErrServerUnavailable, and the breakers have tripped.
func TestFailoverAllEndpointsDown(t *testing.T) {
	ep0 := &fakeEndpoint{pub: []byte("p0"), down: true}
	ep1 := &fakeEndpoint{pub: []byte("p1"), down: true}
	fc, metrics := newFakePool(t, []*fakeEndpoint{ep0, ep1})
	_, err := fc.Attest(context.Background(), &sgx.Quote{}, []byte("cpub"))
	if !errors.Is(err, ErrServerUnavailable) {
		t.Fatalf("err = %v, want ErrServerUnavailable", err)
	}
	if metrics.Snapshot().Counters["failover.exhausted"] == 0 {
		t.Fatal("exhaustion not counted")
	}
}

// killableServer runs one real TCP auth server that the test can kill.
type killableServer struct {
	addr   string
	cancel context.CancelFunc
	served chan error
}

func startKillable(t *testing.T, p *Protected, ca *sgx.CA, opts ...ServerOption) *killableServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return startKillableOn(t, p, ca, l, opts...)
}

// startKillableOn is startKillable over a pre-created listener, for
// replicated fleets where every peer's address must exist before any
// server is constructed.
func startKillableOn(t *testing.T, p *Protected, ca *sgx.CA, l net.Listener, opts ...ServerOption) *killableServer {
	t.Helper()
	srv, err := p.NewServerFor(ca, append([]ServerOption{WithDrainTimeout(50 * time.Millisecond)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ks := &killableServer{addr: l.Addr().String(), cancel: cancel, served: make(chan error, 1)}
	go func() { ks.served <- srv.Serve(ctx, l) }()
	t.Cleanup(ks.kill)
	return ks
}

func (ks *killableServer) kill() {
	if ks.cancel == nil {
		return
	}
	ks.cancel()
	ks.cancel = nil
	<-ks.served
}

// killOnFirstRequest passes Attest through and kills a server just before
// the first channel request — the exact window between Attest and
// REQUEST_META that ad-hoc timing cannot hit deterministically.
type killOnFirstRequest struct {
	SecretChannel
	kill func()
	once sync.Once
}

func (k *killOnFirstRequest) Request(ctx context.Context, enc []byte) ([]byte, error) {
	k.once.Do(k.kill)
	return k.SecretChannel.Request(ctx, enc)
}

// TestReplicaTakeoverMidProtocol is the end-to-end survivability scenario:
// the attested server dies between Attest and REQUEST_META, the failover
// client re-attests to a replica whose resume cache has never seen the
// session (fresh server key → ErrSessionLost), and the resilient restore
// classifies that as retryable and completes the protocol against the
// replica on the next run.
func TestReplicaTakeoverMidProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("enclave protocol run in -short")
	}
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	srv0 := startKillable(t, p, ca)
	srv1 := startKillable(t, p, ca)

	metrics := obs.NewRegistry()
	fc, err := NewFailoverClient([]string{srv0.addr, srv1.addr},
		WithFailoverMetrics(metrics),
		WithBreakerCooldown(50*time.Millisecond),
		WithClientFactory(func(addr string) SecretChannel {
			c := NewTCPClient(addr, fastRetry(1)...)
			if addr == srv0.addr {
				return &killOnFirstRequest{SecretChannel: c, kill: srv0.kill}
			}
			return c
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	encl, rt, err := p.Launch(h, fc, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	out, err := RestoreResilient(context.Background(), encl, rt, RestoreOptions{
		MaxAttempts: 3, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("resilient restore failed: %v (events %v)", err, out.Events)
	}
	if out.Code != RestoreOKServer || out.Source != "server" {
		t.Fatalf("outcome = code %d source %q, want server restore", out.Code, out.Source)
	}
	if out.Attempts < 2 {
		t.Fatalf("restore recovered in %d attempt(s); the kill never bit", out.Attempts)
	}
	lost := false
	for _, e := range out.Events {
		if errors.Is(e, ErrSessionLost) {
			lost = true
		}
	}
	if !lost {
		t.Fatalf("no ErrSessionLost among events %v", out.Events)
	}
	if metrics.Snapshot().Counters["failover.session_lost"] == 0 {
		t.Fatal("session_lost not counted")
	}
	// The restored enclave must actually compute.
	if got, err := encl.ECall("ecall_compute", 99); err != nil || got != secretTransformGo(99) {
		t.Fatalf("post-takeover compute = %d, %v", got, err)
	}
}

// TestFailoverResumeOnPeer is the replicated counterpart of
// TestReplicaTakeoverMidProtocol: with resume replication on, the attested
// server dies between Attest and REQUEST_META, the failover client lands
// on a replica that already holds the session, and the protocol completes
// in ONE attempt with ZERO attestation flights on the replica — no
// ErrSessionLost, no silent downgrade to full re-attestation.
func TestFailoverResumeOnPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("enclave protocol run in -short")
	}
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	l0, l1 := listen(t), listen(t)
	key := bytes.Repeat([]byte{0x33}, 32)
	m0, m1 := obs.NewRegistry(), obs.NewRegistry()
	srv0 := startKillableOn(t, p, ca, l0,
		WithServerMetrics(m0), WithResumeReplication(key, l1.Addr().String()))
	startKillableOn(t, p, ca, l1,
		WithServerMetrics(m1), WithResumeReplication(key, l0.Addr().String()))

	// Kill the attested replica only once its session has demonstrably
	// replicated — the zero-extra-flights assertion must not race the
	// async push.
	killAfterReplicated := func() {
		waitCounter(t, m1, "server.resume_replicated", 1)
		srv0.kill()
	}

	metrics := obs.NewRegistry()
	fc, err := NewFailoverClient([]string{srv0.addr, l1.Addr().String()},
		WithFailoverMetrics(metrics),
		WithBreakerCooldown(50*time.Millisecond),
		WithClientFactory(func(addr string) SecretChannel {
			c := NewTCPClient(addr, fastRetry(1)...)
			if addr == srv0.addr {
				return &killOnFirstRequest{SecretChannel: c, kill: killAfterReplicated}
			}
			return c
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	encl, rt, err := p.Launch(h, fc, p.LocalFiles())
	if err != nil {
		t.Fatal(err)
	}
	out, err := RestoreResilient(context.Background(), encl, rt, RestoreOptions{
		MaxAttempts: 3, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("resilient restore failed: %v (events %v)", err, out.Events)
	}
	if out.Attempts != 1 {
		t.Fatalf("restore took %d attempts (events %v); a replicated resume must survive the kill within one", out.Attempts, out.Events)
	}
	for _, e := range out.Events {
		if errors.Is(e, ErrSessionLost) {
			t.Fatalf("session lost despite replication: %v", out.Events)
		}
	}
	if got := m1.Counter("server.attest_resumed").Load(); got < 1 {
		t.Fatalf("replica attest_resumed = %d, want >= 1", got)
	}
	if got := m1.Counter("server.attest_ok").Load(); got != 0 {
		t.Fatalf("replica ran %d full attestation flights, want 0", got)
	}
	if metrics.Snapshot().Counters["failover.session_resumed"] == 0 {
		t.Fatal("failover.session_resumed not counted")
	}
	if got, err := encl.ECall("ecall_compute", 99); err != nil || got != secretTransformGo(99) {
		t.Fatalf("post-takeover compute = %d, %v", got, err)
	}
}
