package elide

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// FileStore is the untrusted "disk" holding the enclave's secret files:
// enclave.secret.data (the encrypted secret, local-data mode) and
// enclave.secret.sealed (written by the sealing extension).
type FileStore struct {
	SecretData []byte // enclave.secret.data
	Sealed     []byte // enclave.secret.sealed
}

// errRingCap bounds the runtime's recent-error ring.
const errRingCap = 16

// Runtime is the untrusted half of SgxElide: it services the ocalls the
// trusted restorer makes (server requests, file I/O, QE target lookup).
// Installing it and calling elide_restore is all a developer adds (§3.4).
type Runtime struct {
	Client SecretChannel
	Files  *FileStore

	// Ctx, when set (LaunchContext sets it), is the context the runtime
	// passes to every Client call made from an ocall handler — ocalls
	// themselves have no context parameter, so cancellation and deadlines
	// flow in from the launch site through here.
	Ctx context.Context

	// Metrics, when set, receives ocall-path counters and latencies.
	Metrics *obs.Registry

	// Audit, when set, receives the security-relevant events the trusted
	// restorer reports through the error ring (sealed-blob corruption,
	// torn restores, degradation to the local file), each stamped with the
	// trace of the restore that hit it.
	Audit *obs.AuditLog

	// Recent errors, guarded: ocall handlers run on whichever goroutine
	// drives the ecall, so diagnostics must be safe to read concurrently.
	mu   sync.Mutex
	errs []error // newest last, capped at errRingCap

	// chanReqs counts encrypted channel requests since the last
	// attestation (guarded by mu). The runtime cannot read the request
	// byte — it is encrypted — but the paper's protocol is strictly
	// ordered, so position names the phase: the first request after an
	// attest is REQUEST_META, the second is REQUEST_DATA.
	chanReqs int
}

// RestorePhases lists the restore pipeline's phase span names in protocol
// order: the names a traced launch records (request_data covers both the
// remote fetch and the local-file read; seal appears only with
// FlagSealAfter).
var RestorePhases = []string{"attest", "request_meta", "request_data", "decrypt", "restore", "seal"}

// recordErr appends to the error ring (oldest entries fall off).
func (rt *Runtime) recordErr(err error) {
	rt.Metrics.Counter("runtime.errors").Inc()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.errs = append(rt.errs, err)
	if len(rt.errs) > errRingCap {
		rt.errs = rt.errs[len(rt.errs)-errRingCap:]
	}
}

// LastErr returns the most recent client/server error for diagnostics
// (the enclave only sees a failure code, as it would in the real system).
func (rt *Runtime) LastErr() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.errs) == 0 {
		return nil
	}
	return rt.errs[len(rt.errs)-1]
}

// Errs returns the recent-error ring, oldest first.
func (rt *Runtime) Errs() []error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]error(nil), rt.errs...)
}

// ctx returns the runtime's base context.
func (rt *Runtime) ctx() context.Context {
	if rt.Ctx != nil {
		return rt.Ctx
	}
	return context.Background()
}

// Install registers the SgxElide ocalls with the untrusted runtime.
func (rt *Runtime) Install(h *sdk.Host) {
	if rt.Files == nil {
		rt.Files = &FileStore{}
	}

	h.RegisterOcall("elide_server_request", func(c *sdk.OcallContext) (uint64, error) {
		defer rt.Metrics.Observe("runtime.server_request_ns", time.Now())
		rt.Metrics.Counter("runtime.server_requests").Inc()
		req := c.Arg(0)
		inlen := int(c.Arg(2))
		in := c.ArgBytes(1, inlen)
		cap := int(c.Arg(4))
		var resp []byte
		switch req {
		case ReqAttest:
			resp = rt.doAttest(c, h, in)
		case ReqChannel:
			resp = rt.doChannelRequest(c, in)
		default:
			return 0, nil
		}
		if resp == nil {
			return 0, nil
		}
		if len(resp) > cap {
			resp = resp[:cap]
		}
		c.SetArgBytes(3, resp)
		return uint64(len(resp)), nil
	})

	h.RegisterOcall("elide_read_file", func(c *sdk.OcallContext) (uint64, error) {
		var file []byte
		var span *obs.Span
		switch c.Arg(0) {
		case 0:
			file = rt.Files.SecretData
			// In local-data mode the file read *is* the data-acquisition
			// phase, so it gets the protocol phase name.
			span = c.Span().Child("request_data")
			span.SetStr("source", "local")
		case 1:
			file = rt.Files.Sealed
			span = c.Span().Child("read_sealed")
		default:
			return 0, nil
		}
		defer span.End()
		if file == nil {
			span.SetStr("status", "missing")
			return 0, nil
		}
		span.SetInt("bytes", int64(len(file)))
		cap := int(c.Arg(2))
		n := len(file)
		if n > cap {
			n = cap
		}
		c.SetArgBytes(1, file[:n])
		return uint64(len(file)), nil
	})

	h.RegisterOcall("elide_write_file", func(c *sdk.OcallContext) (uint64, error) {
		span := c.Span().Child("seal")
		defer span.End()
		n := int(c.Arg(1))
		span.SetInt("bytes", int64(n))
		rt.Files.Sealed = append([]byte(nil), c.ArgBytes(0, n)...)
		return 0, nil
	})

	h.RegisterOcall("elide_qe_target", func(c *sdk.OcallContext) (uint64, error) {
		ti := sgx.QETargetInfo()
		c.SetArgBytes(0, ti[:])
		return 0, nil
	})

	h.RegisterOcall("elide_report", func(c *sdk.OcallContext) (uint64, error) {
		rt.handleReport(c, c.Arg(0))
		return 0, nil
	})
}

// handleReport services the elide_report ocall: the trusted restorer's
// diagnostic channel. Codes become typed errors in the runtime's error
// ring — the enclave's single return code cannot say *why* it degraded,
// so this is how "sealed blob corrupt, fell back to the server" or "torn
// restore detected" reach the operator.
func (rt *Runtime) handleReport(c *sdk.OcallContext, code uint64) {
	span := c.Span().Child("report")
	defer span.End()
	span.SetInt("code", int64(code))
	trace := c.Span().TraceID()
	switch code {
	case ReportSealedCorrupt:
		span.SetStr("event", "sealed_corrupt")
		rt.Metrics.Counter("runtime.sealed_corrupt").Inc()
		rt.Audit.Emit(obs.AuditEvent{Type: obs.AuditSealedCorrupt, TraceID: trace, Detail: "sealed blob failed authentication"})
		rt.recordErr(ErrSealedCorrupt)
	case ReportTornRestore:
		span.SetStr("event", "torn_restore")
		rt.Metrics.Counter("runtime.torn_restores").Inc()
		rt.Audit.Emit(obs.AuditEvent{Type: obs.AuditTornRestore, TraceID: trace, Detail: "restored text hash mismatch"})
		rt.recordErr(ErrTornRestore)
	case ReportDegradedLocal:
		span.SetStr("event", "degraded_local")
		rt.Metrics.Counter("runtime.degraded_local").Inc()
		rt.Audit.Emit(obs.AuditEvent{Type: obs.AuditDegradedLocal, TraceID: trace, Detail: "remote data unavailable, using encrypted local file"})
		rt.recordErr(ErrRemoteDataUnavailable)
	default:
		span.SetStr("event", "unknown")
		rt.recordErr(fmt.Errorf("elide: unknown enclave report code %d", code))
	}
}

// HealthCheck reports the runtime degraded while its recent-error ring is
// nonempty — a /healthz readiness source for long-running hosts. Clear
// the ring with ClearErrs after the operator has acted on the errors.
func (rt *Runtime) HealthCheck() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if n := len(rt.errs); n > 0 {
		return fmt.Errorf("%d recent runtime errors, last: %v", n, rt.errs[n-1])
	}
	return nil
}

// ClearErrs empties the recent-error ring (the operator acknowledged the
// errors; HealthCheck goes green again).
func (rt *Runtime) ClearErrs() {
	rt.mu.Lock()
	rt.errs = nil
	rt.mu.Unlock()
}

// doAttest services a ReqAttest server request under the "attest" phase
// span: quote the local report, forward it to the authentication server,
// and return the server's channel public key (nil on failure — the
// enclave sees only the short read, as it would in the real system).
func (rt *Runtime) doAttest(c *sdk.OcallContext, h *sdk.Host, in []byte) (resp []byte) {
	span := c.Span().Child("attest")
	defer span.End()
	rt.mu.Lock()
	rt.chanReqs = 0 // a (re)attestation restarts the protocol sequence
	rt.mu.Unlock()
	if len(in) != sdk.ReportBlobSize+32 {
		span.SetError(fmt.Errorf("short attest payload (%d bytes)", len(in)))
		return nil
	}
	report := sdk.UnmarshalReport(in[:sdk.ReportBlobSize])
	clientPub := in[sdk.ReportBlobSize:]
	// The untrusted runtime asks the platform's quoting enclave to turn
	// the local report into a quote, then forwards it.
	quote, err := h.Platform.QuoteReport(report)
	if err != nil {
		rt.recordErr(err)
		span.SetError(err)
		return nil
	}
	resp, err = rt.Client.Attest(obs.ContextWithSpan(rt.ctx(), span), quote, clientPub)
	if err != nil {
		rt.recordErr(&PhaseError{Phase: "attest", Err: err})
		span.SetError(err)
		return nil
	}
	return resp
}

// doChannelRequest services a ReqChannel server request. The payload is
// opaque (encrypted), so the phase name comes from the protocol position:
// first request after attestation = request_meta, later = request_data.
func (rt *Runtime) doChannelRequest(c *sdk.OcallContext, in []byte) []byte {
	rt.mu.Lock()
	rt.chanReqs++
	seq := rt.chanReqs
	rt.mu.Unlock()
	name := "request_data"
	if seq == 1 {
		name = "request_meta"
	}
	span := c.Span().Child(name)
	defer span.End()
	span.SetStr("source", "server")
	resp, err := rt.Client.Request(obs.ContextWithSpan(rt.ctx(), span), in)
	if err != nil {
		rt.recordErr(&PhaseError{Phase: name, Err: err})
		span.SetError(err)
		return nil
	}
	return resp
}
