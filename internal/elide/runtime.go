package elide

import (
	"context"
	"sync"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// FileStore is the untrusted "disk" holding the enclave's secret files:
// enclave.secret.data (the encrypted secret, local-data mode) and
// enclave.secret.sealed (written by the sealing extension).
type FileStore struct {
	SecretData []byte // enclave.secret.data
	Sealed     []byte // enclave.secret.sealed
}

// errRingCap bounds the runtime's recent-error ring.
const errRingCap = 16

// Runtime is the untrusted half of SgxElide: it services the ocalls the
// trusted restorer makes (server requests, file I/O, QE target lookup).
// Installing it and calling elide_restore is all a developer adds (§3.4).
type Runtime struct {
	Client Client
	Files  *FileStore

	// Ctx, when set (LaunchContext sets it), is the context the runtime
	// passes to every Client call made from an ocall handler — ocalls
	// themselves have no context parameter, so cancellation and deadlines
	// flow in from the launch site through here.
	Ctx context.Context

	// Metrics, when set, receives ocall-path counters and latencies.
	Metrics *obs.Registry

	// Recent errors, guarded: ocall handlers run on whichever goroutine
	// drives the ecall, so diagnostics must be safe to read concurrently.
	mu   sync.Mutex
	errs []error // newest last, capped at errRingCap
}

// recordErr appends to the error ring (oldest entries fall off).
func (rt *Runtime) recordErr(err error) {
	rt.Metrics.Counter("runtime.errors").Inc()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.errs = append(rt.errs, err)
	if len(rt.errs) > errRingCap {
		rt.errs = rt.errs[len(rt.errs)-errRingCap:]
	}
}

// LastErr returns the most recent client/server error for diagnostics
// (the enclave only sees a failure code, as it would in the real system).
func (rt *Runtime) LastErr() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.errs) == 0 {
		return nil
	}
	return rt.errs[len(rt.errs)-1]
}

// Errs returns the recent-error ring, oldest first.
func (rt *Runtime) Errs() []error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]error(nil), rt.errs...)
}

// ctx returns the runtime's base context.
func (rt *Runtime) ctx() context.Context {
	if rt.Ctx != nil {
		return rt.Ctx
	}
	return context.Background()
}

// Install registers the SgxElide ocalls with the untrusted runtime.
func (rt *Runtime) Install(h *sdk.Host) {
	if rt.Files == nil {
		rt.Files = &FileStore{}
	}

	h.RegisterOcall("elide_server_request", func(c *sdk.OcallContext) (uint64, error) {
		defer rt.Metrics.Observe("runtime.server_request_ns", time.Now())
		rt.Metrics.Counter("runtime.server_requests").Inc()
		req := c.Arg(0)
		inlen := int(c.Arg(2))
		in := c.ArgBytes(1, inlen)
		cap := int(c.Arg(4))
		ctx := rt.ctx()
		var resp []byte
		switch req {
		case ReqAttest:
			if len(in) != sdk.ReportBlobSize+32 {
				return 0, nil
			}
			report := sdk.UnmarshalReport(in[:sdk.ReportBlobSize])
			clientPub := in[sdk.ReportBlobSize:]
			// The untrusted runtime asks the platform's quoting enclave to
			// turn the local report into a quote, then forwards it.
			quote, err := h.Platform.QuoteReport(report)
			if err != nil {
				rt.recordErr(err)
				return 0, nil
			}
			resp, err = rt.Client.Attest(ctx, quote, clientPub)
			if err != nil {
				rt.recordErr(err)
				return 0, nil
			}
		case ReqChannel:
			var err error
			resp, err = rt.Client.Request(ctx, in)
			if err != nil {
				rt.recordErr(err)
				return 0, nil
			}
		default:
			return 0, nil
		}
		if len(resp) > cap {
			resp = resp[:cap]
		}
		c.SetArgBytes(3, resp)
		return uint64(len(resp)), nil
	})

	h.RegisterOcall("elide_read_file", func(c *sdk.OcallContext) (uint64, error) {
		var file []byte
		switch c.Arg(0) {
		case 0:
			file = rt.Files.SecretData
		case 1:
			file = rt.Files.Sealed
		default:
			return 0, nil
		}
		if file == nil {
			return 0, nil
		}
		cap := int(c.Arg(2))
		n := len(file)
		if n > cap {
			n = cap
		}
		c.SetArgBytes(1, file[:n])
		return uint64(len(file)), nil
	})

	h.RegisterOcall("elide_write_file", func(c *sdk.OcallContext) (uint64, error) {
		n := int(c.Arg(1))
		rt.Files.Sealed = append([]byte(nil), c.ArgBytes(0, n)...)
		return 0, nil
	})

	h.RegisterOcall("elide_qe_target", func(c *sdk.OcallContext) (uint64, error) {
		ti := sgx.QETargetInfo()
		c.SetArgBytes(0, ti[:])
		return 0, nil
	})
}
