package elide

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"sync"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// SWIM-style fleet membership (DESIGN §15): the static `-peers` list
// becomes seeds of a self-maintaining mesh. Every gossip interval a
// server probes one random member over the existing framed peer link —
// the ping payload is a full membership summary sealed under the fleet
// key, and the ack carries the receiver's summary back, so dissemination
// piggybacks on failure detection and any one live seed bootstraps the
// whole member set. A member that fails its direct probe is probed
// indirectly through up to two other members (ping-req); if those fail
// too it turns suspect, and an unrefuted suspicion past the suspect
// timeout turns dead. Incarnation numbers make the state machine
// self-healing: a falsely suspected member learns of the suspicion from
// the next delta it receives and refutes it by re-announcing itself with
// a bumped incarnation, and a restarted member rejoins the same way
// (incarnations are seeded from the boot clock, so a restart always
// out-bids its previous life).
//
// Rides on the mesh:
//
//   - anti-entropy: each round a server exchanges a digest of its resume
//     bindings with one random live member and adopts the fleet-key-
//     wrapped records it lacks — a cold-started replica converges on the
//     fleet's session state in a bounded number of rounds instead of
//     relying on per-miss fetches.
//   - churn-aware clients: a client can ask any gossip-enabled server
//     for the current member list (a v1-negotiated query, no fleet key
//     involved) and resize its failover pool to match the fleet.
//
// Wire security: membership deltas, ping-req targets, and digests cross
// the inter-server wire sealed under the fleet key — a node outside the
// fleet can neither forge a death certificate nor enumerate the mesh.
// The client-facing member list is plaintext: it carries topology only
// (addresses a client could learn anyway), never key material.

// peerLinkMembers marks an attestMsg as a client membership query: the
// server answers with its current member list and closes. Distinct from
// peerLinkResume, which opens a long-lived replication link.
const peerLinkMembers uint8 = 2

// Membership frame opcodes on the replication link (3+ so a PR 9 binary
// answers them with its existing unknown-op refusal and the link
// survives — mixed-version fleets degrade to static replication).
const (
	peerOpPing    byte = 3 // payload: sealed member summary; reply: sealed receiver summary
	peerOpPingReq byte = 4 // payload: sealed target addr; reply: empty ack or refusal
	peerOpDigest  byte = 5 // payload: sealed binding digest; reply: records the sender lacks
)

// memberWireVersion versions the member-list encoding (both the sealed
// gossip form and the plaintext client form).
const memberWireVersion = 1

// maxWireMembers bounds a decoded member list — a hostile frame must not
// balloon into an unbounded allocation.
const maxWireMembers = 4096

// antiEntropyBatch caps records transferred per digest exchange; a far-
// behind replica converges over several rounds instead of one huge frame.
const antiEntropyBatch = 256

// deadProbeEvery: every Nth gossip round one random dead member is
// probed. This is the partition-heal path — two halves that declared
// each other dead rediscover each other without operator action.
const deadProbeEvery = 4

// MemberStatus is a member's place in the SWIM alive→suspect→dead state
// machine.
type MemberStatus uint8

const (
	MemberAlive   MemberStatus = iota // answering probes (or vouched for by the mesh)
	MemberSuspect                     // direct and indirect probes failed; awaiting refutation
	MemberDead                        // suspicion expired unrefuted
)

func (s MemberStatus) String() string {
	switch s {
	case MemberAlive:
		return "alive"
	case MemberSuspect:
		return "suspect"
	case MemberDead:
		return "dead"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Member is one fleet member as the mesh currently sees it.
type Member struct {
	Addr        string
	Incarnation uint64
	Status      MemberStatus
}

// memberState is the tracked state of one remote member.
type memberState struct {
	inc       uint64
	status    MemberStatus
	suspectAt time.Time // when the current suspicion started
}

// membership is the SWIM state machine: the local view of the fleet plus
// the precedence rules that merge remote views into it. It owns no I/O —
// the gossiper drives it.
type membership struct {
	self    string
	metrics *obs.Registry
	audit   *obs.AuditLog

	// onAlive/onDead feed transitions to the replicator so the push peer
	// set tracks the mesh (assigned at construction, never changed —
	// safe to call without mu held).
	onAlive func(addr string)
	onDead  func(addr string)

	mu      sync.Mutex
	selfInc uint64
	members map[string]*memberState
}

func newMembership(self string, seeds []string, metrics *obs.Registry, audit *obs.AuditLog) *membership {
	m := &membership{
		self: self,
		// Seeding the incarnation from the boot clock means a restarted
		// member always announces itself with a higher incarnation than
		// its previous life, so its rejoin out-bids any stale suspect or
		// dead entry the mesh still holds for it.
		selfInc: uint64(time.Now().UnixNano()),
		members: make(map[string]*memberState),
		metrics: metrics,
		audit:   audit,
	}
	for _, s := range seeds {
		if s == self || s == "" {
			continue
		}
		m.members[s] = &memberState{status: MemberAlive}
	}
	return m
}

// snapshot returns the full local view — self first, then every tracked
// member (dead ones included: clients use them to shrink their pools,
// and the gossip layer uses them to suppress stale resurrections).
func (m *membership) snapshot() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.members)+1)
	out = append(out, Member{Addr: m.self, Incarnation: m.selfInc, Status: MemberAlive})
	for addr, st := range m.members {
		out = append(out, Member{Addr: addr, Incarnation: st.inc, Status: st.status})
	}
	sort.Slice(out[1:], func(i, j int) bool { return out[i+1].Addr < out[j+1].Addr })
	return out
}

// merge folds a remote view into the local one under SWIM precedence:
// alive{i} beats alive/suspect{j} iff i > j; suspect{i} beats alive{j}
// iff i >= j and suspect{j} iff i > j; dead{i} beats alive/suspect{j}
// iff i >= j and is final until a strictly higher alive (a restart).
// An entry about self that is not alive is a suspicion to refute: self
// re-announces with an incarnation above the accuser's.
func (m *membership) merge(remote []Member) {
	m.mu.Lock()
	var revived, died, joined []string
	refuted := false
	for _, e := range remote {
		if e.Addr == "" {
			continue
		}
		if e.Addr == m.self {
			if e.Status != MemberAlive && e.Incarnation >= m.selfInc {
				m.selfInc = e.Incarnation + 1
				refuted = true
			}
			continue
		}
		st, ok := m.members[e.Addr]
		if !ok {
			st = &memberState{inc: e.Incarnation, status: e.Status}
			if e.Status == MemberSuspect {
				st.suspectAt = time.Now()
			}
			m.members[e.Addr] = st
			if e.Status != MemberDead {
				joined = append(joined, e.Addr)
			}
			continue
		}
		switch e.Status {
		case MemberAlive:
			if e.Incarnation > st.inc {
				was := st.status
				st.inc, st.status = e.Incarnation, MemberAlive
				if was != MemberAlive {
					revived = append(revived, e.Addr)
				}
			}
		case MemberSuspect:
			if (st.status == MemberAlive && e.Incarnation >= st.inc) ||
				(st.status == MemberSuspect && e.Incarnation > st.inc) {
				if st.status == MemberAlive {
					st.suspectAt = time.Now()
					m.auditTransition(obs.AuditMemberSuspect, e.Addr, e.Incarnation, "suspected via gossip")
				}
				st.inc, st.status = e.Incarnation, MemberSuspect
			}
		case MemberDead:
			if st.status != MemberDead && e.Incarnation >= st.inc {
				st.inc, st.status = e.Incarnation, MemberDead
				died = append(died, e.Addr)
			}
		}
	}
	m.mu.Unlock()

	if refuted {
		m.metrics.Counter("server.gossip_refutes").Inc()
		m.audit.Emit(obs.AuditEvent{Type: obs.AuditMemberAlive, Endpoint: m.self,
			Detail: "refuted a suspicion about self"})
	}
	for _, a := range joined {
		m.metrics.Counter("server.gossip_joins").Inc()
		m.auditTransition(obs.AuditMemberJoin, a, 0, "learned via gossip")
		m.notifyAlive(a)
	}
	for _, a := range revived {
		m.auditTransition(obs.AuditMemberAlive, a, 0, "re-announced with a higher incarnation")
		m.notifyAlive(a)
	}
	for _, a := range died {
		m.metrics.Counter("server.gossip_deaths").Inc()
		m.auditTransition(obs.AuditMemberDead, a, 0, "declared dead via gossip")
		m.notifyDead(a)
	}
}

// observeAck records direct evidence that addr answered us. For gossip
// members the reply delta (merged first) already revived them with their
// own incarnation; this path matters for members that are reachable but
// silent in the mesh — legacy replicas that refuse the gossip frames.
func (m *membership) observeAck(addr string) {
	m.mu.Lock()
	st, ok := m.members[addr]
	transition := ok && st.status != MemberAlive
	if transition {
		// No one else owns a silent member's incarnation, so fabricating
		// the bump locally is sound — and for a gossip member this branch
		// only runs if the reply delta somehow lacked its self entry.
		st.inc++
		st.status = MemberAlive
	}
	m.mu.Unlock()
	if transition {
		m.auditTransition(obs.AuditMemberAlive, addr, 0, "answered a direct probe")
		m.notifyAlive(addr)
	}
}

// suspect marks a member whose direct and indirect probes all failed.
func (m *membership) suspect(addr string) {
	m.mu.Lock()
	st, ok := m.members[addr]
	transition := ok && st.status == MemberAlive
	if transition {
		st.status = MemberSuspect
		st.suspectAt = time.Now()
	}
	m.mu.Unlock()
	if transition {
		m.metrics.Counter("server.gossip_suspects").Inc()
		m.auditTransition(obs.AuditMemberSuspect, addr, 0, "direct and indirect probes failed")
	}
}

// sweep declares suspects past the timeout dead.
func (m *membership) sweep(now time.Time, timeout time.Duration) {
	m.mu.Lock()
	var died []string
	for addr, st := range m.members {
		if st.status == MemberSuspect && now.Sub(st.suspectAt) >= timeout {
			st.status = MemberDead
			died = append(died, addr)
		}
	}
	m.mu.Unlock()
	for _, a := range died {
		m.metrics.Counter("server.gossip_deaths").Inc()
		m.auditTransition(obs.AuditMemberDead, a, 0, "suspicion expired unrefuted")
		m.notifyDead(a)
	}
}

// pickProbe returns one random non-dead member to probe this round.
func (m *membership) pickProbe() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return pickRandom(m.members, func(st *memberState) bool { return st.status != MemberDead })
}

// pickDead returns one random dead member (the partition-heal re-probe).
func (m *membership) pickDead() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return pickRandom(m.members, func(st *memberState) bool { return st.status == MemberDead })
}

// pickAliveExcept returns up to n random alive members other than skip —
// the indirect-probe helpers.
func (m *membership) pickAliveExcept(skip string, n int) []string {
	m.mu.Lock()
	var cands []string
	for addr, st := range m.members {
		if addr != skip && st.status == MemberAlive {
			cands = append(cands, addr)
		}
	}
	m.mu.Unlock()
	rand.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > n {
		cands = cands[:n]
	}
	return cands
}

func pickRandom(members map[string]*memberState, keep func(*memberState) bool) string {
	var cands []string
	for addr, st := range members {
		if keep(st) {
			cands = append(cands, addr)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return cands[rand.IntN(len(cands))]
}

func (m *membership) auditTransition(typ, addr string, inc uint64, detail string) {
	ev := obs.AuditEvent{Type: typ, Endpoint: addr, Detail: detail}
	if inc != 0 {
		ev.Detail = fmt.Sprintf("%s (incarnation %d)", detail, inc)
	}
	m.audit.Emit(ev)
}

func (m *membership) notifyAlive(addr string) {
	if m.onAlive != nil {
		m.onAlive(addr)
	}
}

func (m *membership) notifyDead(addr string) {
	if m.onDead != nil {
		m.onDead(addr)
	}
}

// --- wire encoding ---

// marshalMembers encodes a member list:
//
//	u8 version || u16 count || count × (u8 status || u64 incarnation || u16 addrLen || addr)
func marshalMembers(ms []Member) []byte {
	n := 4
	for _, m := range ms {
		n += 1 + 8 + 2 + len(m.Addr)
	}
	b := make([]byte, 0, n)
	b = append(b, memberWireVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(ms)))
	for _, m := range ms {
		b = append(b, byte(m.Status))
		b = binary.LittleEndian.AppendUint64(b, m.Incarnation)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Addr)))
		b = append(b, m.Addr...)
	}
	return b
}

func parseMembers(b []byte) ([]Member, error) {
	if len(b) < 3 || b[0] != memberWireVersion {
		return nil, fmt.Errorf("elide: malformed member list")
	}
	count := int(binary.LittleEndian.Uint16(b[1:3]))
	if count > maxWireMembers {
		return nil, fmt.Errorf("elide: member list too large (%d)", count)
	}
	b = b[3:]
	out := make([]Member, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 11 {
			return nil, fmt.Errorf("elide: truncated member list")
		}
		status := MemberStatus(b[0])
		if status > MemberDead {
			return nil, fmt.Errorf("elide: unknown member status %d", b[0])
		}
		inc := binary.LittleEndian.Uint64(b[1:9])
		alen := int(binary.LittleEndian.Uint16(b[9:11]))
		b = b[11:]
		if len(b) < alen {
			return nil, fmt.Errorf("elide: truncated member list")
		}
		out = append(out, Member{Addr: string(b[:alen]), Incarnation: inc, Status: status})
		b = b[alen:]
	}
	return out, nil
}

// marshalDigest encodes the anti-entropy digest: u32 count || 32-byte
// bindings. Bindings are SHA-256 values — they identify records without
// revealing anything about the channels behind them.
func marshalDigest(bindings [][32]byte) []byte {
	b := make([]byte, 0, 4+32*len(bindings))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(bindings)))
	for i := range bindings {
		b = append(b, bindings[i][:]...)
	}
	return b
}

func parseDigest(b []byte) (map[[32]byte]struct{}, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("elide: malformed digest")
	}
	count := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) != 32*count {
		return nil, fmt.Errorf("elide: digest length mismatch")
	}
	set := make(map[[32]byte]struct{}, count)
	for i := 0; i < count; i++ {
		var k [32]byte
		copy(k[:], b[32*i:])
		set[k] = struct{}{}
	}
	return set, nil
}

// --- gossiper: the probe/dissemination/anti-entropy loop ---

// gossiper drives the membership state machine over the replication
// links: one probe per interval, indirect probes on failure, suspect
// sweeping, and a digest exchange with one random live member.
type gossiper struct {
	m        *membership
	rep      *resumeReplicator
	resume   ResumeStore
	fleetKey []byte

	interval       time.Duration
	suspectTimeout time.Duration
	metrics        *obs.Registry
	audit          *obs.AuditLog

	round uint64 // rounds completed; gates the periodic dead re-probe
}

func newGossiper(self string, seeds []string, rep *resumeReplicator, resume ResumeStore,
	fleetKey []byte, interval, suspectTimeout time.Duration,
	metrics *obs.Registry, audit *obs.AuditLog) *gossiper {
	if interval <= 0 {
		interval = DefaultGossipInterval
	}
	if suspectTimeout <= 0 {
		suspectTimeout = DefaultSuspectTimeout
	}
	g := &gossiper{
		m:              newMembership(self, seeds, metrics, audit),
		rep:            rep,
		resume:         resume,
		fleetKey:       fleetKey,
		interval:       interval,
		suspectTimeout: suspectTimeout,
		metrics:        metrics,
		audit:          audit,
	}
	g.m.onAlive = rep.markAlive
	g.m.onDead = rep.markDead
	return g
}

// run is the gossip loop; Serve starts it and it stops with Serve's
// context.
func (g *gossiper) run(ctx context.Context) {
	t := time.NewTicker(g.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.tick()
		}
	}
}

func (g *gossiper) tick() {
	g.round++
	g.metrics.Counter("server.gossip_rounds").Inc()
	g.m.sweep(time.Now(), g.suspectTimeout)
	if target := g.m.pickProbe(); target != "" {
		g.probe(target)
	}
	if g.round%deadProbeEvery == 0 {
		if target := g.m.pickDead(); target != "" {
			g.probe(target)
		}
	}
	if peer := g.m.pickProbe(); peer != "" {
		g.antiEntropy(peer)
	}
}

// sealedSummary is the ping payload: the local view, sealed.
func (g *gossiper) sealedSummary() ([]byte, error) {
	return sealEncrypt(g.fleetKey, marshalMembers(g.m.snapshot()))
}

// mergeSealed folds a sealed remote summary into the local view.
func (g *gossiper) mergeSealed(payload []byte) error {
	plain, err := sealDecrypt(g.fleetKey, payload)
	if err != nil {
		return err
	}
	defer sdk.Wipe(plain)
	ms, err := parseMembers(plain)
	if err != nil {
		return err
	}
	g.m.merge(ms)
	return nil
}

// probe runs one SWIM probe: direct ping, then up to two indirect
// ping-reqs, then suspicion. A refusal is an answer — the peer is alive
// but does not speak gossip (a legacy or gossip-off replica); it stays
// an alive member served by the static paths.
func (g *gossiper) probe(addr string) {
	payload, err := g.sealedSummary()
	if err != nil {
		g.metrics.Counter("server.gossip_errors").Inc()
		return
	}
	p := g.rep.peerFor(addr)
	resp, err := p.roundTrip(peerOpPing, payload, true, g.rep.dialTimeout, g.rep.opTimeout)
	if err == nil {
		if merr := g.mergeSealed(resp); merr != nil {
			g.metrics.Counter("server.gossip_bad_delta").Inc()
		}
		g.m.observeAck(addr)
		return
	}
	if errors.Is(err, errPeerLegacy) || errors.Is(err, ErrRefused) {
		g.metrics.Counter("server.gossip_legacy").Inc()
		g.m.observeAck(addr)
		return
	}
	// Direct probe failed: ask up to two other live members to vouch.
	target, serr := sealEncrypt(g.fleetKey, []byte(addr))
	if serr == nil {
		for _, h := range g.m.pickAliveExcept(addr, 2) {
			hp := g.rep.peerFor(h)
			if _, herr := hp.roundTrip(peerOpPingReq, target, true, g.rep.dialTimeout, g.rep.opTimeout); herr == nil {
				g.metrics.Counter("server.gossip_indirect_acks").Inc()
				g.m.observeAck(addr)
				return
			}
		}
	}
	g.m.suspect(addr)
}

// servePingReq handles one incoming ping-req frame: open the sealed
// target address and probe it on the requester's behalf. The error
// return distinguishes a malformed frame from an unreachable target.
func (g *gossiper) servePingReq(payload []byte) (reached bool, err error) {
	target, err := sealDecrypt(g.fleetKey, payload)
	if err != nil {
		return false, err
	}
	defer sdk.Wipe(target)
	return g.directPing(string(target)), nil
}

// directPing serves the receiving half of a ping-req: probe target on
// the requester's behalf. Reports whether the target answered (a gossip
// ack or an alive-but-legacy refusal both count).
func (g *gossiper) directPing(target string) bool {
	payload, err := g.sealedSummary()
	if err != nil {
		return false
	}
	p := g.rep.peerFor(target)
	resp, err := p.roundTrip(peerOpPing, payload, true, g.rep.dialTimeout, g.rep.opTimeout)
	if err == nil {
		if merr := g.mergeSealed(resp); merr != nil {
			g.metrics.Counter("server.gossip_bad_delta").Inc()
		}
		g.m.observeAck(target)
		return true
	}
	if errors.Is(err, errPeerLegacy) || errors.Is(err, ErrRefused) {
		g.m.observeAck(target)
		return true
	}
	return false
}

// resumeBindingLister is the optional ResumeStore capability anti-entropy
// needs: enumerate the bindings currently held. The in-process LRU
// implements it; an external store that does not simply opts out of
// anti-entropy (push, fetch, and membership still work).
type resumeBindingLister interface {
	Bindings() [][32]byte
}

// antiEntropy runs one digest exchange with addr: send the local binding
// set, adopt every wrapped record the peer holds that we lack.
func (g *gossiper) antiEntropy(addr string) {
	lister, ok := g.resume.(resumeBindingLister)
	if !ok {
		return
	}
	sealed, err := sealEncrypt(g.fleetKey, marshalDigest(lister.Bindings()))
	if err != nil {
		g.metrics.Counter("server.gossip_errors").Inc()
		return
	}
	p := g.rep.peerFor(addr)
	resp, err := p.roundTrip(peerOpDigest, sealed, true, g.rep.dialTimeout, g.rep.opTimeout)
	if err != nil {
		// Refusals (legacy peer) and link failures alike: no sync this
		// round; the probe path owns liveness bookkeeping.
		return
	}
	adopted, err := g.adoptRecords(resp)
	if err != nil {
		g.metrics.Counter("server.anti_entropy_bad").Inc()
		return
	}
	if adopted > 0 {
		g.metrics.Counter("server.anti_entropy_adopted").Add(uint64(adopted))
		g.audit.Emit(obs.AuditEvent{Type: obs.AuditAntiEntropy, Endpoint: addr,
			Detail: fmt.Sprintf("adopted %d resume records", adopted)})
	}
}

// adoptRecords parses a digest reply — u32 count || count × (u32 len ||
// wrapped record) — and stores every record that authenticates.
func (g *gossiper) adoptRecords(b []byte) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("elide: malformed digest reply")
	}
	count := int(binary.LittleEndian.Uint32(b))
	if count > antiEntropyBatch {
		return 0, fmt.Errorf("elide: digest reply too large (%d)", count)
	}
	b = b[4:]
	adopted := 0
	now := time.Now()
	for i := 0; i < count; i++ {
		if len(b) < 4 {
			return adopted, fmt.Errorf("elide: truncated digest reply")
		}
		rlen := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if rlen > len(b) {
			return adopted, fmt.Errorf("elide: truncated digest reply")
		}
		rec, err := openResumeRecord(g.fleetKey, b[:rlen])
		b = b[rlen:]
		if err != nil || rec.expired(now) {
			g.metrics.Counter("server.anti_entropy_bad").Inc()
			continue
		}
		g.resume.Put(rec)
		adopted++
	}
	return adopted, nil
}

// serveDigest is the accepting half of anti-entropy: open the sealed
// digest, reply with up to antiEntropyBatch wrapped records the sender
// lacks.
func (g *gossiper) serveDigest(payload []byte) ([]byte, error) {
	plain, err := sealDecrypt(g.fleetKey, payload)
	if err != nil {
		return nil, err
	}
	defer sdk.Wipe(plain)
	theirs, err := parseDigest(plain)
	if err != nil {
		return nil, err
	}
	lister, ok := g.resume.(resumeBindingLister)
	if !ok {
		// No enumerable store: a well-formed empty reply.
		return binary.LittleEndian.AppendUint32(nil, 0), nil
	}
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, 0)
	sent := 0
	for _, binding := range lister.Bindings() {
		if sent >= antiEntropyBatch {
			break
		}
		if _, have := theirs[binding]; have {
			continue
		}
		rec, ok, _ := g.resume.Get(binding)
		if !ok {
			continue // raced with eviction
		}
		wrapped, err := wrapResumeRecord(g.fleetKey, rec)
		if err != nil {
			continue
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(wrapped)))
		out = append(out, wrapped...)
		sent++
	}
	binary.LittleEndian.PutUint32(out, uint32(sent))
	if sent > 0 {
		g.metrics.Counter("server.anti_entropy_served").Add(uint64(sent))
	}
	return out, nil
}

// --- server-side frame handlers ---

// handleMembersQuery answers a client's membership query with the
// plaintext member list (self included) and ends the session. A server
// without gossip refuses — the same shape a legacy binary produces, so
// clients treat both as "pool stays static".
func (s *Server) handleMembersQuery(conn net.Conn) error {
	s.armDeadline(conn)
	if s.gsp == nil {
		_ = writeErrorFrame(conn, "fleet membership not enabled")
		return nil
	}
	s.opt.metrics.Counter("server.membership_queries").Inc()
	return writeResponse(conn, marshalMembers(s.gsp.m.snapshot()))
}

// Members returns the fleet as this server currently sees it (nil when
// gossip is not enabled). The first entry is the server itself.
func (s *Server) Members() []Member {
	if s.gsp == nil {
		return nil
	}
	return s.gsp.m.snapshot()
}

// ResumeLen reports how many resume records this server currently holds —
// the convergence observable for anti-entropy.
func (s *Server) ResumeLen() int { return s.resume.Len() }

// --- client-side membership query ---

// membershipQuerier is the capability a channel implementation exposes
// when it can fetch the fleet member list; TCPClient implements it and
// EndpointPool.SyncMembership discovers it by assertion (same idiom as
// sessionResumer).
type membershipQuerier interface {
	Members(ctx context.Context) ([]Member, error)
}

// Members asks the server for its current fleet member list over a fresh
// connection (the query is terminal: the server answers and closes). A
// server that is legacy or runs without gossip answers with a refusal
// (ErrRefused), which callers treat as "no membership available" rather
// than a fault.
func (c *TCPClient) Members(ctx context.Context) ([]Member, error) {
	dctx, cancel := context.WithTimeout(ctx, c.opt.dialTimeout)
	conn, err := c.opt.dial(dctx, c.addr)
	cancel()
	if err != nil {
		return nil, err
	}
	defer func() { _ = conn.Close() }()
	if d, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(d)
	} else {
		_ = conn.SetDeadline(time.Now().Add(c.opt.requestTimeout))
	}
	// The query is an attestMsg with the Peer marker: a legacy server's
	// decoder drops the unknown field, sees a zero-value quote, and
	// refuses — exactly the "no membership" answer.
	msg := attestMsg{Quote: &sgx.Quote{}, Proto: ProtoV1, Peer: peerLinkMembers}
	if err := gob.NewEncoder(conn).Encode(&msg); err != nil {
		return nil, err
	}
	resp, err := readResponse(bufio.NewReader(conn))
	if err != nil {
		return nil, err
	}
	c.opt.metrics.Counter("client.membership_queries").Inc()
	return parseMembers(resp)
}
