package elide_test

import (
	"fmt"

	"sgxelide/internal/elide"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// Example walks the whole SgxElide lifecycle: build a protected enclave,
// show that the secret ecall faults before restoration, restore over the
// attested channel, and call the secret.
func Example() {
	// The platform ("a user's machine") and the attestation root.
	ca, err := sgx.NewCA()
	if err != nil {
		fmt.Println(err)
		return
	}
	platform, err := sgx.NewPlatform(sgx.Config{}, ca)
	if err != nil {
		fmt.Println(err)
		return
	}
	host := sdk.NewHost(platform)

	// Developer side: compile + sanitize + sign.
	prot, err := elide.BuildProtected(host, elide.BuildProtectedOptions{
		AppEDL: `enclave { trusted { public uint64_t ecall_secret(uint64_t x); }; untrusted { }; };`,
		Sources: []sdk.Source{sdk.C("secret.c", `
			uint64_t ecall_secret(uint64_t x) { return x * 31337; }
		`)},
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	// User side: launch the sanitized enclave against the developer's
	// authentication server.
	srv, err := prot.NewServerFor(ca)
	if err != nil {
		fmt.Println(err)
		return
	}
	encl, _, err := prot.Launch(host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
	if err != nil {
		fmt.Println(err)
		return
	}

	if _, err := encl.ECall("ecall_secret", 2); err != nil {
		fmt.Println("before restore: the secret code is redacted and faults")
	}
	code, err := encl.ECall("elide_restore", 0)
	if err != nil || code != elide.RestoreOKServer {
		fmt.Println("restore failed:", code, err)
		return
	}
	got, err := encl.ECall("ecall_secret", 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("after restore: ecall_secret(2) = %d\n", got)
	// Output:
	// before restore: the secret code is redacted and faults
	// after restore: ecall_secret(2) = 62674
}
