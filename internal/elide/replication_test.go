package elide

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"sgxelide/internal/obs"
)

// serveOn runs srv on an already-created listener (replication tests need
// every peer's address before any server is constructed).
func serveOn(t *testing.T, srv *Server, l net.Listener) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()
	t.Cleanup(func() {
		cancel()
		<-served
	})
}

// waitCounter polls a registry counter until it reaches min; replication
// is asynchronous by design, so tests synchronize on its counters.
func waitCounter(t *testing.T, m *obs.Registry, name string, min uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Counter(name).Load() >= min {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("counter %s never reached %d (have %d)", name, min, m.Counter(name).Load())
}

func v1Client(addr string) *TCPClient {
	return NewTCPClient(addr, append(fastRetry(2), WithProtocolVersion(ProtoV1))...)
}

// TestResumeReplicationPush: a channel established on one replica is
// pushed to its peer, and the peer then resumes the session locally —
// same server key, zero attestation flights on the peer.
func TestResumeReplicationPush(t *testing.T) {
	if testing.Short() {
		t.Skip("enclave quote generation in -short")
	}
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	l0, l1 := listen(t), listen(t)
	key := bytes.Repeat([]byte{0x5A}, 32)
	m0, m1 := obs.NewRegistry(), obs.NewRegistry()

	srv0, err := p.NewServerFor(ca, WithDrainTimeout(50*time.Millisecond),
		WithServerMetrics(m0), WithResumeReplication(key, l1.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	// srv1 carries the fleet key but dials no one: accept-only.
	srv1, err := p.NewServerFor(ca, WithDrainTimeout(50*time.Millisecond),
		WithServerMetrics(m1), WithResumeReplication(key))
	if err != nil {
		t.Fatal(err)
	}
	serveOn(t, srv0, l0)
	serveOn(t, srv1, l1)

	encl := loadQuoteOnly(t, h, p)
	q, cpub := freshQuote(t, h, encl)
	ctx := context.Background()

	pub0, err := v1Client(l0.Addr().String()).Attest(ctx, q, cpub)
	if err != nil {
		t.Fatal(err)
	}
	waitCounter(t, m1, "server.resume_replicated", 1)

	pub1, err := v1Client(l1.Addr().String()).ResumeAttest(ctx, q, cpub)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pub0, pub1) {
		t.Fatal("peer resumed with a different server key; the channel is lost")
	}
	if got := m1.Counter("server.attest_resumed").Load(); got < 1 {
		t.Fatalf("peer attest_resumed = %d, want >= 1", got)
	}
	if got := m1.Counter("server.attest_ok").Load(); got != 0 {
		t.Fatalf("peer ran %d full attestation flights, want 0", got)
	}
}

// TestResumeFetchFallback: when the push never reached the replica (here:
// the origin dials no peers), a replayed handshake triggers a synchronous
// peer fetch and still resumes with zero extra attestation flights.
func TestResumeFetchFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("enclave quote generation in -short")
	}
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	l0, l1 := listen(t), listen(t)
	key := bytes.Repeat([]byte{0x6C}, 16)
	m0, m1 := obs.NewRegistry(), obs.NewRegistry()

	// srv0 holds the session but pushes nowhere; srv1 can only fetch.
	srv0, err := p.NewServerFor(ca, WithDrainTimeout(50*time.Millisecond),
		WithServerMetrics(m0), WithResumeReplication(key))
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := p.NewServerFor(ca, WithDrainTimeout(50*time.Millisecond),
		WithServerMetrics(m1), WithResumeReplication(key, l0.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	serveOn(t, srv0, l0)
	serveOn(t, srv1, l1)

	encl := loadQuoteOnly(t, h, p)
	q, cpub := freshQuote(t, h, encl)
	ctx := context.Background()

	pub0, err := v1Client(l0.Addr().String()).Attest(ctx, q, cpub)
	if err != nil {
		t.Fatal(err)
	}
	pub1, err := v1Client(l1.Addr().String()).ResumeAttest(ctx, q, cpub)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pub0, pub1) {
		t.Fatal("fetched resume returned a different server key")
	}
	if got := m1.Counter("server.resume_fetch_hit").Load(); got != 1 {
		t.Fatalf("resume_fetch_hit = %d, want 1", got)
	}
	if got := m1.Counter("server.attest_ok").Load(); got != 0 {
		t.Fatalf("replica ran %d full attestation flights, want 0", got)
	}
	if got := m0.Counter("server.resume_fetch_served").Load(); got != 1 {
		t.Fatalf("origin resume_fetch_served = %d, want 1", got)
	}

	// The fetched record was adopted locally: a second replay resumes
	// without another peer round trip.
	if _, err := v1Client(l1.Addr().String()).ResumeAttest(ctx, q, cpub); err != nil {
		t.Fatal(err)
	}
	if got := m1.Counter("server.resume_fetch").Load(); got != 1 {
		t.Fatalf("second replay fetched again (resume_fetch = %d, want 1)", got)
	}
}

// TestResumeLegacyPeerUnaffected: pointing replication at a server that
// does not speak it (no fleet key — the same refusal shape a pre-
// replication binary produces) must not disturb that server's client
// traffic; the dialer just marks the peer legacy and backs off.
func TestResumeLegacyPeerUnaffected(t *testing.T) {
	if testing.Short() {
		t.Skip("enclave quote generation in -short")
	}
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	l0, l1 := listen(t), listen(t)
	key := bytes.Repeat([]byte{0x7D}, 32)
	m0, m1 := obs.NewRegistry(), obs.NewRegistry()

	srv0, err := p.NewServerFor(ca, WithDrainTimeout(50*time.Millisecond),
		WithServerMetrics(m0)) // no fleet key: refuses replication links
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := p.NewServerFor(ca, WithDrainTimeout(50*time.Millisecond),
		WithServerMetrics(m1), WithResumeReplication(key, l0.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	serveOn(t, srv0, l0)
	serveOn(t, srv1, l1)

	encl := loadQuoteOnly(t, h, p)
	ctx := context.Background()

	q1, cpub1 := freshQuote(t, h, encl)
	if _, err := v1Client(l1.Addr().String()).Attest(ctx, q1, cpub1); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, m1, "server.resume_peer_legacy", 1)

	// The refusing server still serves ordinary clients.
	q0, cpub0 := freshQuote(t, h, encl)
	if _, err := v1Client(l0.Addr().String()).Attest(ctx, q0, cpub0); err != nil {
		t.Fatalf("legacy peer's client traffic broken by replication attempts: %v", err)
	}
	if got := m0.Counter("server.attest_ok").Load(); got != 1 {
		t.Fatalf("legacy peer attest_ok = %d, want 1", got)
	}
	if got := m1.Counter("server.resume_replicated").Load(); got != 0 {
		t.Fatalf("record replicated to a keyless peer (%d)", got)
	}
}
