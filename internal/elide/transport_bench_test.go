package elide

import (
	"bytes"
	"testing"
)

// The frame read/write benchmarks pin the per-operation allocation cost of
// the wire hot path: every restore moves an attest handshake, two channel
// requests, and (remote-data mode) the whole secret payload through these
// functions, so an allocation here is an allocation per request at load.
// Run with -benchmem; EXPERIMENTS.md records the before/after numbers.

// discardWriter is io.Discard without the WriteString fast path, so the
// benchmark measures our assembly cost, not fmt plumbing.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func BenchmarkWriteFrame(b *testing.B) {
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if err := writeFrame(discardWriter{}, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteResponse(b *testing.B) {
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if err := writeResponse(discardWriter{}, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteErrorFrame(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := writeErrorFrame(discardWriter{}, "enclave measurement mismatch"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFrameLoop measures the server's request-loop read path: one
// frame decoded per iteration from an in-memory stream into a reused
// scratch buffer — the shape of handleConn answering channel requests
// back to back with readFrameInto.
func BenchmarkReadFrameLoop(b *testing.B) {
	var oneFrame bytes.Buffer
	if err := writeFrame(&oneFrame, make([]byte, 29)); err != nil { // channel request size
		b.Fatal(err)
	}
	stream := oneFrame.Bytes()
	r := bytes.NewReader(stream)
	var scratch []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Reset(stream)
		req, err := readFrameInto(r, scratch)
		if err != nil {
			b.Fatal(err)
		}
		scratch = req
	}
}

// BenchmarkFrameRoundTrip is the full echo shape: write a response frame,
// read it back — the per-request frame cost both sides pay together.
func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := make([]byte, 1024)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := writeResponse(&buf, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := readResponse(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
