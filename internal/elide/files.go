package elide

import (
	"crypto/ecdsa"
	"crypto/x509"
	"encoding/hex"
	"encoding/pem"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// File names used by the CLI tools (mirroring the artifact's layout).
const (
	FileSanitizedSO = "sanitized.so"
	FileSecretMeta  = "enclave.secret.meta" // server only!
	FileSecretData  = "enclave.secret.data"
	FileSecretPlain = "enclave.secret.plain" // hybrid mode, server only!
	FileMeasurement = "enclave.mrenclave"
	FileCAPub       = "ca_pub.pem"
	FileWhitelist   = "whitelist.json"
)

// atomicWriteFile writes data to path via a same-directory temp file and
// rename, so a crash mid-write can never leave a torn file at path — the
// server (and the secrets-dir re-scan) would otherwise happily load a
// half-written secret.
func atomicWriteFile(path string, data []byte, perm os.FileMode) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteServerFiles writes everything the authentication server needs into
// dir: the CA public key, the expected (sanitized) measurement, the secret
// metadata, and — in remote-data mode — the plaintext secret data. Each
// file is written atomically (temp file + rename), so a crash mid-write
// cannot leave a torn secret for the server to load; this also makes it
// safe to (re)deploy into a directory a running server is watching.
func (p *Protected) WriteServerFiles(dir string, caPub *ecdsa.PublicKey) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	der, err := x509.MarshalPKIXPublicKey(caPub)
	if err != nil {
		return fmt.Errorf("elide: encoding CA key: %w", err)
	}
	pemBytes := pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der})
	if err := atomicWriteFile(filepath.Join(dir, FileCAPub), pemBytes, 0o644); err != nil {
		return err
	}
	if err := atomicWriteFile(filepath.Join(dir, FileSecretMeta), p.Meta.Marshal(), 0o600); err != nil {
		return err
	}
	if !p.Meta.Encrypted {
		if err := atomicWriteFile(filepath.Join(dir, FileSecretData), p.SecretData, 0o600); err != nil {
			return err
		}
	} else if p.Meta.Hybrid {
		// Hybrid deployments serve the data remotely too: the server's copy
		// is the plaintext, the user's local file stays ciphertext.
		if err := atomicWriteFile(filepath.Join(dir, FileSecretData), p.SecretPlain, 0o600); err != nil {
			return err
		}
	}
	// The measurement file last: its presence marks the deployment subdir
	// as loadable, so a watcher scanning mid-deploy sees either nothing or
	// a complete deployment.
	mr := hex.EncodeToString(p.Measurement[:]) + "\n"
	return atomicWriteFile(filepath.Join(dir, FileMeasurement), []byte(mr), 0o644)
}

// LoadServerConfig reads the files written by WriteServerFiles.
func LoadServerConfig(dir string) (ServerConfig, error) {
	var cfg ServerConfig
	pemBytes, err := os.ReadFile(filepath.Join(dir, FileCAPub))
	if err != nil {
		return cfg, err
	}
	block, _ := pem.Decode(pemBytes)
	if block == nil {
		return cfg, fmt.Errorf("elide: %s is not PEM", FileCAPub)
	}
	pub, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return cfg, fmt.Errorf("elide: parsing CA key: %w", err)
	}
	ecPub, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return cfg, fmt.Errorf("elide: CA key is not ECDSA")
	}
	cfg.CAPub = ecPub

	mrText, err := os.ReadFile(filepath.Join(dir, FileMeasurement))
	if err != nil {
		return cfg, err
	}
	mrBytes, err := hex.DecodeString(strings.TrimSpace(string(mrText)))
	if err != nil || len(mrBytes) != 32 {
		return cfg, fmt.Errorf("elide: bad measurement file")
	}
	copy(cfg.ExpectedMrEnclave[:], mrBytes)

	metaBytes, err := os.ReadFile(filepath.Join(dir, FileSecretMeta))
	if err != nil {
		return cfg, err
	}
	cfg.Meta, err = UnmarshalMeta(metaBytes)
	if err != nil {
		return cfg, err
	}
	if !cfg.Meta.Encrypted || cfg.Meta.Hybrid {
		cfg.SecretPlain, err = os.ReadFile(filepath.Join(dir, FileSecretData))
		if err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}
