package elide

import (
	"context"
	"crypto/ecdsa"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sgxelide/internal/sgx"
)

// testMeta builds a valid remote-data meta/secret pair with a recognizable
// payload.
func testMeta(payload string) (*SecretMeta, []byte) {
	data := []byte(payload)
	return &SecretMeta{DataLen: uint64(len(data))}, data
}

// testMr derives a distinct measurement from a seed byte, spread across
// shards by varying the first byte.
func testMr(seed byte) [32]byte {
	var mr [32]byte
	for i := range mr {
		mr[i] = seed + byte(i)
	}
	return mr
}

func TestStoreRegisterLookupRemove(t *testing.T) {
	st := NewSecretStore()
	meta, data := testMeta("secret-a")
	mr := testMr(1)
	e, err := st.Register(mr, meta, data, "a")
	if err != nil {
		t.Fatal(err)
	}
	if e.Label() == "" || len(e.Label()) != 8 {
		t.Fatalf("label = %q", e.Label())
	}
	got, ok := st.Lookup(mr)
	if !ok || got != e {
		t.Fatal("lookup did not return the registered entry")
	}
	if _, ok := st.Lookup(testMr(2)); ok {
		t.Fatal("lookup invented an entry")
	}
	if st.Len() != 1 {
		t.Fatalf("len = %d", st.Len())
	}
	if !st.Remove(mr) {
		t.Fatal("remove missed the entry")
	}
	if st.Remove(mr) {
		t.Fatal("double remove reported success")
	}
	if _, ok := st.Lookup(mr); ok {
		t.Fatal("entry survived removal")
	}
}

func TestStoreValidation(t *testing.T) {
	st := NewSecretStore()
	if _, err := st.Register(testMr(1), nil, nil, ""); err == nil || !strings.Contains(err.Error(), "metadata") {
		t.Errorf("nil meta: err = %v", err)
	}
	// Remote-data mode (not Encrypted) needs the plaintext.
	if _, err := st.Register(testMr(1), &SecretMeta{}, nil, ""); err == nil || !strings.Contains(err.Error(), "plaintext") {
		t.Errorf("missing plaintext: err = %v", err)
	}
	// Local-data mode carries the key in the meta; no plaintext needed.
	if _, err := st.Register(testMr(1), &SecretMeta{Encrypted: true}, nil, ""); err != nil {
		t.Errorf("local-data entry refused: %v", err)
	}
}

func TestStoreReplacementCarriesCounters(t *testing.T) {
	st := NewSecretStore()
	meta, data := testMeta("v1")
	mr := testMr(7)
	e1, err := st.Register(mr, meta, data, "d")
	if err != nil {
		t.Fatal(err)
	}
	e1.attests.Add(3)
	e1.metaServed.Add(2)
	meta2, data2 := testMeta("v2-longer")
	e2, err := st.Register(mr, meta2, data2, "d")
	if err != nil {
		t.Fatal(err)
	}
	if e2 == e1 {
		t.Fatal("replacement returned the old entry")
	}
	s := e2.Stats()
	if s.Attests != 3 || s.MetaServed != 2 {
		t.Fatalf("counters lost on replacement: %+v", s)
	}
	got, _ := st.Lookup(mr)
	if string(got.SecretPlain) != "v2-longer" {
		t.Fatal("replacement did not take effect")
	}
}

// TestStoreConcurrency races registration, removal, and lookup across
// shards (run under -race by make verify).
func TestStoreConcurrency(t *testing.T) {
	st := NewSecretStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				mr := testMr(byte(w*16 + i%16))
				meta, data := testMeta(fmt.Sprintf("w%d-i%d", w, i))
				switch i % 3 {
				case 0:
					if _, err := st.Register(mr, meta, data, ""); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if e, ok := st.Lookup(mr); ok {
						e.attests.Add(1)
						_ = e.Stats()
					}
					st.Len()
					st.Entries()
				case 2:
					st.Remove(mr)
				}
			}
		}(w)
	}
	wg.Wait()
}

// writeDeployment writes a minimal WriteServerFiles-layout subdir without
// building a real enclave (only LoadServerConfig's file contract matters).
func writeDeployment(t *testing.T, root, name string, p *Protected, ca *sgx.CA) {
	t.Helper()
	if err := p.WriteServerFiles(filepath.Join(root, name), ca.PublicKey()); err != nil {
		t.Fatal(err)
	}
}

func TestStoreLoadDirAndRescan(t *testing.T) {
	ca, h := env(t)
	pA := buildApp(t, h, SanitizeOptions{})
	// A blacklist sanitize zeroes a different function set, producing a
	// genuinely different sanitized image and measurement.
	pB := buildApp(t, h, SanitizeOptions{Blacklist: []string{"secret_transform"}})
	if pA.Measurement == pB.Measurement {
		t.Fatal("test needs two distinct measurements")
	}

	root := t.TempDir()
	writeDeployment(t, root, "alpha", pA, ca)
	// A stray non-deployment dir and file must be skipped silently.
	if err := os.MkdirAll(filepath.Join(root, "not-a-deployment"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	st := NewSecretStore()
	rep, err := st.LoadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != 1 || rep.Updated != 0 || rep.Removed != 0 || len(rep.Failed) != 0 {
		t.Fatalf("first pass: %+v", rep)
	}
	if st.CA() == nil || !st.CA().Equal(ca.PublicKey()) {
		t.Fatal("store did not pin the deployment CA")
	}
	if _, ok := st.Lookup(pA.Measurement); !ok {
		t.Fatal("alpha not loaded")
	}

	// Unchanged rescan: no churn.
	rep, err = st.LoadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed() {
		t.Fatalf("idle rescan reported changes: %+v", rep)
	}

	// A new deployment dropped in is picked up...
	writeDeployment(t, root, "beta", pB, ca)
	rep, err = st.LoadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != 1 {
		t.Fatalf("beta not added: %+v", rep)
	}
	if _, ok := st.Lookup(pB.Measurement); !ok {
		t.Fatal("beta not loaded")
	}

	// ...a manually registered entry is never touched by rescans...
	manualMr := testMr(9)
	manualMeta, manualData := testMeta("manual")
	if _, err := st.Register(manualMr, manualMeta, manualData, "manual"); err != nil {
		t.Fatal(err)
	}

	// ...and a deployment deleted on disk is removed from the store.
	if err := os.RemoveAll(filepath.Join(root, "alpha")); err != nil {
		t.Fatal(err)
	}
	rep, err = st.LoadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 1 {
		t.Fatalf("alpha not removed: %+v", rep)
	}
	if _, ok := st.Lookup(pA.Measurement); ok {
		t.Fatal("alpha survived deletion")
	}
	if _, ok := st.Lookup(manualMr); !ok {
		t.Fatal("rescan removed a manually registered entry")
	}
}

func TestStoreLoadDirRejectsForeignCA(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	root := t.TempDir()
	writeDeployment(t, root, "ours", p, ca)

	otherCA, _ := env(t)
	writeDeployment(t, root, "theirs", p, otherCA)

	st := NewSecretStore()
	// Pin our CA first so the scan order (map/dirent order) cannot flip
	// which deployment wins.
	if err := st.pinCA(ca.PublicKey()); err != nil {
		t.Fatal(err)
	}
	rep, err := st.LoadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != 1 {
		t.Fatalf("added = %d", rep.Added)
	}
	if _, bad := rep.Failed["theirs"]; !bad {
		t.Fatalf("foreign-CA deployment not rejected: %+v", rep)
	}
}

func TestStoreWatchPicksUpDeployment(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	root := t.TempDir()

	st := NewSecretStore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	changed := make(chan DirReport, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		st.Watch(ctx, root, 5*time.Millisecond, func(r DirReport) { changed <- r })
	}()

	writeDeployment(t, root, "late", p, ca)
	select {
	case rep := <-changed:
		if rep.Added != 1 {
			t.Errorf("watch report: %+v", rep)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never picked up the deployment")
	}
	if _, ok := st.Lookup(p.Measurement); !ok {
		t.Fatal("watched deployment not in store")
	}
	cancel()
	<-done
}

// TestResumeCacheLRU covers the eviction order of the session-resumption
// cache: both a lookup hit and a duplicate-key re-store must refresh an
// entry's recency, so the hot entry outlives cold ones.
func TestResumeCacheLRU(t *testing.T) {
	newSrv := func() *Server {
		meta, data := testMeta("s")
		srv, err := NewServer(ServerConfig{
			CAPub:             mustCAPub(t),
			ExpectedMrEnclave: testMr(1),
			Meta:              meta,
			SecretPlain:       data,
		}, WithResumeCacheSize(2))
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	k := func(b byte) [32]byte { return testMr(b) }
	pub := []byte("pub")
	put := func(srv *Server, key [32]byte, chKey []byte) {
		srv.resumePut(key, pub, chKey, testMr(1))
	}

	t.Run("restore-on-duplicate-store", func(t *testing.T) {
		srv := newSrv()
		put(srv, k(1), []byte("key1"))
		put(srv, k(2), []byte("key2"))
		put(srv, k(1), []byte("key1b")) // duplicate key: refresh, not append
		if srv.resumeLen() != 2 {
			t.Fatalf("cache len = %d", srv.resumeLen())
		}
		put(srv, k(3), []byte("key3")) // evicts the LRU = k2, not k1
		if _, ok, _ := srv.resumeGet(k(2)); ok {
			t.Fatal("cold entry k2 survived eviction")
		}
		rec, ok, _ := srv.resumeGet(k(1))
		if !ok {
			t.Fatal("hot entry k1 was evicted before cold k2")
		}
		if string(rec.ChannelKey) != "key1b" {
			t.Fatalf("re-store did not refresh the channel state: %q", rec.ChannelKey)
		}
		if _, ok, _ := srv.resumeGet(k(3)); !ok {
			t.Fatal("k3 missing")
		}
	})

	t.Run("refresh-on-hit", func(t *testing.T) {
		srv := newSrv()
		put(srv, k(1), []byte("key1"))
		put(srv, k(2), []byte("key2"))
		if _, ok, _ := srv.resumeGet(k(1)); !ok { // touch k1: k2 becomes LRU
			t.Fatal("k1 missing")
		}
		put(srv, k(3), []byte("key3"))
		if _, ok, _ := srv.resumeGet(k(2)); ok {
			t.Fatal("k2 should have been evicted")
		}
		if _, ok, _ := srv.resumeGet(k(1)); !ok {
			t.Fatal("recently used k1 was evicted")
		}
	})

	t.Run("capacity-bound", func(t *testing.T) {
		srv := newSrv()
		for i := byte(0); i < 10; i++ {
			put(srv, k(i), []byte{i})
		}
		if srv.resumeLen() != 2 {
			t.Fatalf("cache len = %d, want cap 2", srv.resumeLen())
		}
	})
}

// TestWriteServerFilesAtomic: the files round-trip through LoadServerConfig
// and no temp residue is left behind (the atomic-rename pattern).
func TestWriteServerFilesAtomic(t *testing.T) {
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	dir := filepath.Join(t.TempDir(), "deploy")
	if err := p.WriteServerFiles(dir, ca.PublicKey()); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadServerConfig(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ExpectedMrEnclave != p.Measurement {
		t.Fatal("measurement did not round-trip")
	}
	if string(cfg.Meta.Marshal()) != string(p.Meta.Marshal()) {
		t.Fatal("meta did not round-trip")
	}
	if string(cfg.SecretPlain) != string(p.SecretData) {
		t.Fatal("secret data did not round-trip")
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.Contains(de.Name(), ".tmp") {
			t.Errorf("temp residue left behind: %s", de.Name())
		}
	}
}

func TestAtomicWriteFileReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := atomicWriteFile(path, []byte("one"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := atomicWriteFile(path, []byte("two"), 0o600); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "two" {
		t.Fatalf("read %q, %v", b, err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v", fi.Mode().Perm())
	}
}

// mustCAPub returns some valid ECDSA public key for server construction in
// tests that never verify a quote.
func mustCAPub(t *testing.T) *ecdsa.PublicKey {
	t.Helper()
	ca, _ := env(t)
	return ca.PublicKey()
}
