package elide

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"sgxelide/internal/obs"
)

func testRecord(seed byte) ResumeRecord {
	return ResumeRecord{
		Binding:    testMr(seed),
		ServerPub:  bytes.Repeat([]byte{seed}, 32),
		ChannelKey: bytes.Repeat([]byte{seed ^ 0xFF}, 16),
		MrEnclave:  testMr(seed + 100),
	}
}

// TestLRUResumeStoreTTL: an entry past its expiry is dropped on lookup and
// reported as expired — distinctly from a plain miss — and stops counting
// toward Len.
func TestLRUResumeStoreTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	st := newLRUResumeStore(4)
	st.now = func() time.Time { return now }

	rec := testRecord(1)
	rec.ExpiresAt = now.Add(time.Minute)
	st.Put(rec)
	forever := testRecord(2) // zero ExpiresAt: never expires
	st.Put(forever)

	if _, ok, expired := st.Get(rec.Binding); !ok || expired {
		t.Fatalf("fresh entry: ok=%v expired=%v", ok, expired)
	}
	now = now.Add(2 * time.Minute)
	if _, ok, expired := st.Get(rec.Binding); ok || !expired {
		t.Fatalf("stale entry: ok=%v expired=%v, want expired miss", ok, expired)
	}
	// Expiry removes the entry: the next lookup is a plain miss, and Len
	// no longer counts it.
	if _, ok, expired := st.Get(rec.Binding); ok || expired {
		t.Fatalf("post-expiry lookup: ok=%v expired=%v, want plain miss", ok, expired)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d after expiry, want 1", st.Len())
	}
	if _, ok, _ := st.Get(forever.Binding); !ok {
		t.Fatal("zero-expiry entry must never expire")
	}
}

// TestResumeRecordMarshalRoundTrip: the wire layout round-trips every
// field, rejects unknown versions, and bounds the variable-length fields.
func TestResumeRecordMarshalRoundTrip(t *testing.T) {
	rec := testRecord(7)
	rec.ExpiresAt = time.Unix(0, 1234567890)
	blob, err := marshalResumeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unmarshalResumeRecord(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Binding != rec.Binding || got.MrEnclave != rec.MrEnclave ||
		!bytes.Equal(got.ServerPub, rec.ServerPub) || !bytes.Equal(got.ChannelKey, rec.ChannelKey) ||
		!got.ExpiresAt.Equal(rec.ExpiresAt) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, rec)
	}

	noExp := testRecord(8) // zero expiry must stay zero through the wire
	blob, err = marshalResumeRecord(noExp)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := unmarshalResumeRecord(blob); err != nil || !got.ExpiresAt.IsZero() {
		t.Fatalf("zero expiry round trip: %v, ExpiresAt=%v", err, got.ExpiresAt)
	}

	huge := testRecord(9)
	huge.ChannelKey = make([]byte, 300)
	if _, err := marshalResumeRecord(huge); err == nil {
		t.Fatal("oversized field must not marshal")
	}

	if _, err := unmarshalResumeRecord(blob[:10]); err == nil {
		t.Fatal("truncated record must not unmarshal")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 99
	if _, err := unmarshalResumeRecord(bad); err == nil {
		t.Fatal("unknown version must be rejected")
	}
}

// TestWrapResumeRecord: the fleet-key wrapping round-trips, and a
// bit-flipped blob, a wrong key, and an oversized blob all fail to open.
func TestWrapResumeRecord(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, 16)
	rec := testRecord(3)
	blob, err := wrapResumeRecord(key, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := openResumeRecord(key, blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Binding != rec.Binding || !bytes.Equal(got.ChannelKey, rec.ChannelKey) {
		t.Fatal("wrap/open round trip mismatch")
	}

	for i := range blob { // every byte is authenticated
		tampered := append([]byte(nil), blob...)
		tampered[i] ^= 1
		if _, err := openResumeRecord(key, tampered); err == nil {
			t.Fatalf("tampered byte %d opened successfully", i)
		}
	}
	other := bytes.Repeat([]byte{0x43}, 16)
	if _, err := openResumeRecord(other, blob); err == nil {
		t.Fatal("wrong fleet key opened the record")
	}
	if _, err := openResumeRecord(key, make([]byte, 4096)); err == nil {
		t.Fatal("oversized blob must be rejected before decryption")
	}
}

// TestFleetKeyValidation: a server configured with peers must hold a valid
// fleet sealing key — replication without wrapping is a construction
// error, not a runtime downgrade.
func TestFleetKeyValidation(t *testing.T) {
	for _, n := range []int{16, 24, 32} {
		if err := validFleetKey(make([]byte, n)); err != nil {
			t.Fatalf("%d-byte key rejected: %v", n, err)
		}
	}
	for _, n := range []int{0, 8, 31} {
		if err := validFleetKey(make([]byte, n)); err == nil {
			t.Fatalf("%d-byte key accepted", n)
		}
	}
	meta, data := testMeta("s")
	_, err := NewServer(ServerConfig{
		CAPub:             mustCAPub(t),
		ExpectedMrEnclave: testMr(1),
		Meta:              meta,
		SecretPlain:       data,
	}, WithResumeReplication(nil, "127.0.0.1:9"))
	if err == nil {
		t.Fatal("peers without a fleet key must fail construction")
	}
}

// TestServerResumeTTL: a session older than the resume TTL pays a full
// re-attest (fresh server key), the expiry is audited as AuditResumeExpired,
// and within the TTL the same handshake resumes the original channel.
func TestServerResumeTTL(t *testing.T) {
	if testing.Short() {
		t.Skip("enclave quote generation in -short")
	}
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	encl := loadQuoteOnly(t, h, p)
	q, pub := freshQuote(t, h, encl)

	metrics := obs.NewRegistry()
	audit := obs.NewAuditLog(0)
	srv, err := p.NewServerFor(ca,
		WithResumeTTL(30*time.Millisecond),
		WithServerMetrics(metrics),
		WithServerAudit(audit),
	)
	if err != nil {
		t.Fatal(err)
	}

	pub0, err := srv.NewSession().Attest(q, pub)
	if err != nil {
		t.Fatal(err)
	}
	pub1, err := srv.NewSession().Attest(q, pub) // within TTL: resumed
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pub0, pub1) {
		t.Fatal("replay within the TTL did not resume the channel")
	}
	time.Sleep(60 * time.Millisecond)
	pub2, err := srv.NewSession().Attest(q, pub) // past TTL: full re-attest
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pub0, pub2) {
		t.Fatal("replay past the TTL resumed an expired channel")
	}
	if got := metrics.Counter("server.resume_expired").Load(); got != 1 {
		t.Fatalf("server.resume_expired = %d, want 1", got)
	}
	if got := audit.Counts()[obs.AuditResumeExpired]; got != 1 {
		t.Fatalf("audit resume_expired events = %d, want 1", got)
	}
}

// TestWriteOverloadFrameSubMillisecond is the regression test for the
// truncated retry-after hint: a positive sub-millisecond hint must reach
// the client as >= 1ms, not as "retry immediately".
func TestWriteOverloadFrameSubMillisecond(t *testing.T) {
	read := func(retryAfter time.Duration) time.Duration {
		t.Helper()
		var buf bytes.Buffer
		if err := writeOverloadFrame(&buf, retryAfter, "busy"); err != nil {
			t.Fatal(err)
		}
		_, err := readResponse(&buf)
		var oe *OverloadedError
		if !errors.As(err, &oe) {
			t.Fatalf("readResponse = %v, want *OverloadedError", err)
		}
		return oe.RetryAfter
	}
	if got := read(200 * time.Microsecond); got != time.Millisecond {
		t.Fatalf("sub-ms hint decoded as %v, want 1ms", got)
	}
	if got := read(0); got != 0 {
		t.Fatalf("zero hint decoded as %v, want 0", got)
	}
	if got := read(-time.Second); got != 0 {
		t.Fatalf("negative hint decoded as %v, want 0", got)
	}
	if got := read(7 * time.Millisecond); got != 7*time.Millisecond {
		t.Fatalf("7ms hint decoded as %v", got)
	}
}

// TestInflightRetryAfter: the occupancy-derived hint stays within
// [1ms, ioTimeout], scales with queue position, and never collapses to
// zero even before any service time has been observed.
func TestInflightRetryAfter(t *testing.T) {
	s := &Server{opt: serverOptions{maxInflight: 4, ioTimeout: time.Second}}
	for pos := 0; pos <= 70; pos += 7 {
		for _, est := range []float64{0, 4e6, 1e12} {
			hint := s.inflightRetryAfter(est, pos)
			if hint < time.Millisecond || hint > time.Second {
				t.Fatalf("hint(est=%v, pos=%d) = %v, outside [1ms, 1s]", est, pos, hint)
			}
		}
	}
	// With a known service time the hint grows with position (modulo
	// jitter: compare far-apart positions via their upper/lower bounds).
	// est 40ms over 4 slots = 10ms per slot; pos 1 < 1.5*10ms, pos 50
	// >= half of min(50*10ms, ioTimeout)/2 = 250ms.
	lo := s.inflightRetryAfter(40e6, 1)
	hi := s.inflightRetryAfter(40e6, 50)
	if lo >= 15*time.Millisecond {
		t.Fatalf("pos-1 hint %v above its jitter ceiling", lo)
	}
	if hi < 250*time.Millisecond {
		t.Fatalf("pos-50 hint %v below its jitter floor", hi)
	}
}

// TestOverloadRetryAfterHint: the restore retry loop honors a server's
// retry-after hint, clamped to the backoff cap, and ignores other errors.
func TestOverloadRetryAfterHint(t *testing.T) {
	if got := overloadRetryAfter(nil); got != 0 {
		t.Fatalf("nil error hint = %v", got)
	}
	if got := overloadRetryAfter(errors.New("boom")); got != 0 {
		t.Fatalf("plain error hint = %v", got)
	}
	oe := &OverloadedError{RetryAfter: 123 * time.Millisecond}
	if got := overloadRetryAfter(&PhaseError{Phase: "attest", Err: oe}); got != 123*time.Millisecond {
		t.Fatalf("wrapped hint = %v, want 123ms", got)
	}
	huge := &OverloadedError{RetryAfter: time.Hour}
	if got := overloadRetryAfter(huge); got != DefaultBackoffCap {
		t.Fatalf("uncapped hint = %v, want %v", got, DefaultBackoffCap)
	}
}
