package elide

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sgx"
)

// Breaker states of one endpoint (the classic three-state circuit
// breaker): Closed admits traffic, Open rejects it until a cooldown
// passes, HalfOpen admits a single probe whose outcome decides between
// the other two.
const (
	BreakerClosed int32 = iota
	BreakerOpen
	BreakerHalfOpen
)

// Endpoint is one replicated authentication server in an EndpointPool:
// its address plus the local view of its health — a circuit breaker and
// success/latency EWMAs. All state is caller-local (each user machine
// tracks its own breakers, as it must: it only sees its own traffic).
type Endpoint struct {
	Addr  string
	index int

	mu          sync.Mutex
	state       int32
	consecFails int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight

	// health is an EWMA of the success indicator (1 success, 0 failure),
	// starting optimistic at 1; latency is an EWMA of operation time in
	// nanoseconds. Together they rank endpoints: highest health wins,
	// latency breaks ties.
	health  float64
	latency float64
}

// State returns the endpoint's current breaker state.
func (e *Endpoint) State() int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// Health returns the endpoint's success EWMA in [0, 1].
func (e *Endpoint) Health() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.health
}

// poolOptions collects the failover policy knobs. The With* constructors
// live in options.go alongside the other families.
type poolOptions struct {
	failThreshold int           // consecutive failures that trip the breaker
	cooldown      time.Duration // open → half-open delay
	alpha         float64       // EWMA smoothing factor
	metrics       *obs.Registry
	audit         *obs.AuditLog
	clientOpts    []ClientOption
	newClient     func(addr string) SecretChannel
	now           func() time.Time
}

// EndpointPool tracks a replicated authentication-server set: which
// endpoints exist, how healthy each looks from here, and which breaker
// admits traffic right now. The set is no longer frozen at construction:
// SyncMembership (or a WatchMembership loop) asks the fleet for its
// current member list and grows/shrinks the pool to match, keeping the
// statically configured addresses as a floor for servers the mesh does
// not know about (legacy replicas).
type EndpointPool struct {
	opt   poolOptions
	trips func() // metrics hook

	mu        sync.RWMutex
	endpoints []*Endpoint
	byAddr    map[string]*Endpoint
	static    map[string]bool // configured at construction; survives absence from the fleet view
	nextIndex int             // monotonic: a re-added endpoint gets a fresh metric index
}

// NewEndpointPool builds a pool over the given addresses.
func NewEndpointPool(addrs []string, opts ...FailoverOption) *EndpointPool {
	o := poolOptions{
		failThreshold: DefaultBreakerThreshold,
		cooldown:      DefaultBreakerCooldown,
		alpha:         DefaultHealthAlpha,
		now:           time.Now,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if o.newClient == nil {
		o.newClient = func(addr string) SecretChannel {
			return NewTCPClient(addr, o.clientOpts...)
		}
	}
	p := &EndpointPool{opt: o, byAddr: make(map[string]*Endpoint), static: make(map[string]bool)}
	for _, a := range addrs {
		if _, dup := p.byAddr[a]; dup {
			continue
		}
		e := &Endpoint{Addr: a, index: p.nextIndex, health: 1}
		p.nextIndex++
		p.endpoints = append(p.endpoints, e)
		p.byAddr[a] = e
		p.static[a] = true
	}
	return p
}

// Endpoints returns a snapshot of the pool's endpoints (for diagnostics).
func (p *EndpointPool) Endpoints() []*Endpoint {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]*Endpoint(nil), p.endpoints...)
}

// has reports whether addr is currently in the pool.
func (p *EndpointPool) has(addr string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.byAddr[addr]
	return ok
}

// pick chooses the best endpoint the breakers admit, skipping excluded
// ones: closed endpoints ranked by health EWMA (latency EWMA breaking
// ties), then — only if no closed endpoint is available — an open
// endpoint whose cooldown has elapsed, transitioned to half-open for a
// single probe. Returns nil when every endpoint is excluded or open.
func (p *EndpointPool) pick(exclude map[*Endpoint]bool) *Endpoint {
	var best *Endpoint
	var bestHealth, bestLatency float64
	now := p.opt.now()
	endpoints := p.Endpoints()
	for _, e := range endpoints {
		if exclude[e] {
			continue
		}
		e.mu.Lock()
		if e.state != BreakerClosed {
			e.mu.Unlock()
			continue
		}
		h, l := e.health, e.latency
		e.mu.Unlock()
		if best == nil || h > bestHealth || (h == bestHealth && l < bestLatency) {
			best, bestHealth, bestLatency = e, h, l
		}
	}
	if best != nil {
		return best
	}
	// No closed endpoint: allow one half-open probe on a cooled-down one.
	for _, e := range endpoints {
		if exclude[e] {
			continue
		}
		e.mu.Lock()
		switch e.state {
		case BreakerOpen:
			if now.Sub(e.openedAt) >= p.opt.cooldown {
				e.state = BreakerHalfOpen
				e.probing = true
				e.mu.Unlock()
				p.count("failover.probes")
				return e
			}
		case BreakerHalfOpen:
			if !e.probing {
				e.probing = true
				e.mu.Unlock()
				p.count("failover.probes")
				return e
			}
		}
		e.mu.Unlock()
	}
	return nil
}

// record feeds one operation's outcome into the endpoint's health view
// and drives the breaker state machine.
func (p *EndpointPool) record(e *Endpoint, ok bool, dur time.Duration) {
	a := p.opt.alpha
	e.mu.Lock()
	if ok {
		e.consecFails = 0
		e.health = a*1 + (1-a)*e.health
		e.latency = a*float64(dur.Nanoseconds()) + (1-a)*e.latency
		if e.state != BreakerClosed {
			e.state = BreakerClosed
			e.probing = false
			e.mu.Unlock()
			p.count("failover.breaker_closes")
			p.opt.audit.Emit(obs.AuditEvent{Type: obs.AuditBreakerClose, Endpoint: e.Addr, Detail: "probe succeeded"})
			p.count(fmt.Sprintf("failover.ok.ep_%d", e.index))
			return
		}
		e.mu.Unlock()
		p.count(fmt.Sprintf("failover.ok.ep_%d", e.index))
		return
	}
	e.consecFails++
	fails := e.consecFails
	e.health = (1 - a) * e.health
	tripped := false
	switch e.state {
	case BreakerHalfOpen:
		// Failed probe: straight back to open, fresh cooldown.
		e.state = BreakerOpen
		e.openedAt = p.opt.now()
		e.probing = false
		tripped = true
	case BreakerClosed:
		if e.consecFails >= p.opt.failThreshold {
			e.state = BreakerOpen
			e.openedAt = p.opt.now()
			tripped = true
		}
	}
	e.mu.Unlock()
	p.count(fmt.Sprintf("failover.fail.ep_%d", e.index))
	if tripped {
		p.count("failover.breaker_trips")
		p.opt.audit.Emit(obs.AuditEvent{
			Type: obs.AuditBreakerOpen, Endpoint: e.Addr,
			Detail: fmt.Sprintf("%d consecutive failures", fails),
		})
	}
}

// count bumps a pool metric (nil-registry safe).
func (p *EndpointPool) count(name string) { p.opt.metrics.Counter(name).Inc() }

// HealthCheck reports the pool degraded while any endpoint's breaker is
// not admitting normal traffic — the /healthz readiness source for a
// process fronting a replicated server fleet.
func (p *EndpointPool) HealthCheck() error {
	var open []string
	for _, e := range p.Endpoints() {
		if e.State() != BreakerClosed {
			open = append(open, e.Addr)
		}
	}
	if len(open) > 0 {
		return fmt.Errorf("open circuit breakers: %v", open)
	}
	return nil
}

// SyncMembership asks the fleet for its current member list — walking
// the pool until some endpoint answers the v1 membership query — and
// resizes the pool to match: members the mesh reports alive or suspect
// are (re)admitted, members it reports dead are dropped, and learned
// (non-static) endpoints absent from the reply are dropped too. Static
// endpoints the fleet does not know about are kept: a legacy replica is
// invisible to the mesh but still serves. Returns an error only when no
// endpoint answered — a fleet of legacy or gossip-off servers simply
// leaves the pool static.
func (p *EndpointPool) SyncMembership(ctx context.Context) error {
	var last error
	for _, e := range p.Endpoints() {
		c := p.opt.newClient(e.Addr)
		q, ok := c.(membershipQuerier)
		if !ok {
			_ = c.Close()
			return fmt.Errorf("elide: pool's channel implementation cannot query membership")
		}
		ms, err := q.Members(ctx)
		_ = c.Close()
		if err != nil {
			last = err
			continue
		}
		added, removed := p.applyMembers(ms)
		p.count("failover.membership_syncs")
		if len(added)+len(removed) > 0 {
			p.count("failover.membership_changes")
			p.opt.audit.Emit(obs.AuditEvent{
				Type: obs.AuditMemberJoin, Endpoint: e.Addr,
				Detail: fmt.Sprintf("pool resynced: +%d -%d endpoints", len(added), len(removed)),
			})
		}
		return nil
	}
	return fmt.Errorf("elide: no endpoint answered the membership query: %w", last)
}

// applyMembers applies one fleet view to the pool under the
// SyncMembership rules.
func (p *EndpointPool) applyMembers(ms []Member) (added, removed []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	inFleet := make(map[string]bool, len(ms))
	dead := make(map[string]bool)
	for _, m := range ms {
		if m.Status == MemberDead {
			dead[m.Addr] = true
		} else {
			inFleet[m.Addr] = true
		}
	}
	for _, m := range ms {
		if m.Status == MemberDead {
			continue
		}
		if _, ok := p.byAddr[m.Addr]; !ok {
			e := &Endpoint{Addr: m.Addr, index: p.nextIndex, health: 1}
			p.nextIndex++
			p.byAddr[m.Addr] = e
			p.endpoints = append(p.endpoints, e)
			added = append(added, m.Addr)
		}
	}
	var kept []*Endpoint
	for _, e := range p.endpoints {
		if dead[e.Addr] || (!p.static[e.Addr] && !inFleet[e.Addr]) {
			delete(p.byAddr, e.Addr)
			removed = append(removed, e.Addr)
			continue
		}
		kept = append(kept, e)
	}
	p.endpoints = kept
	p.opt.metrics.Gauge("failover.endpoints").Set(int64(len(kept)))
	return added, removed
}

// WatchMembership starts a background loop calling SyncMembership every
// interval (DefaultMembershipInterval when interval <= 0) until ctx
// ends. Sync failures are counted and retried next tick — a fleet that
// temporarily cannot answer leaves the pool as it was.
func (p *EndpointPool) WatchMembership(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = DefaultMembershipInterval
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if err := p.SyncMembership(ctx); err != nil {
					p.count("failover.membership_sync_errors")
				}
			}
		}
	}()
}

// FailoverClient exposes the SecretChannel surface over an EndpointPool
// of replicated authentication servers. Attest tries endpoints in health
// order until one accepts; Request runs on the endpoint that attested
// and, when that endpoint dies mid-protocol, re-attests to a replica —
// sessions are per-server, so the replayed handshake either resumes the
// same channel (same server public key: carry on transparently) or lands
// on a different key, in which case the in-flight protocol run cannot
// continue and Request returns ErrSessionLost for the restore-level
// chain to retry from scratch.
//
// A FailoverClient is safe for concurrent use, though the restore
// protocol itself is sequential.
type FailoverClient struct {
	pool *EndpointPool

	mu        sync.Mutex
	clients   map[string]SecretChannel // per-endpoint, lazily built, reused
	cur       *Endpoint
	handshake *attestMsg // last successful handshake, replayed on switches
	serverPub []byte     // the public key the enclave's channel key is bound to
}

// NewFailoverClient builds a failover client over the given replica
// addresses.
func NewFailoverClient(addrs []string, opts ...FailoverOption) (*FailoverClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("elide: failover client needs at least one endpoint")
	}
	return &FailoverClient{
		pool:    NewEndpointPool(addrs, opts...),
		clients: make(map[string]SecretChannel),
	}, nil
}

// NewFailoverClientFromPool builds a failover client over an existing
// (possibly shared) pool. Sharing one pool across many clients on a
// machine pools their health observations: a replica that kills one
// client's connection is instantly suspect for every other client, and
// breaker state reflects the fleet's view rather than one session's.
func NewFailoverClientFromPool(pool *EndpointPool) *FailoverClient {
	return &FailoverClient{pool: pool, clients: make(map[string]SecretChannel)}
}

// Pool returns the underlying endpoint pool (for diagnostics and tests).
func (fc *FailoverClient) Pool() *EndpointPool { return fc.pool }

// Close implements SecretChannel: it closes every per-endpoint channel.
func (fc *FailoverClient) Close() error {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	var first error
	for _, c := range fc.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// sessionResumer is the optional SecretChannel capability the failover
// layer prefers when it must re-attest an established session on a new
// replica: ResumeAttest replays the handshake as a resume (no bundle
// request), so a resume-replicating fleet hands back the original channel
// key and nothing lands at the wrong position in the mid-protocol stream.
// TCPClient implements it; a channel without it gets a plain Attest,
// which is correct but downgrades to session-lost when the replica
// cannot resume.
type sessionResumer interface {
	ResumeAttest(ctx context.Context, q *sgx.Quote, clientPub []byte) ([]byte, error)
}

// clientFor returns (building if needed) the channel for an endpoint.
// Channels cached for endpoints the membership layer has since removed
// are pruned here — except the current session's, which may legitimately
// outlive its endpoint's pool entry (an in-flight protocol run keeps its
// connection until it ends or fails over).
func (fc *FailoverClient) clientFor(e *Endpoint) SecretChannel {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	for addr, cached := range fc.clients {
		if addr == e.Addr || (fc.cur != nil && fc.cur.Addr == addr) {
			continue
		}
		if !fc.pool.has(addr) {
			_ = cached.Close()
			delete(fc.clients, addr)
		}
	}
	c, ok := fc.clients[e.Addr]
	if !ok {
		c = fc.pool.opt.newClient(e.Addr)
		fc.clients[e.Addr] = c
	}
	return c
}

// Attest implements Client: the handshake is tried against endpoints in
// health order until one succeeds or every admitted endpoint has failed.
// A refusal (the server answered and said no) is terminal — a replica
// will refuse the same quote for the same reason.
func (fc *FailoverClient) Attest(ctx context.Context, q *sgx.Quote, clientPub []byte) ([]byte, error) {
	span := obs.SpanFromContext(ctx)
	tried := make(map[*Endpoint]bool)
	var last error
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e := fc.pool.pick(tried)
		if e == nil {
			break
		}
		tried[e] = true
		esp := span.Child("endpoint")
		esp.SetStr("addr", e.Addr)
		start := time.Now()
		pub, err := fc.clientFor(e).Attest(ctx, q, clientPub)
		if err == nil {
			fc.pool.record(e, true, time.Since(start))
			esp.End()
			fc.mu.Lock()
			// An attest that had to walk past dead endpoints, or that landed
			// somewhere other than the session's previous home, is a switch.
			if len(tried) > 1 || (fc.cur != nil && fc.cur != e) {
				fc.pool.count("failover.switches")
				fc.pool.opt.audit.Emit(obs.AuditEvent{
					Type: obs.AuditFailoverSwitch, Endpoint: e.Addr,
					TraceID: span.TraceID(), Detail: "attest walked the pool",
				})
			}
			fc.cur = e
			fc.handshake = &attestMsg{Quote: q, ClientPub: append([]byte(nil), clientPub...)}
			fc.serverPub = append([]byte(nil), pub...)
			fc.mu.Unlock()
			return pub, nil
		}
		esp.SetError(err)
		esp.End()
		if errors.Is(err, ErrOverloaded) {
			// The endpoint is alive but shedding this enclave's attests:
			// healthy for breaker purposes, and a replica may have quota
			// to spare — keep walking the pool.
			fc.pool.record(e, true, time.Since(start))
			fc.pool.count("failover.overloaded")
			last = err
			continue
		}
		if !isTransient(err) {
			// The endpoint is alive and answered: healthy for breaker
			// purposes, but its answer is final.
			fc.pool.record(e, true, time.Since(start))
			return nil, err
		}
		fc.pool.record(e, false, time.Since(start))
		last = err
	}
	if errors.Is(last, ErrOverloaded) {
		// Every admitted replica shed the attest: surface the typed
		// overload (with its retry-after hint), not unavailability — the
		// fleet is up, it just wants us later.
		return nil, last
	}
	fc.pool.count("failover.exhausted")
	return nil, &unavailableError{attempts: len(tried), last: last}
}

// Request implements Client: one encrypted round trip on the endpoint
// that attested. When that endpoint fails, the client fails over — it
// re-attests the stored handshake to the next healthy replica and
// compares the returned server key against the one the enclave's channel
// key is bound to. Same key: the session resumed, the request is retried
// there. Different key: the protocol run is unrecoverable mid-flight and
// ErrSessionLost is returned.
func (fc *FailoverClient) Request(ctx context.Context, enc []byte) ([]byte, error) {
	fc.mu.Lock()
	cur, handshake, boundPub := fc.cur, fc.handshake, fc.serverPub
	fc.mu.Unlock()
	if cur == nil || handshake == nil {
		return nil, ErrNotAttested
	}
	span := obs.SpanFromContext(ctx)

	start := time.Now()
	out, err := fc.clientFor(cur).Request(ctx, enc)
	if err == nil {
		fc.pool.record(cur, true, time.Since(start))
		return out, nil
	}
	if !isTransient(err) {
		fc.pool.record(cur, true, time.Since(start))
		return nil, err
	}
	fc.pool.record(cur, false, time.Since(start))

	// The attested endpoint is gone mid-protocol: fail over. Sessions are
	// per-server, so each candidate replica must re-attest first.
	tried := map[*Endpoint]bool{cur: true}
	var last error = err
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e := fc.pool.pick(tried)
		if e == nil {
			break
		}
		tried[e] = true
		esp := span.Child("failover")
		esp.SetStr("addr", e.Addr)
		astart := time.Now()
		c := fc.clientFor(e)
		var pub []byte
		var aerr error
		if r, ok := c.(sessionResumer); ok {
			pub, aerr = r.ResumeAttest(ctx, handshake.Quote, handshake.ClientPub)
		} else {
			pub, aerr = c.Attest(ctx, handshake.Quote, handshake.ClientPub)
		}
		if aerr != nil {
			esp.SetError(aerr)
			esp.End()
			if errors.Is(aerr, ErrOverloaded) {
				// Alive but shedding: healthy endpoint, try the next one.
				fc.pool.record(e, true, time.Since(astart))
				fc.pool.count("failover.overloaded")
				last = aerr
				continue
			}
			if !isTransient(aerr) {
				fc.pool.record(e, true, time.Since(astart))
				return nil, aerr
			}
			fc.pool.record(e, false, time.Since(astart))
			last = aerr
			continue
		}
		fc.pool.count("failover.switches")
		fc.pool.opt.audit.Emit(obs.AuditEvent{
			Type: obs.AuditFailoverSwitch, Endpoint: e.Addr,
			TraceID: span.TraceID(), Detail: "mid-protocol re-attest",
		})
		fc.mu.Lock()
		fc.cur = e
		fc.serverPub = append([]byte(nil), pub...)
		fc.mu.Unlock()
		if !bytes.Equal(pub, boundPub) {
			// The replica established a *different* channel: the enclave's
			// key is bound to the dead server's key and cannot decrypt
			// anything this replica sends. The in-flight protocol run is
			// over; a fresh elide_restore will attest here directly.
			esp.SetStr("outcome", "session_lost")
			esp.End()
			fc.pool.record(e, true, time.Since(astart))
			fc.pool.count("failover.session_lost")
			fc.pool.opt.audit.Emit(obs.AuditEvent{
				Type: obs.AuditSessionLost, Endpoint: e.Addr,
				TraceID: span.TraceID(), Detail: "replica holds a different server identity",
			})
			return nil, ErrSessionLost
		}
		// Same server key (a replicated or persistent resume cache): the
		// channel survived the switch — finish the request here.
		fc.pool.count("failover.session_resumed")
		out, rerr := c.Request(ctx, enc)
		if rerr == nil {
			esp.SetStr("outcome", "resumed")
			esp.End()
			fc.pool.record(e, true, time.Since(astart))
			return out, nil
		}
		esp.SetError(rerr)
		esp.End()
		if !isTransient(rerr) {
			fc.pool.record(e, true, time.Since(astart))
			return nil, rerr
		}
		fc.pool.record(e, false, time.Since(astart))
		last = rerr
	}
	if errors.Is(last, ErrOverloaded) {
		return nil, last
	}
	fc.pool.count("failover.exhausted")
	return nil, &unavailableError{attempts: len(tried), last: last}
}
