package elide

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// A second application with a different secret algorithm, so its sanitized
// image, measurement, and secret data all differ from the first app's.
const app2EDL = `
enclave {
    trusted {
        public uint64_t ecall_compute(uint64_t x);
    };
    untrusted {
    };
};
`

const app2C = `
/* A different proprietary algorithm than app.c's. */
uint64_t secret_transform(uint64_t x) {
    uint64_t acc = 13;
    for (int i = 0; i < 6; i++) {
        acc = acc * 40503 + ((x >> (i * 8)) & 255) + 17;
    }
    return acc;
}

uint64_t ecall_compute(uint64_t x) { return secret_transform(x); }
`

// secretTransform2Go is the Go reference for the second app's algorithm.
func secretTransform2Go(x uint64) uint64 {
	acc := uint64(13)
	for i := 0; i < 6; i++ {
		acc = acc*40503 + ((x >> (i * 8)) & 255) + 17
	}
	return acc
}

// buildApp2 builds the protected second test app.
func buildApp2(t *testing.T, h *sdk.Host, san SanitizeOptions) *Protected {
	t.Helper()
	wl, key := fixtures(t)
	p, err := BuildProtected(h, BuildProtectedOptions{
		Sanitize:  san,
		AppEDL:    app2EDL,
		Sources:   []sdk.Source{sdk.C("app2.c", app2C)},
		SignKey:   key,
		Whitelist: wl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// registerProtected puts a built deployment into a store the way
// NewServerFor would configure a single server for it.
func registerProtected(t *testing.T, st *SecretStore, p *Protected, name string) {
	t.Helper()
	var plain []byte
	if !p.Meta.Encrypted {
		plain = p.SecretData
	}
	if _, err := st.Register(p.Measurement, p.Meta, plain, name); err != nil {
		t.Fatal(err)
	}
}

// TestMultiEnclaveServing is the end-to-end multi-tenant check: one server
// process concurrently serves two differently-sanitized enclaves over TCP,
// each restore succeeds, each enclave runs its own (distinct) secret
// algorithm afterwards, and the per-enclave release counters prove each
// identity was served exactly its own secrets.
func TestMultiEnclaveServing(t *testing.T) {
	ca, h := env(t)
	pA := buildApp(t, h, SanitizeOptions{})
	pB := buildApp2(t, h, SanitizeOptions{})
	if pA.Measurement == pB.Measurement {
		t.Fatal("the two apps share a measurement; the test is vacuous")
	}
	if bytes.Equal(pA.SecretData, pB.SecretData) {
		t.Fatal("the two apps share secret data; the test is vacuous")
	}

	store := NewSecretStore()
	registerProtected(t, store, pA, "app-a")
	registerProtected(t, store, pB, "app-b")
	srv, err := NewMultiServer(ca.PublicKey(), store, WithIOTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l) }()

	// Both enclaves restore concurrently against the one server, each on
	// its own simulated user machine.
	type result struct {
		name string
		err  error
	}
	results := make(chan result, 2)
	run := func(name string, p *Protected, check func(*sdk.Enclave) error) {
		err := func() error {
			platform, err := sgx.NewPlatform(sgx.Config{}, ca)
			if err != nil {
				return err
			}
			host := sdk.NewHost(platform)
			client := NewTCPClient(l.Addr().String())
			defer client.Close()
			encl, rt, err := p.Launch(host, client, p.LocalFiles())
			if err != nil {
				return err
			}
			defer encl.Destroy()
			code, err := encl.ECall("elide_restore", 0)
			if err != nil {
				return err
			}
			if code != RestoreOKServer {
				return fmt.Errorf("restore = %d (runtime: %v)", code, rt.LastErr())
			}
			return check(encl)
		}()
		results <- result{name, err}
	}
	go run("app-a", pA, func(encl *sdk.Enclave) error {
		for _, x := range []uint64{3, 0xFEED} {
			got, err := encl.ECall("ecall_compute", x)
			if err != nil {
				return err
			}
			if got != secretTransformGo(x) {
				return fmt.Errorf("A.compute(%#x) = %#x, want %#x — wrong code restored", x, got, secretTransformGo(x))
			}
		}
		return nil
	})
	go run("app-b", pB, func(encl *sdk.Enclave) error {
		for _, x := range []uint64{3, 0xFEED} {
			got, err := encl.ECall("ecall_compute", x)
			if err != nil {
				return err
			}
			if got != secretTransform2Go(x) {
				return fmt.Errorf("B.compute(%#x) = %#x, want %#x — wrong code restored", x, got, secretTransform2Go(x))
			}
		}
		return nil
	})
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("%s: %v", r.name, r.err)
		}
	}
	cancel()
	if err := <-served; err != nil && !errors.Is(err, ErrServerClosed) {
		t.Fatal(err)
	}

	// Release accounting: each identity attested and was served its meta
	// and data exactly once — no cross-enclave traffic.
	for _, tc := range []struct {
		name string
		p    *Protected
	}{{"app-a", pA}, {"app-b", pB}} {
		e, ok := store.Lookup(tc.p.Measurement)
		if !ok {
			t.Fatalf("%s missing from store", tc.name)
		}
		st := e.Stats()
		if st.Attests != 1 || st.MetaServed != 1 || st.DataServed != 1 {
			t.Errorf("%s release counters: %+v", tc.name, st)
		}
	}
}

// attestedGoSession runs the client half of the attested-channel protocol
// in Go against a server session, using a quote legitimately produced for
// the given enclave: it returns the session and the derived channel key.
func attestedGoSession(t *testing.T, srv *Server, h *sdk.Host, encl *sdk.Enclave) (*Session, []byte) {
	t.Helper()
	priv, pub, err := sdk.GenerateECDHKeypair()
	if err != nil {
		t.Fatal(err)
	}
	var rdata [sgx.ReportDataSize]byte
	binding := sha256.Sum256(pub)
	copy(rdata[:], binding[:])
	report, err := h.Platform.EReport(encl.Encl, sgx.QETargetInfo(), rdata)
	if err != nil {
		t.Fatal(err)
	}
	quote, err := h.Platform.QuoteReport(report)
	if err != nil {
		t.Fatal(err)
	}
	ss := srv.NewSession()
	spub, err := ss.Attest(quote, pub)
	if err != nil {
		t.Fatal(err)
	}
	key, err := sdk.DeriveChannelKey(priv, spub)
	if err != nil {
		t.Fatal(err)
	}
	return ss, key
}

// TestWrongMeasurementIsolation drives the channel protocol directly:
// a session attested as enclave A receives exactly A's metadata and data,
// never B's, and an unregistered measurement is refused outright.
func TestWrongMeasurementIsolation(t *testing.T) {
	ca, h := env(t)
	pA := buildApp(t, h, SanitizeOptions{})
	pB := buildApp2(t, h, SanitizeOptions{})

	store := NewSecretStore()
	registerProtected(t, store, pA, "app-a")
	registerProtected(t, store, pB, "app-b")
	srv, err := NewMultiServer(ca.PublicKey(), store)
	if err != nil {
		t.Fatal(err)
	}

	// Loading the enclaves gives us platform-signed quotes for both
	// identities (the quote is over the *sanitized* measurement).
	launch := func(p *Protected) *sdk.Enclave {
		t.Helper()
		rt := &Runtime{Client: deadClient{}, Files: &FileStore{}}
		rt.Install(h)
		encl, err := h.CreateEnclave(p.SanitizedELF, p.SigStruct, p.EDL)
		if err != nil {
			t.Fatal(err)
		}
		return encl
	}
	enclA := launch(pA)
	enclB := launch(pB)

	request := func(ss *Session, key []byte, req byte) ([]byte, error) {
		t.Helper()
		enc, err := sealEncrypt(key, []byte{req})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ss.Request(enc)
		if err != nil {
			return nil, err
		}
		return sealDecrypt(key, resp)
	}

	ssA, keyA := attestedGoSession(t, srv, h, enclA)
	ssB, keyB := attestedGoSession(t, srv, h, enclB)

	metaA, err := request(ssA, keyA, RequestMeta)
	if err != nil {
		t.Fatal(err)
	}
	metaB, err := request(ssB, keyB, RequestMeta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(metaA, pA.Meta.Marshal()) {
		t.Error("session A did not receive A's metadata")
	}
	if !bytes.Equal(metaB, pB.Meta.Marshal()) {
		t.Error("session B did not receive B's metadata")
	}
	if bytes.Equal(metaA, metaB) {
		t.Error("sessions for different enclaves received identical metadata")
	}

	dataA, err := request(ssA, keyA, RequestData)
	if err != nil {
		t.Fatal(err)
	}
	dataB, err := request(ssB, keyB, RequestData)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dataA, pA.SecretData) || bytes.Equal(dataA, pB.SecretData) {
		t.Error("session A's data release is not exactly A's secret")
	}
	if !bytes.Equal(dataB, pB.SecretData) || bytes.Equal(dataB, pA.SecretData) {
		t.Error("session B's data release is not exactly B's secret")
	}

	// Removing B at runtime refuses new attestations for it while A keeps
	// working — runtime removal takes effect immediately.
	if !store.Remove(pB.Measurement) {
		t.Fatal("remove failed")
	}
	priv, pub, err := sdk.GenerateECDHKeypair()
	_ = priv
	if err != nil {
		t.Fatal(err)
	}
	var rdata [sgx.ReportDataSize]byte
	binding := sha256.Sum256(pub)
	copy(rdata[:], binding[:])
	report, err := h.Platform.EReport(enclB.Encl, sgx.QETargetInfo(), rdata)
	if err != nil {
		t.Fatal(err)
	}
	quote, err := h.Platform.QuoteReport(report)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.NewSession().Attest(quote, pub); err == nil || !strings.Contains(err.Error(), "measurement") {
		t.Errorf("removed enclave attested: %v", err)
	}
	if _, err := request(ssA, keyA, RequestMeta); err != nil {
		t.Errorf("A's session broken by B's removal: %v", err)
	}
}

// TestBackoffConcurrentRequests is the -race regression for the backoff
// jitter source: one client, many goroutines, every attempt forced through
// a failing dial so each one sleeps a jittered backoff concurrently.
func TestBackoffConcurrentRequests(t *testing.T) {
	dialErr := errors.New("synthetic dial failure")
	c := NewTCPClient("unused:0",
		WithMaxRetries(2),
		WithBackoff(time.Microsecond, 4*time.Microsecond),
		WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
			return nil, dialErr
		}),
	)
	// Pretend a prior attestation succeeded so Request reaches the retry
	// loop (and therefore the backoff path) directly.
	c.mu.Lock()
	c.attested = true
	c.handshake = &attestMsg{}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				_, err := c.Request(context.Background(), []byte("x"))
				if !errors.Is(err, ErrServerUnavailable) {
					t.Errorf("err = %v, want ErrServerUnavailable", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
