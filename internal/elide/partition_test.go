package elide

import (
	"bytes"
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sgx"
)

// TestPartitionHealConvergence (DESIGN §15): two fleet halves accumulate
// disjoint resume records while partitioned, both declare the other side
// dead, and when the partition heals the dead-member re-probe revives the
// link and anti-entropy converges both stores — so every session
// established on either side resumes on the other with zero extra
// attestation flights.
func TestPartitionHealConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("enclave quote generation in -short")
	}
	ca, h := env(t)
	p := buildApp(t, h, SanitizeOptions{})
	lA, lB := listen(t), listen(t)
	addrA, addrB := lA.Addr().String(), lB.Addr().String()
	key := bytes.Repeat([]byte{0x77}, 32)
	mA, mB := obs.NewRegistry(), obs.NewRegistry()
	aA, aB := obs.NewAuditLog(0), obs.NewAuditLog(0)

	// The partition is a dialer gate: while up, every peer-link dial —
	// gossip pings, pushes, digests — fails as if the network dropped it.
	var partitioned atomic.Bool
	gatedDial := func(addr string, timeout time.Duration) (net.Conn, error) {
		if partitioned.Load() {
			return nil, errNet("partitioned")
		}
		return defaultPeerDial(addr, timeout)
	}
	fleetOpts := func(self, peer string, m *obs.Registry, a *obs.AuditLog) []ServerOption {
		return []ServerOption{
			WithDrainTimeout(50 * time.Millisecond),
			WithServerMetrics(m), WithServerAudit(a),
			WithResumeReplication(key, peer),
			WithGossip(self),
			WithGossipInterval(10 * time.Millisecond),
			WithSuspectTimeout(60 * time.Millisecond),
			withPeerDialer(gatedDial),
		}
	}
	srvA, err := p.NewServerFor(ca, fleetOpts(addrA, addrB, mA, aA)...)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := p.NewServerFor(ca, fleetOpts(addrB, addrA, mB, aB)...)
	if err != nil {
		t.Fatal(err)
	}
	serveKill(t, srvA, lA)
	serveKill(t, srvB, lB)

	statusAt := func(srv *Server, addr string) MemberStatus {
		st, _ := memberStatus(srv.Members(), addr)
		return st
	}
	waitFor(t, "mutual alive before the partition", func() bool {
		return statusAt(srvA, addrB) == MemberAlive && statusAt(srvB, addrA) == MemberAlive
	})

	partitioned.Store(true)
	waitFor(t, "both sides declare the other dead", func() bool {
		return statusAt(srvA, addrB) == MemberDead && statusAt(srvB, addrA) == MemberDead
	})

	// Disjoint load: sessions land on each half independently.
	encl := loadQuoteOnly(t, h, p)
	ctx := context.Background()
	const perSide = 3
	type session struct {
		q    *sgx.Quote
		cpub []byte
		pub  []byte
	}
	establish := func(addr string) []session {
		out := make([]session, perSide)
		for i := range out {
			q, cpub := freshQuote(t, h, encl)
			pub, err := v1Client(addr).Attest(ctx, q, cpub)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = session{q: q, cpub: cpub, pub: pub}
		}
		return out
	}
	onA, onB := establish(addrA), establish(addrB)
	if la, lb := srvA.ResumeLen(), srvB.ResumeLen(); la != perSide || lb != perSide {
		t.Fatalf("records crossed the partition: A=%d B=%d, want %d each", la, lb, perSide)
	}
	attestsA := mA.Counter("server.attest_ok").Load()
	attestsB := mB.Counter("server.attest_ok").Load()

	// Heal. The periodic dead-member re-probe carries our view of the
	// peer (dead), the peer refutes with a higher incarnation, both
	// revive — and the next anti-entropy round swaps the missing records.
	partitioned.Store(false)
	waitFor(t, "revival after heal", func() bool {
		return statusAt(srvA, addrB) == MemberAlive && statusAt(srvB, addrA) == MemberAlive
	})
	waitFor(t, "anti-entropy convergence after heal", func() bool {
		return srvA.ResumeLen() == 2*perSide && srvB.ResumeLen() == 2*perSide
	})

	// Every session resumes on the *other* half, byte-identical channel.
	for _, s := range onA {
		pub, err := v1Client(addrB).ResumeAttest(ctx, s.q, s.cpub)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pub, s.pub) {
			t.Fatal("cross-partition resume returned a different server key")
		}
	}
	for _, s := range onB {
		pub, err := v1Client(addrA).ResumeAttest(ctx, s.q, s.cpub)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pub, s.pub) {
			t.Fatal("cross-partition resume returned a different server key")
		}
	}
	if got := mA.Counter("server.attest_ok").Load(); got != attestsA {
		t.Fatalf("A ran %d extra attest flights post-heal", got-attestsA)
	}
	if got := mB.Counter("server.attest_ok").Load(); got != attestsB {
		t.Fatalf("B ran %d extra attest flights post-heal", got-attestsB)
	}
	for name, counts := range map[string]map[string]uint64{"A": aA.Counts(), "B": aB.Counts()} {
		if counts[obs.AuditMemberDead] == 0 {
			t.Errorf("%s: no member_dead audit event during the partition", name)
		}
		if counts[obs.AuditMemberAlive] == 0 {
			t.Errorf("%s: no member_alive audit event after the heal", name)
		}
	}
}

// errNet is a throwaway error type so the gate reads as a network fault.
type errNet string

func (e errNet) Error() string { return string(e) }
