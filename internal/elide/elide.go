// Package elide implements SgxElide (CGO 2018): enclave code secrecy via
// self-modification.
//
// The package provides the three components of Figure 1 of the paper:
//
//   - Whitelist generation (whitelist.go): build a dummy enclave containing
//     only the SgxElide runtime and the SDK libraries it needs, and extract
//     its function symbols. These are the functions that must survive
//     sanitization in every protected enclave.
//   - The Sanitizer (sanitize.go): take a compiled, unsigned enclave ELF,
//     zero the body of every function not on the whitelist, set PF_W on the
//     text segment (SGXv1 cannot change page permissions at runtime), and
//     emit enclave.secret.meta + enclave.secret.data.
//   - The Runtime Restorer: trusted code (trusted.go, compiled into every
//     protected enclave) exposing the single ecall elide_restore, plus the
//     untrusted runtime (runtime.go) servicing its ocalls, plus the
//     developer-controlled authentication server (server.go).
package elide

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"sgxelide/internal/sdk"
)

// Requests of the untrusted elide_server_request ocall (first argument).
const (
	ReqAttest  = 0 // payload: report(200) || client ECDH pub(32); reply: server pub(32)
	ReqChannel = 1 // payload: AES-GCM encrypted message on the attested channel
)

// Request bytes inside the encrypted channel (the paper's one-byte protocol).
const (
	RequestMeta = 1
	RequestData = 2
)

// Secret data formats.
const (
	FormatWholeText = 0 // data is the entire original text section (paper §5)
	FormatRanges    = 1 // data is (count, {off,len,bytes}...) records — the
	// space optimization the paper describes but does not implement
)

// elide_restore flags (the ecall's argument).
const (
	FlagTrySealed = 1 << 0 // attempt restore from the sealed file first
	FlagSealAfter = 1 << 1 // seal the secret after restoring (paper step 7)
)

// elide_restore return codes.
const (
	RestoreOKServer = 0   // restored via the authentication server
	RestoreOKSealed = 1   // restored from the sealed file, no network
	RestoreErrBase  = 100 // codes >= RestoreErrBase are failures (see trusted.go)

	// RestoreErrTorn: the post-restore text digest did not match the
	// metadata's digest — the memcpy wrote something other than the
	// original bytes (torn apply, or a server that released tampered
	// data). The enclave does not mark itself restored, so a retry
	// re-runs the whole protocol.
	RestoreErrTorn = 110
)

// Diagnostic codes of the elide_report ocall: the trusted restorer's way
// of telling the untrusted runtime *why* it degraded, beyond the single
// return code of elide_restore. The runtime maps these to typed errors in
// its error ring.
const (
	ReportSealedCorrupt = 1 // sealed blob failed its MAC / digest; falling back to the network
	ReportTornRestore   = 2 // post-restore digest mismatch (RestoreErrTorn follows)
	ReportDegradedLocal = 3 // remote data fetch failed; degrading to the encrypted local file
)

// MetaBlobSize is the serialized SecretMeta size (fixed layout, carried
// encrypted over the attested channel).
const MetaBlobSize = 101

// SecretMeta is the enclave.secret.meta content: everything the restorer
// needs. It must never ship with the enclave — it lives only on the
// authentication server (it may contain the decryption key).
type SecretMeta struct {
	DataLen       uint64 // plaintext secret data length
	RestoreOffset uint64 // offset of elide_restore from the text section start
	Encrypted     bool   // secret data is stored locally, AES-GCM encrypted
	Hybrid        bool   // data is both on the server and in the encrypted local file
	Format        byte   // FormatWholeText or FormatRanges
	Key           [16]byte
	IV            [12]byte
	MAC           [16]byte
	_             [1]byte // explicit padding: boundary structs carry no implicit holes

	// TextLen/TextDigest pin the expected post-restore text: the restorer
	// hashes the whole text section after the apply and refuses to report
	// success on a mismatch (torn-restore protection).
	TextLen    uint64
	TextDigest [32]byte
}

// Marshal serializes the meta blob in the wire/file layout:
//
//	0  dataLen u64        16 flags u8 (bit0 encrypted, bit1 ranges, bit2 hybrid)
//	8  restoreOffset u64  17 key[16]  33 iv[12]  45 mac[16]
//	61 textLen u64        69 textDigest[32]
func (m *SecretMeta) Marshal() []byte {
	out := make([]byte, MetaBlobSize)
	binary.LittleEndian.PutUint64(out[0:], m.DataLen)
	binary.LittleEndian.PutUint64(out[8:], m.RestoreOffset)
	var flags byte
	if m.Encrypted {
		flags |= 1
	}
	if m.Format == FormatRanges {
		flags |= 2
	}
	if m.Hybrid {
		flags |= 4
	}
	out[16] = flags
	copy(out[17:33], m.Key[:])
	copy(out[33:45], m.IV[:])
	copy(out[45:61], m.MAC[:])
	binary.LittleEndian.PutUint64(out[61:], m.TextLen)
	copy(out[69:101], m.TextDigest[:])
	return out
}

// UnmarshalMeta parses a meta blob.
func UnmarshalMeta(b []byte) (*SecretMeta, error) {
	if len(b) != MetaBlobSize {
		return nil, fmt.Errorf("elide: meta blob is %d bytes, want %d", len(b), MetaBlobSize)
	}
	m := &SecretMeta{
		DataLen:       binary.LittleEndian.Uint64(b[0:]),
		RestoreOffset: binary.LittleEndian.Uint64(b[8:]),
		Encrypted:     b[16]&1 != 0,
		Hybrid:        b[16]&4 != 0,
		TextLen:       binary.LittleEndian.Uint64(b[61:]),
	}
	if b[16]&2 != 0 {
		m.Format = FormatRanges
	}
	copy(m.Key[:], b[17:33])
	copy(m.IV[:], b[33:45])
	copy(m.MAC[:], b[45:61])
	copy(m.TextDigest[:], b[69:101])
	return m, nil
}

// sealEncrypt AES-GCM-encrypts plaintext under a fresh IV, returning
// iv || mac || ct (the framing used on the channel and in files).
func sealEncrypt(key, plaintext []byte) ([]byte, error) {
	iv := make([]byte, sdk.GCMIVSize)
	if _, err := rand.Read(iv); err != nil {
		return nil, err
	}
	ct, mac, err := sdk.AESGCMSeal(key, iv, plaintext)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(iv)+len(mac)+len(ct))
	out = append(out, iv...)
	out = append(out, mac...)
	out = append(out, ct...)
	return out, nil
}

// ChannelSeal encrypts one request or response for the attested channel:
// AES-GCM under the session's derived key, framed iv || mac || ct. It is
// what the trusted restorer does before every REQUEST_* — exported so
// protocol-level tooling (conformance tests, the load generator) can
// speak the channel without loading an enclave per session.
func ChannelSeal(key, plaintext []byte) ([]byte, error) {
	return sealEncrypt(key, plaintext)
}

// ChannelOpen reverses ChannelSeal.
func ChannelOpen(key, blob []byte) ([]byte, error) {
	return sealDecrypt(key, blob)
}

// sealDecrypt reverses sealEncrypt.
func sealDecrypt(key, blob []byte) ([]byte, error) {
	if len(blob) < sdk.GCMIVSize+sdk.GCMMACSize {
		return nil, fmt.Errorf("elide: encrypted blob too short")
	}
	iv := blob[:sdk.GCMIVSize]
	mac := blob[sdk.GCMIVSize : sdk.GCMIVSize+sdk.GCMMACSize]
	ct := blob[sdk.GCMIVSize+sdk.GCMMACSize:]
	return sdk.AESGCMOpen(key, iv, ct, mac)
}
