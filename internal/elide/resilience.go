package elide

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
)

// RestoreOptions configures RestoreResilient.
type RestoreOptions struct {
	// Flags are the base elide_restore flags. FlagTrySealed is added
	// automatically when the file store holds a sealed blob.
	Flags uint64

	// MaxAttempts bounds protocol runs (default 3). Each attempt is a full
	// elide_restore: a retryable failure re-attests from scratch, which is
	// exactly what a session lost to a failover needs.
	MaxAttempts int

	// Backoff is the base delay between attempts, doubled each retry
	// (default 50ms; the per-endpoint transport already jitters below this).
	Backoff time.Duration
}

// RestoreOutcome reports how a resilient restore ended: the enclave code,
// which strategy in the degradation chain produced the bytes, how many
// protocol runs it took, and the typed events the runtime observed along
// the way (sealed-blob corruption, degradation to the local file, lost
// sessions) — a restore can succeed *and* have a story worth logging.
type RestoreOutcome struct {
	Code     uint64
	Source   string // "sealed", "server", or "local"
	Attempts int
	Events   []error
	// TraceIDs holds the trace of each protocol run, in attempt order
	// (zeros without a tracer). The last entry is the trace the flight
	// recorder dumps on a terminal failure.
	TraceIDs []uint64
}

// LastTraceID returns the trace of the final attempt (zero when untraced).
func (o *RestoreOutcome) LastTraceID() uint64 {
	if len(o.TraceIDs) == 0 {
		return 0
	}
	return o.TraceIDs[len(o.TraceIDs)-1]
}

// RestoreFailure is the error RestoreResilient returns when the strategy
// chain is exhausted; it matches ErrRestoreFailed and unwraps to the last
// typed event.
type RestoreFailure struct {
	Code     uint64 // last enclave return code (>= RestoreErrBase)
	Attempts int
	Last     error // last typed event from the runtime ring, if any
}

func (e *RestoreFailure) Error() string {
	s := fmt.Sprintf("elide: restore failed after %d attempts (code %d)", e.Attempts, e.Code)
	if e.Last != nil {
		s += ": " + e.Last.Error()
	}
	return s
}

func (e *RestoreFailure) Is(target error) bool { return target == ErrRestoreFailed }

func (e *RestoreFailure) Unwrap() error { return e.Last }

// RestoreResilient drives elide_restore through the degradation chain —
// sealed blob, then the authentication server (or pool), then in hybrid
// deployments the encrypted local file — retrying whole protocol runs
// when the failure is retryable: a session lost to an endpoint failover,
// an exhausted transport retry budget, a stale-session refusal on the
// encrypted channel, or a torn apply. Terminal failures (an attestation
// refusal — the server examined the quote and said no — or a cancelled
// context) are returned immediately: retrying cannot change the answer.
//
// The strategy *ordering* lives in the enclave (trusted.go); this driver
// adds what the enclave cannot do for itself: classify why a run failed
// and decide whether another run is worth the wire traffic.
func RestoreResilient(ctx context.Context, encl *sdk.Enclave, rt *Runtime, opts RestoreOptions) (*RestoreOutcome, error) {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	flags := opts.Flags
	if rt.Files != nil && len(rt.Files.Sealed) > 0 {
		flags |= FlagTrySealed
	}

	out := &RestoreOutcome{}
	var lastCode uint64
	var lastErr error
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if attempt > 0 {
			rt.Metrics.Counter("restore.retries").Inc()
			delay := opts.Backoff << uint(attempt-1)
			// A server overload answer carries a retry-after hint; sleeping
			// less than it just burns the next attempt against a server that
			// already said "not yet".
			if hint := overloadRetryAfter(lastErr); hint > delay {
				delay = hint
			}
			if err := sleepCtx(ctx, delay); err != nil {
				return out, err
			}
		}
		mark := len(rt.Errs())
		out.Attempts++
		code, traceID, err := restoreTraced(encl, flags)
		out.TraceIDs = append(out.TraceIDs, traceID)
		events := rt.Errs()
		if mark < len(events) {
			events = events[mark:]
		} else {
			events = nil
		}
		out.Events = append(out.Events, events...)
		if err != nil {
			// The ecall itself failed (SDK-level): nothing ran, not retryable.
			rt.Audit.Emit(obs.AuditEvent{Type: obs.AuditRestoreFailed, TraceID: traceID, Detail: "ecall failed: " + err.Error()})
			return out, err
		}
		if code < RestoreErrBase {
			out.Code = code
			out.Source = restoreSource(code, events)
			rt.Metrics.Counter("restore.ok." + out.Source).Inc()
			rt.Audit.Emit(obs.AuditEvent{Type: obs.AuditRestoreOK, TraceID: traceID, Detail: out.Source, Code: int64(code)})
			return out, nil
		}
		lastCode = code
		lastErr = lastTyped(events)
		if !restoreRetryable(code, events) {
			break
		}
		rt.Audit.Emit(obs.AuditEvent{Type: obs.AuditRestoreRetry, TraceID: traceID, Detail: retryDetail(lastErr), Code: int64(code)})
	}
	rt.Metrics.Counter("restore.exhausted").Inc()
	out.Code = lastCode
	fail := &RestoreFailure{Code: lastCode, Attempts: out.Attempts, Last: lastErr}
	rt.Audit.Emit(obs.AuditEvent{Type: obs.AuditRestoreFailed, TraceID: out.LastTraceID(), Detail: retryDetail(lastErr), Code: int64(lastCode)})
	return out, fail
}

// overloadRetryAfter extracts the server's retry-after hint when err (or
// anything in its chain) is an overload answer, clamped to the backoff
// cap so a confused server cannot park the restore loop indefinitely.
// Zero when there is no hint.
func overloadRetryAfter(err error) time.Duration {
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		return 0
	}
	hint := oe.RetryAfter
	if hint > DefaultBackoffCap {
		hint = DefaultBackoffCap
	}
	return hint
}

// retryDetail names the typed cause of a failed attempt for the audit
// stream without dragging full error chains (and whatever they wrap)
// across the telemetry boundary.
func retryDetail(err error) string {
	switch {
	case err == nil:
		return "enclave error code only"
	case errors.Is(err, ErrSessionLost):
		return "session lost"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrTornRestore):
		return "torn restore"
	case errors.Is(err, ErrSealedCorrupt):
		return "sealed corrupt"
	case errors.Is(err, ErrServerUnavailable):
		return "server unavailable"
	case errors.Is(err, ErrRefused):
		return "refused"
	default:
		return "transport error"
	}
}

// restoreSource names the strategy that produced a successful restore's
// bytes. The enclave's code distinguishes sealed from protocol; within a
// protocol run, a ReportDegradedLocal event means the remote fetch failed
// and the encrypted local file supplied the data.
func restoreSource(code uint64, events []error) string {
	if code == RestoreOKSealed {
		return "sealed"
	}
	for _, e := range events {
		if errors.Is(e, ErrRemoteDataUnavailable) {
			return "local"
		}
	}
	return "server"
}

// restoreRetryable classifies a failed protocol run from the enclave code
// and the typed events the runtime recorded during it.
func restoreRetryable(code uint64, events []error) bool {
	// A torn apply left elide_restored clear; the next run redoes the whole
	// protocol, and a transient corruption (scribbled data ocall buffer)
	// will not repeat.
	if code == RestoreErrTorn {
		return true
	}
	retryable := false
	for _, e := range events {
		var pe *PhaseError
		if errors.As(e, &pe) {
			if pe.Phase == "attest" && errors.Is(pe, ErrRefused) {
				// The server examined the quote and refused it: wrong
				// identity or revoked deployment. No retry helps.
				return false
			}
			if errors.Is(pe, ErrRefused) {
				// A refusal on the encrypted channel is almost always a
				// stale session (the endpoint changed under us); a fresh
				// protocol run attests to the live endpoint directly.
				retryable = true
				continue
			}
		}
		if errors.Is(e, ErrSessionLost) || errors.Is(e, ErrServerUnavailable) {
			retryable = true
		}
		// An overload answer is explicitly an invitation to retry: the
		// server shed this run under backpressure, and the between-attempt
		// backoff is exactly the "come back later" it asked for.
		if errors.Is(e, ErrOverloaded) {
			retryable = true
		}
	}
	return retryable
}

// lastTyped returns the newest event worth reporting (skipping the
// degradation notices that are context, not cause).
func lastTyped(events []error) error {
	for i := len(events) - 1; i >= 0; i-- {
		if !errors.Is(events[i], ErrRemoteDataUnavailable) {
			return events[i]
		}
	}
	return nil
}
