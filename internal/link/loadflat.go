package link

import "sgxelide/internal/evm"

// LoadFlat maps the image into a fresh permissionless flat memory, for bare
// (non-enclave) execution: toolchain tests and the compiler's own harness.
// Enclave execution instead goes through the SGX loader, which EADDs each
// segment with its permissions.
func (im *Image) LoadFlat() *evm.FlatMem {
	mem := evm.NewFlatMem(im.Base, int(im.End-im.Base))
	for _, seg := range im.Segments {
		mem.WriteBytes(seg.Addr, seg.Data)
	}
	return mem
}

// NewVM returns a VM ready to run the image bare: PC at the entry point and
// SP at the linked stack top.
func (im *Image) NewVM() *evm.VM {
	m := evm.New(im.LoadFlat())
	m.PC = im.Entry
	if st, ok := im.FindSymbol("__stack_top"); ok {
		m.SetSP(st.Addr)
	}
	return m
}
