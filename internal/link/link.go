// Package link combines assembled object files into a loadable image:
// it lays out sections into page-aligned segments, resolves symbols,
// applies relocations, and reserves heap and stack space.
//
// Images are linked at a fixed base address. The SGX loader maps the image
// at that address inside the enclave's linear range, mirroring how the SGX
// SDK builds enclaves at a known offset within ELRANGE.
package link

import (
	"fmt"
	"sort"

	"sgxelide/internal/obj"
)

// Perm is a segment permission bitmask.
type Perm byte

const (
	PermR Perm = 1 << 0
	PermW Perm = 1 << 1
	PermX Perm = 1 << 2
)

func (p Perm) String() string {
	s := [3]byte{'-', '-', '-'}
	if p&PermR != 0 {
		s[0] = 'r'
	}
	if p&PermW != 0 {
		s[1] = 'w'
	}
	if p&PermX != 0 {
		s[2] = 'x'
	}
	return string(s[:])
}

// Segment is one contiguous mapped region of the image.
type Segment struct {
	Name string
	Addr uint64
	Data []byte // file-backed content; zero-fill beyond len(Data) up to Size
	Size uint64 // total mapped size (>= len(Data))
	Perm Perm
}

// End returns the first address past the segment.
func (s *Segment) End() uint64 { return s.Addr + s.Size }

// Symbol is a resolved symbol with its final address.
type Symbol struct {
	Name   string
	Addr   uint64
	Size   uint64
	Kind   obj.SymKind
	Global bool
}

// Image is a fully linked, loadable program image.
type Image struct {
	Base     uint64
	End      uint64 // first address past all segments (page aligned)
	Segments []*Segment
	Symbols  []Symbol
	Entry    uint64

	symIndex map[string]int
}

// FindSymbol returns the symbol named name.
func (im *Image) FindSymbol(name string) (Symbol, bool) {
	i, ok := im.symIndex[name]
	if !ok {
		return Symbol{}, false
	}
	return im.Symbols[i], true
}

// FindSegment returns the segment named name (".text", ".data", ...).
func (im *Image) FindSegment(name string) *Segment {
	for _, s := range im.Segments {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Funcs returns all function symbols sorted by address.
func (im *Image) Funcs() []Symbol {
	var out []Symbol
	for _, s := range im.Symbols {
		if s.Kind == obj.SymFunc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Config controls linking.
type Config struct {
	Base      uint64 // image base; default 0x10000000; must be page aligned
	PageSize  uint64 // default 4096
	Entry     string // entry symbol; empty leaves Image.Entry zero
	HeapSize  uint64 // heap reservation; default 256 KiB
	StackSize uint64 // stack reservation; default 64 KiB
}

func (c *Config) fill() {
	if c.Base == 0 {
		c.Base = 0x10000000
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.HeapSize == 0 {
		c.HeapSize = 256 << 10
	}
	if c.StackSize == 0 {
		c.StackSize = 64 << 10
	}
}

// sectionOrder is the layout order of sections into segments.
var sectionOrder = []obj.SectionKind{obj.SecText, obj.SecRodata, obj.SecData, obj.SecBss}

// segPerm maps sections to their load permissions.
func segPerm(k obj.SectionKind) Perm {
	switch k {
	case obj.SecText:
		return PermR | PermX
	case obj.SecRodata:
		return PermR
	default:
		return PermR | PermW
	}
}

// Link links files into an image.
func Link(cfg Config, files ...*obj.File) (*Image, error) {
	cfg.fill()
	if cfg.Base%cfg.PageSize != 0 {
		return nil, fmt.Errorf("link: base %#x not page aligned", cfg.Base)
	}

	align := func(v, a uint64) uint64 {
		if a == 0 {
			a = 1
		}
		return (v + a - 1) &^ (a - 1)
	}

	// Pass 1: lay out each file's section contributions.
	// placement[file][kind] = final address of that contribution.
	type placeKey struct {
		fi   int
		kind obj.SectionKind
	}
	place := make(map[placeKey]uint64)

	im := &Image{Base: cfg.Base, symIndex: make(map[string]int)}
	addr := cfg.Base
	for _, kind := range sectionOrder {
		segStart := align(addr, cfg.PageSize)
		seg := &Segment{Name: kind.String(), Addr: segStart, Perm: segPerm(kind)}
		cur := segStart
		for fi, f := range files {
			sec, ok := f.Sections[kind]
			if !ok || sec.Len() == 0 {
				continue
			}
			cur = align(cur, sec.Align)
			place[placeKey{fi, kind}] = cur
			if kind != obj.SecBss {
				// Zero-pad up to the aligned position.
				for uint64(len(seg.Data)) < cur-segStart {
					seg.Data = append(seg.Data, 0)
				}
				seg.Data = append(seg.Data, sec.Data...)
			}
			cur += sec.Len()
		}
		seg.Size = cur - segStart

		// Reserve heap and stack at the end of the bss segment.
		if kind == obj.SecBss {
			cur = align(cur, 16)
			heapBase := cur
			cur += cfg.HeapSize
			heapEnd := cur
			stackBase := cur
			cur += cfg.StackSize
			stackTop := cur
			seg.Size = cur - segStart
			defineLinkerSyms(im, map[string]uint64{
				"__heap_base":  heapBase,
				"__heap_end":   heapEnd,
				"__stack_base": stackBase,
				"__stack_top":  stackTop,
			})
		}

		if seg.Size > 0 {
			im.Segments = append(im.Segments, seg)
		}
		addr = segStart + seg.Size
	}
	im.End = align(addr, cfg.PageSize)

	// Linker-provided layout symbols.
	bounds := map[string]uint64{
		"__enclave_base": im.Base,
		"__enclave_end":  im.End,
	}
	for _, kind := range sectionOrder {
		name := kind.String()[1:] // "text", "rodata", ...
		if seg := im.FindSegment(kind.String()); seg != nil {
			bounds["__"+name+"_start"] = seg.Addr
			bounds["__"+name+"_end"] = seg.End()
		}
	}
	defineLinkerSyms(im, bounds)

	// Pass 2: build symbol tables.
	globals := make(map[string]Symbol)
	for _, s := range im.Symbols { // linker-defined are global
		globals[s.Name] = s
	}
	locals := make([]map[string]Symbol, len(files))
	for fi, f := range files {
		locals[fi] = make(map[string]Symbol)
		for _, sym := range f.Symbols {
			base, ok := place[placeKey{fi, sym.Section}]
			if !ok {
				return nil, fmt.Errorf("link: %s: symbol %q in empty section %s", f.Name, sym.Name, sym.Section)
			}
			rs := Symbol{
				Name: sym.Name, Addr: base + sym.Off, Size: sym.Size,
				Kind: sym.Kind, Global: sym.Global,
			}
			if sym.Global {
				if prev, dup := globals[sym.Name]; dup {
					return nil, fmt.Errorf("link: duplicate global symbol %q (at %#x and %#x)", sym.Name, prev.Addr, rs.Addr)
				}
				globals[sym.Name] = rs
			}
			locals[fi][sym.Name] = rs
			im.addSymbol(rs)
		}
	}

	// Pass 3: apply relocations.
	for fi, f := range files {
		for _, rel := range f.Relocs {
			target, ok := locals[fi][rel.Sym]
			if !ok {
				target, ok = globals[rel.Sym]
			}
			if !ok {
				return nil, fmt.Errorf("link: %s: undefined symbol %q", f.Name, rel.Sym)
			}
			secBase, ok := place[placeKey{fi, rel.Section}]
			if !ok {
				return nil, fmt.Errorf("link: %s: relocation in missing section %s", f.Name, rel.Section)
			}
			fieldAddr := secBase + rel.Off
			seg := im.FindSegment(rel.Section.String())
			if seg == nil {
				return nil, fmt.Errorf("link: %s: relocation in unmapped section %s", f.Name, rel.Section)
			}
			fo := fieldAddr - seg.Addr
			switch rel.Type {
			case obj.RelPC32:
				disp := int64(target.Addr) + rel.Addend - int64(fieldAddr+4)
				if disp != int64(int32(disp)) {
					return nil, fmt.Errorf("link: %s: pc32 displacement to %q out of range", f.Name, rel.Sym)
				}
				putU32(seg.Data[fo:], uint32(disp))
			case obj.RelAbs64:
				putU64(seg.Data[fo:], target.Addr+uint64(rel.Addend))
			default:
				return nil, fmt.Errorf("link: unknown relocation type %v", rel.Type)
			}
		}
	}

	// Entry point.
	if cfg.Entry != "" {
		e, ok := globals[cfg.Entry]
		if !ok {
			return nil, fmt.Errorf("link: entry symbol %q undefined", cfg.Entry)
		}
		im.Entry = e.Addr
	}
	return im, nil
}

// defineLinkerSyms registers synthesized global symbols.
func defineLinkerSyms(im *Image, syms map[string]uint64) {
	names := make([]string, 0, len(syms))
	for n := range syms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		im.addSymbol(Symbol{Name: n, Addr: syms[n], Kind: obj.SymObject, Global: true})
	}
}

func (im *Image) addSymbol(s Symbol) {
	// Locals may shadow; keep first occurrence in index (globals are unique,
	// locals are only used for display).
	if _, ok := im.symIndex[s.Name]; !ok {
		im.symIndex[s.Name] = len(im.Symbols)
	}
	im.Symbols = append(im.Symbols, s)
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
