package link

import (
	"strings"
	"testing"
	"testing/quick"

	"sgxelide/internal/asm"
	"sgxelide/internal/obj"
)

// mustAsm assembles or fails.
func mustAsm(t *testing.T, name, src string) *obj.File {
	t.Helper()
	f, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLayoutOrderAndAlignment(t *testing.T) {
	a := mustAsm(t, "a.s", `
		.text
		.global _start
		.func _start
			halt
		.endfunc
		.rodata
		ra: .quad 1
		.data
		da: .quad 2
		.bss
		ba: .space 100
	`)
	b := mustAsm(t, "b.s", `
		.text
		.global f
		.func f
			ret
		.endfunc
		.data
		.align 64
		db: .quad 3
	`)
	im, err := Link(Config{Entry: "_start"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Segment order: text < rodata < data < bss.
	var prev uint64
	for _, name := range []string{".text", ".rodata", ".data", ".bss"} {
		seg := im.FindSegment(name)
		if seg == nil {
			t.Fatalf("missing %s", name)
		}
		if seg.Addr < prev {
			t.Errorf("%s out of order", name)
		}
		prev = seg.End()
	}
	// db respects its 64-byte alignment.
	db, ok := im.FindSymbol("db")
	if !ok || db.Addr%64 != 0 {
		t.Errorf("db at %#x, want 64-aligned", db.Addr)
	}
	// Image end page aligned.
	if im.End%4096 != 0 {
		t.Errorf("image end %#x not page aligned", im.End)
	}
	// Heap below stack, both inside the image.
	hb, _ := im.FindSymbol("__heap_base")
	he, _ := im.FindSymbol("__heap_end")
	st, _ := im.FindSymbol("__stack_top")
	if !(hb.Addr < he.Addr && he.Addr <= st.Addr && st.Addr <= im.End) {
		t.Errorf("heap/stack layout wrong: %#x %#x %#x end=%#x", hb.Addr, he.Addr, st.Addr, im.End)
	}
}

func TestLocalSymbolsDoNotCollide(t *testing.T) {
	// Two units may both define the same .L label; the linker resolves each
	// unit's relocations against its own locals first.
	a := mustAsm(t, "a.s", `
		.text
		.global _start
		.func _start
			movi r0, 0
		.Lloop:
			addi r0, r0, 1
			movi r1, 3
			bne r0, r1, .Lloop
			call g
			halt
		.endfunc
	`)
	b := mustAsm(t, "b.s", `
		.text
		.global g
		.func g
			movi r2, 0
		.Lloop:
			addi r2, r2, 1
			movi r3, 5
			bne r2, r3, .Lloop
			ret
		.endfunc
	`)
	im, err := Link(Config{Entry: "_start"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	m := im.NewVM()
	m.MaxSteps = 10000
	stop := m.Run()
	if stop.Reason.String() != "halt" {
		t.Fatalf("stop = %v", stop)
	}
	if m.Reg[0] != 3 || m.Reg[2] != 5 {
		t.Errorf("r0=%d r2=%d", m.Reg[0], m.Reg[2])
	}
}

func TestFuncsSorted(t *testing.T) {
	a := mustAsm(t, "a.s", `
		.text
		.func z_last
			ret
		.endfunc
		.func a_first
			ret
		.endfunc
	`)
	im, err := Link(Config{}, a)
	if err != nil {
		t.Fatal(err)
	}
	funcs := im.Funcs()
	if len(funcs) != 2 {
		t.Fatalf("funcs = %d", len(funcs))
	}
	if funcs[0].Name != "z_last" || funcs[1].Name != "a_first" {
		t.Errorf("not address-sorted: %v", funcs)
	}
	if funcs[0].Addr >= funcs[1].Addr {
		t.Errorf("addresses wrong")
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{
		0:                     "---",
		PermR:                 "r--",
		PermR | PermW:         "rw-",
		PermR | PermX:         "r-x",
		PermR | PermW | PermX: "rwx",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d = %q, want %q", p, p.String(), want)
		}
	}
}

func TestUnalignedBaseRejected(t *testing.T) {
	a := mustAsm(t, "a.s", ".text\n.func f\nret\n.endfunc")
	if _, err := Link(Config{Base: 0x1001}, a); err == nil {
		t.Error("unaligned base accepted")
	}
}

func TestConfigSizing(t *testing.T) {
	// Heap/stack reservations follow the config.
	f := func(heapKB, stackKB uint16) bool {
		heap := (uint64(heapKB)%512 + 1) * 1024
		stack := (uint64(stackKB)%128 + 1) * 1024
		a, err := asm.Assemble("a.s", ".text\n.func f\nret\n.endfunc")
		if err != nil {
			return false
		}
		im, err := Link(Config{HeapSize: heap, StackSize: stack}, a)
		if err != nil {
			return false
		}
		hb, _ := im.FindSymbol("__heap_base")
		he, _ := im.FindSymbol("__heap_end")
		sb, _ := im.FindSymbol("__stack_base")
		st, _ := im.FindSymbol("__stack_top")
		return he.Addr-hb.Addr == heap && st.Addr-sb.Addr == stack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPC32RangeCheck(t *testing.T) {
	// A pc-relative reference that cannot reach fails loudly rather than
	// silently truncating. Construct via a huge bss gap between text and a
	// data symbol referenced with la (pc-relative).
	a := mustAsm(t, "a.s", `
		.text
		.global _start
		.func _start
			la r1, far
			halt
		.endfunc
		.data
		far: .quad 1
	`)
	if _, err := Link(Config{}, a); err != nil {
		t.Fatalf("normal distance should link: %v", err)
	}
	// 3 GiB of heap pushes nothing between text and data, so instead test
	// the check directly with an artificial object.
	f := obj.NewFile("synthetic.s")
	text := f.Section(obj.SecText)
	text.Data = []byte{0x05, 0x01, 0, 0, 0, 0} // lea r1, <reloc>
	f.Relocs = append(f.Relocs, obj.Reloc{
		Section: obj.SecText, Off: 2, Type: obj.RelPC32, Sym: "far", Addend: 1 << 40,
	})
	if err := f.AddSymbol(&obj.Symbol{Name: "far", Section: obj.SecText, Kind: obj.SymObject, Global: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := Link(Config{}, f); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v, want out-of-range", err)
	}
}
