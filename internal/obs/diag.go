// Flight recorder: when a restore fails terminally, the operator wants the
// whole story in one place — what the client attempted, which replicas it
// tried, what the server decided, and what the enclave reported — without
// reproducing the failure under a debugger. WriteDiagBundle snapshots the
// relevant slice of the span ring and the recent audit events into a
// self-contained diagnostics directory.
package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// DiagBundle is everything the flight recorder captures for one failure.
type DiagBundle struct {
	Reason  string         `json:"reason"`             // terminal error, human-readable
	TraceID uint64         `json:"trace_id,omitempty"` // trace the failure belongs to (0 = unknown)
	Spans   []SpanRecord   `json:"-"`                  // written as trace.jsonl + trace.txt
	Events  []AuditEvent   `json:"-"`                  // written as audit.jsonl
	Extra   map[string]any `json:"extra,omitempty"`    // caller context (flags, attempt counts, ...)
}

// diagManifest is the manifest.json schema: the bundle header plus
// pointers to the sibling files, so a bundle is interpretable on its own.
type diagManifest struct {
	Schema    int            `json:"schema"`
	Reason    string         `json:"reason"`
	TraceID   uint64         `json:"trace_id,omitempty"`
	TimeNS    int64          `json:"time_ns"`
	SpanCount int            `json:"span_count"`
	Events    int            `json:"event_count"`
	Files     []string       `json:"files"`
	Extra     map[string]any `json:"extra,omitempty"`
}

// WriteDiagBundle writes b as a new directory under dir named
// diag-<unix-nanos>-<trace-hex> containing manifest.json, trace.jsonl,
// trace.txt (the rendered tree), and audit.jsonl. dir is created if
// missing. Returns the bundle directory path.
func WriteDiagBundle(dir string, b DiagBundle) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("diag bundle: %w", err)
	}
	now := time.Now().UnixNano()
	bundle := filepath.Join(dir, fmt.Sprintf("diag-%d-%016x", now, b.TraceID))
	if err := os.MkdirAll(bundle, 0o755); err != nil {
		return "", fmt.Errorf("diag bundle: %w", err)
	}

	writeJSONL := func(name string, write func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(bundle, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	if err := writeJSONL("trace.jsonl", func(f *os.File) error {
		enc := json.NewEncoder(f)
		for _, r := range b.Spans {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return "", fmt.Errorf("diag bundle: %w", err)
	}
	if err := writeJSONL("trace.txt", func(f *os.File) error {
		_, err := f.WriteString(RenderTree(b.Spans))
		return err
	}); err != nil {
		return "", fmt.Errorf("diag bundle: %w", err)
	}
	if err := writeJSONL("audit.jsonl", func(f *os.File) error {
		enc := json.NewEncoder(f)
		for _, ev := range b.Events {
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return "", fmt.Errorf("diag bundle: %w", err)
	}

	man := diagManifest{
		Schema:    AuditSchema,
		Reason:    b.Reason,
		TraceID:   b.TraceID,
		TimeNS:    now,
		SpanCount: len(b.Spans),
		Events:    len(b.Events),
		Files:     []string{"manifest.json", "trace.jsonl", "trace.txt", "audit.jsonl"},
		Extra:     b.Extra,
	}
	if err := writeJSONL("manifest.json", func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(man)
	}); err != nil {
		return "", fmt.Errorf("diag bundle: %w", err)
	}
	return bundle, nil
}

// CaptureDiag assembles a bundle for one trace from live sources: the span
// slice is the tracer's retained ring filtered to traceID (all retained
// spans when traceID is 0 — better too much context than too little), and
// the events are the audit log's most recent lastN (all when lastN <= 0).
func CaptureDiag(tr *Tracer, a *AuditLog, traceID uint64, reason string, lastN int) DiagBundle {
	recs := tr.Completed()
	spans := recs
	if traceID != 0 {
		spans = FilterTrace(recs, traceID)
	}
	return DiagBundle{
		Reason:  reason,
		TraceID: traceID,
		Spans:   spans,
		Events:  a.Recent(lastN),
	}
}
