package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeBasics(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start("root")
	child := root.Child("child")
	child.SetInt("bytes", 42)
	child.SetStr("mode", "local")
	child.SetBool("ok", true)
	child.End()
	grand := root.Child("grand") // started after child ended; still parented to root
	grand.SetError(errors.New("boom"))
	grand.End()
	root.End()

	recs := tr.Completed()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Ring order is completion order: child, grand, root.
	if recs[0].Name != "child" || recs[1].Name != "grand" || recs[2].Name != "root" {
		t.Fatalf("bad order: %v %v %v", recs[0].Name, recs[1].Name, recs[2].Name)
	}
	rootRec := recs[2]
	if rootRec.ParentID != 0 {
		t.Fatalf("root has parent %d", rootRec.ParentID)
	}
	if rootRec.TraceID != rootRec.SpanID {
		t.Fatalf("root trace id %d != span id %d", rootRec.TraceID, rootRec.SpanID)
	}
	for _, r := range recs[:2] {
		if r.TraceID != rootRec.TraceID {
			t.Errorf("%s trace id %d, want %d", r.Name, r.TraceID, rootRec.TraceID)
		}
		if r.ParentID != rootRec.SpanID {
			t.Errorf("%s parent %d, want %d", r.Name, r.ParentID, rootRec.SpanID)
		}
	}
	if got := recs[0].Attrs["bytes"]; got != int64(42) {
		t.Errorf("bytes attr = %v (%T)", got, got)
	}
	if got := recs[0].Attrs["mode"]; got != "local" {
		t.Errorf("mode attr = %v", got)
	}
	if got := recs[0].Attrs["ok"]; got != true {
		t.Errorf("ok attr = %v", got)
	}
	if recs[1].Error != "boom" {
		t.Errorf("error = %q, want boom", recs[1].Error)
	}
	if recs[0].Error != "" {
		t.Errorf("child has error %q", recs[0].Error)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(0)
	s := tr.Start("once")
	s.End()
	s.End()
	if got := len(tr.Completed()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Start("s").End()
	}
	recs := tr.Completed()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	if got := tr.Evicted(); got != 6 {
		t.Fatalf("evicted = %d, want 6", got)
	}
	// Oldest-first: the survivors are the last four spans started, and their
	// span IDs must be strictly increasing.
	for i := 1; i < len(recs); i++ {
		if recs[i].SpanID <= recs[i-1].SpanID {
			t.Fatalf("not oldest-first: %d then %d", recs[i-1].SpanID, recs[i].SpanID)
		}
	}
}

func TestNilTracerAndSpanSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	s.SetInt("a", 1)
	s.SetStr("b", "c")
	s.SetBool("d", true)
	s.SetError(errors.New("e"))
	s.Child("f").End()
	s.End()
	if recs := tr.Completed(); recs != nil {
		t.Fatalf("nil tracer completed = %v", recs)
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var nilSpan *Span
	nilSpan.Child("g").End()
	nilSpan.End()
	if nilSpan.ID() != 0 || nilSpan.TraceID() != 0 {
		t.Fatal("nil span has nonzero ids")
	}
}

func TestTracerAdd(t *testing.T) {
	tr := NewTracer(0)
	tr.Add(SpanRecord{TraceID: 7, ParentID: 1, Name: "synthesized", StartNS: 10, EndNS: 20})
	recs := tr.Completed()
	if len(recs) != 1 || recs[0].Name != "synthesized" {
		t.Fatalf("Add not recorded: %+v", recs)
	}
	if recs[0].SpanID == 0 {
		t.Fatal("Add did not assign a span id")
	}
	if recs[0].Duration() != 10*time.Nanosecond {
		t.Fatalf("duration = %v", recs[0].Duration())
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start("root")
	c := root.Child("child")
	c.SetInt("n", 3)
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var lines int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if rec.Name == "" || rec.SpanID == 0 {
			t.Fatalf("line %d lost fields: %+v", lines, rec)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}

func TestRenderTree(t *testing.T) {
	tr := NewTracer(0)
	base := time.Unix(0, 1000)
	root := tr.StartAt("root", base)
	c := root.ChildAt("child", base.Add(100))
	c.SetInt("bytes", 9)
	c.EndAt(base.Add(600))
	root.EndAt(base.Add(1000))
	// An orphan (parent never completed / evicted) renders as a root.
	tr.Add(SpanRecord{TraceID: 99, ParentID: 12345, Name: "orphan", StartNS: 5000, EndNS: 6000})

	out := RenderTree(tr.Completed())
	if !strings.Contains(out, "root") || !strings.Contains(out, "orphan") {
		t.Fatalf("missing spans:\n%s", out)
	}
	rootLine, childLine := -1, -1
	for i, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "root") {
			rootLine = i
		}
		if strings.HasPrefix(line, "  child") {
			childLine = i
		}
		if strings.Contains(line, "child") && !strings.Contains(line, "bytes=9") {
			t.Fatalf("child line lost attrs: %q", line)
		}
	}
	if rootLine == -1 || childLine != rootLine+1 {
		t.Fatalf("child not indented under root:\n%s", out)
	}
}

func TestDurationsByName(t *testing.T) {
	recs := []SpanRecord{
		{Name: "decrypt", StartNS: 0, EndNS: 10},
		{Name: "decrypt", StartNS: 20, EndNS: 50},
		{Name: "attest", StartNS: 0, EndNS: 7},
	}
	durs := DurationsByName(recs)
	if durs["decrypt"] != 40*time.Nanosecond {
		t.Fatalf("decrypt = %v, want 40ns", durs["decrypt"])
	}
	if durs["attest"] != 7*time.Nanosecond {
		t.Fatalf("attest = %v", durs["attest"])
	}
}

func TestSpanContext(t *testing.T) {
	tr := NewTracer(0)
	s := tr.Start("s")
	ctx := ContextWithSpan(context.Background(), s)
	if got := SpanFromContext(ctx); got != s {
		t.Fatal("span not recovered from context")
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatal("empty context yielded a span")
	}
}

// TestConcurrentSpans exercises the tracer from many goroutines — the
// shape of the 64-client stress test — so the -race run covers the ring
// and ID allocation.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(256)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				root := tr.Start("root")
				c := root.Child("child")
				c.SetInt("j", int64(j))
				c.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	recs := tr.Completed()
	if len(recs) != 256 {
		t.Fatalf("ring holds %d, want 256", len(recs))
	}
	if got := tr.Evicted(); got != 16*100*2-256 {
		t.Fatalf("evicted = %d, want %d", got, 16*100*2-256)
	}
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if seen[r.SpanID] {
			t.Fatalf("duplicate span id %d", r.SpanID)
		}
		seen[r.SpanID] = true
	}
}
