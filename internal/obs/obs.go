// Package obs is a zero-dependency observability layer for the SgxElide
// transport: named counters and latency histograms behind a Registry, with
// an exportable (JSON-marshalable) point-in-time Snapshot. It exists so the
// authentication server, the TCP client, and the untrusted runtime can
// answer "what is the transport doing" without pulling in a metrics
// framework.
//
// Everything is safe for concurrent use. Counters and histogram buckets are
// atomics; the registry map is guarded by a mutex taken only on first
// registration of a name.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down (active
// sessions, queue depth). Signed so decrements past zero are visible bugs
// rather than wraparounds.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two latency buckets. Bucket i
// counts observations d with 2^(i-1) ns <= d < 2^i ns (bucket 0 counts
// d == 0), which spans sub-nanosecond to ~584 years — no clamping needed.
const histBuckets = 64

// Histogram records a latency distribution in power-of-two buckets.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	min     atomic.Uint64 // nanoseconds; ^uint64(0) until first observation
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(^uint64(0))
	return h
}

// NewHistogram returns a standalone histogram, for callers aggregating
// outside a Registry. The zero Histogram is not valid (min tracking needs
// initialization); always construct through here or Registry.Histogram.
func NewHistogram() *Histogram { return newHistogram() }

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bits.Len64(ns)].Add(1)
}

// Snapshot captures the histogram state. The snapshot is internally
// consistent enough for reporting (buckets may trail count by in-flight
// observations, never the reverse, because count is added first).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		SumNanos: h.sum.Load(),
		MaxNanos: h.max.Load(),
	}
	if min := h.min.Load(); min != ^uint64(0) {
		s.MinNanos = min
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{
				UpperNanos: bucketUpper(i),
				Count:      n,
			})
		}
	}
	s.P50Nanos = s.quantile(0.50)
	s.P90Nanos = s.quantile(0.90)
	s.P99Nanos = s.quantile(0.99)
	return s
}

// bucketUpper is the exclusive upper bound of bucket i in nanoseconds.
func bucketUpper(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << i
}

// HistogramBucket is one populated power-of-two bucket.
type HistogramBucket struct {
	UpperNanos uint64 `json:"upper_nanos"` // exclusive upper bound
	Count      uint64 `json:"count"`
}

// HistogramSnapshot is an exportable view of a Histogram.
type HistogramSnapshot struct {
	Count    uint64            `json:"count"`
	SumNanos uint64            `json:"sum_nanos"`
	MinNanos uint64            `json:"min_nanos"`
	MaxNanos uint64            `json:"max_nanos"`
	P50Nanos uint64            `json:"p50_nanos"`
	P90Nanos uint64            `json:"p90_nanos"`
	P99Nanos uint64            `json:"p99_nanos"`
	Buckets  []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the mean observation.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// Quantile returns the q-quantile (0 <= q <= 1), interpolated linearly
// inside the containing bucket.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	return time.Duration(s.quantile(q))
}

func (s HistogramSnapshot) quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for _, b := range s.Buckets {
		next := seen + float64(b.Count)
		if rank <= next || b == s.Buckets[len(s.Buckets)-1] {
			lower := b.UpperNanos / 2
			if b.UpperNanos <= 1 {
				lower = 0
			}
			frac := 0.0
			if b.Count > 0 {
				frac = (rank - seen) / float64(b.Count)
				if frac < 0 {
					frac = 0
				}
				if frac > 1 {
					frac = 1
				}
			}
			v := float64(lower) + frac*float64(b.UpperNanos-lower)
			// Clamp to the observed range so tiny histograms report
			// sensible values instead of bucket edges.
			if v < float64(s.MinNanos) {
				v = float64(s.MinNanos)
			}
			if v > float64(s.MaxNanos) {
				v = float64(s.MaxNanos)
			}
			return uint64(v)
		}
		seen = next
	}
	return s.MaxNanos
}

// Registry is a named collection of counters, gauges, and histograms.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Safe to call on a nil registry (returns a throwaway counter), so
// instrumented code does not need nil checks.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Safe on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on
// first use. Safe on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return newHistogram()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Observe is shorthand for Histogram(name).Observe(since now), for timing
// with defer: defer reg.Observe("attest_ns", time.Now()) — but without
// calling time.Now at defer-evaluation time the duration would be zero, so
// the start time is a parameter.
func (r *Registry) Observe(name string, start time.Time) {
	r.Histogram(name).Observe(time.Since(start))
}

// Snapshot is an exportable view of a whole registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. Safe on a nil registry (returns an empty
// snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Load()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// String renders the snapshot as sorted "name value" lines — the format
// elide-server prints on shutdown.
func (s Snapshot) String() string {
	var names []string
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	out := ""
	for _, k := range names {
		out += fmt.Sprintf("%-32s %d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		out += fmt.Sprintf("%-32s %d\n", k, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		out += fmt.Sprintf("%-32s count=%d mean=%v p50=%v p90=%v p99=%v max=%v\n",
			k, h.Count, h.Mean(),
			time.Duration(h.P50Nanos), time.Duration(h.P90Nanos),
			time.Duration(h.P99Nanos), time.Duration(h.MaxNanos))
	}
	return out
}
