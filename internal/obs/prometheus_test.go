package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("active")
	g.Set(5)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	if got := r.Snapshot().Gauges["active"]; got != 3 {
		t.Fatalf("snapshot gauge = %d, want 3", got)
	}
	var nilReg *Registry
	nilReg.Gauge("x").Inc() // must not panic
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// sorted counters with _total, gauges, then histograms with cumulative
// power-of-two buckets, *_ns renamed to *_seconds at 1e-9 scale.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.sessions").Add(3)
	r.Counter("server.attest_ok").Inc()
	r.Gauge("server.active_sessions").Set(2)
	h := r.Histogram("op_ns")
	h.Observe(1000 * time.Nanosecond) // bucket (512, 1024]
	h.Observe(3000 * time.Nanosecond) // bucket (2048, 4096]

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "sgxelide"); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE sgxelide_server_attest_ok_total counter
sgxelide_server_attest_ok_total 1
# TYPE sgxelide_server_sessions_total counter
sgxelide_server_sessions_total 3
# TYPE sgxelide_server_active_sessions gauge
sgxelide_server_active_sessions 2
# TYPE sgxelide_op_seconds histogram
sgxelide_op_seconds_bucket{le="1.024e-06"} 1
sgxelide_op_seconds_bucket{le="4.096e-06"} 2
sgxelide_op_seconds_bucket{le="+Inf"} 2
sgxelide_op_seconds_sum 4.000000000000001e-06
sgxelide_op_seconds_count 2
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusNilAndEmpty(t *testing.T) {
	var nilReg *Registry
	var buf bytes.Buffer
	if err := nilReg.WritePrometheus(&buf, "p"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
	if err := NewRegistry().WritePrometheus(&buf, "p"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty registry wrote %q", buf.String())
	}
}

// TestAdminHandler drives every telemetry endpoint through the handler the
// server mounts on -admin-addr.
func TestAdminHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("restores").Inc()
	tr := NewTracer(0)
	root := tr.Start("session")
	root.Child("attest").End()
	root.End()
	srv := httptest.NewServer(AdminHandler(reg, tr, "sgxelide"))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/healthz"); body != "ok\n" {
		t.Errorf("healthz = %q", body)
	}
	if body, ct := get("/metrics"); !strings.Contains(body, "sgxelide_restores_total 1") ||
		!strings.Contains(ct, "0.0.4") {
		t.Errorf("metrics = %q (content-type %q)", body, ct)
	}
	body, ct := get("/metrics?format=json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil || snap.Counters["restores"] != 1 {
		t.Errorf("json metrics = %q (content-type %q, err %v)", body, ct, err)
	}
	body, _ = get("/trace")
	var lines int
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("trace returned %d spans, want 2", lines)
	}
	if body, _ := get("/trace?format=tree"); !strings.Contains(body, "session") ||
		!strings.Contains(body, "  attest") {
		t.Errorf("trace tree = %q", body)
	}
	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline empty")
	}
}
