package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("active")
	g.Set(5)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	if got := r.Snapshot().Gauges["active"]; got != 3 {
		t.Fatalf("snapshot gauge = %d, want 3", got)
	}
	var nilReg *Registry
	nilReg.Gauge("x").Inc() // must not panic
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// sorted counters with _total, gauges, then histograms with cumulative
// power-of-two buckets, *_ns renamed to *_seconds at 1e-9 scale.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.sessions").Add(3)
	r.Counter("server.attest_ok").Inc()
	r.Gauge("server.active_sessions").Set(2)
	h := r.Histogram("op_ns")
	h.Observe(1000 * time.Nanosecond) // bucket (512, 1024]
	h.Observe(3000 * time.Nanosecond) // bucket (2048, 4096]

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "sgxelide"); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE sgxelide_server_attest_ok_total counter
sgxelide_server_attest_ok_total 1
# TYPE sgxelide_server_sessions_total counter
sgxelide_server_sessions_total 3
# TYPE sgxelide_server_active_sessions gauge
sgxelide_server_active_sessions 2
# TYPE sgxelide_op_seconds histogram
sgxelide_op_seconds_bucket{le="1.024e-06"} 1
sgxelide_op_seconds_bucket{le="4.096e-06"} 2
sgxelide_op_seconds_bucket{le="+Inf"} 2
sgxelide_op_seconds_sum 4.000000000000001e-06
sgxelide_op_seconds_count 2
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusNilAndEmpty(t *testing.T) {
	var nilReg *Registry
	var buf bytes.Buffer
	if err := nilReg.WritePrometheus(&buf, "p"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
	if err := NewRegistry().WritePrometheus(&buf, "p"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty registry wrote %q", buf.String())
	}
}

// TestWritePrometheusConcurrent hammers the registry from writer
// goroutines while the exposition runs: every render must be a coherent
// snapshot (parseable, monotone counters), with no torn reads. Run under
// -race this also proves the snapshot path takes no unguarded shortcuts.
func TestWritePrometheusConcurrent(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter(fmt.Sprintf("server.attest_ok.mr_%08x", w))
			g := r.Gauge("server.inflight")
			h := r.Histogram("op_ns")
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Inc()
				h.Observe(time.Microsecond)
			}
		}(w)
	}
	var prev uint64
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf, "sgxelide"); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, "#") || line == "" {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("torn exposition line %q", line)
			}
			if strings.HasPrefix(fields[0], "sgxelide_server_attest_ok_mr_") {
				v, err := strconv.ParseUint(fields[1], 10, 64)
				if err != nil {
					t.Fatalf("line %q: %v", line, err)
				}
				total += v
			}
		}
		if total < prev {
			t.Fatalf("counters went backwards: %d after %d", total, prev)
		}
		prev = total
	}
	close(stop)
	wg.Wait()
}

// TestPromNameEscapesMrSuffix pins how per-enclave metric names — dotted,
// with a mr_<hex8> measurement suffix — map into the Prometheus character
// set: dots become underscores, the hex suffix survives verbatim, and two
// distinct measurements never collide into one family.
func TestPromNameEscapesMrSuffix(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.overload.rate_limited.mr_a18f515b").Add(2)
	r.Counter("server.overload.rate_limited.mr_00ff00ff").Add(5)
	r.Gauge("server.inflight.mr_a18f515b").Set(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "sgxelide"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sgxelide_server_overload_rate_limited_mr_a18f515b_total 2",
		"sgxelide_server_overload_rate_limited_mr_00ff00ff_total 5",
		"sgxelide_server_inflight_mr_a18f515b 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// No character outside the Prometheus name set may survive escaping.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := strings.Fields(line)[0]
		name = strings.SplitN(name, "{", 2)[0] // bucket labels are quoted, fine
		for _, r := range name {
			ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
			if !ok {
				t.Errorf("unescaped rune %q in metric name %q", r, name)
			}
		}
	}
}

// TestAdminHandler drives every telemetry endpoint through the handler the
// server mounts on -admin-addr.
func TestAdminHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("restores").Inc()
	tr := NewTracer(0)
	root := tr.Start("session")
	root.Child("attest").End()
	root.End()
	srv := httptest.NewServer(AdminHandler(reg, tr, "sgxelide"))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/healthz"); !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("healthz = %q", body)
	}
	if body, ct := get("/metrics"); !strings.Contains(body, "sgxelide_restores_total 1") ||
		!strings.Contains(ct, "0.0.4") {
		t.Errorf("metrics = %q (content-type %q)", body, ct)
	}
	body, ct := get("/metrics?format=json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil || snap.Counters["restores"] != 1 {
		t.Errorf("json metrics = %q (content-type %q, err %v)", body, ct, err)
	}
	body, _ = get("/trace")
	var lines int
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("trace returned %d spans, want 2", lines)
	}
	if body, _ := get("/trace?format=tree"); !strings.Contains(body, "session") ||
		!strings.Contains(body, "  attest") {
		t.Errorf("trace tree = %q", body)
	}
	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline empty")
	}
}
