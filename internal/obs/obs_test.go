package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Add(4)
	if got := r.Counter("a").Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.Snapshot().Counters["a"]; got != 5 {
		t.Fatalf("snapshot counter = %d, want 5", got)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Histogram("y").Observe(time.Millisecond)
	r.Observe("z", time.Now())
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestHistogramStats(t *testing.T) {
	h := newHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MinNanos != uint64(time.Microsecond) {
		t.Fatalf("min = %d", s.MinNanos)
	}
	if s.MaxNanos != uint64(1000*time.Microsecond) {
		t.Fatalf("max = %d", s.MaxNanos)
	}
	// Power-of-two buckets: the median must land within a factor of 2 of
	// the true 500µs, and quantiles must be monotone.
	p50 := s.Quantile(0.5)
	if p50 < 250*time.Microsecond || p50 > 1000*time.Microsecond {
		t.Fatalf("p50 = %v, want within [250µs, 1ms]", p50)
	}
	if s.P50Nanos > s.P90Nanos || s.P90Nanos > s.P99Nanos {
		t.Fatalf("quantiles not monotone: %d %d %d", s.P50Nanos, s.P90Nanos, s.P99Nanos)
	}
	if s.Quantile(0) < time.Duration(s.MinNanos) || s.Quantile(1) > time.Duration(s.MaxNanos) {
		t.Fatalf("quantile range outside observed range")
	}
	if mean := s.Mean(); mean < 400*time.Microsecond || mean > 600*time.Microsecond {
		t.Fatalf("mean = %v, want ~500µs", mean)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := newHistogram()
	h.Observe(0)
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 2 || s.MinNanos != 0 || s.MaxNanos != 0 {
		t.Fatalf("bad zero stats: %+v", s)
	}
	if s.Quantile(0.99) != 0 {
		t.Fatalf("quantile of zeros = %v", s.Quantile(0.99))
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.sessions").Add(3)
	r.Histogram("server.attest_ns").Observe(2 * time.Millisecond)
	blob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["server.sessions"] != 3 {
		t.Fatalf("round trip lost counter: %s", blob)
	}
	if back.Histograms["server.attest_ns"].Count != 1 {
		t.Fatalf("round trip lost histogram: %s", blob)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(time.Duration(j) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
