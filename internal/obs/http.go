// The live telemetry surface: an http.Handler exposing the registry and
// tracer of a running process. elide-server mounts it on -admin-addr;
// anything that holds a Registry and a Tracer can serve the same endpoints.
//
//	GET /metrics              Prometheus text exposition
//	GET /metrics?format=json  the JSON Snapshot (same schema as -metrics-json)
//	GET /healthz              liveness probe ("ok")
//	GET /trace                retained spans as JSONL
//	GET /trace?format=tree    retained spans as a rendered tree
//	GET /debug/pprof/...      the standard Go profiler endpoints
package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// AdminHandler serves the telemetry endpoints for reg and tr. Either may
// be nil (the corresponding endpoints serve empty documents). The prefix
// is prepended to every Prometheus metric name.
func AdminHandler(reg *Registry, tr *Tracer, prefix string) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w, prefix)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "tree" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(RenderTree(tr.Completed())))
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		tr.WriteJSONL(w)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}
