// The live telemetry surface: an http.Handler exposing the registry,
// tracer, and audit log of a running process. elide-server mounts it on
// -admin-addr; anything that holds a Registry and a Tracer can serve the
// same endpoints.
//
//	GET /metrics              Prometheus text exposition
//	GET /metrics?format=json  the JSON Snapshot (same schema as -metrics-json)
//	GET /healthz              readiness: JSON status body, 503 when any health check fails
//	GET /trace                retained spans as JSONL
//	GET /trace?format=tree    retained spans as a rendered tree (cross-process when merged)
//	GET /audit                retained audit events as JSONL (?format=counts for per-type totals)
//	GET /debug/pprof/...      the standard Go profiler endpoints
package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// adminConfig collects the optional AdminHandler attachments.
type adminConfig struct {
	audit  *AuditLog
	checks []healthCheck
}

type healthCheck struct {
	name string
	fn   func() error
}

// AdminOption configures optional AdminHandler endpoints.
type AdminOption func(*adminConfig)

// WithAuditLog serves a's retained events on /audit.
func WithAuditLog(a *AuditLog) AdminOption {
	return func(c *adminConfig) { c.audit = a }
}

// WithHealthCheck registers a named readiness check consulted by /healthz.
// fn returning non-nil marks the process degraded: the endpoint answers
// 503 with the failing checks' messages in the JSON body. Checks run on
// every request, so they must be cheap (inspect state, don't probe).
func WithHealthCheck(name string, fn func() error) AdminOption {
	return func(c *adminConfig) { c.checks = append(c.checks, healthCheck{name, fn}) }
}

// healthBody is the /healthz response schema.
type healthBody struct {
	Status string            `json:"status"` // "ok" or "degraded"
	Checks map[string]string `json:"checks,omitempty"`
}

// AdminHandler serves the telemetry endpoints for reg and tr. Either may
// be nil (the corresponding endpoints serve empty documents). The prefix
// is prepended to every Prometheus metric name. Options attach the audit
// endpoint and health checks.
func AdminHandler(reg *Registry, tr *Tracer, prefix string, opts ...AdminOption) http.Handler {
	var cfg adminConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		body := healthBody{Status: "ok", Checks: make(map[string]string, len(cfg.checks))}
		code := http.StatusOK
		for _, c := range cfg.checks {
			if err := c.fn(); err != nil {
				body.Status = "degraded"
				body.Checks[c.name] = err.Error()
				code = http.StatusServiceUnavailable
			} else {
				body.Checks[c.name] = "ok"
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w, prefix)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "tree" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(RenderTree(tr.Completed())))
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		tr.WriteJSONL(w)
	})

	mux.HandleFunc("/audit", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "counts" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(cfg.audit.Counts()) // encoding/json sorts map keys
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		cfg.audit.WriteJSONL(w)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}
