package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteDiagBundle(t *testing.T) {
	tr := NewTracer(0)
	tr.SetService("client")
	root := tr.Start("elide_restore")
	root.Child("attest").End()
	root.End()
	other := tr.Start("unrelated")
	other.End()

	a := NewAuditLog(0)
	a.Emit(AuditEvent{Type: AuditRestoreFailed, TraceID: root.TraceID(), Detail: "session lost"})

	dir := t.TempDir()
	b := CaptureDiag(tr, a, root.TraceID(), "restore failed after 3 attempts", 10)
	b.Extra = map[string]any{"attempts": 3}
	path, err := WriteDiagBundle(dir, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(path), "diag-") {
		t.Errorf("bundle dir = %s", path)
	}

	// manifest.json interprets the bundle on its own.
	mblob, err := os.ReadFile(filepath.Join(path, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man map[string]any
	if err := json.Unmarshal(mblob, &man); err != nil {
		t.Fatal(err)
	}
	if man["reason"] != "restore failed after 3 attempts" ||
		man["span_count"].(float64) != 2 || man["event_count"].(float64) != 1 {
		t.Errorf("manifest = %v", man)
	}

	// trace.jsonl holds only the failed trace, not the unrelated root.
	tblob, err := os.ReadFile(filepath.Join(path, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(bytes.NewReader(tblob))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("trace.jsonl has %d spans, want 2", len(recs))
	}
	for _, r := range recs {
		if r.TraceID != root.TraceID() {
			t.Errorf("foreign trace %d in bundle", r.TraceID)
		}
	}

	// trace.txt is the rendered tree.
	txt, err := os.ReadFile(filepath.Join(path, "trace.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "elide_restore") || !strings.Contains(string(txt), "  attest") {
		t.Errorf("trace.txt = %q", txt)
	}

	// audit.jsonl is schema-valid and carries the trace ID.
	ablob, err := os.ReadFile(filepath.Join(path, "audit.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateAuditJSONL(bytes.NewReader(ablob)); err != nil || n != 1 {
		t.Fatalf("audit.jsonl: n=%d err=%v", n, err)
	}
	var ev AuditEvent
	if err := json.Unmarshal(bytes.TrimSpace(ablob), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.TraceID != root.TraceID() {
		t.Errorf("audit event trace = %d, want %d", ev.TraceID, root.TraceID())
	}
}

func TestCaptureDiagZeroTraceTakesEverything(t *testing.T) {
	tr := NewTracer(0)
	tr.Start("a").End()
	tr.Start("b").End()
	b := CaptureDiag(tr, nil, 0, "shutdown", 0)
	if len(b.Spans) != 2 {
		t.Errorf("zero-trace capture took %d spans, want all 2", len(b.Spans))
	}
	if b.Events != nil {
		t.Errorf("nil audit log produced events: %v", b.Events)
	}
}
