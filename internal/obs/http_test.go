package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"testing"
)

// TestHealthzDegraded pins the degraded-state contract of /healthz: any
// failing registered check flips the status to "degraded", answers 503,
// and names the failing check with its message while healthy checks still
// read "ok".
func TestHealthzDegraded(t *testing.T) {
	storeErr := errors.New("deployment badco: unreadable metadata")
	h := AdminHandler(NewRegistry(), NewTracer(0), "p",
		WithHealthCheck("store", func() error { return storeErr }),
		WithHealthCheck("runtime", func() error { return nil }),
	)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("degraded healthz status = %d, want 503", resp.StatusCode)
	}
	var body struct {
		Status string            `json:"status"`
		Checks map[string]string `json:"checks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "degraded" {
		t.Errorf("status = %q", body.Status)
	}
	if body.Checks["store"] != storeErr.Error() || body.Checks["runtime"] != "ok" {
		t.Errorf("checks = %v", body.Checks)
	}
}

// TestAuditEndpoint drives /audit in both formats.
func TestAuditEndpoint(t *testing.T) {
	a := NewAuditLog(0)
	a.Emit(AuditEvent{Type: AuditAttestOK, TraceID: 42, Enclave: "mr_a18f515b"})
	a.Emit(AuditEvent{Type: AuditQoSShed, RetryAfterMS: 25})
	srv := httptest.NewServer(AdminHandler(nil, nil, "p", WithAuditLog(a)))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/audit")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if n, err := ValidateAuditJSONL(bytes.NewReader(blob)); err != nil || n != 2 {
		t.Fatalf("/audit body: n=%d err=%v (%s)", n, err, blob)
	}

	resp, err = srv.Client().Get(srv.URL + "/audit?format=counts")
	if err != nil {
		t.Fatal(err)
	}
	var counts map[string]uint64
	err = json.NewDecoder(resp.Body).Decode(&counts)
	resp.Body.Close()
	if err != nil || counts[AuditAttestOK] != 1 || counts[AuditQoSShed] != 1 {
		t.Errorf("counts = %v (err %v)", counts, err)
	}
}

// TestAdminHandlerNilAttachments: no audit log, no checks — the endpoints
// still answer (empty documents, healthy status).
func TestAdminHandlerNilAttachments(t *testing.T) {
	srv := httptest.NewServer(AdminHandler(nil, nil, ""))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/audit", "/audit?format=counts", "/trace"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}
}
