// Security audit events: an append-only, schema-versioned wide-event
// stream recording every security-relevant decision the restore service
// makes — attestation verdicts with the measurement involved, resume cache
// hits and misses, QoS sheds with their retry-after hints, circuit-breaker
// transitions, degradations down the sealed/local chain, and torn-restore
// detections. Each event carries the trace ID of the restore that caused
// it, so an operator can pivot from an audit line to the full
// cross-process span tree (and back).
//
// Events live in a bounded in-memory ring (the `/audit` admin endpoint and
// the flight recorder read it) and optionally stream to a JSONL file sink
// with atomic size-based rotation. Like the rest of this package, every
// method is nil-safe so emit sites need no checks, and the ring-only emit
// path is allocation-bounded (see audit_alloc_test.go).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
	"sync"
	"time"
)

// AuditSchema is the schema version stamped on every event. Readers must
// reject events whose schema they do not understand; fields are only ever
// added, never repurposed, within one version.
const AuditSchema = 1

// Audit event types. One constant per security-relevant decision; the
// per-type counters and the JSONL validator both key off these.
const (
	AuditAttestOK          = "attest_ok"           // attestation verified, channel established
	AuditAttestRefused     = "attest_refused"      // quote/measurement/binding rejected
	AuditResumeHit         = "resume_hit"          // session resumed from the quote-bound cache
	AuditResumeMiss        = "resume_miss"         // resumption attempted but not found / not bound
	AuditQoSShed           = "qos_shed"            // request shed by rate limit or in-flight cap
	AuditBreakerOpen       = "breaker_open"        // endpoint circuit breaker tripped open
	AuditBreakerClose      = "breaker_close"       // endpoint breaker closed after half-open probe
	AuditFailoverSwitch    = "failover_switch"     // client moved to a different replica
	AuditSessionLost       = "session_lost"        // replica switch hit a different server identity
	AuditDegradedLocal     = "degraded_local"      // restore fell back to the encrypted local file
	AuditSealedCorrupt     = "sealed_corrupt"      // sealed blob failed authentication
	AuditTornRestore       = "torn_restore"        // restored text hash mismatch inside the enclave
	AuditRestoreOK         = "restore_ok"          // a restore attempt chain ended in success
	AuditRestoreRetry      = "restore_retry"       // a retryable attempt failed; chain continues
	AuditRestoreFailed     = "restore_failed"      // terminal failure; flight recorder fires
	AuditStoreRescanFailed = "store_rescan_failed" // secrets-dir rescan could not read a deployment
	AuditResumeExpired     = "resume_expired"      // resume entry past its TTL; full re-attest required
	AuditResumeReplicated  = "resume_replicated"   // resume record accepted from a fleet peer

	// Fleet membership (DESIGN §15). Endpoint carries the member address
	// the transition is about; Detail carries the incarnation involved.
	AuditMemberJoin    = "member_join"       // a previously unknown member entered the mesh
	AuditMemberAlive   = "member_alive"      // a suspect/dead member came back (or refuted a suspicion)
	AuditMemberSuspect = "member_suspect"    // direct and indirect probes both failed
	AuditMemberDead    = "member_dead"       // suspicion expired unrefuted; member declared dead
	AuditAntiEntropy   = "anti_entropy_sync" // digest exchange adopted missing resume records

	// AuditResumeReplicationDropped reports push-queue overflow: fresh
	// channels are not reaching the fleet. Rate-limited to one event per
	// interval; Detail carries the cumulative drop count.
	AuditResumeReplicationDropped = "resume_replication_dropped"
)

// AuditEvent is one wide event. The struct is flat — no nested maps — so
// emitting into the ring copies a fixed-size value and allocates nothing.
// Zero-valued optional fields are elided from the JSONL encoding.
type AuditEvent struct {
	Schema       int    `json:"schema"`
	TimeNS       int64  `json:"time_ns"`
	Type         string `json:"type"`
	TraceID      uint64 `json:"trace,omitempty"`          // trace that caused the decision (0 = none)
	Enclave      string `json:"enclave,omitempty"`        // measurement label, mr_<hex8> suffix form
	Endpoint     string `json:"endpoint,omitempty"`       // server address involved, when any
	Detail       string `json:"detail,omitempty"`         // short free-text cause; never secret material
	Code         int64  `json:"code,omitempty"`           // restore return code, when any
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"` // shed hint, when any
}

// Time returns the event timestamp.
func (e AuditEvent) Time() time.Time { return time.Unix(0, e.TimeNS) }

// DefaultAuditRing is the ring capacity NewAuditLog(0) uses.
const DefaultAuditRing = 1024

// AuditLog is a bounded ring of recent events plus per-type counters and
// an optional JSONL file sink. Safe for concurrent use; all methods are
// safe on a nil *AuditLog (emit sites need no checks, and a process that
// never configures auditing pays one nil test per decision).
type AuditLog struct {
	mu      sync.Mutex
	ring    []AuditEvent // preallocated to cap
	next    int          // write cursor once full
	full    bool
	cap     int
	evicted uint64            // events pushed out of the ring
	counts  map[string]uint64 // emitted events per type
	reg     *Registry         // optional metric mirror: audit.events.<type>
	ctrs    map[string]*Counter

	sink     *os.File
	sinkPath string
	sinkSize int64 // bytes written to the current sink file
	maxBytes int64 // rotate threshold; 0 = never rotate
	sinkErrs uint64
	enc      *json.Encoder
	cw       *countingWriter
}

// NewAuditLog builds a log retaining up to ringCap events
// (DefaultAuditRing when ringCap <= 0).
func NewAuditLog(ringCap int) *AuditLog {
	if ringCap <= 0 {
		ringCap = DefaultAuditRing
	}
	return &AuditLog{
		ring:   make([]AuditEvent, 0, ringCap),
		cap:    ringCap,
		counts: make(map[string]uint64, 16),
	}
}

// SetRegistry mirrors per-type counts into reg as audit.events.<type>
// counters, so the exposition endpoints see audit volume without scraping
// the ring.
func (a *AuditLog) SetRegistry(reg *Registry) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.reg = reg
	a.ctrs = make(map[string]*Counter, 16)
	a.mu.Unlock()
}

// countingWriter tracks bytes written through it, so rotation does not
// need a Stat per event.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// SetFileSink streams every subsequent event to path as JSONL, appending
// to an existing file. When maxBytes > 0 and the file exceeds it, the file
// is atomically rotated to path+".1" (replacing any previous rotation) and
// a fresh file is started — the active path never disappears for more than
// a rename. Pass an empty path to detach the sink.
func (a *AuditLog) SetFileSink(path string, maxBytes int64) error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sink != nil {
		a.sink.Close()
		a.sink, a.enc, a.cw = nil, nil, nil
	}
	a.sinkPath, a.maxBytes, a.sinkSize = "", 0, 0
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("audit sink: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("audit sink: %w", err)
	}
	a.sink = f
	a.sinkPath = path
	a.maxBytes = maxBytes
	a.sinkSize = st.Size()
	a.cw = &countingWriter{w: f}
	a.enc = json.NewEncoder(a.cw)
	return nil
}

// CloseSink detaches and closes the file sink, if any.
func (a *AuditLog) CloseSink() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sink == nil {
		return nil
	}
	err := a.sink.Close()
	a.sink, a.enc, a.cw = nil, nil, nil
	a.sinkPath, a.maxBytes, a.sinkSize = "", 0, 0
	return err
}

// Emit records one event: Schema and TimeNS are stamped here, the ring and
// per-type counter are updated, and the file sink (when attached) gets one
// JSONL line. Sink write failures are counted, never propagated — audit
// must not take down the data path. Safe on a nil log.
func (a *AuditLog) Emit(ev AuditEvent) {
	if a == nil {
		return
	}
	ev.Schema = AuditSchema
	if ev.TimeNS == 0 {
		ev.TimeNS = time.Now().UnixNano()
	}
	a.mu.Lock()
	a.counts[ev.Type]++
	if a.reg != nil {
		c, ok := a.ctrs[ev.Type]
		if !ok {
			c = a.reg.Counter("audit.events." + ev.Type)
			a.ctrs[ev.Type] = c
		}
		c.Inc()
	}
	if !a.full {
		a.ring = append(a.ring, ev)
		if len(a.ring) == a.cap {
			a.full = true
		}
	} else {
		a.ring[a.next] = ev
		a.next = (a.next + 1) % a.cap
		a.evicted++
	}
	if a.enc != nil {
		before := a.cw.n
		if err := a.enc.Encode(ev); err != nil {
			a.sinkErrs++
		}
		a.sinkSize += a.cw.n - before
		if a.maxBytes > 0 && a.sinkSize >= a.maxBytes {
			a.rotateLocked()
		}
	}
	a.mu.Unlock()
}

// rotateLocked swaps the active sink file for a fresh one, keeping exactly
// one previous generation at path+".1". Called with a.mu held.
func (a *AuditLog) rotateLocked() {
	a.sink.Close()
	if err := os.Rename(a.sinkPath, a.sinkPath+".1"); err != nil {
		a.sinkErrs++
	}
	f, err := os.OpenFile(a.sinkPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		a.sinkErrs++
		a.sink, a.enc, a.cw = nil, nil, nil
		return
	}
	a.sink = f
	a.sinkSize = 0
	a.cw = &countingWriter{w: f}
	a.enc = json.NewEncoder(a.cw)
}

// Recent returns up to n retained events, oldest first (all retained when
// n <= 0). Safe on a nil log.
func (a *AuditLog) Recent(n int) []AuditEvent {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AuditEvent, 0, len(a.ring))
	if a.full {
		out = append(out, a.ring[a.next:]...)
		out = append(out, a.ring[:a.next]...)
	} else {
		out = append(out, a.ring...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Counts returns a copy of the per-type emit counters.
func (a *AuditLog) Counts() map[string]uint64 {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]uint64, len(a.counts))
	for k, v := range a.counts {
		out[k] = v
	}
	return out
}

// Evicted reports how many events have fallen off the ring.
func (a *AuditLog) Evicted() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.evicted
}

// SinkErrs reports how many file-sink writes or rotations failed.
func (a *AuditLog) SinkErrs() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sinkErrs
}

// WriteJSONL writes the retained events, one JSON object per line, oldest
// first — the `/audit` endpoint body and the flight-recorder dump format.
func (a *AuditLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range a.Recent(0) {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// auditTypeRe is the shape every event type must have: lowercase snake
// identifiers, so downstream processors can treat types as enum keys.
var auditTypeRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// ValidateAuditJSONL checks that r is a well-formed audit stream: every
// non-blank line parses as an AuditEvent with the current schema version, a
// well-shaped type, and a positive timestamp. Returns the number of events
// validated; the error names the first offending line. This is the CI
// schema gate for emitted audit logs.
func ValidateAuditJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	n, line := 0, 0
	for sc.Scan() {
		line++
		b := strings.TrimSpace(sc.Text())
		if b == "" {
			continue
		}
		var ev AuditEvent
		if err := json.Unmarshal([]byte(b), &ev); err != nil {
			return n, fmt.Errorf("audit jsonl line %d: %w", line, err)
		}
		if ev.Schema != AuditSchema {
			return n, fmt.Errorf("audit jsonl line %d: schema %d, want %d", line, ev.Schema, AuditSchema)
		}
		if !auditTypeRe.MatchString(ev.Type) {
			return n, fmt.Errorf("audit jsonl line %d: malformed type %q", line, ev.Type)
		}
		if ev.TimeNS <= 0 {
			return n, fmt.Errorf("audit jsonl line %d: missing timestamp", line)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}
