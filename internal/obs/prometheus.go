// Prometheus text exposition (format version 0.0.4) for a Registry
// snapshot. Zero-dependency on purpose: the format is a handful of lines
// per metric, and emitting it ourselves keeps the observability layer free
// of a client library while letting any Prometheus-compatible scraper read
// the admin endpoint.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format. Every metric name is prefixed with prefix + "_" (pass "" for
// none) and sanitized to the Prometheus character set. Counters gain the
// conventional _total suffix; histograms whose name ends in "_ns" are
// converted to base-unit seconds and renamed *_seconds. Safe on a nil
// registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	return r.Snapshot().WritePrometheus(w, prefix)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Output is deterministic: metric families are sorted by name
// within each kind (counters, gauges, histograms).
func (s Snapshot) WritePrometheus(w io.Writer, prefix string) error {
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		name := promName(prefix, k) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[k])
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		name := promName(prefix, k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[k])
	}

	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		writePromHistogram(&b, prefix, k, s.Histograms[k])
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram emits one histogram family: cumulative buckets with
// le labels, then _sum and _count. Nanosecond histograms (name *_ns) are
// emitted in seconds, Prometheus's base unit for durations.
func writePromHistogram(b *strings.Builder, prefix, key string, h HistogramSnapshot) {
	name := promName(prefix, key)
	scale := 1.0
	if strings.HasSuffix(name, "_ns") {
		name = strings.TrimSuffix(name, "_ns") + "_seconds"
		scale = 1e-9
	}
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	cum := uint64(0)
	for _, bk := range h.Buckets {
		cum += bk.Count
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, promFloat(float64(bk.UpperNanos)*scale), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(b, "%s_sum %s\n", name, promFloat(float64(h.SumNanos)*scale))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count)
}

// promFloat formats a float the way Prometheus expects (shortest
// round-trippable representation).
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// promName joins prefix and name and maps every character outside
// [a-zA-Z0-9_] (metric names here use dots) to an underscore.
func promName(prefix, name string) string {
	if prefix != "" {
		name = prefix + "_" + name
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
