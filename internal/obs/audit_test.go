package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAuditRingAndCounts(t *testing.T) {
	a := NewAuditLog(4)
	for i := 0; i < 6; i++ {
		a.Emit(AuditEvent{Type: AuditAttestOK, TraceID: uint64(i + 1)})
	}
	a.Emit(AuditEvent{Type: AuditAttestRefused, Detail: "bad quote"})

	recent := a.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(recent))
	}
	// Oldest first: traces 4, 5, 6, then the refusal.
	if recent[0].TraceID != 4 || recent[3].Type != AuditAttestRefused {
		t.Fatalf("ring order wrong: %+v", recent)
	}
	if got := a.Evicted(); got != 3 {
		t.Errorf("evicted = %d, want 3", got)
	}
	counts := a.Counts()
	if counts[AuditAttestOK] != 6 || counts[AuditAttestRefused] != 1 {
		t.Errorf("counts = %v", counts)
	}
	// Recent(n) trims to the newest n.
	if tail := a.Recent(2); len(tail) != 2 || tail[1].Type != AuditAttestRefused {
		t.Errorf("Recent(2) = %+v", tail)
	}
	for _, ev := range recent {
		if ev.Schema != AuditSchema || ev.TimeNS == 0 {
			t.Errorf("event not stamped: %+v", ev)
		}
	}
}

func TestAuditNilSafety(t *testing.T) {
	var a *AuditLog
	a.Emit(AuditEvent{Type: AuditAttestOK}) // must not panic
	if a.Recent(0) != nil || a.Counts() != nil || a.Evicted() != 0 || a.SinkErrs() != 0 {
		t.Error("nil log leaked state")
	}
	if err := a.SetFileSink("x", 0); err != nil {
		t.Error(err)
	}
	if err := a.CloseSink(); err != nil {
		t.Error(err)
	}
}

func TestAuditRegistryMirror(t *testing.T) {
	a := NewAuditLog(0)
	reg := NewRegistry()
	a.SetRegistry(reg)
	a.Emit(AuditEvent{Type: AuditResumeHit})
	a.Emit(AuditEvent{Type: AuditResumeHit})
	a.Emit(AuditEvent{Type: AuditQoSShed, RetryAfterMS: 40})
	snap := reg.Snapshot()
	if snap.Counters["audit.events.resume_hit"] != 2 ||
		snap.Counters["audit.events.qos_shed"] != 1 {
		t.Errorf("mirrored counters = %v", snap.Counters)
	}
}

func TestAuditFileSinkAndRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	a := NewAuditLog(0)
	if err := a.SetFileSink(path, 400); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a.Emit(AuditEvent{Type: AuditAttestOK, TraceID: uint64(i + 1), Enclave: "mr_deadbeef"})
	}
	if err := a.CloseSink(); err != nil {
		t.Fatal(err)
	}
	if got := a.SinkErrs(); got != 0 {
		t.Fatalf("sink errors = %d", got)
	}

	// Rotation must have happened (each line is ~90 bytes, threshold 400),
	// and both generations together must hold every event, schema-valid.
	rotated, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("no rotated generation: %v", err)
	}
	active, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := ValidateAuditJSONL(bytes.NewReader(rotated))
	if err != nil {
		t.Fatalf("rotated file invalid: %v", err)
	}
	n2, err := ValidateAuditJSONL(bytes.NewReader(active))
	if err != nil {
		t.Fatalf("active file invalid: %v", err)
	}
	// The oldest generation beyond .1 is deliberately dropped; at threshold
	// 400 and 20 events there were several rotations, so we can only assert
	// the retained window is a suffix of the stream ending at event 20. The
	// active file may be freshly rotated (empty), in which case the rotated
	// generation holds the tail.
	tail := bytes.TrimSpace(active)
	if len(tail) == 0 {
		tail = bytes.TrimSpace(rotated)
	}
	lines := bytes.Split(tail, []byte("\n"))
	var last AuditEvent
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.TraceID != 20 {
		t.Errorf("last event trace = %d, want 20", last.TraceID)
	}
	if n1 == 0 {
		t.Errorf("generations hold %d + %d events", n1, n2)
	}
}

func TestAuditSinkAppendsAcrossAttach(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	a := NewAuditLog(0)
	if err := a.SetFileSink(path, 0); err != nil {
		t.Fatal(err)
	}
	a.Emit(AuditEvent{Type: AuditAttestOK})
	a.CloseSink()
	// Re-attach: the sink must append, not truncate.
	if err := a.SetFileSink(path, 0); err != nil {
		t.Fatal(err)
	}
	a.Emit(AuditEvent{Type: AuditAttestRefused})
	a.CloseSink()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateAuditJSONL(bytes.NewReader(blob)); err != nil || n != 2 {
		t.Fatalf("re-attached sink holds %d events (err %v), want 2", n, err)
	}
}

func TestValidateAuditJSONLRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"garbage", "not json\n", "line 1"},
		{"wrong schema", `{"schema":99,"time_ns":1,"type":"attest_ok"}` + "\n", "schema 99"},
		{"bad type", `{"schema":1,"time_ns":1,"type":"Attest-OK"}` + "\n", "malformed type"},
		{"no timestamp", `{"schema":1,"type":"attest_ok"}` + "\n", "missing timestamp"},
	}
	for _, tc := range cases {
		if _, err := ValidateAuditJSONL(strings.NewReader(tc.in)); err == nil ||
			!strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
	// Blank lines are fine; a valid stream counts its events.
	in := "\n" + `{"schema":1,"time_ns":5,"type":"qos_shed","retry_after_ms":10}` + "\n\n"
	if n, err := ValidateAuditJSONL(strings.NewReader(in)); err != nil || n != 1 {
		t.Errorf("valid stream: n=%d err=%v", n, err)
	}
}

func TestAuditWriteJSONLRoundTrip(t *testing.T) {
	a := NewAuditLog(0)
	a.Emit(AuditEvent{Type: AuditBreakerOpen, Endpoint: "127.0.0.1:1", Detail: "3 consecutive failures"})
	a.Emit(AuditEvent{Type: AuditBreakerClose, Endpoint: "127.0.0.1:1"})
	var buf bytes.Buffer
	if err := a.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateAuditJSONL(bytes.NewReader(buf.Bytes())); err != nil || n != 2 {
		t.Fatalf("round trip: n=%d err=%v", n, err)
	}
}
