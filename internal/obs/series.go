package obs

import (
	"sync/atomic"
	"time"
)

// Series is a time-bucketed event counter: it splits a fixed observation
// window (starting at a caller-supplied origin) into equal-width buckets
// and counts events into the bucket their timestamp falls in. The load
// generator uses one per outcome (offered, completed, errors) to turn a
// run into a throughput-over-time curve without retaining per-event
// records at 10k+ events per second.
//
// Events before the origin land in bucket 0; events past the window land
// in the last bucket, so a straggler never panics — the edges of the
// curve just absorb the spill. Safe for concurrent use.
type Series struct {
	origin  time.Time
	width   time.Duration
	buckets []atomic.Uint64
}

// NewSeries creates a series covering [origin, origin+n*width) with n
// buckets of the given width. n < 1 and width <= 0 are normalized to a
// single unbounded bucket, which degrades to a plain counter.
func NewSeries(origin time.Time, n int, width time.Duration) *Series {
	if n < 1 {
		n = 1
	}
	if width <= 0 {
		width = time.Second
	}
	return &Series{origin: origin, width: width, buckets: make([]atomic.Uint64, n)}
}

// ObserveAt counts one event at time t.
func (s *Series) ObserveAt(t time.Time) {
	i := int(t.Sub(s.origin) / s.width)
	if i < 0 {
		i = 0
	}
	if i >= len(s.buckets) {
		i = len(s.buckets) - 1
	}
	s.buckets[i].Add(1)
}

// Observe counts one event now.
func (s *Series) Observe() { s.ObserveAt(time.Now()) }

// Total returns the number of events observed across all buckets.
func (s *Series) Total() uint64 {
	var n uint64
	for i := range s.buckets {
		n += s.buckets[i].Load()
	}
	return n
}

// Counts returns the per-bucket event counts, oldest bucket first.
func (s *Series) Counts() []uint64 {
	out := make([]uint64, len(s.buckets))
	for i := range s.buckets {
		out[i] = s.buckets[i].Load()
	}
	return out
}

// Rates returns the per-bucket event rates in events/second, oldest
// bucket first — the throughput curve the load report plots.
func (s *Series) Rates() []float64 {
	out := make([]float64, len(s.buckets))
	sec := s.width.Seconds()
	for i := range s.buckets {
		out[i] = float64(s.buckets[i].Load()) / sec
	}
	return out
}

// BucketWidth returns the width of each bucket.
func (s *Series) BucketWidth() time.Duration { return s.width }
