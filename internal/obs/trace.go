// Tracing: a zero-dependency hierarchical span layer over the same
// philosophy as the metrics half of this package. A Tracer hands out Spans
// (ID, parent link, start/end timestamps, typed attributes, error status);
// ending a span pushes an immutable SpanRecord into a mutex-guarded ring of
// recent completions, which can be exported as JSONL or rendered as a
// compact one-line-per-span tree. The restore pipeline uses span names
// matching the paper's protocol phases (attest, request_meta, request_data,
// decrypt, restore, seal), so one launch yields an auditable phase ordering
// and a per-phase latency budget.
//
// Everything is safe for concurrent use, and — like Registry — every method
// is safe on a nil *Tracer or nil *Span, so instrumented code needs no nil
// checks and tracing costs almost nothing when disabled.
package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is the exported, immutable form of a completed span. TraceID
// is the SpanID of the trace's root span; ParentID is zero for roots. Svc
// names the process role that recorded the span ("client", "server", ...)
// so merged cross-process traces keep per-hop attribution.
type SpanRecord struct {
	TraceID  uint64         `json:"trace"`
	SpanID   uint64         `json:"span"`
	ParentID uint64         `json:"parent,omitempty"`
	Name     string         `json:"name"`
	Svc      string         `json:"svc,omitempty"`
	StartNS  int64          `json:"start_ns"` // unix nanoseconds
	EndNS    int64          `json:"end_ns"`
	Error    string         `json:"error,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// Duration is the span's wall time.
func (r SpanRecord) Duration() time.Duration {
	return time.Duration(r.EndNS - r.StartNS)
}

// DefaultSpanRing is the ring capacity NewTracer(0) uses.
const DefaultSpanRing = 4096

// Tracer creates spans and retains the most recent completions in a fixed
// ring (oldest evicted first).
type Tracer struct {
	ids atomic.Uint64 // span ID allocator; IDs are unique per tracer

	mu      sync.Mutex
	svc     string       // service tag stamped onto every completed span
	ring    []SpanRecord // completed spans; wraps at cap
	next    int          // ring write cursor once full
	full    bool
	cap     int
	evicted uint64 // completed spans pushed out of the ring
}

// NewTracer builds a tracer retaining up to ringCap completed spans
// (DefaultSpanRing when ringCap <= 0). The span ID allocator starts at a
// random 63-bit base: IDs stay monotonic per tracer, but two tracers —
// in particular a client and a server on opposite ends of the attested
// channel — allocate from disjoint ranges, so spans merged across
// processes into one trace keep distinct IDs.
func NewTracer(ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultSpanRing
	}
	t := &Tracer{cap: ringCap}
	t.ids.Store(rand.Uint64() >> 1) // clear the top bit: no wrap within a process lifetime
	return t
}

// SetService tags every span subsequently completed on this tracer with a
// service name ("client", "server", ...). Records that already carry a
// Svc — e.g. synthesized via Add — keep theirs. Safe on a nil tracer.
func (t *Tracer) SetService(svc string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.svc = svc
	t.mu.Unlock()
}

// Start begins a root span of a new trace. Safe on a nil tracer (returns a
// nil span whose methods all no-op).
func (t *Tracer) Start(name string) *Span { return t.StartAt(name, time.Now()) }

// StartAt is Start with an explicit start time.
func (t *Tracer) StartAt(name string, start time.Time) *Span {
	if t == nil {
		return nil
	}
	id := t.ids.Add(1)
	return &Span{
		t: t,
		rec: SpanRecord{
			TraceID: id,
			SpanID:  id,
			Name:    name,
			StartNS: start.UnixNano(),
		},
	}
}

// StartRemote begins a span that continues a trace started in another
// process: the wire handshake carries the caller's trace ID and span ID,
// and the server parents its session span under them, so the merged JSONL
// from both sides renders as one tree. A zero traceID means the peer is
// not tracing (legacy protocol, or tracing disabled) and the span becomes
// an ordinary local root. Safe on a nil tracer.
func (t *Tracer) StartRemote(name string, traceID, parentID uint64) *Span {
	if t == nil {
		return nil
	}
	if traceID == 0 {
		return t.Start(name)
	}
	return &Span{
		t: t,
		rec: SpanRecord{
			TraceID:  traceID,
			SpanID:   t.ids.Add(1),
			ParentID: parentID,
			Name:     name,
			StartNS:  time.Now().UnixNano(),
		},
	}
}

// Add records a fully-formed span directly (a SpanID is allocated when
// zero). Pipeline code uses this to synthesize spans for phases whose
// boundaries are only known after the fact — e.g. the enclave-internal
// self-modification, derived from the surrounding observable events.
func (t *Tracer) Add(rec SpanRecord) {
	if t == nil {
		return
	}
	if rec.SpanID == 0 {
		rec.SpanID = t.ids.Add(1)
	}
	t.push(rec)
}

// push appends one completed record to the ring, evicting the oldest at
// capacity.
func (t *Tracer) push(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec.Svc == "" {
		rec.Svc = t.svc
	}
	if !t.full {
		t.ring = append(t.ring, rec)
		if len(t.ring) == t.cap {
			t.full = true
		}
		return
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % t.cap
	t.evicted++
}

// Completed returns a copy of the retained spans, oldest first. Safe on a
// nil tracer (returns nil).
func (t *Tracer) Completed() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Evicted reports how many completed spans have fallen off the ring.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// WriteJSONL writes the retained spans, one JSON object per line, oldest
// first — the -trace-json export format.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w) // Encode appends the newline
	for _, rec := range t.Completed() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// Span is one live (not yet ended) operation. All methods are safe on a
// nil span and safe for concurrent use; after End further mutation is
// ignored.
type Span struct {
	t *Tracer

	mu    sync.Mutex
	rec   SpanRecord
	ended bool
}

// Child begins a sub-span. Children of a nil span are nil (no-op), so call
// chains need no checks.
func (s *Span) Child(name string) *Span { return s.ChildAt(name, time.Now()) }

// ChildAt is Child with an explicit start time.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	trace, parent := s.rec.TraceID, s.rec.SpanID
	t := s.t
	s.mu.Unlock()
	return &Span{
		t: t,
		rec: SpanRecord{
			TraceID:  trace,
			SpanID:   t.ids.Add(1),
			ParentID: parent,
			Name:     name,
			StartNS:  start.UnixNano(),
		},
	}
}

// ID returns the span's ID (zero on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.SpanID
}

// TraceID returns the ID of the trace's root span (zero on nil).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.TraceID
}

// setAttr stores one attribute value.
func (s *Span) setAttr(k string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]any, 4)
	}
	s.rec.Attrs[k] = v
}

// SetInt sets an integer attribute.
func (s *Span) SetInt(k string, v int64) { s.setAttr(k, v) }

// SetStr sets a string attribute.
func (s *Span) SetStr(k, v string) { s.setAttr(k, v) }

// SetBool sets a boolean attribute.
func (s *Span) SetBool(k string, v bool) { s.setAttr(k, v) }

// SetError marks the span failed. A nil error is ignored, so deferred
// `sp.SetError(err)` on a named return needs no branch.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.rec.Error = err.Error()
	}
}

// End completes the span and pushes its record into the tracer's ring.
// Ending twice is a no-op.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt is End with an explicit end time.
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.EndNS = end.UnixNano()
	rec := s.rec
	if rec.Attrs != nil {
		attrs := make(map[string]any, len(rec.Attrs))
		for k, v := range rec.Attrs {
			attrs[k] = v
		}
		rec.Attrs = attrs
	}
	t := s.t
	s.mu.Unlock()
	t.push(rec)
}

// --- context plumbing ---

// spanCtxKey keys the current span in a context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp, so layers that only see a
// context (the transport client under an ocall handler) can parent their
// spans correctly.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// ReadJSONL parses span records from a JSONL stream (the WriteJSONL /
// -trace-json format). Blank lines are skipped; a malformed line aborts
// with an error naming its position. Merging exports from two processes is
// just reading both and appending — IDs stay distinct because every tracer
// allocates from its own random base.
func ReadJSONL(r io.Reader) ([]SpanRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	var out []SpanRecord
	line := 0
	for sc.Scan() {
		line++
		b := strings.TrimSpace(sc.Text())
		if b == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(b), &rec); err != nil {
			return out, fmt.Errorf("trace jsonl line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// FilterTrace returns the records belonging to one trace, preserving
// order — the slice a flight recorder dumps for a failed restore.
func FilterTrace(recs []SpanRecord, traceID uint64) []SpanRecord {
	if traceID == 0 {
		return nil
	}
	var out []SpanRecord
	for _, r := range recs {
		if r.TraceID == traceID {
			out = append(out, r)
		}
	}
	return out
}

// --- rendering ---

// DurationsByName sums span durations per name across records — the
// per-phase accounting elide-run prints after a restore.
func DurationsByName(recs []SpanRecord) map[string]time.Duration {
	out := make(map[string]time.Duration, 8)
	for _, r := range recs {
		out[r.Name] += r.Duration()
	}
	return out
}

// RenderTree renders records as a compact one-line-per-span tree: children
// indented under their parents (two spaces per level), ordered by start
// time, with duration, attributes, and error status. Spans whose parent
// was evicted from the ring render as roots.
func RenderTree(recs []SpanRecord) string {
	byParent := make(map[uint64][]SpanRecord, len(recs))
	present := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		present[r.SpanID] = true
	}
	var roots []SpanRecord
	for _, r := range recs {
		if r.ParentID != 0 && present[r.ParentID] {
			byParent[r.ParentID] = append(byParent[r.ParentID], r)
		} else {
			roots = append(roots, r)
		}
	}
	byStart := func(s []SpanRecord) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].StartNS < s[j].StartNS })
	}
	byStart(roots)

	var b strings.Builder
	var walk func(r SpanRecord, depth int)
	walk = func(r SpanRecord, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%-40s %12v", indent+r.Name, r.Duration().Round(time.Microsecond))
		if r.Svc != "" {
			fmt.Fprintf(&b, "  [%s]", r.Svc)
		}
		if keys := attrKeys(r.Attrs); len(keys) > 0 {
			for _, k := range keys {
				fmt.Fprintf(&b, "  %s=%v", k, r.Attrs[k])
			}
		}
		if r.Error != "" {
			fmt.Fprintf(&b, "  ERROR(%s)", r.Error)
		}
		b.WriteByte('\n')
		kids := byParent[r.SpanID]
		byStart(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// attrKeys returns sorted attribute keys for deterministic rendering.
func attrKeys(m map[string]any) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
