package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSeriesBucketing(t *testing.T) {
	origin := time.Unix(1000, 0)
	s := NewSeries(origin, 4, time.Second)
	s.ObserveAt(origin)                              // bucket 0
	s.ObserveAt(origin.Add(999 * time.Millisecond))  // bucket 0
	s.ObserveAt(origin.Add(time.Second))             // bucket 1
	s.ObserveAt(origin.Add(3500 * time.Millisecond)) // bucket 3
	s.ObserveAt(origin.Add(-time.Minute))            // before origin -> bucket 0
	s.ObserveAt(origin.Add(time.Hour))               // past the window -> last bucket
	want := []uint64{3, 1, 0, 2}
	got := s.Counts()
	if len(got) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if s.Total() != 6 {
		t.Errorf("total: got %d, want 6", s.Total())
	}
}

func TestSeriesRates(t *testing.T) {
	origin := time.Unix(0, 0)
	s := NewSeries(origin, 2, 500*time.Millisecond)
	for i := 0; i < 10; i++ {
		s.ObserveAt(origin.Add(100 * time.Millisecond))
	}
	rates := s.Rates()
	if rates[0] != 20 { // 10 events in a half-second bucket = 20/s
		t.Errorf("rate[0]: got %v, want 20", rates[0])
	}
	if rates[1] != 0 {
		t.Errorf("rate[1]: got %v, want 0", rates[1])
	}
}

func TestSeriesDegenerateConfig(t *testing.T) {
	s := NewSeries(time.Unix(0, 0), 0, 0)
	s.Observe()
	if s.Total() != 1 || len(s.Counts()) != 1 {
		t.Errorf("degenerate series should act as one counter: total=%d buckets=%d",
			s.Total(), len(s.Counts()))
	}
}

func TestSeriesConcurrent(t *testing.T) {
	origin := time.Now()
	s := NewSeries(origin, 8, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Observe()
			}
		}()
	}
	wg.Wait()
	if s.Total() != 8000 {
		t.Errorf("concurrent total: got %d, want 8000", s.Total())
	}
}
