// Allocation guards for the observability hot paths: tracing a restore and
// auditing a decision sit on the serving path, so their per-op allocation
// budget is part of the contract — `make bench-obs` reports the numbers,
// and the tests below fail the build if the budget regresses.
package obs

import "testing"

// warmTracer returns a tracer whose ring has reached capacity, the steady
// state a long-running server operates in (append growth is done).
func warmTracer(cap int) *Tracer {
	tr := NewTracer(cap)
	tr.SetService("server")
	for i := 0; i < cap; i++ {
		tr.Start("warm").End()
	}
	return tr
}

// warmAudit returns an audit log at ring capacity with its per-type counter
// and registry mirror entries already interned.
func warmAudit(cap int) *AuditLog {
	a := NewAuditLog(cap)
	a.SetRegistry(NewRegistry())
	for i := 0; i < cap+1; i++ {
		a.Emit(AuditEvent{Type: AuditAttestOK, TraceID: 1})
	}
	return a
}

func TestSpanStartEndAllocs(t *testing.T) {
	tr := warmTracer(64)
	got := testing.AllocsPerRun(500, func() {
		tr.Start("op").End()
	})
	// One allocation: the *Span itself. The completed record lands in the
	// preallocated ring without further garbage.
	if got > 1 {
		t.Errorf("span start+end allocates %.1f objects/op, budget 1", got)
	}
}

func TestSpanChildAllocs(t *testing.T) {
	tr := warmTracer(64)
	root := tr.Start("session")
	defer root.End()
	got := testing.AllocsPerRun(500, func() {
		root.Child("phase").End()
	})
	if got > 1 {
		t.Errorf("child span allocates %.1f objects/op, budget 1", got)
	}
}

func TestAuditEmitAllocs(t *testing.T) {
	a := warmAudit(64)
	got := testing.AllocsPerRun(500, func() {
		a.Emit(AuditEvent{Type: AuditAttestOK, TraceID: 7, Enclave: "mr_deadbeef"})
	})
	// The ring-only emit path copies a flat struct into a preallocated
	// slot; the counter and its registry mirror are interned on first use.
	if got > 1 {
		t.Errorf("audit emit allocates %.1f objects/op, budget 1", got)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	tr := warmTracer(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Start("op").End()
	}
}

func BenchmarkSpanChild(b *testing.B) {
	tr := warmTracer(4096)
	root := tr.Start("session")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root.Child("phase").End()
	}
}

func BenchmarkAuditEmit(b *testing.B) {
	a := warmAudit(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Emit(AuditEvent{Type: AuditAttestOK, TraceID: uint64(i), Enclave: "mr_deadbeef"})
	}
}

func BenchmarkAuditEmitParallel(b *testing.B) {
	a := warmAudit(1024)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			a.Emit(AuditEvent{Type: AuditResumeHit, TraceID: 3})
		}
	})
}
