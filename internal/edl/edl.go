// Package edl implements the Enclave Definition Language processor — the
// counterpart of the SGX SDK's sgx_edger8r. An EDL file declares the
// trusted functions callable from outside (ecalls) and the untrusted
// functions the enclave may call out to (ocalls), with buffer-marshalling
// attributes. From it we generate the bridge functions, in EVM assembly,
// that copy buffers across the enclave boundary.
//
// Grammar (a C-flavored subset of Intel's EDL):
//
//	enclave {
//	    trusted {
//	        public uint64_t ecall_hash([in, size=len] uint8_t* data, uint64_t len);
//	        public void ecall_play([in, out, size=81] uint8_t* board);
//	    };
//	    untrusted {
//	        void ocall_print([in, string] char* s);
//	        uint64_t ocall_read([out, size=cap] uint8_t* buf, uint64_t cap);
//	    };
//	};
//
// Attributes: in, out (copy direction relative to the enclave), size=N or
// size=param (bytes to copy), string (copy strlen+1 bytes), user_check
// (pointer passed through unchecked).
package edl

import (
	"fmt"
	"strconv"
	"strings"
)

// Direction flags for pointer parameters.
type Direction int

const (
	DirNone Direction = 0
	DirIn   Direction = 1 << iota
	DirOut
)

// Param is one declared parameter.
type Param struct {
	Name      string
	IsPointer bool
	Dir       Direction
	SizeParam string // parameter naming the byte count, if any
	SizeConst int    // constant byte count, if SizeParam == ""
	IsString  bool   // size is strlen()+1, computed at call time
	UserCheck bool   // raw pointer passed through
}

// Func is one declared ecall or ocall.
type Func struct {
	Name       string
	ReturnsVal bool // non-void return (always a 64-bit slot)
	Params     []Param
}

// Interface is a parsed EDL file.
type Interface struct {
	Ecalls []Func
	Ocalls []Func
}

// EcallIndex returns the dispatch index of the named ecall.
func (i *Interface) EcallIndex(name string) (int, bool) {
	for idx, f := range i.Ecalls {
		if f.Name == name {
			return idx, true
		}
	}
	return 0, false
}

// OcallIndex returns the dispatch index of the named ocall.
func (i *Interface) OcallIndex(name string) (int, bool) {
	for idx, f := range i.Ocalls {
		if f.Name == name {
			return idx, true
		}
	}
	return 0, false
}

// Merge returns a new interface with other's functions appended (used to
// combine the SgxElide runtime EDL with the application's own EDL).
func (i *Interface) Merge(other *Interface) (*Interface, error) {
	out := &Interface{
		Ecalls: append(append([]Func{}, i.Ecalls...), other.Ecalls...),
		Ocalls: append(append([]Func{}, i.Ocalls...), other.Ocalls...),
	}
	seen := make(map[string]bool)
	for _, f := range append(append([]Func{}, out.Ecalls...), out.Ocalls...) {
		if seen[f.Name] {
			return nil, fmt.Errorf("edl: duplicate function %q after merge", f.Name)
		}
		seen[f.Name] = true
	}
	return out, nil
}

// Parse parses EDL source.
func Parse(src string) (*Interface, error) {
	p := &parser{src: stripComments(src)}
	return p.parse()
}

type parser struct {
	src string
	pos int
}

func stripComments(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); {
		if i+1 < len(s) && s[i] == '/' && s[i+1] == '/' {
			for i < len(s) && s[i] != '\n' {
				i++
			}
			continue
		}
		if i+1 < len(s) && s[i] == '/' && s[i+1] == '*' {
			i += 2
			for i+1 < len(s) && !(s[i] == '*' && s[i+1] == '/') {
				i++
			}
			i += 2
			continue
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

func (p *parser) ws() {
	for p.pos < len(p.src) && strings.ContainsRune(" \t\r\n", rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) accept(s string) bool {
	p.ws()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.accept(s) {
		tail := p.src[p.pos:]
		if len(tail) > 20 {
			tail = tail[:20]
		}
		return fmt.Errorf("edl: expected %q at %q", s, tail)
	}
	return nil
}

func (p *parser) word() string {
	p.ws()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *parser) parse() (*Interface, error) {
	iface := &Interface{}
	if err := p.expect("enclave"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for {
		p.ws()
		switch {
		case p.accept("trusted"):
			if err := p.section(&iface.Ecalls, true); err != nil {
				return nil, err
			}
		case p.accept("untrusted"):
			if err := p.section(&iface.Ocalls, false); err != nil {
				return nil, err
			}
		case p.accept("}"):
			p.accept(";")
			return iface, nil
		default:
			return nil, fmt.Errorf("edl: expected trusted/untrusted section")
		}
	}
}

func (p *parser) section(out *[]Func, trusted bool) error {
	if err := p.expect("{"); err != nil {
		return err
	}
	for {
		p.ws()
		if p.accept("}") {
			p.accept(";")
			return nil
		}
		f, err := p.function(trusted)
		if err != nil {
			return err
		}
		*out = append(*out, f)
	}
}

func (p *parser) function(trusted bool) (Func, error) {
	var f Func
	if trusted {
		if err := p.expect("public"); err != nil {
			return f, fmt.Errorf("%w (all trusted functions must be public in this subset)", err)
		}
	}
	retType := p.word()
	if retType == "" {
		return f, fmt.Errorf("edl: expected return type")
	}
	if retType == "unsigned" {
		p.word() // "unsigned int" etc.
	}
	f.ReturnsVal = retType != "void"
	f.Name = p.word()
	if f.Name == "" {
		return f, fmt.Errorf("edl: expected function name")
	}
	if err := p.expect("("); err != nil {
		return f, err
	}
	p.ws()
	if p.accept(")") {
		p.accept(";")
		return f, nil
	}
	if p.accept("void") {
		p.ws()
		if p.accept(")") {
			p.accept(";")
			return f, nil
		}
		return f, fmt.Errorf("edl: bad void parameter list in %s", f.Name)
	}
	for {
		param, err := p.param(f.Name)
		if err != nil {
			return f, err
		}
		f.Params = append(f.Params, param)
		p.ws()
		if p.accept(")") {
			break
		}
		if err := p.expect(","); err != nil {
			return f, err
		}
	}
	if err := p.expect(";"); err != nil {
		return f, err
	}
	// Validate size references.
	for _, prm := range f.Params {
		if prm.SizeParam == "" {
			continue
		}
		found := false
		for _, other := range f.Params {
			if other.Name == prm.SizeParam && !other.IsPointer {
				found = true
			}
		}
		if !found {
			return f, fmt.Errorf("edl: %s: size=%s does not name a scalar parameter", f.Name, prm.SizeParam)
		}
	}
	return f, nil
}

func (p *parser) param(fname string) (Param, error) {
	var prm Param
	p.ws()
	if p.accept("[") {
		for {
			attr := p.word()
			switch attr {
			case "in":
				prm.Dir |= DirIn
			case "out":
				prm.Dir |= DirOut
			case "string":
				prm.IsString = true
				prm.Dir |= DirIn
			case "user_check":
				prm.UserCheck = true
			case "size":
				if err := p.expect("="); err != nil {
					return prm, err
				}
				p.ws()
				if c := p.src[p.pos]; c >= '0' && c <= '9' {
					start := p.pos
					for p.pos < len(p.src) && ((p.src[p.pos] >= '0' && p.src[p.pos] <= '9') || p.src[p.pos] == 'x' || (p.src[p.pos] >= 'a' && p.src[p.pos] <= 'f')) {
						p.pos++
					}
					n, err := strconv.ParseInt(p.src[start:p.pos], 0, 32)
					if err != nil {
						return prm, fmt.Errorf("edl: %s: bad size constant", fname)
					}
					prm.SizeConst = int(n)
				} else {
					prm.SizeParam = p.word()
				}
			default:
				return prm, fmt.Errorf("edl: %s: unknown attribute %q", fname, attr)
			}
			p.ws()
			if p.accept("]") {
				break
			}
			if err := p.expect(","); err != nil {
				return prm, err
			}
		}
	}
	// Type: one or two words plus optional '*'s.
	ty := p.word()
	if ty == "" {
		return prm, fmt.Errorf("edl: %s: expected parameter type", fname)
	}
	if ty == "unsigned" || ty == "const" {
		p.word()
	}
	p.ws()
	for p.accept("*") {
		prm.IsPointer = true
		p.ws()
	}
	prm.Name = p.word()
	if prm.Name == "" {
		return prm, fmt.Errorf("edl: %s: expected parameter name", fname)
	}
	if prm.IsPointer && !prm.UserCheck && !prm.IsString && prm.SizeParam == "" && prm.SizeConst == 0 {
		return prm, fmt.Errorf("edl: %s: pointer parameter %q needs size=, string, or user_check", fname, prm.Name)
	}
	if !prm.IsPointer && (prm.Dir != DirNone || prm.IsString) {
		return prm, fmt.Errorf("edl: %s: buffer attributes on scalar parameter %q", fname, prm.Name)
	}
	return prm, nil
}
