package edl

import (
	"strings"
	"testing"
)

const sampleEDL = `
enclave {
    /* the trusted side */
    trusted {
        public uint64_t ecall_hash([in, size=len] uint8_t* data, uint64_t len);
        public void ecall_play([in, out, size=81] uint8_t* board);
        public int ecall_check([in, string] char* pw);
        public void ecall_raw([user_check] void* p, uint64_t n);
        public uint64_t ecall_noargs(void);
    };
    untrusted {
        void ocall_print([in, string] char* s);
        uint64_t ocall_read([out, size=cap] uint8_t* buf, uint64_t cap);
        void ocall_tick();
    };
};
`

func TestParseSample(t *testing.T) {
	iface, err := Parse(sampleEDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(iface.Ecalls) != 5 || len(iface.Ocalls) != 3 {
		t.Fatalf("got %d ecalls, %d ocalls", len(iface.Ecalls), len(iface.Ocalls))
	}

	hash := iface.Ecalls[0]
	if hash.Name != "ecall_hash" || !hash.ReturnsVal || len(hash.Params) != 2 {
		t.Fatalf("ecall_hash parsed wrong: %+v", hash)
	}
	if !hash.Params[0].IsPointer || hash.Params[0].Dir != DirIn || hash.Params[0].SizeParam != "len" {
		t.Errorf("data param: %+v", hash.Params[0])
	}
	if hash.Params[1].IsPointer {
		t.Errorf("len param should be scalar")
	}

	play := iface.Ecalls[1]
	if play.ReturnsVal || play.Params[0].Dir != DirIn|DirOut || play.Params[0].SizeConst != 81 {
		t.Errorf("ecall_play: %+v", play)
	}

	check := iface.Ecalls[2]
	if !check.Params[0].IsString || check.Params[0].Dir&DirIn == 0 {
		t.Errorf("ecall_check: %+v", check.Params[0])
	}

	raw := iface.Ecalls[3]
	if !raw.Params[0].UserCheck {
		t.Errorf("ecall_raw: %+v", raw.Params[0])
	}

	if len(iface.Ecalls[4].Params) != 0 {
		t.Errorf("ecall_noargs has params")
	}
	if len(iface.Ocalls[2].Params) != 0 {
		t.Errorf("ocall_tick has params")
	}
}

func TestIndexLookup(t *testing.T) {
	iface, _ := Parse(sampleEDL)
	if i, ok := iface.EcallIndex("ecall_check"); !ok || i != 2 {
		t.Errorf("ecall_check index = %d, %v", i, ok)
	}
	if i, ok := iface.OcallIndex("ocall_read"); !ok || i != 1 {
		t.Errorf("ocall_read index = %d, %v", i, ok)
	}
	if _, ok := iface.EcallIndex("nope"); ok {
		t.Error("found nonexistent ecall")
	}
}

func TestMerge(t *testing.T) {
	a, _ := Parse(`enclave { trusted { public void f1(void); }; untrusted { void o1(); }; };`)
	b, _ := Parse(`enclave { trusted { public void f2(void); }; untrusted { void o2(); }; };`)
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ecalls) != 2 || len(m.Ocalls) != 2 {
		t.Fatalf("merge: %d/%d", len(m.Ecalls), len(m.Ocalls))
	}
	if i, _ := m.EcallIndex("f1"); i != 0 {
		t.Error("merge reordered the base interface")
	}
	// Duplicates rejected.
	if _, err := a.Merge(a); err == nil {
		t.Error("duplicate merge accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"no-enclave", `trusted {};`, "enclave"},
		{"missing-public", `enclave { trusted { void f(void); }; };`, "public"},
		{"ptr-no-size", `enclave { trusted { public void f([in] uint8_t* p); }; };`, "size="},
		{"bad-size-ref", `enclave { trusted { public void f([in, size=zz] uint8_t* p, uint64_t n); }; };`, "size=zz"},
		{"attr-on-scalar", `enclave { trusted { public void f([in] uint64_t n); }; };`, "scalar"},
		{"unknown-attr", `enclave { trusted { public void f([frob] uint8_t* p); }; };`, "unknown attribute"},
		{"bad-section", `enclave { wild {}; };`, "trusted/untrusted"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("err = %v, want contains %q", err, tt.wantErr)
			}
		})
	}
}

func TestGenerateBridges(t *testing.T) {
	iface, _ := Parse(sampleEDL)
	asmSrc, err := GenerateBridges(iface)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sgx_ecall_hash", "sgx_ecall_play", "sgx_ecall_check", "sgx_ecall_raw",
		"ocall_print", "ocall_read", "ocall_tick",
		"g_ecall_table", "g_ecall_count",
		"call heap_mark", "call heap_release", "eexit 1",
	} {
		if !strings.Contains(asmSrc, want) {
			t.Errorf("generated bridges missing %q", want)
		}
	}
	// Table lists all ecalls in order.
	tableIdx := strings.Index(asmSrc, "g_ecall_table:")
	tail := asmSrc[tableIdx:]
	last := -1
	for _, name := range []string{"sgx_ecall_hash", "sgx_ecall_play", "sgx_ecall_check", "sgx_ecall_raw", "sgx_ecall_noargs"} {
		i := strings.Index(tail, name)
		if i < 0 || i < last {
			t.Errorf("table order wrong around %s", name)
		}
		last = i
	}
}

func TestGenerateLimits(t *testing.T) {
	tooMany, _ := Parse(`enclave { trusted { public void f(uint64_t a, uint64_t b, uint64_t c, uint64_t d, uint64_t e, uint64_t g, uint64_t h); }; };`)
	if tooMany != nil {
		if _, err := GenerateBridges(tooMany); err == nil {
			t.Error("7 params accepted")
		}
	}
	outStr, err := Parse(`enclave { untrusted { void o([out, string] char* s, uint64_t n); }; };`)
	if err == nil {
		if _, err := GenerateBridges(outStr); err == nil {
			t.Error("[out,string] accepted")
		}
	}
	fivePtrs, _ := Parse(`enclave { trusted { public void f([in, size=1] uint8_t* a, [in, size=1] uint8_t* b, [in, size=1] uint8_t* c, [in, size=1] uint8_t* d, [in, size=1] uint8_t* e); }; };`)
	if fivePtrs != nil {
		if _, err := GenerateBridges(fivePtrs); err == nil {
			t.Error("5 marshalled pointers accepted")
		}
	}
}

func TestCommentsStripped(t *testing.T) {
	iface, err := Parse(`enclave {
		// line comment
		trusted { /* block */ public void f(void); };
	};`)
	if err != nil || len(iface.Ecalls) != 1 {
		t.Fatalf("comments broke parsing: %v", err)
	}
}
