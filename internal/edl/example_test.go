package edl_test

import (
	"fmt"

	"sgxelide/internal/edl"
)

// ExampleParse parses an EDL interface and inspects its dispatch layout.
func ExampleParse() {
	iface, err := edl.Parse(`
enclave {
    trusted {
        public uint64_t ecall_hash([in, size=len] uint8_t* data, uint64_t len);
    };
    untrusted {
        void ocall_print([in, string] char* s);
    };
};`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("ecalls:", len(iface.Ecalls), "ocalls:", len(iface.Ocalls))
	p := iface.Ecalls[0].Params[0]
	fmt.Printf("param %q: pointer=%v in=%v size=%s\n",
		p.Name, p.IsPointer, p.Dir&edl.DirIn != 0, p.SizeParam)
	// Output:
	// ecalls: 1 ocalls: 1
	// param "data": pointer=true in=true size=len
}
