// Package asm implements the EVM assembler. It translates assembly source
// (the output of the mini-C compiler, the hand-written SDK runtime, and the
// SgxElide restorer) into relocatable object files for the linker.
//
// Syntax summary:
//
//	; // #             comments (to end of line)
//	.text .rodata .data .bss   switch current section
//	.global NAME       mark NAME as externally visible
//	.func NAME         begin function NAME (defines the symbol)
//	.endfunc           end current function (fixes its size)
//	.align N           pad to N-byte alignment
//	.byte E, ...       emit bytes            .word E, ...  emit 16-bit words
//	.long E, ...       emit 32-bit words     .quad E, ...  emit 64-bit words (symbols allowed)
//	.ascii "S"         emit string bytes     .asciz "S"    with NUL terminator
//	.space N           emit N zero bytes
//	NAME:              define label (names starting with .L are local)
//	OP operands        one instruction, e.g.:
//	    movi r1, 0x1234          la r2, buffer        lea r2, buffer
//	    add r0, r1, r2           addi sp, sp, -16
//	    ld64 r3, [r2+8]          st8 [fp-1], r4
//	    beq r1, r2, .Ldone       call memcpy          eexit 1
//
// Register aliases: rv=r0, a0..a5=r1..r6, t0=r7, s0..s5=r8..r13, fp=r14,
// sp=r15.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sgxelide/internal/evm"
	"sgxelide/internal/obj"
)

// Assemble translates src (named filename in diagnostics) into an object file.
func Assemble(filename, src string) (*obj.File, error) {
	a := &assembler{
		file:    obj.NewFile(filename),
		name:    filename,
		sec:     obj.SecText,
		globals: make(map[string]bool),
	}
	for i, line := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.doLine(line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", filename, a.line, err)
		}
	}
	if a.curFunc != nil {
		return nil, fmt.Errorf("%s: missing .endfunc for %q", filename, a.curFunc.Name)
	}
	a.finish()
	return a.file, nil
}

type assembler struct {
	file    *obj.File
	name    string
	line    int
	sec     obj.SectionKind
	curFunc *obj.Symbol
	globals map[string]bool
}

// cur returns the current section.
func (a *assembler) cur() *obj.Section { return a.file.Section(a.sec) }

// off returns the current offset in the current section.
func (a *assembler) off() uint64 { return a.cur().Len() }

// emit appends bytes to the current section.
func (a *assembler) emit(b ...byte) error {
	s := a.cur()
	if s.Kind == obj.SecBss {
		return fmt.Errorf("cannot emit data into .bss")
	}
	s.Data = append(s.Data, b...)
	return nil
}

func (a *assembler) doLine(line string) error {
	toks, err := lex(line)
	if err != nil {
		return err
	}
	// Leading labels (possibly several on one line).
	for len(toks) >= 2 && toks[0].kind == tokIdent && toks[1].is(":") {
		if err := a.defineLabel(toks[0].text); err != nil {
			return err
		}
		toks = toks[2:]
	}
	if len(toks) == 0 {
		return nil
	}
	head := toks[0]
	if head.kind != tokIdent {
		return fmt.Errorf("unexpected %q", head.text)
	}
	if strings.HasPrefix(head.text, ".") && evm.OpcodeByName[head.text] == 0 {
		return a.directive(head.text, toks[1:])
	}
	return a.instruction(head.text, toks[1:])
}

func (a *assembler) defineLabel(name string) error {
	kind := obj.SymLabel
	if a.sec != obj.SecText {
		kind = obj.SymObject
	}
	// Symbols are local unless marked .global (C static semantics);
	// finish() applies the .global marks.
	return a.file.AddSymbol(&obj.Symbol{
		Name:    name,
		Section: a.sec,
		Off:     a.off(),
		Kind:    kind,
	})
}

func (a *assembler) directive(name string, toks []token) error {
	switch name {
	case ".text":
		a.sec = obj.SecText
	case ".rodata":
		a.sec = obj.SecRodata
	case ".data":
		a.sec = obj.SecData
	case ".bss":
		a.sec = obj.SecBss
	case ".section":
		if len(toks) != 1 || toks[0].kind != tokIdent {
			return fmt.Errorf(".section wants a section name")
		}
		k, ok := obj.KindByName(toks[0].text)
		if !ok {
			return fmt.Errorf("unknown section %q", toks[0].text)
		}
		a.sec = k
	case ".global", ".globl":
		if len(toks) != 1 || toks[0].kind != tokIdent {
			return fmt.Errorf("%s wants a symbol name", name)
		}
		a.globals[toks[0].text] = true
	case ".func":
		if a.sec != obj.SecText {
			return fmt.Errorf(".func outside .text")
		}
		if a.curFunc != nil {
			return fmt.Errorf(".func %q inside function %q", toks, a.curFunc.Name)
		}
		if len(toks) != 1 || toks[0].kind != tokIdent {
			return fmt.Errorf(".func wants a function name")
		}
		sym := &obj.Symbol{
			Name:    toks[0].text,
			Section: obj.SecText,
			Off:     a.off(),
			Kind:    obj.SymFunc,
		}
		if err := a.file.AddSymbol(sym); err != nil {
			return err
		}
		a.curFunc = sym
	case ".endfunc":
		if a.curFunc == nil {
			return fmt.Errorf(".endfunc outside function")
		}
		a.curFunc.Size = a.off() - a.curFunc.Off
		a.curFunc = nil
	case ".align":
		vals, err := a.exprList(toks, false)
		if err != nil || len(vals) != 1 {
			return fmt.Errorf(".align wants one integer")
		}
		n := uint64(vals[0].num)
		if n == 0 || n&(n-1) != 0 {
			return fmt.Errorf(".align %d: not a power of two", n)
		}
		s := a.cur()
		if n > s.Align {
			s.Align = n
		}
		pad := (n - s.Len()%n) % n
		if s.Kind == obj.SecBss {
			s.Size += pad
			return nil
		}
		fill := byte(0)
		if s.Kind == obj.SecText {
			fill = byte(evm.NOP)
		}
		for i := uint64(0); i < pad; i++ {
			s.Data = append(s.Data, fill)
		}
	case ".byte", ".word", ".long", ".quad":
		width := map[string]int{".byte": 1, ".word": 2, ".long": 4, ".quad": 8}[name]
		vals, err := a.exprList(toks, width == 8)
		if err != nil {
			return err
		}
		for _, v := range vals {
			if v.sym != "" {
				a.file.Relocs = append(a.file.Relocs, obj.Reloc{
					Section: a.sec, Off: a.off(), Type: obj.RelAbs64, Sym: v.sym, Addend: v.num,
				})
				if err := a.emit(0, 0, 0, 0, 0, 0, 0, 0); err != nil {
					return err
				}
				continue
			}
			u := uint64(v.num)
			var b [8]byte
			for i := 0; i < width; i++ {
				b[i] = byte(u >> (8 * i))
			}
			if err := a.emit(b[:width]...); err != nil {
				return err
			}
		}
	case ".ascii", ".asciz":
		if len(toks) != 1 || toks[0].kind != tokString {
			return fmt.Errorf("%s wants a string literal", name)
		}
		if err := a.emit([]byte(toks[0].text)...); err != nil {
			return err
		}
		if name == ".asciz" {
			return a.emit(0)
		}
	case ".space", ".skip":
		vals, err := a.exprList(toks, false)
		if err != nil || len(vals) != 1 {
			return fmt.Errorf("%s wants one integer", name)
		}
		n := vals[0].num
		if n < 0 {
			return fmt.Errorf("%s: negative size", name)
		}
		s := a.cur()
		if s.Kind == obj.SecBss {
			s.Size += uint64(n)
			return nil
		}
		for i := int64(0); i < n; i++ {
			s.Data = append(s.Data, 0)
		}
	default:
		return fmt.Errorf("unknown directive %q", name)
	}
	return nil
}

// expr is a parsed operand value: either a plain number, or symbol+num.
type expr struct {
	sym string
	num int64
}

// exprList parses comma-separated expressions. Symbols are allowed only when
// symOK (e.g. .quad, instruction targets handle symbols themselves).
func (a *assembler) exprList(toks []token, symOK bool) ([]expr, error) {
	var out []expr
	for len(toks) > 0 {
		e, rest, err := parseExpr(toks)
		if err != nil {
			return nil, err
		}
		if e.sym != "" && !symOK {
			return nil, fmt.Errorf("symbol %q not allowed here", e.sym)
		}
		out = append(out, e)
		toks = rest
		if len(toks) > 0 {
			if !toks[0].is(",") {
				return nil, fmt.Errorf("expected ',', got %q", toks[0].text)
			}
			toks = toks[1:]
		}
	}
	return out, nil
}

// parseExpr parses one expression: [-]NUM | 'c' | SYM[(+|-)NUM].
func parseExpr(toks []token) (expr, []token, error) {
	if len(toks) == 0 {
		return expr{}, nil, fmt.Errorf("expected expression")
	}
	neg := false
	if toks[0].is("-") {
		neg = true
		toks = toks[1:]
		if len(toks) == 0 {
			return expr{}, nil, fmt.Errorf("dangling '-'")
		}
	}
	t := toks[0]
	switch t.kind {
	case tokNumber:
		n := t.num
		if neg {
			n = -n
		}
		return expr{num: n}, toks[1:], nil
	case tokIdent:
		if neg {
			return expr{}, nil, fmt.Errorf("cannot negate symbol %q", t.text)
		}
		e := expr{sym: t.text}
		toks = toks[1:]
		if len(toks) >= 2 && (toks[0].is("+") || toks[0].is("-")) && toks[1].kind == tokNumber {
			n := toks[1].num
			if toks[0].is("-") {
				n = -n
			}
			e.num = n
			toks = toks[2:]
		}
		return e, toks, nil
	default:
		return expr{}, nil, fmt.Errorf("expected expression, got %q", t.text)
	}
}

// finish assigns sizes to data symbols that have none (extends to the next
// symbol in the same section or the section end) and applies .global marks.
func (a *assembler) finish() {
	for _, s := range a.file.Symbols {
		if a.globals[s.Name] {
			s.Global = true
		}
	}
	// Auto-size object symbols.
	bySec := make(map[obj.SectionKind][]*obj.Symbol)
	for _, s := range a.file.Symbols {
		if s.Kind == obj.SymObject {
			bySec[s.Section] = append(bySec[s.Section], s)
		}
	}
	for kind, syms := range bySec {
		sort.Slice(syms, func(i, j int) bool { return syms[i].Off < syms[j].Off })
		end := a.file.Section(kind).Len()
		for i, s := range syms {
			if s.Size != 0 {
				continue
			}
			if i+1 < len(syms) {
				s.Size = syms[i+1].Off - s.Off
			} else {
				s.Size = end - s.Off
			}
		}
	}
}

// --- lexer ---

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokPunct
)

type token struct {
	kind tokKind
	text string
	num  int64
}

func (t token) is(s string) bool { return t.kind == tokPunct && t.text == s }

func lex(line string) ([]token, error) {
	var toks []token
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';' || c == '#':
			return toks, nil
		case c == '/' && i+1 < n && line[i+1] == '/':
			return toks, nil
		case c == '"':
			s, rest, err := lexString(line[i:])
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: s})
			i = n - len(rest)
		case c == '\'':
			v, width, err := lexChar(line[i:])
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokNumber, num: v})
			i += width
		case c >= '0' && c <= '9':
			j := i
			for j < n && isIdentChar(line[j]) {
				j++
			}
			v, err := strconv.ParseUint(line[i:j], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q", line[i:j])
			}
			toks = append(toks, token{kind: tokNumber, num: int64(v)})
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentChar(line[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: line[i:j]})
			i = j
		case strings.ContainsRune(",:[]+-", rune(c)):
			toks = append(toks, token{kind: tokPunct, text: string(c)})
			i++
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || c == '$' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == 'x' || c == 'X'
}

// lexString parses a double-quoted string with escapes, returning the value
// and the remaining input after the closing quote.
func lexString(s string) (string, string, error) {
	var sb strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		if c == '"' {
			return sb.String(), s[i+1:], nil
		}
		if c == '\\' {
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("unterminated escape")
			}
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '0':
				sb.WriteByte(0)
			case '\\', '"', '\'':
				sb.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
			i++
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return "", "", fmt.Errorf("unterminated string")
}

// lexChar parses a single-quoted char literal, returning its value and the
// number of input bytes consumed.
func lexChar(s string) (int64, int, error) {
	if len(s) < 3 {
		return 0, 0, fmt.Errorf("bad char literal")
	}
	if s[1] == '\\' {
		if len(s) < 4 || s[3] != '\'' {
			return 0, 0, fmt.Errorf("bad char escape")
		}
		var v byte
		switch s[2] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\', '\'', '"':
			v = s[2]
		default:
			return 0, 0, fmt.Errorf("unknown escape \\%c", s[2])
		}
		return int64(v), 4, nil
	}
	if s[2] != '\'' {
		return 0, 0, fmt.Errorf("unterminated char literal")
	}
	return int64(s[1]), 3, nil
}
