package asm

import (
	"strings"
	"testing"

	"sgxelide/internal/evm"
	"sgxelide/internal/link"
	"sgxelide/internal/obj"
)

// buildAndRun assembles srcs, links them with _start as entry, runs the
// program bare, and returns the VM after it halts.
func buildAndRun(t *testing.T, srcs ...string) *evm.VM {
	t.Helper()
	var files []*obj.File
	for i, src := range srcs {
		f, err := Assemble("test.s", src)
		if err != nil {
			t.Fatalf("assemble src %d: %v", i, err)
		}
		files = append(files, f)
	}
	im, err := link.Link(link.Config{Entry: "_start"}, files...)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := im.NewVM()
	m.MaxSteps = 1 << 22
	stop := m.Run()
	if stop.Reason != evm.StopHalt {
		t.Fatalf("program did not halt: %v", stop)
	}
	return m
}

func TestBasicProgram(t *testing.T) {
	m := buildAndRun(t, `
		.text
		.global _start
		.func _start
			movi r1, 40
			addi r0, r1, 2
			halt
		.endfunc
	`)
	if m.Reg[0] != 42 {
		t.Errorf("r0 = %d, want 42", m.Reg[0])
	}
}

func TestCallAcrossUnits(t *testing.T) {
	main := `
		.text
		.global _start
		.func _start
			movi a0, 10
			movi a1, 32
			call addup
			halt
		.endfunc
	`
	lib := `
		.text
		.global addup
		.func addup
			add rv, a0, a1
			ret
		.endfunc
	`
	m := buildAndRun(t, main, lib)
	if m.Reg[0] != 42 {
		t.Errorf("r0 = %d, want 42", m.Reg[0])
	}
}

func TestLoopWithLabels(t *testing.T) {
	// Sum 1..10 = 55.
	m := buildAndRun(t, `
		.text
		.global _start
		.func _start
			movi r1, 0      ; i
			movi r2, 0      ; sum
			movi r3, 10
		.Lloop:
			addi r1, r1, 1
			add r2, r2, r1
			bne r1, r3, .Lloop
			mov r0, r2
			halt
		.endfunc
	`)
	if m.Reg[0] != 55 {
		t.Errorf("sum = %d, want 55", m.Reg[0])
	}
}

func TestDataAccess(t *testing.T) {
	m := buildAndRun(t, `
		.data
		counter:
			.quad 41
		.text
		.global _start
		.func _start
			movi r1, counter
			ld64 r2, [r1]
			addi r2, r2, 1
			st64 [r1], r2
			ld64 r0, [r1+0]
			halt
		.endfunc
	`)
	if m.Reg[0] != 42 {
		t.Errorf("counter = %d, want 42", m.Reg[0])
	}
}

func TestRodataString(t *testing.T) {
	m := buildAndRun(t, `
		.rodata
		msg:
			.asciz "Hi\n"
		.text
		.global _start
		.func _start
			la r1, msg
			ld8u r0, [r1+1]
			halt
		.endfunc
	`)
	if m.Reg[0] != 'i' {
		t.Errorf("r0 = %c, want i", rune(m.Reg[0]))
	}
}

func TestByteWordLongQuadDirectives(t *testing.T) {
	m := buildAndRun(t, `
		.data
		tbl:
			.byte 1, 2, 0xff
			.align 2
			.word 0x1234
			.align 4
			.long 0xdeadbeef
			.align 8
			.quad 0x1122334455667788
		.text
		.global _start
		.func _start
			movi r1, tbl
			ld8u r2, [r1+2]
			ld16u r3, [r1+4]
			ld32u r4, [r1+8]
			ld64 r5, [r1+16]
			halt
		.endfunc
	`)
	if m.Reg[2] != 0xff || m.Reg[3] != 0x1234 || m.Reg[4] != 0xdeadbeef || m.Reg[5] != 0x1122334455667788 {
		t.Errorf("r2=%#x r3=%#x r4=%#x r5=%#x", m.Reg[2], m.Reg[3], m.Reg[4], m.Reg[5])
	}
}

func TestQuadWithSymbol(t *testing.T) {
	m := buildAndRun(t, `
		.data
		value:
			.quad 42
		ptr:
			.quad value
		.text
		.global _start
		.func _start
			movi r1, ptr
			ld64 r2, [r1]    ; r2 = &value
			ld64 r0, [r2]
			halt
		.endfunc
	`)
	if m.Reg[0] != 42 {
		t.Errorf("r0 = %d, want 42", m.Reg[0])
	}
}

func TestBssAndLinkerSymbols(t *testing.T) {
	m := buildAndRun(t, `
		.bss
		.align 8
		buf:
			.space 64
		.text
		.global _start
		.func _start
			movi r1, buf
			movi r2, 7
			st64 [r1+8], r2
			ld64 r0, [r1+8]
			movi r3, __heap_base
			movi r4, __stack_top
			halt
		.endfunc
	`)
	if m.Reg[0] != 7 {
		t.Errorf("bss store/load failed: r0=%d", m.Reg[0])
	}
	if m.Reg[3] == 0 || m.Reg[4] == 0 || m.Reg[3] >= m.Reg[4] {
		t.Errorf("heap/stack symbols wrong: heap=%#x stacktop=%#x", m.Reg[3], m.Reg[4])
	}
}

func TestStackOps(t *testing.T) {
	m := buildAndRun(t, `
		.text
		.global _start
		.func _start
			movi r1, 5
			movi r2, 6
			push r1
			push r2
			pop r3
			pop r4
			sub sp, sp, r1    ; carve 5 bytes (unaligned on purpose)
			add sp, sp, r1
			mul r0, r3, r4
			halt
		.endfunc
	`)
	if m.Reg[0] != 30 {
		t.Errorf("r0 = %d, want 30", m.Reg[0])
	}
}

func TestNegativeDisplacementAndImm(t *testing.T) {
	m := buildAndRun(t, `
		.text
		.global _start
		.func _start
			mov fp, sp
			addi sp, sp, -16
			movi r1, 9
			st64 [fp-8], r1
			ld64 r0, [fp-8]
			addi sp, sp, 16
			halt
		.endfunc
	`)
	if m.Reg[0] != 9 {
		t.Errorf("r0 = %d, want 9", m.Reg[0])
	}
}

func TestCharLiterals(t *testing.T) {
	m := buildAndRun(t, `
		.text
		.global _start
		.func _start
			movi r0, 'A'
			movi r1, '\n'
			movi r2, '\\'
			halt
		.endfunc
	`)
	if m.Reg[0] != 'A' || m.Reg[1] != '\n' || m.Reg[2] != '\\' {
		t.Errorf("r0=%d r1=%d r2=%d", m.Reg[0], m.Reg[1], m.Reg[2])
	}
}

func TestPseudoInstructions(t *testing.T) {
	m := buildAndRun(t, `
		.data
		x: .quad 11
		.text
		.global _start
		.func _start
			li r1, 31
			la r2, x
			ld64 r2, [r2]
			add r0, r1, r2
			halt
		.endfunc
	`)
	if m.Reg[0] != 42 {
		t.Errorf("r0 = %d, want 42", m.Reg[0])
	}
}

func TestFunctionSizes(t *testing.T) {
	f, err := Assemble("t.s", `
		.text
		.global f1
		.func f1
			nop
			nop
			ret
		.endfunc
		.func f2
			halt
		.endfunc
	`)
	if err != nil {
		t.Fatal(err)
	}
	s1 := f.Lookup("f1")
	s2 := f.Lookup("f2")
	if s1 == nil || s2 == nil {
		t.Fatal("missing symbols")
	}
	if s1.Size != 3 {
		t.Errorf("f1 size = %d, want 3", s1.Size)
	}
	if s2.Off != 3 || s2.Size != 1 {
		t.Errorf("f2 off=%d size=%d, want 3,1", s2.Off, s2.Size)
	}
}

func TestObjectSymbolAutoSize(t *testing.T) {
	f, err := Assemble("t.s", `
		.data
		a: .quad 1
		b: .byte 1,2,3
		c: .long 9
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		name string
		size uint64
	}{{"a", 8}, {"b", 3}, {"c", 4}} {
		s := f.Lookup(tt.name)
		if s == nil || s.Size != tt.size {
			t.Errorf("%s: got %+v, want size %d", tt.name, s, tt.size)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown-inst", ".text\nfrob r1", "unknown instruction"},
		{"bad-reg", ".text\nmov r99, r1", "register"},
		{"bad-width", ".text\nsext r1, r2, 3", "width"},
		{"missing-endfunc", ".text\n.func f\nnop", "missing .endfunc"},
		{"dup-label", ".text\nx:\nx:", "redefined"},
		{"inst-in-data", ".data\nnop", "outside .text"},
		{"emit-in-bss", ".bss\n.byte 1", "bss"},
		{"unterminated-string", `.data` + "\n" + `.ascii "abc`, "unterminated"},
		{"bad-align", ".text\n.align 3", "power of two"},
		{"i16-range", ".text\neexit 70000", "16-bit"},
		{"unknown-directive", ".text\n.frob", "unknown directive"},
		{"sym-in-byte", ".data\n.byte foo", "not allowed"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble("t.s", tt.src)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("err = %v, want contains %q", err, tt.wantErr)
			}
		})
	}
}

func TestLinkErrors(t *testing.T) {
	a, err := Assemble("a.s", ".text\n.global _start\n.func _start\ncall nosuch\nhalt\n.endfunc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.Link(link.Config{Entry: "_start"}, a); err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Errorf("undefined symbol: err = %v", err)
	}

	b1, _ := Assemble("b1.s", ".text\n.global f\n.func f\nret\n.endfunc")
	b2, _ := Assemble("b2.s", ".text\n.global f\n.func f\nret\n.endfunc")
	if _, err := link.Link(link.Config{}, b1, b2); err == nil || !strings.Contains(err.Error(), "duplicate global") {
		t.Errorf("duplicate global: err = %v", err)
	}

	if _, err := link.Link(link.Config{Entry: "_start"}, b1); err == nil || !strings.Contains(err.Error(), "entry symbol") {
		t.Errorf("missing entry: err = %v", err)
	}
}

func TestSegmentsPageAlignedAndPermissions(t *testing.T) {
	f, err := Assemble("t.s", `
		.text
		.global _start
		.func _start
			halt
		.endfunc
		.rodata
		r: .quad 1
		.data
		d: .quad 2
		.bss
		b: .space 8
	`)
	if err != nil {
		t.Fatal(err)
	}
	im, err := link.Link(link.Config{Entry: "_start"}, f)
	if err != nil {
		t.Fatal(err)
	}
	wantPerms := map[string]link.Perm{
		".text":   link.PermR | link.PermX,
		".rodata": link.PermR,
		".data":   link.PermR | link.PermW,
		".bss":    link.PermR | link.PermW,
	}
	for name, perm := range wantPerms {
		seg := im.FindSegment(name)
		if seg == nil {
			t.Fatalf("missing segment %s", name)
		}
		if seg.Addr%4096 != 0 {
			t.Errorf("%s not page aligned: %#x", name, seg.Addr)
		}
		if seg.Perm != perm {
			t.Errorf("%s perm = %v, want %v", name, seg.Perm, perm)
		}
	}
	if im.Entry == 0 {
		t.Error("entry not set")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	// Assemble, disassemble, and verify the mnemonics come back.
	f, err := Assemble("t.s", `
		.text
		.global _start
		.func _start
			movi r1, 0x1234
			addi r2, r1, -1
			beq r1, r2, _start
			call _start
			ld64 r3, [sp+8]
			st8 [sp-1], r3
			eexit 2
		.endfunc
	`)
	if err != nil {
		t.Fatal(err)
	}
	im, err := link.Link(link.Config{Entry: "_start"}, f)
	if err != nil {
		t.Fatal(err)
	}
	seg := im.FindSegment(".text")
	d := &evm.Disassembler{}
	out := d.Format(seg.Addr, seg.Data)
	for _, want := range []string{"movi r1, 0x1234", "addi r2, r1, -1", "beq", "call", "ld64 r3, [sp+8]", "st8 [sp-1], r3", "eexit 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
