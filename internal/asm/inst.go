package asm

import (
	"fmt"

	"sgxelide/internal/evm"
	"sgxelide/internal/obj"
)

// regAliases maps assembler register names to register numbers.
var regAliases = func() map[string]byte {
	m := map[string]byte{
		"rv": evm.RegRet, "t0": evm.RegT0, "fp": evm.RegFP, "sp": evm.RegSP,
	}
	for i := 0; i < evm.NumRegs; i++ {
		m[fmt.Sprintf("r%d", i)] = byte(i)
	}
	for i := 0; i < 6; i++ {
		m[fmt.Sprintf("a%d", i)] = byte(evm.RegA0 + i)
	}
	for i := 0; i < 6; i++ {
		m[fmt.Sprintf("s%d", i)] = byte(evm.RegS0 + i)
	}
	return m
}()

// isRegName reports whether s names a register.
func isRegName(s string) bool {
	_, ok := regAliases[s]
	return ok
}

// operand is one parsed instruction operand.
type operand struct {
	isReg bool
	reg   byte
	isMem bool
	base  byte
	expr  expr // immediate / symbol operand (also mem displacement)
}

// parseOperands splits toks at top-level commas and parses each operand.
func parseOperands(toks []token) ([]operand, error) {
	var ops []operand
	for len(toks) > 0 {
		var o operand
		switch {
		case toks[0].is("["):
			// [reg] or [reg+imm] or [reg-imm]
			if len(toks) < 3 || toks[1].kind != tokIdent {
				return nil, fmt.Errorf("bad memory operand")
			}
			r, ok := regAliases[toks[1].text]
			if !ok {
				return nil, fmt.Errorf("bad base register %q", toks[1].text)
			}
			o.isMem = true
			o.base = r
			toks = toks[2:]
			if toks[0].is("+") || toks[0].is("-") {
				negate := toks[0].is("-")
				if len(toks) < 2 || toks[1].kind != tokNumber {
					return nil, fmt.Errorf("bad memory displacement")
				}
				o.expr.num = toks[1].num
				if negate {
					o.expr.num = -o.expr.num
				}
				toks = toks[2:]
			}
			if len(toks) == 0 || !toks[0].is("]") {
				return nil, fmt.Errorf("missing ']'")
			}
			toks = toks[1:]
		case toks[0].kind == tokIdent && isRegName(toks[0].text):
			o.isReg = true
			o.reg = regAliases[toks[0].text]
			toks = toks[1:]
		default:
			e, rest, err := parseExpr(toks)
			if err != nil {
				return nil, err
			}
			o.expr = e
			toks = rest
		}
		ops = append(ops, o)
		if len(toks) > 0 {
			if !toks[0].is(",") {
				return nil, fmt.Errorf("expected ',', got %q", toks[0].text)
			}
			toks = toks[1:]
		}
	}
	return ops, nil
}

// instruction assembles one instruction line.
func (a *assembler) instruction(name string, toks []token) error {
	if a.sec != obj.SecText {
		return fmt.Errorf("instruction outside .text")
	}
	// Pseudo-instructions.
	switch name {
	case "li":
		name = "movi"
	case "la":
		name = "lea"
	case "j":
		name = "jmp"
	}
	op, ok := evm.OpcodeByName[name]
	if !ok {
		return fmt.Errorf("unknown instruction %q", name)
	}
	ops, err := parseOperands(toks)
	if err != nil {
		return err
	}

	reg := func(i int) (byte, error) {
		if i >= len(ops) || !ops[i].isReg {
			return 0, fmt.Errorf("%s: operand %d must be a register", name, i+1)
		}
		return ops[i].reg, nil
	}
	imm := func(i int) (int64, error) {
		if i >= len(ops) || ops[i].isReg || ops[i].isMem || ops[i].expr.sym != "" {
			return 0, fmt.Errorf("%s: operand %d must be an integer", name, i+1)
		}
		return ops[i].expr.num, nil
	}
	want := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s: want %d operands, got %d", name, n, len(ops))
		}
		return nil
	}
	// target handles a pc-relative operand (branch/jump/lea): either a plain
	// displacement or a symbol reference emitting a RelPC32 at fieldOff.
	target := func(i int, fieldOff uint64) (int64, error) {
		if i >= len(ops) || ops[i].isReg || ops[i].isMem {
			return 0, fmt.Errorf("%s: operand %d must be a target", name, i+1)
		}
		e := ops[i].expr
		if e.sym == "" {
			return e.num, nil
		}
		a.file.Relocs = append(a.file.Relocs, obj.Reloc{
			Section: obj.SecText, Off: fieldOff, Type: obj.RelPC32, Sym: e.sym, Addend: e.num,
		})
		return 0, nil
	}

	in := evm.Inst{Op: op}
	base := a.off()

	switch op.OpForm() {
	case evm.FormNone:
		if err := want(0); err != nil {
			return err
		}

	case evm.FormRR:
		if err := want(2); err != nil {
			return err
		}
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if in.Ra, err = reg(1); err != nil {
			return err
		}

	case evm.FormRI64: // movi rd, imm|sym
		if err := want(2); err != nil {
			return err
		}
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if ops[1].isReg || ops[1].isMem {
			return fmt.Errorf("%s: operand 2 must be an immediate or symbol", name)
		}
		if e := ops[1].expr; e.sym != "" {
			a.file.Relocs = append(a.file.Relocs, obj.Reloc{
				Section: obj.SecText, Off: base + 2, Type: obj.RelAbs64, Sym: e.sym, Addend: e.num,
			})
		} else {
			in.U64 = uint64(e.num)
		}

	case evm.FormRI32: // lea rd, target
		if err := want(2); err != nil {
			return err
		}
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if in.Imm, err = target(1, base+2); err != nil {
			return err
		}

	case evm.FormRRR:
		if err := want(3); err != nil {
			return err
		}
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if in.Ra, err = reg(1); err != nil {
			return err
		}
		if in.Rb, err = reg(2); err != nil {
			return err
		}

	case evm.FormRRI32:
		if err := want(3); err != nil {
			return err
		}
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if in.Ra, err = reg(1); err != nil {
			return err
		}
		if in.Imm, err = imm(2); err != nil {
			return err
		}
		if in.Imm != int64(int32(in.Imm)) {
			return fmt.Errorf("%s: immediate %d out of 32-bit range", name, in.Imm)
		}

	case evm.FormRRW:
		if err := want(3); err != nil {
			return err
		}
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if in.Ra, err = reg(1); err != nil {
			return err
		}
		w, err := imm(2)
		if err != nil {
			return err
		}
		if w != 1 && w != 2 && w != 4 {
			return fmt.Errorf("%s: width must be 1, 2, or 4", name)
		}
		in.W = byte(w)

	case evm.FormRRB32: // beq ra, rb, target
		if err := want(3); err != nil {
			return err
		}
		if in.Rd, err = reg(0); err != nil {
			return err
		}
		if in.Ra, err = reg(1); err != nil {
			return err
		}
		if in.Imm, err = target(2, base+3); err != nil {
			return err
		}

	case evm.FormI32: // jmp/call target
		if err := want(1); err != nil {
			return err
		}
		if in.Imm, err = target(0, base+1); err != nil {
			return err
		}

	case evm.FormR:
		if err := want(1); err != nil {
			return err
		}
		if in.Rd, err = reg(0); err != nil {
			return err
		}

	case evm.FormMem:
		if err := want(2); err != nil {
			return err
		}
		switch op {
		case evm.ST8, evm.ST16, evm.ST32, evm.ST64:
			// st [rb+off], rs
			if !ops[0].isMem {
				return fmt.Errorf("%s: first operand must be a memory reference", name)
			}
			if in.Rd, err = reg(1); err != nil {
				return err
			}
			in.Ra = ops[0].base
			in.Imm = ops[0].expr.num
		default:
			// ld rd, [rb+off]
			if in.Rd, err = reg(0); err != nil {
				return err
			}
			if !ops[1].isMem {
				return fmt.Errorf("%s: second operand must be a memory reference", name)
			}
			in.Ra = ops[1].base
			in.Imm = ops[1].expr.num
		}
		if in.Imm != int64(int32(in.Imm)) {
			return fmt.Errorf("%s: displacement %d out of range", name, in.Imm)
		}

	case evm.FormI16:
		if err := want(1); err != nil {
			return err
		}
		v, err := imm(0)
		if err != nil {
			return err
		}
		if v < 0 || v > 0xffff {
			return fmt.Errorf("%s: immediate %d out of 16-bit range", name, v)
		}
		in.Imm = v
	}

	return a.emit(in.Encode(nil)...)
}
