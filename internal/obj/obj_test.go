package obj

import "testing"

func TestSectionCreationAndLen(t *testing.T) {
	f := NewFile("t.s")
	text := f.Section(SecText)
	if text == nil || text.Kind != SecText || text.Align != 1 {
		t.Fatalf("bad section: %+v", text)
	}
	if f.Section(SecText) != text {
		t.Error("Section not idempotent")
	}
	text.Data = []byte{1, 2, 3}
	if text.Len() != 3 {
		t.Errorf("Len = %d", text.Len())
	}
	bss := f.Section(SecBss)
	bss.Size = 128
	if bss.Len() != 128 {
		t.Errorf("bss Len = %d", bss.Len())
	}
}

func TestSymbolTable(t *testing.T) {
	f := NewFile("t.s")
	if err := f.AddSymbol(&Symbol{Name: "a", Section: SecText, Kind: SymFunc}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSymbol(&Symbol{Name: "a"}); err == nil {
		t.Error("duplicate symbol accepted")
	}
	if f.Lookup("a") == nil || f.Lookup("b") != nil {
		t.Error("lookup wrong")
	}
}

func TestKindByName(t *testing.T) {
	for name, want := range map[string]SectionKind{
		".text": SecText, ".rodata": SecRodata, ".data": SecData, ".bss": SecBss,
	} {
		got, ok := KindByName(name)
		if !ok || got != want {
			t.Errorf("KindByName(%q) = %v, %v", name, got, ok)
		}
		if got.String() != name {
			t.Errorf("String() = %q", got.String())
		}
	}
	if _, ok := KindByName(".junk"); ok {
		t.Error("unknown section accepted")
	}
}

func TestStringers(t *testing.T) {
	if SymFunc.String() != "func" || SymObject.String() != "object" || SymLabel.String() != "label" {
		t.Error("SymKind strings wrong")
	}
	if RelPC32.String() != "PC32" || RelAbs64.String() != "ABS64" {
		t.Error("RelocType strings wrong")
	}
}
