// Package obj defines the in-memory object file model shared by the
// assembler (which produces it) and the linker (which consumes it).
//
// An obj.File corresponds to one translation unit: the sections it
// contributes, the symbols it defines, and the relocations that must be
// applied once final addresses are known.
package obj

import "fmt"

// SectionKind classifies a section for layout and permission purposes.
type SectionKind int

const (
	SecText   SectionKind = iota // executable code (R+X; R+W+X after sanitization)
	SecRodata                    // read-only data
	SecData                      // initialized writable data
	SecBss                       // zero-initialized writable data
)

func (k SectionKind) String() string {
	switch k {
	case SecText:
		return ".text"
	case SecRodata:
		return ".rodata"
	case SecData:
		return ".data"
	case SecBss:
		return ".bss"
	}
	return ".sec?"
}

// KindByName maps canonical section names to kinds.
func KindByName(name string) (SectionKind, bool) {
	switch name {
	case ".text":
		return SecText, true
	case ".rodata":
		return SecRodata, true
	case ".data":
		return SecData, true
	case ".bss":
		return SecBss, true
	}
	return 0, false
}

// Section is one section's contribution from a translation unit.
type Section struct {
	Kind  SectionKind
	Data  []byte // nil for bss
	Size  uint64 // bss size; for others len(Data)
	Align uint64 // required alignment, power of two, >= 1
}

// Len returns the section's size in bytes.
func (s *Section) Len() uint64 {
	if s.Kind == SecBss {
		return s.Size
	}
	return uint64(len(s.Data))
}

// SymKind classifies symbols.
type SymKind int

const (
	SymFunc   SymKind = iota // function (sanitizer candidates)
	SymObject                // data object
	SymLabel                 // local code label (not a function)
)

func (k SymKind) String() string {
	switch k {
	case SymFunc:
		return "func"
	case SymObject:
		return "object"
	case SymLabel:
		return "label"
	}
	return "sym?"
}

// Symbol is a defined symbol within a section of this unit.
type Symbol struct {
	Name    string
	Section SectionKind
	Off     uint64 // offset within this unit's section contribution
	Size    uint64
	Kind    SymKind
	Global  bool
}

// RelocType identifies how a relocation patches its field.
type RelocType int

const (
	// RelPC32 patches a 4-byte little-endian field with
	// target+addend-(fieldAddr+4). All EVM pc-relative instruction forms
	// (CALL/JMP/branches/LEA) place the displacement field exactly 4 bytes
	// before the next instruction, so one type covers them all.
	RelPC32 RelocType = iota
	// RelAbs64 patches an 8-byte little-endian field with target+addend.
	// Used for MOVI immediates and .quad data words.
	RelAbs64
)

func (t RelocType) String() string {
	switch t {
	case RelPC32:
		return "PC32"
	case RelAbs64:
		return "ABS64"
	}
	return "REL?"
}

// Reloc is one relocation to apply in a section of this unit.
type Reloc struct {
	Section SectionKind
	Off     uint64 // offset of the field within this unit's section
	Type    RelocType
	Sym     string // target symbol name (resolved local-first, then global)
	Addend  int64
}

// File is one assembled translation unit.
type File struct {
	Name     string // source name, for diagnostics
	Sections map[SectionKind]*Section
	Symbols  []*Symbol
	Relocs   []Reloc
}

// NewFile returns an empty unit named name.
func NewFile(name string) *File {
	return &File{Name: name, Sections: make(map[SectionKind]*Section)}
}

// Section returns the unit's section of kind k, creating it if needed.
func (f *File) Section(k SectionKind) *Section {
	s := f.Sections[k]
	if s == nil {
		s = &Section{Kind: k, Align: 1}
		f.Sections[k] = s
	}
	return s
}

// Lookup returns the unit's symbol named name, or nil.
func (f *File) Lookup(name string) *Symbol {
	for _, s := range f.Symbols {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// AddSymbol appends a symbol, rejecting duplicates within the unit.
func (f *File) AddSymbol(s *Symbol) error {
	if f.Lookup(s.Name) != nil {
		return fmt.Errorf("%s: symbol %q redefined", f.Name, s.Name)
	}
	f.Symbols = append(f.Symbols, s)
	return nil
}
