package sdk

// Wipe zeroizes b in place. Decrypted plaintext and derived key
// material exist in cleartext only transiently (the SGXElide premise);
// every owner of such a buffer wipes it on the way out — typically
// "defer Wipe(buf)" so the zeroization covers every exit path. The
// elide-vet wipe analyzer enforces the convention.
//
// The loop is the idiomatic Go zeroization pattern (compiled to a
// memclr); a separate helper rather than inline clear() so call sites
// read as a security action and the vet suite can recognize it by name.
func Wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
