package sdk

import (
	"fmt"

	"sgxelide/internal/edl"
	"sgxelide/internal/elf"
	"sgxelide/internal/evm"
	"sgxelide/internal/obs"
	"sgxelide/internal/sgx"
)

// EEXIT codes shared with the trusted runtime.
const (
	ExitReturn = 0 // ecall completed
	ExitOCall  = 1 // synchronous ocall: r1 = index, r2 = marshal address
	ExitAbort  = 2 // enclave abort
)

// Untrusted memory layout.
const (
	untrustedBase = 0x1000
	untrustedSize = 64 << 20
	arenaSize     = 256 << 10
)

// OcallContext gives an ocall handler access to its marshalled arguments
// and to untrusted memory.
type OcallContext struct {
	Host *Host
	ms   uint64
	fn   edl.Func
}

// Arg returns the i-th argument slot (a scalar value or an untrusted buffer
// address).
func (c *OcallContext) Arg(i int) uint64 {
	v, _ := c.Host.Mem.Load(c.ms+uint64(8*(1+i)), 8)
	return v
}

// ArgBytes returns the buffer argument i, whose length is n bytes.
func (c *OcallContext) ArgBytes(i int, n int) []byte {
	b, _ := c.Host.Mem.ReadBytes(c.Arg(i), n)
	return b
}

// SetArgBytes writes data into buffer argument i (for [out] parameters).
func (c *OcallContext) SetArgBytes(i int, data []byte) {
	c.Host.Mem.WriteBytes(c.Arg(i), data)
}

// Span returns the live span of the ocall being serviced (nil when the
// host has no tracer), so handlers can attach phase spans to it.
func (c *OcallContext) Span() *obs.Span { return c.Host.cur }

// OcallHandler services one ocall and returns its result value.
type OcallHandler func(c *OcallContext) (uint64, error)

// Host is the untrusted runtime (uRTS): it owns untrusted application
// memory, creates enclaves via the platform's instructions, dispatches
// ecalls, and services ocalls.
type Host struct {
	Platform *sgx.Platform
	Mem      *evm.FlatMem

	// Metrics, when set, receives ecall/ocall dispatch counters
	// (sdk.ecalls, sdk.ocalls, sdk.ecall_errors, sdk.ocall_errors).
	Metrics *obs.Registry

	// Tracer, when set, receives a span per ecall and per ocall dispatch.
	// Ocall handlers reach the live span through OcallContext.Span to
	// attach their own sub-spans; intrinsics attach theirs to the current
	// innermost span. Like the rest of the Host, tracing assumes one
	// goroutine drives ecalls on a given Host at a time.
	Tracer *obs.Tracer

	cursor uint64 // untrusted bump allocator
	arena  uint64 // ocall arena base

	cur *obs.Span // innermost live span of the dispatch in progress

	ocalls map[string]OcallHandler
}

// BeginSpan starts a span (a child of the current dispatch span, or a new
// trace root) and makes it the parent of subsequent ecall spans. The
// returned func restores the previous parent and ends the span; callers
// use this to group one logical operation — e.g. a whole restore — into a
// single trace. The span is nil (and everything still works) when the
// Host has no tracer.
func (h *Host) BeginSpan(name string) (*obs.Span, func()) {
	var sp *obs.Span
	if h.cur != nil {
		sp = h.cur.Child(name)
	} else {
		sp = h.Tracer.Start(name)
	}
	prev := h.cur
	h.cur = sp
	return sp, func() {
		h.cur = prev
		sp.End()
	}
}

// NewHost creates an untrusted runtime on the given platform.
func NewHost(p *sgx.Platform) *Host {
	h := &Host{
		Platform: p,
		Mem:      evm.NewFlatMem(untrustedBase, untrustedSize),
		cursor:   untrustedBase + arenaSize,
		arena:    untrustedBase,
		ocalls:   make(map[string]OcallHandler),
	}
	return h
}

// RegisterOcall installs the handler for the named ocall.
func (h *Host) RegisterOcall(name string, fn OcallHandler) { h.ocalls[name] = fn }

// Alloc reserves n bytes of untrusted memory (16-aligned).
func (h *Host) Alloc(n int) uint64 {
	h.cursor = (h.cursor + 15) &^ 15
	addr := h.cursor
	h.cursor += uint64(n)
	if h.cursor > untrustedBase+untrustedSize {
		panic("sdk: untrusted memory exhausted")
	}
	return addr
}

// AllocBytes copies data into fresh untrusted memory and returns its address.
func (h *Host) AllocBytes(data []byte) uint64 {
	addr := h.Alloc(len(data))
	h.Mem.WriteBytes(addr, data)
	return addr
}

// ReadBytes reads n bytes of untrusted memory.
func (h *Host) ReadBytes(addr uint64, n int) []byte {
	b, ok := h.Mem.ReadBytes(addr, n)
	if !ok {
		panic(fmt.Sprintf("sdk: bad untrusted read %#x+%d", addr, n))
	}
	return b
}

// Enclave is a loaded enclave instance plus its execution state — the
// handle sgx_create_enclave would return.
type Enclave struct {
	Host     *Host
	Encl     *sgx.Enclave
	VM       *evm.VM
	Space    *sgx.AddressSpace
	EDL      *edl.Interface
	midOCall bool

	// Steps accumulates instructions executed inside the enclave.
	Steps uint64
}

// CreateEnclave loads an enclave ELF image: ECREATE over its ELRANGE, EADD
// of every loadable page with the segment's p_flags permissions, EEXTEND of
// all contents (16 chunks per page), then EINIT against the SIGSTRUCT.
func (h *Host) CreateEnclave(elfBytes []byte, ss *sgx.SigStruct, iface *edl.Interface) (*Enclave, error) {
	f, err := elf.Read(elfBytes)
	if err != nil {
		return nil, err
	}
	if f.Machine != elf.EMachineEVM {
		return nil, fmt.Errorf("sdk: not an EVM enclave image")
	}
	base, end := f.Base(), f.End()
	encl, err := h.Platform.ECreate(base, end-base, f.Entry)
	if err != nil {
		return nil, err
	}
	if err := loadEnclavePages(h.Platform, encl, f); err != nil {
		return nil, err
	}
	if err := h.Platform.EInit(encl, ss); err != nil {
		return nil, err
	}

	space := &sgx.AddressSpace{Enclave: encl, Untrusted: h.Mem}
	vm := evm.New(space)
	vm.MaxSteps = 1 << 32
	e := &Enclave{Host: h, Encl: encl, VM: vm, Space: space, EDL: iface}
	installIntrinsics(e)
	return e, nil
}

// MeasureELF computes the measurement the loader would produce for an
// enclave image, without consuming EPC — the signing tool uses this to
// build the SIGSTRUCT.
func MeasureELF(h *Host, elfBytes []byte) ([32]byte, error) {
	// Load into a scratch platform so EINIT state is untouched.
	var zero [32]byte
	f, err := elf.Read(elfBytes)
	if err != nil {
		return zero, err
	}
	base, end := f.Base(), f.End()
	encl, err := h.Platform.ECreate(base, end-base, f.Entry)
	if err != nil {
		return zero, err
	}
	defer h.Platform.Destroy(encl)
	if err := loadEnclavePages(h.Platform, encl, f); err != nil {
		return zero, err
	}
	return encl.Measure(), nil
}

// loadEnclavePages EADDs and EEXTENDs every loadable page of an ELF image:
// the measured loading loop shared by enclave creation and the signing
// tool's measurement prediction.
func loadEnclavePages(p *sgx.Platform, encl *sgx.Enclave, f *elf.File) error {
	for _, ph := range f.Phdrs {
		if ph.Type != elf.PTLoad {
			continue
		}
		var perm sgx.Perm
		if ph.Flags&elf.PFR != 0 {
			perm |= sgx.PermR
		}
		if ph.Flags&elf.PFW != 0 {
			perm |= sgx.PermW
		}
		if ph.Flags&elf.PFX != 0 {
			perm |= sgx.PermX
		}
		npages := (ph.Memsz + sgx.PageSize - 1) / sgx.PageSize
		for i := uint64(0); i < npages; i++ {
			page := make([]byte, sgx.PageSize)
			fileOff := i * sgx.PageSize
			if fileOff < ph.Filesz {
				n := ph.Filesz - fileOff
				if n > sgx.PageSize {
					n = sgx.PageSize
				}
				copy(page, f.Raw[ph.Off+fileOff:ph.Off+fileOff+n])
			}
			va := ph.Vaddr + i*sgx.PageSize
			if err := p.EAdd(encl, va, perm, page); err != nil {
				return err
			}
			for off := uint64(0); off < sgx.PageSize; off += sgx.EExtendChunk {
				if err := p.EExtend(encl, va+off); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ECall invokes the named ecall. Pointer arguments are untrusted-memory
// addresses the caller obtained from Host.Alloc/AllocBytes; the enclave
// bridge copies them in and out. Returns the ecall's 64-bit result.
func (e *Enclave) ECall(name string, args ...uint64) (ret uint64, err error) {
	idx, ok := e.EDL.EcallIndex(name)
	if !ok {
		return 0, fmt.Errorf("sdk: unknown ecall %q", name)
	}
	fn := e.EDL.Ecalls[idx]
	if len(args) != len(fn.Params) {
		return 0, fmt.Errorf("sdk: ecall %q wants %d args, got %d", name, len(fn.Params), len(args))
	}
	if e.midOCall {
		return 0, fmt.Errorf("sdk: re-entrant ecall while an ocall is outstanding")
	}

	e.Host.Metrics.Counter("sdk.ecalls").Inc()
	span, endSpan := e.Host.BeginSpan("ecall:" + name)
	defer func() {
		if err != nil {
			e.Host.Metrics.Counter("sdk.ecall_errors").Inc()
			span.SetError(err)
		} else {
			span.SetInt("ret", int64(ret))
		}
		endSpan()
	}()

	ms := e.Host.Alloc(8 * (1 + len(args)))
	e.Host.Mem.Store(ms, 8, 0)
	for i, a := range args {
		e.Host.Mem.Store(ms+uint64(8*(1+i)), 8, a)
	}

	// EENTER.
	vm := e.VM
	vm.PC = e.Encl.Entry
	vm.Reg[1] = uint64(idx)
	vm.Reg[2] = ms
	vm.Reg[3] = e.Host.arena

	start := vm.Steps
	defer func() {
		n := vm.Steps - start
		e.Steps += n
		span.SetInt("steps", int64(n))
	}()

	for {
		stop := vm.Run()
		switch stop.Reason {
		case evm.StopFault:
			return 0, fmt.Errorf("sdk: enclave fault during %q: %w", name, stop.Fault)
		case evm.StopHalt:
			return 0, fmt.Errorf("sdk: enclave executed HALT (not permitted in enclave mode)")
		case evm.StopExit:
			switch stop.Code {
			case ExitReturn:
				ret, _ := e.Host.Mem.Load(ms, 8)
				return ret, nil
			case ExitAbort:
				return 0, fmt.Errorf("sdk: enclave abort during %q", name)
			case ExitOCall:
				if err := e.dispatchOCall(); err != nil {
					return 0, fmt.Errorf("sdk: ocall during %q: %w", name, err)
				}
			default:
				return 0, fmt.Errorf("sdk: unknown EEXIT code %d", stop.Code)
			}
		}
	}
}

// dispatchOCall services one ocall exit and resumes.
func (e *Enclave) dispatchOCall() error {
	idx := int(e.VM.Reg[1])
	ms := e.VM.Reg[2]
	e.Host.Metrics.Counter("sdk.ocalls").Inc()
	if idx < 0 || idx >= len(e.EDL.Ocalls) {
		e.Host.Metrics.Counter("sdk.ocall_errors").Inc()
		return fmt.Errorf("bad ocall index %d", idx)
	}
	fn := e.EDL.Ocalls[idx]
	handler := e.Host.ocalls[fn.Name]
	if handler == nil {
		e.Host.Metrics.Counter("sdk.ocall_errors").Inc()
		return fmt.Errorf("no handler registered for ocall %q", fn.Name)
	}
	span, endSpan := e.Host.BeginSpan("ocall:" + fn.Name)
	e.midOCall = true
	ret, err := safeOCall(handler, &OcallContext{Host: e.Host, ms: ms, fn: fn})
	e.midOCall = false
	span.SetError(err)
	endSpan()
	if err != nil {
		e.Host.Metrics.Counter("sdk.ocall_errors").Inc()
		return err
	}
	e.Host.Mem.Store(ms, 8, ret)
	e.VM.Reg[0] = 0
	return nil
}

// safeOCall contains a panicking ocall handler: the restore path reports
// the failure to the caller as an ecall error instead of tearing down the
// whole untrusted process.
func safeOCall(handler OcallHandler, c *OcallContext) (ret uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			ret, err = 0, fmt.Errorf("ocall %q panicked: %v", c.fn.Name, r)
		}
	}()
	return handler(c)
}

// Destroy releases the enclave's EPC pages.
func (e *Enclave) Destroy() { e.Host.Platform.Destroy(e.Encl) }
