package sdk

import (
	"fmt"

	"sgxelide/internal/asm"
	"sgxelide/internal/edl"
	"sgxelide/internal/elf"
	"sgxelide/internal/evm"
	"sgxelide/internal/link"
	"sgxelide/internal/minic"
	"sgxelide/internal/obj"
)

// Source is one trusted-side source file for an enclave build.
type Source struct {
	Name string // file name for diagnostics; .c compiles with minic, .s assembles
	Text string
}

// C and Asm construct Sources.
func C(name, text string) Source   { return Source{Name: name, Text: text} }
func Asm(name, text string) Source { return Source{Name: name, Text: text} }

// BuildConfig controls enclave image building.
type BuildConfig struct {
	Base      uint64 // image base; default 0x10000000
	HeapSize  uint64 // default 8 MiB
	StackSize uint64 // default 256 KiB
}

// BuildResult is a built (unsigned) enclave image.
type BuildResult struct {
	ELF   []byte
	Image *link.Image
	EDL   *edl.Interface
}

// BuildEnclave compiles and links an enclave shared object from the trusted
// runtime, the EDL-generated bridges, and the given sources — the job the
// SGX SDK's Makefile + edger8r pipeline performs.
func BuildEnclave(cfg BuildConfig, iface *edl.Interface, sources ...Source) (*BuildResult, error) {
	if cfg.Base == 0 {
		cfg.Base = 0x10000000
	}
	if cfg.HeapSize == 0 {
		cfg.HeapSize = 8 << 20
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = 256 << 10
	}

	bridges, err := edl.GenerateBridges(iface)
	if err != nil {
		return nil, err
	}
	units := []Source{
		Asm("trts.s", TrtsSource),
		Asm("tlibc.s", TlibcSource),
		Asm("tcrypto.s", CryptoSource),
		Asm("bridges.s", bridges),
	}
	units = append(units, sources...)

	var objs []*obj.File
	for _, src := range units {
		text := src.Text
		if len(src.Name) > 2 && src.Name[len(src.Name)-2:] == ".c" {
			text, err = minic.Compile(src.Name, src.Text)
			if err != nil {
				return nil, err
			}
		}
		f, err := asm.Assemble(src.Name, text)
		if err != nil {
			return nil, err
		}
		objs = append(objs, f)
	}

	im, err := link.Link(link.Config{
		Base:      cfg.Base,
		Entry:     "enclave_entry",
		HeapSize:  cfg.HeapSize,
		StackSize: cfg.StackSize,
	}, objs...)
	if err != nil {
		return nil, err
	}
	return &BuildResult{ELF: elf.Write(im), Image: im, EDL: iface}, nil
}

// BuildEnclaveFromEDL parses the EDL source and builds.
func BuildEnclaveFromEDL(cfg BuildConfig, edlSrc string, sources ...Source) (*BuildResult, error) {
	iface, err := edl.Parse(edlSrc)
	if err != nil {
		return nil, err
	}
	return BuildEnclave(cfg, iface, sources...)
}

// Disassemble renders the text section of an enclave ELF with symbolized
// targets — what an attacker does to an enclave file before initialization.
func Disassemble(elfBytes []byte) (string, error) {
	f, err := elf.Read(elfBytes)
	if err != nil {
		return "", err
	}
	text := f.Section(".text")
	if text == nil {
		return "", fmt.Errorf("sdk: no .text section")
	}
	syms := make(map[uint64]string)
	for _, s := range f.Symbols {
		if s.Type == elf.STTFunc || s.Type == elf.STTObject {
			syms[s.Value] = s.Name
		}
	}
	d := &evm.Disassembler{Symbols: syms}
	return d.Format(text.Addr, f.SectionData(text)), nil
}
