package sdk

import (
	"fmt"
	"io"

	"sgxelide/internal/asm"
	"sgxelide/internal/elf"
	"sgxelide/internal/evm"
	"sgxelide/internal/link"
	"sgxelide/internal/minic"
	"sgxelide/internal/obj"
)

// BareRuntimeSource is the freestanding runtime for non-enclave programs
// (toolchain demos and compiler tests): _start calls main and halts with
// main's return value in r0; putchar traps to the host (intrinsic 1).
const BareRuntimeSource = `
; bare-metal runtime
.text
.global _start
.func _start
	call main
	halt
.endfunc
.global putchar
.func putchar
	intrin 1
	ret
.endfunc
`

// BareIntrinPutchar is the intrinsic number of the bare runtime's putchar.
const BareIntrinPutchar = 1

// BuildBare compiles and links sources (mini-C and assembly) together with
// the bare runtime into a standalone image with entry _start.
func BuildBare(cfg link.Config, sources ...Source) (*link.Image, error) {
	if cfg.Entry == "" {
		cfg.Entry = "_start"
	}
	units := append([]Source{
		Asm("bare_rt.s", BareRuntimeSource),
		Asm("tlibc.s", TlibcSource),
	}, sources...)
	var objs []*obj.File
	for _, src := range units {
		text := src.Text
		if len(src.Name) > 2 && src.Name[len(src.Name)-2:] == ".c" {
			var err error
			text, err = minic.Compile(src.Name, src.Text)
			if err != nil {
				return nil, err
			}
		}
		f, err := asm.Assemble(src.Name, text)
		if err != nil {
			return nil, err
		}
		objs = append(objs, f)
	}
	return link.Link(cfg, objs...)
}

// RunBare executes a bare image, streaming putchar output to out, and
// returns main's exit value (r0 at HALT).
func RunBare(im *link.Image, out io.Writer, maxSteps uint64) (uint64, error) {
	m := im.NewVM()
	if maxSteps == 0 {
		maxSteps = 1 << 32
	}
	m.MaxSteps = maxSteps
	m.Intrinsics = map[uint16]evm.Intrinsic{
		BareIntrinPutchar: func(m *evm.VM) *evm.Fault {
			if out != nil {
				if _, err := out.Write([]byte{byte(m.Reg[evm.RegA0])}); err != nil {
					return &evm.Fault{Kind: evm.FaultIntrinsic, Msg: err.Error()}
				}
			}
			m.Reg[evm.RegRet] = m.Reg[evm.RegA0]
			return nil
		},
	}
	stop := m.Run()
	if stop.Reason != evm.StopHalt {
		return 0, fmt.Errorf("sdk: bare program did not halt: %s", stop)
	}
	return m.Reg[0], nil
}

// RunBareELF loads a bare ELF image into flat memory and runs it.
func RunBareELF(elfBytes []byte, out io.Writer, maxSteps uint64) (uint64, error) {
	f, err := elf.Read(elfBytes)
	if err != nil {
		return 0, err
	}
	base, end := f.Base(), f.End()
	mem := evm.NewFlatMem(base, int(end-base))
	for _, ph := range f.Phdrs {
		if ph.Type != elf.PTLoad || ph.Filesz == 0 {
			continue
		}
		mem.WriteBytes(ph.Vaddr, f.Raw[ph.Off:ph.Off+ph.Filesz])
	}
	m := evm.New(mem)
	m.PC = f.Entry
	if sym, ok := f.FindSymbol("__stack_top"); ok {
		m.SetSP(sym.Value)
	} else {
		m.SetSP(end)
	}
	if maxSteps == 0 {
		maxSteps = 1 << 32
	}
	m.MaxSteps = maxSteps
	m.Intrinsics = map[uint16]evm.Intrinsic{
		BareIntrinPutchar: func(m *evm.VM) *evm.Fault {
			if out != nil {
				if _, err := out.Write([]byte{byte(m.Reg[evm.RegA0])}); err != nil {
					return &evm.Fault{Kind: evm.FaultIntrinsic, Msg: err.Error()}
				}
			}
			m.Reg[evm.RegRet] = m.Reg[evm.RegA0]
			return nil
		},
	}
	stop := m.Run()
	if stop.Reason != evm.StopHalt {
		return 0, fmt.Errorf("sdk: bare program did not halt: %s", stop)
	}
	return m.Reg[0], nil
}
