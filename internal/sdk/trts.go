package sdk

// TrtsSource is the trusted runtime (tRTS), in EVM assembly: the enclave's
// single architectural entry point with ecall dispatch, the ocall exit path,
// the trusted heap, and the string/memory routines every enclave links.
// These functions are part of the dummy enclave and therefore end up on the
// SgxElide whitelist — they must survive sanitization or nothing could run.
//
// EENTER register convention (shared with the untrusted runtime):
//
//	r1 = ecall index
//	r2 = marshal struct address (untrusted memory)
//	r3 = ocall arena address (untrusted memory)
//
// EEXIT codes: 0 = ecall return, 1 = ocall (r1 = index, r2 = marshal
// address), 2 = enclave abort.
const TrtsSource = `
; trusted runtime (tRTS)
.text

.global enclave_entry
.func enclave_entry
	la sp, __stack_top
	la r7, g_ocall_arena
	st64 [r7], r3
	la r7, g_ecall_count
	ld64 r7, [r7]
	bltu r1, r7, .Ltrts_auto
	eexit 2

; Transparent-restoration hook (SgxElide "totally transparent" mode, the
; paper's first future-work item): when the sanitizer has patched
; g_elide_auto to flags+1, every ecall first routes through ecall 0 — which
; in an SgxElide enclave is elide_restore (a fast no-op once restored). In
; plain enclaves g_elide_auto stays 0 and this block falls through.
.Ltrts_auto:
	la r7, g_elide_auto
	ld64 r7, [r7]
	movi r0, 0
	beq r7, r0, .Ltrts_dispatch
	beq r1, r0, .Ltrts_dispatch
	push r1
	push r2
	push r3
	addi a0, r7, -1
	st64 [r3+8], a0
	mov a0, r3
	la r7, g_ecall_table
	ld64 r7, [r7]
	callr r7
	pop r3
	pop r2
	pop r1
	ld64 r7, [r3]
	movi r0, 100
	bltu r7, r0, .Ltrts_dispatch
	eexit 2

.Ltrts_dispatch:
	la r7, g_ecall_table
	shli r0, r1, 3
	add r7, r7, r0
	ld64 r7, [r7]
	mov a0, r2
	callr r7
	eexit 0
.endfunc

.global abort
.func abort
	eexit 2
	jmp abort
.endfunc





; Trusted heap: a watermark (arena) allocator. Bridges snapshot the cursor
; with heap_mark and roll back with heap_release when the ecall returns, so
; per-call scratch cannot leak.
; void* malloc(uint64_t n)
.global malloc
.func malloc
	la r7, g_heap_cursor
	ld64 rv, [r7]
	movi r2, 0
	bne rv, r2, .Lmalloc_have
	la rv, __heap_base
.Lmalloc_have:
	addi rv, rv, 15
	movi r2, -16
	and rv, rv, r2
	add r2, rv, a0
	la r3, __heap_end
	bltu r3, r2, .Lmalloc_oom
	st64 [r7], r2
	ret
.Lmalloc_oom:
	eexit 2
	jmp .Lmalloc_oom
.endfunc

; void free(void* p) — arena allocator: individual frees are no-ops.
.global free
.func free
	ret
.endfunc

; uint64_t heap_mark(void)
.global heap_mark
.func heap_mark
	la r7, g_heap_cursor
	ld64 rv, [r7]
	movi r2, 0
	bne rv, r2, .Lheap_mark_done
	la rv, __heap_base
	st64 [r7], rv
.Lheap_mark_done:
	ret
.endfunc

; void heap_release(uint64_t mark)
.global heap_release
.func heap_release
	la r7, g_heap_cursor
	st64 [r7], a0
	ret
.endfunc

.data
.align 8
.global g_ocall_arena
g_ocall_arena:
	.quad 0
.global g_heap_cursor
g_heap_cursor:
	.quad 0
; Patched by the SgxElide sanitizer in transparent mode: 0 = off,
; otherwise elide_restore flags + 1.
.global g_elide_auto
g_elide_auto:
	.quad 0
`

// CryptoSource is the trusted crypto/platform library, modeling the SGX
// SDK's statically linked tcrypto + tservice routines. Each stub is a real
// text-section function whose body traps to a host intrinsic — the moral
// equivalent of the SDK's AES-NI/constant-time primitives, which SgxElide's
// whitelist must also keep.
const CryptoSource = `
; trusted crypto and platform services (tcrypto / tservice)
.text

; int sgx_rijndael128GCM_encrypt(key16, src, len, dst, iv12, mac16_out)
.global sgx_rijndael128GCM_encrypt
.func sgx_rijndael128GCM_encrypt
	intrin 0x100
	ret
.endfunc

; int sgx_rijndael128GCM_decrypt(key16, src, len, dst, iv12, mac16)
.global sgx_rijndael128GCM_decrypt
.func sgx_rijndael128GCM_decrypt
	intrin 0x101
	ret
.endfunc

; int sgx_read_rand(buf, len)
.global sgx_read_rand
.func sgx_read_rand
	intrin 0x102
	ret
.endfunc

; int sgx_sha256_msg(src, len, hash32_out)
.global sgx_sha256_msg
.func sgx_sha256_msg
	intrin 0x103
	ret
.endfunc

; int sgx_create_report(target32, data64, report200_out)
.global sgx_create_report
.func sgx_create_report
	intrin 0x104
	ret
.endfunc

; int sgx_get_seal_key(policy, key16_out)
.global sgx_get_seal_key
.func sgx_get_seal_key
	intrin 0x105
	ret
.endfunc

; int sgx_ecdh_keypair(priv32_out, pub32_out)
.global sgx_ecdh_keypair
.func sgx_ecdh_keypair
	intrin 0x106
	ret
.endfunc

; int sgx_ecdh_shared(priv32, peer_pub32, key16_out)
.global sgx_ecdh_shared
.func sgx_ecdh_shared
	intrin 0x107
	ret
.endfunc
`

// TlibcSource is the trusted C library (tlibc): the string/memory routines
// every enclave (and bare program) links. In the real SDK these are the
// statically linked tlibc that fattens the paper's whitelist to 170
// functions; ours is leaner but plays the same role.
const TlibcSource = `
; trusted C library (tlibc)
.text

; void* memcpy(void* dst, void* src, uint64_t n)
; void* memcpy(void* dst, void* src, uint64_t n)
.global memcpy
.func memcpy
	; NB: a0=r1, a1=r2, a2=r3 — temps are limited to r0 and r7 here.
	push a0
	movi r7, 8
.Lmemcpy_words:
	bltu a2, r7, .Lmemcpy_bytes
	ld64 r0, [a1]
	st64 [a0], r0
	addi a0, a0, 8
	addi a1, a1, 8
	addi a2, a2, -8
	jmp .Lmemcpy_words
.Lmemcpy_bytes:
	movi r7, 0
	beq a2, r7, .Lmemcpy_done
	ld8u r0, [a1]
	st8 [a0], r0
	addi a0, a0, 1
	addi a1, a1, 1
	addi a2, a2, -1
	jmp .Lmemcpy_bytes
.Lmemcpy_done:
	pop rv
	ret
.endfunc

; void* memmove(void* dst, void* src, uint64_t n) — overlap-safe
.global memmove
.func memmove
	bltu a0, a1, .Lmemmove_fwd
	beq a0, a1, .Lmemmove_done
	; dst > src: copy backwards
	add a0, a0, a2
	add a1, a1, a2
	movi r7, 0
.Lmemmove_back:
	beq a2, r7, .Lmemmove_done
	addi a0, a0, -1
	addi a1, a1, -1
	addi a2, a2, -1
	ld8u r0, [a1]
	st8 [a0], r0
	jmp .Lmemmove_back
.Lmemmove_fwd:
	call memcpy
	ret
.Lmemmove_done:
	mov rv, a0
	ret
.endfunc

; void* memset(void* dst, int c, uint64_t n)
; void* memset(void* dst, int c, uint64_t n)
.global memset
.func memset
	mov rv, a0
	movi r7, 0
.Lmemset_loop:
	beq a2, r7, .Lmemset_done
	st8 [a0], a1
	addi a0, a0, 1
	addi a2, a2, -1
	jmp .Lmemset_loop
.Lmemset_done:
	ret
.endfunc

; int memcmp(void* a, void* b, uint64_t n)
; int memcmp(void* a, void* b, uint64_t n)
.global memcmp
.func memcmp
.Lmemcmp_loop:
	movi r7, 0
	beq a2, r7, .Lmemcmp_eq
	ld8u r0, [a0]
	ld8u r7, [a1]
	bne r0, r7, .Lmemcmp_ne
	addi a0, a0, 1
	addi a1, a1, 1
	addi a2, a2, -1
	jmp .Lmemcmp_loop
.Lmemcmp_eq:
	movi rv, 0
	ret
.Lmemcmp_ne:
	sltu r7, r0, r7
	movi rv, 1
	sub rv, rv, r7
	sub rv, rv, r7
	ret
.endfunc

; void* memchr(void* s, int c, uint64_t n)
.global memchr
.func memchr
	movi r7, 0
	zext a1, a1, 1
.Lmemchr_loop:
	beq a2, r7, .Lmemchr_miss
	ld8u r0, [a0]
	beq r0, a1, .Lmemchr_hit
	addi a0, a0, 1
	addi a2, a2, -1
	jmp .Lmemchr_loop
.Lmemchr_hit:
	mov rv, a0
	ret
.Lmemchr_miss:
	movi rv, 0
	ret
.endfunc

; uint64_t strlen(char* s)
; uint64_t strlen(char* s)
.global strlen
.func strlen
	movi rv, 0
	movi r7, 0
.Lstrlen_loop:
	ld8u r2, [a0]
	beq r2, r7, .Lstrlen_done
	addi a0, a0, 1
	addi rv, rv, 1
	jmp .Lstrlen_loop
.Lstrlen_done:
	ret
.endfunc

; int strcmp(char* a, char* b)
.global strcmp
.func strcmp
	movi r7, 0
.Lstrcmp_loop:
	ld8u r0, [a0]
	ld8u r4, [a1]
	bne r0, r4, .Lstrcmp_ne
	beq r0, r7, .Lstrcmp_eq
	addi a0, a0, 1
	addi a1, a1, 1
	jmp .Lstrcmp_loop
.Lstrcmp_eq:
	movi rv, 0
	ret
.Lstrcmp_ne:
	sltu r7, r0, r4
	movi rv, 1
	sub rv, rv, r7
	sub rv, rv, r7
	ret
.endfunc

; int strncmp(char* a, char* b, uint64_t n)
.global strncmp
.func strncmp
	movi r7, 0
.Lstrncmp_loop:
	beq a2, r7, .Lstrncmp_eq
	ld8u r0, [a0]
	ld8u r4, [a1]
	bne r0, r4, .Lstrncmp_ne
	beq r0, r7, .Lstrncmp_eq
	addi a0, a0, 1
	addi a1, a1, 1
	addi a2, a2, -1
	jmp .Lstrncmp_loop
.Lstrncmp_eq:
	movi rv, 0
	ret
.Lstrncmp_ne:
	sltu r7, r0, r4
	movi rv, 1
	sub rv, rv, r7
	sub rv, rv, r7
	ret
.endfunc

; char* strcpy(char* dst, char* src)
.global strcpy
.func strcpy
	; rv is r0, which the loop needs as scratch: return value is kept on
	; the stack instead.
	push a0
	movi r7, 0
.Lstrcpy_loop:
	ld8u r0, [a1]
	st8 [a0], r0
	beq r0, r7, .Lstrcpy_done
	addi a0, a0, 1
	addi a1, a1, 1
	jmp .Lstrcpy_loop
.Lstrcpy_done:
	pop rv
	ret
.endfunc

; char* strncpy(char* dst, char* src, uint64_t n) — pads with NULs like C
.global strncpy
.func strncpy
	push a0
	movi r7, 0
.Lstrncpy_copy:
	beq a2, r7, .Lstrncpy_done
	ld8u r0, [a1]
	st8 [a0], r0
	addi a0, a0, 1
	addi a2, a2, -1
	beq r0, r7, .Lstrncpy_pad
	addi a1, a1, 1
	jmp .Lstrncpy_copy
.Lstrncpy_pad:
	beq a2, r7, .Lstrncpy_done
	st8 [a0], r7
	addi a0, a0, 1
	addi a2, a2, -1
	jmp .Lstrncpy_pad
.Lstrncpy_done:
	pop rv
	ret
.endfunc
`
