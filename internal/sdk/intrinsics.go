package sdk

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"sgxelide/internal/evm"
	"sgxelide/internal/sgx"
)

// Intrinsic numbers for the trusted crypto/platform library (tcrypto).
const (
	IntrinAESGCMEncrypt = 0x100
	IntrinAESGCMDecrypt = 0x101
	IntrinReadRand      = 0x102
	IntrinSHA256        = 0x103
	IntrinCreateReport  = 0x104
	IntrinGetSealKey    = 0x105
	IntrinECDHKeypair   = 0x106
	IntrinECDHShared    = 0x107
)

// ReportBlobSize is the serialized size of an sgx.Report as seen by enclave
// C code (sgx_create_report's output buffer).
const ReportBlobSize = 200

// MarshalReport serializes a report into the enclave-visible layout.
func MarshalReport(r *sgx.Report) []byte {
	out := make([]byte, ReportBlobSize)
	copy(out[0:32], r.MrEnclave[:])
	copy(out[32:64], r.MrSigner[:])
	binary.LittleEndian.PutUint16(out[64:], r.ProdID)
	copy(out[72:136], r.Data[:])
	copy(out[136:168], r.TargetInfo[:])
	copy(out[168:200], r.MAC[:])
	return out
}

// UnmarshalReport parses the enclave-visible report layout.
func UnmarshalReport(b []byte) *sgx.Report {
	if len(b) < ReportBlobSize {
		return nil
	}
	r := &sgx.Report{}
	copy(r.MrEnclave[:], b[0:32])
	copy(r.MrSigner[:], b[32:64])
	r.ProdID = binary.LittleEndian.Uint16(b[64:])
	copy(r.Data[:], b[72:136])
	copy(r.TargetInfo[:], b[136:168])
	copy(r.MAC[:], b[168:200])
	return r
}

// GCMIVSize and GCMMACSize are the AES-GCM parameter sizes used across the
// enclave, the authentication server, and the secret files.
const (
	GCMKeySize = 16
	GCMIVSize  = 12
	GCMMACSize = 16
)

// AESGCMSeal encrypts plaintext, returning ciphertext and MAC separately
// (the SGX SDK's sgx_rijndael128GCM_encrypt convention).
func AESGCMSeal(key, iv, plaintext []byte) (ct, mac []byte, err error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, nil, err
	}
	sealed := gcm.Seal(nil, iv, plaintext, nil)
	n := len(sealed) - GCMMACSize
	return sealed[:n], sealed[n:], nil
}

// AESGCMOpen decrypts ciphertext with its MAC.
func AESGCMOpen(key, iv, ct, mac []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return gcm.Open(nil, iv, append(append([]byte{}, ct...), mac...), nil)
}

// installIntrinsics wires the tcrypto stubs to their implementations. The
// handlers execute "as" the enclave: all memory access goes through the
// enclave address space, so EPCM permissions still apply.
func installIntrinsics(e *Enclave) {
	vm := e.VM
	arg := func(i int) uint64 { return vm.Reg[evm.RegA0+i] }
	setRet := func(v uint64) { vm.Reg[evm.RegRet] = v }
	fail := func(msg string) *evm.Fault {
		return &evm.Fault{Kind: evm.FaultIntrinsic, Msg: msg}
	}

	vm.Intrinsics = map[uint16]evm.Intrinsic{
		IntrinAESGCMEncrypt: func(m *evm.VM) *evm.Fault {
			key, f := m.ReadBytes(arg(0), GCMKeySize)
			if f != nil {
				return f
			}
			n := int(arg(2))
			src, f := m.ReadBytes(arg(1), n)
			if f != nil {
				return f
			}
			iv, f := m.ReadBytes(arg(4), GCMIVSize)
			if f != nil {
				return f
			}
			ct, mac, err := AESGCMSeal(key, iv, src)
			if err != nil {
				return fail("aes-gcm: " + err.Error())
			}
			defer Wipe(key)
			defer Wipe(src)
			if f := m.WriteBytes(arg(3), ct); f != nil {
				return f
			}
			if f := m.WriteBytes(arg(5), mac); f != nil {
				return f
			}
			setRet(0)
			return nil
		},

		IntrinAESGCMDecrypt: func(m *evm.VM) *evm.Fault {
			key, f := m.ReadBytes(arg(0), GCMKeySize)
			if f != nil {
				return f
			}
			n := int(arg(2))
			ct, f := m.ReadBytes(arg(1), n)
			if f != nil {
				return f
			}
			iv, f := m.ReadBytes(arg(4), GCMIVSize)
			if f != nil {
				return f
			}
			mac, f := m.ReadBytes(arg(5), GCMMACSize)
			if f != nil {
				return f
			}
			pt, err := AESGCMOpen(key, iv, ct, mac)
			if err != nil {
				setRet(1) // SGX_ERROR_MAC_MISMATCH
				return nil
			}
			defer Wipe(pt)
			defer Wipe(key)
			if f := m.WriteBytes(arg(3), pt); f != nil {
				return f
			}
			setRet(0)
			return nil
		},

		IntrinReadRand: func(m *evm.VM) *evm.Fault {
			n := int(arg(1))
			buf := make([]byte, n)
			if _, err := rand.Read(buf); err != nil {
				return fail("rdrand: " + err.Error())
			}
			if f := m.WriteBytes(arg(0), buf); f != nil {
				return f
			}
			setRet(0)
			return nil
		},

		IntrinSHA256: func(m *evm.VM) *evm.Fault {
			n := int(arg(1))
			src, f := m.ReadBytes(arg(0), n)
			if f != nil {
				return f
			}
			sum := sha256.Sum256(src)
			if f := m.WriteBytes(arg(2), sum[:]); f != nil {
				return f
			}
			setRet(0)
			return nil
		},

		IntrinCreateReport: func(m *evm.VM) *evm.Fault {
			target, f := m.ReadBytes(arg(0), 32)
			if f != nil {
				return f
			}
			data, f := m.ReadBytes(arg(1), sgx.ReportDataSize)
			if f != nil {
				return f
			}
			var ti [32]byte
			copy(ti[:], target)
			var rd [sgx.ReportDataSize]byte
			copy(rd[:], data)
			rep, err := e.Host.Platform.EReport(e.Encl, ti, rd)
			if err != nil {
				return fail("ereport: " + err.Error())
			}
			if f := m.WriteBytes(arg(2), MarshalReport(rep)); f != nil {
				return f
			}
			setRet(0)
			return nil
		},

		IntrinGetSealKey: func(m *evm.VM) *evm.Fault {
			policy := sgx.KeyPolicy(arg(0))
			key, err := e.Host.Platform.EGetKeySeal(e.Encl, policy)
			if err != nil {
				return fail("egetkey: " + err.Error())
			}
			if f := m.WriteBytes(arg(1), key); f != nil {
				return f
			}
			setRet(0)
			return nil
		},

		IntrinECDHKeypair: func(m *evm.VM) *evm.Fault {
			priv, err := ecdh.X25519().GenerateKey(rand.Reader)
			if err != nil {
				return fail("ecdh: " + err.Error())
			}
			if f := m.WriteBytes(arg(0), priv.Bytes()); f != nil {
				return f
			}
			if f := m.WriteBytes(arg(1), priv.PublicKey().Bytes()); f != nil {
				return f
			}
			setRet(0)
			return nil
		},

		IntrinECDHShared: func(m *evm.VM) *evm.Fault {
			privB, f := m.ReadBytes(arg(0), 32)
			if f != nil {
				return f
			}
			peerB, f := m.ReadBytes(arg(1), 32)
			if f != nil {
				return f
			}
			key, err := DeriveChannelKey(privB, peerB)
			if err != nil {
				setRet(1)
				return nil
			}
			defer Wipe(key)
			defer Wipe(privB)
			if f := m.WriteBytes(arg(2), key); f != nil {
				return f
			}
			setRet(0)
			return nil
		},
	}

	// The AES-GCM intrinsics are the only observable boundary of the
	// enclave-internal decrypt+MAC-verify phase, so they get spans of their
	// own ("decrypt"/"encrypt" with the payload size) parented to whatever
	// dispatch is in flight. With no tracer the current span is nil and the
	// wrapper is a couple of nil checks.
	traced := func(name string, inner evm.Intrinsic) evm.Intrinsic {
		return func(m *evm.VM) *evm.Fault {
			sp := e.Host.cur.Child(name)
			sp.SetInt("bytes", int64(arg(2)))
			f := inner(m)
			if f != nil {
				sp.SetError(fmt.Errorf("intrinsic fault: %s", f.Msg))
			} else if ret := m.Reg[evm.RegRet]; ret != 0 {
				sp.SetInt("ret", int64(ret)) // e.g. MAC mismatch
			}
			sp.End()
			return f
		}
	}
	vm.Intrinsics[IntrinAESGCMEncrypt] = traced("encrypt", vm.Intrinsics[IntrinAESGCMEncrypt])
	vm.Intrinsics[IntrinAESGCMDecrypt] = traced("decrypt", vm.Intrinsics[IntrinAESGCMDecrypt])
}

// DeriveChannelKey computes the AES-128 channel key from an X25519 private
// key and a peer public key: SHA-256(shared)[:16]. The authentication
// server uses the same derivation.
func DeriveChannelKey(priv, peerPub []byte) ([]byte, error) {
	sk, err := ecdh.X25519().NewPrivateKey(priv)
	if err != nil {
		return nil, err
	}
	pk, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return nil, err
	}
	shared, err := sk.ECDH(pk)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(shared)
	return sum[:GCMKeySize], nil
}

// GenerateECDHKeypair returns a fresh X25519 keypair (server side helper).
func GenerateECDHKeypair() (priv, pub []byte, err error) {
	key, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	return key.Bytes(), key.PublicKey().Bytes(), nil
}
