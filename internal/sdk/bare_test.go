package sdk

import (
	"bytes"
	"strings"
	"testing"

	"sgxelide/internal/elf"
	"sgxelide/internal/link"
)

const bareHello = `
int putchar(int c);
void prints(char *s) { while (*s) putchar(*s++); }
int main(void) {
    prints("bare!");
    int sum = 0;
    for (int i = 1; i <= 10; i++) sum += i;
    return sum;
}
`

func TestBuildAndRunBare(t *testing.T) {
	im, err := BuildBare(link.Config{}, C("hello.c", bareHello))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	exit, err := RunBare(im, &out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exit != 55 {
		t.Errorf("exit = %d, want 55", exit)
	}
	if out.String() != "bare!" {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunBareELFRoundTrip(t *testing.T) {
	im, err := BuildBare(link.Config{}, C("hello.c", bareHello))
	if err != nil {
		t.Fatal(err)
	}
	elfBytes := elf.Write(im)
	var out bytes.Buffer
	exit, err := RunBareELF(elfBytes, &out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exit != 55 || out.String() != "bare!" {
		t.Errorf("exit=%d out=%q", exit, out.String())
	}
}

func TestRunBareELFRejectsGarbage(t *testing.T) {
	if _, err := RunBareELF([]byte("nope"), nil, 0); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBuildBareMixedSources(t *testing.T) {
	asmPart := `
.text
.global magic
.func magic
	movi rv, 123
	ret
.endfunc
`
	cPart := `
int magic(void);
int main(void) { return magic() + 1; }
`
	im, err := BuildBare(link.Config{}, Asm("magic.s", asmPart), C("main.c", cPart))
	if err != nil {
		t.Fatal(err)
	}
	exit, err := RunBare(im, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exit != 124 {
		t.Errorf("exit = %d, want 124", exit)
	}
}

func TestBuildBareCompileErrorSurfaces(t *testing.T) {
	_, err := BuildBare(link.Config{}, C("bad.c", "int main(void) { return x; }"))
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("err = %v", err)
	}
}

func TestBareStepBudget(t *testing.T) {
	im, err := BuildBare(link.Config{}, C("loop.c", "int main(void) { for (;;) {} }"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBare(im, nil, 10_000); err == nil {
		t.Error("infinite loop not bounded")
	}
}

func TestDisassembleRejectsGarbage(t *testing.T) {
	if _, err := Disassemble([]byte("not an elf")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMeasureELFDeterministic(t *testing.T) {
	h, encl := buildTestEnclave(t)
	_ = encl
	res, err := BuildEnclaveFromEDL(BuildConfig{}, testEDL, C("test_enclave.c", testCSource))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := MeasureELF(h, res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MeasureELF(h, res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("MeasureELF not deterministic")
	}
	// Measuring must not leak EPC pages.
	free := h.Platform.FreePages()
	if _, err := MeasureELF(h, res.ELF); err != nil {
		t.Fatal(err)
	}
	if h.Platform.FreePages() != free {
		t.Errorf("MeasureELF leaked EPC pages: %d -> %d", free, h.Platform.FreePages())
	}
}
