package sdk

import (
	"testing"

	"sgxelide/internal/link"
)

// The tlibc routines are exercised from C against known answers; any
// register-aliasing mistake in the hand-written assembly shows up here.
const tlibcTestC = `
void* memcpy(void* d, void* s, uint64_t n);
void* memmove(void* d, void* s, uint64_t n);
void* memset(void* d, int c, uint64_t n);
int memcmp(void* a, void* b, uint64_t n);
void* memchr(void* s, int c, uint64_t n);
uint64_t strlen(char* s);
int strcmp(char* a, char* b);
int strncmp(char* a, char* b, uint64_t n);
char* strcpy(char* d, char* s);
char* strncpy(char* d, char* s, uint64_t n);

char buf[64];
char buf2[64];

int main(void) {
    /* memset + memcmp */
    memset(buf, 0xAB, 16);
    for (int i = 0; i < 16; i++)
        if ((uint8_t)buf[i] != 0xAB) return 1;
    memset(buf2, 0xAB, 16);
    if (memcmp(buf, buf2, 16) != 0) return 2;
    buf2[7] = 0;
    if (memcmp(buf, buf2, 16) <= 0) return 3;   /* 0xAB > 0 */
    if (memcmp(buf2, buf, 16) >= 0) return 4;

    /* memcpy */
    for (int i = 0; i < 32; i++) buf[i] = (char)i;
    memcpy(buf2, buf, 32);
    if (memcmp(buf, buf2, 32) != 0) return 5;

    /* memmove with overlap, both directions */
    for (int i = 0; i < 10; i++) buf[i] = (char)('a' + i);
    memmove(buf + 2, buf, 8);              /* dst > src */
    if (strncmp(buf + 2, "abcdefgh", 8) != 0) return 6;
    for (int i = 0; i < 10; i++) buf[i] = (char)('a' + i);
    memmove(buf, buf + 2, 8);              /* dst < src */
    if (strncmp(buf, "cdefghij", 8) != 0) return 7;

    /* memchr */
    strcpy(buf, "find the needle");
    char* p = (char*)memchr(buf, 'n', 15);
    if (p != buf + 2) return 8;
    if (memchr(buf, 'z', 15)) return 9;

    /* strlen / strcmp / strncmp */
    if (strlen("") != 0) return 10;
    if (strlen("hello") != 5) return 11;
    if (strcmp("abc", "abc") != 0) return 12;
    if (strcmp("abc", "abd") >= 0) return 13;
    if (strcmp("abd", "abc") <= 0) return 14;
    if (strcmp("ab", "abc") >= 0) return 15;
    if (strncmp("abcX", "abcY", 3) != 0) return 16;
    if (strncmp("abcX", "abcY", 4) >= 0) return 17;

    /* strcpy / strncpy */
    if (strcpy(buf2, "copied") != buf2) return 18;
    if (strcmp(buf2, "copied") != 0) return 19;
    memset(buf2, 0x7F, 16);
    strncpy(buf2, "hi", 8);                /* pads with NULs */
    if (buf2[0] != 'h' || buf2[1] != 'i') return 20;
    for (int i = 2; i < 8; i++)
        if (buf2[i] != 0) return 21;
    if (buf2[8] != 0x7F) return 22;        /* untouched past n */

    return 0;
}
`

func TestTlibcFromC(t *testing.T) {
	im, err := BuildBare(link.Config{}, C("tlibc_test.c", tlibcTestC))
	if err != nil {
		t.Fatal(err)
	}
	exit, err := RunBare(im, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exit != 0 {
		t.Fatalf("tlibc self-test failed with code %d", exit)
	}
}
