package sdk

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"strings"
	"testing"

	"sgxelide/internal/sgx"
)

const testEDL = `
enclave {
    trusted {
        public uint64_t ecall_add(uint64_t a, uint64_t b);
        public void ecall_xor_buf([in, out, size=len] uint8_t* buf, uint64_t len, uint64_t key);
        public uint64_t ecall_sum([in, size=len] uint8_t* data, uint64_t len);
        public uint64_t ecall_fill([out, size=cap] uint8_t* dst, uint64_t cap);
        public uint64_t ecall_echo_via_ocall(uint64_t x);
        public uint64_t ecall_gcm_roundtrip(void);
        public uint64_t ecall_strlen_of([in, string] char* s);
        public uint64_t ecall_log_something(void);
        public uint64_t ecall_store_secret(uint64_t v);
        public uint64_t ecall_get_secret(void);
    };
    untrusted {
        uint64_t ocall_double(uint64_t x);
        void ocall_log([in, size=len] uint8_t* msg, uint64_t len);
    };
};
`

const testCSource = `
uint64_t ocall_double(uint64_t x);
void ocall_log(uint8_t* msg, uint64_t len);
uint64_t strlen(char* s);
int sgx_read_rand(uint8_t* buf, uint64_t len);
int sgx_rijndael128GCM_encrypt(uint8_t* key, uint8_t* src, uint64_t len, uint8_t* dst, uint8_t* iv, uint8_t* mac);
int sgx_rijndael128GCM_decrypt(uint8_t* key, uint8_t* src, uint64_t len, uint8_t* dst, uint8_t* iv, uint8_t* mac);

uint64_t g_secret;

uint64_t ecall_add(uint64_t a, uint64_t b) { return a + b; }

void ecall_xor_buf(uint8_t* buf, uint64_t len, uint64_t key) {
    for (uint64_t i = 0; i < len; i++)
        buf[i] ^= (uint8_t)key;
}

uint64_t ecall_sum(uint8_t* data, uint64_t len) {
    uint64_t s = 0;
    for (uint64_t i = 0; i < len; i++)
        s += data[i];
    return s;
}

uint64_t ecall_fill(uint8_t* dst, uint64_t cap) {
    for (uint64_t i = 0; i < cap; i++)
        dst[i] = (uint8_t)(i * 3);
    return cap;
}

uint64_t ecall_echo_via_ocall(uint64_t x) {
    return ocall_double(x) + 1;
}

uint64_t ecall_gcm_roundtrip(void) {
    uint8_t key[16];
    uint8_t iv[12];
    uint8_t mac[16];
    uint8_t plain[32];
    uint8_t ct[32];
    uint8_t back[32];
    sgx_read_rand(key, 16);
    sgx_read_rand(iv, 12);
    for (int i = 0; i < 32; i++) plain[i] = (uint8_t)(i * 7);
    if (sgx_rijndael128GCM_encrypt(key, plain, 32, ct, iv, mac)) return 1;
    if (sgx_rijndael128GCM_decrypt(key, ct, 32, back, iv, mac)) return 2;
    for (int i = 0; i < 32; i++)
        if (back[i] != plain[i]) return 3;
    /* Tampered ciphertext must fail the MAC check. */
    ct[0] ^= 1;
    if (sgx_rijndael128GCM_decrypt(key, ct, 32, back, iv, mac) == 0) return 4;
    return 0;
}

uint64_t ecall_strlen_of(char* s) { return strlen(s); }

uint64_t ecall_log_something(void) {
    uint8_t msg[5];
    msg[0] = 'h'; msg[1] = 'e'; msg[2] = 'l'; msg[3] = 'l'; msg[4] = 'o';
    ocall_log(msg, 5);
    return 0;
}

uint64_t ecall_store_secret(uint64_t v) { g_secret = v; return 0; }
uint64_t ecall_get_secret(void) { return g_secret; }
`

// buildTestEnclave builds, signs, and loads the test enclave.
func buildTestEnclave(t *testing.T) (*Host, *Enclave) {
	t.Helper()
	ca, err := sgx.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	platform, err := sgx.NewPlatform(sgx.Config{}, ca)
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(platform)

	res, err := BuildEnclaveFromEDL(BuildConfig{}, testEDL, C("test_enclave.c", testCSource))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := MeasureELF(host, res.ELF)
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	ss, err := sgx.SignEnclave(key, mr, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	encl, err := host.CreateEnclave(res.ELF, ss, res.EDL)
	if err != nil {
		t.Fatalf("create enclave: %v", err)
	}
	return host, encl
}

func TestECallScalar(t *testing.T) {
	_, e := buildTestEnclave(t)
	got, err := e.ECall("ecall_add", 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("ecall_add = %d", got)
	}
}

func TestECallInOutBuffer(t *testing.T) {
	h, e := buildTestEnclave(t)
	data := []byte("attack at dawn!!")
	buf := h.AllocBytes(data)
	if _, err := e.ECall("ecall_xor_buf", buf, uint64(len(data)), 0x5A); err != nil {
		t.Fatal(err)
	}
	got := h.ReadBytes(buf, len(data))
	for i := range data {
		if got[i] != data[i]^0x5A {
			t.Fatalf("byte %d: %#x want %#x", i, got[i], data[i]^0x5A)
		}
	}
	// XOR again restores.
	if _, err := e.ECall("ecall_xor_buf", buf, uint64(len(data)), 0x5A); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(h.ReadBytes(buf, len(data)), data) {
		t.Error("double xor did not restore")
	}
}

func TestECallInBuffer(t *testing.T) {
	h, e := buildTestEnclave(t)
	data := make([]byte, 300)
	var want uint64
	for i := range data {
		data[i] = byte(i)
		want += uint64(byte(i))
	}
	buf := h.AllocBytes(data)
	got, err := e.ECall("ecall_sum", buf, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestECallOutBuffer(t *testing.T) {
	h, e := buildTestEnclave(t)
	buf := h.Alloc(64)
	got, err := e.ECall("ecall_fill", buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != 64 {
		t.Errorf("ret = %d", got)
	}
	out := h.ReadBytes(buf, 64)
	for i := range out {
		if out[i] != byte(i*3) {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestOCallRoundTrip(t *testing.T) {
	h, e := buildTestEnclave(t)
	h.RegisterOcall("ocall_double", func(c *OcallContext) (uint64, error) {
		return c.Arg(0) * 2, nil
	})
	got, err := e.ECall("ecall_echo_via_ocall", 21)
	if err != nil {
		t.Fatal(err)
	}
	if got != 43 {
		t.Errorf("got %d, want 43", got)
	}
}

func TestOCallBuffer(t *testing.T) {
	h, e := buildTestEnclave(t)
	var logged []byte
	h.RegisterOcall("ocall_log", func(c *OcallContext) (uint64, error) {
		logged = c.ArgBytes(0, int(c.Arg(1)))
		return 0, nil
	})
	if _, err := e.ECall("ecall_log_something"); err != nil {
		t.Fatal(err)
	}
	if string(logged) != "hello" {
		t.Errorf("logged %q", logged)
	}
}

func TestUnregisteredOCallErrors(t *testing.T) {
	_, e := buildTestEnclave(t)
	if _, err := e.ECall("ecall_echo_via_ocall", 1); err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Errorf("err = %v", err)
	}
}

func TestGCMInsideEnclave(t *testing.T) {
	_, e := buildTestEnclave(t)
	got, err := e.ECall("ecall_gcm_roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("gcm roundtrip failed with code %d", got)
	}
}

func TestStringParam(t *testing.T) {
	h, e := buildTestEnclave(t)
	s := h.AllocBytes([]byte("hello, enclave\x00"))
	got, err := e.ECall("ecall_strlen_of", s)
	if err != nil {
		t.Fatal(err)
	}
	if got != 14 {
		t.Errorf("strlen = %d", got)
	}
}

func TestEnclaveStatePersistsAcrossECalls(t *testing.T) {
	_, e := buildTestEnclave(t)
	if _, err := e.ECall("ecall_store_secret", 0xC0FFEE); err != nil {
		t.Fatal(err)
	}
	got, err := e.ECall("ecall_get_secret")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xC0FFEE {
		t.Errorf("secret = %#x", got)
	}
}

func TestHostCannotReadEnclaveSecret(t *testing.T) {
	h, e := buildTestEnclave(t)
	if _, err := e.ECall("ecall_store_secret", 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	// The host scans the enclave range through the platform: abort-page
	// semantics must hide everything.
	got := h.Platform.HostRead(e.Encl, e.Encl.Base, 4096)
	for _, b := range got {
		if b != 0xFF {
			t.Fatal("host read enclave memory")
		}
	}
}

func TestUnknownECallRejected(t *testing.T) {
	_, e := buildTestEnclave(t)
	if _, err := e.ECall("ecall_nope"); err == nil {
		t.Error("unknown ecall accepted")
	}
	if _, err := e.ECall("ecall_add", 1); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestBadECallIndexAborts(t *testing.T) {
	_, e := buildTestEnclave(t)
	// Drive the entry point directly with an out-of-range index.
	e.VM.PC = e.Encl.Entry
	e.VM.Reg[1] = 999
	e.VM.Reg[2] = 0
	e.VM.Reg[3] = e.Host.arena
	stop := e.VM.Run()
	if stop.Code != ExitAbort {
		t.Errorf("stop = %v, want abort", stop)
	}
}

func TestCreateEnclaveRejectsWrongSignature(t *testing.T) {
	ca, _ := sgx.NewCA()
	platform, _ := sgx.NewPlatform(sgx.Config{}, ca)
	host := NewHost(platform)
	res, err := BuildEnclaveFromEDL(BuildConfig{}, testEDL, C("test_enclave.c", testCSource))
	if err != nil {
		t.Fatal(err)
	}
	key, _ := rsa.GenerateKey(rand.Reader, 1024)
	var wrong [32]byte
	ss, _ := sgx.SignEnclave(key, wrong, 1, 1)
	if _, err := host.CreateEnclave(res.ELF, ss, res.EDL); err == nil {
		t.Fatal("enclave with wrong measurement initialized")
	}
}

func TestDisassembleShowsUserCode(t *testing.T) {
	res, err := BuildEnclaveFromEDL(BuildConfig{}, testEDL, C("test_enclave.c", testCSource))
	if err != nil {
		t.Fatal(err)
	}
	dis, err := Disassemble(res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	// The attack the paper defends against: user algorithms are readable in
	// the unprotected enclave image.
	for _, want := range []string{"<ecall_gcm_roundtrip>", "<ecall_add>", "<enclave_entry>", "<memcpy>"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %s", want)
		}
	}
}
