// Package elf implements an ELF64 writer and reader for EVM enclave shared
// objects, built from scratch on encoding/binary.
//
// SgxElide's sanitizer works at the ELF level exactly as the paper
// describes: it parses the section headers, enumerates the function symbols,
// zeroes the bodies of functions not on the whitelist *in the file image*,
// and ORs PF_W into the text segment's program header p_flags so the
// restored code can be written at runtime (SGXv1 forbids changing page
// permissions after EADD). This package therefore exposes both a structured
// view and in-place byte patching of the underlying file.
package elf

import (
	"encoding/binary"
	"fmt"

	"sgxelide/internal/link"
	"sgxelide/internal/obj"
)

// ELF constants (the standard values).
const (
	ETDyn = 3 // shared object

	// EMachineEVM identifies our architecture in e_machine. The value is
	// from the unallocated vendor space.
	EMachineEVM = 0xEB01

	PTLoad = 1

	PFX = 1
	PFW = 2
	PFR = 4

	SHTNull     = 0
	SHTProgbits = 1
	SHTSymtab   = 2
	SHTStrtab   = 3
	SHTNobits   = 8

	SHFWrite     = 1
	SHFAlloc     = 2
	SHFExecinstr = 4

	STBLocal  = 0
	STBGlobal = 1

	STTNotype = 0
	STTObject = 1
	STTFunc   = 2
)

const (
	ehdrSize = 64
	phdrSize = 56
	shdrSize = 64
	symSize  = 24
	pageSize = 4096
)

var magic = [4]byte{0x7f, 'E', 'L', 'F'}

// Phdr is one program header.
type Phdr struct {
	Type   uint32
	Flags  uint32
	Off    uint64
	Vaddr  uint64
	Filesz uint64
	Memsz  uint64
	Align  uint64

	fileOff uint64 // offset of this phdr within the file, for patching
}

// Shdr is one section header.
type Shdr struct {
	Name      string
	Type      uint32
	Flags     uint64
	Addr      uint64
	Off       uint64
	Size      uint64
	Link      uint32
	Info      uint32
	Addralign uint64
	Entsize   uint64
}

// Sym is one symbol table entry.
type Sym struct {
	Name       string
	Bind       byte
	Type       byte
	Shndx      uint16
	Value      uint64
	Size       uint64
	nameOffset uint32
}

// File is a parsed ELF file backed by its raw bytes. Mutating methods patch
// the raw bytes in place.
type File struct {
	Raw      []byte
	Entry    uint64
	Machine  uint16
	Phdrs    []Phdr
	Sections []Shdr
	Symbols  []Sym
}

// --- writing ---

// Write serializes a linked image as an ELF64 shared object.
func Write(im *link.Image) []byte {
	type segPlan struct {
		seg  *link.Segment
		off  uint64
		shdr int
	}

	// Plan layout: ehdr, phdrs, then each segment's file data placed at an
	// offset congruent with its vaddr modulo the page size, then symtab,
	// strtab, shstrtab, and the section header table.
	nseg := len(im.Segments)
	pos := uint64(ehdrSize + nseg*phdrSize)
	plans := make([]segPlan, 0, nseg)
	for _, seg := range im.Segments {
		filesz := uint64(len(seg.Data))
		if filesz > 0 {
			if rem := (seg.Addr - pos) % pageSize; rem != 0 {
				pos += rem
			}
		}
		plans = append(plans, segPlan{seg: seg, off: pos})
		pos += filesz
	}

	// String tables.
	strtab := newStrtab()
	type symPlan struct {
		sym  link.Symbol
		name uint32
	}
	// Sort: locals first (ELF requires sh_info = index of first global).
	var locals, globals []link.Symbol
	for _, s := range im.Symbols {
		if s.Global {
			globals = append(globals, s)
		} else {
			locals = append(locals, s)
		}
	}
	ordered := append(append([]link.Symbol{}, locals...), globals...)
	firstGlobal := 1 + len(locals)

	shstrtab := newStrtab()
	sectionNames := make([]string, 0, nseg+3)
	for _, seg := range im.Segments {
		sectionNames = append(sectionNames, seg.Name)
	}
	sectionNames = append(sectionNames, ".symtab", ".strtab", ".shstrtab")
	for _, n := range sectionNames {
		shstrtab.add(n)
	}

	symNames := make([]uint32, len(ordered))
	for i, s := range ordered {
		symNames[i] = strtab.add(s.Name)
	}

	symtabOff := pos
	symtabSize := uint64((1 + len(ordered)) * symSize)
	pos += symtabSize
	strtabOff := pos
	strtabBytes := strtab.bytes()
	pos += uint64(len(strtabBytes))
	shstrtabOff := pos
	shstrtabBytes := shstrtab.bytes()
	pos += uint64(len(shstrtabBytes))
	shoff := (pos + 7) &^ 7

	nsec := 1 + nseg + 3 // null + segments + symtab/strtab/shstrtab
	total := shoff + uint64(nsec*shdrSize)
	out := make([]byte, total)

	// ELF header.
	copy(out, magic[:])
	out[4] = 2 // ELFCLASS64
	out[5] = 1 // little endian
	out[6] = 1 // EV_CURRENT
	le16 := binary.LittleEndian.PutUint16
	le32 := binary.LittleEndian.PutUint32
	le64 := binary.LittleEndian.PutUint64
	le16(out[16:], ETDyn)
	le16(out[18:], EMachineEVM)
	le32(out[20:], 1)
	le64(out[24:], im.Entry)
	le64(out[32:], ehdrSize)       // phoff
	le64(out[40:], shoff)          // shoff
	le32(out[48:], 0)              // flags
	le16(out[52:], ehdrSize)       // ehsize
	le16(out[54:], phdrSize)       // phentsize
	le16(out[56:], uint16(nseg))   // phnum
	le16(out[58:], shdrSize)       // shentsize
	le16(out[60:], uint16(nsec))   // shnum
	le16(out[62:], uint16(nsec-1)) // shstrndx (last)

	// Program headers + segment data.
	for i, pl := range plans {
		base := ehdrSize + i*phdrSize
		var flags uint32
		if pl.seg.Perm&link.PermR != 0 {
			flags |= PFR
		}
		if pl.seg.Perm&link.PermW != 0 {
			flags |= PFW
		}
		if pl.seg.Perm&link.PermX != 0 {
			flags |= PFX
		}
		le32(out[base:], PTLoad)
		le32(out[base+4:], flags)
		le64(out[base+8:], pl.off)
		le64(out[base+16:], pl.seg.Addr) // vaddr
		le64(out[base+24:], pl.seg.Addr) // paddr
		le64(out[base+32:], uint64(len(pl.seg.Data)))
		le64(out[base+40:], pl.seg.Size)
		le64(out[base+48:], pageSize)
		copy(out[pl.off:], pl.seg.Data)
	}

	// Symbol table (entry 0 is the null symbol).
	for i, s := range ordered {
		base := symtabOff + uint64((1+i)*symSize)
		le32(out[base:], symNames[i])
		bind := byte(STBLocal)
		if s.Global {
			bind = STBGlobal
		}
		var typ byte
		switch s.Kind {
		case obj.SymFunc:
			typ = STTFunc
		case obj.SymObject:
			typ = STTObject
		default:
			typ = STTNotype
		}
		out[base+4] = bind<<4 | typ
		// st_shndx: section containing the symbol.
		shndx := uint16(0)
		for si, pl := range plans {
			if s.Addr >= pl.seg.Addr && s.Addr < pl.seg.Addr+pl.seg.Size {
				shndx = uint16(1 + si)
				break
			}
		}
		le16(out[base+6:], shndx)
		le64(out[base+8:], s.Addr)
		le64(out[base+16:], s.Size)
	}
	copy(out[strtabOff:], strtabBytes)
	copy(out[shstrtabOff:], shstrtabBytes)

	// Section headers. Index 0 is the null section.
	writeShdr := func(idx int, name string, typ uint32, flags uint64, addr, off, size uint64, lnk, info uint32, align, entsize uint64) {
		base := shoff + uint64(idx*shdrSize)
		le32(out[base:], shstrtab.add(name)) // already interned
		le32(out[base+4:], typ)
		le64(out[base+8:], flags)
		le64(out[base+16:], addr)
		le64(out[base+24:], off)
		le64(out[base+32:], size)
		le32(out[base+40:], lnk)
		le32(out[base+44:], info)
		le64(out[base+48:], align)
		le64(out[base+56:], entsize)
	}
	for i, pl := range plans {
		typ := uint32(SHTProgbits)
		size := uint64(len(pl.seg.Data))
		if len(pl.seg.Data) == 0 {
			typ = SHTNobits
			size = pl.seg.Size
		}
		var flags uint64 = SHFAlloc
		if pl.seg.Perm&link.PermW != 0 {
			flags |= SHFWrite
		}
		if pl.seg.Perm&link.PermX != 0 {
			flags |= SHFExecinstr
		}
		writeShdr(1+i, pl.seg.Name, typ, flags, pl.seg.Addr, pl.off, size, 0, 0, pageSize, 0)
	}
	strtabIdx := uint32(1 + nseg + 1)
	writeShdr(1+nseg, ".symtab", SHTSymtab, 0, 0, symtabOff, symtabSize, strtabIdx, uint32(firstGlobal), 8, symSize)
	writeShdr(1+nseg+1, ".strtab", SHTStrtab, 0, 0, strtabOff, uint64(len(strtabBytes)), 0, 0, 1, 0)
	writeShdr(1+nseg+2, ".shstrtab", SHTStrtab, 0, 0, shstrtabOff, uint64(len(shstrtabBytes)), 0, 0, 1, 0)

	return out
}

// strtab is a string table builder with interning.
type strtab struct {
	data []byte
	idx  map[string]uint32
}

func newStrtab() *strtab {
	return &strtab{data: []byte{0}, idx: map[string]uint32{"": 0}}
}

func (s *strtab) add(str string) uint32 {
	if off, ok := s.idx[str]; ok {
		return off
	}
	off := uint32(len(s.data))
	s.data = append(s.data, str...)
	s.data = append(s.data, 0)
	s.idx[str] = off
	return off
}

func (s *strtab) bytes() []byte { return s.data }

// --- reading ---

// Read parses an ELF file. The returned File shares raw (patches through
// the File mutate raw).
func Read(raw []byte) (*File, error) {
	if len(raw) < ehdrSize {
		return nil, fmt.Errorf("elf: file too short")
	}
	if [4]byte{raw[0], raw[1], raw[2], raw[3]} != magic {
		return nil, fmt.Errorf("elf: bad magic")
	}
	if raw[4] != 2 || raw[5] != 1 {
		return nil, fmt.Errorf("elf: not a little-endian ELF64 file")
	}
	u16 := binary.LittleEndian.Uint16
	u32 := binary.LittleEndian.Uint32
	u64 := binary.LittleEndian.Uint64

	f := &File{Raw: raw}
	f.Machine = u16(raw[18:])
	f.Entry = u64(raw[24:])
	phoff := u64(raw[32:])
	shoff := u64(raw[40:])
	phnum := int(u16(raw[56:]))
	shnum := int(u16(raw[60:]))
	shstrndx := int(u16(raw[62:]))

	if phoff+uint64(phnum*phdrSize) > uint64(len(raw)) {
		return nil, fmt.Errorf("elf: program headers out of range")
	}
	for i := 0; i < phnum; i++ {
		base := phoff + uint64(i*phdrSize)
		ph := Phdr{
			Type:    u32(raw[base:]),
			Flags:   u32(raw[base+4:]),
			Off:     u64(raw[base+8:]),
			Vaddr:   u64(raw[base+16:]),
			Filesz:  u64(raw[base+32:]),
			Memsz:   u64(raw[base+40:]),
			Align:   u64(raw[base+48:]),
			fileOff: base,
		}
		if ph.Off+ph.Filesz > uint64(len(raw)) {
			return nil, fmt.Errorf("elf: segment %d data out of range", i)
		}
		f.Phdrs = append(f.Phdrs, ph)
	}

	if shoff+uint64(shnum*shdrSize) > uint64(len(raw)) {
		return nil, fmt.Errorf("elf: section headers out of range")
	}
	rawShdrs := make([][10]uint64, shnum)
	for i := 0; i < shnum; i++ {
		base := shoff + uint64(i*shdrSize)
		rawShdrs[i] = [10]uint64{
			uint64(u32(raw[base:])),
			uint64(u32(raw[base+4:])),
			u64(raw[base+8:]),
			u64(raw[base+16:]),
			u64(raw[base+24:]),
			u64(raw[base+32:]),
			uint64(u32(raw[base+40:])),
			uint64(u32(raw[base+44:])),
			u64(raw[base+48:]),
			u64(raw[base+56:]),
		}
	}
	strAt := func(tab []byte, off uint32) string {
		if int(off) >= len(tab) {
			return ""
		}
		end := int(off)
		for end < len(tab) && tab[end] != 0 {
			end++
		}
		return string(tab[int(off):end])
	}
	var shstr []byte
	if shstrndx < shnum {
		sh := rawShdrs[shstrndx]
		if sh[4]+sh[5] <= uint64(len(raw)) {
			shstr = raw[sh[4] : sh[4]+sh[5]]
		}
	}
	for i := 0; i < shnum; i++ {
		sh := rawShdrs[i]
		f.Sections = append(f.Sections, Shdr{
			Name:      strAt(shstr, uint32(sh[0])),
			Type:      uint32(sh[1]),
			Flags:     sh[2],
			Addr:      sh[3],
			Off:       sh[4],
			Size:      sh[5],
			Link:      uint32(sh[6]),
			Info:      uint32(sh[7]),
			Addralign: sh[8],
			Entsize:   sh[9],
		})
	}

	// Symbols.
	for i, sec := range f.Sections {
		if sec.Type != SHTSymtab {
			continue
		}
		if sec.Off+sec.Size > uint64(len(raw)) {
			return nil, fmt.Errorf("elf: symtab out of range")
		}
		var strs []byte
		if int(sec.Link) < shnum {
			ls := f.Sections[sec.Link]
			if ls.Off+ls.Size <= uint64(len(raw)) {
				strs = raw[ls.Off : ls.Off+ls.Size]
			}
		}
		n := int(sec.Size / symSize)
		for j := 1; j < n; j++ { // skip null symbol
			base := sec.Off + uint64(j*symSize)
			nameOff := u32(raw[base:])
			info := raw[base+4]
			f.Symbols = append(f.Symbols, Sym{
				Name:       strAt(strs, nameOff),
				Bind:       info >> 4,
				Type:       info & 0xf,
				Shndx:      u16(raw[base+6:]),
				Value:      u64(raw[base+8:]),
				Size:       u64(raw[base+16:]),
				nameOffset: nameOff,
			})
		}
		_ = i
	}
	return f, nil
}

// Section returns the section named name, or nil.
func (f *File) Section(name string) *Shdr {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i]
		}
	}
	return nil
}

// SectionData returns the file bytes of a progbits section (aliasing Raw).
func (f *File) SectionData(s *Shdr) []byte {
	if s.Type == SHTNobits {
		return nil
	}
	return f.Raw[s.Off : s.Off+s.Size]
}

// FuncSymbols returns all function symbols.
func (f *File) FuncSymbols() []Sym {
	var out []Sym
	for _, s := range f.Symbols {
		if s.Type == STTFunc {
			out = append(out, s)
		}
	}
	return out
}

// FindSymbol returns the symbol named name.
func (f *File) FindSymbol(name string) (Sym, bool) {
	for _, s := range f.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Sym{}, false
}

// VaddrToFileOff translates a virtual address range to a file offset within
// a PT_LOAD segment's file-backed bytes.
func (f *File) VaddrToFileOff(vaddr, size uint64) (uint64, error) {
	for _, ph := range f.Phdrs {
		if ph.Type != PTLoad {
			continue
		}
		if vaddr >= ph.Vaddr && vaddr+size <= ph.Vaddr+ph.Filesz {
			return ph.Off + (vaddr - ph.Vaddr), nil
		}
	}
	return 0, fmt.Errorf("elf: vaddr %#x+%d not in any loadable segment", vaddr, size)
}

// ZeroVaddrRange zeroes size bytes at vaddr in the file image (sanitizing a
// function body).
func (f *File) ZeroVaddrRange(vaddr, size uint64) error {
	off, err := f.VaddrToFileOff(vaddr, size)
	if err != nil {
		return err
	}
	for i := uint64(0); i < size; i++ {
		f.Raw[off+i] = 0
	}
	return nil
}

// OrPhdrFlags ORs flags into program header i's p_flags, patching the file.
func (f *File) OrPhdrFlags(i int, flags uint32) {
	f.Phdrs[i].Flags |= flags
	binary.LittleEndian.PutUint32(f.Raw[f.Phdrs[i].fileOff+4:], f.Phdrs[i].Flags)
}

// TextPhdrIndex returns the index of the executable PT_LOAD segment.
func (f *File) TextPhdrIndex() (int, error) {
	for i, ph := range f.Phdrs {
		if ph.Type == PTLoad && ph.Flags&PFX != 0 {
			return i, nil
		}
	}
	return -1, fmt.Errorf("elf: no executable segment")
}

// Base returns the lowest PT_LOAD vaddr.
func (f *File) Base() uint64 {
	base := ^uint64(0)
	for _, ph := range f.Phdrs {
		if ph.Type == PTLoad && ph.Vaddr < base {
			base = ph.Vaddr
		}
	}
	if base == ^uint64(0) {
		return 0
	}
	return base
}

// End returns the highest PT_LOAD vaddr+memsz, page aligned up.
func (f *File) End() uint64 {
	var end uint64
	for _, ph := range f.Phdrs {
		if ph.Type == PTLoad && ph.Vaddr+ph.Memsz > end {
			end = ph.Vaddr + ph.Memsz
		}
	}
	return (end + pageSize - 1) &^ (pageSize - 1)
}
