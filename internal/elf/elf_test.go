package elf

import (
	"bytes"
	"testing"

	"sgxelide/internal/asm"
	"sgxelide/internal/link"
)

const testProg = `
.text
.global entry
.func entry
	movi r0, 1
	eexit 0
.endfunc
.global helper
.func helper
	movi r0, 2
	ret
.endfunc
.rodata
.global table
table:
	.quad 1, 2, 3
.data
.global counter
counter:
	.quad 7
.bss
.global scratch
scratch:
	.space 32
`

func buildImage(t *testing.T) *link.Image {
	t.Helper()
	f, err := asm.Assemble("t.s", testProg)
	if err != nil {
		t.Fatal(err)
	}
	im, err := link.Link(link.Config{Entry: "entry"}, f)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestWriteReadRoundTrip(t *testing.T) {
	im := buildImage(t)
	raw := Write(im)
	f, err := Read(raw)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if f.Machine != EMachineEVM {
		t.Errorf("machine = %#x", f.Machine)
	}
	if f.Entry != im.Entry {
		t.Errorf("entry = %#x, want %#x", f.Entry, im.Entry)
	}
	if len(f.Phdrs) != len(im.Segments) {
		t.Fatalf("phdrs = %d, want %d", len(f.Phdrs), len(im.Segments))
	}
	for i, seg := range im.Segments {
		ph := f.Phdrs[i]
		if ph.Vaddr != seg.Addr || ph.Memsz != seg.Size || ph.Filesz != uint64(len(seg.Data)) {
			t.Errorf("phdr %d mismatch: %+v vs seg %+v", i, ph, seg)
		}
		if ph.Filesz > 0 && ph.Off%pageSize != ph.Vaddr%pageSize {
			t.Errorf("phdr %d offset %#x not congruent with vaddr %#x", i, ph.Off, ph.Vaddr)
		}
		if ph.Filesz > 0 && !bytes.Equal(raw[ph.Off:ph.Off+ph.Filesz], seg.Data) {
			t.Errorf("segment %d data mismatch", i)
		}
	}
	if f.Base() != im.Base {
		t.Errorf("base = %#x, want %#x", f.Base(), im.Base)
	}
	if f.End() != im.End {
		t.Errorf("end = %#x, want %#x", f.End(), im.End)
	}
}

func TestSymbolsPreserved(t *testing.T) {
	im := buildImage(t)
	f, err := Read(Write(im))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"entry", "helper", "table", "counter", "scratch"} {
		got, ok := f.FindSymbol(name)
		if !ok {
			t.Errorf("symbol %q missing", name)
			continue
		}
		want, _ := im.FindSymbol(name)
		if got.Value != want.Addr || got.Size != want.Size {
			t.Errorf("%q: value=%#x size=%d, want %#x/%d", name, got.Value, got.Size, want.Addr, want.Size)
		}
	}
	funcs := f.FuncSymbols()
	if len(funcs) != 2 {
		t.Errorf("func symbols = %d, want 2", len(funcs))
	}
	for _, s := range funcs {
		if s.Bind != STBGlobal {
			t.Errorf("%q bind = %d", s.Name, s.Bind)
		}
	}
}

func TestSectionLookup(t *testing.T) {
	im := buildImage(t)
	f, err := Read(Write(im))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{".text", ".rodata", ".data", ".bss", ".symtab", ".strtab", ".shstrtab"} {
		if f.Section(name) == nil {
			t.Errorf("missing section %s", name)
		}
	}
	if f.Section(".bss").Type != SHTNobits {
		t.Error(".bss should be NOBITS")
	}
	text := f.Section(".text")
	if text.Flags&SHFExecinstr == 0 {
		t.Error(".text not executable")
	}
	if got := f.SectionData(text); len(got) == 0 {
		t.Error("no text data")
	}
}

func TestZeroVaddrRange(t *testing.T) {
	im := buildImage(t)
	f, err := Read(Write(im))
	if err != nil {
		t.Fatal(err)
	}
	sym, _ := f.FindSymbol("helper")
	if err := f.ZeroVaddrRange(sym.Value, sym.Size); err != nil {
		t.Fatal(err)
	}
	off, err := f.VaddrToFileOff(sym.Value, sym.Size)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < sym.Size; i++ {
		if f.Raw[off+i] != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
	// Re-read the patched file: still valid, and the text section content
	// reflects the zeroing.
	f2, err := Read(f.Raw)
	if err != nil {
		t.Fatal(err)
	}
	sym2, _ := f2.FindSymbol("helper")
	if sym2.Value != sym.Value {
		t.Error("symbol moved after patch")
	}
}

func TestOrPhdrFlags(t *testing.T) {
	im := buildImage(t)
	f, err := Read(Write(im))
	if err != nil {
		t.Fatal(err)
	}
	ti, err := f.TextPhdrIndex()
	if err != nil {
		t.Fatal(err)
	}
	if f.Phdrs[ti].Flags&PFW != 0 {
		t.Fatal("text already writable")
	}
	f.OrPhdrFlags(ti, PFW)
	f2, err := Read(f.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Phdrs[ti].Flags&PFW == 0 {
		t.Error("PF_W not persisted in file image")
	}
	if f2.Phdrs[ti].Flags&(PFR|PFX) != PFR|PFX {
		t.Error("original flags lost")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0}, 200),
		append([]byte{0x7f, 'E', 'L', 'F', 1, 1, 1}, bytes.Repeat([]byte{0}, 100)...), // 32-bit class
	}
	for i, c := range cases {
		if _, err := Read(c); err == nil {
			t.Errorf("case %d: Read accepted garbage", i)
		}
	}
}

func TestVaddrToFileOffOutOfRange(t *testing.T) {
	im := buildImage(t)
	f, err := Read(Write(im))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.VaddrToFileOff(0xdeadbeef, 4); err == nil {
		t.Error("expected error for unmapped vaddr")
	}
	// A bss address is mapped but not file-backed.
	sym, _ := f.FindSymbol("scratch")
	if _, err := f.VaddrToFileOff(sym.Value, 4); err == nil {
		t.Error("expected error for .bss vaddr")
	}
}
