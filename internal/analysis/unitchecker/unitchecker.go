// Package unitchecker makes the elide-vet analyzers runnable under
// "go vet -vettool=": a stdlib-only reimplementation of the
// golang.org/x/tools unitchecker protocol.
//
// The go command drives a vettool through three entry points:
//
//   - "tool -V=full" must print a versioned build ID line (the content
//     hash of the tool binary), which go uses as the cache key so edits
//     to the analyzers invalidate cached vet results;
//   - "tool -flags" must print the tool's flags as JSON so the go
//     command can validate pass-through flags;
//   - "tool <file>.cfg" runs the analysis unit described by the JSON
//     config: parse cfg.GoFiles, typecheck against the compiler export
//     data in cfg.PackageFile (resolving imports through cfg.ImportMap),
//     run the analyzers, and print diagnostics to stderr — exiting
//     nonzero if there are any.
//
// Dependencies of the vetted packages arrive with VetxOnly set: the go
// command only wants the fact file (cfg.VetxOutput) for them. The
// elide-vet analyzers exchange no facts, so that path writes an empty
// facts file and returns without even parsing — which also means the
// standard library is never analyzed, only this module's packages.
//
// Two policy choices live here rather than in the analyzers:
// diagnostics in _test.go files are dropped (the secrecy invariants
// target production code; tests legitimately print and compare
// fixtures), and //elide:vet-ignore suppressions are applied, with
// malformed directives surfaced as findings of their own.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sgxelide/internal/analysis/framework"
)

// Config is the JSON unit description the go command writes next to the
// build artifacts (the schema of x/tools unitchecker.Config; field
// names must match the go command's encoder).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool built from framework analyzers.
// Each analyzer gets an enable flag of its name; with none set, all run.
func Main(analyzers ...*framework.Analyzer) {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (the go command passes -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, false, "enable only the "+a.Name+" analyzer (default: all)")
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "%s: the SGXElide security vet suite; run via go vet -vettool=$(command -v %s) ./...\n", progname, progname)
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	if *versionFlag != "" {
		printVersion(progname, *versionFlag)
		return
	}
	if *flagsFlag {
		printFlags(fs)
		return
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fs.Usage()
		os.Exit(2)
	}

	selected := analyzers[:0:0]
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = analyzers
	}
	os.Exit(runUnit(args[0], selected))
}

// printVersion implements -V. For -V=full the go command requires a
// line naming a build ID that changes whenever the tool changes; the
// content hash of the executable is exactly that.
func printVersion(progname, mode string) {
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(exe); err == nil {
		_, _ = io.Copy(h, f)
		_ = f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

// printFlags implements -flags: the JSON flag dump the go command uses
// to validate flags passed through "go vet -vettool=... -<flag>".
func printFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flags: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// runUnit executes one vet unit and returns the process exit code.
func runUnit(cfgPath string, analyzers []*framework.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "elide-vet: %v\n", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "elide-vet: bad config %s: %v\n", cfgPath, err)
		return 1
	}

	// The analyzers exchange no facts, so a dependency-only visit needs
	// nothing but the (empty) facts file the go command will cache.
	if err := writeVetx(&cfg); err != nil {
		fmt.Fprintf(os.Stderr, "elide-vet: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	diags, err := analyze(&cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "elide-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%v: %s\n", d.Position, d.Message)
	}
	return 2
}

// positioned is a diagnostic resolved to a file position.
type positioned struct {
	Position token.Position
	Message  string
}

// analyze parses and typechecks the unit, runs the analyzers, applies
// the _test.go and vet-ignore filters, and resolves positions.
func analyze(cfg *Config, analyzers []*framework.Analyzer) ([]positioned, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	sizes := types.SizesFor(cfg.Compiler, build.Default.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", build.Default.GOARCH)
	}
	tc := &types.Config{Importer: imp, Sizes: sizes}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	diags, err := framework.Run(analyzers, fset, files, pkg, info, sizes)
	if err != nil {
		return nil, err
	}
	diags = framework.ParseIgnores(fset, files).Filter(diags)

	var out []positioned
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		// The secrecy invariants are production-code invariants: tests
		// print fixtures and compare secrets on purpose.
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		out = append(out, positioned{Position: pos, Message: d.Message})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// writeVetx writes the (empty) facts file the go command caches.
func writeVetx(cfg *Config) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, nil, 0o666)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
