// Package secretflow implements the elide-vet analyzer that keeps secret
// bytes out of operator-visible text: log and fmt output, error strings,
// the observability name space (metric names, span string attributes)
// that internal/obs exports in plaintext to /metrics and trace files,
// the security audit event stream (AuditEvent fields reach /audit,
// file sinks, and flight-recorder diagnostic bundles verbatim), and the
// inter-server resume-replication link (writePeerFrame puts its payload
// on the network — only fleet-key-wrapped records may pass).
//
// It runs the shared intraprocedural taint tracker with the Flow source
// set — key material and secret plaintext, per secrets.Default — and
// reports any tainted argument reaching a configured sink. Measurements
// (MRENCLAVE) are deliberately not flow-secret: the per-enclave metric
// labels are derived from them by design, and an enclave's measurement
// is computable from its public binary.
package secretflow

import (
	"go/ast"
	"go/types"

	"sgxelide/internal/analysis/framework"
	"sgxelide/internal/analysis/secrets"
)

// New builds the analyzer over a secrecy config.
func New(cfg *secrets.Config) *framework.Analyzer {
	a := &framework.Analyzer{
		Name: "secretflow",
		Doc:  "flags secret key material or plaintext flowing into logs, formatted errors, metric names, span attributes, or audit events",
	}
	a.Run = func(pass *framework.Pass) error {
		run(pass, cfg)
		return nil
	}
	return a
}

// Analyzer is the secretflow analyzer under the default SGXElide
// secrecy model.
var Analyzer = New(secrets.Default())

func run(pass *framework.Pass, cfg *secrets.Config) {
	pass.FuncBodies(func(name string, decl ast.Node, body *ast.BlockStmt) {
		tr := secrets.NewTracker(pass.TypesInfo, cfg, secrets.Flow, body)
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := secrets.CalleeName(pass.TypesInfo, call)
			if callee == "" {
				return true
			}
			for _, sink := range cfg.Sinks {
				if !sink.Func.MatchString(callee) {
					continue
				}
				for _, arg := range call.Args {
					if !tr.Tainted(arg) {
						continue
					}
					switch sink.Kind {
					case secrets.SinkName:
						pass.Reportf(arg.Pos(),
							"secret-tainted %s flows into the observability name space via %s; metric names and span attributes are exported in plaintext (secretflow)",
							types.ExprString(arg), callee)
					case secrets.SinkAudit:
						pass.Reportf(arg.Pos(),
							"secret-tainted %s flows into the audit event stream via %s; audit events are exported verbatim to /audit, file sinks, and diagnostic bundles (secretflow)",
							types.ExprString(arg), callee)
					case secrets.SinkWire:
						pass.Reportf(arg.Pos(),
							"secret-tainted %s flows onto the inter-server replication link via %s; only fleet-key-wrapped records may cross the wire (secretflow)",
							types.ExprString(arg), callee)
					default:
						pass.Reportf(arg.Pos(),
							"secret-tainted %s flows into %s; secrets must never reach logs, errors, or formatted output (secretflow)",
							types.ExprString(arg), callee)
					}
				}
				break
			}
			return true
		})
	})
}
