package secretflow_test

import (
	"testing"

	"sgxelide/internal/analysis/analysistest"
	"sgxelide/internal/analysis/secretflow"
)

func TestSecretFlow(t *testing.T) {
	analysistest.Run(t, secretflow.Analyzer, "testdata/src/a")
}
