package a

import "io"

// writePeerFrame and ResumeRecord mirror the internal/elide resume
// replication layer: frames written with writePeerFrame go onto the
// inter-server network link, so it is a wire sink — only records wrapped
// under the fleet sealing key (wrapResumeRecord) may be passed, never raw
// channel keys or the marshaled (cleartext) record.

type ResumeRecord struct {
	Binding    [32]byte
	ChannelKey []byte
}

func wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func sealEncrypt(key, plain []byte) []byte {
	return append([]byte{0xEE}, plain...) // stand-in ciphertext
}

func writePeerFrame(w io.Writer, op byte, payload []byte) error {
	_, err := w.Write(append([]byte{op}, payload...))
	return err
}

func marshalResumeRecord(rec ResumeRecord) []byte {
	out := append([]byte(nil), rec.Binding[:]...)
	return append(out, rec.ChannelKey...)
}

func wrapResumeRecord(fleetKey []byte, rec ResumeRecord) []byte {
	plain := marshalResumeRecord(rec)
	defer wipe(plain)
	return sealEncrypt(fleetKey, plain)
}

func leakRawKeyOnWire(w io.Writer, rec ResumeRecord) {
	_ = writePeerFrame(w, 1, rec.ChannelKey) // want "flows onto the inter-server replication link"
}

func leakMarshaledRecordOnWire(w io.Writer, rec ResumeRecord) {
	plain := marshalResumeRecord(rec)
	defer wipe(plain)
	_ = writePeerFrame(w, 1, plain) // want "flows onto the inter-server replication link"
}

func okWrappedRecordOnWire(w io.Writer, fleetKey []byte, rec ResumeRecord) {
	// The wrapped blob is ciphertext under the fleet key: the intended
	// (and only permitted) wire form of a resume record.
	_ = writePeerFrame(w, 1, wrapResumeRecord(fleetKey, rec))
}

func okBindingOnWire(w io.Writer, rec ResumeRecord) {
	// The binding is a public hash of the client's ephemeral key — the
	// fetch request payload, not secret material.
	_ = writePeerFrame(w, 2, rec.Binding[:])
}
