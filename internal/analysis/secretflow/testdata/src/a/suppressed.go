package a

import "fmt"

// audited carries a vet-ignore directive: the finding below it must not
// surface.
func audited(s *Session) {
	//elide:vet-ignore secretflow audited: debug build only, key is a fixture
	fmt.Printf("key=%x\n", s.channelKey)
}
