package a

import (
	"fmt"
	"log"
)

// Non-secret logging and by-design measurement-derived metric labels
// must not be flagged.

func okLog(addr string, n int) {
	log.Printf("served %s frames=%d", addr, n)
}

func okLen(s *Session) {
	fmt.Printf("key length %d\n", len(s.channelKey))
}

func okMetric(r *Registry, mr [32]byte) {
	// Per-enclave metric labels derive from the (public) measurement by
	// design; measurements are compare-sensitive, not flow-secret.
	r.Counter(fmt.Sprintf("restore_total_%x", mr[:4]))
}
