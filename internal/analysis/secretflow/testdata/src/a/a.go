// Package a is secretflow golden testdata: secret key material and
// plaintext must not reach logs, formatted errors, or the observability
// name space.
package a

import (
	"errors"
	"fmt"
	"log"
)

// Session mirrors elide.Session's secret-relevant field.
type Session struct {
	channelKey [16]byte
}

// Registry and Span mirror the internal/obs surface the sinks match.
type Registry struct{}

func (r *Registry) Counter(name string) int { return 0 }

type Span struct{}

func (s *Span) SetStr(k, v string) {}

func sealDecrypt(key, blob []byte) ([]byte, error) { return blob, nil }

func leakPrintf(s *Session) {
	fmt.Printf("session key=%x\n", s.channelKey) // want "flows into fmt.Printf"
}

func leakLog(s *Session) {
	log.Printf("resume with key %v", s.channelKey) // want "flows into log.Printf"
}

func leakError(key, blob []byte) error {
	pt, err := sealDecrypt(key, blob)
	if err != nil {
		return err
	}
	return errors.New(string(pt)) // want "flows into errors.New"
}

func leakErrorf(channelKey []byte) error {
	return fmt.Errorf("handshake failed for key %x", channelKey) // want "flows into fmt.Errorf"
}

func leakMetricName(r *Registry, channelKey []byte) {
	r.Counter("restores_" + string(channelKey)) // want "observability name space"
}

func leakSpanAttr(sp *Span, s *Session) {
	sp.SetStr("key", string(s.channelKey[:])) // want "observability name space"
}
