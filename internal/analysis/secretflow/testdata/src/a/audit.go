package a

// AuditLog and AuditEvent mirror the internal/obs audit pipeline: every
// event field is serialized verbatim to /audit, the -audit-file JSONL
// sink, and flight-recorder diagnostic bundles, so Emit is a sink.

type AuditEvent struct {
	Type    string
	Detail  string
	Enclave string
}

type AuditLog struct{}

func (a *AuditLog) Emit(ev AuditEvent) {}

func leakAuditDetail(a *AuditLog, s *Session) {
	a.Emit(AuditEvent{ // want "flows into the audit event stream"
		Type:   "attest_refused",
		Detail: "key was " + string(s.channelKey[:]),
	})
}

func leakAuditPlaintext(a *AuditLog, key, blob []byte) {
	pt, err := sealDecrypt(key, blob)
	if err != nil {
		return
	}
	a.Emit(AuditEvent{Type: "sealed_corrupt", Detail: string(pt)}) // want "flows into the audit event stream"
}

func okAuditEvent(a *AuditLog, endpoint string, mr [32]byte) {
	// Endpoints, event types, and measurement-derived enclave labels are
	// the audit schema's intended content — not flow-secret.
	a.Emit(AuditEvent{Type: "failover_switch", Detail: endpoint, Enclave: string(mr[:4])})
}

func okAuditLength(a *AuditLog, s *Session) {
	a.Emit(AuditEvent{Type: "torn_restore", Detail: "short key"})
	_ = len(s.channelKey)
}
