package wipe_test

import (
	"testing"

	"sgxelide/internal/analysis/analysistest"
	"sgxelide/internal/analysis/wipe"
)

func TestWipe(t *testing.T) {
	analysistest.Run(t, wipe.Analyzer, "testdata/src/a")
}
