package a

// audited carries a vet-ignore directive: the finding below it must not
// surface.
func audited(key, blob []byte) {
	//elide:vet-ignore wipe audited: buffer aliases caller storage, wiped upstream
	pt, _ := AESGCMOpen(key, nil, blob)
	use(pt)
}
