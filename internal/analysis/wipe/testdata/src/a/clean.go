package a

// Ownership handoffs: the buffer escapes the function, so the new owner
// is responsible for wiping it.

type holder struct {
	buf []byte
}

var global []byte

// returned hands the plaintext to the caller.
func returned(key, blob []byte) ([]byte, error) {
	pt, err := AESGCMOpen(key, nil, blob)
	if err != nil {
		return nil, err
	}
	return pt, nil
}

// stored parks the buffer in a longer-lived struct.
func stored(h *holder, key, blob []byte) {
	pt, _ := AESGCMOpen(key, nil, blob)
	h.buf = pt
}

// appended hands the bytes to a longer-lived collection.
func appended(dst [][]byte, key, blob []byte) [][]byte {
	pt, _ := AESGCMOpen(key, nil, blob)
	dst = append(dst, pt)
	return dst
}

// published stores into a package-level variable.
func published(key, blob []byte) {
	pt, _ := AESGCMOpen(key, nil, blob)
	global = pt
}

// sent transfers ownership over a channel.
func sent(ch chan []byte, key, blob []byte) {
	pt, _ := AESGCMOpen(key, nil, blob)
	ch <- pt
}
