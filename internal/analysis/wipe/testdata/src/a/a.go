// Package a is wipe golden testdata: buffers returned by decrypt/derive
// helpers must be zeroized on the way out unless ownership is handed
// off.
package a

func AESGCMOpen(key, nonce, ct []byte) ([]byte, error) { return ct, nil }

func DeriveChannelKey(secret, salt []byte) []byte { return secret }

// Wipe zeroizes b; it matches the configured wiper patterns.
func Wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func use(b []byte) {}

// dropped decrypts and simply drops the plaintext for the GC.
func dropped(key, blob []byte) error {
	pt, err := AESGCMOpen(key, nil, blob) // want "never zeroized"
	if err != nil {
		return err
	}
	use(pt)
	return nil
}

// droppedDerive drops a derived key the same way.
func droppedDerive(secret, salt []byte) {
	k := DeriveChannelKey(secret, salt) // want "never zeroized"
	use(k)
}

// deferred is the recommended shape: covers every exit path.
func deferred(key, blob []byte) error {
	pt, err := AESGCMOpen(key, nil, blob)
	if err != nil {
		return err
	}
	defer Wipe(pt)
	use(pt)
	return nil
}

// cleared uses the clear builtin.
func cleared(key, blob []byte) {
	pt, _ := AESGCMOpen(key, nil, blob)
	use(pt)
	clear(pt)
}

// manual zeroizes with an explicit range loop.
func manual(key, blob []byte) {
	pt, _ := AESGCMOpen(key, nil, blob)
	use(pt)
	for i := range pt {
		pt[i] = 0
	}
}

// handlers seeds a finding inside a package-level function literal, the
// shape of the SDK intrinsic tables.
var handlers = map[int]func(key, blob []byte){
	1: func(key, blob []byte) {
		pt, _ := AESGCMOpen(key, nil, blob) // want "never zeroized"
		use(pt)
	},
	2: func(key, blob []byte) {
		pt, _ := AESGCMOpen(key, nil, blob)
		defer Wipe(pt)
		use(pt)
	},
}

// install mirrors the SDK intrinsic installer: a table of closures built
// inside a function. A closure's own locals do not escape through the
// composite literal that holds the closure, so the dropped buffer is
// still a finding.
func install() map[int]func(key, blob []byte) {
	return map[int]func(key, blob []byte){
		1: func(key, blob []byte) {
			pt, _ := AESGCMOpen(key, nil, blob) // want "never zeroized"
			use(pt)
		},
		2: func(key, blob []byte) {
			pt, _ := AESGCMOpen(key, nil, blob)
			defer Wipe(pt)
			use(pt)
		},
	}
}

// wipedSlice wipes through a re-slice, which also counts.
func wipedSlice(key, blob []byte) {
	pt, _ := AESGCMOpen(key, nil, blob)
	use(pt)
	Wipe(pt[:len(pt)])
}
