// Package wipe implements the elide-vet analyzer that requires
// caller-owned secret buffers to be zeroized before the function
// returns. SGXElide's whole premise is that the secret binary payload
// and the keys protecting it exist in cleartext only transiently;
// a decrypted buffer that is simply dropped for the GC keeps those
// bytes live in heap pages indefinitely, where a memory-disclosure bug
// or a core dump recovers them.
//
// The check is ownership-based and intraprocedural: a local variable
// bound to the result of a configured wipe source (AESGCMOpen,
// sealDecrypt, DeriveChannelKey, ...) must either escape the function —
// be returned or stored into a field, map, global, or appended
// collection, transferring ownership — or be zeroized on the way out
// via a configured wiper (wipe/Wipe/zeroize...), the clear() builtin,
// or an explicit for-range zeroing loop. "defer wipe(buf)" is the
// recommended shape because it covers every exit path including
// panics; the analyzer accepts a non-deferred wipe too, but only a
// defer is robust to early returns added later.
package wipe

import (
	"go/ast"
	"go/token"
	"go/types"

	"sgxelide/internal/analysis/framework"
	"sgxelide/internal/analysis/secrets"
)

// New builds the analyzer over a secrecy config.
func New(cfg *secrets.Config) *framework.Analyzer {
	a := &framework.Analyzer{
		Name: "wipe",
		Doc:  "flags decrypted/derived secret buffers that are neither zeroized (defer wipe(...)) nor handed off before the function returns",
	}
	a.Run = func(pass *framework.Pass) error {
		run(pass, cfg)
		return nil
	}
	return a
}

// Analyzer is the wipe analyzer under the default SGXElide secrecy
// model.
var Analyzer = New(secrets.Default())

// secretLocal is one buffer the enclosing function owns.
type secretLocal struct {
	obj    types.Object
	pos    token.Pos
	name   string
	source string // callee that produced it, for the message
	wiped  bool
	escape bool
}

func run(pass *framework.Pass, cfg *secrets.Config) {
	pass.FuncBodies(func(fname string, decl ast.Node, body *ast.BlockStmt) {
		locals := collectLocals(pass, cfg, body)
		if len(locals) == 0 {
			return
		}
		classify(pass, cfg, body, locals)
		for _, l := range locals {
			if l.wiped || l.escape {
				continue
			}
			pass.Reportf(l.pos,
				"secret buffer %s from %s is never zeroized in %s; its plaintext stays live on the heap — add defer on a wipe helper (e.g. defer sdk.Wipe(%s)) covering every exit path (wipe)",
				l.name, l.source, fname, l.name)
		}
	})
}

// collectLocals finds := / var bindings of wipe-source results to plain
// local identifiers.
func collectLocals(pass *framework.Pass, cfg *secrets.Config, body *ast.BlockStmt) []*secretLocal {
	var out []*secretLocal
	seen := make(map[types.Object]bool)
	bind := func(id *ast.Ident, call *ast.CallExpr, res int) {
		if id == nil || id.Name == "_" {
			return
		}
		callee := secrets.CalleeName(pass.TypesInfo, call)
		if callee == "" || !isSource(cfg, callee, res) {
			return
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || seen[obj] || !byteSlice(obj.Type()) {
			return
		}
		seen[obj] = true
		out = append(out, &secretLocal{obj: obj, pos: id.Pos(), name: id.Name, source: callee})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			for i, lhs := range s.Lhs {
				id, _ := lhs.(*ast.Ident)
				res := i
				if len(s.Lhs) == 1 {
					res = 0
				}
				bind(id, call, res)
			}
		case *ast.ValueSpec:
			if len(s.Values) != 1 {
				return true
			}
			call, ok := ast.Unparen(s.Values[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			for i, name := range s.Names {
				res := i
				if len(s.Names) == 1 {
					res = 0
				}
				bind(name, call, res)
			}
		}
		return true
	})
	return out
}

// classify walks the body once, marking each local wiped or escaped.
func classify(pass *framework.Pass, cfg *secrets.Config, body *ast.BlockStmt, locals []*secretLocal) {
	byObj := make(map[types.Object]*secretLocal, len(locals))
	for _, l := range locals {
		byObj[l.obj] = l
	}
	lookup := func(e ast.Expr) *secretLocal {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		return byObj[pass.TypesInfo.ObjectOf(id)]
	}
	mentions := func(e ast.Expr) []*secretLocal {
		var hits []*secretLocal
		ast.Inspect(e, func(n ast.Node) bool {
			// A local declared inside a nested closure does not escape via
			// an expression that merely contains the closure.
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if l := byObj[pass.TypesInfo.ObjectOf(id)]; l != nil {
					hits = append(hits, l)
				}
			}
			return true
		})
		return hits
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			// Returning the buffer (or anything computed from it inline)
			// transfers ownership to the caller.
			for _, r := range s.Results {
				for _, l := range mentions(r) {
					l.escape = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				l := lookup(rhs)
				if l == nil {
					// x = append(x, buf...) and friends hand the bytes to a
					// longer-lived collection.
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
							for _, a := range call.Args {
								if al := lookup(a); al != nil {
									al.escape = true
								}
							}
						}
					}
					continue
				}
				// Storing into anything that is not a plain local — a field,
				// an index, a dereference, a package-level var — escapes.
				if i < len(s.Lhs) && escapingLHS(pass, s.Lhs[i]) {
					l.escape = true
				}
			}
		case *ast.CallExpr:
			classifyCall(pass, cfg, s, lookup)
		case *ast.DeferStmt:
			classifyCall(pass, cfg, s.Call, lookup)
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				for _, l := range mentions(el) {
					l.escape = true
				}
			}
		case *ast.GoStmt:
			for _, a := range s.Call.Args {
				for _, l := range mentions(a) {
					l.escape = true
				}
			}
		case *ast.SendStmt:
			for _, l := range mentions(s.Value) {
				l.escape = true
			}
		case *ast.RangeStmt:
			// for i := range buf { buf[i] = 0 } is an accepted manual wipe.
			if l := lookup(s.X); l != nil && zeroLoop(s) {
				l.wiped = true
			}
		}
		return true
	})
}

// classifyCall marks wipes (wiper call or clear builtin on the buffer).
func classifyCall(pass *framework.Pass, cfg *secrets.Config, call *ast.CallExpr, lookup func(ast.Expr) *secretLocal) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "clear" && len(call.Args) == 1 {
		if l := lookup(call.Args[0]); l != nil {
			l.wiped = true
		}
		return
	}
	callee := secrets.CalleeName(pass.TypesInfo, call)
	if callee == "" || cfg.Wipers == nil || !cfg.Wipers.MatchString(callee) {
		return
	}
	for _, a := range call.Args {
		if l := lookup(a); l != nil {
			l.wiped = true
		}
		// wipe(buf[:n]) also counts.
		if sl, ok := ast.Unparen(a).(*ast.SliceExpr); ok {
			if l := lookup(sl.X); l != nil {
				l.wiped = true
			}
		}
	}
}

// escapingLHS reports whether assigning into lhs moves the value out of
// function-local ownership.
func escapingLHS(pass *framework.Pass, lhs ast.Expr) bool {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(v)
		if obj == nil || obj.Parent() == nil {
			return true
		}
		// Package-scope var: escapes. Function-local: ownership stays here.
		return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return true
}

// zeroLoop recognizes "for i := range buf { buf[i] = 0 }".
func zeroLoop(r *ast.RangeStmt) bool {
	if r.Body == nil || len(r.Body.List) != 1 {
		return false
	}
	as, ok := r.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	if _, ok := as.Lhs[0].(*ast.IndexExpr); !ok {
		return false
	}
	lit, ok := as.Rhs[0].(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// isSource matches callee/result against the configured wipe sources.
func isSource(cfg *secrets.Config, callee string, res int) bool {
	for _, p := range cfg.WipeSources {
		if p.Func.MatchString(callee) && (p.Result < 0 || p.Result == res) {
			return true
		}
	}
	return false
}

// byteSlice reports whether t is []byte-shaped.
func byteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
