package secrets

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Kind selects which source set seeds a Tracker.
type Kind int

const (
	// Compare taint feeds the constanttime analyzer: everything whose
	// comparison outcome is secret-sensitive (keys, MACs, bindings,
	// measurements, secret plaintext).
	Compare Kind = iota
	// Flow taint feeds the secretflow analyzer: byte-level secrets only.
	Flow
)

// Tracker is an intraprocedural taint tracker: seeded by the Config's
// source patterns, it propagates through assignments, slicing, indexing,
// conversions, append/copy and concatenation inside one function body.
// Calls to functions outside the source set deliberately launder taint —
// the suite is per-function by design (the same trade Guardian makes for
// its enclave-boundary checks), and cross-function flows are covered by
// marking the shared helpers (sealDecrypt, DeriveChannelKey, ...) as
// sources themselves.
type Tracker struct {
	Info    *types.Info
	Cfg     *Config
	Kind    Kind
	tainted map[types.Object]bool
}

// NewTracker builds a tracker and runs taint propagation over body.
func NewTracker(info *types.Info, cfg *Config, kind Kind, body ast.Node) *Tracker {
	t := &Tracker{Info: info, Cfg: cfg, Kind: kind, tainted: make(map[types.Object]bool)}
	t.propagate(body)
	return t
}

// fields/funcs/vars select the source set for the tracker's kind.
func (t *Tracker) fields() []FieldPattern {
	if t.Kind == Flow {
		return t.Cfg.FlowFields
	}
	// Compare-sensitivity is a superset: anything that must not flow to a
	// log is also something whose comparison must not early-exit.
	return append(append([]FieldPattern(nil), t.Cfg.CompareFields...), t.Cfg.FlowFields...)
}

func (t *Tracker) funcs() []FuncPattern {
	if t.Kind == Flow {
		return t.Cfg.FlowFuncs
	}
	return append(append([]FuncPattern(nil), t.Cfg.CompareFuncs...), t.Cfg.FlowFuncs...)
}

// propagate runs assignments to a fixpoint: each pass marks LHS objects
// whose RHS is tainted; passes repeat until stable (bounded — taint only
// grows, and the object set is finite).
func (t *Tracker) propagate(body ast.Node) {
	if body == nil {
		return
	}
	for range 32 {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
					// Tuple assignment from one call: taint the result the
					// source pattern names (or all of them).
					for i, lhs := range s.Lhs {
						if t.callResultTainted(s.Rhs[0], i) {
							changed = t.markLHS(lhs) || changed
						}
					}
					return true
				}
				for i, lhs := range s.Lhs {
					if i < len(s.Rhs) && t.Tainted(s.Rhs[i]) {
						changed = t.markLHS(lhs) || changed
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) > 1 && len(s.Values) == 1 {
					for i, name := range s.Names {
						if t.callResultTainted(s.Values[0], i) {
							changed = t.markIdent(name) || changed
						}
					}
					return true
				}
				for i, name := range s.Names {
					if i < len(s.Values) && t.Tainted(s.Values[i]) {
						changed = t.markIdent(name) || changed
					}
				}
			case *ast.RangeStmt:
				if t.Tainted(s.X) {
					if id, ok := s.Value.(*ast.Ident); ok {
						changed = t.markIdent(id) || changed
					}
				}
			case *ast.CallExpr:
				// copy(dst, secret) taints dst.
				if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "copy" && len(s.Args) == 2 {
					if t.Tainted(s.Args[1]) {
						changed = t.markLHS(s.Args[0]) || changed
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// markLHS marks the object behind an assignable expression, looking
// through slicing and indexing (copy(dst[4:], secret) taints dst).
func (t *Tracker) markLHS(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return t.markIdent(v)
	case *ast.SliceExpr:
		return t.markLHS(v.X)
	case *ast.IndexExpr:
		return t.markLHS(v.X)
	case *ast.ParenExpr:
		return t.markLHS(v.X)
	case *ast.StarExpr:
		return t.markLHS(v.X)
	}
	return false
}

func (t *Tracker) markIdent(id *ast.Ident) bool {
	if id.Name == "_" {
		return false
	}
	obj := t.Info.ObjectOf(id)
	if obj == nil || t.tainted[obj] {
		return false
	}
	t.tainted[obj] = true
	return true
}

// Tainted reports whether e carries secret taint.
func (t *Tracker) Tainted(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		obj := t.Info.ObjectOf(v)
		if obj == nil {
			return false
		}
		if t.tainted[obj] {
			return true
		}
		if _, isVar := obj.(*types.Var); isVar {
			for _, p := range t.varPatterns() {
				if p.MatchString(v.Name) {
					return true
				}
			}
		}
		return false
	case *ast.SelectorExpr:
		if t.fieldIsSource(v) {
			return true
		}
		return t.Tainted(v.X)
	case *ast.CallExpr:
		return t.callResultTainted(v, -1)
	case *ast.IndexExpr:
		return t.Tainted(v.X)
	case *ast.SliceExpr:
		return t.Tainted(v.X)
	case *ast.ParenExpr:
		return t.Tainted(v.X)
	case *ast.StarExpr:
		return t.Tainted(v.X)
	case *ast.UnaryExpr:
		return t.Tainted(v.X)
	case *ast.BinaryExpr:
		return t.Tainted(v.X) || t.Tainted(v.Y)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if t.Tainted(el) {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return t.Tainted(v.Value)
	}
	return false
}

// callResultTainted reports whether result #res of a call (or any
// result, res == -1) is secret: type conversions and append/min/max pass
// taint through; configured source functions introduce it.
func (t *Tracker) callResultTainted(e ast.Expr, res int) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	// A conversion like []byte(secret) or string(secret) keeps the taint.
	if tv, ok := t.Info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && t.Tainted(call.Args[0])
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := t.Info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "append", "min", "max":
				for _, a := range call.Args {
					if t.Tainted(a) {
						return true
					}
				}
			}
			return false
		}
	}
	name := CalleeName(t.Info, call)
	if name == "" {
		return false
	}
	for _, p := range t.funcs() {
		if p.Func.MatchString(name) && (p.Result < 0 || res < 0 || p.Result == res) {
			return true
		}
	}
	return false
}

// fieldIsSource matches x.f against the field source patterns.
func (t *Tracker) fieldIsSource(sel *ast.SelectorExpr) bool {
	obj := t.Info.ObjectOf(sel.Sel)
	field, ok := obj.(*types.Var)
	if !ok || !field.IsField() {
		return false
	}
	owner := ownerTypeName(t.Info, sel)
	if owner == "" {
		return false
	}
	for _, p := range t.fields() {
		if p.Type.MatchString(owner) && p.Field.MatchString(field.Name()) {
			return true
		}
	}
	return false
}

// ownerTypeName names the receiver type of a field selection as
// "pkg.Type" (or bare "Type" for the package being analyzed).
func ownerTypeName(info *types.Info, sel *ast.SelectorExpr) string {
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	return namedName(tv.Type)
}

// namedName renders the named type behind t (through pointers) as
// "pkg.Name".
func namedName(t types.Type) string {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
			continue
		case *types.Named:
			obj := v.Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			return obj.Name()
		case *types.Alias:
			t = types.Unalias(t)
			continue
		default:
			return ""
		}
	}
}

// CalleeName renders a call's target as a dotted name the Config
// patterns match: "pkg.Func", "pkg.Recv.Method" (receiver pointer
// stripped), or the bare "Func" for calls within the analyzed package.
func CalleeName(info *types.Info, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = info.ObjectOf(fun.Sel)
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if recv := namedName(sig.Recv().Type()); recv != "" {
			return recv + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// varPatterns selects the identifier-name source patterns for the kind.
func (t *Tracker) varPatterns() []*regexp.Regexp {
	if t.Kind == Flow {
		return t.Cfg.FlowVars
	}
	return append(append([]*regexp.Regexp(nil), t.Cfg.CompareVars...), t.Cfg.FlowVars...)
}
