// Package secrets declares what "secret" means to the elide-vet suite —
// the type/field/function patterns that seed taint — and implements the
// small intraprocedural taint tracker the constanttime and secretflow
// analyzers share (taint.go).
//
// The patterns are name-based rather than import-path-based on purpose:
// the analyzers must recognize the same shapes in their golden testdata
// packages (which re-declare miniature SecretMeta/AESGCMOpen lookalikes)
// as in the production tree, and SGXElide's secret-bearing identifiers
// are distinctive enough that names are a reliable signal here.
package secrets

import "regexp"

// FieldPattern marks struct fields as secret: Type matches the defining
// named type ("SecretMeta", or qualified "elide.SecretMeta" — the
// pattern is applied to both forms), Field matches the field name.
type FieldPattern struct {
	Type  *regexp.Regexp
	Field *regexp.Regexp
}

// FuncPattern marks a function or method whose result carries a secret.
// The pattern is applied to the callee's dotted name: "pkg.Func" for
// functions, "pkg.Recv.Method" for methods, and the bare name for
// package-local calls. Result selects which result is secret (-1 = all).
type FuncPattern struct {
	Func   *regexp.Regexp
	Result int
}

// SinkKind classifies how a secretflow sink leaks.
type SinkKind int

const (
	// SinkArgs: any secret-tainted argument leaks (logging, formatting,
	// error construction — the value ends up in operator-visible text).
	SinkArgs SinkKind = iota
	// SinkName: the secret leaks through the observability *name* space —
	// metric names, span attribute string values — which is exported in
	// plaintext to /metrics and trace files.
	SinkName
	// SinkAudit: the secret leaks into the security audit event stream —
	// AuditEvent fields are serialized verbatim to the /audit endpoint,
	// the -audit-file JSONL sink, and flight-recorder diagnostic bundles.
	SinkAudit
	// SinkWire: the value crosses the inter-server replication link.
	// Only fleet-key-wrapped blobs (wrapResumeRecord) may be passed —
	// a raw channel key or marshaled record here is a cleartext key on
	// the network.
	SinkWire
)

// SinkPattern marks a call as a secretflow sink.
type SinkPattern struct {
	Func *regexp.Regexp
	Kind SinkKind
}

// Config is the secrecy model the analyzers enforce. Compare* sources
// seed the constanttime analyzer (values whose comparison outcome gates
// or leaks secret state: keys, MACs, channel bindings, measurements);
// Flow* sources seed secretflow (values whose *bytes* must never reach
// logs, errors, or metrics: key material and secret plaintext — note
// measurements are compare-sensitive but deliberately not flow-secret,
// the per-enclave metric labels are built from them by design). Wipe*
// configures the wipe analyzer's sources and recognized zeroizers.
type Config struct {
	CompareFields []FieldPattern
	CompareFuncs  []FuncPattern
	CompareVars   []*regexp.Regexp

	FlowFields []FieldPattern
	FlowFuncs  []FuncPattern
	FlowVars   []*regexp.Regexp

	Sinks []SinkPattern

	// WipeSources are calls returning decrypted or derived secret buffers
	// that the caller owns and must zeroize on every exit path.
	WipeSources []FuncPattern
	// Wipers are the zeroization functions the wipe analyzer accepts
	// (matched like FuncPattern.Func). The clear() builtin and an
	// explicit for-range zeroing loop are always accepted.
	Wipers *regexp.Regexp

	// BoundaryTypes are struct types that cross the enclave/host or wire
	// boundary by layout (fixed marshaled images, attestation evidence):
	// padleak requires their layouts to carry no implicit padding even
	// when no gob/binary call site is visible in the analyzed package.
	BoundaryTypes *regexp.Regexp
}

// Default is the SGXElide secrecy model: the channel and seal keys, the
// GCM material in SecretMeta, quote binding data, secret plaintext, and
// the decrypt/derive helpers that produce them.
func Default() *Config {
	return &Config{
		CompareFields: []FieldPattern{
			// SecretMeta carries the local-data key and GCM material.
			{Type: re(`(^|\.)SecretMeta$`), Field: re(`^(Key|IV|MAC)$`)},
			// Attestation evidence: report data binds the channel key to the
			// quote (the PR 3 timing bug), MACs gate trust, measurements gate
			// secret release.
			{Type: re(`(^|\.)(Quote|Report)$`), Field: re(`^(Data|MAC)$`)},
			{Type: re(`(^|\.)(Quote|Report|SigStruct|SecretEntry)$`), Field: re(`^(MrEnclave|MrSigner|EnclaveHash)$`)},
			{Type: re(`(^|\.)Session$`), Field: re(`^channelKey$`)},
			{Type: re(`(^|\.)ResumeRecord$`), Field: re(`^ChannelKey$`)},
			{Type: re(`(^|\.)(SecretEntry|ServerConfig|SanitizeResult|DeployedSecrets)$`), Field: re(`^SecretPlain$`)},
		},
		CompareFuncs: []FuncPattern{
			{Func: re(`(^|\.)(AESGCMOpen|ChannelOpen|sealDecrypt)$`), Result: 0},
			{Func: re(`(^|\.)DeriveChannelKey$`), Result: 0},
			{Func: re(`(^|\.)(sealKey|reportKey|launchKey)$`), Result: 0},
		},
		CompareVars: []*regexp.Regexp{
			re(`^(binding|channelKey|sealKey|mrenclave|mrEnclave)$`),
		},

		FlowFields: []FieldPattern{
			{Type: re(`(^|\.)SecretMeta$`), Field: re(`^Key$`)},
			{Type: re(`(^|\.)Session$`), Field: re(`^channelKey$`)},
			{Type: re(`(^|\.)ResumeRecord$`), Field: re(`^ChannelKey$`)},
			{Type: re(`(^|\.)(SecretEntry|ServerConfig|SanitizeResult|DeployedSecrets)$`), Field: re(`^SecretPlain$`)},
		},
		FlowFuncs: []FuncPattern{
			{Func: re(`(^|\.)(AESGCMOpen|ChannelOpen|sealDecrypt)$`), Result: 0},
			{Func: re(`(^|\.)DeriveChannelKey$`), Result: 0},
			{Func: re(`(^|\.)(sealKey|reportKey|launchKey)$`), Result: 0},
			// The marshaled resume record embeds the channel key verbatim: it
			// exists only as the plaintext input to the fleet-key wrapping.
			{Func: re(`(^|\.)marshalResumeRecord$`), Result: 0},
		},
		FlowVars: []*regexp.Regexp{
			re(`^(channelKey|sealKey|secretPlain)$`),
		},

		Sinks: []SinkPattern{
			{Func: re(`^fmt\.(Print|Printf|Println|Sprint|Sprintf|Sprintln|Fprint|Fprintf|Fprintln|Errorf|Appendf?|Appendln)$`), Kind: SinkArgs},
			{Func: re(`^log\.(Print|Printf|Println|Fatal|Fatalf|Fatalln|Panic|Panicf|Panicln|Output)$`), Kind: SinkArgs},
			{Func: re(`^log\.Logger\.(Print|Printf|Println|Fatal|Fatalf|Fatalln|Panic|Panicf|Panicln|Output)$`), Kind: SinkArgs},
			{Func: re(`^(log/slog|slog)\.`), Kind: SinkArgs},
			{Func: re(`^errors\.New$`), Kind: SinkArgs},
			// Observability name space: metric names and span string attrs
			// are exported in plaintext (Prometheus text, trace JSONL).
			{Func: re(`(^|\.)Registry\.(Counter|Gauge|Observe)$`), Kind: SinkName},
			{Func: re(`(^|\.)Span\.(SetStr|SetAttr)$`), Kind: SinkName},
			{Func: re(`(^|\.)Tracer\.Start$`), Kind: SinkName},
			// Audit pipeline: events are serialized verbatim to /audit, the
			// -audit-file sink, and flight-recorder bundles — operator-visible
			// surfaces a secret must never reach.
			{Func: re(`(^|\.)AuditLog\.Emit$`), Kind: SinkAudit},
			// Inter-server resume replication: frames written here go onto
			// the network; only wrapped records may pass (DESIGN §14).
			{Func: re(`(^|\.)writePeerFrame$`), Kind: SinkWire},
		},

		WipeSources: []FuncPattern{
			{Func: re(`(^|\.)(AESGCMOpen|ChannelOpen|sealDecrypt)$`), Result: 0},
			{Func: re(`(^|\.)DeriveChannelKey$`), Result: 0},
			{Func: re(`(^|\.)marshalResumeRecord$`), Result: 0},
		},
		Wipers: re(`(^|\.)[Ww]ipe[A-Za-z0-9_]*$|(^|\.)[Zz]eroize$`),

		BoundaryTypes: re(`(^|\.)(SecretMeta|Quote|Report|SigStruct|attestMsg)$`),
	}
}

func re(s string) *regexp.Regexp { return regexp.MustCompile(s) }
