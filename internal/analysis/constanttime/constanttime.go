// Package constanttime implements the elide-vet analyzer that requires
// secret-sensitive byte comparisons to go through
// crypto/subtle.ConstantTimeCompare (or crypto/hmac.Equal).
//
// The attestation server's channel-binding check is the canonical case
// (fixed by hand in PR 3): bytes.Equal between the quote's report data
// and the expected binding early-exits on the first mismatching byte,
// leaking through timing how much of a guessed binding matched — a
// remote oracle on the value that gates secret release. This analyzer
// makes the whole bug class mechanical: any ==/!=, bytes.Equal/Compare,
// reflect.DeepEqual or slices.Equal whose operand carries compare taint
// (keys, MACs, bindings, measurements, secret plaintext — see
// secrets.Default) is a finding.
package constanttime

import (
	"go/ast"
	"go/token"
	"go/types"

	"sgxelide/internal/analysis/framework"
	"sgxelide/internal/analysis/secrets"
)

// New builds the analyzer over a secrecy config.
func New(cfg *secrets.Config) *framework.Analyzer {
	a := &framework.Analyzer{
		Name: "constanttime",
		Doc:  "flags variable-time comparisons (==, bytes.Equal, reflect.DeepEqual, ...) of secret-tainted values; use crypto/subtle.ConstantTimeCompare",
	}
	a.Run = func(pass *framework.Pass) error {
		run(pass, cfg)
		return nil
	}
	return a
}

// Analyzer is the constanttime analyzer under the default SGXElide
// secrecy model.
var Analyzer = New(secrets.Default())

// comparisonFuncs are the variable-time comparison helpers. hmac.Equal
// and subtle.ConstantTimeCompare are the sanctioned replacements and are
// never flagged.
var comparisonFuncs = map[string][]int{
	"bytes.Equal":       {0, 1},
	"bytes.Compare":     {0, 1},
	"bytes.HasPrefix":   {0, 1},
	"bytes.HasSuffix":   {0, 1},
	"reflect.DeepEqual": {0, 1},
	"slices.Equal":      {0, 1},
	"strings.EqualFold": {0, 1},
	"strings.Compare":   {0, 1},
	"strings.HasPrefix": {0, 1},
	"bytes.Contains":    {0, 1},
	"strings.Contains":  {0, 1},
	"maps.Equal":        {0, 1},
	"bytes.IndexByte":   {0},
	"bytes.Index":       {0, 1},
}

func run(pass *framework.Pass, cfg *secrets.Config) {
	pass.FuncBodies(func(name string, decl ast.Node, body *ast.BlockStmt) {
		tr := secrets.NewTracker(pass.TypesInfo, cfg, secrets.Compare, body)
		ast.Inspect(body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				// Nil checks test presence, not content; they are constant
				// time and idiomatic.
				if isNil(pass.TypesInfo, v.X) || isNil(pass.TypesInfo, v.Y) {
					return true
				}
				if !bytesLike(pass.TypesInfo, v.X) && !bytesLike(pass.TypesInfo, v.Y) {
					return true
				}
				if side, e := taintedSide(tr, v.X, v.Y); side != "" {
					pass.Reportf(v.OpPos,
						"%s comparison of secret-tainted %s is not constant time; use crypto/subtle.ConstantTimeCompare (constanttime)",
						v.Op, render(e))
				}
			case *ast.CallExpr:
				callee := secrets.CalleeName(pass.TypesInfo, v)
				argIdx, ok := comparisonFuncs[callee]
				if !ok {
					return true
				}
				for _, i := range argIdx {
					if i < len(v.Args) && tr.Tainted(v.Args[i]) {
						pass.Reportf(v.Pos(),
							"%s on secret-tainted %s is not constant time; use crypto/subtle.ConstantTimeCompare (constanttime)",
							callee, render(v.Args[i]))
						break
					}
				}
			}
			return true
		})
	})
}

// taintedSide returns the first tainted operand of a comparison.
func taintedSide(tr *secrets.Tracker, x, y ast.Expr) (string, ast.Expr) {
	if tr.Tainted(x) {
		return "x", x
	}
	if tr.Tainted(y) {
		return "y", y
	}
	return "", nil
}

// bytesLike reports whether e has a byte-sequence type whose comparison
// is data-dependent: string, []byte, or [N]byte (timing depends on where
// the first difference falls). Fixed-width scalars compare in constant
// time and are not flagged.
func bytesLike(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	switch v := t.(type) {
	case *types.Basic:
		return v.Info()&types.IsString != 0
	case *types.Slice:
		return isByte(v.Elem())
	case *types.Array:
		return isByte(v.Elem())
	}
	return false
}

// isNil reports whether e is the predeclared nil.
func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// render pretty-prints an expression for a diagnostic.
func render(e ast.Expr) string { return types.ExprString(e) }
