package constanttime_test

import (
	"testing"

	"sgxelide/internal/analysis/analysistest"
	"sgxelide/internal/analysis/constanttime"
)

func TestConstantTime(t *testing.T) {
	analysistest.Run(t, constanttime.Analyzer, "testdata/src/a")
}
