package a

import "bytes"

// audited carries a vet-ignore directive: the finding on the next line
// is suppressed and must not surface.
func audited(q *Quote) bool {
	//elide:vet-ignore constanttime audited: value is public in this context
	return bytes.Equal(q.Data[:8], nil)
}

// trailing uses the same-line suppression style.
func trailing(q *Quote, mac [16]byte) bool {
	return q.MAC == mac //elide:vet-ignore constanttime audited: test fixture comparison
}

// wrongAnalyzer names a different analyzer, so the finding still fires.
func wrongAnalyzer(q *Quote) bool {
	//elide:vet-ignore padleak wrong analyzer named
	return bytes.Equal(q.Data[:8], nil) // want "bytes.Equal on secret-tainted"
}
