// Package a is constanttime golden testdata: miniature lookalikes of
// the SGXElide secret-bearing shapes, with the PR 3 timing-compare bug
// pattern seeded as a positive case.
package a

import (
	"bytes"
	"crypto/hmac"
	"crypto/subtle"
	"reflect"
)

// Quote mirrors sgx.Quote's secret-relevant fields.
type Quote struct {
	Data [64]byte
	MAC  [16]byte
}

// attest reproduces the PR 3 channel-binding timing bug: bytes.Equal
// between quote report data and the expected binding early-exits on the
// first mismatching byte.
func attest(q *Quote, binding [32]byte) bool {
	return bytes.Equal(q.Data[:32], binding[:]) // want "bytes.Equal on secret-tainted"
}

// attestFixed is the sanctioned form and must not be flagged.
func attestFixed(q *Quote, binding [32]byte) bool {
	return subtle.ConstantTimeCompare(q.Data[:32], binding[:]) == 1
}

// macEqual compares MAC arrays with ==.
func macEqual(q *Quote, mac [16]byte) bool {
	return q.MAC == mac // want "comparison of secret-tainted"
}

// macHMAC is the sanctioned MAC check and must not be flagged.
func macHMAC(q *Quote, mac []byte) bool {
	return hmac.Equal(q.MAC[:], mac)
}

// derived shows taint surviving assignment and re-slicing.
func derived(q *Quote) bool {
	d := q.Data[:]
	sum := d[:8]
	return reflect.DeepEqual(sum, make([]byte, 8)) // want "reflect.DeepEqual on secret-tainted"
}

// channelKeyCompare seeds taint from a configured variable name.
func channelKeyCompare(channelKey, other []byte) bool {
	return bytes.Equal(channelKey, other) // want "bytes.Equal on secret-tainted"
}
