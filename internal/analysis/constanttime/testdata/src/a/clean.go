package a

import "bytes"

// Public, non-secret comparisons must not be flagged.

func versionOK(v string) bool {
	return v == "v1"
}

func frameOK(hdr, magic []byte) bool {
	return bytes.Equal(hdr, magic)
}

func lengthOK(n, m int) bool {
	return n == m
}

func nilCheckOK(channelKey []byte) bool {
	return channelKey == nil
}
