package a

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
)

// Quote is a boundary type whose alignment hole is explicit: the named
// blank field is part of the declared layout and zeroed by construction.
type Quote struct {
	Data [2]byte
	_    [6]byte
	Sig  uint64
}

// packed has no holes at all.
type packed struct {
	A uint64
	B uint32
	C uint32
}

func encodePacked(w *bytes.Buffer, p packed) error {
	return gob.NewEncoder(w).Encode(p)
}

// scalars are not structs; binary.Write on them is fine.
func putScalar(w *bytes.Buffer, v uint64) error {
	return binary.Write(w, binary.LittleEndian, v)
}
