// Package a is padleak golden testdata: structs serialized to the
// boundary (gob, encoding/binary) or named as boundary types must carry
// no implicit padding.
package a

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
)

// padded has a 7-byte hole after A.
type padded struct {
	A uint8
	B uint64
}

func encodeGob(w *bytes.Buffer, m padded) error {
	return gob.NewEncoder(w).Encode(m) // want "implicit padding after field A"
}

// wire has a 4-byte hole after N.
type wire struct {
	N uint32
	V uint64
}

func putBinary(w *bytes.Buffer, v wire) error {
	return binary.Write(w, binary.LittleEndian, v) // want "implicit padding after field N"
}

// inner hides its hole one level down; the check recurses.
type inner struct {
	C uint16
	D uint64
}

type outer struct {
	I inner
}

func decodeNested(r *bytes.Buffer, o *outer) error {
	return gob.NewDecoder(r).Decode(o) // want "implicit padding after field I.C"
}

// SecretMeta matches the configured boundary types, so its declaration
// is checked even with no serialization call in sight.
type SecretMeta struct { // want "implicit padding after field Version"
	Version uint8
	TextLen uint64
}
