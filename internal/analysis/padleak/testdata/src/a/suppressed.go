package a

import (
	"bytes"
	"encoding/gob"
)

// legacy keeps its implicit padding for wire compatibility; the
// directive records the audit.
type legacy struct {
	Tag uint8
	Len uint64
}

func encodeLegacy(w *bytes.Buffer, l legacy) error {
	//elide:vet-ignore padleak audited: gob field-encodes, memory image never copied raw
	return gob.NewEncoder(w).Encode(l)
}
