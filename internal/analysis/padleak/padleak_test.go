package padleak_test

import (
	"testing"

	"sgxelide/internal/analysis/analysistest"
	"sgxelide/internal/analysis/padleak"
)

func TestPadLeak(t *testing.T) {
	analysistest.Run(t, padleak.Analyzer, "testdata/src/a")
}
