// Package padleak implements the elide-vet analyzer that rejects
// implicit padding in structs whose layout crosses a trust boundary —
// the exact leak of Lee & Kim's "Leaking Uninitialized Secure Enclave
// Memory via Structure Padding": the compiler inserts alignment holes
// the program never initializes, and any copy of the struct's memory
// image out of the enclave (or onto the wire) carries whatever secret
// bytes previously occupied that heap or stack slot.
//
// A struct is boundary-crossing when it is gob-encoded or decoded,
// passed to encoding/binary Read/Write, or named by the secrecy
// config's BoundaryTypes (the attestation evidence and secret-metadata
// structs with fixed marshaled images in internal/sgx and
// internal/elide). Such structs must make every alignment hole explicit
// with a named "_ [N]byte" field — explicit padding is part of the
// declared layout, is zeroed by construction, and makes the next layout
// change a reviewed decision instead of a silent leak.
package padleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"sgxelide/internal/analysis/framework"
	"sgxelide/internal/analysis/secrets"
)

// New builds the analyzer over a secrecy config.
func New(cfg *secrets.Config) *framework.Analyzer {
	a := &framework.Analyzer{
		Name: "padleak",
		Doc:  "flags implicit padding bytes in structs that cross the enclave or wire boundary (gob, encoding/binary, configured boundary types)",
	}
	a.Run = func(pass *framework.Pass) error {
		run(pass, cfg)
		return nil
	}
	return a
}

// Analyzer is the padleak analyzer under the default SGXElide secrecy
// model.
var Analyzer = New(secrets.Default())

// serializers maps serializing callees to the argument index holding the
// struct whose layout goes to the boundary.
var serializers = map[string]int{
	"gob.Encoder.Encode": 0,
	"gob.Decoder.Decode": 0,
	"binary.Write":       2,
	"binary.Read":        2,
}

func run(pass *framework.Pass, cfg *secrets.Config) {
	seen := make(map[string]bool) // one report per struct type per package

	check := func(pos token.Pos, t types.Type, how string) {
		name := typeName(t)
		st, ok := t.Underlying().(*types.Struct)
		if !ok || seen[name] {
			return
		}
		seen[name] = true
		if hole := findPadding(pass.TypesSizes, st, nil); hole != nil {
			pass.Reportf(pos,
				"struct %s %s but carries %d byte(s) of implicit padding after field %s; uninitialized padding leaks enclave memory across the boundary — declare it as a named \"_ [%d]byte\" field or pack the layout (padleak)",
				name, how, hole.n, hole.after, hole.n)
		}
	}

	// Call sites: gob / encoding-binary serialization of a struct value.
	pass.Preorder(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		argIdx, ok := serializers[secrets.CalleeName(pass.TypesInfo, call)]
		if !ok || argIdx >= len(call.Args) {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call.Args[argIdx]]
		if !ok || tv.Type == nil {
			return true
		}
		t := derefAll(tv.Type)
		if _, isStruct := t.Underlying().(*types.Struct); isStruct {
			check(call.Args[argIdx].Pos(), t, "is serialized to the boundary")
		}
		return true
	})

	// Declarations: configured boundary types defined in this package.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(ts.Name)
				if obj == nil {
					continue
				}
				name := typeName(obj.Type())
				if cfg.BoundaryTypes != nil && cfg.BoundaryTypes.MatchString(name) {
					check(ts.Pos(), obj.Type(), "crosses the enclave boundary")
				}
			}
		}
	}
}

// hole describes one run of implicit padding.
type hole struct {
	after string // preceding field name (path through nested structs)
	n     int64
}

// findPadding returns the first alignment hole in st, recursing into
// struct-typed fields and arrays of structs. Blank "_ [N]byte" fields
// count as fields, so explicit padding closes the hole it covers.
func findPadding(sizes types.Sizes, st *types.Struct, visiting []*types.Struct) *hole {
	for _, v := range visiting {
		if v == st {
			return nil
		}
	}
	visiting = append(visiting, st)
	n := st.NumFields()
	if n == 0 {
		return nil
	}
	fields := make([]*types.Var, n)
	for i := range n {
		fields[i] = st.Field(i)
	}
	offsets := sizes.Offsetsof(fields)
	total := sizes.Sizeof(st)
	for i := range n {
		end := offsets[i] + sizes.Sizeof(fields[i].Type())
		next := total
		if i+1 < n {
			next = offsets[i+1]
		}
		if gap := next - end; gap > 0 {
			return &hole{after: fields[i].Name(), n: gap}
		}
		// Recurse: a nested struct's internal padding is just as much a
		// part of the outer memory image.
		ft := fields[i].Type()
		if arr, ok := ft.Underlying().(*types.Array); ok {
			ft = arr.Elem()
		}
		if inner, ok := ft.Underlying().(*types.Struct); ok {
			if h := findPadding(sizes, inner, visiting); h != nil {
				return &hole{after: fields[i].Name() + "." + h.after, n: h.n}
			}
		}
	}
	return nil
}

// derefAll strips pointers.
func derefAll(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// typeName renders a (possibly unnamed) type for matching and messages.
func typeName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return fmt.Sprintf("%s", t)
}
