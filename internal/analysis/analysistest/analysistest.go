// Package analysistest is the golden-test harness for the elide-vet
// analyzers, a stdlib-only reimplementation of the x/tools package of
// the same name. A test points it at a testdata package; the harness
// parses and typechecks it with the source importer (testdata imports
// the standard library only), runs one analyzer through the same
// framework.Run engine the production driver uses — including
// //elide:vet-ignore filtering, so suppression behavior is testable —
// and matches the diagnostics against "// want" expectations:
//
//	bad := bytes.Equal(a, b) // want "not constant time"
//
// Each quoted string is a regexp that must match a diagnostic reported
// on that line; diagnostics with no matching want, and wants with no
// matching diagnostic, fail the test.
package analysistest

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sgxelide/internal/analysis/framework"
)

// want is one expectation: a regexp anchored to a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

var wantRE = regexp.MustCompile(`(?:"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`" + `)`)

// Run typechecks the single package in dir, applies the analyzer, and
// checks its (ignore-filtered) diagnostics against the // want comments.
func Run(t *testing.T, a *framework.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	sizes := types.SizesFor("gc", build.Default.GOARCH)
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Sizes:    sizes,
	}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	diags, err := framework.Run([]*framework.Analyzer{a}, fset, files, pkg, info, sizes)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	diags = framework.ParseIgnores(fset, files).Filter(diags)

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !match(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.text)
		}
	}
}

// parseDir parses every .go file directly in dir, sorted by name.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// collectWants extracts the // want expectations from every comment.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if !strings.HasPrefix(c.Text, "//") || idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx+len("want "):], -1) {
					text := m[2]
					if m[1] != "" {
						unq, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						text = unq
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, text, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, text: text})
				}
			}
		}
	}
	return wants
}

// match consumes the first unhit want on file:line whose regexp matches.
func match(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}
