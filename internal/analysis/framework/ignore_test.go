package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

// lineStart returns the Pos of the first character of line n in the
// single parsed file.
func lineStart(fset *token.FileSet, n int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(n)
		return false
	})
	return pos
}

func TestIgnoreCoversOwnAndNextLine(t *testing.T) {
	fset, files := parseOne(t, `package p

//elide:vet-ignore wipe audited: aliases caller storage
var x = 1
var y = 2
`)
	ig := ParseIgnores(fset, files)
	if !ig.Suppressed("wipe", lineStart(fset, 3)) {
		t.Errorf("directive line itself not covered")
	}
	if !ig.Suppressed("wipe", lineStart(fset, 4)) {
		t.Errorf("line below directive not covered")
	}
	if ig.Suppressed("wipe", lineStart(fset, 5)) {
		t.Errorf("two lines below directive must not be covered")
	}
	if ig.Suppressed("constanttime", lineStart(fset, 4)) {
		t.Errorf("unlisted analyzer must not be suppressed")
	}
}

func TestIgnoreWildcard(t *testing.T) {
	fset, files := parseOne(t, `package p

//elide:vet-ignore * audited: generated fixture
var x = 1
`)
	ig := ParseIgnores(fset, files)
	for _, a := range []string{"wipe", "padleak", "constanttime", "secretflow"} {
		if !ig.Suppressed(a, lineStart(fset, 4)) {
			t.Errorf("wildcard did not suppress %s", a)
		}
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//elide:vet-ignore\nvar x = 1\n",
		"package p\n\n//elide:vet-ignore wipe\nvar x = 1\n", // missing reason
	} {
		fset, files := parseOne(t, src)
		ig := ParseIgnores(fset, files)
		if ig.Suppressed("wipe", lineStart(fset, 4)) {
			t.Errorf("malformed directive must not suppress anything (src %q)", src)
		}
		probs := ig.Problems()
		if len(probs) != 1 {
			t.Fatalf("want 1 problem, got %d (src %q)", len(probs), src)
		}
		if probs[0].Analyzer != "vet-ignore" || !strings.Contains(probs[0].Message, "malformed") {
			t.Errorf("unexpected problem diagnostic: %+v", probs[0])
		}
	}
}

func TestFilterDropsSuppressedAndAppendsProblems(t *testing.T) {
	fset, files := parseOne(t, `package p

//elide:vet-ignore wipe audited: ok
var x = 1

//elide:vet-ignore
var y = 2
`)
	ig := ParseIgnores(fset, files)
	diags := []Diagnostic{
		{Pos: lineStart(fset, 4), Analyzer: "wipe", Message: "suppressed finding"},
		{Pos: lineStart(fset, 7), Analyzer: "wipe", Message: "surviving finding"},
	}
	out := ig.Filter(diags)
	if len(out) != 2 {
		t.Fatalf("want 2 diagnostics after filter (1 surviving + 1 problem), got %d: %+v", len(out), out)
	}
	if out[0].Message != "surviving finding" {
		t.Errorf("surviving finding lost: %+v", out[0])
	}
	if out[1].Analyzer != "vet-ignore" {
		t.Errorf("problem diagnostic not appended: %+v", out[1])
	}
}
