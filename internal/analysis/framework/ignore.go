package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// IgnorePrefix is the suppression directive recognized by the elide-vet
// driver:
//
//	//elide:vet-ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive suppresses findings from the named analyzers (or every
// analyzer, with "*") on the directive's own line and on the line
// immediately below it, so both trailing-comment and comment-above styles
// work. The reason is mandatory: an audited false positive must say what
// was audited, and a directive without one is itself reported.
const IgnorePrefix = "//elide:vet-ignore"

// ignoreDirective is one parsed //elide:vet-ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // nil after a parse error
	reason    string
	pos       token.Pos
	used      bool
}

// Ignores indexes every vet-ignore directive in a set of files, keyed by
// filename and the lines each directive covers.
type Ignores struct {
	fset  *token.FileSet
	byLoc map[string]map[int]*ignoreDirective // filename -> line -> directive
	all   []*ignoreDirective
}

// ParseIgnores scans the comments of files for vet-ignore directives.
func ParseIgnores(fset *token.FileSet, files []*ast.File) *Ignores {
	ig := &Ignores{fset: fset, byLoc: make(map[string]map[int]*ignoreDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				d := parseIgnore(c.Text, c.Pos())
				ig.all = append(ig.all, d)
				pos := fset.Position(c.Pos())
				lines := ig.byLoc[pos.Filename]
				if lines == nil {
					lines = make(map[int]*ignoreDirective)
					ig.byLoc[pos.Filename] = lines
				}
				// Cover the directive's line (trailing style) and the next
				// line (comment-above style).
				lines[pos.Line] = d
				if _, taken := lines[pos.Line+1]; !taken {
					lines[pos.Line+1] = d
				}
			}
		}
	}
	return ig
}

// parseIgnore splits "//elide:vet-ignore a,b reason..." into its parts.
// A directive with no analyzer list or no reason gets a nil analyzer set,
// which Problems reports as malformed.
func parseIgnore(text string, pos token.Pos) *ignoreDirective {
	rest := strings.TrimPrefix(text, IgnorePrefix)
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return &ignoreDirective{pos: pos}
	}
	names := make(map[string]bool)
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names[n] = true
		}
	}
	if len(names) == 0 {
		return &ignoreDirective{pos: pos}
	}
	return &ignoreDirective{
		analyzers: names,
		reason:    strings.Join(fields[1:], " "),
		pos:       pos,
	}
}

// Suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by a well-formed directive, marking the directive used.
func (ig *Ignores) Suppressed(analyzer string, pos token.Pos) bool {
	if ig == nil || !pos.IsValid() {
		return false
	}
	p := ig.fset.Position(pos)
	d := ig.byLoc[p.Filename][p.Line]
	if d == nil || d.analyzers == nil {
		return false
	}
	if !d.analyzers[analyzer] && !d.analyzers["*"] {
		return false
	}
	d.used = true
	return true
}

// Problems returns driver diagnostics for directives that are malformed
// (missing the analyzer list or the mandatory reason). A suppression
// that cannot say what it suppresses or why is a hole in the audit
// trail, not a suppression.
func (ig *Ignores) Problems() []Diagnostic {
	var out []Diagnostic
	for _, d := range ig.all {
		if d.analyzers == nil {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "vet-ignore",
				Message:  "malformed " + IgnorePrefix + " directive: want \"" + IgnorePrefix + " <analyzer>[,<analyzer>] <reason>\"",
			})
		}
	}
	return out
}

// Filter drops the diagnostics suppressed by directives and appends any
// directive problems, returning the list a driver should report.
func (ig *Ignores) Filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !ig.Suppressed(d.Analyzer, d.Pos) {
			out = append(out, d)
		}
	}
	return append(out, ig.Problems()...)
}
