// Package framework is a dependency-free core for writing static
// analyzers over go/ast + go/types, mirroring the shape of
// golang.org/x/tools/go/analysis closely enough that the elide-vet
// analyzers could be ported to the real framework mechanically. The repo
// builds with the standard library only, so the few pieces of the
// x/tools surface the security suite needs are reimplemented here:
// an Analyzer descriptor, a per-package Pass, diagnostics, a preorder
// walk, and the //elide:vet-ignore suppression directives (ignore.go).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis: a name (used in diagnostics and in
// //elide:vet-ignore directives), one-line documentation, and the Run
// function executed once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, anchored at a position. The driver fills
// Analyzer before printing so the output names the check that fired —
// both for the operator and for the vet-ignore machinery.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass carries one package's worth of inputs to an Analyzer.Run: the
// parsed files, the type information, and the Report callback that
// collects diagnostics. It is the single-package subset of
// analysis.Pass.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes
	Report     func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Preorder walks every file in the pass in depth-first preorder, calling
// fn for each node. Returning false from fn prunes the subtree.
func (p *Pass) Preorder(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// FuncBodies visits every top-level function body in the pass: declared
// functions and methods, plus function literals in package-level var
// initializers (the SDK's intrinsic tables live there). Literals nested
// inside another visited body are not visited separately — the outer
// walk already covers them, and closures must be analyzed with their
// captured scope.
func (p *Pass) FuncBodies(fn func(name string, decl ast.Node, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			switch dd := d.(type) {
			case *ast.FuncDecl:
				if dd.Body != nil {
					fn(dd.Name.Name, dd, dd.Body)
				}
			case *ast.GenDecl:
				ast.Inspect(dd, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						fn("func literal", fl, fl.Body)
						return false
					}
					return true
				})
			}
		}
	}
}

// Run executes each analyzer over the package described by the inputs,
// returning the collected diagnostics (analyzer name filled in). It is
// the common engine behind the unitchecker driver and the analysistest
// harness.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sizes types.Sizes) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: sizes,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return diags, nil
}
