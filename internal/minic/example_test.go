package minic_test

import (
	"fmt"
	"strings"

	"sgxelide/internal/minic"
)

// ExampleCompile shows the compiler's input and a slice of its output: C in,
// EVM assembly out, ready for internal/asm.
func ExampleCompile() {
	src := `
int add(int a, int b) { return a + b; }
`
	asmText, err := minic.Compile("add.c", src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, line := range strings.Split(asmText, "\n") {
		if strings.Contains(line, ".func") || strings.Contains(line, ".global") {
			fmt.Println(strings.TrimSpace(line))
		}
	}
	// Output:
	// .global add
	// .func add
}

// ExampleCompile_errors shows the positioned diagnostics.
func ExampleCompile_errors() {
	_, err := minic.Compile("oops.c", "int main(void) {\n  return missing;\n}")
	fmt.Println(err)
	// Output:
	// oops.c:2: undeclared identifier "missing"
}
