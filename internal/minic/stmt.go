package minic

// block parses { stmt* } with a fresh scope.
func (p *parser) block() *Node {
	line := p.tok().line
	p.expect("{")
	p.pushScope()
	n := &Node{Kind: NBlock, Line: line}
	for !p.accept("}") {
		if p.isTypeStart() {
			n.Stmts = append(n.Stmts, p.localDecl()...)
			continue
		}
		n.Stmts = append(n.Stmts, p.stmt())
	}
	p.popScope()
	return n
}

// localDecl parses one local declaration statement, lowering initializers to
// assignment statements.
func (p *parser) localDecl() []*Node {
	var fl declFlags
	base := p.declspec(&fl)
	var stmts []*Node
	first := true
	for !p.accept(";") {
		if !first {
			p.expect(",")
		}
		first = false
		line := p.tok().line
		ty, name := p.declarator(base)
		if fl.isTypedef {
			if name == "" {
				p.errAt(line, "typedef needs a name")
			}
			p.curScope().typedefs[name] = ty
			continue
		}
		if name == "" {
			p.errAt(line, "declaration needs a name")
		}
		if ty.Kind == TFunc {
			// Local function prototype.
			p.declareFunc(name, ty, line, false)
			continue
		}
		var init *Initializer
		if p.accept("=") {
			init = p.initializer(ty)
			if ty.Len == -1 {
				n := len(init.Children)
				if init.IsStr {
					n = len(init.Str) + 1
				}
				ty = arrayOf(ty.Elem, n)
				init.Type = ty
			}
		}
		if ty.Size < 0 {
			p.errAt(line, "local %q has incomplete type", name)
		}
		o := p.newLocal(name, ty, line)
		if init != nil {
			stmts = append(stmts, p.lowerLocalInit(o, init, line)...)
		}
	}
	if stmts == nil {
		stmts = []*Node{{Kind: NEmpty}}
	}
	return stmts
}

// newLocal registers a local variable in the current function and scope.
func (p *parser) newLocal(name string, ty *Type, line int) *Obj {
	if p.fn == nil {
		p.errAt(line, "local declaration outside function")
	}
	if _, exists := p.curScope().vars[name]; exists {
		p.errAt(line, "%q redeclared in this scope", name)
	}
	o := &Obj{Name: name, Type: ty, Line: line}
	p.fn.Locals = append(p.fn.Locals, o)
	p.curScope().vars[name] = o
	return o
}

// newTemp creates an anonymous local, used to desugar compound assignment
// without double-evaluating the lvalue.
func (p *parser) newTemp(ty *Type, line int) *Obj {
	p.tmpCount++
	o := &Obj{Name: "", Type: ty, Line: line}
	p.fn.Locals = append(p.fn.Locals, o)
	return o
}

// lowerLocalInit expands a local initializer into assignment statements,
// including zero stores for unspecified elements (C zero-fills partial
// aggregate initializers).
func (p *parser) lowerLocalInit(o *Obj, init *Initializer, line int) []*Node {
	var stmts []*Node
	target := &Node{Kind: NVar, Var: o, Type: o.Type, Line: line}
	p.lowerInitInto(&stmts, target, o.Type, init, line)
	return stmts
}

func (p *parser) lowerInitInto(stmts *[]*Node, target *Node, ty *Type, init *Initializer, line int) {
	switch ty.Kind {
	case TArray:
		if init != nil && init.IsStr {
			for i := 0; i < ty.Len; i++ {
				var b int64
				if i < len(init.Str) {
					b = int64(init.Str[i])
				}
				elem := p.indexNode(target, i, line)
				*stmts = append(*stmts, p.assignStmt(elem, &Node{Kind: NNum, Val: b, Type: typeInt, Line: line}, line))
			}
			return
		}
		for i := 0; i < ty.Len; i++ {
			var child *Initializer
			if init != nil && i < len(init.Children) {
				child = init.Children[i]
			}
			p.lowerInitInto(stmts, p.indexNode(target, i, line), ty.Elem, child, line)
		}
	case TStruct:
		for i := range ty.Fields {
			f := &ty.Fields[i]
			var child *Initializer
			if init != nil && i < len(init.Children) {
				child = init.Children[i]
			}
			member := &Node{Kind: NMember, Lhs: target, Field: f, Type: f.Type, Line: line}
			p.lowerInitInto(stmts, member, f.Type, child, line)
		}
	default:
		var val *Node
		if init != nil && init.Expr != nil {
			val = init.Expr
		} else {
			val = &Node{Kind: NNum, Val: 0, Type: typeInt, Line: line}
		}
		*stmts = append(*stmts, p.assignStmt(target, val, line))
	}
}

// indexNode builds target[i] as *(target + i).
func (p *parser) indexNode(target *Node, i int, line int) *Node {
	idx := &Node{Kind: NNum, Val: int64(i), Type: typeLong, Line: line}
	sum := p.newAdd(target, idx, line)
	return &Node{Kind: NDeref, Lhs: sum, Type: sum.Type.Elem, Line: line}
}

// assignStmt builds an expression statement lhs = rhs.
func (p *parser) assignStmt(lhs, rhs *Node, line int) *Node {
	as := p.newAssign(lhs, rhs, line)
	return &Node{Kind: NExprStmt, Lhs: as, Line: line}
}

// stmt parses one statement.
func (p *parser) stmt() *Node {
	line := p.tok().line
	switch {
	case p.peekIs("{"):
		return p.block()

	case p.accept(";"):
		return &Node{Kind: NEmpty, Line: line}

	case p.accept("if"):
		p.expect("(")
		cond := p.expr()
		p.expect(")")
		n := &Node{Kind: NIf, Line: line, Cond: p.scalarize(cond), Then: p.stmt()}
		if p.accept("else") {
			n.Else = p.stmt()
		}
		return n

	case p.accept("while"):
		p.expect("(")
		cond := p.expr()
		p.expect(")")
		return &Node{Kind: NWhile, Line: line, Cond: p.scalarize(cond), Then: p.stmt()}

	case p.accept("do"):
		body := p.stmt()
		p.expect("while")
		p.expect("(")
		cond := p.expr()
		p.expect(")")
		p.expect(";")
		return &Node{Kind: NDoWhile, Line: line, Cond: p.scalarize(cond), Then: body}

	case p.accept("for"):
		p.expect("(")
		p.pushScope()
		n := &Node{Kind: NFor, Line: line}
		if p.isTypeStart() {
			decls := p.localDecl() // consumes ';'
			n.Init = &Node{Kind: NBlock, Stmts: decls, Line: line}
		} else if !p.accept(";") {
			n.Init = &Node{Kind: NExprStmt, Lhs: p.expr(), Line: line}
			p.expect(";")
		}
		if !p.peekIs(";") {
			n.Cond = p.scalarize(p.expr())
		}
		p.expect(";")
		if !p.peekIs(")") {
			n.Post = &Node{Kind: NExprStmt, Lhs: p.expr(), Line: line}
		}
		p.expect(")")
		n.Then = p.stmt()
		p.popScope()
		return n

	case p.accept("switch"):
		p.expect("(")
		cond := p.expr()
		p.expect(")")
		n := &Node{Kind: NSwitch, Line: line, Cond: p.scalarize(cond)}
		p.switches = append(p.switches, n)
		n.Then = p.stmt()
		p.switches = p.switches[:len(p.switches)-1]
		return n

	case p.accept("case"):
		if len(p.switches) == 0 {
			p.errAt(line, "case outside switch")
		}
		v := p.evalConst(p.conditional())
		p.expect(":")
		n := &Node{Kind: NCase, Line: line, Val: v}
		sw := p.switches[len(p.switches)-1]
		sw.Cases = append(sw.Cases, n)
		// A case label is followed by its statement; wrap as marker + stmt.
		return &Node{Kind: NBlock, Line: line, Stmts: []*Node{n, p.stmt()}}

	case p.accept("default"):
		if len(p.switches) == 0 {
			p.errAt(line, "default outside switch")
		}
		p.expect(":")
		n := &Node{Kind: NCase, Line: line, IsDefault: true}
		sw := p.switches[len(p.switches)-1]
		sw.Cases = append(sw.Cases, n)
		return &Node{Kind: NBlock, Line: line, Stmts: []*Node{n, p.stmt()}}

	case p.accept("return"):
		n := &Node{Kind: NReturn, Line: line}
		if !p.peekIs(";") {
			ret := p.fn.Type.Ret
			if ret.Kind == TVoid {
				p.errAt(line, "void function returning a value")
			}
			n.Lhs = p.convert(p.expr(), ret, line)
		} else if p.fn.Type.Ret.Kind != TVoid {
			p.errAt(line, "non-void function %q returns no value", p.fn.Name)
		}
		p.expect(";")
		return n

	case p.accept("break"):
		p.expect(";")
		return &Node{Kind: NBreak, Line: line}

	case p.accept("continue"):
		p.expect(";")
		return &Node{Kind: NContinue, Line: line}

	default:
		n := &Node{Kind: NExprStmt, Lhs: p.expr(), Line: line}
		p.expect(";")
		return n
	}
}

// scalarize validates that n can be used as a condition and decays arrays.
func (p *parser) scalarize(n *Node) *Node {
	n = p.decayNode(n)
	if !n.Type.IsScalar() {
		p.errAt(n.Line, "condition must be scalar, got %s", n.Type)
	}
	return n
}
