package minic

import "fmt"

// expr parses a full expression (including the comma operator).
func (p *parser) expr() *Node {
	n := p.assign()
	for p.accept(",") {
		line := p.tok().line
		rhs := p.assign()
		n = &Node{Kind: NComma, Lhs: n, Rhs: rhs, Type: rhs.Type, Line: line}
	}
	return n
}

// assign parses assignment expressions.
func (p *parser) assign() *Node {
	lhs := p.conditional()
	line := p.tok().line
	switch {
	case p.accept("="):
		return p.newAssign(lhs, p.assign(), line)
	case p.accept("+="):
		return p.compound(lhs, "+", p.assign(), line)
	case p.accept("-="):
		return p.compound(lhs, "-", p.assign(), line)
	case p.accept("*="):
		return p.compound(lhs, "*", p.assign(), line)
	case p.accept("/="):
		return p.compound(lhs, "/", p.assign(), line)
	case p.accept("%="):
		return p.compound(lhs, "%", p.assign(), line)
	case p.accept("&="):
		return p.compound(lhs, "&", p.assign(), line)
	case p.accept("|="):
		return p.compound(lhs, "|", p.assign(), line)
	case p.accept("^="):
		return p.compound(lhs, "^", p.assign(), line)
	case p.accept("<<="):
		return p.compound(lhs, "<<", p.assign(), line)
	case p.accept(">>="):
		return p.compound(lhs, ">>", p.assign(), line)
	}
	return lhs
}

// newAssign builds lhs = rhs with conversion.
func (p *parser) newAssign(lhs, rhs *Node, line int) *Node {
	if !lhs.lvalue() {
		p.errAt(line, "assignment target is not an lvalue")
	}
	if lhs.Type.Kind == TArray {
		p.errAt(line, "cannot assign to an array")
	}
	if lhs.Type.Kind == TStruct {
		rhs = p.decayNode(rhs)
		if !equalType(lhs.Type, rhs.Type) {
			p.errAt(line, "cannot assign %s to %s", rhs.Type, lhs.Type)
		}
	} else {
		rhs = p.convert(rhs, lhs.Type, line)
	}
	return &Node{Kind: NAssign, Op: "=", Lhs: lhs, Rhs: rhs, Type: lhs.Type, Line: line}
}

// compound builds lhs op= rhs without double-evaluating lhs: for a simple
// variable it becomes lhs = lhs op rhs; otherwise the address is captured in
// a temporary: (tmp = &lhs, *tmp = *tmp op rhs).
func (p *parser) compound(lhs *Node, op string, rhs *Node, line int) *Node {
	if !lhs.lvalue() {
		p.errAt(line, "assignment target is not an lvalue")
	}
	if lhs.Kind == NVar {
		return p.newAssign(lhs, p.newBinary(op, lhs, rhs, line), line)
	}
	tmp := p.newTemp(pointerTo(lhs.Type), line)
	tmpRef := func() *Node { return &Node{Kind: NVar, Var: tmp, Type: tmp.Type, Line: line} }
	capture := &Node{
		Kind: NAssign, Op: "=", Lhs: tmpRef(),
		Rhs:  &Node{Kind: NAddr, Lhs: lhs, Type: tmp.Type, Line: line},
		Type: tmp.Type, Line: line,
	}
	deref := func() *Node { return &Node{Kind: NDeref, Lhs: tmpRef(), Type: lhs.Type, Line: line} }
	update := p.newAssign(deref(), p.newBinary(op, deref(), rhs, line), line)
	return &Node{Kind: NComma, Lhs: capture, Rhs: update, Type: lhs.Type, Line: line}
}

// conditional parses ternary expressions.
func (p *parser) conditional() *Node {
	cond := p.logOr()
	if !p.accept("?") {
		return cond
	}
	line := p.tok().line
	thenE := p.expr()
	p.expect(":")
	elseE := p.conditional()
	cond = p.scalarize(cond)
	thenE, elseE = p.decayNode(thenE), p.decayNode(elseE)
	var ty *Type
	switch {
	case thenE.Type.IsInteger() && elseE.Type.IsInteger():
		ty = usualArith(thenE.Type, elseE.Type)
		thenE = p.convert(thenE, ty, line)
		elseE = p.convert(elseE, ty, line)
	case equalType(thenE.Type, elseE.Type):
		ty = thenE.Type
	case thenE.Type.Kind == TPointer && elseE.Type.IsInteger():
		ty = thenE.Type // e.g. p ? p : 0
		elseE = p.convert(elseE, ty, line)
	case elseE.Type.Kind == TPointer && thenE.Type.IsInteger():
		ty = elseE.Type
		thenE = p.convert(thenE, ty, line)
	default:
		p.errAt(line, "incompatible ternary arms: %s vs %s", thenE.Type, elseE.Type)
	}
	return &Node{Kind: NCond, Cond: cond, Then: thenE, Else: elseE, Type: ty, Line: line}
}

func (p *parser) logOr() *Node {
	n := p.logAnd()
	for p.peekIs("||") {
		line := p.tok().line
		p.pos++
		rhs := p.logAnd()
		n = &Node{Kind: NLogOr, Lhs: p.scalarize(n), Rhs: p.scalarize(rhs), Type: typeInt, Line: line}
	}
	return n
}

func (p *parser) logAnd() *Node {
	n := p.bitOr()
	for p.peekIs("&&") {
		line := p.tok().line
		p.pos++
		rhs := p.bitOr()
		n = &Node{Kind: NLogAnd, Lhs: p.scalarize(n), Rhs: p.scalarize(rhs), Type: typeInt, Line: line}
	}
	return n
}

// binLevel builds one left-associative precedence level.
func (p *parser) binLevel(next func() *Node, ops ...string) *Node {
	n := next()
	for {
		matched := false
		for _, op := range ops {
			if p.peekIs(op) {
				line := p.tok().line
				p.pos++
				n = p.newBinary(op, n, next(), line)
				matched = true
				break
			}
		}
		if !matched {
			return n
		}
	}
}

func (p *parser) bitOr() *Node  { return p.binLevel(p.bitXor, "|") }
func (p *parser) bitXor() *Node { return p.binLevel(p.bitAnd, "^") }
func (p *parser) bitAnd() *Node { return p.binLevel(p.equality, "&") }
func (p *parser) equality() *Node {
	return p.binLevel(p.relational, "==", "!=")
}
func (p *parser) relational() *Node {
	return p.binLevel(p.shift, "<=", ">=", "<", ">")
}
func (p *parser) shift() *Node { return p.binLevel(p.additive, "<<", ">>") }
func (p *parser) additive() *Node {
	return p.binLevel(p.multiplicative, "+", "-")
}
func (p *parser) multiplicative() *Node {
	return p.binLevel(p.castExpr, "*", "/", "%")
}

// newBinary builds a typed binary expression.
func (p *parser) newBinary(op string, lhs, rhs *Node, line int) *Node {
	lhs, rhs = p.decayNode(lhs), p.decayNode(rhs)
	switch op {
	case "+":
		return p.newAdd(lhs, rhs, line)
	case "-":
		return p.newSub(lhs, rhs, line)
	case "*", "/", "%", "&", "|", "^":
		if !lhs.Type.IsInteger() || !rhs.Type.IsInteger() {
			p.errAt(line, "operator %q wants integers, got %s and %s", op, lhs.Type, rhs.Type)
		}
		ty := usualArith(lhs.Type, rhs.Type)
		return &Node{Kind: NBinary, Op: op,
			Lhs: p.convert(lhs, ty, line), Rhs: p.convert(rhs, ty, line), Type: ty, Line: line}
	case "<<", ">>":
		if !lhs.Type.IsInteger() || !rhs.Type.IsInteger() {
			p.errAt(line, "shift wants integers, got %s and %s", lhs.Type, rhs.Type)
		}
		ty := lhs.Type.promote()
		return &Node{Kind: NBinary, Op: op,
			Lhs: p.convert(lhs, ty, line), Rhs: p.convert(rhs, typeLong, line), Type: ty, Line: line}
	case "==", "!=", "<", ">", "<=", ">=":
		var common *Type
		switch {
		case lhs.Type.IsInteger() && rhs.Type.IsInteger():
			common = usualArith(lhs.Type, rhs.Type)
		case lhs.Type.Kind == TPointer && rhs.Type.Kind == TPointer:
			common = typeULong
		case lhs.Type.Kind == TPointer && rhs.Type.IsInteger():
			common = typeULong // p == 0
		case rhs.Type.Kind == TPointer && lhs.Type.IsInteger():
			common = typeULong
		default:
			p.errAt(line, "cannot compare %s and %s", lhs.Type, rhs.Type)
		}
		n := &Node{Kind: NBinary, Op: op, Type: typeInt, Line: line, CommonType: common}
		n.Lhs = p.convertForCompare(lhs, common, line)
		n.Rhs = p.convertForCompare(rhs, common, line)
		return n
	}
	p.errAt(line, "unknown operator %q", op)
	return nil
}

// convertForCompare converts comparison operands; pointers pass through.
func (p *parser) convertForCompare(n *Node, common *Type, line int) *Node {
	if n.Type.Kind == TPointer {
		return n
	}
	return p.convert(n, common, line)
}

// newAdd builds lhs + rhs with pointer arithmetic.
func (p *parser) newAdd(lhs, rhs *Node, line int) *Node {
	lhs, rhs = p.decayNode(lhs), p.decayNode(rhs)
	if lhs.Type.IsInteger() && rhs.Type.IsInteger() {
		ty := usualArith(lhs.Type, rhs.Type)
		return &Node{Kind: NBinary, Op: "+",
			Lhs: p.convert(lhs, ty, line), Rhs: p.convert(rhs, ty, line), Type: ty, Line: line}
	}
	if rhs.Type.Kind == TPointer && lhs.Type.IsInteger() {
		lhs, rhs = rhs, lhs
	}
	if lhs.Type.Kind == TPointer && rhs.Type.IsInteger() {
		if lhs.Type.Elem.Size <= 0 {
			p.errAt(line, "arithmetic on pointer to incomplete type %s", lhs.Type.Elem)
		}
		scaled := p.scaleBy(rhs, lhs.Type.Elem.Size, line)
		return &Node{Kind: NBinary, Op: "+", Lhs: lhs, Rhs: scaled, Type: lhs.Type, Line: line}
	}
	p.errAt(line, "invalid operands to +: %s and %s", lhs.Type, rhs.Type)
	return nil
}

// newSub builds lhs - rhs with pointer arithmetic.
func (p *parser) newSub(lhs, rhs *Node, line int) *Node {
	lhs, rhs = p.decayNode(lhs), p.decayNode(rhs)
	switch {
	case lhs.Type.IsInteger() && rhs.Type.IsInteger():
		ty := usualArith(lhs.Type, rhs.Type)
		return &Node{Kind: NBinary, Op: "-",
			Lhs: p.convert(lhs, ty, line), Rhs: p.convert(rhs, ty, line), Type: ty, Line: line}
	case lhs.Type.Kind == TPointer && rhs.Type.IsInteger():
		scaled := p.scaleBy(rhs, lhs.Type.Elem.Size, line)
		return &Node{Kind: NBinary, Op: "-", Lhs: lhs, Rhs: scaled, Type: lhs.Type, Line: line}
	case lhs.Type.Kind == TPointer && rhs.Type.Kind == TPointer:
		diff := &Node{Kind: NBinary, Op: "-", Lhs: lhs, Rhs: rhs, Type: typeLong, Line: line}
		size := &Node{Kind: NNum, Val: int64(lhs.Type.Elem.Size), Type: typeLong, Line: line}
		return &Node{Kind: NBinary, Op: "/", Lhs: diff, Rhs: size, Type: typeLong, Line: line}
	}
	p.errAt(line, "invalid operands to -: %s and %s", lhs.Type, rhs.Type)
	return nil
}

// scaleBy multiplies an index expression by an element size.
func (p *parser) scaleBy(n *Node, size, line int) *Node {
	n = p.convert(n, typeLong, line)
	if size == 1 {
		return n
	}
	sz := &Node{Kind: NNum, Val: int64(size), Type: typeLong, Line: line}
	return &Node{Kind: NBinary, Op: "*", Lhs: n, Rhs: sz, Type: typeLong, Line: line}
}

// castExpr parses (type)expr or a unary expression.
func (p *parser) castExpr() *Node {
	if p.peekIs("(") && p.typeStartsAt(p.pos+1) {
		line := p.tok().line
		p.expect("(")
		ty := p.typeName()
		p.expect(")")
		inner := p.castExpr()
		inner = p.decayNode(inner)
		if ty.Kind == TVoid {
			return &Node{Kind: NCast, Lhs: inner, Type: typeVoid, Line: line}
		}
		if !ty.IsScalar() {
			p.errAt(line, "cannot cast to %s", ty)
		}
		if !inner.Type.IsScalar() {
			p.errAt(line, "cannot cast from %s", inner.Type)
		}
		return &Node{Kind: NCast, Lhs: inner, Type: ty, Line: line}
	}
	return p.unary()
}

// typeStartsAt reports whether the token at index i begins a type name.
func (p *parser) typeStartsAt(i int) bool {
	t := p.toks[i]
	if t.kind == tkKeyword {
		switch t.text {
		case "void", "char", "short", "int", "long", "signed", "unsigned", "struct", "enum", "const":
			return true
		}
		return false
	}
	return t.kind == tkIdent && p.lookupTypedef(t.text) != nil
}

// typeName parses an abstract type name (for casts and sizeof).
func (p *parser) typeName() *Type {
	var fl declFlags
	ty := p.declspec(&fl)
	for p.accept("*") {
		ty = pointerTo(ty)
	}
	// Abstract array suffixes (rare in casts; supported for sizeof).
	ty = p.typeSuffix(ty)
	return ty
}

// unary parses unary expressions.
func (p *parser) unary() *Node {
	line := p.tok().line
	switch {
	case p.accept("+"):
		n := p.castExpr()
		n = p.decayNode(n)
		if !n.Type.IsInteger() {
			p.errAt(line, "unary + wants an integer")
		}
		return p.convert(n, n.Type.promote(), line)
	case p.accept("-"):
		n := p.decayNode(p.castExpr())
		if !n.Type.IsInteger() {
			p.errAt(line, "unary - wants an integer")
		}
		ty := n.Type.promote()
		return &Node{Kind: NUnary, Op: "-", Lhs: p.convert(n, ty, line), Type: ty, Line: line}
	case p.accept("~"):
		n := p.decayNode(p.castExpr())
		if !n.Type.IsInteger() {
			p.errAt(line, "~ wants an integer")
		}
		ty := n.Type.promote()
		return &Node{Kind: NUnary, Op: "~", Lhs: p.convert(n, ty, line), Type: ty, Line: line}
	case p.accept("!"):
		n := p.scalarize(p.castExpr())
		return &Node{Kind: NUnary, Op: "!", Lhs: n, Type: typeInt, Line: line}
	case p.accept("*"):
		n := p.decayNode(p.castExpr())
		if n.Type.Kind != TPointer {
			p.errAt(line, "cannot dereference %s", n.Type)
		}
		if n.Type.Elem.Kind == TVoid {
			p.errAt(line, "cannot dereference void*")
		}
		return &Node{Kind: NDeref, Lhs: n, Type: n.Type.Elem, Line: line}
	case p.accept("&"):
		n := p.castExpr()
		if !n.lvalue() {
			p.errAt(line, "cannot take the address of this expression")
		}
		return &Node{Kind: NAddr, Lhs: n, Type: pointerTo(n.Type), Line: line}
	case p.accept("++"):
		n := p.unary()
		return p.compound(n, "+", &Node{Kind: NNum, Val: 1, Type: typeInt, Line: line}, line)
	case p.accept("--"):
		n := p.unary()
		return p.compound(n, "-", &Node{Kind: NNum, Val: 1, Type: typeInt, Line: line}, line)
	case p.accept("sizeof"):
		if p.peekIs("(") && p.typeStartsAt(p.pos+1) {
			p.expect("(")
			ty := p.typeName()
			p.expect(")")
			if ty.Size < 0 {
				p.errAt(line, "sizeof incomplete type %s", ty)
			}
			return &Node{Kind: NNum, Val: int64(ty.Size), Type: typeULong, Line: line}
		}
		n := p.unary()
		if n.Type.Size < 0 {
			p.errAt(line, "sizeof incomplete type %s", n.Type)
		}
		return &Node{Kind: NNum, Val: int64(n.Type.Size), Type: typeULong, Line: line}
	}
	return p.postfix()
}

// postfix parses postfix expressions.
func (p *parser) postfix() *Node {
	n := p.primary()
	for {
		line := p.tok().line
		switch {
		case p.accept("["):
			idx := p.expr()
			p.expect("]")
			sum := p.newAdd(n, idx, line)
			if sum.Type.Kind != TPointer {
				p.errAt(line, "subscripted value is not an array or pointer")
			}
			n = &Node{Kind: NDeref, Lhs: sum, Type: sum.Type.Elem, Line: line}
		case p.accept("."):
			name := p.ident()
			n = p.member(n, name, line)
		case p.accept("->"):
			name := p.ident()
			inner := p.decayNode(n)
			if inner.Type.Kind != TPointer || inner.Type.Elem.Kind != TStruct {
				p.errAt(line, "-> on non-struct-pointer %s", inner.Type)
			}
			deref := &Node{Kind: NDeref, Lhs: inner, Type: inner.Type.Elem, Line: line}
			n = p.member(deref, name, line)
		case p.accept("++"):
			n = p.postIncDec(n, 1, line)
		case p.accept("--"):
			n = p.postIncDec(n, -1, line)
		default:
			return n
		}
	}
}

// member builds n.name.
func (p *parser) member(n *Node, name string, line int) *Node {
	if n.Type.Kind != TStruct {
		p.errAt(line, ". on non-struct %s", n.Type)
	}
	if n.Type.Size < 0 {
		p.errAt(line, "member access on incomplete struct %s", n.Type)
	}
	f := n.Type.field(name)
	if f == nil {
		p.errAt(line, "%s has no field %q", n.Type, name)
	}
	return &Node{Kind: NMember, Lhs: n, Field: f, Type: f.Type, Line: line}
}

// postIncDec builds n++ / n--.
func (p *parser) postIncDec(n *Node, delta int64, line int) *Node {
	if !n.lvalue() {
		p.errAt(line, "%s is not an lvalue", n.Type)
	}
	step := delta
	switch {
	case n.Type.IsInteger():
	case n.Type.Kind == TPointer:
		step = delta * int64(n.Type.Elem.Size)
	default:
		p.errAt(line, "cannot increment %s", n.Type)
	}
	return &Node{Kind: NPostInc, Lhs: n, Val: step, Type: n.Type, Line: line}
}

// primary parses primary expressions.
func (p *parser) primary() *Node {
	t := p.tok()
	line := t.line
	switch t.kind {
	case tkNumber:
		p.pos++
		return &Node{Kind: NNum, Val: t.num, Type: literalType(t.num, t.suffix, t.hex), Line: line}
	case tkString:
		p.pos++
		label := fmt.Sprintf(".Lstr%d", p.strCount)
		p.strCount++
		p.unit.Strings[label] = t.str
		return &Node{Kind: NStr, StrLabel: label, Type: arrayOf(typeChar, len(t.str)+1), Line: line}
	case tkPunct:
		if t.text == "(" {
			p.pos++
			n := p.expr()
			p.expect(")")
			return n
		}
	case tkIdent:
		name := t.text
		// Function call?
		if p.toks[p.pos+1].kind == tkPunct && p.toks[p.pos+1].text == "(" {
			p.pos += 2
			return p.call(name, line)
		}
		p.pos++
		if v, ok := p.lookupEnum(name); ok {
			return &Node{Kind: NNum, Val: v, Type: typeInt, Line: line}
		}
		o := p.lookupVar(name)
		if o == nil {
			p.errAt(line, "undeclared identifier %q", name)
		}
		if o.IsFunc {
			p.errAt(line, "function %q used as a value (function pointers are not supported)", name)
		}
		return &Node{Kind: NVar, Var: o, Type: o.Type, Line: line}
	}
	p.errf("expected expression, got %q", p.describe())
	return nil
}

// call parses the arguments of name(...) and types the call.
func (p *parser) call(name string, line int) *Node {
	o := p.lookupVar(name)
	if o == nil {
		p.errAt(line, "call to undeclared function %q", name)
	}
	if !o.IsFunc {
		p.errAt(line, "%q is not a function", name)
	}
	ft := o.Type
	var args []*Node
	for !p.accept(")") {
		if len(args) > 0 {
			p.expect(",")
		}
		args = append(args, p.assign())
	}
	if len(args) < len(ft.Params) {
		p.errAt(line, "too few arguments to %q: got %d, want %d", name, len(args), len(ft.Params))
	}
	if len(args) > len(ft.Params) && !ft.Variadic {
		p.errAt(line, "too many arguments to %q: got %d, want %d", name, len(args), len(ft.Params))
	}
	for i := range args {
		if i < len(ft.Params) {
			args[i] = p.convert(args[i], ft.Params[i], line)
		} else {
			a := p.decayNode(args[i])
			if a.Type.IsInteger() {
				a = p.convert(a, a.Type.promote(), line)
			}
			args[i] = a
		}
	}
	return &Node{Kind: NCall, FuncName: name, FuncType: ft, Args: args, Type: ft.Ret, Line: line}
}

// literalType picks the type of an integer literal following C11's rules
// for our type set: the suffix sets a floor, then the first type in the
// ladder that can represent the value wins. Decimal literals without a U
// suffix never become unsigned; hex/octal literals may.
func literalType(v int64, suffix string, hexOrOctal bool) *Type {
	fitsInt := v >= 0 && v < 1<<31
	fitsUInt := v >= 0 && v < 1<<32
	switch suffix {
	case "U":
		if fitsUInt {
			return typeUInt
		}
		return typeULong
	case "L":
		return typeLong // values above int64 max cannot be written in our grammar
	case "UL":
		return typeULong
	}
	switch {
	case fitsInt:
		return typeInt
	case fitsUInt && hexOrOctal:
		return typeUInt
	default:
		return typeLong
	}
}

// decayNode converts array-typed expressions to pointers to their first
// element (implemented as a cast node; codegen takes the address).
func (p *parser) decayNode(n *Node) *Node {
	if n.Type != nil && n.Type.Kind == TArray {
		return &Node{Kind: NCast, Lhs: n, Type: pointerTo(n.Type.Elem), Line: n.Line}
	}
	return n
}

// convert coerces n to type to, inserting a cast node when needed.
func (p *parser) convert(n *Node, to *Type, line int) *Node {
	n = p.decayNode(n)
	if equalType(n.Type, to) {
		return n
	}
	if !n.Type.IsScalar() || !to.IsScalar() {
		p.errAt(line, "cannot convert %s to %s", n.Type, to)
	}
	// Fold numeric literals immediately for cleaner code and constant
	// expressions.
	if n.Kind == NNum && to.IsInteger() {
		return &Node{Kind: NNum, Val: truncateTo(n.Val, to), Type: to, Line: n.Line}
	}
	return &Node{Kind: NCast, Lhs: n, Type: to, Line: line}
}

// truncateTo wraps v to the width and signedness of ty.
func truncateTo(v int64, ty *Type) int64 {
	switch ty.Size {
	case 1:
		if ty.Unsigned {
			return int64(uint8(v))
		}
		return int64(int8(v))
	case 2:
		if ty.Unsigned {
			return int64(uint16(v))
		}
		return int64(int16(v))
	case 4:
		if ty.Unsigned {
			return int64(uint32(v))
		}
		return int64(int32(v))
	default:
		return v
	}
}

// evalConst evaluates a constant expression or fails.
func (p *parser) evalConst(n *Node) int64 {
	v, ok := constValue(n)
	if !ok {
		p.errAt(n.Line, "expression is not constant")
	}
	return v
}

// constValue attempts constant folding.
func constValue(n *Node) (int64, bool) {
	switch n.Kind {
	case NNum:
		return n.Val, true
	case NCast:
		v, ok := constValue(n.Lhs)
		if !ok || !n.Type.IsInteger() {
			return 0, false
		}
		return truncateTo(v, n.Type), true
	case NUnary:
		v, ok := constValue(n.Lhs)
		if !ok {
			return 0, false
		}
		switch n.Op {
		case "-":
			return truncateTo(-v, n.Type), true
		case "~":
			return truncateTo(^v, n.Type), true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case NCond:
		c, ok := constValue(n.Cond)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return constValue(n.Then)
		}
		return constValue(n.Else)
	case NLogAnd:
		a, ok := constValue(n.Lhs)
		if !ok {
			return 0, false
		}
		if a == 0 {
			return 0, true
		}
		b, ok := constValue(n.Rhs)
		if !ok {
			return 0, false
		}
		if b != 0 {
			return 1, true
		}
		return 0, true
	case NLogOr:
		a, ok := constValue(n.Lhs)
		if !ok {
			return 0, false
		}
		if a != 0 {
			return 1, true
		}
		b, ok := constValue(n.Rhs)
		if !ok {
			return 0, false
		}
		if b != 0 {
			return 1, true
		}
		return 0, true
	case NBinary:
		a, ok := constValue(n.Lhs)
		if !ok {
			return 0, false
		}
		b, ok := constValue(n.Rhs)
		if !ok {
			return 0, false
		}
		ty := n.Type
		unsigned := ty.IsInteger() && ty.Unsigned
		switch n.Op {
		case "+":
			return truncateTo(a+b, ty), true
		case "-":
			return truncateTo(a-b, ty), true
		case "*":
			return truncateTo(a*b, ty), true
		case "/":
			if b == 0 {
				return 0, false
			}
			if unsigned {
				return truncateTo(int64(uint64(a)/uint64(b)), ty), true
			}
			return truncateTo(a/b, ty), true
		case "%":
			if b == 0 {
				return 0, false
			}
			if unsigned {
				return truncateTo(int64(uint64(a)%uint64(b)), ty), true
			}
			return truncateTo(a%b, ty), true
		case "&":
			return truncateTo(a&b, ty), true
		case "|":
			return truncateTo(a|b, ty), true
		case "^":
			return truncateTo(a^b, ty), true
		case "<<":
			return truncateTo(a<<(uint64(b)&63), ty), true
		case ">>":
			if unsigned {
				return truncateTo(int64(uint64(a)>>(uint64(b)&63)), ty), true
			}
			return truncateTo(a>>(uint64(b)&63), ty), true
		case "==", "!=", "<", ">", "<=", ">=":
			cu := n.CommonType != nil && n.CommonType.Unsigned
			var r bool
			switch n.Op {
			case "==":
				r = a == b
			case "!=":
				r = a != b
			case "<":
				if cu {
					r = uint64(a) < uint64(b)
				} else {
					r = a < b
				}
			case ">":
				if cu {
					r = uint64(a) > uint64(b)
				} else {
					r = a > b
				}
			case "<=":
				if cu {
					r = uint64(a) <= uint64(b)
				} else {
					r = a <= b
				}
			case ">=":
				if cu {
					r = uint64(a) >= uint64(b)
				} else {
					r = a >= b
				}
			}
			if r {
				return 1, true
			}
			return 0, true
		}
	}
	return 0, false
}
