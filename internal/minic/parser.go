package minic

import "fmt"

// parser builds a typed AST from the token stream. Parse errors are raised
// by panicking with *Error and recovered in Parse.
type parser struct {
	file string
	toks []token
	pos  int

	unit     *Unit
	scopes   []*scope
	fn       *Obj // current function, nil at file scope
	strCount int
	tmpCount int
	switches []*Node

	// lastParamNames holds parameter names from the most recent funcParams
	// call, consumed by funcDef.
	lastParamNames []string
}

// scope is one lexical scope level.
type scope struct {
	vars     map[string]*Obj
	typedefs map[string]*Type
	tags     map[string]*Type // struct tags
	enums    map[string]int64
}

func newScope() *scope {
	return &scope{
		vars:     make(map[string]*Obj),
		typedefs: make(map[string]*Type),
		tags:     make(map[string]*Type),
		enums:    make(map[string]int64),
	}
}

// Parse parses one translation unit.
func Parse(file, src string) (u *Unit, err error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		file: file,
		toks: toks,
		unit: &Unit{File: file, Strings: make(map[string]string)},
	}
	p.pushScope()
	for name, t := range builtinTypedefs {
		p.scopes[0].typedefs[name] = t
	}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(*Error); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	for !p.atEOF() {
		p.topLevel()
	}
	return p.unit, nil
}

// --- token helpers ---

func (p *parser) tok() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.tok().kind == tkEOF }

func (p *parser) errf(format string, args ...interface{}) {
	panic(&Error{File: p.file, Line: p.tok().line, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) errAt(line int, format string, args ...interface{}) {
	panic(&Error{File: p.file, Line: line, Msg: fmt.Sprintf(format, args...)})
}

// peekIs reports whether the current token is punctuator or keyword s.
func (p *parser) peekIs(s string) bool {
	t := p.tok()
	return (t.kind == tkPunct || t.kind == tkKeyword) && t.text == s
}

// accept consumes s if present.
func (p *parser) accept(s string) bool {
	if p.peekIs(s) {
		p.pos++
		return true
	}
	return false
}

// expect consumes s or fails.
func (p *parser) expect(s string) {
	if !p.accept(s) {
		p.errf("expected %q, got %q", s, p.describe())
	}
}

func (p *parser) describe() string {
	t := p.tok()
	switch t.kind {
	case tkEOF:
		return "end of file"
	case tkNumber:
		return fmt.Sprintf("%d", t.num)
	case tkString:
		return fmt.Sprintf("%q", t.str)
	default:
		return t.text
	}
}

// ident consumes and returns an identifier.
func (p *parser) ident() string {
	t := p.tok()
	if t.kind != tkIdent {
		p.errf("expected identifier, got %q", p.describe())
	}
	p.pos++
	return t.text
}

// --- scopes ---

func (p *parser) pushScope() { p.scopes = append(p.scopes, newScope()) }
func (p *parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *parser) lookupVar(name string) *Obj {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if o, ok := p.scopes[i].vars[name]; ok {
			return o
		}
	}
	return nil
}

func (p *parser) lookupTypedef(name string) *Type {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if t, ok := p.scopes[i].typedefs[name]; ok {
			return t
		}
	}
	return nil
}

func (p *parser) lookupTag(name string) *Type {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if t, ok := p.scopes[i].tags[name]; ok {
			return t
		}
	}
	return nil
}

func (p *parser) lookupEnum(name string) (int64, bool) {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if v, ok := p.scopes[i].enums[name]; ok {
			return v, true
		}
	}
	return 0, false
}

func (p *parser) curScope() *scope { return p.scopes[len(p.scopes)-1] }

// --- declarations ---

// declFlags carries storage-class and qualifier info from declspec.
type declFlags struct {
	isTypedef bool
	isExtern  bool
	isStatic  bool
	isConst   bool
}

// isTypeStart reports whether the current token can begin a declaration
// specifier.
func (p *parser) isTypeStart() bool {
	t := p.tok()
	if t.kind == tkKeyword {
		switch t.text {
		case "void", "char", "short", "int", "long", "signed", "unsigned",
			"struct", "enum", "typedef", "const", "static", "extern":
			return true
		}
		return false
	}
	return t.kind == tkIdent && p.lookupTypedef(t.text) != nil
}

// declspec parses declaration specifiers and returns the base type.
func (p *parser) declspec(fl *declFlags) *Type {
	var (
		base     *Type
		sawInt   bool
		short    bool
		long     int
		signed   bool
		unsigned bool
		sawChar  bool
	)
	for {
		t := p.tok()
		if t.kind == tkKeyword {
			switch t.text {
			case "typedef":
				fl.isTypedef = true
				p.pos++
				continue
			case "extern":
				fl.isExtern = true
				p.pos++
				continue
			case "static":
				fl.isStatic = true
				p.pos++
				continue
			case "const":
				fl.isConst = true
				p.pos++
				continue
			case "void":
				base = typeVoid
				p.pos++
				continue
			case "char":
				sawChar = true
				p.pos++
				continue
			case "short":
				short = true
				p.pos++
				continue
			case "int":
				sawInt = true
				p.pos++
				continue
			case "long":
				long++
				p.pos++
				continue
			case "signed":
				signed = true
				p.pos++
				continue
			case "unsigned":
				unsigned = true
				p.pos++
				continue
			case "struct":
				p.pos++
				base = p.structDecl()
				continue
			case "enum":
				p.pos++
				base = p.enumDecl()
				continue
			}
		}
		if t.kind == tkIdent && base == nil && !sawChar && !short && !sawInt && long == 0 {
			if td := p.lookupTypedef(t.text); td != nil {
				// Only take the typedef if it is not the declared name
				// (e.g. "typedef int foo; foo foo;" is out of scope here).
				base = td
				p.pos++
				continue
			}
		}
		break
	}
	if base != nil {
		if unsigned && base.Kind == TInt {
			u := *base
			u.Unsigned = true
			return &u
		}
		return base
	}
	switch {
	case sawChar:
		if unsigned {
			return typeUChar
		}
		return typeChar
	case short:
		if unsigned {
			return typeUShort
		}
		return typeUShort2(unsigned)
	case long > 0:
		if unsigned {
			return typeULong
		}
		return typeLong
	case sawInt || signed || unsigned:
		if unsigned {
			return typeUInt
		}
		return typeInt
	}
	p.errf("expected type, got %q", p.describe())
	return nil
}

// typeUShort2 exists to keep short handling symmetrical.
func typeUShort2(unsigned bool) *Type {
	if unsigned {
		return typeUShort
	}
	return typeShort
}

// structDecl parses struct Tag? { fields }? .
func (p *parser) structDecl() *Type {
	var tag string
	if p.tok().kind == tkIdent {
		tag = p.ident()
	}
	if !p.peekIs("{") {
		if tag == "" {
			p.errf("anonymous struct needs a body")
		}
		if t := p.lookupTag(tag); t != nil {
			return t
		}
		// Forward declaration: incomplete struct, usable through pointers.
		t := &Type{Kind: TStruct, StructName: tag, Size: -1, Align: 1}
		p.curScope().tags[tag] = t
		return t
	}
	p.expect("{")
	st := &Type{Kind: TStruct, StructName: tag, Align: 1}
	if tag != "" {
		if prev := p.lookupTag(tag); prev != nil && prev.Size == -1 {
			st = prev // complete the forward declaration in place
			st.Align = 1
		}
		p.curScope().tags[tag] = st
	}
	offset := 0
	for !p.accept("}") {
		var fl declFlags
		base := p.declspec(&fl)
		first := true
		for !p.accept(";") {
			if !first {
				p.expect(",")
			}
			first = false
			ty, name := p.declarator(base)
			if name == "" {
				p.errf("struct field needs a name")
			}
			if ty.Size <= 0 && ty.Kind != TInt {
				p.errf("field %q has incomplete type", name)
			}
			offset = alignUp(offset, ty.Align)
			st.Fields = append(st.Fields, Field{Name: name, Type: ty, Offset: offset})
			offset += ty.Size
			if ty.Align > st.Align {
				st.Align = ty.Align
			}
		}
	}
	st.Size = alignUp(offset, st.Align)
	return st
}

// enumDecl parses enum Tag? { A, B = expr, ... }? .
func (p *parser) enumDecl() *Type {
	if p.tok().kind == tkIdent {
		p.ident() // tag, unused beyond syntax
	}
	if !p.peekIs("{") {
		return typeInt
	}
	p.expect("{")
	next := int64(0)
	for !p.accept("}") {
		name := p.ident()
		if p.accept("=") {
			e := p.conditional()
			next = p.evalConst(e)
		}
		p.curScope().enums[name] = next
		next++
		if !p.peekIs("}") {
			p.expect(",")
		}
	}
	return typeInt
}

// declarator parses pointers, a (possibly absent) name, and array/function
// suffixes, returning the full type and the name.
func (p *parser) declarator(base *Type) (*Type, string) {
	ty := base
	for p.accept("*") {
		ty = pointerTo(ty)
		for p.accept("const") {
		}
	}
	name := ""
	if p.tok().kind == tkIdent {
		name = p.ident()
	} else if p.peekIs("(") {
		p.errf("parenthesized declarators (function pointers) are not supported")
	}
	return p.typeSuffix(ty), name
}

// typeSuffix parses array dimensions or a function parameter list.
func (p *parser) typeSuffix(ty *Type) *Type {
	if p.accept("(") {
		return p.funcParams(ty)
	}
	if p.accept("[") {
		if p.accept("]") {
			// Incomplete array: only valid with an initializer or as a
			// parameter (decays to pointer). Mark Len -1.
			inner := p.typeSuffix(ty)
			return &Type{Kind: TArray, Size: -1, Align: inner.Align, Elem: inner, Len: -1}
		}
		e := p.conditional()
		n := p.evalConst(e)
		p.expect("]")
		if n < 0 {
			p.errf("negative array size")
		}
		inner := p.typeSuffix(ty)
		if inner.Size < 0 {
			p.errf("array of incomplete type")
		}
		return arrayOf(inner, int(n))
	}
	return ty
}

// funcParams parses a parameter list after '('. The returned type is a
// TFunc; parameter names are stashed via paramNames.
func (p *parser) funcParams(ret *Type) *Type {
	fn := &Type{Kind: TFunc, Ret: ret}
	p.lastParamNames = nil
	if p.accept(")") {
		return fn
	}
	if p.peekIs("void") && p.toks[p.pos+1].kind == tkPunct && p.toks[p.pos+1].text == ")" {
		p.pos += 2
		return fn
	}
	for {
		if p.accept("...") {
			fn.Variadic = true
			p.expect(")")
			return fn
		}
		var fl declFlags
		base := p.declspec(&fl)
		ty, name := p.declarator(base)
		// Arrays decay to pointers in parameter position.
		if ty.Kind == TArray {
			ty = pointerTo(ty.Elem)
		}
		fn.Params = append(fn.Params, ty)
		p.lastParamNames = append(p.lastParamNames, name)
		if p.accept(")") {
			return fn
		}
		p.expect(",")
	}
}

// topLevel parses one top-level declaration.
func (p *parser) topLevel() {
	var fl declFlags
	base := p.declspec(&fl)

	// "struct S;" / "enum {...};" style declarations.
	if p.accept(";") {
		return
	}

	first := true
	for {
		if !first {
			p.expect(",")
		}
		first = false
		line := p.tok().line
		ty, name := p.declarator(base)
		if name == "" {
			p.errf("declaration needs a name")
		}
		if fl.isTypedef {
			p.curScope().typedefs[name] = ty
			p.expect(";")
			return
		}
		if ty.Kind == TFunc {
			if p.peekIs("{") {
				o := p.funcDef(name, ty, line)
				if fl.isStatic {
					o.IsStatic = true
				}
				return
			}
			o := p.declareFunc(name, ty, line, false)
			if fl.isStatic {
				o.IsStatic = true
			}
			if p.accept(";") {
				return
			}
			continue
		}
		p.globalVar(name, ty, fl, line)
		if p.accept(";") {
			return
		}
	}
}

// lastParamNames holds the names from the most recent funcParams call.
// (Field on parser; declared here for proximity.)

// declareFunc records a function prototype (or definition shell).
func (p *parser) declareFunc(name string, ty *Type, line int, def bool) *Obj {
	if prev := p.lookupVar(name); prev != nil {
		if !prev.IsFunc {
			p.errAt(line, "%q redeclared as function", name)
		}
		if !equalType(prev.Type, ty) {
			p.errAt(line, "conflicting declarations of %q", name)
		}
		if def && prev.IsDef {
			p.errAt(line, "function %q redefined", name)
		}
		if def {
			prev.IsDef = true
		}
		return prev
	}
	o := &Obj{Name: name, Type: ty, Line: line, IsGlobal: true, IsFunc: true, IsDef: def}
	p.scopes[0].vars[name] = o
	p.unit.Globals = append(p.unit.Globals, o)
	return o
}

// funcDef parses a function body.
func (p *parser) funcDef(name string, ty *Type, line int) *Obj {
	o := p.declareFunc(name, ty, line, true)
	if len(ty.Params) > 0 && len(p.lastParamNames) != len(ty.Params) {
		p.errAt(line, "internal: parameter name bookkeeping")
	}
	p.fn = o
	o.Params = nil
	o.Locals = nil
	p.pushScope()
	for i, pt := range ty.Params {
		pn := p.lastParamNames[i]
		if pn == "" {
			p.errAt(line, "parameter %d of %q needs a name", i+1, name)
		}
		po := &Obj{Name: pn, Type: pt, Line: line}
		o.Params = append(o.Params, po)
		o.Locals = append(o.Locals, po)
		p.curScope().vars[pn] = po
	}
	o.Body = p.block()
	p.popScope()
	p.fn = nil
	return o
}

// globalVar parses a global variable declaration (with optional initializer).
func (p *parser) globalVar(name string, ty *Type, fl declFlags, line int) {
	o := &Obj{
		Name: name, Type: ty, Line: line,
		IsGlobal: true, IsConst: fl.isConst, IsStatic: fl.isStatic, IsDef: !fl.isExtern,
	}
	if p.accept("=") {
		o.Init = p.initializer(ty)
		if ty.Len == -1 { // complete incomplete arrays from the initializer
			n := len(o.Init.Children)
			if o.Init.IsStr {
				n = len(o.Init.Str) + 1
			}
			*o.Type = *arrayOf(ty.Elem, n)
		}
		o.Init.Type = o.Type
		o.IsDef = true
	}
	if o.Type.Size < 0 {
		p.errAt(line, "global %q has incomplete type", name)
	}
	if prev := p.lookupVar(name); prev != nil {
		if prev.IsFunc || !equalType(prev.Type, o.Type) {
			p.errAt(line, "conflicting declarations of %q", name)
		}
		if o.Init != nil {
			if prev.Init != nil {
				p.errAt(line, "global %q redefined", name)
			}
			prev.Init = o.Init
			prev.IsDef = true
		}
		return
	}
	p.scopes[0].vars[name] = o
	p.unit.Globals = append(p.unit.Globals, o)
}

// initializer parses an initializer for type ty.
func (p *parser) initializer(ty *Type) *Initializer {
	init := &Initializer{Type: ty}
	switch ty.Kind {
	case TArray:
		if p.tok().kind == tkString && ty.Elem.Kind == TInt && ty.Elem.Size == 1 {
			init.IsStr = true
			init.Str = p.tok().str
			p.pos++
			// C permits dropping the NUL when the string exactly fills the
			// array (char s[4] = "wxyz").
			if ty.Len >= 0 && len(init.Str) > ty.Len {
				p.errf("string initializer too long")
			}
			return init
		}
		p.expect("{")
		for !p.accept("}") {
			init.Children = append(init.Children, p.initializer(ty.Elem))
			if !p.peekIs("}") {
				p.expect(",")
			}
		}
		if ty.Len >= 0 && len(init.Children) > ty.Len {
			p.errf("too many initializers (%d for array of %d)", len(init.Children), ty.Len)
		}
		return init
	case TStruct:
		p.expect("{")
		for !p.accept("}") {
			if len(init.Children) >= len(ty.Fields) {
				p.errf("too many initializers for struct")
			}
			f := ty.Fields[len(init.Children)]
			init.Children = append(init.Children, p.initializer(f.Type))
			if !p.peekIs("}") {
				p.expect(",")
			}
		}
		return init
	default:
		// Scalar; allow a redundant level of braces.
		if p.accept("{") {
			init.Expr = p.assign()
			p.expect("}")
		} else {
			init.Expr = p.assign()
		}
		return init
	}
}

func alignUp(v, a int) int {
	if a <= 1 {
		return v
	}
	return (v + a - 1) &^ (a - 1)
}
