package minic

// NodeKind discriminates AST nodes. The parser produces a typed, partially
// lowered AST: a[i] becomes *(a+i), a->f becomes (*a).f, ++x becomes x += 1.
type NodeKind int

const (
	// Expressions.
	NNum     NodeKind = iota // integer literal (Val)
	NVar                     // variable reference (Var)
	NStr                     // string literal (StrLabel)
	NBinary                  // Lhs Op Rhs
	NUnary                   // Op Lhs ("-", "~", "!")
	NAssign                  // Lhs Op Rhs (Op is "=", "+=", ...)
	NCond                    // Cond ? Then : Else
	NLogAnd                  // Lhs && Rhs
	NLogOr                   // Lhs || Rhs
	NCall                    // FuncName(Args...)
	NDeref                   // *Lhs
	NAddr                    // &Lhs
	NMember                  // Lhs.Field
	NCast                    // (Type)Lhs
	NPostInc                 // Lhs++ (Val holds +1 or -1)
	NComma                   // Lhs, Rhs

	// Statements.
	NExprStmt // Lhs;
	NBlock    // { Stmts... }
	NIf       // if (Cond) Then else Else
	NWhile    // while (Cond) Then
	NDoWhile  // do Then while (Cond)
	NFor      // for (Init; Cond; Post) Then
	NSwitch   // switch (Cond) Then; Cases lists the case markers
	NCase     // case Val: / default: (IsDefault)
	NReturn   // return Lhs
	NBreak    //
	NContinue //
	NEmpty    // ;
)

// Node is one AST node.
type Node struct {
	Kind NodeKind
	Type *Type // expression type (nil for statements)
	Line int

	Lhs, Rhs               *Node
	Cond, Then, Else, Init *Node
	Post                   *Node
	Stmts                  []*Node
	Var                    *Obj
	Val                    int64
	StrLabel               string
	FuncName               string
	FuncType               *Type
	Args                   []*Node
	Op                     string
	Field                  *Field
	Cases                  []*Node // for NSwitch: its NCase nodes in order
	IsDefault              bool
	CaseLabel              string // filled by codegen
	CommonType             *Type  // comparison operand type (signedness of the compare)
}

// Obj is a declared object: a global, a local, a parameter, or a function.
type Obj struct {
	Name     string
	Type     *Type
	Line     int
	IsGlobal bool
	IsFunc   bool
	IsConst  bool // const-qualified global: placed in .rodata
	IsStatic bool // internal linkage: not exported from the translation unit
	IsDef    bool // has a body / is a defined global (vs extern prototype)

	// Locals and parameters.
	Offset int // frame offset from fp (negative), assigned by codegen

	// Functions.
	Params []*Obj
	Locals []*Obj // all locals including params
	Body   *Node

	// Global initializer (nil means zero-initialized / .bss).
	Init *Initializer
}

// Initializer is a parsed global initializer tree.
type Initializer struct {
	Type     *Type
	Expr     *Node          // scalar constant expression (possibly &global or string)
	Children []*Initializer // array / struct elements (len == Len / len(Fields))
	Str      string         // string-literal initializer for char arrays
	IsStr    bool
}

// Unit is one parsed translation unit.
type Unit struct {
	File    string
	Globals []*Obj            // globals and functions in declaration order
	Strings map[string]string // label -> contents (NUL added by codegen)
}

// lvalue reports whether n denotes an addressable object.
func (n *Node) lvalue() bool {
	switch n.Kind {
	case NVar, NDeref:
		return true
	case NMember:
		return n.Lhs.lvalue()
	default:
		return false
	}
}
