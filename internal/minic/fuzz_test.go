package minic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Differential fuzzing: generate random C expressions over typed variables,
// compile and run them on the EVM, and compare against a Go evaluator that
// mirrors C's arithmetic conversions. This is the strongest correctness
// evidence for the compiler's integer semantics (the enclave benchmarks
// lean on exactly these: mixed-width unsigned arithmetic, shifts, and
// comparisons).

// cType describes one of the fuzzer's types.
type cType struct {
	name     string
	bits     uint
	unsigned bool
}

var fuzzTypes = []cType{
	{"int8_t", 8, false},
	{"uint8_t", 8, true},
	{"int16_t", 16, false},
	{"uint16_t", 16, true},
	{"int", 32, false},
	{"unsigned int", 32, true},
	{"long", 64, false},
	{"unsigned long", 64, true},
}

// cVal is a value carried with its C type.
type cVal struct {
	v  int64 // canonical: sign- or zero-extended into 64 bits per type
	ty cType
}

// canon wraps v to ty's width and extension.
func canon(v int64, ty cType) int64 {
	switch ty.bits {
	case 8:
		if ty.unsigned {
			return int64(uint8(v))
		}
		return int64(int8(v))
	case 16:
		if ty.unsigned {
			return int64(uint16(v))
		}
		return int64(int16(v))
	case 32:
		if ty.unsigned {
			return int64(uint32(v))
		}
		return int64(int32(v))
	default:
		return v
	}
}

var tInt = cType{"int", 32, false}
var tLong = cType{"long", 64, false}

// promote applies C integer promotion.
func (t cType) promote() cType {
	if t.bits < 32 {
		return tInt
	}
	return t
}

// usual applies the usual arithmetic conversions.
func usual(a, b cType) cType {
	a, b = a.promote(), b.promote()
	switch {
	case a.bits > b.bits:
		return a
	case b.bits > a.bits:
		return b
	case a.unsigned:
		return a
	default:
		return b
	}
}

// expr is a generated expression: C source, the Go-evaluated value, and
// whether evaluation hit undefined/trapping behavior (division by zero) —
// in which case the candidate is discarded.
type expr struct {
	src string
	val cVal
	bad bool
}

// genExpr builds a random expression of the given depth over the variables.
func genExpr(r *rand.Rand, vars []cVal, depth int) expr {
	if depth == 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 && len(vars) > 0 {
			i := r.Intn(len(vars))
			return expr{src: fmt.Sprintf("v%d", i), val: vars[i]}
		}
		ty := fuzzTypes[r.Intn(len(fuzzTypes))]
		raw := r.Int63() >> uint(r.Intn(62))
		if r.Intn(2) == 0 {
			raw = -raw
		}
		v := canon(raw, ty)
		// Emit the literal as a cast so its C type matches ty exactly.
		return expr{src: fmt.Sprintf("(%s)%dL", ty.name, v), val: cVal{v: v, ty: ty}}
	}

	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "==", "!=", "<", ">", "<=", ">=", "u-", "u~", "u!", "cast", "cond"}
	op := ops[r.Intn(len(ops))]
	a := genExpr(r, vars, depth-1)
	if a.bad {
		return a
	}
	switch op {
	case "u-":
		ty := a.val.ty.promote()
		return expr{src: "(-(" + a.src + "))", val: cVal{v: canon(-canon(a.val.v, ty), ty), ty: ty}}
	case "u~":
		ty := a.val.ty.promote()
		return expr{src: "(~(" + a.src + "))", val: cVal{v: canon(^canon(a.val.v, ty), ty), ty: ty}}
	case "u!":
		var v int64
		if a.val.v == 0 {
			v = 1
		}
		return expr{src: "(!(" + a.src + "))", val: cVal{v: v, ty: tInt}}
	case "cast":
		ty := fuzzTypes[r.Intn(len(fuzzTypes))]
		return expr{src: fmt.Sprintf("((%s)(%s))", ty.name, a.src), val: cVal{v: canon(a.val.v, ty), ty: ty}}
	case "cond":
		b := genExpr(r, vars, depth-1)
		c := genExpr(r, vars, depth-1)
		if b.bad || c.bad {
			return expr{bad: true}
		}
		ty := usual(b.val.ty, c.val.ty)
		pick := c.val
		if a.val.v != 0 {
			pick = b.val
		}
		return expr{
			src: "((" + a.src + ") ? (" + b.src + ") : (" + c.src + "))",
			val: cVal{v: canon(pick.v, ty), ty: ty},
		}
	}

	b := genExpr(r, vars, depth-1)
	if b.bad {
		return b
	}
	src := "((" + a.src + ") " + op + " (" + b.src + "))"
	switch op {
	case "==", "!=", "<", ">", "<=", ">=":
		ct := usual(a.val.ty, b.val.ty)
		av, bv := canon(a.val.v, ct), canon(b.val.v, ct)
		var res bool
		if ct.unsigned {
			ua, ub := uint64(av), uint64(bv)
			switch op {
			case "==":
				res = ua == ub
			case "!=":
				res = ua != ub
			case "<":
				res = ua < ub
			case ">":
				res = ua > ub
			case "<=":
				res = ua <= ub
			case ">=":
				res = ua >= ub
			}
		} else {
			switch op {
			case "==":
				res = av == bv
			case "!=":
				res = av != bv
			case "<":
				res = av < bv
			case ">":
				res = av > bv
			case "<=":
				res = av <= bv
			case ">=":
				res = av >= bv
			}
		}
		var v int64
		if res {
			v = 1
		}
		return expr{src: src, val: cVal{v: v, ty: tInt}}
	case "<<", ">>":
		ty := a.val.ty.promote()
		// Keep the count well-defined: mask into [0, bits).
		count := canon(b.val.v, tLong)
		if count < 0 || count >= int64(ty.bits) {
			return expr{bad: true}
		}
		av := canon(a.val.v, ty)
		var v int64
		if op == "<<" {
			v = canon(av<<uint(count), ty)
		} else if ty.unsigned {
			v = canon(int64(uint64(av)>>uint(count)), ty)
		} else {
			v = canon(av>>uint(count), ty)
		}
		return expr{src: src, val: cVal{v: v, ty: ty}}
	default:
		ct := usual(a.val.ty, b.val.ty)
		av, bv := canon(a.val.v, ct), canon(b.val.v, ct)
		var v int64
		switch op {
		case "+":
			v = av + bv
		case "-":
			v = av - bv
		case "*":
			v = av * bv
		case "/", "%":
			if bv == 0 {
				return expr{bad: true}
			}
			if !ct.unsigned && av == -1<<63 && bv == -1 {
				return expr{bad: true} // signed overflow
			}
			if ct.unsigned {
				if op == "/" {
					v = int64(uint64(av) / uint64(bv))
				} else {
					v = int64(uint64(av) % uint64(bv))
				}
			} else {
				if op == "/" {
					v = av / bv
				} else {
					v = av % bv
				}
			}
		case "&":
			v = av & bv
		case "|":
			v = av | bv
		case "^":
			v = av ^ bv
		}
		return expr{src: src, val: cVal{v: canon(v, ct), ty: ct}}
	}
}

// TestDifferentialExpressionFuzz compiles batches of random expressions and
// compares EVM results against the Go model.
func TestDifferentialExpressionFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(20260706))
	const rounds = 150
	const perProgram = 8
	for round := 0; round < rounds; round++ {
		// Random typed variables with known values.
		var decls strings.Builder
		vars := make([]cVal, 4)
		for i := range vars {
			ty := fuzzTypes[r.Intn(len(fuzzTypes))]
			v := canon(r.Int63()>>uint(r.Intn(62))-r.Int63()>>uint(r.Intn(62)), ty)
			vars[i] = cVal{v: v, ty: ty}
			fmt.Fprintf(&decls, "%s v%d = (%s)%dL;\n", ty.name, i, ty.name, v)
		}

		// A batch of expressions; each is checked via an equality test so
		// widths/extensions must match exactly.
		var body strings.Builder
		var exprs []expr
		for len(exprs) < perProgram {
			e := genExpr(r, vars, 3)
			if e.bad {
				continue
			}
			exprs = append(exprs, e)
		}
		for i, e := range exprs {
			fmt.Fprintf(&body, "    { %s got%d = %s; if (got%d != (%s)%dL) return %d; }\n",
				e.val.ty.name, i, e.src, i, e.val.ty.name, e.val.v, i+1)
		}
		src := decls.String() + "int main(void) {\n" + body.String() + "    return 0;\n}\n"
		got := ret(t, src)
		if int32(got) != 0 {
			idx := int32(got) - 1
			t.Fatalf("round %d: expression %d disagreed\nexpr: %s\nwant: %d (%s)\nprogram:\n%s",
				round, idx, exprs[idx].src, exprs[idx].val.v, exprs[idx].val.ty.name, src)
		}
	}
}

// TestConstantFoldingMatchesRuntime checks that expressions the compiler
// folds at compile time (global initializers) agree with the same
// expressions computed at run time.
func TestConstantFoldingMatchesRuntime(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for round := 0; round < 25; round++ {
		e := genExpr(r, nil, 3)
		if e.bad {
			continue
		}
		src := fmt.Sprintf(`
%s g = %s;                       /* folded at compile time */
%s compute(void) { %s x = %s; return x; } /* computed at run time */
int main(void) { return g == compute() ? 0 : 1; }
`, e.val.ty.name, e.src, e.val.ty.name, e.val.ty.name, e.src)
		if got := ret(t, src); int32(got) != 0 {
			t.Fatalf("round %d: fold/runtime disagreement for %s\nprogram:\n%s", round, e.src, src)
		}
	}
}
