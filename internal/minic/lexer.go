package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// tokenKind discriminates lexer tokens.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkPunct
)

// token is one lexical token.
type token struct {
	kind   tokenKind
	text   string // identifier, keyword, or punctuator text
	num    int64  // numeric value for tkNumber
	suffix string // integer suffix, normalized to upper case ("", "U", "L", "UL")
	hex    bool   // literal was written in hex/octal (affects C typing rules)
	str    string // decoded value for tkString
	line   int
}

// Error is a compile error with a source position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

var keywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"signed": true, "unsigned": true, "struct": true, "enum": true,
	"typedef": true, "const": true, "static": true, "extern": true,
	"if": true, "else": true, "while": true, "do": true, "for": true,
	"switch": true, "case": true, "default": true,
	"return": true, "break": true, "continue": true, "sizeof": true,
}

// punctuators, longest first so maximal munch works.
var puncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
}

// lexer tokenizes minic source, expanding object-like #define macros.
type lexer struct {
	file   string
	src    string
	pos    int
	line   int
	macros map[string][]token
}

// lexAll tokenizes the whole file.
func lexAll(file, src string) ([]token, error) {
	lx := &lexer{file: file, src: src, line: 1, macros: make(map[string][]token)}
	var out []token
	for {
		toks, err := lx.next()
		if err != nil {
			return nil, err
		}
		if toks == nil {
			continue // directive consumed
		}
		out = append(out, toks...)
		if toks[len(toks)-1].kind == tkEOF {
			return out, nil
		}
	}
}

// errf builds a positioned error.
func (lx *lexer) errf(format string, args ...interface{}) error {
	return &Error{File: lx.file, Line: lx.line, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token(s): usually one, several for an expanded
// macro, or nil when a directive line was consumed.
func (lx *lexer) next() ([]token, error) {
	lx.skipSpace()
	if lx.pos >= len(lx.src) {
		return []token{{kind: tkEOF, line: lx.line}}, nil
	}
	c := lx.src[lx.pos]

	if c == '#' && lx.atLineStart() {
		return nil, lx.directive()
	}

	switch {
	case isDigit(c):
		return lx.number()
	case isIdentStart(c):
		return lx.ident()
	case c == '"':
		return lx.stringLit()
	case c == '\'':
		return lx.charLit()
	}
	for _, p := range puncts {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.pos += len(p)
			return []token{{kind: tkPunct, text: p, line: lx.line}}, nil
		}
	}
	return nil, lx.errf("unexpected character %q", c)
}

// atLineStart reports whether only whitespace precedes pos on this line.
func (lx *lexer) atLineStart() bool {
	for i := lx.pos - 1; i >= 0; i-- {
		switch lx.src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
		default:
			return false
		}
	}
	return true
}

// skipSpace consumes whitespace and comments.
func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				lx.pos++
			}
			lx.pos += 2
		default:
			return
		}
	}
}

// directive handles #define NAME tokens... and #undef. Other directives
// (#include, conditionals) are rejected with a clear message.
func (lx *lexer) directive() error {
	// Take the rest of the physical line.
	start := lx.pos
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
		lx.pos++
	}
	line := lx.src[start:lx.pos]
	defLine := lx.line

	fields := strings.Fields(line)
	if len(fields) == 0 {
		return lx.errf("empty preprocessor directive")
	}
	switch fields[0] {
	case "#define":
		if len(fields) < 2 {
			return lx.errf("#define wants a name")
		}
		name := fields[1]
		if strings.Contains(name, "(") {
			return lx.errf("function-like macros are not supported")
		}
		body := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(line, fields[0]), " "))
		body = strings.TrimSpace(strings.TrimPrefix(body, name))
		sub := &lexer{file: lx.file, src: body, line: defLine, macros: lx.macros}
		var toks []token
		for {
			ts, err := sub.next()
			if err != nil {
				return err
			}
			if ts == nil {
				continue
			}
			if ts[len(ts)-1].kind == tkEOF {
				toks = append(toks, ts[:len(ts)-1]...)
				break
			}
			toks = append(toks, ts...)
		}
		lx.macros[name] = toks
		return nil
	case "#undef":
		if len(fields) != 2 {
			return lx.errf("#undef wants a name")
		}
		delete(lx.macros, fields[1])
		return nil
	default:
		return lx.errf("unsupported preprocessor directive %s", fields[0])
	}
}

func (lx *lexer) number() ([]token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && (isIdentChar(lx.src[lx.pos])) {
		lx.pos++
	}
	text := lx.src[start:lx.pos]
	trimmed := strings.TrimRight(text, "uUlL")
	rawSuffix := text[len(trimmed):]
	v, err := strconv.ParseUint(trimmed, 0, 64)
	if err != nil {
		return nil, lx.errf("bad number %q", text)
	}
	var suffix string
	if strings.ContainsAny(rawSuffix, "uU") {
		suffix += "U"
	}
	if strings.ContainsAny(rawSuffix, "lL") {
		suffix += "L"
	}
	hex := len(trimmed) > 1 && trimmed[0] == '0' // hex or octal
	return []token{{kind: tkNumber, num: int64(v), suffix: suffix, hex: hex, line: lx.line}}, nil
}

func (lx *lexer) ident() ([]token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentChar(lx.src[lx.pos]) {
		lx.pos++
	}
	name := lx.src[start:lx.pos]
	if body, ok := lx.macros[name]; ok {
		out := make([]token, len(body))
		for i, t := range body {
			t.line = lx.line
			out[i] = t
		}
		if len(out) == 0 {
			return nil, nil // macro expanding to nothing
		}
		return out, nil
	}
	kind := tkIdent
	if keywords[name] {
		kind = tkKeyword
	}
	return []token{{kind: kind, text: name, line: lx.line}}, nil
}

func (lx *lexer) stringLit() ([]token, error) {
	lx.pos++ // opening quote
	var sb strings.Builder
	for {
		if lx.pos >= len(lx.src) || lx.src[lx.pos] == '\n' {
			return nil, lx.errf("unterminated string literal")
		}
		c := lx.src[lx.pos]
		if c == '"' {
			lx.pos++
			return []token{{kind: tkString, str: sb.String(), line: lx.line}}, nil
		}
		if c == '\\' {
			v, err := lx.escape()
			if err != nil {
				return nil, err
			}
			sb.WriteByte(v)
			continue
		}
		sb.WriteByte(c)
		lx.pos++
	}
}

func (lx *lexer) charLit() ([]token, error) {
	lx.pos++ // opening quote
	if lx.pos >= len(lx.src) {
		return nil, lx.errf("unterminated char literal")
	}
	var v byte
	if lx.src[lx.pos] == '\\' {
		b, err := lx.escape()
		if err != nil {
			return nil, err
		}
		v = b
	} else {
		v = lx.src[lx.pos]
		lx.pos++
	}
	if lx.pos >= len(lx.src) || lx.src[lx.pos] != '\'' {
		return nil, lx.errf("unterminated char literal")
	}
	lx.pos++
	return []token{{kind: tkNumber, num: int64(v), line: lx.line}}, nil
}

// escape decodes a backslash escape starting at the backslash.
func (lx *lexer) escape() (byte, error) {
	lx.pos++ // backslash
	if lx.pos >= len(lx.src) {
		return 0, lx.errf("unterminated escape")
	}
	c := lx.src[lx.pos]
	lx.pos++
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case 'a':
		return 7, nil
	case 'b':
		return 8, nil
	case '\\', '\'', '"':
		return c, nil
	case 'x':
		start := lx.pos
		for lx.pos < len(lx.src) && isHexDigit(lx.src[lx.pos]) {
			lx.pos++
		}
		v, err := strconv.ParseUint(lx.src[start:lx.pos], 16, 8)
		if err != nil {
			return 0, lx.errf("bad hex escape")
		}
		return byte(v), nil
	default:
		return 0, lx.errf("unknown escape \\%c", c)
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool   { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentChar(c byte) bool  { return isIdentStart(c) || isDigit(c) }
