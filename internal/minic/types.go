// Package minic implements a small C compiler targeting the EVM. It exists
// so the paper's benchmarks (tiny-AES, DES, SHA-1, SHA-2, 2048, Biniax,
// crackme) can be ported into enclaves as genuinely compiled code whose text
// bytes carry the secret algorithms, exactly as in the original evaluation.
//
// The language is a C subset: char/short/int/long with unsigned variants and
// the stdint-style aliases, pointers, multi-dimensional arrays, structs,
// enums, typedef, function prototypes, the full C expression grammar
// (including assignment operators, ternary, short-circuit logic, casts,
// sizeof), if/else, while, do-while, for, switch, break/continue/return,
// global initializers (scalars, nested arrays, strings), string literals,
// and object-like #define macros. Floats, unions, varargs, function
// pointers, and the rest of the preprocessor are not supported.
//
// Compile produces EVM assembly text for internal/asm.
package minic

import (
	"fmt"
	"strings"
)

// TypeKind discriminates Type.
type TypeKind int

const (
	TVoid TypeKind = iota
	TInt           // integer types, parameterized by Size and Unsigned
	TPointer
	TArray
	TStruct
	TFunc
)

// Type is a minic type.
type Type struct {
	Kind     TypeKind
	Size     int  // size in bytes (integers: 1,2,4,8; aggregates: full size)
	Align    int  // alignment in bytes
	Unsigned bool // for TInt

	Elem *Type // pointer target / array element
	Len  int   // array length

	// Struct fields.
	StructName string
	Fields     []Field

	// Function signature.
	Ret      *Type
	Params   []*Type
	Variadic bool // accepted in prototypes for printf-like externs; calls pass extra args on the stack
}

// Field is one struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset int
}

// Prebuilt integer types.
var (
	typeVoid   = &Type{Kind: TVoid}
	typeChar   = &Type{Kind: TInt, Size: 1, Align: 1}
	typeUChar  = &Type{Kind: TInt, Size: 1, Align: 1, Unsigned: true}
	typeShort  = &Type{Kind: TInt, Size: 2, Align: 2}
	typeUShort = &Type{Kind: TInt, Size: 2, Align: 2, Unsigned: true}
	typeInt    = &Type{Kind: TInt, Size: 4, Align: 4}
	typeUInt   = &Type{Kind: TInt, Size: 4, Align: 4, Unsigned: true}
	typeLong   = &Type{Kind: TInt, Size: 8, Align: 8}
	typeULong  = &Type{Kind: TInt, Size: 8, Align: 8, Unsigned: true}
)

// builtinTypedefs are always predeclared, easing ports of C code.
var builtinTypedefs = map[string]*Type{
	"int8_t": typeChar, "uint8_t": typeUChar,
	"int16_t": typeShort, "uint16_t": typeUShort,
	"int32_t": typeInt, "uint32_t": typeUInt,
	"int64_t": typeLong, "uint64_t": typeULong,
	"size_t": typeULong, "intptr_t": typeLong, "uintptr_t": typeULong,
	"bool": typeChar,
}

// pointerTo returns a pointer type to elem.
func pointerTo(elem *Type) *Type {
	return &Type{Kind: TPointer, Size: 8, Align: 8, Elem: elem}
}

// arrayOf returns an array type of n elems.
func arrayOf(elem *Type, n int) *Type {
	return &Type{Kind: TArray, Size: elem.Size * n, Align: elem.Align, Elem: elem, Len: n}
}

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool { return t.Kind == TInt }

// IsScalar reports whether t is integer or pointer.
func (t *Type) IsScalar() bool { return t.Kind == TInt || t.Kind == TPointer }

// decay converts array types to pointers to their element type.
func (t *Type) decay() *Type {
	if t.Kind == TArray {
		return pointerTo(t.Elem)
	}
	return t
}

// rank orders integer types for the usual arithmetic conversions.
func (t *Type) rank() int { return t.Size }

// promote applies the integer promotions: types narrower than int widen
// to int (they can hold all values, so signed int).
func (t *Type) promote() *Type {
	if t.Kind == TInt && t.Size < 4 {
		return typeInt
	}
	return t
}

// usualArith computes the common type of a binary arithmetic expression
// (the usual arithmetic conversions). After promotion only 4- and 8-byte
// types remain, and a wider signed type always represents the values of a
// narrower unsigned one, so the rule collapses to: wider rank wins; at equal
// rank, unsigned wins.
func usualArith(a, b *Type) *Type {
	a, b = a.promote(), b.promote()
	switch {
	case a.rank() > b.rank():
		return a
	case b.rank() > a.rank():
		return b
	case a.Unsigned:
		return a
	default:
		return b
	}
}

// equalType reports structural type equality.
func equalType(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TVoid:
		return true
	case TInt:
		return a.Size == b.Size && a.Unsigned == b.Unsigned
	case TPointer:
		return equalType(a.Elem, b.Elem)
	case TArray:
		return a.Len == b.Len && equalType(a.Elem, b.Elem)
	case TStruct:
		return a.StructName == b.StructName && len(a.Fields) == len(b.Fields)
	case TFunc:
		if !equalType(a.Ret, b.Ret) || len(a.Params) != len(b.Params) || a.Variadic != b.Variadic {
			return false
		}
		for i := range a.Params {
			if !equalType(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// field returns the struct field named name.
func (t *Type) field(name string) *Field {
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i]
		}
	}
	return nil
}

// String renders the type for diagnostics.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		u := ""
		if t.Unsigned {
			u = "unsigned "
		}
		switch t.Size {
		case 1:
			return u + "char"
		case 2:
			return u + "short"
		case 4:
			return u + "int"
		default:
			return u + "long"
		}
	case TPointer:
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TStruct:
		return "struct " + t.StructName
	case TFunc:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		if t.Variadic {
			ps = append(ps, "...")
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(ps, ", "))
	}
	return "?"
}
