package minic

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sgxelide/internal/asm"
	"sgxelide/internal/evm"
	"sgxelide/internal/link"
	"sgxelide/internal/obj"
)

// testRuntime is the bare-metal runtime for compiler tests: _start calls
// main and halts; putchar traps to the host via intrinsic 1.
const testRuntime = `
.text
.global _start
.func _start
	call main
	halt
.endfunc
.global putchar
.func putchar
	intrin 1
	ret
.endfunc
`

// compileToAsm compiles C source, failing the test on error.
func compileToAsm(t *testing.T, csrc string) string {
	t.Helper()
	asmSrc, err := Compile("test.c", csrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return asmSrc
}

// run compiles and executes a C program; returns main's return value and
// everything written via putchar.
func run(t *testing.T, csrc string) (uint64, string) {
	t.Helper()
	asmSrc := compileToAsm(t, csrc)
	var files []*obj.File
	for _, src := range []struct{ name, text string }{
		{"prog.s", asmSrc}, {"rt.s", testRuntime},
	} {
		f, err := asm.Assemble(src.name, src.text)
		if err != nil {
			t.Fatalf("assemble: %v\n--- asm ---\n%s", err, numbered(asmSrc))
		}
		files = append(files, f)
	}
	im, err := link.Link(link.Config{Entry: "_start"}, files...)
	if err != nil {
		t.Fatalf("link: %v\n--- asm ---\n%s", err, numbered(asmSrc))
	}
	m := im.NewVM()
	m.MaxSteps = 1 << 26
	var out bytes.Buffer
	m.Intrinsics = map[uint16]evm.Intrinsic{
		1: func(m *evm.VM) *evm.Fault {
			out.WriteByte(byte(m.Reg[evm.RegA0]))
			return nil
		},
	}
	stop := m.Run()
	if stop.Reason != evm.StopHalt {
		t.Fatalf("program did not halt: %v\n--- asm ---\n%s", stop, numbered(asmSrc))
	}
	return m.Reg[0], out.String()
}

// ret runs the program and returns main's value.
func ret(t *testing.T, csrc string) int64 {
	t.Helper()
	v, _ := run(t, csrc)
	return int64(v)
}

func numbered(s string) string {
	lines := strings.Split(s, "\n")
	var sb strings.Builder
	for i, l := range lines {
		sb.WriteString(strings.TrimRight(strings.Join([]string{itoa(i + 1), l}, "\t"), " "))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func itoa(i int) string {
	return strings.TrimSpace(strings.Repeat("", 0) + fmtInt(i))
}

func fmtInt(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// expectMain asserts that main() returns want.
func expectMain(t *testing.T, want int64, body string) {
	t.Helper()
	got := ret(t, body)
	// main returns int (32-bit), canonically sign-extended.
	if int32(got) != int32(want) {
		t.Errorf("main() = %d, want %d\nsource:\n%s", int32(got), int32(want), body)
	}
}

func TestReturnConstant(t *testing.T) {
	expectMain(t, 42, `int main(void) { return 42; }`)
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 3 - 2", 5},
		{"100 / 7", 14},
		{"100 % 7", 2},
		{"-100 / 7", -14},
		{"-100 % 7", -2},
		{"1 << 10", 1024},
		{"1024 >> 3", 128},
		{"-8 >> 1", -4},
		{"0xf0 | 0x0f", 255},
		{"0xff & 0x0f", 15},
		{"0xff ^ 0x0f", 0xf0},
		{"~0", -1},
		{"-(-5)", 5},
		{"!0", 1},
		{"!42", 0},
		{"1 < 2", 1},
		{"2 < 1", 0},
		{"2 <= 2", 1},
		{"3 > 2", 1},
		{"3 >= 4", 0},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 3", 1},
		{"0 || 0", 0},
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
	}
	for _, tt := range tests {
		// Defeat constant folding by routing one operand through a volatile
		// global where possible; here we simply check the computed value.
		expectMain(t, tt.want, "int main(void) { return "+tt.expr+"; }")
	}
}

func TestVariablesAndAssignment(t *testing.T) {
	expectMain(t, 30, `
		int main(void) {
			int a = 10;
			int b;
			b = 20;
			return a + b;
		}`)
}

func TestCompoundAssignment(t *testing.T) {
	// x=10 →15 →13 →26 →8 →3 →12 →13 →14 →14 →7; 7+6 = 13.
	expectMain(t, 13, `
		int main(void) {
			int x = 10;
			x += 5; x -= 2; x *= 2; x /= 3; x %= 5; x <<= 2; x |= 1; x ^= 3; x &= 14; x >>= 1;
			return x + 6;
		}`)
}

func TestCompoundAssignSingleEval(t *testing.T) {
	// arr[f()] += 1 must call f exactly once.
	expectMain(t, 11, `
		int calls;
		int arr[3];
		int f(void) { calls++; return 1; }
		int main(void) {
			arr[1] = 5;
			arr[f()] += 5;
			return arr[1] + calls;
		}`)
}

func TestIncDec(t *testing.T) {
	expectMain(t, 9, `
		int main(void) {
			int x = 5;
			int a = x++;  /* a=5 x=6 */
			int b = ++x;  /* b=7 x=7 */
			int c = x--;  /* c=7 x=6 */
			int d = --x;  /* d=5 x=5 */
			return a + b + c + d - 10 - x;  /* 24 - 10 - 5 = 9 */
		}`)
}

func TestIncDecValues(t *testing.T) {
	expectMain(t, 24, `
		int main(void) {
			int x = 5;
			int a = x++;
			int b = ++x;
			int c = x--;
			int d = --x;
			return a + b + c + d;
		}`)
}

func TestIfElseChain(t *testing.T) {
	src := `
		int classify(int x) {
			if (x < 0) return -1;
			else if (x == 0) return 0;
			else if (x < 10) return 1;
			else return 2;
		}
		int main(void) {
			return classify(-5)*1000 + classify(0)*100 + classify(5)*10 + classify(50);
		}`
	expectMain(t, -1000+0+10+2, src)
}

func TestWhileLoop(t *testing.T) {
	expectMain(t, 5050, `
		int main(void) {
			int i = 0, sum = 0;
			while (i < 100) { i++; sum += i; }
			return sum;
		}`)
}

func TestDoWhile(t *testing.T) {
	expectMain(t, 1, `
		int main(void) {
			int n = 0;
			do { n++; } while (0);
			return n;
		}`)
}

func TestForLoopBreakContinue(t *testing.T) {
	expectMain(t, 2550, `
		int main(void) {
			int sum = 0;
			for (int i = 0; i < 1000; i++) {
				if (i % 2) continue;
				if (i > 100) break;
				sum += i;
			}
			return sum;
		}`)
}

func TestNestedLoops(t *testing.T) {
	expectMain(t, 100, `
		int main(void) {
			int count = 0;
			for (int i = 0; i < 10; i++)
				for (int j = 0; j < 10; j++)
					count++;
			return count;
		}`)
}

func TestRecursionFib(t *testing.T) {
	expectMain(t, 55, `
		int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
		int main(void) { return fib(10); }`)
}

func TestManyArguments(t *testing.T) {
	expectMain(t, 45, `
		int sum9(int a, int b, int c, int d, int e, int f, int g, int h, int i) {
			return a+b+c+d+e+f+g+h+i;
		}
		int main(void) { return sum9(1,2,3,4,5,6,7,8,9); }`)
}

func TestArrays(t *testing.T) {
	expectMain(t, 285, `
		int main(void) {
			int a[10];
			for (int i = 0; i < 10; i++) a[i] = i * i;
			int sum = 0;
			for (int i = 0; i < 10; i++) sum += a[i];
			return sum;
		}`)
}

func Test2DArrays(t *testing.T) {
	expectMain(t, 12, `
		int g[3][4];
		int main(void) {
			for (int i = 0; i < 3; i++)
				for (int j = 0; j < 4; j++)
					g[i][j] = i * 4 + j;
			return g[1][2] * 2;
		}`)
}

func TestPointers(t *testing.T) {
	expectMain(t, 7, `
		void setit(int *p, int v) { *p = v; }
		int main(void) {
			int x = 0;
			setit(&x, 7);
			return x;
		}`)
}

func TestPointerArithmetic(t *testing.T) {
	expectMain(t, 5, `
		int main(void) {
			int a[5];
			a[0]=1; a[1]=2; a[2]=3; a[3]=4; a[4]=5;
			int *p = a;
			p = p + 2;
			int *q = &a[4];
			return *p + (q - p);  /* a[2] + 2 = 5 */
		}`)
}

func TestPointerArithmeticValues(t *testing.T) {
	expectMain(t, 5, `
		int main(void) {
			int a[5];
			for (int i = 0; i < 5; i++) a[i] = i + 1;
			int *p = a + 2;
			int *q = &a[4];
			return *p + (int)(q - p);
		}`)
}

func TestCharPointerWalk(t *testing.T) {
	_, out := run(t, `
		int putchar(int c);
		void prints(char *s) { while (*s) putchar(*s++); }
		int main(void) { prints("hello"); return 0; }`)
	if out != "hello" {
		t.Errorf("output = %q, want hello", out)
	}
}

func TestStrings(t *testing.T) {
	expectMain(t, 'e', `
		int main(void) {
			char *s = "hello";
			return s[1];
		}`)
}

func TestGlobalInitializers(t *testing.T) {
	expectMain(t, 1+20+300, `
		int a = 1;
		int b[3] = {10, 20, 30};
		int c[2][2] = {{100, 200}, {300, 400}};
		int main(void) { return a + b[1] + c[1][0]; }`)
}

func TestGlobalZeroInit(t *testing.T) {
	expectMain(t, 0, `
		int z[100];
		long zz;
		int main(void) { return z[50] + (int)zz; }`)
}

func TestGlobalStringInit(t *testing.T) {
	expectMain(t, 'c'+0, `
		char buf[10] = "abc";
		int main(void) { return buf[2] + buf[5]; }`)
}

func TestGlobalPointerInit(t *testing.T) {
	expectMain(t, 'x', `
		char msg[4] = "wxyz";
		char *p = msg;
		char *q = "x123";
		int main(void) { return (p[1] == q[0]) ? 'x' : 'n'; }`)
}

func TestLocalArrayInit(t *testing.T) {
	expectMain(t, 60, `
		int main(void) {
			int a[4] = {10, 20, 30};
			return a[0] + a[1] + a[2] + a[3];
		}`)
}

func TestLocalStringInit(t *testing.T) {
	expectMain(t, 'b', `
		int main(void) {
			char s[8] = "ab";
			return s[1] + s[7];
		}`)
}

func TestStructs(t *testing.T) {
	expectMain(t, 30, `
		struct Point { int x; int y; };
		int main(void) {
			struct Point p;
			p.x = 10; p.y = 20;
			return p.x + p.y;
		}`)
}

func TestStructPointerArrow(t *testing.T) {
	expectMain(t, 99, `
		struct S { int a; long b; char c; };
		void fill(struct S *s) { s->a = 90; s->b = 8; s->c = 1; }
		int main(void) {
			struct S s;
			fill(&s);
			return s.a + (int)s.b + s.c;
		}`)
}

func TestStructCopy(t *testing.T) {
	expectMain(t, 5, `
		struct V { int x; int y; int z; };
		int main(void) {
			struct V a;
			a.x = 1; a.y = 1; a.z = 3;
			struct V b;
			b = a;
			a.z = 100;
			return b.x + b.y + b.z;
		}`)
}

func TestArrayOfStructs(t *testing.T) {
	expectMain(t, 30, `
		struct P { int x; int y; };
		struct P pts[3];
		int main(void) {
			for (int i = 0; i < 3; i++) { pts[i].x = i; pts[i].y = i * 9; }
			return pts[0].x + pts[1].y + pts[2].x + pts[2].y + 1;
		}`)
}

func TestNestedStruct(t *testing.T) {
	expectMain(t, 42, `
		struct Inner { int v; };
		struct Outer { struct Inner in; int pad; };
		int main(void) {
			struct Outer o;
			o.in.v = 42;
			return o.in.v;
		}`)
}

func TestTypedef(t *testing.T) {
	expectMain(t, 300, `
		typedef unsigned int u32;
		typedef struct { u32 lo; u32 hi; } pair;
		int main(void) {
			pair p;
			p.lo = 100; p.hi = 200;
			return (int)(p.lo + p.hi);
		}`)
}

func TestEnum(t *testing.T) {
	expectMain(t, 12, `
		enum { A, B, C = 10, D };
		int main(void) { return A + B + D - C + 10; }`)
}

func TestSwitch(t *testing.T) {
	expectMain(t, 222, `
		int pick(int x) {
			switch (x) {
			case 1: return 111;
			case 2: return 222;
			case 3: return 333;
			default: return -1;
			}
		}
		int main(void) { return pick(2); }`)
}

func TestSwitchFallthroughAndBreak(t *testing.T) {
	expectMain(t, 6, `
		int main(void) {
			int n = 0;
			switch (2) {
			case 1: n += 1;
			case 2: n += 2;
			case 3: n += 4; break;
			case 4: n += 8;
			}
			return n;
		}`)
}

func TestSwitchDefault(t *testing.T) {
	expectMain(t, 9, `
		int main(void) {
			switch (77) {
			case 1: return 1;
			default: return 9;
			}
		}`)
}

func TestUnsignedSemantics(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want int64
	}{
		{"u8-wrap", `int main(void) { uint8_t x = 250; x += 10; return x; }`, 4},
		{"u16-wrap", `int main(void) { uint16_t x = 65530; x += 10; return x; }`, 4},
		{"u32-wrap", `int main(void) { uint32_t x = 4294967290u; x += 10; return (int)(x == 4u); }`, 1},
		{"u32-div", `int main(void) { uint32_t x = 0xFFFFFFF0u; return (int)(x / 16 == 0x0FFFFFFFu); }`, 1},
		{"s8-sext", `int main(void) { int8_t x = -1; return x == -1; }`, 1},
		{"u8-cmp", `int main(void) { uint8_t x = 200; return x > 100; }`, 1},
		{"s8-cmp", `int main(void) { int8_t x = (int8_t)200; return x < 0; }`, 1},
		{"unsigned-cmp", `int main(void) { unsigned int a = 0xFFFFFFFFu; return a > 5u; }`, 1},
		{"signed-cmp", `int main(void) { int a = -1; return a < 5; }`, 1},
		{"mixed-cmp-unsigned", `int main(void) { unsigned int a = 1; int b = -1; return a < b; }`, 1}, // -1 converts to huge unsigned
		{"u32-shift", `int main(void) { uint32_t x = 0x80000000u; return (int)(x >> 31); }`, 1},
		{"s32-shift", `int main(void) { int x = -2147483647 - 1; return x >> 31; }`, -1},
		{"u8-shift-left", `int main(void) { uint8_t x = 0x80; uint8_t y = (uint8_t)(x << 1); return y; }`, 0},
		{"rotl8", `
			uint8_t rotl(uint8_t x, int n) { return (uint8_t)((x << n) | (x >> (8 - n))); }
			int main(void) { return rotl(0x81, 1); }`, 3},
		{"rotl32", `
			uint32_t rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }
			int main(void) { return (int)(rotl32(0x80000001u, 1) == 3u); }`, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			expectMain(t, tt.want, tt.src)
		})
	}
}

func TestCasts(t *testing.T) {
	expectMain(t, 44, `
		int main(void) {
			long big = 300;
			char c = (char)big;   /* 300 mod 256 = 44 */
			return c;
		}`)
}

func TestSizeof(t *testing.T) {
	expectMain(t, 1+2+4+8+8+40+16, `
		struct S { long a; int b; };
		int main(void) {
			int arr[10];
			return sizeof(char) + sizeof(short) + sizeof(int) + sizeof(long)
				+ sizeof(int*) + sizeof(arr) + sizeof(struct S);
		}`)
}

func TestCommaOperator(t *testing.T) {
	expectMain(t, 3, `
		int main(void) {
			int a = 0, b = 0;
			a = (b = 1, b + 2);
			return a;
		}`)
}

func TestDefineMacro(t *testing.T) {
	expectMain(t, 32, `
		#define N 8
		#define DOUBLE_N (N * 2)
		int main(void) { return N + DOUBLE_N + N; }`)
}

func TestVoidFunction(t *testing.T) {
	expectMain(t, 5, `
		int g;
		void bump(void) { g += 5; }
		int main(void) { bump(); return g; }`)
}

func TestForwardDeclaration(t *testing.T) {
	expectMain(t, 10, `
		int later(int);
		int main(void) { return later(5); }
		int later(int x) { return x * 2; }`)
}

func TestGlobalSharedAcrossFunctions(t *testing.T) {
	expectMain(t, 6, `
		int counter;
		void inc(void) { counter++; }
		int main(void) {
			inc(); inc(); inc();
			return counter * 2;
		}`)
}

func TestShadowing(t *testing.T) {
	expectMain(t, 12, `
		int x = 1;
		int main(void) {
			int x = 2;
			{
				int x = 10;
				return x + 2;
			}
		}`)
}

func TestLongArithmetic(t *testing.T) {
	expectMain(t, 1, `
		int main(void) {
			long a = 1;
			a <<= 40;
			long b = a * 1000;
			return b == (1099511627776L * 1000) ? 1 : 0;
		}`)
}

func TestPutcharOutput(t *testing.T) {
	_, out := run(t, `
		int putchar(int c);
		void putnum(int n) {
			if (n >= 10) putnum(n / 10);
			putchar('0' + n % 10);
		}
		int main(void) { putnum(31337); putchar('\n'); return 0; }`)
	if out != "31337\n" {
		t.Errorf("output = %q", out)
	}
}

func TestConstGlobalsGoToRodata(t *testing.T) {
	asmSrc := compileToAsm(t, `
		const int table[4] = {1, 2, 3, 4};
		int main(void) { return table[2]; }`)
	if !strings.Contains(asmSrc, ".rodata") {
		t.Errorf("const global not in .rodata:\n%s", asmSrc)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"undeclared", `int main(void) { return x; }`, "undeclared"},
		{"undeclared-fn", `int main(void) { return f(); }`, "undeclared function"},
		{"too-few-args", `int f(int a, int b) { return a; } int main(void) { return f(1); }`, "too few"},
		{"too-many-args", `int f(int a) { return a; } int main(void) { return f(1,2); }`, "too many"},
		{"bad-assign", `int main(void) { 3 = 4; return 0; }`, "lvalue"},
		{"deref-int", `int main(void) { int x; return *x; }`, "dereference"},
		{"no-field", `struct S { int a; }; int main(void) { struct S s; return s.b; }`, "no field"},
		{"redefine", `int f(void){return 0;} int f(void){return 1;} int main(void){return 0;}`, "redefined"},
		{"conflicting", `int x; long x; int main(void){return 0;}`, "conflicting"},
		{"void-return-value", `void f(void) { return 1; } int main(void){return 0;}`, "void function"},
		{"case-outside", `int main(void) { case 3: return 0; }`, "case outside"},
		{"nonconst-case", `int main(void) { int x = 1; switch (x) { case x: return 1; } return 0; }`, "not constant"},
		{"array-assign", `int main(void) { int a[3]; int b[3]; a = b; return 0; }`, "array"},
		{"fnptr", `int main(void) { int (*p)(void); return 0; }`, "not supported"},
		{"incomplete", `struct S; struct S s; int main(void){return 0;}`, "incomplete"},
		{"string-too-long", `char s[2] = "abc"; int main(void){return 0;}`, "too long"},
		{"too-many-inits", `int a[2] = {1,2,3}; int main(void){return 0;}`, "too many"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Compile("t.c", tt.src)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("err = %v, want contains %q", err, tt.wantErr)
			}
		})
	}
}

func TestErrorsHaveLineNumbers(t *testing.T) {
	_, err := Compile("t.c", "int main(void) {\n\n  return x;\n}")
	if err == nil || !strings.Contains(err.Error(), "t.c:3") {
		t.Errorf("err = %v, want position t.c:3", err)
	}
}

// runMulti compiles several C translation units and links them together
// with the test runtime.
func runMulti(t *testing.T, csrcs ...string) uint64 {
	t.Helper()
	var files []*obj.File
	for i, csrc := range csrcs {
		asmSrc, err := Compile(fmt.Sprintf("unit%d.c", i), csrc)
		if err != nil {
			t.Fatalf("compile unit %d: %v", i, err)
		}
		f, err := asm.Assemble(fmt.Sprintf("unit%d.s", i), asmSrc)
		if err != nil {
			t.Fatalf("assemble unit %d: %v\n%s", i, err, numbered(asmSrc))
		}
		files = append(files, f)
	}
	rt, err := asm.Assemble("rt.s", testRuntime)
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, rt)
	im, err := link.Link(link.Config{Entry: "_start"}, files...)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := im.NewVM()
	m.MaxSteps = 1 << 22
	stop := m.Run()
	if stop.Reason != evm.StopHalt {
		t.Fatalf("did not halt: %v", stop)
	}
	return m.Reg[0]
}

// TestStaticLinkage: two units may each define their own static helper (and
// static global) with the same name; each unit sees its own.
func TestStaticLinkage(t *testing.T) {
	unit1 := `
		static int secret = 100;
		static int helper(void) { return secret + 1; }
		int get1(void) { return helper(); }
	`
	unit2 := `
		static int secret = 200;
		static int helper(void) { return secret + 2; }
		int get2(void) { return helper(); }
		int get1(void);
		int main(void) { return get1() * 1000 + get2(); }
	`
	if got := runMulti(t, unit1, unit2); int32(got) != 101*1000+202 {
		t.Errorf("got %d, want %d", int32(got), 101*1000+202)
	}
}

// TestNonStaticCollisionIsLinkError: without static, duplicate definitions
// across units are rejected by the linker.
func TestNonStaticCollisionIsLinkError(t *testing.T) {
	u := `int helper(void) { return 1; }`
	a1, err := Compile("a.c", u)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Compile("b.c", u)
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := asm.Assemble("a.s", a1)
	f2, _ := asm.Assemble("b.s", a2)
	if _, err := link.Link(link.Config{}, f1, f2); err == nil || !strings.Contains(err.Error(), "duplicate global") {
		t.Errorf("err = %v, want duplicate global", err)
	}
}
