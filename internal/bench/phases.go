package bench

import (
	"fmt"
	"sort"
	"strings"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// PhasesBenchConfig drives the per-phase restore breakdown: Iters traced
// launches of Program in each data mode, every launch on a fresh simulated
// machine (the paper measures cold launches).
type PhasesBenchConfig struct {
	Program string // benchmark name (see All); default "Sha1"
	Iters   int    // traced launches per mode; default 10
}

// PhaseModeResult is one data mode's breakdown: a latency summary per
// pipeline phase (attest, request_meta, request_data, decrypt, restore,
// seal) plus the end-to-end elide_restore ecall.
type PhaseModeResult struct {
	Mode   string                    `json:"mode"` // "remote-data" or "local-data"
	Phases map[string]LatencySummary `json:"phases"`
	Total  LatencySummary            `json:"total_restore"`
}

// PhasesBenchResult is the JSON document elide-bench writes to
// BENCH_restore_phases.json: where the restore time of Table 2 actually
// goes — attestation vs data fetch vs decrypt vs the memcpy restore.
type PhasesBenchResult struct {
	Program string            `json:"program"`
	Iters   int               `json:"iters"`
	Modes   []PhaseModeResult `json:"modes"`
}

func (r *PhasesBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "restore phase breakdown: %s, %d iterations per mode\n", r.Program, r.Iters)
	for _, m := range r.Modes {
		fmt.Fprintf(&b, "  %s (total p50 %.0fµs):\n", m.Mode, m.Total.P50Us)
		names := make([]string, 0, len(m.Phases))
		for name := range m.Phases {
			names = append(names, name)
		}
		// Protocol order first, anything else alphabetically after.
		rank := make(map[string]int, len(elide.RestorePhases))
		for i, name := range elide.RestorePhases {
			rank[name] = i + 1
		}
		sort.Slice(names, func(i, j int) bool {
			ri, rj := rank[names[i]], rank[names[j]]
			if ri == 0 && rj == 0 {
				return names[i] < names[j]
			}
			if ri == 0 || rj == 0 {
				return rj == 0
			}
			return ri < rj
		})
		for _, name := range names {
			s := m.Phases[name]
			fmt.Fprintf(&b, "    %-14s p50 %8.0fµs  p90 %8.0fµs  mean %8.0fµs (n=%d)\n",
				name, s.P50Us, s.P90Us, s.MeanUs, s.Count)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// tracedLaunch runs one full traced restore of prot on a fresh machine and
// returns the completed trace. Flags always include seal-after so the seal
// phase is exercised.
func tracedLaunch(env *Env, prot *elide.Protected) ([]obs.SpanRecord, error) {
	platform, err := sgx.NewPlatform(sgx.Config{}, env.CA)
	if err != nil {
		return nil, err
	}
	host := sdk.NewHost(platform)
	tracer := obs.NewTracer(0)
	host.Tracer = tracer
	srv, err := prot.NewServerFor(env.CA)
	if err != nil {
		return nil, err
	}
	encl, rt, err := prot.Launch(host, &elide.DirectClient{Session: srv.NewSession()}, prot.LocalFiles())
	if err != nil {
		return nil, err
	}
	defer encl.Destroy()
	code, err := elide.Restore(encl, elide.FlagSealAfter)
	if err != nil {
		return nil, fmt.Errorf("restore: %w (runtime: %v)", err, rt.LastErr())
	}
	if code != elide.RestoreOKServer {
		return nil, fmt.Errorf("restore code %d (runtime: %v)", code, rt.LastErr())
	}
	return tracer.Completed(), nil
}

// PhasesBench measures the per-phase restore latency breakdown in both
// data modes. Each iteration is an independent traced launch; per-phase
// durations come from the launch's span records.
func PhasesBench(env *Env, cfg PhasesBenchConfig) (*PhasesBenchResult, error) {
	if cfg.Program == "" {
		cfg.Program = "Sha1"
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	p, err := ByName(cfg.Program)
	if err != nil {
		return nil, err
	}
	res := &PhasesBenchResult{Program: p.Name, Iters: cfg.Iters}
	for _, mode := range []struct {
		name string
		san  elide.SanitizeOptions
	}{
		{"remote-data", elide.SanitizeOptions{}},
		{"local-data", elide.SanitizeOptions{EncryptLocal: true}},
	} {
		prot, err := BuildProtected(env, p, mode.san)
		if err != nil {
			return nil, err
		}
		phaseHists := make(map[string]*obs.Histogram)
		total := obs.NewHistogram()
		for i := 0; i < cfg.Iters; i++ {
			recs, err := tracedLaunch(env, prot)
			if err != nil {
				return nil, fmt.Errorf("%s iter %d: %w", mode.name, i, err)
			}
			for name, d := range obs.DurationsByName(recs) {
				switch name {
				case "elide_restore":
					total.Observe(d)
				case "attest", "request_meta", "request_data", "decrypt", "restore", "seal":
					h := phaseHists[name]
					if h == nil {
						h = obs.NewHistogram()
						phaseHists[name] = h
					}
					h.Observe(d)
				}
			}
		}
		mr := PhaseModeResult{
			Mode:   mode.name,
			Phases: make(map[string]LatencySummary, len(phaseHists)),
			Total:  summarize(total.Snapshot()),
		}
		for name, h := range phaseHists {
			mr.Phases[name] = summarize(h.Snapshot())
		}
		res.Modes = append(res.Modes, mr)
	}
	return res, nil
}

// TraceDemo runs a single traced local-data restore and returns the
// rendered span tree — the quickest way to see the whole pipeline.
func TraceDemo(env *Env) (string, error) {
	p, err := ByName("Sha1")
	if err != nil {
		return "", err
	}
	prot, err := BuildProtected(env, p, elide.SanitizeOptions{EncryptLocal: true})
	if err != nil {
		return "", err
	}
	recs, err := tracedLaunch(env, prot)
	if err != nil {
		return "", err
	}
	return obs.RenderTree(recs), nil
}
