package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sgxelide/internal/elide"
	"sgxelide/internal/obs"
	"sgxelide/internal/sdk"
	"sgxelide/internal/sgx"
)

// PhasesBenchConfig drives the per-phase restore breakdown: Iters traced
// launches of Program in each data mode, every launch on a fresh simulated
// machine (the paper measures cold launches).
type PhasesBenchConfig struct {
	Program string // benchmark name (see All); default "Sha1"
	Iters   int    // traced launches per mode; default 10
}

// PhaseModeResult is one data mode's breakdown: a latency summary per
// pipeline phase (attest, request_meta, request_data, decrypt, restore,
// seal) plus the end-to-end elide_restore ecall. Phases is the client
// hop's view (where the user-machine runtime spends the restore);
// ServerPhases is the same launches seen from the authentication server's
// session spans, so one run attributes every phase to its hop.
type PhaseModeResult struct {
	Mode         string                    `json:"mode"` // "remote-data" or "local-data"
	Phases       map[string]LatencySummary `json:"phases"`
	ServerPhases map[string]LatencySummary `json:"server_phases,omitempty"`
	Total        LatencySummary            `json:"total_restore"`
}

// PhasesBenchResult is the JSON document elide-bench writes to
// BENCH_restore_phases.json: where the restore time of Table 2 actually
// goes — attestation vs data fetch vs decrypt vs the memcpy restore.
type PhasesBenchResult struct {
	Program string            `json:"program"`
	Iters   int               `json:"iters"`
	Modes   []PhaseModeResult `json:"modes"`
}

func (r *PhasesBenchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "restore phase breakdown: %s, %d iterations per mode\n", r.Program, r.Iters)
	for _, m := range r.Modes {
		fmt.Fprintf(&b, "  %s (total p50 %.0fµs):\n", m.Mode, m.Total.P50Us)
		names := make([]string, 0, len(m.Phases))
		for name := range m.Phases {
			names = append(names, name)
		}
		// Protocol order first, anything else alphabetically after.
		rank := make(map[string]int, len(elide.RestorePhases))
		for i, name := range elide.RestorePhases {
			rank[name] = i + 1
		}
		sort.Slice(names, func(i, j int) bool {
			ri, rj := rank[names[i]], rank[names[j]]
			if ri == 0 && rj == 0 {
				return names[i] < names[j]
			}
			if ri == 0 || rj == 0 {
				return rj == 0
			}
			return ri < rj
		})
		for _, name := range names {
			s := m.Phases[name]
			fmt.Fprintf(&b, "    %-14s p50 %8.0fµs  p90 %8.0fµs  mean %8.0fµs (n=%d)\n",
				name, s.P50Us, s.P90Us, s.MeanUs, s.Count)
		}
		if len(m.ServerPhases) > 0 {
			fmt.Fprintf(&b, "    server hop:\n")
			snames := make([]string, 0, len(m.ServerPhases))
			for name := range m.ServerPhases {
				snames = append(snames, name)
			}
			sort.Strings(snames)
			for _, name := range snames {
				s := m.ServerPhases[name]
				fmt.Fprintf(&b, "      %-12s p50 %8.0fµs  p90 %8.0fµs  mean %8.0fµs (n=%d)\n",
					name, s.P50Us, s.P90Us, s.MeanUs, s.Count)
			}
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// tracedLaunch runs one full traced restore of prot on a fresh machine and
// returns the merged cross-process trace: the client hop's spans (tagged
// svc=client) and the authentication server's session spans (svc=server),
// joined into one tree by the trace context the attestation carries. Flags
// always include seal-after so the seal phase is exercised. When audit is
// non-nil the server and the runtime emit their security events into it.
func tracedLaunch(env *Env, prot *elide.Protected, audit *obs.AuditLog) ([]obs.SpanRecord, error) {
	platform, err := sgx.NewPlatform(sgx.Config{}, env.CA)
	if err != nil {
		return nil, err
	}
	host := sdk.NewHost(platform)
	tracer := obs.NewTracer(0)
	tracer.SetService("client")
	host.Tracer = tracer
	serverTracer := obs.NewTracer(0)
	serverTracer.SetService("server")
	srvOpts := []elide.ServerOption{elide.WithServerTracer(serverTracer)}
	if audit != nil {
		srvOpts = append(srvOpts, elide.WithServerAudit(audit))
	}
	srv, err := prot.NewServerFor(env.CA, srvOpts...)
	if err != nil {
		return nil, err
	}
	client := &elide.DirectClient{Session: srv.NewSession()}
	encl, rt, err := prot.Launch(host, client, prot.LocalFiles())
	if err != nil {
		return nil, err
	}
	defer encl.Destroy()
	rt.Audit = audit
	code, err := elide.Restore(encl, elide.FlagSealAfter)
	_ = client.Close() // completes the server's session span
	if err != nil {
		return nil, fmt.Errorf("restore: %w (runtime: %v)", err, rt.LastErr())
	}
	if code != elide.RestoreOKServer {
		return nil, fmt.Errorf("restore code %d (runtime: %v)", code, rt.LastErr())
	}
	if audit != nil {
		audit.Emit(obs.AuditEvent{Type: obs.AuditRestoreOK, TraceID: traceIDOf(tracer), Code: int64(code), Detail: "server"})
	}
	return append(tracer.Completed(), serverTracer.Completed()...), nil
}

// traceIDOf returns the trace of the launch's elide_restore root span.
func traceIDOf(tr *obs.Tracer) uint64 {
	for _, r := range tr.Completed() {
		if r.Name == "elide_restore" {
			return r.TraceID
		}
	}
	return 0
}

// PhasesBench measures the per-phase restore latency breakdown in both
// data modes. Each iteration is an independent traced launch; per-phase
// durations come from the launch's span records.
func PhasesBench(env *Env, cfg PhasesBenchConfig) (*PhasesBenchResult, error) {
	if cfg.Program == "" {
		cfg.Program = "Sha1"
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 10
	}
	p, err := ByName(cfg.Program)
	if err != nil {
		return nil, err
	}
	res := &PhasesBenchResult{Program: p.Name, Iters: cfg.Iters}
	for _, mode := range []struct {
		name string
		san  elide.SanitizeOptions
	}{
		{"remote-data", elide.SanitizeOptions{}},
		{"local-data", elide.SanitizeOptions{EncryptLocal: true}},
	} {
		prot, err := BuildProtected(env, p, mode.san)
		if err != nil {
			return nil, err
		}
		phaseHists := make(map[string]*obs.Histogram)
		serverHists := make(map[string]*obs.Histogram)
		total := obs.NewHistogram()
		observe := func(hists map[string]*obs.Histogram, name string, d time.Duration) {
			h := hists[name]
			if h == nil {
				h = obs.NewHistogram()
				hists[name] = h
			}
			h.Observe(d)
		}
		for i := 0; i < cfg.Iters; i++ {
			recs, err := tracedLaunch(env, prot, nil)
			if err != nil {
				return nil, fmt.Errorf("%s iter %d: %w", mode.name, i, err)
			}
			client, server := splitBySvc(recs)
			for name, d := range obs.DurationsByName(client) {
				switch name {
				case "elide_restore":
					total.Observe(d)
				case "attest", "request_meta", "request_data", "decrypt", "restore", "seal":
					observe(phaseHists, name, d)
				}
			}
			for name, d := range obs.DurationsByName(server) {
				observe(serverHists, name, d)
			}
		}
		mr := PhaseModeResult{
			Mode:         mode.name,
			Phases:       make(map[string]LatencySummary, len(phaseHists)),
			ServerPhases: make(map[string]LatencySummary, len(serverHists)),
			Total:        summarize(total.Snapshot()),
		}
		for name, h := range phaseHists {
			mr.Phases[name] = summarize(h.Snapshot())
		}
		for name, h := range serverHists {
			mr.ServerPhases[name] = summarize(h.Snapshot())
		}
		res.Modes = append(res.Modes, mr)
	}
	return res, nil
}

// splitBySvc partitions merged trace records into the client hop's spans
// and the server hop's spans (untagged records count as client: they come
// from the runtime's own tracer).
func splitBySvc(recs []obs.SpanRecord) (client, server []obs.SpanRecord) {
	for _, r := range recs {
		if r.Svc == "server" {
			server = append(server, r)
		} else {
			client = append(client, r)
		}
	}
	return client, server
}

// TraceDemo runs a single traced local-data restore and returns the
// rendered span tree — the quickest way to see the whole pipeline,
// including the server hop's session spans joined into the client's trace.
func TraceDemo(env *Env) (string, error) {
	demo, err := ObsDemo(env)
	if err != nil {
		return "", err
	}
	return demo.Tree, nil
}

// ObsDemoResult is one fully observed restore: the merged cross-process
// span records, the rendered tree, and the audit events the run produced —
// the sample artifacts CI uploads so a schema change is visible in review.
type ObsDemoResult struct {
	Tree  string
	Spans []obs.SpanRecord
	Audit *obs.AuditLog
}

// ObsDemo runs a single traced, audited local-data restore and returns
// every observability artifact it produced.
func ObsDemo(env *Env) (*ObsDemoResult, error) {
	p, err := ByName("Sha1")
	if err != nil {
		return nil, err
	}
	prot, err := BuildProtected(env, p, elide.SanitizeOptions{EncryptLocal: true})
	if err != nil {
		return nil, err
	}
	audit := obs.NewAuditLog(0)
	recs, err := tracedLaunch(env, prot, audit)
	if err != nil {
		return nil, err
	}
	return &ObsDemoResult{Tree: obs.RenderTree(recs), Spans: recs, Audit: audit}, nil
}
